module agl

go 1.24
