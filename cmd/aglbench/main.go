// Command aglbench regenerates the paper's evaluation tables and figures.
//
//	aglbench -exp all            # every experiment, moderate scale
//	aglbench -exp table4 -quick  # one experiment, CI scale
//
// Output juxtaposes measured values with the paper's reported numbers;
// EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"agl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aglbench: ")

	exp := flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|fig7|fig8|shuffle|serve|all")
	quick := flag.Bool("quick", false, "CI-scale datasets and epochs")
	seed := flag.Int64("seed", 1, "global seed")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	if *verbose {
		opt.Logf = log.Printf
	}

	run := func(name string, f func() (fmt.Stringer, error)) {
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res)
	}

	switch *exp {
	case "table1":
		fmt.Println(experiments.Table1())
	case "table2":
		run("table2", func() (fmt.Stringer, error) { return experiments.Table2(opt) })
	case "table3":
		run("table3", func() (fmt.Stringer, error) { return experiments.Table3(opt) })
	case "table4":
		run("table4", func() (fmt.Stringer, error) { return experiments.Table4(opt) })
	case "table5":
		run("table5", func() (fmt.Stringer, error) { return experiments.Table5(opt) })
	case "fig7":
		run("fig7", func() (fmt.Stringer, error) { return experiments.Fig7(opt) })
	case "fig8":
		run("fig8", func() (fmt.Stringer, error) { return experiments.Fig8(opt) })
	case "shuffle":
		run("shuffle", func() (fmt.Stringer, error) { return experiments.Shuffle(opt) })
	case "serve":
		run("serve", func() (fmt.Stringer, error) { return experiments.Serve(opt) })
	case "all":
		if err := experiments.WriteAll(os.Stdout, opt); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}
