// Command aglbench regenerates the paper's evaluation tables and figures
// plus the engine's perf baselines, and doubles as the CI bench-regression
// guard and dataset generator.
//
//	aglbench -exp all                     # every experiment, moderate scale
//	aglbench -exp table4 -quick           # one experiment, CI scale
//	aglbench -exp shuffle,serve,update -quick -json results.json
//	aglbench -check results.json -baseline bench-baseline.json -tolerance 10
//	aglbench -gen data -gen-nodes 400     # write nodes/edges/targets TSVs
//	aglbench -exp train -cpuprofile cpu.out -memprofile mem.out
//	                                      # profile the compute engine with pprof
//
// Output juxtaposes measured values with the paper's reported numbers;
// EXPERIMENTS.md records a reference run. -json writes the experiments'
// machine-readable metrics (flat {"exp.metric": value}, all
// lower-is-better); -check compares such a results file against a
// committed baseline and exits non-zero past the tolerance multiplier.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"agl/internal/datagen"
	"agl/internal/experiments"
	"agl/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aglbench: ")

	exp := flag.String("exp", "all", "comma-separated experiments: table1|table2|table3|table4|table5|fig7|fig8|shuffle|serve|update|link|train|oocore|overload|cluster|quant|chaos|all")
	quick := flag.Bool("quick", false, "CI-scale datasets and epochs")
	seed := flag.Int64("seed", 1, "global seed")
	verbose := flag.Bool("v", false, "progress logging")
	jsonOut := flag.String("json", "", "write machine-readable metrics of the run experiments to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")

	check := flag.String("check", "", "compare this metrics file against -baseline and exit (no experiments run)")
	baseline := flag.String("baseline", "bench-baseline.json", "baseline metrics file for -check")
	tolerance := flag.Float64("tolerance", 10, "allowed multiplier over baseline for -check (lower-is-better metrics)")

	gen := flag.String("gen", "", "write a generated UUG dataset (nodes.tsv/edges.tsv/targets.tsv) to this directory and exit")
	genNodes := flag.Int("gen-nodes", 400, "node count for -gen")
	genDim := flag.Int("gen-dim", 8, "feature dimension for -gen")
	flag.Parse()

	switch {
	case *check != "":
		if err := runCheck(*check, *baseline, *tolerance); err != nil {
			log.Fatal(err)
		}
		return
	case *gen != "":
		if err := runGen(*gen, *genNodes, *genDim, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	// pprof hooks: kernel and trainer work is measurable on any experiment
	// run without a test harness (aglbench -exp train -cpuprofile cpu.out).
	// Teardown is explicit (not deferred) so fatal exits — including a
	// failing experiment, the very run one wants to profile — still leave
	// valid profiles behind.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	profilesDone := false
	finishProfiles := func() {
		if profilesDone {
			return
		}
		profilesDone = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				log.Printf("-cpuprofile: %v", err)
			} else {
				log.Printf("wrote CPU profile to %s", *cpuProfile)
			}
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("-memprofile: %v", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("-memprofile: %v", err)
			} else {
				log.Printf("wrote heap profile to %s", *memProfile)
			}
			if err := f.Close(); err != nil {
				log.Printf("-memprofile: %v", err)
			}
		}
	}
	defer finishProfiles()
	fatalf := func(format string, args ...any) {
		finishProfiles()
		log.Fatalf(format, args...)
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	if *verbose {
		opt.Logf = log.Printf
	}

	metrics := map[string]float64{}
	collect := func(name string, res any) {
		if p, ok := res.(experiments.MetricsProvider); ok {
			for k, v := range p.Metrics() {
				metrics[name+"."+k] = v
			}
		}
	}

	run := func(name string, f func() (fmt.Stringer, error)) {
		res, err := f()
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Println(res)
		collect(name, res)
	}

	// Expand "all" so every experiment flows through the metric-collecting
	// dispatcher (-exp all -json regenerates the full baseline).
	var names []string
	for _, name := range strings.Split(*exp, ",") {
		if name = strings.TrimSpace(name); name == "all" {
			names = append(names, experiments.AllExperiments...)
		} else {
			names = append(names, name)
		}
	}
	for _, name := range names {
		switch name {
		case "table1":
			fmt.Println(experiments.Table1())
		case "table2":
			run("table2", func() (fmt.Stringer, error) { return experiments.Table2(opt) })
		case "table3":
			run("table3", func() (fmt.Stringer, error) { return experiments.Table3(opt) })
		case "table4":
			run("table4", func() (fmt.Stringer, error) { return experiments.Table4(opt) })
		case "table5":
			run("table5", func() (fmt.Stringer, error) { return experiments.Table5(opt) })
		case "fig7":
			run("fig7", func() (fmt.Stringer, error) { return experiments.Fig7(opt) })
		case "fig8":
			run("fig8", func() (fmt.Stringer, error) { return experiments.Fig8(opt) })
		case "shuffle":
			run("shuffle", func() (fmt.Stringer, error) { return experiments.Shuffle(opt) })
		case "serve":
			run("serve", func() (fmt.Stringer, error) { return experiments.Serve(opt) })
		case "update":
			run("update", func() (fmt.Stringer, error) { return experiments.Update(opt) })
		case "link":
			run("link", func() (fmt.Stringer, error) { return experiments.Link(opt) })
		case "train":
			run("train", func() (fmt.Stringer, error) { return experiments.TrainPerf(opt) })
		case "oocore":
			run("oocore", func() (fmt.Stringer, error) { return experiments.OOCore(opt) })
		case "overload":
			run("overload", func() (fmt.Stringer, error) { return experiments.Overload(opt) })
		case "cluster":
			run("cluster", func() (fmt.Stringer, error) { return experiments.Cluster(opt) })
		case "quant":
			run("quant", func() (fmt.Stringer, error) { return experiments.Quant(opt) })
		case "chaos":
			run("chaos", func() (fmt.Stringer, error) { return experiments.Chaos(opt) })
		default:
			fatalf("unknown experiment %q", name)
		}
	}

	if *jsonOut != "" {
		if len(metrics) == 0 {
			fatalf("-json: no metrics collected (experiments %q export none; try shuffle,serve,update)", *exp)
		}
		if err := experiments.WriteMetricsFile(*jsonOut, metrics); err != nil {
			fatalf("%v", err)
		}
		log.Printf("wrote %d metrics to %s", len(metrics), *jsonOut)
	}
}

// runCheck is the bench-regression guard: measured vs committed baseline.
func runCheck(resultsPath, baselinePath string, tolerance float64) error {
	base, err := experiments.ReadMetricsFile(baselinePath)
	if err != nil {
		return err
	}
	got, err := experiments.ReadMetricsFile(resultsPath)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatMetricsComparison(base, got, tolerance))
	if violations := experiments.CompareMetrics(base, got, tolerance); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION:", v)
		}
		return fmt.Errorf("%d metric(s) regressed past %gx of baseline", len(violations), tolerance)
	}
	fmt.Printf("all %d baseline metrics within %gx\n", len(base), tolerance)
	return nil
}

// runGen materializes a small UUG dataset as the TSV tables the CLI
// pipeline (graphflat -> graphtrainer -> graphinfer -> aglserve) consumes.
func runGen(dir string, nodes, dim int, seed int64) error {
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: nodes, FeatDim: dim, Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	nf, err := os.Create(filepath.Join(dir, "nodes.tsv"))
	if err != nil {
		return err
	}
	if err := graph.WriteNodeTable(nf, ds.G.Nodes); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	ef, err := os.Create(filepath.Join(dir, "edges.tsv"))
	if err != nil {
		return err
	}
	if err := graph.WriteEdgeTable(ef, ds.G.Edges); err != nil {
		ef.Close()
		return err
	}
	if err := ef.Close(); err != nil {
		return err
	}
	var targets strings.Builder
	for _, id := range ds.Train {
		fmt.Fprintf(&targets, "%d\t%d\n", id, ds.LabelOf(id))
	}
	if err := os.WriteFile(filepath.Join(dir, "targets.tsv"), []byte(targets.String()), 0o644); err != nil {
		return err
	}
	// pairs.tsv feeds the link-prediction pipeline (graphflat -p): positive
	// training pairs sampled from the edge table.
	var pairs strings.Builder
	nPairs := 0
	for i, e := range ds.G.Edges {
		if i%3 != 0 || nPairs >= 300 {
			continue
		}
		fmt.Fprintf(&pairs, "%d\t%d\t1\n", e.Src, e.Dst)
		nPairs++
	}
	if err := os.WriteFile(filepath.Join(dir, "pairs.tsv"), []byte(pairs.String()), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %d nodes, %d edges, %d targets, %d pairs to %s",
		ds.G.NumNodes(), ds.G.NumEdges(), len(ds.Train), nPairs, dir)
	return nil
}
