// Command aglmetrics reads an aglserve flight-recorder file (written when
// the server runs with -flight) and prints it for post-hoc incident
// diagnosis — no logs, no live server needed.
//
//	aglmetrics -i flight.aglfr            # summary + per-sample table
//	aglmetrics -i flight.aglfr -last 30   # newest 30 samples only
//	aglmetrics -i flight.aglfr -json      # one JSON object per sample
//
// The file is a fixed-size binary ring of per-interval counter samples
// (queue depth, batch occupancy, shed/expired counts, warm/cold latency
// percentiles, dirty store rows); see internal/serve/ring.go for the
// layout. Reading a file while the server is still writing it is safe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"agl/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aglmetrics: ")

	input := flag.String("i", "", "flight-recorder file written by aglserve -flight")
	last := flag.Int("last", 0, "print only the newest N samples (0 = all)")
	asJSON := flag.Bool("json", false, "emit one JSON object per sample instead of the table")
	flag.Parse()

	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}
	samples, err := serve.ReadFlightFile(*input)
	if err != nil {
		log.Fatal(err)
	}
	if len(samples) == 0 {
		log.Fatal("flight file holds no samples yet")
	}
	total := len(samples)
	if *last > 0 && len(samples) > *last {
		samples = samples[len(samples)-*last:]
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for i := range samples {
			if err := enc.Encode(&samples[i]); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	first := time.Unix(0, samples[0].UnixNanos)
	lastT := time.Unix(0, samples[len(samples)-1].UnixNanos)
	var reqs, shed, expired, errs uint64
	var hbMissed, failovers, pRetries, bOpens uint64
	var maxQueue, worstCold uint32
	for _, s := range samples {
		reqs += uint64(s.Requests)
		shed += uint64(s.Shed)
		expired += uint64(s.Expired)
		errs += uint64(s.Errors)
		hbMissed += uint64(s.HeartbeatsMissed)
		failovers += uint64(s.Failovers)
		pRetries += uint64(s.ProxiedRetries)
		bOpens += uint64(s.BreakerOpens)
		if s.QueueDepth > maxQueue {
			maxQueue = s.QueueDepth
		}
		if s.ColdP99us > worstCold {
			worstCold = s.ColdP99us
		}
	}
	fmt.Printf("flight %s: %d samples (%d retained), %s .. %s (%s)\n",
		*input, len(samples), total,
		first.Format(time.RFC3339), lastT.Format(time.RFC3339),
		lastT.Sub(first).Round(time.Second))
	fmt.Printf("totals: %d requests, %d shed, %d expired, %d errors; max queue %d, worst cold p99 %s\n",
		reqs, shed, expired, errs, maxQueue,
		time.Duration(worstCold)*time.Microsecond)
	// Cluster-health counters are zero outside cluster mode (and in
	// AGLFR001 files); show the columns only when something happened.
	cluster := hbMissed+failovers+pRetries+bOpens > 0
	if cluster {
		fmt.Printf("cluster: %d heartbeats missed, %d failovers, %d proxied retries, %d breaker opens\n",
			hbMissed, failovers, pRetries, bOpens)
	}
	fmt.Println()

	fmt.Printf("%-8s %5s %5s %6s %5s %5s %5s %5s %5s %4s %9s %9s %9s %9s %5s",
		"time", "queue", "batch", "reqs", "hits", "warm", "cold", "shed", "expd", "errs",
		"warm_p50", "warm_p99", "cold_p50", "cold_p99", "dirty")
	if cluster {
		fmt.Printf(" %6s %5s %6s %5s", "hbmiss", "fails", "retry", "brkr")
	}
	fmt.Println()
	for _, s := range samples {
		t := time.Unix(0, s.UnixNanos)
		fmt.Printf("%-8s %5d %5d %6d %5d %5d %5d %5d %5d %4d %9s %9s %9s %9s %5d",
			t.Format("15:04:05"),
			s.QueueDepth, s.BatchMax, s.Requests, s.CacheHits, s.Warm, s.Cold,
			s.Shed, s.Expired, s.Errors,
			us(s.WarmP50us), us(s.WarmP99us), us(s.ColdP50us), us(s.ColdP99us),
			s.DirtyRows)
		if cluster {
			fmt.Printf(" %6d %5d %6d %5d",
				s.HeartbeatsMissed, s.Failovers, s.ProxiedRetries, s.BreakerOpens)
		}
		fmt.Println()
	}
}

// us renders a microsecond value compactly ("-" for no observations).
func us(v uint32) string {
	if v == 0 {
		return "-"
	}
	return (time.Duration(v) * time.Microsecond).String()
}
