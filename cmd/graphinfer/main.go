// Command graphinfer is the CLI front end of GraphInfer (paper Figure 6):
//
//	GraphInfer -m model -i input -c infer_configs
//
// It loads a trained model, segments it into K+1 slices, runs the
// MapReduce inference pipeline over the node/edge tables, and writes
// per-node predicted scores as TSV.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"agl/internal/core"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphinfer: ")

	modelPath := flag.String("m", "model.agl", "trained model file")
	nodePath := flag.String("n", "", "node table TSV")
	edgePath := flag.String("e", "", "edge table TSV")
	flatPath := flag.String("flat", "", "partitioned graphflat output to score one partition at a time (bounded memory); replaces -n/-e")
	batch := flag.Int("batch", 256, "scoring batch size (-flat mode)")
	strategy := flag.String("s", "uniform", "sampling strategy (match training)")
	maxNeighbors := flag.Int("max-neighbors", 0, "per-node in-edge cap (match training)")
	hubThreshold := flag.Int("hub-threshold", 0, "re-indexing threshold (match training)")
	seed := flag.Int64("seed", 1, "sampling seed (match training)")
	reducers := flag.Int("reducers", 8, "reduce partitions")
	out := flag.String("o", "scores.tsv", "output scores TSV (id<TAB>score...)")
	flag.Parse()

	if *flatPath == "" && (*nodePath == "" || *edgePath == "") {
		flag.Usage()
		os.Exit(2)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gnn.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *flatPath != "" {
		scorePartitioned(model, *flatPath, *batch, *out)
		return
	}
	g, err := graph.LoadTables(*nodePath, *edgePath)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := sampling.Parse(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Infer(core.InferConfig{
		MaxNeighbors: *maxNeighbors,
		Strategy:     strat,
		Seed:         *seed,
		HubThreshold: *hubThreshold,
		NumReducers:  *reducers,
	}, model, mapreduce.MemInput(core.TableRecords(g)))
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(f)
	ids := make([]int64, 0, len(res.Scores))
	for id := range res.Scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		parts := make([]string, 0, len(res.Scores[id]))
		for _, s := range res.Scores[id] {
			parts = append(parts, strconv.FormatFloat(s, 'g', 8, 64))
		}
		fmt.Fprintf(w, "%d\t%s\n", id, strings.Join(parts, ","))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scored %d nodes in %s (%d MR rounds, %.2f MB shuffled) -> %s\n",
		len(res.Scores), res.Wall.Round(1e6), len(res.RoundStats),
		float64(res.TotalShuffledBytes())/1e6, *out)
}

// scorePartitioned streams a partitioned graphflat output through the
// model one partition at a time, writing scores as they come. Peak memory
// is one partition plus the inference workspace, not the dataset.
func scorePartitioned(model *gnn.Model, flatPath string, batch int, out string) {
	parts, err := core.OpenPartitions(flatPath)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(f)
	start := time.Now()
	scored := 0
	err = core.ScorePartitions(model, parts, batch, gnn.RunOptions{},
		func(part int, ids []int64, scores [][]float64) error {
			for i, id := range ids {
				cols := make([]string, 0, len(scores[i]))
				for _, s := range scores[i] {
					cols = append(cols, strconv.FormatFloat(s, 'g', 8, 64))
				}
				if _, err := fmt.Fprintf(w, "%d\t%s\n", id, strings.Join(cols, ",")); err != nil {
					return err
				}
			}
			scored += len(ids)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scored %d nodes in %s from %d partitions -> %s\n",
		scored, time.Since(start).Round(1e6), parts.NumPartitions(), out)
}
