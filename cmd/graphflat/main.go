// Command graphflat is the CLI front end of GraphFlat (paper Figure 6):
//
//	GraphFlat -n node_table -e edge_table -h hops -s sampling_strategy
//
// It reads TSV node/edge tables plus a target table (id<TAB>label), runs
// the k-hop neighborhood pipeline, and writes GraphFeature records to an
// output dataset directory.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"agl/internal/core"
	"agl/internal/dfs"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphflat: ")

	nodePath := flag.String("n", "", "node table TSV (id<TAB>f1,f2,...)")
	edgePath := flag.String("e", "", "edge table TSV (src<TAB>dst<TAB>weight)")
	targetPath := flag.String("t", "", "target table TSV (id<TAB>label); default: all nodes")
	pairPath := flag.String("p", "", "pair target TSV (src<TAB>dst<TAB>label) for link prediction; emits LinkRecords instead of node records")
	hops := flag.Int("hops", 2, "neighborhood radius K")
	strategy := flag.String("s", "uniform", "sampling strategy: uniform|weighted|topk")
	maxNeighbors := flag.Int("max-neighbors", 0, "per-node in-edge cap (0 = unlimited)")
	hubThreshold := flag.Int("hub-threshold", 0, "re-indexing threshold (0 = disabled)")
	seed := flag.Int64("seed", 1, "sampling seed")
	reducers := flag.Int("reducers", 8, "reduce partitions")
	partitions := flag.Int("partitions", 0, "hash-partition the output by target id into N part files (0 = single dataset); graphtrainer/graphinfer stream partitioned outputs with bounded memory")
	spill := flag.Bool("spill", false, "spill intermediate rounds to disk instead of RAM")
	out := flag.String("o", "graphfeatures", "output dataset directory")
	flag.Parse()

	if *nodePath == "" || *edgePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := graph.LoadTables(*nodePath, *edgePath)
	if err != nil {
		log.Fatal(err)
	}
	var targets map[int64]core.Target
	var pairs []core.EdgeTarget
	if *pairPath != "" {
		if *targetPath != "" {
			log.Fatal("-t and -p are mutually exclusive (node vs edge targets)")
		}
		pairs, err = loadPairs(*pairPath)
		if err == nil && len(pairs) == 0 {
			// Without this, an empty pair table would silently fall back to
			// node-target mode and emit 0 records.
			log.Fatalf("pair table %s holds no pairs", *pairPath)
		}
	} else {
		targets, err = loadTargets(*targetPath, g)
	}
	if err != nil {
		log.Fatal(err)
	}
	strat, err := sampling.Parse(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	outDir, err := dfs.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Flatten(core.FlatConfig{
		Hops:         *hops,
		MaxNeighbors: *maxNeighbors,
		Strategy:     strat,
		Seed:         *seed,
		HubThreshold: *hubThreshold,
		NumReducers:  *reducers,
		Output:       outDir,
		EdgeTargets:  pairs,
		Partitions:   *partitions,
		SpillRounds:  *spill,
	}, mapreduce.MemInput(core.TableRecords(g)), targets)
	if err != nil {
		log.Fatal(err)
	}
	kind := "GraphFeature"
	if len(pairs) > 0 {
		kind = "LinkRecord"
	}
	fmt.Printf("graph: %d nodes, %d edges; hubs re-indexed: %d\n",
		g.NumNodes(), g.NumEdges(), res.HubCount)
	if res.Partitioned != nil {
		fmt.Printf("wrote %d %s records to %s across %d partitions (%d MR rounds, %.2f MB shuffled)\n",
			res.Partitioned.Records, kind, *out, res.Partitioned.Partitions,
			len(res.RoundStats), float64(res.TotalShuffledBytes())/1e6)
	} else {
		fmt.Printf("wrote %d %s records to %s (%d MR rounds, %.2f MB shuffled)\n",
			len(res.Records), kind, *out, len(res.RoundStats),
			float64(res.TotalShuffledBytes())/1e6)
	}
}

// loadPairs reads an edge-target table: src<TAB>dst<TAB>label per line
// (label optional, default 1).
func loadPairs(path string) ([]core.EdgeTarget, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []core.EdgeTarget
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			return nil, fmt.Errorf("pair table: want src<TAB>dst[<TAB>label], got %q", line)
		}
		p := core.EdgeTarget{Label: 1}
		if p.Src, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return nil, fmt.Errorf("pair table: %w", err)
		}
		if p.Dst, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return nil, fmt.Errorf("pair table: %w", err)
		}
		if len(parts) > 2 {
			if p.Label, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
				return nil, fmt.Errorf("pair table: %w", err)
			}
		}
		out = append(out, p)
	}
	return out, sc.Err()
}

func loadTargets(path string, g *graph.Graph) (map[int64]core.Target, error) {
	targets := make(map[int64]core.Target)
	if path == "" {
		for _, id := range g.IDs() {
			targets[id] = core.Target{Label: -1}
		}
		return targets, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		id, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("target table: %w", err)
		}
		t := core.Target{Label: -1}
		if len(parts) > 1 {
			t.Label, err = strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("target table: %w", err)
			}
			t.LabelVec = []float64{float64(t.Label)}
		}
		targets[id] = t
	}
	return targets, sc.Err()
}
