// Command aglserve is AGL's online inference service: it loads a trained
// model plus node/edge tables, optionally precomputes (or loads) an
// embedding store via GraphInfer, and answers per-node score requests
// over HTTP.
//
//	aglserve -m model.agl -n nodes.tsv -e edges.tsv -addr :8080
//
// Endpoints:
//
//	GET  /score?node=ID          one node  -> {"node":ID,"scores":[...]}
//	GET  /link?src=A&dst=B       pair score (link models) -> {"logit":..,"score":..}
//	POST /scores {"nodes":[..]}  bulk      -> {"scores":{"ID":[...],...}}
//	POST /update                 stream graph mutations (single or batch)
//	GET  /mutations?since=V      catch-up feed of applied batches (410 when trimmed);
//	                             &codec=q8 packs feature payloads as int8
//	GET  /stats                  request + mutation accounting
//	GET  /metrics?last=N         flight-recorder snapshot (newest N samples)
//	GET  /healthz                liveness
//
// Cluster mode (see "Running a cluster" in README.md): -peers lists every
// replica's internal RPC address and -replica-id says which one this
// process is. The warm embedding tier is partitioned across replicas by
// node-id hash slot (-slots, default 256); requests for nodes this replica
// does not own are proxied to the owner, link scores scatter-gather the
// two endpoint embeddings, and /update mutations route to the owning
// replica and fan out invalidations cluster-wide. Three extra endpoints
// exist only in cluster mode:
//
//	GET  /placement              current epoch + slot->replica table
//	GET  /cluster                replica routing/fan-out counters
//	POST /admin/migrate?slot=S&to=R   live-migrate one slot to replica R
//
// A request carrying a placement epoch the replica has moved past fails
// with 409 {"error":{"code":"stale_epoch",...}} — retryable after
// refetching /placement.
//
// With -raft the placement table is additionally replicated through a
// raft log (one vote per replica, majority commit): migrations and
// failovers become committed log entries, a leader-driven failure
// detector watches heartbeat replies, and a replica dead past
// -dead-after has its slots automatically reassigned to survivors. See
// "Failure model" in README.md for exactly what this does and does not
// survive.
//
// Every error response uses one JSON envelope,
// {"error":{"code":"...","message":"..."}}, with stable codes:
// bad_request, not_found, gone, overloaded (429, with Retry-After),
// peer_down (503, with Retry-After: the owning replica is unreachable and
// failover has not landed yet — resend after the hint), deadline_exceeded,
// canceled, unavailable, internal. -deadline bounds
// each request end to end; under cold-path saturation (-shed) requests are
// rejected with 429 instead of queueing. -flight mirrors the always-on
// metrics ring to a fixed-size file readable with aglmetrics.
//
// /update accepts one mutation object or a batch:
//
//	{"op":"add_edge","src":1,"dst":2,"weight":1.5}
//	{"mutations":[{"op":"add_node","id":9,"feat":[0,1]},
//	              {"op":"add_edge","src":9,"dst":2},
//	              {"op":"remove_edge","src":1,"dst":2},
//	              {"op":"update_feat","id":2,"feat":[3,4]}]}
//
// and answers {"version":V,"applied":N} plus per-index "errors" on partial
// failure — invalid mutations are skipped, valid ones land, matching
// /scores semantics. Each applied batch advances the graph version and
// invalidates exactly the affected cached scores and embedding rows; the
// next request for an affected node recomputes on the new graph.
//
// With -precompute (the default) GraphInfer runs once at startup so steady
// traffic is served from the embedding store + prediction slice. The store
// backend is selected with one flag set:
//
//	-store-backend mem|mmap|quant   implementation (default mem)
//	-store-path FILE                open a saved store instead of precomputing
//	-store-save FILE                persist the store in the backend's format
//	-store-verify                   full checksum pass at startup
//	-store-quant                    shorthand for -store-backend quant
//
// mem is the heap-resident AGLEMB02 store, mmap serves the AGLMAP01 layout
// out-of-core with O(1) startup, and quant serves int8-quantized rows
// (AGLQNT01, ~7-8x smaller than mem) that score links without dequantizing
// under a dot-product edge head. The pre-redesign flags -store,
// -store-mmap, -save-store and -save-store-mmap remain as deprecated
// aliases onto this set.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"agl/internal/core"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/placement"
	"agl/internal/rpcx"
	"agl/internal/sampling"
	"agl/internal/serve"
)

// scoreAPI is the request surface the HTTP handlers route through. In
// single-process mode it is the *serve.Server itself; in cluster mode it
// is the *serve.Replica wrapper, which proxies non-owned nodes to the
// owning replica and fans out mutations cluster-wide.
type scoreAPI interface {
	Score(ctx context.Context, node int64) ([]float64, error)
	ScoreMany(ctx context.Context, nodes []int64) ([][]float64, []error)
	ScoreLink(ctx context.Context, src, dst int64) (float64, error)
	Apply(ctx context.Context, muts []graph.Mutation) (*serve.ApplyResult, error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("aglserve: ")

	modelPath := flag.String("m", "model.agl", "trained model file")
	nodePath := flag.String("n", "", "node table TSV")
	edgePath := flag.String("e", "", "edge table TSV")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	strategy := flag.String("s", "uniform", "sampling strategy (match training)")
	maxNeighbors := flag.Int("max-neighbors", 0, "per-node in-edge cap (match training)")
	hubThreshold := flag.Int("hub-threshold", 0, "re-indexing threshold for the precompute run (match training)")
	seed := flag.Int64("seed", 1, "sampling seed (match training)")
	precompute := flag.Bool("precompute", true, "run GraphInfer at startup to build the embedding store")
	storeBackend := flag.String("store-backend", "", "embedding store backend: mem (heap, default), mmap (out-of-core), or quant (int8-quantized)")
	storeFile := flag.String("store-path", "", "open the embedding store from this file (the backend's native format) instead of precomputing")
	storeSave := flag.String("store-save", "", "persist the embedding store to this file in the backend's native format")
	storeVerify := flag.Bool("store-verify", false, "run the store file's full checksum verification at startup")
	storeQuant := flag.Bool("store-quant", false, "serve int8-quantized embeddings (shorthand for -store-backend quant)")
	storeOld := flag.String("store", "", "deprecated: alias for -store-path with the mem backend")
	storeMmapOld := flag.String("store-mmap", "", "deprecated: alias for -store-backend mmap -store-path")
	saveStoreOld := flag.String("save-store", "", "deprecated: alias for -store-save with the mem backend")
	saveStoreMmapOld := flag.String("save-store-mmap", "", "deprecated: alias for -store-backend mmap -store-save")
	cacheSize := flag.Int("cache", 4096, "LRU score-cache entries")
	maxBatch := flag.Int("max-batch", 64, "micro-batch size cap")
	maxWait := flag.Duration("max-wait", 0, "micro-batch linger: wait up to this long for batch companions (0 flushes greedily)")
	queueDepth := flag.Int("queue", 0, "cold-path queue depth (0 selects 4*max-batch)")
	shed := flag.Int("shed", 0, "cold requests in flight before admission control sheds with 429 (0 selects the queue depth)")
	deadline := flag.Duration("deadline", 0, "per-request deadline enforced end to end (0 disables; clients can only shorten it)")
	flightPath := flag.String("flight", "", "mirror the always-on metrics ring to this flight-recorder file (read it with aglmetrics)")
	flightSlots := flag.Int("flight-slots", 0, "flight-recorder ring capacity in samples (0 selects 3600)")
	flightInterval := flag.Duration("flight-interval", 0, "flight-recorder sampling period (0 selects 1s)")
	peers := flag.String("peers", "", "cluster mode: comma-separated internal RPC addresses, one per replica (index = replica id)")
	replicaID := flag.Int("replica-id", 0, "cluster mode: this process's index into -peers")
	slots := flag.Int("slots", placement.DefaultSlots, "cluster mode: hash-slot count (must match across replicas)")
	placementPath := flag.String("placement", "", "cluster mode: load the slot->replica table from this file instead of the even default")
	raftOn := flag.Bool("raft", false, "cluster mode: replicate the placement table through a raft log, with leader-driven failure detection and automatic slot failover")
	raftDir := flag.String("raft-dir", "", "cluster mode: directory for this replica's raft WAL (empty runs without persistence — crash-restart then forgets votes and log)")
	suspectAfter := flag.Duration("suspect-after", 2*time.Second, "cluster mode: heartbeat-reply age at which a peer is counted suspect")
	deadAfter := flag.Duration("dead-after", 5*time.Second, "cluster mode: heartbeat-reply age at which a peer is declared dead and its slots fail over")
	flag.Parse()

	if *nodePath == "" || *edgePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Fold the flag surface (including the deprecated per-backend aliases)
	// into one StoreSpec; conflicting selections fail fast instead of
	// silently preferring one flag over another.
	spec := serve.StoreSpec{
		Backend: *storeBackend, Path: *storeFile,
		Verify: *storeVerify, SavePath: *storeSave,
	}
	setBackend := func(backend, from string) {
		if spec.Backend != "" && spec.Backend != backend {
			log.Fatalf("%s conflicts with -store-backend %s", from, spec.Backend)
		}
		spec.Backend = backend
	}
	if *storeQuant {
		setBackend(serve.BackendQuant, "-store-quant")
	}
	for _, alias := range []struct {
		name, val, backend string
		save               bool
	}{
		{"-store", *storeOld, serve.BackendMem, false},
		{"-store-mmap", *storeMmapOld, serve.BackendMmap, false},
		{"-save-store", *saveStoreOld, serve.BackendMem, true},
		{"-save-store-mmap", *saveStoreMmapOld, serve.BackendMmap, true},
	} {
		if alias.val == "" {
			continue
		}
		log.Printf("flag %s is deprecated; use -store-backend/-store-path/-store-save", alias.name)
		if alias.backend != serve.BackendMem {
			setBackend(alias.backend, alias.name)
		}
		if alias.save {
			if spec.SavePath != "" && spec.SavePath != alias.val {
				log.Fatalf("%s conflicts with -store-save %s", alias.name, spec.SavePath)
			}
			spec.SavePath = alias.val
		} else {
			if spec.Path != "" && spec.Path != alias.val {
				log.Fatalf("%s conflicts with -store-path %s", alias.name, spec.Path)
			}
			spec.Path = alias.val
		}
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gnn.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.LoadTables(*nodePath, *edgePath)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := sampling.Parse(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	// Cluster membership resolves before the store is built so the warm
	// tier can be partitioned: each replica keeps only the embeddings it
	// owns under the placement table.
	clusterMode := *peers != ""
	var (
		peerList []string
		table    *placement.Table
	)
	if clusterMode {
		peerList = strings.Split(*peers, ",")
		if *replicaID < 0 || *replicaID >= len(peerList) {
			log.Fatalf("-replica-id %d out of range for %d peers", *replicaID, len(peerList))
		}
		if *placementPath != "" {
			table, err = placement.ReadFile(*placementPath)
		} else {
			table, err = placement.Even(peerList, *slots)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := table.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	var store serve.Store
	if spec.Path != "" || *precompute {
		t0 := time.Now()
		var embs map[int64][]float64
		computed := 0
		if spec.Path == "" {
			res, err := core.Infer(core.InferConfig{
				MaxNeighbors: *maxNeighbors, Strategy: strat, Seed: *seed,
				HubThreshold: *hubThreshold, KeepEmbeddings: true,
			}, model, mapreduce.MemInput(core.TableRecords(g)))
			if err != nil {
				log.Fatal(err)
			}
			embs = res.Embeddings
			computed = len(embs)
			if clusterMode {
				// Keep only the owned shard: non-owned nodes proxy to their
				// owner, so holding their rows would just triple warm memory.
				owned := make(map[int64][]float64)
				for id, emb := range embs {
					if table.OwnerOf(id) == *replicaID {
						owned[id] = emb
					}
				}
				embs = owned
			}
		}
		st, closeStore, err := spec.Open(embs)
		if err != nil {
			log.Fatal(err)
		}
		defer closeStore()
		store = st
		backend := spec.Backend
		if backend == "" {
			backend = serve.BackendMem
		}
		if spec.Path != "" {
			log.Printf("opened %s store: %d embeddings (dim %d, codec %s) from %s in %s",
				backend, st.Len(), st.Dim(), st.RowCodec(), spec.Path,
				time.Since(t0).Round(time.Microsecond))
		} else {
			log.Printf("precomputed %d embeddings, serving %d (dim %d, codec %s) via the %s backend in %s",
				computed, st.Len(), st.Dim(), st.RowCodec(), backend,
				time.Since(t0).Round(time.Millisecond))
		}
		if spec.SavePath != "" {
			log.Printf("saved %s-format embedding store to %s", backend, spec.SavePath)
		}
	}

	srv, err := serve.New(serve.Config{
		MaxNeighbors: *maxNeighbors, Strategy: strat, Seed: *seed,
		CacheSize: *cacheSize, MaxBatch: *maxBatch, MaxWait: *maxWait,
		QueueDepth: *queueDepth, ShedThreshold: *shed,
		FlightPath: *flightPath, FlightSlots: *flightSlots, FlightInterval: *flightInterval,
	}, model, g, store)
	if err != nil {
		log.Fatal(err)
	}

	// In cluster mode every request routes through the Replica: owned nodes
	// serve locally, everything else proxies to the owner over the internal
	// RPC mesh, and link scores scatter-gather the two endpoint embeddings.
	var api scoreAPI = srv
	var rep *serve.Replica
	if clusterMode {
		rep, err = serve.NewReplica(*replicaID, srv, peerList[*replicaID])
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Join(table); err != nil {
			log.Fatal(err)
		}
		api = rep
		log.Printf("cluster replica %d/%d on %s: epoch %d, %d/%d slots owned",
			*replicaID, len(peerList), rep.Addr(), table.Epoch,
			len(table.SlotsOf(*replicaID)), table.Slots())
		if *raftOn {
			if err := rep.EnableConsensus(serve.ConsensusConfig{
				WALDir:       *raftDir,
				SuspectAfter: *suspectAfter,
				DeadAfter:    *deadAfter,
				Logf:         log.Printf,
			}); err != nil {
				log.Fatal(err)
			}
			log.Printf("raft-backed placement on (wal dir %q, suspect after %s, dead after %s)",
				*raftDir, *suspectAfter, *deadAfter)
		}
	}
	if *raftOn && !clusterMode {
		log.Fatal("-raft requires cluster mode (-peers)")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /score", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.URL.Query().Get("node"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad node parameter: %w", err))
			return
		}
		scores, err := api.Score(r.Context(), id)
		if err != nil {
			serveError(w, err)
			return
		}
		writeJSON(w, map[string]any{"node": id, "scores": scores})
	})
	mux.HandleFunc("GET /link", func(w http.ResponseWriter, r *http.Request) {
		src, err := strconv.ParseInt(r.URL.Query().Get("src"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad src parameter: %w", err))
			return
		}
		dst, err := strconv.ParseInt(r.URL.Query().Get("dst"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad dst parameter: %w", err))
			return
		}
		logit, err := api.ScoreLink(r.Context(), src, dst)
		if err != nil {
			serveError(w, err)
			return
		}
		// score is the sigmoid link probability; logit the raw head output.
		writeJSON(w, map[string]any{
			"src": src, "dst": dst,
			"logit": logit, "score": nn.Sigmoid(logit),
		})
	})
	mux.HandleFunc("POST /scores", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Nodes []int64 `json:"nodes"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad request body: %w", err))
			return
		}
		scores, errs := api.ScoreMany(r.Context(), req.Nodes)
		out := make(map[string][]float64, len(req.Nodes))
		failed := map[string]string{}
		for i, id := range req.Nodes {
			key := strconv.FormatInt(id, 10)
			if errs[i] != nil {
				failed[key] = errs[i].Error()
				continue
			}
			out[key] = scores[i]
		}
		// Partial failures still return the scores that computed; the
		// response is only an error status when nothing succeeded.
		if len(out) == 0 && len(failed) > 0 {
			var first error
			for i := range errs {
				if errs[i] != nil {
					first = errs[i]
					break
				}
			}
			serveError(w, first)
			return
		}
		resp := map[string]any{"scores": out}
		if len(failed) > 0 {
			resp["errors"] = failed
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		muts, decodeErrs, err := decodeMutations(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err)
			return
		}
		res, err := api.Apply(r.Context(), muts)
		if err != nil {
			serveError(w, err)
			return
		}
		failed := map[string]string{}
		var first error
		for i, e := range res.Errs {
			if de := decodeErrs[i]; de != nil {
				e = de // report the parse failure, not the placeholder's rejection
			}
			if e != nil {
				failed[strconv.Itoa(i)] = e.Error()
				if first == nil {
					first = e
				}
			}
		}
		// Partial failures still commit the valid mutations; the response
		// is only an error status when nothing applied (same contract as
		// POST /scores).
		if res.Applied == 0 && len(failed) > 0 {
			serveError(w, first)
			return
		}
		resp := map[string]any{
			"version":     res.Version,
			"applied":     res.Applied,
			"invalidated": res.Invalidated,
		}
		if len(failed) > 0 {
			resp["errors"] = failed
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /mutations", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad since parameter: %w", err))
				return
			}
			since = v
		}
		entries, ok := srv.MutationsSince(since)
		if !ok {
			writeError(w, http.StatusGone, "gone",
				fmt.Errorf("mutation log trimmed past version %d; resync from a fresh snapshot", since))
			return
		}
		if entries == nil {
			entries = []graph.LogEntry{}
		}
		// "version" is the version the feed has delivered through — the
		// exact checkpoint for the next ?since= poll. Deriving it from the
		// last entry (not the server's live version, which a concurrent
		// Apply may already have advanced past these entries) means a
		// replica can neither skip a batch nor replay one.
		version := since
		if len(entries) > 0 {
			version = entries[len(entries)-1].Version
		}
		// ?codec=q8 packs feature payloads as int8 (lossy, error bounded by
		// scale/2 per component) — a bandwidth trade the poller opts into.
		// The decoder (Mutation.UnmarshalJSON) accepts both forms.
		var wireEntries any = entries
		switch codec := r.URL.Query().Get("codec"); codec {
		case "", "f64":
		case "q8":
			wireEntries = graph.QuantizeLog(entries)
		default:
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("bad codec parameter %q (want f64 or q8)", codec))
			return
		}
		writeJSON(w, map[string]any{"version": version, "entries": wireEntries})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		last := 60
		if q := r.URL.Query().Get("last"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Errorf("bad last parameter %q", q))
				return
			}
			last = v
		}
		samples := srv.Flight()
		if last > 0 && len(samples) > last {
			samples = samples[len(samples)-last:]
		}
		if samples == nil {
			samples = []serve.FlightSample{}
		}
		spec := srv.FlightInfo()
		writeJSON(w, map[string]any{
			"interval_ms": spec.Interval.Milliseconds(),
			"slots":       spec.Slots,
			"path":        spec.Path,
			"samples":     samples,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if rep != nil {
		mux.HandleFunc("GET /placement", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, rep.Table())
		})
		mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, rep.ClusterStats())
		})
		mux.HandleFunc("POST /admin/migrate", func(w http.ResponseWriter, r *http.Request) {
			slot, err := strconv.Atoi(r.URL.Query().Get("slot"))
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad slot parameter: %w", err))
				return
			}
			to, err := strconv.Atoi(r.URL.Query().Get("to"))
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad to parameter: %w", err))
				return
			}
			res, err := rep.Migrate(r.Context(), slot, to)
			if err != nil {
				serveError(w, err)
				return
			}
			writeJSON(w, res)
		})
	}

	storeLen := 0
	if store != nil {
		storeLen = store.Len()
	}
	var handler http.Handler = mux
	if *deadline > 0 {
		// The edge deadline propagates through r.Context() into
		// Score/ScoreLink/Apply and on into the micro-batcher, where a
		// request that can no longer make it is dropped before the forward
		// pass (408 deadline_exceeded at this edge).
		d := *deadline
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			mux.ServeHTTP(w, r.WithContext(ctx))
		})
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		log.Printf("serving %d nodes on %s (store: %d embeddings)", g.NumNodes(), *addr, storeLen)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if rep != nil {
		rep.Close() // severs the RPC mesh before the local server goes down
	}
	srv.Close()
}

// decodeMutations parses a /update body: either one mutation object or
// {"mutations":[...]}. Batch elements decode individually so one
// malformed mutation cannot reject its valid siblings — an unparseable
// element becomes a zero Mutation (which Apply rejects positionally) with
// its parse error recorded at the same index in decodeErrs.
func decodeMutations(r *http.Request) ([]graph.Mutation, []error, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err != nil {
		return nil, nil, fmt.Errorf("read request body: %w", err)
	}
	var batch struct {
		Mutations []json.RawMessage `json:"mutations"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %w", err)
	}
	if len(batch.Mutations) > 0 {
		muts := make([]graph.Mutation, len(batch.Mutations))
		decodeErrs := make([]error, len(batch.Mutations))
		for i, raw := range batch.Mutations {
			if err := json.Unmarshal(raw, &muts[i]); err != nil {
				muts[i] = graph.Mutation{} // op 0: rejected by Apply
				if !errors.Is(err, graph.ErrBadMutation) {
					err = fmt.Errorf("%w: %v", graph.ErrBadMutation, err)
				}
				decodeErrs[i] = err
			}
		}
		return muts, decodeErrs, nil
	}
	var single graph.Mutation
	if err := json.Unmarshal(body, &single); err != nil {
		return nil, nil, fmt.Errorf("bad mutation: %w", err)
	}
	return []graph.Mutation{single}, make([]error, 1), nil
}

// errStatus maps a serving-tier error to its HTTP status and stable
// machine-readable code. Codes are part of the API (documented in README):
// clients branch on error.code, never on the message text.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, placement.ErrStaleEpoch):
		// Retryable: the client refetches /placement and resends with the
		// current epoch.
		return http.StatusConflict, "stale_epoch"
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, serve.ErrUnknownNode), errors.Is(err, graph.ErrUnknownNode),
		errors.Is(err, graph.ErrUnknownEdge):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, graph.ErrBadMutation), errors.Is(err, graph.ErrDuplicateNode),
		errors.Is(err, serve.ErrNoEdgeHead):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, rpcx.ErrPeerDown):
		// The owning replica is unreachable (circuit breaker open or
		// retries exhausted) and no failover table has landed yet.
		// Retryable: a Retry-After hint accompanies the 503.
		return http.StatusServiceUnavailable, "peer_down"
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable, "unavailable"
	case errors.Is(err, context.DeadlineExceeded):
		// Covers serve.ErrExpired too: the request was dropped from its
		// micro-batch because the deadline could not be met.
		return http.StatusRequestTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// serveError writes the envelope for an error coming out of the Server,
// deriving status and code; shed responses carry a Retry-After hint.
func serveError(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	retryAfter := time.Duration(0)
	var shed *serve.ShedError
	if errors.As(err, &shed) {
		retryAfter = shed.RetryAfter
	}
	var down *rpcx.PeerDownError
	if errors.As(err, &down) {
		retryAfter = down.RetryAfter
	}
	if retryAfter > 0 {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeError(w, status, code, err)
}

// writeError emits the stable JSON error envelope shared by every
// endpoint: {"error":{"code":"...","message":"..."}}.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": err.Error()},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
