// Command graphtrainer is the CLI front end of GraphTrainer (paper Fig 6):
//
//	GraphTrainer -m model_name -i input -t train_strategy -c dist_configs
//
// It reads GraphFeature records produced by graphflat, trains a GNN with
// parameter-server workers, and saves the model.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"agl/internal/core"
	"agl/internal/dfs"
	"agl/internal/gnn"
	"agl/internal/nn"
	"agl/internal/ps"
	"agl/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphtrainer: ")

	modelName := flag.String("m", "gcn", "model: gcn|sage|gat")
	input := flag.String("i", "graphfeatures", "input dataset directory (graphflat output)")
	evalInput := flag.String("eval", "", "optional eval dataset directory")
	loss := flag.String("loss", "ce", "loss: ce|bce")
	metric := flag.String("metric", "accuracy", "eval metric: accuracy|f1|auc")
	hidden := flag.Int("hidden", 16, "embedding dimension")
	classes := flag.Int("classes", 2, "output classes (1 for binary BCE)")
	layers := flag.Int("layers", 2, "GNN layers K")
	heads := flag.Int("heads", 1, "attention heads (gat)")
	dropout := flag.Float64("dropout", 0.1, "dropout rate")
	batch := flag.Int("batch", 64, "batch size")
	epochs := flag.Int("epochs", 10, "training epochs")
	lr := flag.Float64("lr", 0.01, "Adam learning rate")
	workers := flag.Int("workers", 1, "training workers")
	shards := flag.Int("ps", 1, "parameter-server shards")
	mode := flag.String("mode", "async", "consistency: async|sync")
	strategy := flag.String("t", "pipeline,pruning,partition", "train strategy: comma list of pipeline,pruning,partition")
	edgeHead := flag.String("edge-head", "", "link prediction: pairwise head dot|bilinear|mlp; input must be graphflat -p LinkRecords")
	negRatio := flag.Int("neg-ratio", 0, "negatives sampled per positive pair at batch time (link mode; 0 selects 1)")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("o", "model.agl", "output model file")
	flag.Parse()

	link := *edgeHead != ""
	var (
		records [][]byte
		parts   *core.PartitionSet
		inDim   int
		err     error
	)
	if core.IsPartitioned(*input) {
		// Partitioned graphflat output: stream one partition at a time
		// instead of materializing the dataset.
		parts, err = core.OpenPartitions(*input)
		if err != nil {
			log.Fatal(err)
		}
		if parts.Link() != link {
			log.Fatalf("%s holds link=%v partitions but -edge-head=%q selects link=%v training",
				*input, parts.Link(), *edgeHead, link)
		}
		first, ferr := parts.First()
		if ferr != nil {
			log.Fatal(ferr)
		}
		inDim, err = sniffDim(first, link)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("partitioned input: %d records across %d partitions", parts.Records(), parts.NumPartitions())
	} else {
		records, inDim, err = loadRecords(*input, link)
		if err != nil {
			log.Fatal(err)
		}
	}
	var eval [][]byte
	if *evalInput != "" {
		eval, _, err = loadRecords(*evalInput, link)
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := core.TrainConfig{
		Model: gnn.Config{
			Kind: *modelName, InDim: inDim, Hidden: *hidden, Classes: *classes,
			Layers: *layers, Heads: *heads, Act: nn.ActReLU, Dropout: *dropout,
			Seed: *seed, EdgeHead: *edgeHead,
		},
		BatchSize: *batch, Epochs: *epochs, LR: *lr,
		Workers: *workers, PSShards: *shards,
		Eval: eval, Seed: *seed, NegativeRatio: *negRatio,
		Logf: log.Printf,
	}
	switch *loss {
	case "ce":
		cfg.Loss = core.LossCE
	case "bce":
		cfg.Loss = core.LossBCE
	default:
		log.Fatalf("unknown loss %q", *loss)
	}
	switch *metric {
	case "accuracy":
		cfg.EvalMetric = core.MetricAccuracy
	case "f1":
		cfg.EvalMetric = core.MetricMicroF1
	case "auc":
		cfg.EvalMetric = core.MetricAUC
	default:
		log.Fatalf("unknown metric %q", *metric)
	}
	if *mode == "sync" {
		cfg.Mode = ps.Sync
	}
	for _, s := range strings.Split(*strategy, ",") {
		switch strings.TrimSpace(s) {
		case "pipeline":
			cfg.Pipeline = true
		case "pruning":
			cfg.Pruning = true
		case "partition":
			cfg.AggThreads = 8
		case "":
		default:
			log.Fatalf("unknown train strategy %q", s)
		}
	}

	var res *core.TrainResult
	if parts != nil {
		res, err = core.TrainPartitions(cfg, parts)
	} else {
		res, err = core.Train(cfg, records)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.History {
		line := fmt.Sprintf("epoch %2d  loss %.4f  vec %s  compute %s",
			st.Epoch, st.Loss, st.VecBusy.Round(1e6), st.ComputeBusy.Round(1e6))
		if st.HasMetric {
			line += fmt.Sprintf("  %s %.4f", cfg.EvalMetric, st.Metric)
		}
		fmt.Println(line)
	}
	fmt.Printf("total %s, PS traffic %.2f MB down / %.2f MB up\n",
		res.Total.Round(1e6), float64(res.PSBytesOut)/1e6, float64(res.PSBytesIn)/1e6)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s\n", *out)
}

// loadRecords reads GraphFeature (or, in link mode, LinkRecord) records
// and sniffs the feature dimension from the first record.
func loadRecords(path string, link bool) ([][]byte, int, error) {
	dir, err := dfs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	records, err := dir.ReadAll()
	if err != nil {
		return nil, 0, err
	}
	if len(records) == 0 {
		return nil, 0, fmt.Errorf("no records in %s", path)
	}
	dim, err := sniffDim(records[0], link)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return records, dim, nil
}

// sniffDim decodes a single record to discover the feature dimension.
func sniffDim(rec []byte, link bool) (int, error) {
	var nodes []wire.SGNode
	if link {
		recs, err := core.DecodeLinkRecords([][]byte{rec})
		if err != nil {
			return 0, fmt.Errorf("not LinkRecords (run graphflat -p for link mode): %w", err)
		}
		nodes = recs[0].SG.Nodes
	} else {
		recs, err := core.DecodeRecords([][]byte{rec})
		if err != nil {
			return 0, err
		}
		nodes = recs[0].SG.Nodes
	}
	dim := 0
	for _, n := range nodes {
		if len(n.Feat) > dim {
			dim = len(n.Feat)
		}
	}
	return dim, nil
}
