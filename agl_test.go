package agl_test

import (
	"bytes"
	"testing"

	"agl"
)

// TestPublicAPIEndToEnd exercises the full public surface: dataset
// generation, GraphFlat, GraphTrainer, model save/load, GraphInfer.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := agl.NewUUG(agl.UUGConfig{Nodes: 500, FeatDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets := agl.BinaryTargets(ds, ds.Train)
	flat, err := agl.Flatten(agl.FlatConfig{
		Hops: 2, MaxNeighbors: 10, Seed: 2, TempDir: t.TempDir(),
	}, ds.G, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Records) != len(ds.Train) {
		t.Fatalf("records=%d want %d", len(flat.Records), len(ds.Train))
	}

	testFlat, err := agl.Flatten(agl.FlatConfig{
		Hops: 2, MaxNeighbors: 10, Seed: 2, TempDir: t.TempDir(),
	}, ds.G, agl.BinaryTargets(ds, ds.Test))
	if err != nil {
		t.Fatal(err)
	}

	res, err := agl.Train(agl.TrainConfig{
		Model: agl.ModelConfig{
			Kind: agl.GAT, InDim: 8, Hidden: 8, Classes: 1, Layers: 2,
			Act: agl.ActReLU, Seed: 3,
		},
		Loss: agl.LossBCE, BatchSize: 32, Epochs: 6, LR: 0.02,
		Workers: 2, Mode: agl.Async, Pipeline: true, Pruning: true, AggThreads: 2,
		Eval: testFlat.Records, EvalMetric: agl.MetricAUC, Seed: 4,
	}, flat.Records)
	if err != nil {
		t.Fatal(err)
	}
	auc := res.History[len(res.History)-1].Metric
	if auc < 0.55 {
		t.Fatalf("AUC %v barely above random", auc)
	}

	// Save/load round trip.
	var buf bytes.Buffer
	if err := agl.SaveModel(res.Model, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := agl.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Whole-graph inference with the loaded model.
	inf, err := agl.Infer(agl.InferConfig{
		MaxNeighbors: 10, Seed: 2, TempDir: t.TempDir(),
	}, loaded, ds.G)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Scores) != ds.G.NumNodes() {
		t.Fatalf("scored %d of %d nodes", len(inf.Scores), ds.G.NumNodes())
	}
	for id, s := range inf.Scores {
		if len(s) != 1 || s[0] < 0 || s[0] > 1 {
			t.Fatalf("node %d: bad score %v", id, s)
		}
	}
}

func TestPublicAPIMulticlass(t *testing.T) {
	ds, err := agl.NewCora(agl.CoraConfig{
		Nodes: 150, Edges: 450, FeatDim: 24, Classes: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := agl.Flatten(agl.FlatConfig{Hops: 1, Seed: 6, TempDir: t.TempDir()},
		ds.G, agl.ClassTargets(ds, ds.Train))
	if err != nil {
		t.Fatal(err)
	}
	res, err := agl.Train(agl.TrainConfig{
		Model: agl.ModelConfig{
			Kind: agl.GCN, InDim: 24, Hidden: 8, Classes: 3, Layers: 1,
			Act: agl.ActReLU, Seed: 7,
		},
		Loss: agl.LossCE, Epochs: 5, LR: 0.02, Seed: 8,
	}, flat.Records)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
		t.Fatal("loss did not decrease")
	}
	acc, err := agl.Evaluate(res.Model, flat.Records, agl.EvalConfig{Metric: agl.MetricAccuracy})
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0.34 {
		t.Fatalf("train accuracy %v at random level", acc)
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := agl.NewGraph([]agl.Node{{ID: 1}}, []agl.Edge{{Src: 1, Dst: 9}}); err == nil {
		t.Fatal("expected validation error")
	}
}
