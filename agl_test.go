package agl_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"agl"
)

// TestPublicAPIEndToEnd exercises the full public surface: dataset
// generation, GraphFlat, GraphTrainer, model save/load, GraphInfer.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := agl.NewUUG(agl.UUGConfig{Nodes: 500, FeatDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets := agl.BinaryTargets(ds, ds.Train)
	flat, err := agl.Flatten(agl.FlatConfig{
		Hops: 2, MaxNeighbors: 10, Seed: 2, TempDir: t.TempDir(),
	}, ds.G, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Records) != len(ds.Train) {
		t.Fatalf("records=%d want %d", len(flat.Records), len(ds.Train))
	}

	testFlat, err := agl.Flatten(agl.FlatConfig{
		Hops: 2, MaxNeighbors: 10, Seed: 2, TempDir: t.TempDir(),
	}, ds.G, agl.BinaryTargets(ds, ds.Test))
	if err != nil {
		t.Fatal(err)
	}

	res, err := agl.Train(agl.TrainConfig{
		Model: agl.ModelConfig{
			Kind: agl.GAT, InDim: 8, Hidden: 8, Classes: 1, Layers: 2,
			Act: agl.ActReLU, Seed: 3,
		},
		Loss: agl.LossBCE, BatchSize: 32, Epochs: 6, LR: 0.02,
		Workers: 2, Mode: agl.Async, Pipeline: true, Pruning: true, AggThreads: 2,
		Eval: testFlat.Records, EvalMetric: agl.MetricAUC, Seed: 4,
	}, flat.Records)
	if err != nil {
		t.Fatal(err)
	}
	auc := res.History[len(res.History)-1].Metric
	if auc < 0.55 {
		t.Fatalf("AUC %v barely above random", auc)
	}

	// Save/load round trip.
	var buf bytes.Buffer
	if err := agl.SaveModel(res.Model, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := agl.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Whole-graph inference with the loaded model; keep embeddings so the
	// serving tier can build its store from them below.
	inf, err := agl.Infer(agl.InferConfig{
		MaxNeighbors: 10, Seed: 2, TempDir: t.TempDir(), KeepEmbeddings: true,
	}, loaded, ds.G)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Scores) != ds.G.NumNodes() {
		t.Fatalf("scored %d of %d nodes", len(inf.Scores), ds.G.NumNodes())
	}
	for id, s := range inf.Scores {
		if len(s) != 1 || s[0] < 0 || s[0] > 1 {
			t.Fatalf("node %d: bad score %v", id, s)
		}
	}

	// Online serving over the offline artifacts: warm requests off the
	// embedding store must agree with the batch GraphInfer scores.
	store, err := agl.NewEmbeddingStore(0, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	var storeBuf bytes.Buffer
	if _, err := store.WriteTo(&storeBuf); err != nil {
		t.Fatal(err)
	}
	store, err = agl.LoadEmbeddingStore(&storeBuf)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := agl.Serve(agl.ServeConfig{MaxNeighbors: 10, Seed: 2}, loaded, ds.G, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ids := ds.G.IDs()[:20]
	scores, errs := srv.ScoreMany(context.Background(), ids)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if math.Abs(scores[i][0]-inf.Scores[id][0]) > 1e-12 {
			t.Fatalf("node %d: served %v offline %v", id, scores[i][0], inf.Scores[id][0])
		}
	}
	if st := srv.Stats(); st.Warm != int64(len(ids)) {
		t.Fatalf("expected %d warm scores, got %+v", len(ids), st)
	}

	// Stream a mutation through the public API: the affected node must be
	// invalidated and rescored, the version must advance.
	feat := make([]float64, ds.G.FeatureDim())
	res2, err := srv.Apply(context.Background(), []agl.Mutation{agl.UpdateNodeFeat(ids[0], feat)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied != 1 || res2.Version != 1 || res2.Invalidated == 0 {
		t.Fatalf("mutation did not invalidate: %+v", res2)
	}
	if _, err := srv.Score(context.Background(), ids[0]); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Cold == 0 || st.Version != 1 {
		t.Fatalf("mutated node did not recompute cold: %+v", st)
	}
}

// TestPublicAPIConfigValidation: negative knobs fail fast with descriptive
// errors instead of being silently clamped.
func TestPublicAPIConfigValidation(t *testing.T) {
	ds, err := agl.NewUUG(agl.UUGConfig{Nodes: 50, FeatDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets := agl.BinaryTargets(ds, ds.Train)
	if _, err := agl.Flatten(agl.FlatConfig{Hops: -1}, ds.G, targets); err == nil {
		t.Fatal("negative Hops accepted")
	}
	if _, err := agl.Flatten(agl.FlatConfig{MaxNeighbors: -2}, ds.G, targets); err == nil {
		t.Fatal("negative MaxNeighbors accepted")
	}
	model, err := agl.NewModel(agl.ModelConfig{Kind: agl.GCN, InDim: 4, Hidden: 4, Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agl.Infer(agl.InferConfig{NumReducers: -4}, model, ds.G); err == nil {
		t.Fatal("negative NumReducers accepted")
	}
	cfg := agl.TrainConfig{Model: agl.ModelConfig{Kind: agl.GCN, InDim: 4, Hidden: 4, Classes: 1}}
	cfg.Workers = -1
	if _, err := agl.Train(cfg, [][]byte{{1}}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	cfg.Workers = 0
	cfg.LR = math.Inf(1)
	if _, err := agl.Train(cfg, [][]byte{{1}}); err == nil {
		t.Fatal("infinite LR accepted")
	}
	if _, err := agl.Serve(agl.ServeConfig{CacheSize: -1}, model, ds.G, nil); err == nil {
		t.Fatal("negative CacheSize accepted")
	}
}

func TestPublicAPIMulticlass(t *testing.T) {
	ds, err := agl.NewCora(agl.CoraConfig{
		Nodes: 150, Edges: 450, FeatDim: 24, Classes: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := agl.Flatten(agl.FlatConfig{Hops: 1, Seed: 6, TempDir: t.TempDir()},
		ds.G, agl.ClassTargets(ds, ds.Train))
	if err != nil {
		t.Fatal(err)
	}
	res, err := agl.Train(agl.TrainConfig{
		Model: agl.ModelConfig{
			Kind: agl.GCN, InDim: 24, Hidden: 8, Classes: 3, Layers: 1,
			Act: agl.ActReLU, Seed: 7,
		},
		Loss: agl.LossCE, Epochs: 5, LR: 0.02, Seed: 8,
	}, flat.Records)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
		t.Fatal("loss did not decrease")
	}
	acc, err := agl.Evaluate(res.Model, flat.Records, agl.EvalConfig{Metric: agl.MetricAccuracy})
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0.34 {
		t.Fatalf("train accuracy %v at random level", acc)
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := agl.NewGraph([]agl.Node{{ID: 1}}, []agl.Edge{{Src: 1, Dst: 9}}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestPublicAPILinkPrediction drives the edge-level workload end to end
// through the public API: held-out-edge split, edge-target flatten,
// pairwise training, AUC evaluation, and online pair scoring.
func TestPublicAPILinkPrediction(t *testing.T) {
	ds, err := agl.NewUUG(agl.UUGConfig{Nodes: 400, FeatDim: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	links, err := agl.NewLinks(ds, agl.LinkConfig{TestFrac: 0.1, NegPerPos: 1, MaxTrainPairs: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	flatCfg := agl.FlatConfig{Hops: 2, TempDir: t.TempDir()}
	flatCfg.EdgeTargets = links.Train
	trainFlat, err := agl.Flatten(flatCfg, links.G, nil)
	if err != nil {
		t.Fatal(err)
	}
	flatCfg.EdgeTargets = links.Test
	testFlat, err := agl.Flatten(flatCfg, links.G, nil)
	if err != nil {
		t.Fatal(err)
	}

	res, err := agl.Train(agl.TrainConfig{
		Model: agl.ModelConfig{
			Kind: agl.GCN, InDim: links.G.FeatureDim(), Hidden: 8, Classes: 1,
			Layers: 2, Act: agl.ActTanh, Seed: 3, EdgeHead: agl.EdgeHeadBilinear,
		},
		Loss: agl.LossBCE, Epochs: 8, BatchSize: 32, LR: 0.05,
		Workers: 2, NegativeRatio: 2, Seed: 3,
	}, trainFlat.Records)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := agl.EvaluateLinks(res.Model, testFlat.Records, agl.EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.6 {
		t.Fatalf("link AUC %.3f, want > 0.6", auc)
	}

	// Serve pairs online: warm off the embedding store.
	inf, err := agl.Infer(agl.InferConfig{KeepEmbeddings: true, Seed: 3}, res.Model, links.G)
	if err != nil {
		t.Fatal(err)
	}
	store, err := agl.NewEmbeddingStore(0, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := agl.Serve(agl.ServeConfig{Seed: 3}, res.Model, links.G, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := links.Test[0]
	logit, err := srv.ScoreLink(context.Background(), p.Src, p.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(logit) {
		t.Fatal("NaN link score")
	}
	if srv.Stats().LinkWarm != 1 {
		t.Fatalf("expected warm pair scoring, got %+v", srv.Stats())
	}

	// Offline pair scoring through GraphInfer agrees with the server.
	inf2, err := agl.Infer(agl.InferConfig{
		KeepEmbeddings: true, Seed: 3,
		EdgeTargets: []agl.EdgeTarget{{Src: p.Src, Dst: p.Dst}},
	}, res.Model, links.G)
	if err != nil {
		t.Fatal(err)
	}
	score := inf2.LinkScores[[2]int64{p.Src, p.Dst}]
	if math.Abs(score-1/(1+math.Exp(-logit))) > 1e-9 {
		t.Fatalf("offline pair score %v disagrees with online logit %v", score, logit)
	}

	// LinkTargets builds positive targets from edges.
	lt := agl.LinkTargets(links.G.Edges[:3])
	for _, p := range lt {
		if p.Label != 1 {
			t.Fatal("LinkTargets must label positives 1")
		}
	}
}
