package agl_test

import (
	"testing"

	"agl/internal/experiments"
)

// Benchmarks regenerating the paper's evaluation — one per table/figure.
// They run the experiment harness in quick mode so `go test -bench=.`
// stays tractable; `cmd/aglbench` (without -quick) runs the full scale.
// Reported ns/op is the end-to-end time of regenerating the experiment.

func benchOpts(b *testing.B) experiments.Options {
	b.Helper()
	return experiments.Options{Quick: true, Seed: 1, TempDir: b.TempDir()}
}

// BenchmarkTable2DatasetStats regenerates the dataset summary (paper
// Table 2): three synthetic datasets with the published shapes.
func BenchmarkTable2DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Effectiveness regenerates the effectiveness grid (paper
// Table 3): GCN/GraphSAGE/GAT on Cora/PPI/UUG, AGL vs full-graph baseline.
func BenchmarkTable3Effectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchOpts(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4TrainingEfficiency regenerates the training-efficiency
// grid (paper Table 4): time per epoch on PPI for 3 models × 3 depths ×
// 4 optimization configs plus the full-graph stand-in.
func BenchmarkTable4TrainingEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchOpts(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Inference regenerates the inference-efficiency comparison
// (paper Table 5): GraphInfer vs the original GraphFeature-based module on
// the UUG-like graph.
func BenchmarkTable5Inference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupTime, "time-speedup-x")
		b.ReportMetric(res.SpeedupCPU, "cpu-speedup-x")
	}
}

// BenchmarkFig7Convergence regenerates the convergence study (paper
// Figure 7): AUC vs epoch for increasing worker counts, async PS.
func BenchmarkFig7Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Curves[len(res.Curves)-1]
		b.ReportMetric(last.AUC[len(last.AUC)-1], "final-AUC")
	}
}

// BenchmarkFig8Speedup regenerates the speedup study (paper Figure 8):
// measured multi-worker runs plus cluster-model extrapolation to 100
// workers (paper slope ≈ 0.8).
func BenchmarkFig8Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Slope, "slope-at-100")
	}
}

// BenchmarkServeLoad runs the online-serving load test: cold forward
// passes, warm store lookups and hot cache hits under concurrent clients.
func BenchmarkServeLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Serve(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HitColdSpeedup, "hit-vs-cold-x")
		b.ReportMetric(res.Phases[2].Throughput, "hot-req/s")
	}
}
