// Package agl is a Go implementation of AGL ("AGL: A Scalable System for
// Industrial-purpose Graph Machine Learning", Zhang et al., VLDB 2020) —
// an integrated training and inference system for graph neural networks
// built entirely on classic infrastructure: MapReduce and parameter
// servers.
//
// The system has three modules, mirrored by this package's API:
//
//   - Flatten (GraphFlat): a MapReduce pipeline that materializes, for
//     every target node, an information-complete k-hop neighborhood
//     ("GraphFeature"), with hub re-indexing and neighbor sampling.
//   - Train (GraphTrainer): parameter-server training over the
//     self-contained GraphFeatures, with the paper's three optimizations —
//     training pipeline, graph pruning, and edge partitioning.
//   - Infer (GraphInfer): hierarchical model segmentation plus a K+1
//     round MapReduce pipeline that computes every node embedding exactly
//     once.
//
// A minimal end-to-end run:
//
//	ds, _ := agl.NewUUG(agl.UUGConfig{Nodes: 5000})
//	targets := agl.BinaryTargets(ds, ds.Train)
//	flat, _ := agl.Flatten(agl.FlatConfig{Hops: 2, MaxNeighbors: 20}, ds.G, targets)
//	res, _ := agl.Train(agl.TrainConfig{
//		Model: agl.ModelConfig{Kind: agl.GAT, InDim: ds.G.FeatureDim(),
//			Hidden: 8, Classes: 1, Layers: 2},
//		Loss: agl.LossBCE, Epochs: 7,
//	}, flat.Records)
//	scores, _ := agl.Infer(agl.InferConfig{MaxNeighbors: 20}, res.Model, ds.G)
package agl

import (
	"io"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/placement"
	"agl/internal/ps"
	"agl/internal/sampling"
	"agl/internal/serve"
)

// Graph-substrate types.
type (
	// Graph is a directed attributed graph (node table + edge table).
	Graph = graph.Graph
	// Node is one node-table row.
	Node = graph.Node
	// Edge is one edge-table row.
	Edge = graph.Edge
)

// NewGraph builds a Graph from node and edge rows; self loops are dropped
// and duplicate edges merged.
func NewGraph(nodes []Node, edges []Edge) (*Graph, error) {
	return graph.Build(nodes, edges)
}

// Mutation is one streamed graph change; Server.Apply commits batches of
// them onto copy-on-write graph versions and incrementally invalidates
// the serving tier's caches (see ApplyResult).
type Mutation = graph.Mutation

// LogEntry is one committed mutation batch in a Server's bounded catch-up
// log (see Server.MutationsSince): the applied mutations plus the graph
// version they produced.
type LogEntry = graph.LogEntry

// Mutation constructors.
var (
	// AddNode inserts a new isolated node.
	AddNode = graph.AddNode
	// AddEdge inserts a directed edge (an existing (src, dst) pair merges
	// weights, the same contract as NewGraph).
	AddEdge = graph.AddEdge
	// RemoveEdge deletes the directed edge (src, dst).
	RemoveEdge = graph.RemoveEdge
	// UpdateNodeFeat replaces a node's feature vector.
	UpdateNodeFeat = graph.UpdateNodeFeat
)

// Dataset types and generators (synthetic stand-ins for the paper's
// evaluation data; see DESIGN.md).
type (
	// Dataset bundles a graph with labels and splits.
	Dataset = datagen.Dataset
	// CoraConfig parameterizes the citation-network generator.
	CoraConfig = datagen.CoraConfig
	// PPIConfig parameterizes the protein-interaction generator.
	PPIConfig = datagen.PPIConfig
	// UUGConfig parameterizes the social-graph generator.
	UUGConfig = datagen.UUGConfig
)

// Link-prediction types: the edge-level workload (fraud-pair scoring,
// recommendation) through the same three modules — GraphFlat's edge-target
// mode materializes merged endpoint neighborhoods, GraphTrainer's pairwise
// head trains on them, and the serving tier scores pairs warm off the
// embedding store.
type (
	// EdgeTarget marks a (src, dst) pair to flatten, with its link label
	// (1 positive, 0 negative).
	EdgeTarget = core.EdgeTarget
	// LinkConfig parameterizes held-out-edge link splits.
	LinkConfig = datagen.LinkConfig
	// LinkDataset is a held-out-edge split: training graph, positive train
	// pairs, and test positives plus sampled negatives.
	LinkDataset = datagen.LinkDataset
)

// Edge-head kinds for ModelConfig.EdgeHead.
const (
	EdgeHeadDot      = gnn.EdgeHeadDot
	EdgeHeadBilinear = gnn.EdgeHeadBilinear
	EdgeHeadMLP      = gnn.EdgeHeadMLP
)

// NewLinks builds a held-out-edge link-prediction split from a dataset:
// the training graph drops the held-out edges (both directions), and the
// test set pairs them with uniformly sampled non-edge negatives.
func NewLinks(ds *Dataset, cfg LinkConfig) (*LinkDataset, error) { return datagen.Links(ds, cfg) }

// LinkTargets builds positive (label 1) edge targets from graph edges —
// the training input of FlatConfig.EdgeTargets.
func LinkTargets(edges []Edge) []EdgeTarget {
	out := make([]EdgeTarget, 0, len(edges))
	for _, e := range edges {
		out = append(out, EdgeTarget{Src: e.Src, Dst: e.Dst, Label: 1})
	}
	return out
}

// EvaluateLinks scores a link model over LinkRecords (Flatten output with
// FlatConfig.EdgeTargets) with ROC-AUC.
func EvaluateLinks(m *Model, records [][]byte, cfg EvalConfig) (float64, error) {
	return core.EvaluateLinks(m, records, cfg)
}

// NewCora generates a Cora-like citation dataset.
func NewCora(cfg CoraConfig) (*Dataset, error) { return datagen.Cora(cfg) }

// NewPPI generates a PPI-like multi-label dataset.
func NewPPI(cfg PPIConfig) (*Dataset, error) { return datagen.PPI(cfg) }

// NewUUG generates a UUG-like power-law social dataset.
func NewUUG(cfg UUGConfig) (*Dataset, error) { return datagen.UUG(cfg) }

// Model types.
type (
	// Model is a K-layer GNN with a dense prediction head.
	Model = gnn.Model
	// ModelConfig configures a model.
	ModelConfig = gnn.Config
)

// Model kinds.
const (
	GCN  = gnn.KindGCN
	SAGE = gnn.KindSAGE
	GAT  = gnn.KindGAT
	GIN  = gnn.KindGIN
)

// Activations re-exported for ModelConfig.Act.
const (
	ActReLU      = nn.ActReLU
	ActLeakyReLU = nn.ActLeakyReLU
	ActTanh      = nn.ActTanh
	ActSigmoid   = nn.ActSigmoid
	ActELU       = nn.ActELU
)

// NewModel constructs a model with Glorot-initialized parameters.
func NewModel(cfg ModelConfig) (*Model, error) { return gnn.NewModel(cfg) }

// SaveModel serializes a model (config + weights) to w.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return gnn.Load(r) }

// GraphFlat types.
type (
	// FlatConfig parameterizes GraphFlat.
	FlatConfig = core.FlatConfig
	// FlatResult is GraphFlat's output (GraphFeature records + stats).
	FlatResult = core.FlatResult
	// Target marks a node to flatten, with its supervision.
	Target = core.Target
)

// Sampling strategies for FlatConfig.Strategy / InferConfig.Strategy.
var (
	// SampleUniform picks neighbors uniformly at random.
	SampleUniform sampling.Strategy = sampling.Uniform{}
	// SampleWeighted picks neighbors proportionally to edge weight.
	SampleWeighted sampling.Strategy = sampling.Weighted{}
	// SampleTopK deterministically keeps the heaviest edges.
	SampleTopK sampling.Strategy = sampling.TopK{}
)

// Flatten runs the GraphFlat pipeline over g for the given targets.
func Flatten(cfg FlatConfig, g *Graph, targets map[int64]Target) (*FlatResult, error) {
	return core.Flatten(cfg, mapreduce.MemInput(core.TableRecords(g)), targets)
}

// ClassTargets builds single-label targets for the given node IDs.
func ClassTargets(ds *Dataset, ids []int64) map[int64]Target {
	out := make(map[int64]Target, len(ids))
	for _, id := range ids {
		out[id] = Target{Label: int64(ds.LabelOf(id))}
	}
	return out
}

// BinaryTargets builds binary BCE targets (label vector [y]) for node IDs.
func BinaryTargets(ds *Dataset, ids []int64) map[int64]Target {
	out := make(map[int64]Target, len(ids))
	for _, id := range ids {
		y := ds.LabelOf(id)
		out[id] = Target{Label: int64(y), LabelVec: []float64{float64(y)}}
	}
	return out
}

// MultiLabelTargets builds multi-label BCE targets for node IDs.
func MultiLabelTargets(ds *Dataset, ids []int64) map[int64]Target {
	out := make(map[int64]Target, len(ids))
	for _, id := range ids {
		out[id] = Target{Label: -1, LabelVec: append([]float64(nil), ds.LabelVecOf(id)...)}
	}
	return out
}

// GraphTrainer types.
type (
	// TrainConfig parameterizes GraphTrainer.
	TrainConfig = core.TrainConfig
	// TrainResult is GraphTrainer's output.
	TrainResult = core.TrainResult
	// EvalConfig parameterizes Evaluate.
	EvalConfig = core.EvalConfig
)

// Losses.
const (
	LossCE  = core.LossCE
	LossBCE = core.LossBCE
)

// Metrics.
const (
	MetricAccuracy = core.MetricAccuracy
	MetricMicroF1  = core.MetricMicroF1
	MetricAUC      = core.MetricAUC
)

// Parameter-server consistency modes.
const (
	Async = ps.Async
	Sync  = ps.Sync
)

// Train runs distributed parameter-server training over GraphFeature
// records produced by Flatten.
func Train(cfg TrainConfig, records [][]byte) (*TrainResult, error) {
	return core.Train(cfg, records)
}

// TrainWithHistory is Train with per-epoch evaluation (convergence curves).
func TrainWithHistory(cfg TrainConfig, records [][]byte) (*TrainResult, error) {
	return core.TrainWithHistory(cfg, records)
}

// Evaluate scores a model over GraphFeature records.
func Evaluate(m *Model, records [][]byte, cfg EvalConfig) (float64, error) {
	return core.Evaluate(m, records, cfg)
}

// GraphInfer types.
type (
	// InferConfig parameterizes GraphInfer.
	InferConfig = core.InferConfig
	// InferResult holds per-node predicted scores plus cost accounting.
	InferResult = core.InferResult
)

// Infer runs the GraphInfer pipeline over the whole graph and returns
// predicted scores for every node (plus final-layer embeddings when
// cfg.KeepEmbeddings is set).
func Infer(cfg InferConfig, m *Model, g *Graph) (*InferResult, error) {
	return core.Infer(cfg, m, mapreduce.MemInput(core.TableRecords(g)))
}

// Online serving types. The serving tier answers per-node score requests
// at request latency on top of the offline pipeline's artifacts: an
// embedding store loaded from GraphInfer output serves "warm" nodes
// through the model's prediction slice alone, unknown nodes fall back to
// a micro-batched request-time forward pass, and a bounded LRU cache with
// single-flight deduplication absorbs hub traffic.
type (
	// ServeConfig parameterizes an online inference Server.
	ServeConfig = serve.Config
	// Server is the online inference service.
	Server = serve.Server
	// ServeStats snapshots a Server's request and mutation accounting.
	ServeStats = serve.Stats
	// EmbeddingStore is the read interface of a final-layer node-embedding
	// store, organized around a row codec: LookupRow returns a node's row
	// in the backend's native encoding (an EmbeddingRow), LookupInto
	// decodes into a caller-owned float64 buffer. Three backends implement
	// it: the sharded heap store built by NewEmbeddingStore, the
	// out-of-core mmap'd store opened by OpenMappedStore, and the
	// int8-quantized store opened by OpenQuantStore. LookupRow results may
	// alias backend memory — Clone before retaining (see serve.Store for
	// the full contract).
	EmbeddingStore = serve.Store
	// EmbeddingRow is one store row in its native codec: full-precision
	// float64s (CodecF64) or affine-quantized int8s with a per-row scale
	// and zero-point (CodecQ8). Floats decodes either form; two CodecQ8
	// rows under a dot-product edge head score without decoding at all.
	EmbeddingRow = serve.Row
	// RowCodec names an EmbeddingRow's encoding.
	RowCodec = serve.Codec
	// MemEmbeddingStore is the heap-resident EmbeddingStore backend.
	MemEmbeddingStore = serve.MemStore
	// MappedEmbeddingStore is the out-of-core EmbeddingStore backend: a
	// checksummed fixed-stride file served via mmap with zero
	// deserialization, so open is O(1) and resident memory is bounded by
	// what the page cache keeps warm. Close it when done.
	MappedEmbeddingStore = serve.MappedStore
	// QuantEmbeddingStore is the int8-quantized EmbeddingStore backend:
	// each row stores one int8 per dimension plus a float32 scale and
	// zero-point (~7-8x smaller than MemEmbeddingStore), served either
	// from the heap (QuantizeStore) or mmap'd from an AGLQNT01 file
	// (OpenQuantStore). Under a dot-product edge head, link scores compute
	// directly on the quantized rows. Close it when done.
	QuantEmbeddingStore = serve.QuantStore
	// StoreSpec is the declarative store-backend selection (mem, mmap, or
	// quant; open-from-file or build-from-embeddings; verify and save)
	// shared by cmd/aglserve's flag surface and embedding API users.
	StoreSpec = serve.StoreSpec
	// ApplyResult summarizes one mutation batch committed with
	// Server.Apply: the new graph version, which mutations applied
	// (positional errors, partial-failure semantics), and how many cache
	// entries and store rows were invalidated.
	ApplyResult = serve.ApplyResult
	// ShedError reports a cold-path request rejected by admission control
	// (the server is saturated); it carries a RetryAfter hint and unwraps
	// to ErrOverloaded. aglserve maps it to HTTP 429 + Retry-After.
	ShedError = serve.ShedError
	// FlightSample is one interval of the Server's always-on metrics
	// flight recorder (queue depth, batch occupancy, shed/expired counts,
	// warm/cold latency percentiles). Read a recorder file with
	// ReadFlightFile or cmd/aglmetrics.
	FlightSample = serve.FlightSample
)

// ValidationError reports one rejected configuration field from any
// Validate() (FlatConfig, InferConfig, TrainConfig, ServeConfig). Field is
// the qualified name ("FlatConfig.Hops"); branch on it with errors.As.
type ValidationError = core.ValidationError

// Serving-tier error sentinels, usable with errors.Is on Score/ScoreLink/
// Apply failures.
var (
	// ErrServerClosed marks a request against a shut-down Server.
	ErrServerClosed = serve.ErrClosed
	// ErrUnknownNode marks a request for a node absent from both the
	// store and the graph.
	ErrUnknownNode = serve.ErrUnknownNode
	// ErrOverloaded is the sentinel every ShedError unwraps to.
	ErrOverloaded = serve.ErrOverloaded
	// ErrExpired marks a request dropped from a micro-batch because its
	// ctx deadline could not be met; it unwraps to
	// context.DeadlineExceeded.
	ErrExpired = serve.ErrExpired
)

// ReadFlightFile decodes a Server flight-recorder file (ServeConfig.
// FlightPath) into oldest-first samples.
func ReadFlightFile(path string) ([]FlightSample, error) {
	return serve.ReadFlightFile(path)
}

// NewEmbeddingStore builds a sharded heap embedding store, typically from
// InferResult.Embeddings (run Infer with KeepEmbeddings set). numShards
// <= 0 selects a default.
func NewEmbeddingStore(numShards int, embeddings map[int64][]float64) (*MemEmbeddingStore, error) {
	return serve.NewStore(numShards, embeddings)
}

// LoadEmbeddingStore reads a store serialized with MemEmbeddingStore.WriteTo.
func LoadEmbeddingStore(r io.Reader) (*MemEmbeddingStore, error) {
	return serve.ReadStore(r)
}

// CreateMappedStore writes src's embeddings to path in the out-of-core
// mapped layout (see MappedEmbeddingStore). The write is staged and
// renamed into place atomically.
func CreateMappedStore(path string, src EmbeddingStore) error {
	return serve.CreateMapped(path, src)
}

// OpenMappedStore maps the store at path in O(1) time and memory: only
// the header is read eagerly; rows fault in on demand. Call Verify to
// checksum the full file, Close to unmap it.
func OpenMappedStore(path string) (*MappedEmbeddingStore, error) {
	return serve.OpenMapped(path)
}

// QuantizeStore quantizes src's rows to int8 (per-row affine scale +
// zero-point) into a heap-resident QuantEmbeddingStore. Rows with
// non-finite values are rejected.
func QuantizeStore(src EmbeddingStore) (*QuantEmbeddingStore, error) {
	return serve.Quantize(src)
}

// CreateQuantStore quantizes src to the AGLQNT01 file layout at path,
// staged and renamed into place atomically. Open the result with
// OpenQuantStore.
func CreateQuantStore(path string, src EmbeddingStore) error {
	return serve.CreateQuant(path, src)
}

// OpenQuantStore maps the quantized store at path in O(1) time and
// memory, mirroring OpenMappedStore: header checks are eager, row pages
// fault in on demand, Verify checksums the full file, Close unmaps it.
func OpenQuantStore(path string) (*QuantEmbeddingStore, error) {
	return serve.OpenQuant(path)
}

// Cluster serving types. A fleet of replicas partitions the warm embedding
// tier by node-id hash slot under an epoch-versioned placement table:
// requests for non-owned nodes proxy to the owner, link scores
// scatter-gather the two endpoint embeddings, mutations route to the
// owning replica and fan out invalidations cluster-wide, and slots migrate
// live between replicas with bit-correct results throughout (writes pause
// briefly; reads never do). See cmd/aglserve's -peers/-replica-id/-slots
// flags and README's "Running a cluster".
type (
	// PlacementTable is the epoch-versioned slot->replica ownership map.
	// Build one with EvenPlacement, evolve it with WithOwner (epoch+1),
	// persist it with WriteFile/ReadPlacementFile.
	PlacementTable = placement.Table
	// Replica wraps a Server into a cluster member: it owns the slots the
	// placement table assigns it and routes everything else.
	Replica = serve.Replica
	// ClusterStats snapshots a Replica's routing and fan-out counters.
	ClusterStats = serve.ClusterStats
	// MigrateResult summarizes one live slot migration.
	MigrateResult = serve.MigrateResult
	// EpochError reports a request fenced for carrying a stale placement
	// epoch; it unwraps to ErrStaleEpoch and is retryable after refetching
	// the table. aglserve maps it to HTTP 409 "stale_epoch".
	EpochError = placement.EpochError
)

// ErrStaleEpoch is the sentinel every EpochError unwraps to.
var ErrStaleEpoch = placement.ErrStaleEpoch

// PlacementSlots is the default hash-slot count for cluster placement.
const PlacementSlots = placement.DefaultSlots

// SlotOf maps a node id to its hash slot.
func SlotOf(id int64, slots int) int { return placement.SlotOf(id, slots) }

// EvenPlacement builds an epoch-1 table spreading slots round-robin over
// the replica addresses.
func EvenPlacement(replicas []string, slots int) (*PlacementTable, error) {
	return placement.Even(replicas, slots)
}

// ReadPlacementFile loads a placement table written with
// PlacementTable.WriteFile.
func ReadPlacementFile(path string) (*PlacementTable, error) {
	return placement.ReadFile(path)
}

// NewReplica wraps srv into a cluster replica listening on listen for
// peer RPCs. Call Join with the cluster's placement table to go live, and
// Close on shutdown.
func NewReplica(id int, srv *Server, listen string) (*Replica, error) {
	return serve.NewReplica(id, srv, listen)
}

// Serve starts an online inference server for m over g. store may be nil,
// in which case every request takes the cold forward-pass path. Close the
// returned Server when done.
//
// The serving API is context-first: srv.Score(ctx, id), srv.ScoreLink(ctx,
// src, dst) and srv.Apply(ctx, muts) all honor ctx deadlines end to end —
// a cold request whose deadline cannot be met is dropped from its
// micro-batch before the forward pass runs (ErrExpired), and under
// saturation cold requests are shed fast with a *ShedError instead of
// queueing (errors.Is ErrOverloaded; warm and cached requests are never
// shed).
//
// The served graph is dynamic: srv.Apply commits mutation batches (built
// with AddNode/AddEdge/RemoveEdge/UpdateNodeFeat) and invalidates exactly
// the affected cached scores and store rows, so every request after Apply
// returns reflects the mutated graph:
//
//	res, _ := srv.Apply(ctx, []agl.Mutation{
//		agl.AddEdge(42, 7, 1.0),
//		agl.UpdateNodeFeat(7, newFeat),
//	})
//	// res.Version advanced; res.Errs reports per-mutation failures.
//
// Link models (ModelConfig.EdgeHead set) additionally answer pair requests
// with srv.ScoreLink(ctx, src, dst): warm pairs are two store lookups plus
// one pairwise-head forward, unseen endpoints fall back to the cold
// extraction path.
//
// Always-on observability: the server samples per-interval counters into a
// fixed-size flight-recorder ring (ServeConfig.FlightPath mirrors it to a
// compact binary file); srv.Flight() snapshots it and cmd/aglmetrics reads
// a dump post-hoc.
func Serve(cfg ServeConfig, m *Model, g *Graph, store EmbeddingStore) (*Server, error) {
	return serve.New(cfg, m, g, store)
}
