#!/usr/bin/env python3
"""Diff-check served /link AUC between two aglserve backends.

    quant_auc.py <nodes.tsv> <edges.tsv> <float_url> <quant_url> <baseline.json>

Builds a balanced pair set (positives sampled from the edge table,
negatives from non-edges), scores every pair through GET /link on both
servers, computes the rank-sum ROC-AUC of each, and fails when the
quantized backend's AUC regret relative to the float backend exceeds the
budget: the committed quant.auc_regret_pct baseline, or — when that sits
at 0, the zero-baseline convention of bench-baseline.json — the per-PR
bench tolerance of 10 (percent).
"""
import json
import random
import sys
import urllib.request


def served_score(url: str, src: int, dst: int) -> float:
    with urllib.request.urlopen(f"{url}/link?src={src}&dst={dst}", timeout=30) as r:
        return float(json.load(r)["score"])


def auc(labeled):
    """Rank-sum ROC-AUC with midranks for ties."""
    ranked = sorted(labeled, key=lambda p: p[1])
    ranks, i = {}, 0
    while i < len(ranked):
        j = i
        while j < len(ranked) and ranked[j][1] == ranked[i][1]:
            j += 1
        mid = (i + j + 1) / 2  # 1-based midrank of the tie group
        for k in range(i, j):
            ranks[id(ranked[k])] = mid
        i = j
    pos = [p for p in labeled if p[0] == 1]
    neg = [p for p in labeled if p[0] == 0]
    rank_sum = sum(ranks[id(p)] for p in pos)
    return (rank_sum - len(pos) * (len(pos) + 1) / 2) / (len(pos) * len(neg))


def main() -> int:
    nodes_path, edges_path, float_url, quant_url, baseline_path = sys.argv[1:6]
    ids = [int(line.split("\t")[0]) for line in open(nodes_path) if line.strip()]
    edges = set()
    for line in open(edges_path):
        if line.strip():
            f = line.split("\t")
            edges.add((int(f[0]), int(f[1])))

    rng = random.Random(7)
    pos = rng.sample(sorted(edges), min(40, len(edges)))
    neg = []
    while len(neg) < len(pos):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b and (a, b) not in edges and (b, a) not in edges:
            neg.append((a, b))
    pairs = [(1, s, d) for s, d in pos] + [(0, s, d) for s, d in neg]

    auc_by_url = {}
    for url in (float_url, quant_url):
        labeled = [(label, served_score(url, s, d)) for label, s, d in pairs]
        auc_by_url[url] = auc(labeled)

    budget = json.load(open(baseline_path)).get("quant.auc_regret_pct", 0) or 10.0
    a_f, a_q = auc_by_url[float_url], auc_by_url[quant_url]
    regret = max(0.0, (a_f - a_q) / a_f * 100) if a_f > 0 else 0.0
    print(f"served /link AUC: float {a_f:.4f}, quant {a_q:.4f}, "
          f"regret {regret:.2f}% (budget {budget:g}%)")
    if regret > budget:
        print(f"quantized serving regressed AUC past the budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
