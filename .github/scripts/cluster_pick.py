#!/usr/bin/env python3
"""Pick probe nodes for the e2e-cluster job by hash-slot ownership.

Mirrors internal/placement.SlotOf (Fibonacci hashing) so the shell side of
the CI job can reason about slot ownership without an extra Go binary:

    cluster_pick.py pair <nodes.tsv> <slots> <replicas>
        -> "SRC DST", two node ids owned by different replicas (for the
           cross-shard /link assert)
    cluster_pick.py slot <nodes.tsv> <slots> <slot>
        -> one node id hashing into the given slot (the migration probe)
"""
import sys

GOLDEN = 0x9E3779B97F4A7C15
MASK = (1 << 64) - 1


def slot_of(node_id: int, slots: int) -> int:
    return ((node_id * GOLDEN) & MASK) % slots


def main() -> int:
    mode, path, slots = sys.argv[1], sys.argv[2], int(sys.argv[3])
    ids = [int(line.split("\t")[0]) for line in open(path) if line.strip()]
    if mode == "pair":
        replicas = int(sys.argv[4])
        owner = lambda i: slot_of(i, slots) % replicas  # even table: round-robin
        a = ids[0]
        b = next(i for i in ids[1:] if owner(i) != owner(a))
        print(a, b)
    elif mode == "slot":
        want = int(sys.argv[4])
        print(next(i for i in ids if slot_of(i, slots) == want))
    else:
        print(f"unknown mode {mode!r}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
