#!/usr/bin/env python3
"""Assertions for the e2e-chaos job (SIGKILL a replica under traffic).

The shell side records traffic and placement snapshots; this script holds
the numeric judgments so tolerance handling lives in one place:

    chaos_check.py verify <expected.json> <traffic.jsonl> [tol]
        expected.json is one /score payload ({"node":N,"scores":[...]});
        traffic.jsonl lines are "<http-code> <body-json>". Every 200
        answer must match the expected scores within tol (default 1e-9 —
        rows inherited through failover recompute cold, which is close,
        not bit-equal). Fails on any wrong answer, on zero served
        requests, or if none of the last 5 requests succeeded (the fleet
        must have CONVERGED, not merely survived).
    chaos_check.py owners <placement.json> <victim>
        Fails if the dead replica still owns any slot.
    chaos_check.py close <a.json> <b.json> [tol]
        Fails if the two /score payloads differ beyond tol.
"""
import json
import sys


def scores(path):
    with open(path) as f:
        return json.load(f)["scores"]


def close(a, b, tol):
    return len(a) == len(b) and all(abs(x - y) <= tol for x, y in zip(a, b))


def cmd_verify(expected_path, traffic_path, tol):
    want = scores(expected_path)
    total = served = wrong = 0
    tail = []
    with open(traffic_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            total += 1
            code, _, body = line.partition(" ")
            ok = False
            if code == "200":
                served += 1
                ok = True
                try:
                    got = json.loads(body)["scores"]
                except (json.JSONDecodeError, KeyError):
                    wrong += 1
                else:
                    if not close(got, want, tol):
                        wrong += 1
                        print(f"wrong answer: {body}", file=sys.stderr)
            tail.append(ok)
    print(f"chaos traffic: total={total} served={served} wrong={wrong}")
    if total == 0 or served == 0:
        print("no traffic served — the zero-wrong-answers claim is vacuous", file=sys.stderr)
        return 1
    if wrong > 0:
        return 1
    if not any(tail[-5:]):
        print("none of the last 5 requests succeeded — fleet did not converge", file=sys.stderr)
        return 1
    return 0


def cmd_owners(placement_path, victim):
    with open(placement_path) as f:
        table = json.load(f)
    owned = [s for s, o in enumerate(table["owners"]) if o == victim]
    if owned:
        print(f"replica {victim} still owns slots {owned} at epoch {table['epoch']}", file=sys.stderr)
        return 1
    print(f"replica {victim} owns nothing at epoch {table['epoch']}")
    return 0


def main():
    mode = sys.argv[1]
    if mode == "verify":
        tol = float(sys.argv[4]) if len(sys.argv) > 4 else 1e-9
        return cmd_verify(sys.argv[2], sys.argv[3], tol)
    if mode == "owners":
        return cmd_owners(sys.argv[2], int(sys.argv[3]))
    if mode == "close":
        tol = float(sys.argv[4]) if len(sys.argv) > 4 else 1e-9
        if not close(scores(sys.argv[2]), scores(sys.argv[3]), tol):
            print(f"{sys.argv[2]} and {sys.argv[3]} diverge beyond {tol}", file=sys.stderr)
            return 1
        return 0
    print(f"unknown mode {mode!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
