// Citation: the paper's Cora benchmark scenario — semi-supervised node
// classification on a citation network, comparing the AGL pipeline against
// the in-memory full-graph baseline (the DGL/PyG stand-in) for all three
// GNNs of Table 3.
package main

import (
	"fmt"
	"log"

	"agl"
	"agl/internal/baseline"
)

func main() {
	log.SetFlags(0)

	ds, err := agl.NewCora(agl.CoraConfig{Seed: 1}) // published Cora shape
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ds.Summary())

	flatTrain, err := agl.Flatten(agl.FlatConfig{Hops: 2, Seed: 3},
		ds.G, agl.ClassTargets(ds, ds.Train))
	if err != nil {
		log.Fatal(err)
	}
	flatTest, err := agl.Flatten(agl.FlatConfig{Hops: 2, Seed: 3},
		ds.G, agl.ClassTargets(ds, ds.Test))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s  %-18s  %-10s\n", "model", "fullgraph-acc", "agl-acc")
	for _, kind := range []string{agl.GCN, agl.SAGE, agl.GAT} {
		heads := 1
		if kind == agl.GAT {
			heads = 2
		}
		mcfg := agl.ModelConfig{
			Kind: kind, InDim: ds.G.FeatureDim(), Hidden: 16,
			Classes: ds.NumClasses, Layers: 2, Heads: heads,
			Act: agl.ActReLU, Dropout: 0.2, Seed: 5,
		}
		// Full-graph baseline (DGL/PyG standalone stand-in).
		bres, err := baseline.Train(ds, baseline.Config{Model: mcfg, Epochs: 100, LR: 0.02})
		if err != nil {
			log.Fatal(err)
		}
		bacc, err := baseline.Evaluate(bres.Model, ds, ds.Test)
		if err != nil {
			log.Fatal(err)
		}
		// AGL pipeline.
		res, err := agl.Train(agl.TrainConfig{
			Model: mcfg, Loss: agl.LossCE, BatchSize: 32, Epochs: 40, LR: 0.02,
			Pipeline: true, Pruning: true, AggThreads: 4,
			Eval: flatTest.Records, EvalMetric: agl.MetricAccuracy, Seed: 7,
		}, flatTrain.Records)
		if err != nil {
			log.Fatal(err)
		}
		acc := res.History[len(res.History)-1].Metric
		fmt.Printf("%-6s  %-18.3f  %-10.3f\n", kind, bacc, acc)
	}
	fmt.Println("\npaper Table 3 (Cora accuracy): GCN 0.811, GraphSAGE 0.827, GAT 0.830")
}
