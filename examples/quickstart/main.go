// Quickstart: the smallest end-to-end AGL run — build a toy social graph,
// materialize 2-hop GraphFeatures with GraphFlat, train a GCN on the
// parameter server, and score every node with GraphInfer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"agl"
)

func main() {
	log.SetFlags(0)

	// A toy graph: two communities of 60 nodes with opposite feature means
	// and mostly intra-community edges.
	rng := rand.New(rand.NewSource(42))
	var nodes []agl.Node
	var edges []agl.Edge
	labels := map[int64]int{}
	const n = 120
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[int64(i)] = cls
		mean := -1.0
		if cls == 1 {
			mean = 1.0
		}
		feat := make([]float64, 8)
		for j := range feat {
			feat[j] = mean + 0.8*rng.NormFloat64()
		}
		nodes = append(nodes, agl.Node{ID: int64(i), Feat: feat})
		for d := 0; d < 3; d++ {
			peer := (i + 2*(1+rng.Intn(8))) % n // same community parity
			edges = append(edges,
				agl.Edge{Src: int64(i), Dst: int64(peer), Weight: 1},
				agl.Edge{Src: int64(peer), Dst: int64(i), Weight: 1})
		}
	}
	g, err := agl.NewGraph(nodes, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// GraphFlat: 2-hop neighborhoods for the first 60 nodes (our labeled set).
	targets := map[int64]agl.Target{}
	for id := int64(0); id < 60; id++ {
		y := labels[id]
		targets[id] = agl.Target{Label: int64(y), LabelVec: []float64{float64(y)}}
	}
	flat, err := agl.Flatten(agl.FlatConfig{Hops: 2, MaxNeighbors: 10, Seed: 7}, g, targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphFlat: %d GraphFeatures, %.1f KB shuffled over %d rounds\n",
		len(flat.Records), float64(flat.TotalShuffledBytes())/1e3, len(flat.RoundStats))

	// GraphTrainer: 2-layer GCN, binary head, all optimizations on.
	res, err := agl.Train(agl.TrainConfig{
		Model: agl.ModelConfig{
			Kind: agl.GCN, InDim: 8, Hidden: 8, Classes: 1, Layers: 2,
			Act: agl.ActReLU, Seed: 1,
		},
		Loss: agl.LossBCE, BatchSize: 16, Epochs: 15, LR: 0.05,
		Pipeline: true, Pruning: true, AggThreads: 4, Seed: 2,
	}, flat.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphTrainer: loss %.4f -> %.4f in %s\n",
		res.History[0].Loss, res.History[len(res.History)-1].Loss, res.Total.Round(1e6))

	// GraphInfer: score the whole graph, including the 60 unlabeled nodes.
	inf, err := agl.Infer(agl.InferConfig{MaxNeighbors: 10, Seed: 7}, res.Model, g)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for id, s := range inf.Scores {
		pred := 0
		if s[0] >= 0.5 {
			pred = 1
		}
		if pred == labels[id] {
			correct++
		}
	}
	fmt.Printf("GraphInfer: scored %d nodes in %s; whole-graph accuracy %.1f%%\n",
		len(inf.Scores), inf.Wall.Round(1e6), 100*float64(correct)/float64(len(inf.Scores)))
}
