// Distributed: the parameter-server substrate over a real network
// transport. Shards are served on loopback TCP via net/rpc; workers dial
// in, pull weights, and push gradients in synchronous (BSP) mode —
// demonstrating that AGL's training contract needs nothing beyond classic
// PS infrastructure. This example drives the substrate directly (it lives
// below the public API), training a logistic model on plain features.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"agl/internal/nn"
	"agl/internal/ps"
	"agl/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// Synthetic logistic-regression task.
	rng := rand.New(rand.NewSource(1))
	dim, samples := 16, 4000
	trueW := tensor.New(dim, 1)
	trueW.RandFill(rng, 1)
	X := tensor.New(samples, dim)
	X.RandFill(rng, 1)
	y := make([]float64, samples)
	for i := 0; i < samples; i++ {
		var z float64
		for j, v := range X.Row(i) {
			z += v * trueW.Data[j]
		}
		if nn.Sigmoid(z) > rng.Float64() {
			y[i] = 1
		}
	}

	// Server side: two shards with server-side Adam, BSP consistency.
	global := nn.NewParamSet(nn.NewParam("w", dim, 1), nn.NewParam("b", 1, 1))
	cl := ps.NewCluster(2, global, func() nn.Optimizer { return nn.NewAdam(0.05) }, ps.Sync)
	addrs, stop, err := ps.Serve(cl)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Printf("parameter servers listening: %v\n", addrs)

	// Worker side: 4 workers connect over TCP and train their partitions.
	const workers = 4
	const steps = 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := ps.Dial(addrs)
			if err != nil {
				log.Fatal(err)
			}
			client.Register()
			defer client.Deregister()
			local := nn.NewParamSet(nn.NewParam("w", dim, 1), nn.NewParam("b", 1, 1))
			lo, hi := w*samples/workers, (w+1)*samples/workers
			for step := 0; step < steps; step++ {
				if err := client.PullInto(local); err != nil {
					log.Fatal(err)
				}
				wv := local.Get("w").W
				bv := local.Get("b").W.Data[0]
				gw := local.Get("w").Grad
				gw.Zero()
				var gb float64
				inv := 1 / float64(hi-lo)
				for i := lo; i < hi; i++ {
					row := X.Row(i)
					var z float64
					for j, v := range row {
						z += v * wv.Data[j]
					}
					d := (nn.Sigmoid(z+bv) - y[i]) * inv
					for j, v := range row {
						gw.Data[j] += d * v
					}
					gb += d
				}
				local.Get("b").Grad.Data[0] = gb
				if err := client.PushGrads(local); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Read back the trained weights and evaluate.
	final := nn.NewParamSet(nn.NewParam("w", dim, 1), nn.NewParam("b", 1, 1))
	cl.Snapshot(final)
	correct := 0
	for i := 0; i < samples; i++ {
		var z float64
		for j, v := range X.Row(i) {
			z += v * final.Get("w").W.Data[j]
		}
		z += final.Get("b").W.Data[0]
		if (z > 0) == (y[i] == 1) {
			correct++
		}
	}
	down, up := cl.Traffic()
	fmt.Printf("BSP steps applied: %d (every push barrier-averaged over %d workers)\n",
		cl.Shard(0).Version(), workers)
	fmt.Printf("accuracy %.1f%%, PS traffic %.1f KB down / %.1f KB up\n",
		100*float64(correct)/float64(samples), float64(down)/1e3, float64(up)/1e3)
}
