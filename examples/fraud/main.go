// Fraud: the paper's motivating industrial scenario — risk scoring over a
// power-law User-User interaction Graph. Demonstrates what the public
// benchmarks don't: hub re-indexing, weighted neighbor sampling over
// interaction strengths, distributed async training, and whole-graph
// GraphInfer deployment producing a ranked risk report.
package main

import (
	"fmt"
	"log"
	"sort"

	"agl"
)

func main() {
	log.SetFlags(0)

	ds, err := agl.NewUUG(agl.UUGConfig{Nodes: 6000, FeatDim: 32, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.G.Stats()
	fmt.Printf("user-user graph: %d users, %d interactions, max in-degree %d (mean %.1f)\n",
		stats.Nodes, stats.Edges, stats.MaxInDegree, stats.MeanInDegree)

	// GraphFlat with the industrial knobs: weighted sampling keeps the
	// strongest interactions; hubs above 64 in-edges are re-indexed across
	// suffixed shuffle keys.
	flatCfg := agl.FlatConfig{
		Hops: 2, MaxNeighbors: 15, Strategy: agl.SampleWeighted,
		HubThreshold: 64, Seed: 13,
	}
	train, err := agl.Flatten(flatCfg, ds.G, agl.BinaryTargets(ds, ds.Train))
	if err != nil {
		log.Fatal(err)
	}
	test, err := agl.Flatten(flatCfg, ds.G, agl.BinaryTargets(ds, ds.Test))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphFlat: %d features, %d hub users re-indexed\n",
		len(train.Records), train.HubCount)

	// 2-layer GAT with 8-dim embeddings — the paper's UUG model — trained
	// with 4 async workers.
	res, err := agl.TrainWithHistory(agl.TrainConfig{
		Model: agl.ModelConfig{
			Kind: agl.GAT, InDim: 32, Hidden: 8, Classes: 1, Layers: 2,
			Act: agl.ActReLU, Seed: 17,
		},
		Loss: agl.LossBCE, BatchSize: 64, Epochs: 7, LR: 0.01,
		Workers: 4, PSShards: 2, Mode: agl.Async,
		Pipeline: true, Pruning: true, AggThreads: 4,
		Eval: test.Records, EvalMetric: agl.MetricAUC, EvalEvery: 1, Seed: 19,
	}, train.Records)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.History {
		fmt.Printf("epoch %d: loss %.4f AUC %.4f\n", st.Epoch, st.Loss, st.Metric)
	}

	// Deploy: score all users with GraphInfer using the same sampling
	// configuration as training (consistency, paper §3.4).
	inf, err := agl.Infer(agl.InferConfig{
		MaxNeighbors: 15, Strategy: agl.SampleWeighted,
		HubThreshold: 64, Seed: 13,
	}, res.Model, ds.G)
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		id   int64
		risk float64
	}
	ranked := make([]scored, 0, len(inf.Scores))
	for id, s := range inf.Scores {
		ranked = append(ranked, scored{id, s[0]})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].risk > ranked[j].risk })
	fmt.Printf("\nGraphInfer scored %d users in %s; top-10 risk:\n",
		len(ranked), inf.Wall.Round(1e6))
	hits := 0
	for i := 0; i < 10 && i < len(ranked); i++ {
		actual := ds.LabelOf(ranked[i].id)
		if actual == 1 {
			hits++
		}
		fmt.Printf("  user %-6d risk %.3f (actual class %d)\n",
			ranked[i].id, ranked[i].risk, actual)
	}
	fmt.Printf("precision@10 = %d/10\n", hits)
}
