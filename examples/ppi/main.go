// PPI: multi-label protein-function prediction across 24 independent
// graphs — the paper's second public benchmark. Demonstrates multi-label
// BCE training over GraphFeatures and micro-F1 evaluation, plus the effect
// of the §3.3.2 optimization strategies on epoch time.
package main

import (
	"fmt"
	"log"
	"time"

	"agl"
)

func main() {
	log.SetFlags(0)

	// Scaled-down PPI (the published dataset has 56944 nodes across 24
	// graphs; this keeps the 24-graph structure at a twentieth the size).
	ds, err := agl.NewPPI(agl.PPIConfig{Scale: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ds.Summary())

	flatCfg := agl.FlatConfig{Hops: 2, MaxNeighbors: 15, Seed: 2}
	train, err := agl.Flatten(flatCfg, ds.G, agl.MultiLabelTargets(ds, ds.Train))
	if err != nil {
		log.Fatal(err)
	}
	test, err := agl.Flatten(flatCfg, ds.G, agl.MultiLabelTargets(ds, ds.Test))
	if err != nil {
		log.Fatal(err)
	}

	mcfg := agl.ModelConfig{
		Kind: agl.SAGE, InDim: ds.G.FeatureDim(), Hidden: 64, Classes: 121,
		Layers: 2, Act: agl.ActReLU, Seed: 3,
	}
	configs := []struct {
		name       string
		pipeline   bool
		pruning    bool
		aggThreads int
	}{
		{"base", true, false, 1},
		{"+pruning", true, true, 1},
		{"+partition", true, false, 8},
		{"+pruning&partition", true, true, 8},
	}
	fmt.Printf("%-20s  %-12s  %-8s\n", "config", "time/epoch", "micro-F1")
	for _, c := range configs {
		res, err := agl.Train(agl.TrainConfig{
			Model: mcfg, Loss: agl.LossBCE, BatchSize: 64, Epochs: 6, LR: 0.01,
			Pipeline: c.pipeline, Pruning: c.pruning, AggThreads: c.aggThreads,
			Eval: test.Records, EvalMetric: agl.MetricMicroF1, Seed: 4,
		}, train.Records)
		if err != nil {
			log.Fatal(err)
		}
		per := res.Total / time.Duration(len(res.History))
		f1 := res.History[len(res.History)-1].Metric
		fmt.Printf("%-20s  %-12s  %-8.3f\n", c.name, per.Round(time.Millisecond), f1)
	}
	fmt.Println("\npaper Table 4 shape: pruning helps at depth >= 2; partitioning helps")
	fmt.Println("aggregation-bound models (GCN/SAGE) more than attention-bound GAT;")
	fmt.Println("identical micro-F1 across configs (optimizations are exact).")
}
