package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agl/internal/tensor"
)

func smallCSR() *CSR {
	// 4 nodes: edges (dst,src): 0<-1, 0<-2, 1<-2, 2<-3, 3<-0
	return NewCSR(4, 4, []Coo{
		{0, 1, 1}, {0, 2, 2}, {1, 2, 3}, {2, 3, 4}, {3, 0, 5},
	})
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	var es []Coo
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				es = append(es, Coo{r, c, rng.NormFloat64()})
			}
		}
	}
	return NewCSR(rows, cols, es)
}

func TestNewCSRBasics(t *testing.T) {
	m := smallCSR()
	if m.NNZ() != 5 {
		t.Fatalf("NNZ=%d", m.NNZ())
	}
	if m.At(0, 2) != 2 || m.At(2, 3) != 4 || m.At(1, 1) != 0 {
		t.Fatalf("At values wrong")
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 1 || vals[1] != 2 {
		t.Fatalf("Row(0)=%v %v", cols, vals)
	}
	if m.RowNNZ(3) != 1 {
		t.Fatalf("RowNNZ(3)=%d", m.RowNNZ(3))
	}
}

func TestNewCSRDuplicatesSummed(t *testing.T) {
	m := NewCSR(2, 2, []Coo{{0, 1, 1}, {0, 1, 2.5}})
	if m.NNZ() != 1 || m.At(0, 1) != 3.5 {
		t.Fatalf("duplicates not merged: nnz=%d val=%v", m.NNZ(), m.At(0, 1))
	}
}

func TestNewCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 2, []Coo{{2, 0, 1}})
}

func TestEntriesRoundTrip(t *testing.T) {
	m := smallCSR()
	m2 := NewCSR(m.NumRows, m.NumCols, m.Entries())
	if m2.NNZ() != m.NNZ() {
		t.Fatal("entries round trip lost edges")
	}
	for _, e := range m.Entries() {
		if m2.At(e.Row, e.Col) != e.Val {
			t.Fatalf("mismatch at (%d,%d)", e.Row, e.Col)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := smallCSR()
	mt := m.Transpose()
	for _, e := range m.Entries() {
		if mt.At(e.Col, e.Row) != e.Val {
			t.Fatalf("transpose missing (%d,%d)", e.Col, e.Row)
		}
	}
	if mt.NNZ() != m.NNZ() {
		t.Fatal("transpose changed nnz")
	}
}

func TestSpMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 9, 7, 0.3)
	x := tensor.New(7, 5)
	x.RandFill(rng, 1)
	got := m.SpMMNew(x)

	dense := tensor.New(9, 7)
	for _, e := range m.Entries() {
		dense.Set(e.Row, e.Col, e.Val)
	}
	want := tensor.MatMulNew(dense, x)
	if !tensor.Equalish(got, want, 1e-12) {
		t.Fatalf("SpMM differs from dense by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestSpMMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomCSR(rng, 64, 64, 0.1)
	x := tensor.New(64, 16)
	x.RandFill(rng, 1)
	want := m.SpMMNew(x)
	for _, threads := range []int{1, 2, 3, 8, 100} {
		parts := PartitionEdges(m, threads)
		got := tensor.New(64, 16)
		m.SpMMParallel(got, x, parts)
		if !tensor.Equalish(got, want, 1e-12) {
			t.Fatalf("threads=%d mismatch", threads)
		}
	}
}

func TestPartitionEdgesCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomCSR(rng, 33, 33, 0.2)
	for _, threads := range []int{1, 2, 5, 16, 64} {
		parts := PartitionEdges(m, threads)
		if len(parts) > threads {
			t.Fatalf("too many partitions: %d > %d", len(parts), threads)
		}
		row := 0
		nnz := 0
		for _, p := range parts {
			if p.LoRow != row {
				t.Fatalf("gap: partition starts at %d want %d", p.LoRow, row)
			}
			row = p.HiRow
			nnz += p.NNZ
		}
		if row != m.NumRows {
			t.Fatalf("rows not covered: %d != %d", row, m.NumRows)
		}
		if nnz != m.NNZ() {
			t.Fatalf("nnz not covered: %d != %d", nnz, m.NNZ())
		}
	}
}

func TestPartitionEdgesBalance(t *testing.T) {
	// A skewed matrix: one hub row with many edges.
	var es []Coo
	for c := 0; c < 100; c++ {
		es = append(es, Coo{0, c, 1})
	}
	for r := 1; r < 50; r++ {
		es = append(es, Coo{r, (r * 3) % 100, 1})
	}
	m := NewCSR(50, 100, es)
	parts := PartitionEdges(m, 4)
	// The hub row cannot be split (destination-partitioned), so partition 0
	// holds >= 100 edges; remaining partitions share the rest.
	if parts[0].NNZ < 100 {
		t.Fatalf("hub row split across partitions: %+v", parts)
	}
}

func TestFilterEdges(t *testing.T) {
	m := smallCSR()
	f := m.FilterEdges(func(row, col int) bool { return row != 0 })
	if f.NNZ() != 3 || f.RowNNZ(0) != 0 || f.At(1, 2) != 3 {
		t.Fatalf("FilterEdges wrong: nnz=%d", f.NNZ())
	}
	if f.NumRows != m.NumRows || f.NumCols != m.NumCols {
		t.Fatal("FilterEdges changed dims")
	}
}

func TestAddSelfLoops(t *testing.T) {
	m := smallCSR()
	s := m.AddSelfLoops(1)
	if s.NNZ() != m.NNZ()+4 {
		t.Fatalf("NNZ=%d", s.NNZ())
	}
	for i := 0; i < 4; i++ {
		if s.At(i, i) != 1 {
			t.Fatalf("missing self loop %d", i)
		}
	}
	// Incrementing an existing diagonal.
	d := NewCSR(2, 2, []Coo{{0, 0, 2}})
	if d.AddSelfLoops(1).At(0, 0) != 3 {
		t.Fatal("self loop not merged with existing diagonal")
	}
}

func TestRowNormalize(t *testing.T) {
	m := smallCSR().RowNormalize()
	for r := 0; r < m.NumRows; r++ {
		_, vals := m.Row(r)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if len(vals) > 0 && math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSymNormalize(t *testing.T) {
	// Unweighted path graph 0-1-2 (both directions).
	m := NewCSR(3, 3, []Coo{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}})
	s := m.SymNormalize()
	// With self loops, deg = [2,3,2]; Â_01 = 1/sqrt(2*3).
	want := 1 / math.Sqrt(6)
	if math.Abs(s.At(0, 1)-want) > 1e-12 {
		t.Fatalf("Â_01=%v want %v", s.At(0, 1), want)
	}
	if math.Abs(s.At(1, 1)-1.0/3.0) > 1e-12 {
		t.Fatalf("Â_11=%v want 1/3", s.At(1, 1))
	}
}

func TestSymNormalizeWithDegMatchesSymNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := randomCSR(rng, 12, 12, 0.3)
	// Make weights positive so degrees are well-defined.
	for i := range m.Val {
		if m.Val[i] < 0 {
			m.Val[i] = -m.Val[i]
		}
	}
	// deg[i] = weighted in-degree + 1, the same convention SymNormalize
	// derives internally from m+I.
	deg := make([]float64, m.NumRows)
	for r := 0; r < m.NumRows; r++ {
		_, vals := m.Row(r)
		d := 1.0
		for _, v := range vals {
			d += v
		}
		deg[r] = d
	}
	a := m.SymNormalize()
	b := SymNormalizeWithDeg(m, deg)
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nnz %d vs %d", a.NNZ(), b.NNZ())
	}
	for _, e := range a.Entries() {
		if math.Abs(b.At(e.Row, e.Col)-e.Val) > 1e-12 {
			t.Fatalf("(%d,%d): %v vs %v", e.Row, e.Col, b.At(e.Row, e.Col), e.Val)
		}
	}
}

func TestSymNormalizeWithDegValidation(t *testing.T) {
	m := smallCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on degree length mismatch")
		}
	}()
	SymNormalizeWithDeg(m, []float64{1})
}

func TestAggregatorForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := randomCSR(rng, 20, 20, 0.2)
	x := tensor.New(20, 6)
	x.RandFill(rng, 1)
	for _, threads := range []int{1, 4} {
		ag := NewAggregator(m, threads)
		fwd := tensor.New(20, 6)
		ag.Forward(fwd, x)
		if !tensor.Equalish(fwd, m.SpMMNew(x), 1e-12) {
			t.Fatalf("Forward mismatch threads=%d", threads)
		}
		bwd := tensor.New(20, 6)
		ag.Backward(bwd, x)
		if !tensor.Equalish(bwd, m.Transpose().SpMMNew(x), 1e-12) {
			t.Fatalf("Backward mismatch threads=%d", threads)
		}
	}
}

func TestRangeEdgesParallelCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 40, 40, 0.1)
	ag := NewAggregator(m, 4)
	covered := make([]bool, 40)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	ag.RangeEdgesParallel(func(lo, hi int) {
		<-mu
		for r := lo; r < hi; r++ {
			if covered[r] {
				mu <- struct{}{}
				t.Errorf("row %d covered twice", r)
				return
			}
			covered[r] = true
		}
		mu <- struct{}{}
	})
	for r, ok := range covered {
		if !ok {
			t.Fatalf("row %d not covered", r)
		}
	}
}

// Property: (Aᵀ)ᵀ == A.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.3)
		tt := m.Transpose().Transpose()
		if tt.NNZ() != m.NNZ() {
			return false
		}
		for _, e := range m.Entries() {
			if tt.At(e.Row, e.Col) != e.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SpMM linearity — A(x+y) == Ax + Ay.
func TestSpMMLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols, feat := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(6)
		m := randomCSR(rng, rows, cols, 0.4)
		x, y := tensor.New(cols, feat), tensor.New(cols, feat)
		x.RandFill(rng, 1)
		y.RandFill(rng, 1)
		xy := tensor.New(cols, feat)
		tensor.Add(xy, x, y)
		lhs := m.SpMMNew(xy)
		rhs := tensor.New(rows, feat)
		tensor.Add(rhs, m.SpMMNew(x), m.SpMMNew(y))
		return tensor.Equalish(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpMMSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m := randomCSR(rng, 2000, 2000, 0.005)
	x := tensor.New(2000, 64)
	x.RandFill(rng, 1)
	dst := tensor.New(2000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMM(dst, x)
	}
}

func BenchmarkSpMMPartitioned8(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m := randomCSR(rng, 2000, 2000, 0.005)
	x := tensor.New(2000, 64)
	x.RandFill(rng, 1)
	dst := tensor.New(2000, 64)
	parts := PartitionEdges(m, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMMParallel(dst, x, parts)
	}
}

// BenchmarkPrepareWS measures the per-batch adjacency pipeline the trainer
// runs before every step — symmetric normalization plus aggregator (and
// transpose) construction — against a warmed workspace.
func BenchmarkPrepareWS(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m := randomCSR(rng, 2000, 2000, 0.005)
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm := m.SymNormalizeWS(ws)
		NewAggregatorWS(ws, norm, 0)
		ws.Reset()
	}
}

// BenchmarkPrepareAlloc is BenchmarkPrepareWS without the workspace — the
// engine's pre-overhaul behavior, kept for before/after comparison.
func BenchmarkPrepareAlloc(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m := randomCSR(rng, 2000, 2000, 0.005)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm := m.SymNormalize()
		NewAggregator(norm, 0)
	}
}
