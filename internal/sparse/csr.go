// Package sparse implements the compressed sparse row (CSR) kernels used by
// AGL's GNN layers: sparse-dense matrix products, transposes, per-layer edge
// pruning, and the destination-partitioned parallel aggregation the paper
// calls "edge partitioning".
package sparse

import (
	"fmt"
	"math"
	"sort"

	"agl/internal/tensor"
)

// Coo is one coordinate-format entry: an edge from column (source) Col to
// row (destination) Row carrying weight Val. The row/column orientation
// matches the paper's adjacency convention: A[v][u] > 0 means edge u→v, so a
// row gathers a node's in-edges.
type Coo struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix. Rows are destination nodes; the
// entries of row v are v's in-edges. Edges within a row are sorted by
// column index so that edge-aligned auxiliary arrays (edge features,
// attention coefficients) are deterministic.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int     // len NumRows+1
	ColIdx           []int     // len NNZ()
	Val              []float64 // len NNZ(); edge weights
}

// NewCSR builds a CSR matrix from coordinate entries. Duplicate (row, col)
// entries have their values summed.
func NewCSR(numRows, numCols int, entries []Coo) *CSR {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= numRows || e.Col < 0 || e.Col >= numCols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, numRows, numCols))
		}
	}
	sorted := make([]Coo, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	// Merge duplicates.
	out := sorted[:0]
	for _, e := range sorted {
		if n := len(out); n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val += e.Val
			continue
		}
		out = append(out, e)
	}
	m := &CSR{
		NumRows: numRows,
		NumCols: numCols,
		RowPtr:  make([]int, numRows+1),
		ColIdx:  make([]int, len(out)),
		Val:     make([]float64, len(out)),
	}
	for i, e := range out {
		m.RowPtr[e.Row+1]++
		m.ColIdx[i] = e.Col
		m.Val[i] = e.Val
	}
	for r := 0; r < numRows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the number of stored entries (edges).
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row r as views.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowNNZ returns the number of entries in row r.
func (m *CSR) RowNNZ(r int) int { return m.RowPtr[r+1] - m.RowPtr[r] }

// At returns the value at (r, c), or 0 when absent. O(log nnz(row)).
func (m *CSR) At(r, c int) float64 {
	cols, vals := m.Row(r)
	i := sort.SearchInts(cols, c)
	if i < len(cols) && cols[i] == c {
		return vals[i]
	}
	return 0
}

// Entries returns all entries in row-major order.
func (m *CSR) Entries() []Coo {
	out := make([]Coo, 0, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			out = append(out, Coo{Row: r, Col: c, Val: vals[i]})
		}
	}
	return out
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  append([]int(nil), m.RowPtr...),
		ColIdx:  append([]int(nil), m.ColIdx...),
		Val:     append([]float64(nil), m.Val...),
	}
	return c
}

// Transpose returns mᵀ. Used to backpropagate through an aggregation:
// if Y = A·X then ∂L/∂X = Aᵀ·∂L/∂Y.
func (m *CSR) Transpose() *CSR {
	nnz := m.NNZ()
	t := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int, m.NumCols+1),
		ColIdx:  make([]int, nnz),
		Val:     make([]float64, nnz),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.NumRows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := append([]int(nil), t.RowPtr...)
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			pos := next[c]
			next[c]++
			t.ColIdx[pos] = r
			t.Val[pos] = vals[i]
		}
	}
	return t
}

// TransposeWithMap returns mᵀ together with fwd, where fwd[i] is the index
// into m's edge arrays of the transpose's i-th edge. GAT's backward pass
// uses the map to read forward-pass attention coefficients while iterating
// source-partitioned (conflict-free) over the transpose.
func (m *CSR) TransposeWithMap() (*CSR, []int) {
	nnz := m.NNZ()
	t := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int, m.NumCols+1),
		ColIdx:  make([]int, nnz),
		Val:     make([]float64, nnz),
	}
	fwd := make([]int, nnz)
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.NumRows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := append([]int(nil), t.RowPtr...)
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			c := m.ColIdx[i]
			pos := next[c]
			next[c]++
			t.ColIdx[pos] = r
			t.Val[pos] = m.Val[i]
			fwd[pos] = i
		}
	}
	return t, fwd
}

// SpMM computes dst = m @ x where x is dense. dst must be m.NumRows×x.Cols.
func (m *CSR) SpMM(dst, x *tensor.Matrix) {
	m.checkSpMM(dst, x)
	m.spmmRows(dst, x, 0, m.NumRows)
}

func (m *CSR) checkSpMM(dst, x *tensor.Matrix) {
	if x.Rows != m.NumCols {
		panic(fmt.Sprintf("sparse: SpMM inner dims %d vs %d", m.NumCols, x.Rows))
	}
	if dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: SpMM dst %dx%d want %dx%d", dst.Rows, dst.Cols, m.NumRows, x.Cols))
	}
}

// spmmRows computes rows [lo, hi) of dst = m @ x.
func (m *CSR) spmmRows(dst, x *tensor.Matrix, lo, hi int) {
	n := x.Cols
	for r := lo; r < hi; r++ {
		drow := dst.Row(r)
		for j := range drow {
			drow[j] = 0
		}
		cols, vals := m.Row(r)
		for i, c := range cols {
			w := vals[i]
			xrow := x.Data[c*n : (c+1)*n]
			for j, xv := range xrow {
				drow[j] += w * xv
			}
		}
	}
}

// SpMMNew allocates and returns m @ x.
func (m *CSR) SpMMNew(x *tensor.Matrix) *tensor.Matrix {
	dst := tensor.New(m.NumRows, x.Cols)
	m.SpMM(dst, x)
	return dst
}

// FilterEdges builds a new CSR keeping only entries for which keep returns
// true. The dimensions are unchanged: dropped rows simply become empty.
// This is the primitive behind the paper's graph-pruning strategy.
func (m *CSR) FilterEdges(keep func(row, col int) bool) *CSR {
	rowPtr := make([]int, m.NumRows+1)
	colIdx := make([]int, 0, m.NNZ())
	val := make([]float64, 0, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			if keep(r, c) {
				colIdx = append(colIdx, c)
				val = append(val, vals[i])
			}
		}
		rowPtr[r+1] = len(colIdx)
	}
	return &CSR{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// AddSelfLoops returns a copy of m with weight-w self loops added to every
// row (existing diagonal entries are incremented).
func (m *CSR) AddSelfLoops(w float64) *CSR {
	entries := m.Entries()
	n := m.NumRows
	if m.NumCols > n {
		n = m.NumCols
	}
	for i := 0; i < m.NumRows && i < m.NumCols; i++ {
		entries = append(entries, Coo{Row: i, Col: i, Val: w})
	}
	return NewCSR(m.NumRows, m.NumCols, entries)
}

// RowNormalize returns a copy of m whose rows each sum to 1 (empty rows are
// left empty). This realizes mean aggregation for GraphSAGE.
func (m *CSR) RowNormalize() *CSR {
	c := m.Clone()
	for r := 0; r < c.NumRows; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		var sum float64
		for _, v := range c.Val[lo:hi] {
			sum += v
		}
		if sum == 0 {
			continue
		}
		for i := lo; i < hi; i++ {
			c.Val[i] /= sum
		}
	}
	return c
}

// SymNormalizeWithDeg returns D^{-1/2}·(m+I)·D^{-1/2} using externally
// supplied degrees (deg[i] must be node i's weighted in-degree + 1). AGL
// uses this with the global degrees carried inside GraphFeatures so that
// k-hop fragments normalize identically to the full graph.
func SymNormalizeWithDeg(m *CSR, deg []float64) *CSR {
	if m.NumRows != m.NumCols {
		panic("sparse: SymNormalizeWithDeg requires a square matrix")
	}
	if len(deg) != m.NumRows {
		panic("sparse: SymNormalizeWithDeg degree length mismatch")
	}
	c := m.AddSelfLoops(1)
	for r := 0; r < c.NumRows; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		dr := deg[r]
		if dr <= 0 {
			dr = 1
		}
		for i := lo; i < hi; i++ {
			du := deg[c.ColIdx[i]]
			if du <= 0 {
				du = 1
			}
			c.Val[i] = c.Val[i] / (math.Sqrt(dr) * math.Sqrt(du))
		}
	}
	return c
}

// SymNormalize returns D^{-1/2}·(m+I)·D^{-1/2}, the symmetric normalization
// used by GCN, where D is the degree matrix of m+I. m must be square.
func (m *CSR) SymNormalize() *CSR {
	if m.NumRows != m.NumCols {
		panic("sparse: SymNormalize requires a square matrix")
	}
	a := m.AddSelfLoops(1)
	deg := make([]float64, a.NumRows)
	for r := 0; r < a.NumRows; r++ {
		_, vals := a.Row(r)
		for _, v := range vals {
			deg[r] += v
		}
	}
	c := a.Clone()
	for r := 0; r < c.NumRows; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			u := c.ColIdx[i]
			dr, du := deg[r], deg[u]
			if dr <= 0 {
				dr = 1
			}
			if du <= 0 {
				du = 1
			}
			c.Val[i] = c.Val[i] / (math.Sqrt(dr) * math.Sqrt(du))
		}
	}
	return c
}
