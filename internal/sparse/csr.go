// Package sparse implements the compressed sparse row (CSR) kernels used by
// AGL's GNN layers: sparse-dense matrix products, transposes, per-layer edge
// pruning, and the destination-partitioned parallel aggregation the paper
// calls "edge partitioning".
package sparse

import (
	"fmt"
	"math"
	"sort"

	"agl/internal/tensor"
)

// Coo is one coordinate-format entry: an edge from column (source) Col to
// row (destination) Row carrying weight Val. The row/column orientation
// matches the paper's adjacency convention: A[v][u] > 0 means edge u→v, so a
// row gathers a node's in-edges.
type Coo struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix. Rows are destination nodes; the
// entries of row v are v's in-edges. Edges within a row are sorted by
// column index so that edge-aligned auxiliary arrays (edge features,
// attention coefficients) are deterministic.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int     // len NumRows+1
	ColIdx           []int     // len NNZ()
	Val              []float64 // len NNZ(); edge weights
}

// NewCSR builds a CSR matrix from coordinate entries. Duplicate (row, col)
// entries have their values summed.
func NewCSR(numRows, numCols int, entries []Coo) *CSR {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= numRows || e.Col < 0 || e.Col >= numCols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, numRows, numCols))
		}
	}
	sorted := make([]Coo, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	// Merge duplicates.
	out := sorted[:0]
	for _, e := range sorted {
		if n := len(out); n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val += e.Val
			continue
		}
		out = append(out, e)
	}
	m := &CSR{
		NumRows: numRows,
		NumCols: numCols,
		RowPtr:  make([]int, numRows+1),
		ColIdx:  make([]int, len(out)),
		Val:     make([]float64, len(out)),
	}
	for i, e := range out {
		m.RowPtr[e.Row+1]++
		m.ColIdx[i] = e.Col
		m.Val[i] = e.Val
	}
	for r := 0; r < numRows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the number of stored entries (edges).
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row r as views.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowNNZ returns the number of entries in row r.
func (m *CSR) RowNNZ(r int) int { return m.RowPtr[r+1] - m.RowPtr[r] }

// At returns the value at (r, c), or 0 when absent. O(log nnz(row)).
func (m *CSR) At(r, c int) float64 {
	cols, vals := m.Row(r)
	i := sort.SearchInts(cols, c)
	if i < len(cols) && cols[i] == c {
		return vals[i]
	}
	return 0
}

// Entries returns all entries in row-major order.
func (m *CSR) Entries() []Coo {
	out := make([]Coo, 0, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			out = append(out, Coo{Row: r, Col: c, Val: vals[i]})
		}
	}
	return out
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  append([]int(nil), m.RowPtr...),
		ColIdx:  append([]int(nil), m.ColIdx...),
		Val:     append([]float64(nil), m.Val...),
	}
	return c
}

// Transpose returns mᵀ. Used to backpropagate through an aggregation:
// if Y = A·X then ∂L/∂X = Aᵀ·∂L/∂Y.
func (m *CSR) Transpose() *CSR {
	nnz := m.NNZ()
	t := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int, m.NumCols+1),
		ColIdx:  make([]int, nnz),
		Val:     make([]float64, nnz),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.NumRows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := append([]int(nil), t.RowPtr...)
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			pos := next[c]
			next[c]++
			t.ColIdx[pos] = r
			t.Val[pos] = vals[i]
		}
	}
	return t
}

// TransposeWithMap returns mᵀ together with fwd, where fwd[i] is the index
// into m's edge arrays of the transpose's i-th edge. GAT's backward pass
// uses the map to read forward-pass attention coefficients while iterating
// source-partitioned (conflict-free) over the transpose.
func (m *CSR) TransposeWithMap() (*CSR, []int) { return m.TransposeWithMapWS(nil) }

// TransposeWithMapWS is TransposeWithMap with every array drawn from ws.
func (m *CSR) TransposeWithMapWS(ws *tensor.Workspace) (*CSR, []int) {
	t := &CSR{}
	fwd := m.transposeWithMapIntoWS(ws, t)
	return t, fwd
}

// transposeWithMapIntoWS fills t (a caller-owned struct, typically embedded
// in an Aggregator) with mᵀ and returns the edge map.
func (m *CSR) transposeWithMapIntoWS(ws *tensor.Workspace, t *CSR) []int {
	nnz := m.NNZ()
	*t = CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  ws.Ints(m.NumCols + 1),
		ColIdx:  ws.Ints(nnz),
		Val:     ws.Floats(nnz),
	}
	fwd := ws.Ints(nnz)
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.NumRows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := ws.Ints(t.NumRows)
	copy(next, t.RowPtr[:t.NumRows])
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			c := m.ColIdx[i]
			pos := next[c]
			next[c]++
			t.ColIdx[pos] = r
			t.Val[pos] = m.Val[i]
			fwd[pos] = i
		}
	}
	return fwd
}

// SpMM computes dst = m @ x where x is dense. dst must be m.NumRows×x.Cols.
func (m *CSR) SpMM(dst, x *tensor.Matrix) {
	m.checkSpMM(dst, x)
	m.spmmRows(dst, x, 0, m.NumRows)
}

func (m *CSR) checkSpMM(dst, x *tensor.Matrix) {
	if x.Rows != m.NumCols {
		panic(fmt.Sprintf("sparse: SpMM inner dims %d vs %d", m.NumCols, x.Rows))
	}
	if dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: SpMM dst %dx%d want %dx%d", dst.Rows, dst.Cols, m.NumRows, x.Cols))
	}
}

// spmmRows computes rows [lo, hi) of dst = m @ x.
func (m *CSR) spmmRows(dst, x *tensor.Matrix, lo, hi int) {
	n := x.Cols
	for r := lo; r < hi; r++ {
		drow := dst.Row(r)
		for j := range drow {
			drow[j] = 0
		}
		cols, vals := m.Row(r)
		for i, c := range cols {
			tensor.AXPYVec(drow, x.Data[c*n:(c+1)*n], vals[i])
		}
	}
}

// SpMMNew allocates and returns m @ x.
func (m *CSR) SpMMNew(x *tensor.Matrix) *tensor.Matrix {
	dst := tensor.New(m.NumRows, x.Cols)
	m.SpMM(dst, x)
	return dst
}

// FilterEdges builds a new CSR keeping only entries for which keep returns
// true. The dimensions are unchanged: dropped rows simply become empty.
// This is the primitive behind the paper's graph-pruning strategy.
func (m *CSR) FilterEdges(keep func(row, col int) bool) *CSR {
	return m.FilterEdgesWS(nil, keep)
}

// FilterEdgesWS is FilterEdges with the result arrays drawn from ws.
func (m *CSR) FilterEdgesWS(ws *tensor.Workspace, keep func(row, col int) bool) *CSR {
	rowPtr := ws.Ints(m.NumRows + 1)
	colIdx := ws.Ints(m.NNZ())
	val := ws.Floats(m.NNZ())
	out := 0
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			if keep(r, c) {
				colIdx[out] = c
				val[out] = vals[i]
				out++
			}
		}
		rowPtr[r+1] = out
	}
	return &CSR{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: rowPtr, ColIdx: colIdx[:out], Val: val[:out]}
}

// FilterByDistWS keeps edge (v, u) only when dist[v] ∈ [0, maxDst] and
// dist[u] ∈ [0, maxSrc] — the per-layer graph-pruning predicate of the
// paper's §3.3.2, specialized so the training hot path pays no closure.
func (m *CSR) FilterByDistWS(ws *tensor.Workspace, dist []int, maxDst, maxSrc int) *CSR {
	rowPtr := ws.Ints(m.NumRows + 1)
	colIdx := ws.Ints(m.NNZ())
	val := ws.Floats(m.NNZ())
	out := 0
	for r := 0; r < m.NumRows; r++ {
		dv := dist[r]
		rowOK := dv >= 0 && dv <= maxDst
		if rowOK {
			cols, vals := m.Row(r)
			for i, c := range cols {
				if du := dist[c]; du >= 0 && du <= maxSrc {
					colIdx[out] = c
					val[out] = vals[i]
					out++
				}
			}
		}
		rowPtr[r+1] = out
	}
	return &CSR{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: rowPtr, ColIdx: colIdx[:out], Val: val[:out]}
}

// AddSelfLoops returns a copy of m with weight-w self loops added to every
// row (existing diagonal entries are incremented).
func (m *CSR) AddSelfLoops(w float64) *CSR { return m.AddSelfLoopsWS(nil, w) }

// AddSelfLoopsWS is AddSelfLoops with its edge arrays drawn from ws (nil ws
// allocates). Rows are already column-sorted, so the diagonal is merged in
// a single linear pass instead of a coordinate re-sort.
func (m *CSR) AddSelfLoopsWS(ws *tensor.Workspace, w float64) *CSR {
	diag := m.NumRows
	if m.NumCols < diag {
		diag = m.NumCols
	}
	// Upper bound: one inserted diagonal per eligible row.
	maxNNZ := m.NNZ() + diag
	c := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  ws.Ints(m.NumRows + 1),
		ColIdx:  ws.Ints(maxNNZ),
		Val:     ws.Floats(maxNNZ),
	}
	out := 0
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		placed := r >= diag // rows without a diagonal slot copy verbatim
		for i, col := range cols {
			if !placed && col >= r {
				if col == r {
					c.ColIdx[out] = r
					c.Val[out] = vals[i] + w
					out++
					placed = true
					continue
				}
				c.ColIdx[out] = r
				c.Val[out] = w
				out++
				placed = true
			}
			c.ColIdx[out] = col
			c.Val[out] = vals[i]
			out++
		}
		if !placed {
			c.ColIdx[out] = r
			c.Val[out] = w
			out++
		}
		c.RowPtr[r+1] = out
	}
	c.ColIdx = c.ColIdx[:out]
	c.Val = c.Val[:out]
	return c
}

// RowNormalize returns a copy of m whose rows each sum to 1 (empty rows are
// left empty). This realizes mean aggregation for GraphSAGE.
func (m *CSR) RowNormalize() *CSR { return m.RowNormalizeWS(nil) }

// RowNormalizeWS is RowNormalize with the copy's arrays drawn from ws.
func (m *CSR) RowNormalizeWS(ws *tensor.Workspace) *CSR {
	c := m.CloneWS(ws)
	for r := 0; r < c.NumRows; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		var sum float64
		for _, v := range c.Val[lo:hi] {
			sum += v
		}
		if sum == 0 {
			continue
		}
		for i := lo; i < hi; i++ {
			c.Val[i] /= sum
		}
	}
	return c
}

// CloneWS is Clone with the copy's arrays drawn from ws.
func (m *CSR) CloneWS(ws *tensor.Workspace) *CSR {
	if ws == nil {
		return m.Clone()
	}
	c := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  ws.Ints(len(m.RowPtr)),
		ColIdx:  ws.Ints(len(m.ColIdx)),
		Val:     ws.Floats(len(m.Val)),
	}
	copy(c.RowPtr, m.RowPtr)
	copy(c.ColIdx, m.ColIdx)
	copy(c.Val, m.Val)
	return c
}

// SymNormalizeWithDeg returns D^{-1/2}·(m+I)·D^{-1/2} using externally
// supplied degrees (deg[i] must be node i's weighted in-degree + 1). AGL
// uses this with the global degrees carried inside GraphFeatures so that
// k-hop fragments normalize identically to the full graph.
func SymNormalizeWithDeg(m *CSR, deg []float64) *CSR {
	return SymNormalizeWithDegWS(nil, m, deg)
}

// SymNormalizeWithDegWS is SymNormalizeWithDeg over a workspace.
func SymNormalizeWithDegWS(ws *tensor.Workspace, m *CSR, deg []float64) *CSR {
	if m.NumRows != m.NumCols {
		panic("sparse: SymNormalizeWithDeg requires a square matrix")
	}
	if len(deg) != m.NumRows {
		panic("sparse: SymNormalizeWithDeg degree length mismatch")
	}
	c := m.AddSelfLoopsWS(ws, 1)
	for r := 0; r < c.NumRows; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		dr := deg[r]
		if dr <= 0 {
			dr = 1
		}
		for i := lo; i < hi; i++ {
			du := deg[c.ColIdx[i]]
			if du <= 0 {
				du = 1
			}
			c.Val[i] = c.Val[i] / (math.Sqrt(dr) * math.Sqrt(du))
		}
	}
	return c
}

// SymNormalize returns D^{-1/2}·(m+I)·D^{-1/2}, the symmetric normalization
// used by GCN, where D is the degree matrix of m+I. m must be square.
func (m *CSR) SymNormalize() *CSR { return m.SymNormalizeWS(nil) }

// SymNormalizeWS is SymNormalize over a workspace: the self-looped copy is
// fresh, so it is normalized in place instead of cloned again.
func (m *CSR) SymNormalizeWS(ws *tensor.Workspace) *CSR {
	if m.NumRows != m.NumCols {
		panic("sparse: SymNormalize requires a square matrix")
	}
	c := m.AddSelfLoopsWS(ws, 1)
	deg := ws.Floats(c.NumRows)
	for r := 0; r < c.NumRows; r++ {
		_, vals := c.Row(r)
		for _, v := range vals {
			deg[r] += v
		}
	}
	for r := 0; r < c.NumRows; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			u := c.ColIdx[i]
			dr, du := deg[r], deg[u]
			if dr <= 0 {
				dr = 1
			}
			if du <= 0 {
				du = 1
			}
			c.Val[i] = c.Val[i] / (math.Sqrt(dr) * math.Sqrt(du))
		}
	}
	return c
}
