package sparse

import (
	"agl/internal/tensor"
)

// Partition describes one edge partition: a contiguous, nnz-balanced range
// of CSR rows. Because rows are destination nodes, every edge with the same
// destination lands in the same partition, so concurrent aggregation threads
// never write the same output row — the paper's edge-partitioning insight.
type Partition struct {
	LoRow, HiRow int // row range [LoRow, HiRow)
	NNZ          int // number of edges covered
}

// PartitionEdges splits m's rows into at most t partitions with roughly
// equal edge counts. Fewer than t partitions are returned when m is small.
func PartitionEdges(m *CSR, t int) []Partition {
	if t < 1 {
		t = 1
	}
	total := m.NNZ()
	if total == 0 || m.NumRows == 0 {
		return []Partition{{LoRow: 0, HiRow: m.NumRows, NNZ: total}}
	}
	target := (total + t - 1) / t
	var parts []Partition
	lo, acc := 0, 0
	for r := 0; r < m.NumRows; r++ {
		acc += m.RowNNZ(r)
		if acc >= target && len(parts) < t-1 {
			parts = append(parts, Partition{LoRow: lo, HiRow: r + 1, NNZ: acc})
			lo, acc = r+1, 0
		}
	}
	parts = append(parts, Partition{LoRow: lo, HiRow: m.NumRows, NNZ: acc})
	return parts
}

// SpMMParallel computes dst = m @ x with one shared-pool task per
// partition. Each partition owns a disjoint set of destination rows, so
// the tasks are conflict-free by construction and the result is
// bit-identical to the serial product.
func (m *CSR) SpMMParallel(dst, x *tensor.Matrix, parts []Partition) {
	m.checkSpMM(dst, x)
	if len(parts) <= 1 {
		m.SpMM(dst, x)
		return
	}
	tensor.ParallelEach(len(parts), func(i int) {
		m.spmmRows(dst, x, parts[i].LoRow, parts[i].HiRow)
	})
}

// Aggregator performs repeated dst = A @ x products over a fixed adjacency,
// optionally with edge partitioning. It owns precomputed partitions for the
// matrix and its transpose so forward and backward aggregation both run
// conflict-free in parallel.
type Aggregator struct {
	A *CSR
	// AT is the transpose adjacency, embedded by value so building an
	// aggregator is a single allocation on the per-batch hot path.
	AT CSR
	// FwdIdx maps each edge of AT back to its index in A's edge arrays, so
	// per-edge state computed during a destination-partitioned forward pass
	// can be read during a source-partitioned backward pass.
	FwdIdx []int
	// EFeat, when non-nil, carries per-edge feature vectors aligned with
	// A's edge arrays (the E_B matrix of AGL's subgraph vectorization).
	// Entries may be nil (e.g. self loops), meaning a zero vector.
	EFeat   [][]float64
	parts   []Partition
	tparts  []Partition
	threads int
}

// NewAggregator builds an Aggregator over a. threads <= 1 disables
// partitioned (parallel) aggregation.
func NewAggregator(a *CSR, threads int) *Aggregator { return NewAggregatorWS(nil, a, threads) }

// NewAggregatorWS is NewAggregator with the transpose arrays drawn from a
// per-batch workspace, so repeated batch preparation stops allocating.
func NewAggregatorWS(ws *tensor.Workspace, a *CSR, threads int) *Aggregator {
	ag := &Aggregator{A: a, threads: threads}
	ag.FwdIdx = a.transposeWithMapIntoWS(ws, &ag.AT)
	if threads > 1 {
		ag.parts = PartitionEdges(ag.A, threads)
		ag.tparts = PartitionEdges(&ag.AT, threads)
	}
	return ag
}

// Threads reports the configured aggregation parallelism.
func (ag *Aggregator) Threads() int { return ag.threads }

// Forward computes dst = A @ x.
func (ag *Aggregator) Forward(dst, x *tensor.Matrix) {
	if ag.threads > 1 {
		ag.A.SpMMParallel(dst, x, ag.parts)
		return
	}
	ag.A.SpMM(dst, x)
}

// Backward computes dst = Aᵀ @ g (the gradient of Forward w.r.t. x).
func (ag *Aggregator) Backward(dst, g *tensor.Matrix) {
	if ag.threads > 1 {
		ag.AT.SpMMParallel(dst, g, ag.tparts)
		return
	}
	ag.AT.SpMM(dst, g)
}

// RangeEdgesParallel invokes fn(lo, hi) for each partition's row range as
// one shared-pool task per partition. It is the generic hook GAT uses for
// per-edge attention computations.
func (ag *Aggregator) RangeEdgesParallel(fn func(loRow, hiRow int)) {
	if ag.threads <= 1 || len(ag.parts) <= 1 {
		fn(0, ag.A.NumRows)
		return
	}
	tensor.ParallelEach(len(ag.parts), func(i int) {
		fn(ag.parts[i].LoRow, ag.parts[i].HiRow)
	})
}

// RangeEdgesParallelT is RangeEdgesParallel over the transpose adjacency.
func (ag *Aggregator) RangeEdgesParallelT(fn func(loRow, hiRow int)) {
	if ag.threads <= 1 || len(ag.tparts) <= 1 {
		fn(0, ag.AT.NumRows)
		return
	}
	tensor.ParallelEach(len(ag.tparts), func(i int) {
		fn(ag.tparts[i].LoRow, ag.tparts[i].HiRow)
	})
}
