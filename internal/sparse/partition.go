package sparse

import (
	"sync"

	"agl/internal/tensor"
)

// Partition describes one edge partition: a contiguous, nnz-balanced range
// of CSR rows. Because rows are destination nodes, every edge with the same
// destination lands in the same partition, so concurrent aggregation threads
// never write the same output row — the paper's edge-partitioning insight.
type Partition struct {
	LoRow, HiRow int // row range [LoRow, HiRow)
	NNZ          int // number of edges covered
}

// PartitionEdges splits m's rows into at most t partitions with roughly
// equal edge counts. Fewer than t partitions are returned when m is small.
func PartitionEdges(m *CSR, t int) []Partition {
	if t < 1 {
		t = 1
	}
	total := m.NNZ()
	if total == 0 || m.NumRows == 0 {
		return []Partition{{LoRow: 0, HiRow: m.NumRows, NNZ: total}}
	}
	target := (total + t - 1) / t
	var parts []Partition
	lo, acc := 0, 0
	for r := 0; r < m.NumRows; r++ {
		acc += m.RowNNZ(r)
		if acc >= target && len(parts) < t-1 {
			parts = append(parts, Partition{LoRow: lo, HiRow: r + 1, NNZ: acc})
			lo, acc = r+1, 0
		}
	}
	parts = append(parts, Partition{LoRow: lo, HiRow: m.NumRows, NNZ: acc})
	return parts
}

// SpMMParallel computes dst = m @ x using one goroutine per partition.
// Each partition owns a disjoint set of destination rows, so the threads
// are conflict-free by construction.
func (m *CSR) SpMMParallel(dst, x *tensor.Matrix, parts []Partition) {
	m.checkSpMM(dst, x)
	if len(parts) <= 1 {
		m.SpMM(dst, x)
		return
	}
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p Partition) {
			defer wg.Done()
			m.spmmRows(dst, x, p.LoRow, p.HiRow)
		}(p)
	}
	wg.Wait()
}

// Aggregator performs repeated dst = A @ x products over a fixed adjacency,
// optionally with edge partitioning. It owns precomputed partitions for the
// matrix and its transpose so forward and backward aggregation both run
// conflict-free in parallel.
type Aggregator struct {
	A  *CSR
	AT *CSR
	// FwdIdx maps each edge of AT back to its index in A's edge arrays, so
	// per-edge state computed during a destination-partitioned forward pass
	// can be read during a source-partitioned backward pass.
	FwdIdx []int
	// EFeat, when non-nil, carries per-edge feature vectors aligned with
	// A's edge arrays (the E_B matrix of AGL's subgraph vectorization).
	// Entries may be nil (e.g. self loops), meaning a zero vector.
	EFeat   [][]float64
	parts   []Partition
	tparts  []Partition
	threads int
}

// NewAggregator builds an Aggregator over a. threads <= 1 disables
// partitioned (parallel) aggregation.
func NewAggregator(a *CSR, threads int) *Aggregator {
	at, fwd := a.TransposeWithMap()
	ag := &Aggregator{A: a, AT: at, FwdIdx: fwd, threads: threads}
	if threads > 1 {
		ag.parts = PartitionEdges(ag.A, threads)
		ag.tparts = PartitionEdges(ag.AT, threads)
	}
	return ag
}

// Threads reports the configured aggregation parallelism.
func (ag *Aggregator) Threads() int { return ag.threads }

// Forward computes dst = A @ x.
func (ag *Aggregator) Forward(dst, x *tensor.Matrix) {
	if ag.threads > 1 {
		ag.A.SpMMParallel(dst, x, ag.parts)
		return
	}
	ag.A.SpMM(dst, x)
}

// Backward computes dst = Aᵀ @ g (the gradient of Forward w.r.t. x).
func (ag *Aggregator) Backward(dst, g *tensor.Matrix) {
	if ag.threads > 1 {
		ag.AT.SpMMParallel(dst, g, ag.tparts)
		return
	}
	ag.AT.SpMM(dst, g)
}

// RangeEdgesParallel invokes fn(part, lo, hi) for each partition on its own
// goroutine, where [lo, hi) is the row range. It is the generic hook GAT
// uses for per-edge attention computations.
func (ag *Aggregator) RangeEdgesParallel(fn func(loRow, hiRow int)) {
	if ag.threads <= 1 || len(ag.parts) <= 1 {
		fn(0, ag.A.NumRows)
		return
	}
	var wg sync.WaitGroup
	for _, p := range ag.parts {
		wg.Add(1)
		go func(p Partition) {
			defer wg.Done()
			fn(p.LoRow, p.HiRow)
		}(p)
	}
	wg.Wait()
}

// RangeEdgesParallelT is RangeEdgesParallel over the transpose adjacency.
func (ag *Aggregator) RangeEdgesParallelT(fn func(loRow, hiRow int)) {
	if ag.threads <= 1 || len(ag.tparts) <= 1 {
		fn(0, ag.AT.NumRows)
		return
	}
	var wg sync.WaitGroup
	for _, p := range ag.tparts {
		wg.Add(1)
		go func(p Partition) {
			defer wg.Done()
			fn(p.LoRow, p.HiRow)
		}(p)
	}
	wg.Wait()
}
