package wire

// EdgeTarget names a (src, dst) pair with its link label (1 positive,
// 0 sampled negative): the input unit of GraphFlat's edge-target mode and
// the pair half of a LinkRecord. It lives in wire so dataset generators and
// the pipeline share one pair type without an import cycle.
type EdgeTarget struct {
	Src, Dst int64
	Label    int64
}

// LinkRecord is one edge-level training example: the pair <Src, Dst>, its
// link label (1 = the edge exists / is positive, 0 = sampled negative) and
// the merged k-hop GraphFeature of both endpoints. It is the edge-task
// counterpart of TrainRecord: GraphFlat's edge-target mode emits one
// LinkRecord per (src, dst) pair, and the pairwise trainer consumes them.
type LinkRecord struct {
	Src, Dst int64
	Label    int64
	SG       *Subgraph
}

// EncodeLinkRecord serializes rec.
func EncodeLinkRecord(rec *LinkRecord) []byte {
	b := make([]byte, 0, 64+len(rec.SG.Nodes)*16)
	b = AppendVarint(b, rec.Src)
	b = AppendVarint(b, rec.Dst)
	b = AppendVarint(b, rec.Label)
	b = EncodeSubgraph(b, rec.SG)
	return b
}

// DecodeLinkRecord deserializes a LinkRecord.
func DecodeLinkRecord(buf []byte) (*LinkRecord, error) {
	r := NewReader(buf)
	rec := &LinkRecord{Src: r.Varint(), Dst: r.Varint(), Label: r.Varint()}
	sg, err := DecodeSubgraph(r)
	if err != nil {
		return nil, err
	}
	rec.SG = sg
	return rec, nil
}
