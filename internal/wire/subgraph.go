package wire

import "fmt"

// SGNode is a node inside a serialized subgraph. Deg carries the node's
// *global* normalization degree (weighted in-degree + 1): a k-hop
// neighborhood does not contain its frontier nodes' in-edges, so
// normalization-dependent layers (GCN) would otherwise mis-normalize at
// the boundary and disagree with GraphInfer.
type SGNode struct {
	ID   int64
	Feat []float64
	Deg  float64
}

// SGEdge is a directed edge Src→Dst inside a serialized subgraph, carrying
// the edge weight and optional edge features (the e_vu of the paper's
// Eq. 1 / the E_B matrix of §3.3.1).
type SGEdge struct {
	Src, Dst int64
	Weight   float64
	Feat     []float64
}

// Subgraph is the payload of a GraphFeature: the k-hop neighborhood of a
// target node, flattened to nodes + edges. It is also the unit merged and
// propagated by GraphFlat's reduce rounds.
type Subgraph struct {
	Target int64
	Nodes  []SGNode
	Edges  []SGEdge
}

// EncodeSubgraph appends the wire form of sg to b.
func EncodeSubgraph(b []byte, sg *Subgraph) []byte {
	b = AppendVarint(b, sg.Target)
	b = AppendUvarint(b, uint64(len(sg.Nodes)))
	for _, n := range sg.Nodes {
		b = AppendVarint(b, n.ID)
		b = AppendFloat64(b, n.Deg)
		b = AppendFloat64s(b, n.Feat)
	}
	b = AppendUvarint(b, uint64(len(sg.Edges)))
	for _, e := range sg.Edges {
		b = AppendVarint(b, e.Src)
		b = AppendVarint(b, e.Dst)
		b = AppendFloat64(b, e.Weight)
		b = AppendFloat64s(b, e.Feat)
	}
	return b
}

// DecodeSubgraph reads a Subgraph from r.
func DecodeSubgraph(r *Reader) (*Subgraph, error) {
	sg := &Subgraph{Target: r.Varint()}
	nn := r.Uvarint()
	for i := uint64(0); i < nn && r.Err() == nil; i++ {
		sg.Nodes = append(sg.Nodes, SGNode{ID: r.Varint(), Deg: r.Float64(), Feat: r.Float64s()})
	}
	ne := r.Uvarint()
	for i := uint64(0); i < ne && r.Err() == nil; i++ {
		sg.Edges = append(sg.Edges, SGEdge{
			Src: r.Varint(), Dst: r.Varint(), Weight: r.Float64(), Feat: r.Float64s(),
		})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: subgraph: %w", err)
	}
	return sg, nil
}

// MergeInto merges other into sg: node and edge sets are unioned (by node
// ID and by (src,dst) pair). sg's target is preserved. This is the "merge"
// half of GraphFlat's message passing.
func (sg *Subgraph) MergeInto(other *Subgraph, seenNodes map[int64]bool, seenEdges map[[2]int64]bool) {
	for _, n := range other.Nodes {
		if !seenNodes[n.ID] {
			seenNodes[n.ID] = true
			sg.Nodes = append(sg.Nodes, n)
		}
	}
	for _, e := range other.Edges {
		k := [2]int64{e.Src, e.Dst}
		if !seenEdges[k] {
			seenEdges[k] = true
			sg.Edges = append(sg.Edges, e)
		}
	}
}

// NewSeenSets builds the dedup sets for MergeInto primed with sg's current
// contents.
func (sg *Subgraph) NewSeenSets() (map[int64]bool, map[[2]int64]bool) {
	sn := make(map[int64]bool, len(sg.Nodes))
	for _, n := range sg.Nodes {
		sn[n.ID] = true
	}
	se := make(map[[2]int64]bool, len(sg.Edges))
	for _, e := range sg.Edges {
		se[[2]int64{e.Src, e.Dst}] = true
	}
	return sn, se
}

// TrainRecord is one training example: the paper's triple
// <TargetedNodeId, Label, GraphFeature>. Label carries a single-class
// label (-1 when absent); LabelVec carries multi-label or binary targets.
type TrainRecord struct {
	TargetID int64
	Label    int64
	LabelVec []float64
	SG       *Subgraph
}

// EncodeTrainRecord serializes rec.
func EncodeTrainRecord(rec *TrainRecord) []byte {
	b := make([]byte, 0, 64+len(rec.SG.Nodes)*16)
	b = AppendVarint(b, rec.TargetID)
	b = AppendVarint(b, rec.Label)
	b = AppendFloat64s(b, rec.LabelVec)
	b = EncodeSubgraph(b, rec.SG)
	return b
}

// DecodeTrainRecord deserializes a TrainRecord.
func DecodeTrainRecord(buf []byte) (*TrainRecord, error) {
	r := NewReader(buf)
	rec := &TrainRecord{TargetID: r.Varint(), Label: r.Varint(), LabelVec: r.Float64s()}
	sg, err := DecodeSubgraph(r)
	if err != nil {
		return nil, err
	}
	rec.SG = sg
	return rec, nil
}

// Embedding is the per-node payload of GraphInfer's reduce rounds: a node's
// current-layer embedding plus its normalization degree.
type Embedding struct {
	ID  int64
	H   []float64
	Deg float64
}

// EncodeEmbedding serializes e.
func EncodeEmbedding(b []byte, e *Embedding) []byte {
	b = AppendVarint(b, e.ID)
	b = AppendFloat64s(b, e.H)
	b = AppendFloat64(b, e.Deg)
	return b
}

// DecodeEmbedding reads an Embedding from r.
func DecodeEmbedding(r *Reader) (*Embedding, error) {
	e := &Embedding{ID: r.Varint(), H: r.Float64s(), Deg: r.Float64()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: embedding: %w", err)
	}
	return e, nil
}
