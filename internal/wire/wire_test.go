package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		r := NewReader(b)
		if got := r.Varint(); got != v || r.Err() != nil {
			t.Fatalf("varint %d -> %d err=%v", v, got, r.Err())
		}
	}
}

func TestUvarintAndFloats(t *testing.T) {
	b := AppendUvarint(nil, 12345)
	b = AppendFloat64(b, math.Pi)
	b = AppendFloat64s(b, []float64{1.5, -2.5, math.Inf(1)})
	r := NewReader(b)
	if r.Uvarint() != 12345 {
		t.Fatal("uvarint")
	}
	if r.Float64() != math.Pi {
		t.Fatal("float64")
	}
	fs := r.Float64s()
	if len(fs) != 3 || fs[1] != -2.5 || !math.IsInf(fs[2], 1) {
		t.Fatalf("float64s: %v", fs)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestBytesAndString(t *testing.T) {
	b := AppendBytes(nil, []byte{1, 2, 3})
	b = AppendString(b, "hello")
	r := NewReader(b)
	if got := r.Bytes(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("bytes: %v", got)
	}
	if r.String() != "hello" {
		t.Fatal("string")
	}
}

func TestTruncatedReads(t *testing.T) {
	b := AppendFloat64(nil, 1)
	r := NewReader(b[:4])
	_ = r.Float64()
	if r.Err() != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", r.Err())
	}
	// Errors stick.
	_ = r.Uvarint()
	if r.Err() != ErrTruncated {
		t.Fatal("error did not stick")
	}
	// Length prefix exceeding buffer.
	r2 := NewReader(AppendUvarint(nil, 100))
	if r2.Bytes() != nil || r2.Err() != ErrTruncated {
		t.Fatal("oversized length accepted")
	}
	// Float64s with oversized count must not allocate/crash.
	r3 := NewReader(AppendUvarint(nil, 1<<40))
	if r3.Float64s() != nil || r3.Err() != ErrTruncated {
		t.Fatal("oversized float64s accepted")
	}
}

func randomSubgraph(rng *rand.Rand) *Subgraph {
	sg := &Subgraph{Target: rng.Int63n(1000)}
	n := rng.Intn(6) + 1
	for i := 0; i < n; i++ {
		feat := make([]float64, rng.Intn(4))
		for j := range feat {
			feat[j] = rng.NormFloat64()
		}
		sg.Nodes = append(sg.Nodes, SGNode{ID: int64(i * 7), Feat: feat, Deg: rng.Float64() * 10})
	}
	e := rng.Intn(8)
	for i := 0; i < e; i++ {
		var ef []float64
		for j := 0; j < rng.Intn(3); j++ {
			ef = append(ef, rng.NormFloat64())
		}
		sg.Edges = append(sg.Edges, SGEdge{
			Src: int64(rng.Intn(n) * 7), Dst: int64(rng.Intn(n) * 7),
			Weight: rng.Float64(), Feat: ef,
		})
	}
	return sg
}

func TestSubgraphRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sg := randomSubgraph(rng)
		b := EncodeSubgraph(nil, sg)
		got, err := DecodeSubgraph(NewReader(b))
		if err != nil {
			return false
		}
		if got.Target != sg.Target || len(got.Nodes) != len(sg.Nodes) || len(got.Edges) != len(sg.Edges) {
			return false
		}
		for i, n := range sg.Nodes {
			if got.Nodes[i].ID != n.ID || got.Nodes[i].Deg != n.Deg || len(got.Nodes[i].Feat) != len(n.Feat) {
				return false
			}
			for j, v := range n.Feat {
				if got.Nodes[i].Feat[j] != v {
					return false
				}
			}
		}
		for i, e := range sg.Edges {
			g := got.Edges[i]
			if g.Src != e.Src || g.Dst != e.Dst || g.Weight != e.Weight || len(g.Feat) != len(e.Feat) {
				return false
			}
			for j, v := range e.Feat {
				if g.Feat[j] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphMerge(t *testing.T) {
	a := &Subgraph{
		Target: 1,
		Nodes:  []SGNode{{ID: 1}, {ID: 2}},
		Edges:  []SGEdge{{Src: 2, Dst: 1, Weight: 1}},
	}
	b := &Subgraph{
		Target: 2,
		Nodes:  []SGNode{{ID: 2}, {ID: 3}},
		Edges:  []SGEdge{{Src: 2, Dst: 1, Weight: 1}, {Src: 3, Dst: 2, Weight: 1}},
	}
	sn, se := a.NewSeenSets()
	a.MergeInto(b, sn, se)
	if len(a.Nodes) != 3 {
		t.Fatalf("nodes after merge: %d", len(a.Nodes))
	}
	if len(a.Edges) != 2 {
		t.Fatalf("edges after merge: %d", len(a.Edges))
	}
	if a.Target != 1 {
		t.Fatal("merge changed target")
	}
}

func TestTrainRecordRoundTrip(t *testing.T) {
	rec := &TrainRecord{
		TargetID: 42,
		Label:    3,
		LabelVec: []float64{0, 1, 1},
		SG: &Subgraph{
			Target: 42,
			Nodes:  []SGNode{{ID: 42, Feat: []float64{1, 2}}},
		},
	}
	got, err := DecodeTrainRecord(EncodeTrainRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.TargetID != 42 || got.Label != 3 || got.LabelVec[2] != 1 || got.SG.Nodes[0].Feat[1] != 2 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestEmbeddingRoundTrip(t *testing.T) {
	e := &Embedding{ID: -7, H: []float64{0.25, -1}, Deg: 3}
	b := EncodeEmbedding(nil, e)
	got, err := DecodeEmbedding(NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != -7 || got.H[1] != -1 || got.Deg != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeSubgraphTruncated(t *testing.T) {
	sg := &Subgraph{Target: 1, Nodes: []SGNode{{ID: 1, Feat: []float64{1, 2, 3}}}}
	b := EncodeSubgraph(nil, sg)
	if _, err := DecodeSubgraph(NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLinkRecordRoundTrip(t *testing.T) {
	rec := &LinkRecord{
		Src:   -3,
		Dst:   99,
		Label: 1,
		SG: &Subgraph{
			Target: -3,
			Nodes:  []SGNode{{ID: -3, Feat: []float64{1, 2}, Deg: 4}, {ID: 99, Feat: []float64{3}}},
			Edges:  []SGEdge{{Src: 99, Dst: -3, Weight: 2.5}},
		},
	}
	got, err := DecodeLinkRecord(EncodeLinkRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != -3 || got.Dst != 99 || got.Label != 1 {
		t.Fatalf("round trip pair: %+v", got)
	}
	if len(got.SG.Nodes) != 2 || got.SG.Nodes[0].Deg != 4 || got.SG.Edges[0].Weight != 2.5 {
		t.Fatalf("round trip subgraph: %+v", got.SG)
	}
}

func TestDecodeLinkRecordTruncated(t *testing.T) {
	rec := &LinkRecord{Src: 1, Dst: 2, Label: 0, SG: &Subgraph{Target: 1, Nodes: []SGNode{{ID: 1, Feat: []float64{1}}}}}
	b := EncodeLinkRecord(rec)
	if _, err := DecodeLinkRecord(b[:len(b)-3]); err == nil {
		t.Fatal("expected truncation error")
	}
}
