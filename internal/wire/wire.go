// Package wire implements the compact binary format AGL uses for
// GraphFeatures and MapReduce values — the stand-in for the paper's
// "protobuf strings". It provides varint/zig-zag primitives plus codecs for
// subgraphs and training records. Buffers are append-style for writers and
// cursor-style for readers, so encoding a k-hop neighborhood allocates only
// the output slice.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated reports a read past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated message")

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v zig-zag encoded.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// AppendFloat64 appends the IEEE-754 bits of v, little endian.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendFloat64s appends a length-prefixed slice of float64s.
func AppendFloat64s(b []byte, vs []float64) []byte {
	b = AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendFloat64(b, v)
	}
	return b
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Reader is a cursor over an encoded buffer. The first error sticks; check
// Err after a sequence of reads.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a zig-zag encoded signed varint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Float64 reads an IEEE-754 float64.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.err = ErrTruncated
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

// Float64s reads a length-prefixed slice of float64s.
func (r *Reader) Float64s() []float64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if int(n)*8 > r.Remaining() {
		r.err = ErrTruncated
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// Bytes reads a length-prefixed byte slice (a view into the buffer, not a
// copy).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if int(n) > r.Remaining() {
		r.err = ErrTruncated
		return nil
	}
	out := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }
