package ps

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"agl/internal/nn"
	"agl/internal/tensor"
)

// MatrixData is the gob-friendly wire form of a dense matrix.
type MatrixData struct {
	Rows, Cols int
	Data       []float64
}

func toWire(m *tensor.Matrix) MatrixData {
	return MatrixData{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromWire(d MatrixData) *tensor.Matrix {
	return tensor.FromSlice(d.Rows, d.Cols, d.Data)
}

// PullArgs requests parameter values by name.
type PullArgs struct{ Names []string }

// PullReply carries pulled values.
type PullReply struct{ Values map[string]MatrixData }

// PushArgs delivers gradients.
type PushArgs struct{ Grads map[string]MatrixData }

// Empty is a placeholder for bodies the protocol does not need.
type Empty struct{}

// ShardService is the net/rpc wrapper around one Shard.
type ShardService struct{ shard *Shard }

// Pull implements the RPC method.
func (s *ShardService) Pull(args *PullArgs, reply *PullReply) error {
	vals, err := s.shard.Pull(args.Names)
	if err != nil {
		return err
	}
	reply.Values = make(map[string]MatrixData, len(vals))
	for n, m := range vals {
		reply.Values[n] = toWire(m)
	}
	return nil
}

// Push implements the RPC method.
func (s *ShardService) Push(args *PushArgs, _ *Empty) error {
	grads := make(map[string]*tensor.Matrix, len(args.Grads))
	for n, d := range args.Grads {
		grads[n] = fromWire(d)
	}
	return s.shard.Push(grads)
}

// Register implements the RPC method.
func (s *ShardService) Register(_ *Empty, _ *Empty) error {
	s.shard.Register()
	return nil
}

// Deregister implements the RPC method.
func (s *ShardService) Deregister(_ *Empty, _ *Empty) error {
	s.shard.Deregister()
	return nil
}

// Serve exposes every shard of the cluster over TCP on loopback, returning
// one address per shard and a stop function.
func Serve(c *Cluster) (addrs []string, stop func(), err error) {
	var listeners []net.Listener
	var wg sync.WaitGroup
	closeAll := func() {
		for _, l := range listeners {
			l.Close()
		}
		wg.Wait()
	}
	for i := 0; i < c.NumShards(); i++ {
		srv := rpc.NewServer()
		if err := srv.RegisterName("Shard", &ShardService{shard: c.Shard(i)}); err != nil {
			closeAll()
			return nil, nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
		wg.Add(1)
		go func(l net.Listener, srv *rpc.Server) {
			defer wg.Done()
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}(l, srv)
	}
	return addrs, closeAll, nil
}

// remoteClient is a Client speaking net/rpc to a served cluster.
type remoteClient struct {
	conns []*rpc.Client
}

// Dial connects a worker to the shard addresses returned by Serve. The
// shard order must match the serving cluster's.
func Dial(addrs []string) (Client, error) {
	rc := &remoteClient{}
	for _, a := range addrs {
		c, err := rpc.Dial("tcp", a)
		if err != nil {
			rc.Close()
			return nil, fmt.Errorf("ps: dial %s: %w", a, err)
		}
		rc.conns = append(rc.conns, c)
	}
	return rc, nil
}

// Close tears down the connections.
func (rc *remoteClient) Close() {
	for _, c := range rc.conns {
		if c != nil {
			c.Close()
		}
	}
}

func (rc *remoteClient) Register() {
	for _, c := range rc.conns {
		_ = c.Call("Shard.Register", &Empty{}, &Empty{})
	}
}

func (rc *remoteClient) Deregister() {
	for _, c := range rc.conns {
		_ = c.Call("Shard.Deregister", &Empty{}, &Empty{})
	}
}

func (rc *remoteClient) PullInto(params *nn.ParamSet) error {
	n := len(rc.conns)
	names := make([][]string, n)
	for _, name := range params.Names() {
		idx := ShardOf(name, n)
		names[idx] = append(names[idx], name)
	}
	for i, ns := range names {
		if len(ns) == 0 {
			continue
		}
		var reply PullReply
		if err := rc.conns[i].Call("Shard.Pull", &PullArgs{Names: ns}, &reply); err != nil {
			return err
		}
		for name, d := range reply.Values {
			params.Get(name).W.CopyFrom(fromWire(d))
		}
	}
	return nil
}

func (rc *remoteClient) PushGrads(params *nn.ParamSet) error {
	n := len(rc.conns)
	groups := make([]map[string]MatrixData, n)
	for _, p := range params.List() {
		idx := ShardOf(p.Name, n)
		if groups[idx] == nil {
			groups[idx] = make(map[string]MatrixData)
		}
		groups[idx][p.Name] = toWire(p.Grad)
	}
	errs := make(chan error, n)
	calls := 0
	for i, g := range groups {
		if g == nil {
			continue
		}
		calls++
		go func(i int, g map[string]MatrixData) {
			errs <- rc.conns[i].Call("Shard.Push", &PushArgs{Grads: g}, &Empty{})
		}(i, g)
	}
	var first error
	for i := 0; i < calls; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
