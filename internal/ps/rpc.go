package ps

import (
	"context"
	"time"

	"agl/internal/nn"
	"agl/internal/rpcx"
	"agl/internal/tensor"
)

// MatrixData is the gob-friendly wire form of a dense matrix.
type MatrixData struct {
	Rows, Cols int
	Data       []float64
}

func toWire(m *tensor.Matrix) MatrixData {
	return MatrixData{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromWire(d MatrixData) *tensor.Matrix {
	return tensor.FromSlice(d.Rows, d.Cols, d.Data)
}

// PullArgs requests parameter values by name.
type PullArgs struct{ Names []string }

// PullReply carries pulled values.
type PullReply struct{ Values map[string]MatrixData }

// PushArgs delivers gradients.
type PushArgs struct{ Grads map[string]MatrixData }

// Empty is a placeholder for bodies the protocol does not need.
type Empty struct{}

// ShardService is the net/rpc wrapper around one Shard.
type ShardService struct{ shard *Shard }

// Pull implements the RPC method.
func (s *ShardService) Pull(args *PullArgs, reply *PullReply) error {
	vals, err := s.shard.Pull(args.Names)
	if err != nil {
		return err
	}
	reply.Values = make(map[string]MatrixData, len(vals))
	for n, m := range vals {
		reply.Values[n] = toWire(m)
	}
	return nil
}

// Push implements the RPC method.
func (s *ShardService) Push(args *PushArgs, _ *Empty) error {
	grads := make(map[string]*tensor.Matrix, len(args.Grads))
	for n, d := range args.Grads {
		grads[n] = fromWire(d)
	}
	return s.shard.Push(grads)
}

// Register implements the RPC method.
func (s *ShardService) Register(_ *Empty, _ *Empty) error {
	s.shard.Register()
	return nil
}

// Deregister implements the RPC method.
func (s *ShardService) Deregister(_ *Empty, _ *Empty) error {
	s.shard.Deregister()
	return nil
}

// Serve exposes every shard of the cluster over TCP on loopback, returning
// one address per shard and a stop function. Stop closes the listeners AND
// every accepted connection (via rpcx.Server's conn tracking), so no
// sockets or serving goroutines outlive it.
func Serve(c *Cluster) (addrs []string, stop func(), err error) {
	var servers []*rpcx.Server
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < c.NumShards(); i++ {
		srv := rpcx.NewServer()
		if err := srv.Register("Shard", &ShardService{shard: c.Shard(i)}); err != nil {
			closeAll()
			return nil, nil, err
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}
	return addrs, closeAll, nil
}

// remoteClient is a Client speaking net/rpc to a served cluster through
// pooled rpcx connections (one pool per shard address).
type remoteClient struct {
	conns   []*rpcx.Client
	perCall time.Duration // 0 = no deadline
}

// Dial connects a worker to the shard addresses returned by Serve. The
// shard order must match the serving cluster's. Connections are pooled
// and dialed lazily; Close releases them.
func Dial(addrs []string) (Client, error) { return DialTimeout(addrs, 0) }

// DialTimeout is Dial with a per-call deadline pushed down to the socket
// (0 means none). Sync-mode training barriers block pushes indefinitely
// by design, so only async workers should set one.
func DialTimeout(addrs []string, perCall time.Duration) (Client, error) {
	rc := &remoteClient{perCall: perCall}
	for _, a := range addrs {
		rc.conns = append(rc.conns, rpcx.NewClient(a))
	}
	return rc, nil
}

func (rc *remoteClient) ctx() (context.Context, context.CancelFunc) {
	if rc.perCall <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), rc.perCall)
}

func (rc *remoteClient) call(method string, args, reply any, shard int) error {
	ctx, cancel := rc.ctx()
	defer cancel()
	return rc.conns[shard].Call(ctx, method, args, reply)
}

// Close tears down the connection pools.
func (rc *remoteClient) Close() {
	for _, c := range rc.conns {
		if c != nil {
			c.Close()
		}
	}
}

func (rc *remoteClient) Register() {
	for i := range rc.conns {
		_ = rc.call("Shard.Register", &Empty{}, &Empty{}, i)
	}
}

func (rc *remoteClient) Deregister() {
	for i := range rc.conns {
		_ = rc.call("Shard.Deregister", &Empty{}, &Empty{}, i)
	}
}

func (rc *remoteClient) PullInto(params *nn.ParamSet) error {
	n := len(rc.conns)
	names := make([][]string, n)
	for _, name := range params.Names() {
		idx := ShardOf(name, n)
		names[idx] = append(names[idx], name)
	}
	for i, ns := range names {
		if len(ns) == 0 {
			continue
		}
		var reply PullReply
		if err := rc.call("Shard.Pull", &PullArgs{Names: ns}, &reply, i); err != nil {
			return err
		}
		for name, d := range reply.Values {
			params.Get(name).W.CopyFrom(fromWire(d))
		}
	}
	return nil
}

func (rc *remoteClient) PushGrads(params *nn.ParamSet) error {
	n := len(rc.conns)
	groups := make([]map[string]MatrixData, n)
	for _, p := range params.List() {
		idx := ShardOf(p.Name, n)
		if groups[idx] == nil {
			groups[idx] = make(map[string]MatrixData)
		}
		groups[idx][p.Name] = toWire(p.Grad)
	}
	errs := make(chan error, n)
	calls := 0
	for i, g := range groups {
		if g == nil {
			continue
		}
		calls++
		go func(i int, g map[string]MatrixData) {
			errs <- rc.call("Shard.Push", &PushArgs{Grads: g}, &Empty{}, i)
		}(i, g)
	}
	var first error
	for i := 0; i < calls; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
