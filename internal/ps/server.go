// Package ps implements the parameter-server substrate GraphTrainer runs
// on: sharded servers holding named dense parameters, workers that pull
// weights and push gradients, a synchronous (BSP, gradient-averaging) and
// an asynchronous consistency mode, and two transports — in-process for
// single-machine runs and net/rpc over TCP for real distribution.
package ps

import (
	"fmt"
	"sync"

	"agl/internal/nn"
	"agl/internal/tensor"
)

// Mode selects the consistency model.
type Mode int

// Consistency modes.
const (
	// Async applies every pushed gradient immediately (Hogwild-style).
	Async Mode = iota
	// Sync is bulk-synchronous: pushes block until every registered worker
	// has contributed, then the averaged gradient is applied once.
	Sync
)

// String names the mode.
func (m Mode) String() string {
	if m == Sync {
		return "sync"
	}
	return "async"
}

// Shard is one parameter-server process: it owns a subset of the model's
// parameters and applies its optimizer to pushed gradients.
type Shard struct {
	mu   sync.Mutex
	cond *sync.Cond

	params  map[string]*tensor.Matrix
	opt     nn.Optimizer
	mode    Mode
	workers int
	arrived int
	pending map[string]*tensor.Matrix
	version int64

	pulls, pushes int64
	bytesOut      int64
	bytesIn       int64
}

// NewShard builds a shard owning the given parameters (weights are copied).
func NewShard(params []*nn.Param, opt nn.Optimizer, mode Mode) *Shard {
	s := &Shard{
		params:  make(map[string]*tensor.Matrix, len(params)),
		pending: make(map[string]*tensor.Matrix),
		opt:     opt,
		mode:    mode,
	}
	s.cond = sync.NewCond(&s.mu)
	for _, p := range params {
		s.params[p.Name] = p.W.Clone()
	}
	return s
}

// Register adds a worker to the synchronization group (sync mode).
func (s *Shard) Register() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers++
}

// Deregister removes a worker; if it was the last one outstanding in the
// current step, the step is applied so remaining workers are not blocked.
func (s *Shard) Deregister() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workers > 0 {
		s.workers--
	}
	if s.mode == Sync && s.workers > 0 && s.arrived >= s.workers {
		s.applyPendingLocked()
	}
	s.cond.Broadcast()
}

// Pull copies the current weights for the requested names.
func (s *Shard) Pull(names []string) (map[string]*tensor.Matrix, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*tensor.Matrix, len(names))
	for _, n := range names {
		w, ok := s.params[n]
		if !ok {
			return nil, fmt.Errorf("ps: unknown parameter %q", n)
		}
		out[n] = w.Clone()
		s.bytesOut += int64(len(w.Data) * 8)
	}
	s.pulls++
	return out, nil
}

// Push delivers gradients. In Async mode they are applied immediately; in
// Sync mode the call blocks until all registered workers have pushed for
// this step and the averaged gradient has been applied.
func (s *Shard) Push(grads map[string]*tensor.Matrix) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n, g := range grads {
		if w, ok := s.params[n]; !ok || w.Rows != g.Rows || w.Cols != g.Cols {
			return fmt.Errorf("ps: push of unknown or misshapen parameter %q", n)
		}
		s.bytesIn += int64(len(g.Data) * 8)
	}
	s.pushes++
	switch s.mode {
	case Async:
		for n, g := range grads {
			s.applyOneLocked(n, g, 1)
		}
		s.version++
		return nil
	case Sync:
		for n, g := range grads {
			acc, ok := s.pending[n]
			if !ok {
				acc = tensor.New(g.Rows, g.Cols)
				s.pending[n] = acc
			}
			tensor.AXPY(acc, 1, g)
		}
		s.arrived++
		if s.arrived >= s.workers {
			s.applyPendingLocked()
			s.cond.Broadcast()
			return nil
		}
		myVersion := s.version
		for s.version == myVersion && s.arrived > 0 {
			s.cond.Wait()
		}
		return nil
	}
	return fmt.Errorf("ps: unknown mode %d", s.mode)
}

// applyPendingLocked averages and applies the accumulated step.
func (s *Shard) applyPendingLocked() {
	scale := 1.0
	if s.arrived > 0 {
		scale = 1 / float64(s.arrived)
	}
	for n, g := range s.pending {
		s.applyOneLocked(n, g, scale)
	}
	s.pending = make(map[string]*tensor.Matrix)
	s.arrived = 0
	s.version++
}

func (s *Shard) applyOneLocked(name string, grad *tensor.Matrix, scale float64) {
	w := s.params[name]
	p := &nn.Param{Name: name, W: w, Grad: grad}
	if scale != 1 {
		p.Grad = grad.Clone()
		p.Grad.Scale(scale)
	}
	s.opt.Step(p)
}

// Version returns the number of applied optimizer steps.
func (s *Shard) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Traffic returns cumulative bytes served and received.
func (s *Shard) Traffic() (out, in int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesOut, s.bytesIn
}

// Snapshot copies the shard's current weights into dst (matched by name;
// missing names are skipped). Used to read back the trained model.
func (s *Shard) Snapshot(dst *nn.ParamSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, w := range s.params {
		if p := dst.Get(name); p != nil {
			p.W.CopyFrom(w)
		}
	}
}

// Names lists the parameters this shard owns.
func (s *Shard) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.params))
	for n := range s.params {
		out = append(out, n)
	}
	return out
}
