package ps

import (
	"hash/fnv"

	"agl/internal/nn"
	"agl/internal/tensor"
)

// Client is a worker's view of the parameter servers.
type Client interface {
	// PullInto overwrites the local replica's weights with the servers'.
	PullInto(params *nn.ParamSet) error
	// PushGrads ships the replica's accumulated gradients. In Sync mode the
	// call returns after the global step has been applied.
	PushGrads(params *nn.ParamSet) error
	// Register joins the synchronization group; Deregister leaves it.
	Register()
	Deregister()
}

// ShardOf maps a parameter name to its owning shard. Servers and remote
// clients must agree on this function.
func ShardOf(name string, numShards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(numShards))
}

// Cluster is a set of shards with parameters distributed by name hash —
// the "servers" box of the paper's Figure 4.
type Cluster struct {
	shards []*Shard
	route  map[string]int
}

// NewCluster shards the parameter set over numShards servers. optFactory is
// called once per shard so optimizer state (e.g. Adam moments) stays
// shard-local, exactly as in a real deployment.
func NewCluster(numShards int, params *nn.ParamSet, optFactory func() nn.Optimizer, mode Mode) *Cluster {
	if numShards < 1 {
		numShards = 1
	}
	c := &Cluster{route: make(map[string]int)}
	groups := make([][]*nn.Param, numShards)
	for _, p := range params.List() {
		idx := ShardOf(p.Name, numShards)
		groups[idx] = append(groups[idx], p)
		c.route[p.Name] = idx
	}
	for i := 0; i < numShards; i++ {
		c.shards = append(c.shards, NewShard(groups[i], optFactory(), mode))
	}
	return c
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i (for tests and RPC serving).
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Snapshot copies current server weights into dst by name.
func (c *Cluster) Snapshot(dst *nn.ParamSet) {
	for _, s := range c.shards {
		s.Snapshot(dst)
	}
}

// Traffic sums bytes served/received over all shards.
func (c *Cluster) Traffic() (out, in int64) {
	for _, s := range c.shards {
		o, i := s.Traffic()
		out += o
		in += i
	}
	return out, in
}

// Client returns an in-process client for this cluster.
func (c *Cluster) Client() Client { return &localClient{c: c} }

type localClient struct{ c *Cluster }

func (lc *localClient) Register() {
	for _, s := range lc.c.shards {
		s.Register()
	}
}

func (lc *localClient) Deregister() {
	for _, s := range lc.c.shards {
		s.Deregister()
	}
}

func (lc *localClient) PullInto(params *nn.ParamSet) error {
	names := make([][]string, len(lc.c.shards))
	for _, n := range params.Names() {
		idx, ok := lc.c.route[n]
		if !ok {
			continue
		}
		names[idx] = append(names[idx], n)
	}
	for i, ns := range names {
		if len(ns) == 0 {
			continue
		}
		vals, err := lc.c.shards[i].Pull(ns)
		if err != nil {
			return err
		}
		for n, w := range vals {
			params.Get(n).W.CopyFrom(w)
		}
	}
	return nil
}

func (lc *localClient) PushGrads(params *nn.ParamSet) error {
	groups := make([]map[string]*tensor.Matrix, len(lc.c.shards))
	for _, p := range params.List() {
		idx, ok := lc.c.route[p.Name]
		if !ok {
			continue
		}
		if groups[idx] == nil {
			groups[idx] = make(map[string]*tensor.Matrix)
		}
		groups[idx][p.Name] = p.Grad
	}
	// Sync-mode pushes block until the step applies, so each shard's push
	// must run concurrently or shard 2 would wait on shard 1's barrier.
	errs := make(chan error, len(lc.c.shards))
	n := 0
	for i, g := range groups {
		if g == nil {
			continue
		}
		n++
		go func(i int, g map[string]*tensor.Matrix) {
			errs <- lc.c.shards[i].Push(g)
		}(i, g)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
