package ps

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"agl/internal/nn"
	"agl/internal/tensor"
)

func makeParams(t *testing.T, names ...string) *nn.ParamSet {
	t.Helper()
	s := nn.NewParamSet()
	rng := rand.New(rand.NewSource(1))
	for _, n := range names {
		s.Add(nn.GlorotParam(n, 3, 2, rng))
	}
	return s
}

func TestShardPullReturnsCopies(t *testing.T) {
	params := makeParams(t, "w")
	shard := NewShard(params.List(), nn.NewSGD(0.1), Async)
	vals, err := shard.Pull([]string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	vals["w"].Fill(123)
	vals2, _ := shard.Pull([]string{"w"})
	if vals2["w"].At(0, 0) == 123 {
		t.Fatal("Pull leaked internal storage")
	}
}

func TestShardUnknownParam(t *testing.T) {
	shard := NewShard(nil, nn.NewSGD(0.1), Async)
	if _, err := shard.Pull([]string{"nope"}); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
	g := map[string]*tensor.Matrix{"nope": tensor.New(1, 1)}
	if err := shard.Push(g); err == nil {
		t.Fatal("expected push error")
	}
}

func TestAsyncPushAppliesImmediately(t *testing.T) {
	params := makeParams(t, "w")
	w0 := params.Get("w").W.Clone()
	shard := NewShard(params.List(), nn.NewSGD(0.5), Async)
	grad := tensor.New(3, 2)
	grad.Fill(1)
	if err := shard.Push(map[string]*tensor.Matrix{"w": grad}); err != nil {
		t.Fatal(err)
	}
	vals, _ := shard.Pull([]string{"w"})
	diff := tensor.New(3, 2)
	tensor.Sub(diff, w0, vals["w"])
	for _, v := range diff.Data {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("async step wrong: %v", v)
		}
	}
	if shard.Version() != 1 {
		t.Fatalf("version=%d", shard.Version())
	}
}

func TestSyncBarrierAveragesGradients(t *testing.T) {
	params := makeParams(t, "w")
	w0 := params.Get("w").W.Clone()
	shard := NewShard(params.List(), nn.NewSGD(1.0), Sync)
	shard.Register()
	shard.Register()

	g1 := tensor.New(3, 2)
	g1.Fill(1)
	g2 := tensor.New(3, 2)
	g2.Fill(3)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); shard.Push(map[string]*tensor.Matrix{"w": g1}) }()
	go func() { defer wg.Done(); shard.Push(map[string]*tensor.Matrix{"w": g2}) }()
	wg.Wait()

	// Average gradient = 2, lr = 1 -> w decreases by exactly 2.
	vals, _ := shard.Pull([]string{"w"})
	diff := tensor.New(3, 2)
	tensor.Sub(diff, w0, vals["w"])
	for _, v := range diff.Data {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("sync averaging wrong: %v", v)
		}
	}
	if shard.Version() != 1 {
		t.Fatalf("two pushes produced %d steps, want 1", shard.Version())
	}
}

func TestSyncPushBlocksUntilAllArrive(t *testing.T) {
	params := makeParams(t, "w")
	shard := NewShard(params.List(), nn.NewSGD(1.0), Sync)
	shard.Register()
	shard.Register()
	g := tensor.New(3, 2)
	g.Fill(1)
	done := make(chan struct{})
	go func() {
		shard.Push(map[string]*tensor.Matrix{"w": g})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("push returned before second worker arrived")
	case <-time.After(50 * time.Millisecond):
	}
	// Second worker releases the barrier.
	if err := shard.Push(map[string]*tensor.Matrix{"w": g}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("barrier never released")
	}
}

func TestDeregisterReleasesBarrier(t *testing.T) {
	params := makeParams(t, "w")
	shard := NewShard(params.List(), nn.NewSGD(1.0), Sync)
	shard.Register()
	shard.Register()
	g := tensor.New(3, 2)
	g.Fill(1)
	done := make(chan struct{})
	go func() {
		shard.Push(map[string]*tensor.Matrix{"w": g})
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	shard.Deregister() // the other worker leaves instead of pushing
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("deregister did not release the barrier")
	}
	if shard.Version() != 1 {
		t.Fatalf("version=%d", shard.Version())
	}
}

func TestClusterShardsAllParams(t *testing.T) {
	params := makeParams(t, "a", "b", "c", "d", "e")
	c := NewCluster(3, params, func() nn.Optimizer { return nn.NewSGD(0.1) }, Async)
	total := 0
	for i := 0; i < c.NumShards(); i++ {
		total += len(c.Shard(i).Names())
	}
	if total != 5 {
		t.Fatalf("sharded %d params, want 5", total)
	}
}

func TestClusterPullPushRoundTrip(t *testing.T) {
	params := makeParams(t, "a", "b", "c")
	c := NewCluster(2, params, func() nn.Optimizer { return nn.NewSGD(0.5) }, Async)
	worker := makeParams(t, "a", "b", "c")
	client := c.Client()
	if err := client.PullInto(worker); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !tensor.Equalish(worker.Get(name).W, params.Get(name).W, 0) {
			t.Fatalf("pull mismatch for %s", name)
		}
	}
	for _, p := range worker.List() {
		p.Grad.Fill(1)
	}
	if err := client.PushGrads(worker); err != nil {
		t.Fatal(err)
	}
	after := makeParams(t, "a", "b", "c")
	if err := client.PullInto(after); err != nil {
		t.Fatal(err)
	}
	diff := tensor.New(3, 2)
	tensor.Sub(diff, worker.Get("a").W, after.Get("a").W)
	for _, v := range diff.Data {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("push not applied: %v", v)
		}
	}
}

func TestClusterSnapshot(t *testing.T) {
	params := makeParams(t, "a", "b")
	c := NewCluster(2, params, func() nn.Optimizer { return nn.NewSGD(0.1) }, Async)
	dst := makeParams(t, "a", "b")
	dst.Get("a").W.Fill(0)
	c.Snapshot(dst)
	if !tensor.Equalish(dst.Get("a").W, params.Get("a").W, 0) {
		t.Fatal("snapshot mismatch")
	}
}

// Distributed linear regression: N async workers minimize ||Xw - y||².
func TestDistributedConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 5
	trueW := tensor.New(dim, 1)
	trueW.RandFill(rng, 1)
	nSamples := 200
	X := tensor.New(nSamples, dim)
	X.RandFill(rng, 1)
	y := tensor.MatMulNew(X, trueW)

	global := nn.NewParamSet(nn.NewParam("w", dim, 1))
	c := NewCluster(1, global, func() nn.Optimizer { return nn.NewAdam(0.02) }, Async)

	var wg sync.WaitGroup
	workers := 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := nn.NewParamSet(nn.NewParam("w", dim, 1))
			client := c.Client()
			client.Register()
			defer client.Deregister()
			lo := w * nSamples / workers
			hi := (w + 1) * nSamples / workers
			// Enough steps to reach async Adam's steady state; scheduling
			// (markedly different under -race) shifts how fast, so keep a
			// healthy margin over the typical requirement.
			for step := 0; step < 900; step++ {
				if err := client.PullInto(local); err != nil {
					t.Error(err)
					return
				}
				// grad = 2 Xᵀ(Xw - y) over this worker's slice.
				grad := tensor.New(dim, 1)
				for i := lo; i < hi; i++ {
					xr := X.Row(i)
					var pred float64
					for j, v := range xr {
						pred += v * local.Get("w").W.Data[j]
					}
					resid := pred - y.Data[i]
					for j, v := range xr {
						grad.Data[j] += 2 * resid * v / float64(hi-lo)
					}
				}
				local.Get("w").Grad.CopyFrom(grad)
				if err := client.PushGrads(local); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	final := nn.NewParamSet(nn.NewParam("w", dim, 1))
	c.Snapshot(final)
	// The bound reflects async Adam's steady-state wander at a fixed LR,
	// not a convergence-rate artifact: gradient staleness makes the
	// iterate orbit the optimum no matter how many extra steps run
	// (weights start at 0, |w*| <= 1, so 0.12 still certifies an
	// order-of-magnitude contraction). At LR 0.05 the orbit occasionally
	// crossed 0.05-0.14 depending on scheduling, which made tighter
	// bounds a scheduler-dependent coin flip under -race; LR 0.02 keeps
	// the orbit well inside this bound.
	if d := tensor.MaxAbsDiff(final.Get("w").W, trueW); d > 0.12 {
		t.Fatalf("did not converge: max diff %v", d)
	}
}

func TestRPCTransportRoundTrip(t *testing.T) {
	params := makeParams(t, "a", "b", "c")
	c := NewCluster(2, params, func() nn.Optimizer { return nn.NewSGD(0.5) }, Async)
	addrs, stop, err := Serve(c)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	worker := makeParams(t, "a", "b", "c")
	if err := client.PullInto(worker); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equalish(worker.Get("b").W, params.Get("b").W, 0) {
		t.Fatal("RPC pull mismatch")
	}
	for _, p := range worker.List() {
		p.Grad.Fill(2)
	}
	if err := client.PushGrads(worker); err != nil {
		t.Fatal(err)
	}
	after := makeParams(t, "a", "b", "c")
	if err := client.PullInto(after); err != nil {
		t.Fatal(err)
	}
	diff := tensor.New(3, 2)
	tensor.Sub(diff, worker.Get("c").W, after.Get("c").W)
	for _, v := range diff.Data {
		if math.Abs(v-1.0) > 1e-12 {
			t.Fatalf("RPC push not applied: %v", v)
		}
	}
	if out, in := c.Traffic(); out == 0 || in == 0 {
		t.Fatal("traffic accounting missing")
	}
}

func TestRPCSyncModeAcrossTransports(t *testing.T) {
	params := makeParams(t, "w")
	c := NewCluster(1, params, func() nn.Optimizer { return nn.NewSGD(1.0) }, Sync)
	addrs, stop, err := Serve(c)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Register both workers before either pushes: the sync barrier counts
	// registered workers, so a worker that registered, pushed and
	// deregistered before its peer arrived would form a 1-worker step of
	// its own (two applied versions instead of one).
	clients := make([]Client, 2)
	for i := range clients {
		client, err := Dial(addrs)
		if err != nil {
			t.Fatal(err)
		}
		client.Register()
		clients[i] = client
	}
	var wg sync.WaitGroup
	for i, client := range clients {
		wg.Add(1)
		go func(i int, client Client) {
			defer wg.Done()
			defer client.Deregister()
			local := makeParams(t, "w")
			local.Get("w").Grad.Fill(float64(i + 1))
			if err := client.PushGrads(local); err != nil {
				t.Error(err)
			}
		}(i, client)
	}
	wg.Wait()
	if c.Shard(0).Version() != 1 {
		t.Fatalf("version=%d want 1", c.Shard(0).Version())
	}
}
