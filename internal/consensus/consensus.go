// Package consensus is a self-contained, dependency-free raft-style
// replicated log: randomized-timeout leader election, term/vote and log
// persistence to a small WAL, and majority commit, driving a single
// user-supplied FSM. It exists so the serving cluster's placement table
// is a *replicated* fact — placement changes (migrations, failovers)
// are committed log entries that survive replica crashes and minority
// partitions — instead of PR-8's best-effort push over a static peer
// list.
//
// Scope is deliberately the paper's core protocol, sized to this FSM's
// write rate (operator-rare): no log compaction or snapshots (the log
// is a placement history; it stays tiny), and no joint-consensus
// membership change (the member set is fixed at boot — a crashed member
// still counts toward quorum size, so a 3-node cluster tolerates
// exactly one dead node, which is the documented failure model).
//
// The transport is an interface; the serving tier binds it to
// internal/rpcx so raft heartbeats double as the cluster's failure
// detector (the leader's per-peer last-contact times are exposed via
// PeerContact).
package consensus

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"agl/internal/clockx"
)

// Entry is one replicated log record. Index is 1-based and dense; a nil
// Cmd is an internal no-op (appended by a fresh leader to flush the
// commit index forward into its term) and is never handed to the FSM.
type Entry struct {
	Index uint64
	Term  uint64
	Cmd   []byte
}

// FSM consumes committed entries, in index order, exactly once per node
// lifetime (a restarted node re-applies from the beginning — Apply must
// be idempotent, which a "newest epoch wins" placement table is).
type FSM interface {
	Apply(e Entry)
}

// Transport carries the two raft RPCs to a peer. Implementations must
// honor ctx and may fail freely — the protocol tolerates loss,
// duplication, and delay.
type Transport interface {
	RequestVote(ctx context.Context, peer string, args *VoteArgs, reply *VoteReply) error
	AppendEntries(ctx context.Context, peer string, args *AppendArgs, reply *AppendReply) error
}

// VoteArgs is the RequestVote RPC request.
type VoteArgs struct {
	Term         uint64
	Candidate    string
	LastLogIndex uint64
	LastLogTerm  uint64
}

// VoteReply is the RequestVote RPC response.
type VoteReply struct {
	Term    uint64
	Granted bool
}

// AppendArgs is the AppendEntries RPC request (also the heartbeat when
// Entries is empty).
type AppendArgs struct {
	Term         uint64
	Leader       string
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
}

// AppendReply is the AppendEntries RPC response. On log-mismatch
// rejection, ConflictIndex hints where the leader should back up to.
type AppendReply struct {
	Term          uint64
	Success       bool
	ConflictIndex uint64
}

// ErrNotLeader is matched by errors.Is when a proposal lands on a
// non-leader; the concrete *NotLeaderError carries a forwarding hint.
var ErrNotLeader = errors.New("consensus: not leader")

// NotLeaderError reports the proposal must go to Leader (possibly ""
// when no leader is known yet — retry after an election settles).
type NotLeaderError struct {
	Leader string
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "consensus: not leader (no leader known)"
	}
	return "consensus: not leader (leader is " + e.Leader + ")"
}

// Is matches the ErrNotLeader sentinel.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// ErrLost reports a proposal that was appended but then overwritten by
// a competing leader before committing — safe to retry.
var ErrLost = errors.New("consensus: proposal lost to a competing leader")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("consensus: closed")

// Config configures a Node. ID must appear in Peers.
type Config struct {
	ID        string
	Peers     []string // full membership including self; fixed at boot
	WALPath   string   // "" = no persistence (tests only)
	Transport Transport
	FSM       FSM
	Clock     clockx.Clock // nil = real time

	HeartbeatInterval  time.Duration // default 75ms
	ElectionTimeoutMin time.Duration // default 300ms
	ElectionTimeoutMax time.Duration // default 600ms
	Seed               int64         // randomized election timeouts
	Logf               func(format string, args ...any)
}

type role int

const (
	follower role = iota
	candidate
	leader
)

// Node is one raft participant. All exported methods are safe for
// concurrent use.
type Node struct {
	cfg   Config
	clk   clockx.Clock
	peers []string // excluding self

	mu          sync.Mutex
	applyCond   *sync.Cond
	role        role
	term        uint64
	votedFor    string
	leaderID    string
	log         []Entry // log[i].Index == i+1
	commitIndex uint64
	lastApplied uint64
	lastReset   time.Time     // election timer origin
	timeoutCur  time.Duration // current randomized election timeout
	nextIndex   map[string]uint64
	matchIndex  map[string]uint64
	contact     map[string]time.Time // leader-side last successful reply
	waiters     map[uint64][]chan waitResult
	rng         *rand.Rand
	wal         *wal
	closed      bool

	kick   chan struct{} // wakes the replicator early (new proposal)
	stopCh chan struct{}
	wg     sync.WaitGroup
}

type waitResult struct {
	term uint64 // term of the entry actually committed at the index
	err  error
}

// New opens (replaying) the WAL and starts the node as a follower.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("consensus: empty ID")
	}
	self := false
	for _, p := range cfg.Peers {
		if p == cfg.ID {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("consensus: ID %q not in peer set %v", cfg.ID, cfg.Peers)
	}
	if cfg.Transport == nil && len(cfg.Peers) > 1 {
		return nil, errors.New("consensus: nil transport with peers")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 75 * time.Millisecond
	}
	if cfg.ElectionTimeoutMin <= 0 {
		cfg.ElectionTimeoutMin = 300 * time.Millisecond
	}
	if cfg.ElectionTimeoutMax <= cfg.ElectionTimeoutMin {
		cfg.ElectionTimeoutMax = 2 * cfg.ElectionTimeoutMin
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clockx.Real{}
	}

	n := &Node{
		cfg:        cfg,
		clk:        clk,
		nextIndex:  make(map[string]uint64),
		matchIndex: make(map[string]uint64),
		contact:    make(map[string]time.Time),
		waiters:    make(map[uint64][]chan waitResult),
		kick:       make(chan struct{}, 1),
		stopCh:     make(chan struct{}),
	}
	n.applyCond = sync.NewCond(&n.mu)
	for _, p := range cfg.Peers {
		if p != cfg.ID {
			n.peers = append(n.peers, p)
		}
	}
	seed := cfg.Seed
	for _, b := range []byte(cfg.ID) {
		seed = seed*1099511628211 + int64(b)
	}
	n.rng = rand.New(rand.NewSource(seed))

	if cfg.WALPath != "" {
		w, st, err := openWAL(cfg.WALPath)
		if err != nil {
			return nil, err
		}
		n.wal = w
		n.term = st.term
		n.votedFor = st.vote
		n.log = st.log
	}
	n.lastReset = clk.Now()
	n.timeoutCur = n.randTimeout()

	n.wg.Add(3)
	go n.electionLoop()
	go n.replicateLoop()
	go n.applyLoop()
	return n, nil
}

// Close stops the node's goroutines and closes the WAL. In-flight
// proposals fail with ErrClosed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stopCh)
	n.applyCond.Broadcast()
	for idx, chans := range n.waiters {
		for _, ch := range chans {
			ch <- waitResult{err: ErrClosed}
		}
		delete(n.waiters, idx)
	}
	w := n.wal
	n.mu.Unlock()
	n.wg.Wait()
	return w.Close()
}

// --- observables ---

// Term returns the current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Leader returns the known leader's ID ("" if none) and whether this
// node is it.
func (n *Node) Leader() (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == leader {
		return n.cfg.ID, true
	}
	return n.leaderID, false
}

// IsLeader reports whether this node currently believes it leads.
func (n *Node) IsLeader() bool {
	_, is := n.Leader()
	return is
}

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// LastIndex returns the highest appended log index.
func (n *Node) LastIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastIndexLocked()
}

// PeerContact returns the leader-side timestamp of the last successful
// AppendEntries reply from peer — the raft heartbeat doubling as the
// cluster failure detector. The zero time means no contact since this
// node became leader. Only meaningful on the leader.
func (n *Node) PeerContact(peer string) time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.contact[peer]
}

// --- proposal path ---

// Propose appends cmd to the replicated log and blocks until it commits
// (majority-replicated and applied to the local FSM), ctx ends, or the
// entry is overwritten by a competing leader (ErrLost). On non-leaders
// it fails fast with *NotLeaderError carrying the forwarding hint.
func (n *Node) Propose(ctx context.Context, cmd []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.role != leader {
		hint := n.leaderID
		n.mu.Unlock()
		return &NotLeaderError{Leader: hint}
	}
	e := Entry{Index: n.lastIndexLocked() + 1, Term: n.term, Cmd: cmd}
	n.log = append(n.log, e)
	n.persistEntriesLocked(e)
	ch := make(chan waitResult, 1)
	n.waiters[e.Index] = append(n.waiters[e.Index], ch)
	if len(n.peers) == 0 {
		n.advanceCommitLocked() // single-node cluster: majority of one
	}
	n.mu.Unlock()

	// Wake the replicator so the entry does not wait a heartbeat.
	select {
	case n.kick <- struct{}{}:
	default:
	}

	select {
	case res := <-ch:
		if res.err != nil {
			return res.err
		}
		if res.term != e.Term {
			return ErrLost
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- RPC handlers (bound to the transport's server side) ---

// HandleRequestVote is the RequestVote receiver.
func (n *Node) HandleRequestVote(args *VoteArgs, reply *VoteReply) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if args.Term > n.term {
		n.becomeFollowerLocked(args.Term, "")
	}
	reply.Term = n.term
	if args.Term < n.term {
		return
	}
	upToDate := args.LastLogTerm > n.lastTermLocked() ||
		(args.LastLogTerm == n.lastTermLocked() && args.LastLogIndex >= n.lastIndexLocked())
	if (n.votedFor == "" || n.votedFor == args.Candidate) && upToDate {
		n.votedFor = args.Candidate
		n.persistMetaLocked()
		n.resetElectionTimerLocked()
		reply.Granted = true
	}
}

// HandleAppendEntries is the AppendEntries receiver.
func (n *Node) HandleAppendEntries(args *AppendArgs, reply *AppendReply) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if args.Term > n.term {
		n.becomeFollowerLocked(args.Term, args.Leader)
	}
	reply.Term = n.term
	if args.Term < n.term {
		return
	}
	// Valid leader for this term: stay (or become) its follower.
	n.leaderID = args.Leader
	if n.role != follower {
		n.role = follower
	}
	n.resetElectionTimerLocked()

	// Log-matching check at PrevLogIndex.
	if args.PrevLogIndex > n.lastIndexLocked() {
		reply.ConflictIndex = n.lastIndexLocked() + 1
		return
	}
	if args.PrevLogIndex > 0 {
		have := n.log[args.PrevLogIndex-1].Term
		if have != args.PrevLogTerm {
			// Back up past the whole conflicting term in one hop.
			ci := args.PrevLogIndex
			for ci > 1 && n.log[ci-2].Term == have {
				ci--
			}
			reply.ConflictIndex = ci
			return
		}
	}
	// Append, truncating on the first divergence.
	for i, e := range args.Entries {
		if e.Index <= n.lastIndexLocked() {
			if n.log[e.Index-1].Term == e.Term {
				continue // already have it
			}
			n.truncateFromLocked(e.Index)
		}
		n.log = append(n.log, args.Entries[i:]...)
		n.persistEntriesLocked(args.Entries[i:]...)
		break
	}
	if args.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(args.LeaderCommit, n.lastIndexLocked())
		n.applyCond.Broadcast()
	}
	reply.Success = true
}

// --- election ---

// electionLoop ticks the randomized election timer; expiry on a
// non-leader starts a new election.
func (n *Node) electionLoop() {
	defer n.wg.Done()
	tick := n.cfg.ElectionTimeoutMin / 10
	if tick <= 0 {
		tick = 5 * time.Millisecond
	}
	for {
		woke := make(chan struct{})
		t := n.clk.AfterFunc(tick, func() { close(woke) })
		select {
		case <-n.stopCh:
			t.Stop()
			return
		case <-woke:
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		expired := n.role != leader && n.clk.Since(n.lastReset) >= n.timeoutCur
		if !expired {
			n.mu.Unlock()
			continue
		}
		// Become candidate: bump term, vote for self, solicit votes.
		n.role = candidate
		n.term++
		n.votedFor = n.cfg.ID
		n.leaderID = ""
		n.persistMetaLocked()
		n.resetElectionTimerLocked()
		term := n.term
		args := &VoteArgs{
			Term:         term,
			Candidate:    n.cfg.ID,
			LastLogIndex: n.lastIndexLocked(),
			LastLogTerm:  n.lastTermLocked(),
		}
		n.cfg.Logf("consensus %s: election for term %d", n.cfg.ID, term)
		peers := n.peers
		n.mu.Unlock()

		if len(peers) == 0 {
			n.mu.Lock()
			if n.role == candidate && n.term == term {
				n.becomeLeaderLocked()
			}
			n.mu.Unlock()
			continue
		}
		votes := 1 // self
		var vmu sync.Mutex
		for _, p := range peers {
			go func(p string) {
				ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeoutMin)
				defer cancel()
				var reply VoteReply
				if err := n.cfg.Transport.RequestVote(ctx, p, args, &reply); err != nil {
					return
				}
				n.mu.Lock()
				defer n.mu.Unlock()
				if reply.Term > n.term {
					n.becomeFollowerLocked(reply.Term, "")
					return
				}
				if n.role != candidate || n.term != term || !reply.Granted {
					return
				}
				vmu.Lock()
				votes++
				won := votes > len(n.cfg.Peers)/2
				vmu.Unlock()
				if won {
					n.becomeLeaderLocked()
				}
			}(p)
		}
	}
}

// becomeLeaderLocked transitions candidate→leader: init replication
// state and append a no-op so the previous terms' entries commit under
// this term's majority rule.
func (n *Node) becomeLeaderLocked() {
	if n.role == leader {
		return
	}
	n.role = leader
	n.leaderID = n.cfg.ID
	now := n.clk.Now()
	for _, p := range n.peers {
		n.nextIndex[p] = n.lastIndexLocked() + 1
		n.matchIndex[p] = 0
		n.contact[p] = now
	}
	noop := Entry{Index: n.lastIndexLocked() + 1, Term: n.term}
	n.log = append(n.log, noop)
	n.persistEntriesLocked(noop)
	n.cfg.Logf("consensus %s: leader for term %d (log %d)", n.cfg.ID, n.term, n.lastIndexLocked())
	if len(n.peers) == 0 {
		n.advanceCommitLocked()
	}
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// becomeFollowerLocked steps down into newTerm (strictly newer terms
// only reach here).
func (n *Node) becomeFollowerLocked(newTerm uint64, leaderHint string) {
	n.term = newTerm
	n.role = follower
	n.votedFor = ""
	n.leaderID = leaderHint
	n.persistMetaLocked()
	n.resetElectionTimerLocked()
}

func (n *Node) resetElectionTimerLocked() {
	n.lastReset = n.clk.Now()
	n.timeoutCur = n.randTimeout()
}

func (n *Node) randTimeout() time.Duration {
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	return n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63n(int64(span)))
}

// --- replication ---

// replicateLoop: while leader, push AppendEntries to every peer each
// heartbeat interval (sooner when kicked by a proposal).
func (n *Node) replicateLoop() {
	defer n.wg.Done()
	for {
		// Sleep a heartbeat, but wake early on kick or stop.
		woke := make(chan struct{})
		t := n.clk.AfterFunc(n.cfg.HeartbeatInterval, func() { close(woke) })
		select {
		case <-n.stopCh:
			t.Stop()
			return
		case <-n.kick:
			t.Stop()
		case <-woke:
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		if n.role != leader {
			n.mu.Unlock()
			continue
		}
		term := n.term
		n.mu.Unlock()
		for _, p := range n.peers {
			go n.replicateTo(p, term)
		}
	}
}

// replicateTo sends one AppendEntries to peer carrying everything from
// its nextIndex, processing the reply.
func (n *Node) replicateTo(peer string, term uint64) {
	n.mu.Lock()
	if n.role != leader || n.term != term {
		n.mu.Unlock()
		return
	}
	next := n.nextIndex[peer]
	if next == 0 {
		next = 1
	}
	args := &AppendArgs{
		Term:         term,
		Leader:       n.cfg.ID,
		PrevLogIndex: next - 1,
		LeaderCommit: n.commitIndex,
	}
	if next > 1 {
		args.PrevLogTerm = n.log[next-2].Term
	}
	if last := n.lastIndexLocked(); last >= next {
		args.Entries = append([]Entry(nil), n.log[next-1:]...)
	}
	n.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HeartbeatInterval*3)
	defer cancel()
	var reply AppendReply
	if err := n.cfg.Transport.AppendEntries(ctx, peer, args, &reply); err != nil {
		return
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if reply.Term > n.term {
		n.becomeFollowerLocked(reply.Term, "")
		return
	}
	if n.role != leader || n.term != term {
		return
	}
	n.contact[peer] = n.clk.Now()
	if reply.Success {
		m := args.PrevLogIndex + uint64(len(args.Entries))
		if m > n.matchIndex[peer] {
			n.matchIndex[peer] = m
		}
		if m+1 > n.nextIndex[peer] {
			n.nextIndex[peer] = m + 1
		}
		n.advanceCommitLocked()
		return
	}
	// Log mismatch: back up (using the follower's conflict hint) and let
	// the next heartbeat retry from there.
	if reply.ConflictIndex > 0 && reply.ConflictIndex < n.nextIndex[peer] {
		n.nextIndex[peer] = reply.ConflictIndex
	} else if n.nextIndex[peer] > 1 {
		n.nextIndex[peer]--
	}
}

// advanceCommitLocked moves commitIndex to the highest N with
// log[N].Term == currentTerm replicated on a majority (the figure-8
// rule: older-term entries commit only transitively).
func (n *Node) advanceCommitLocked() {
	for N := n.lastIndexLocked(); N > n.commitIndex; N-- {
		if n.log[N-1].Term != n.term {
			break // older term: cannot commit directly
		}
		count := 1 // self
		for _, p := range n.peers {
			if n.matchIndex[p] >= N {
				count++
			}
		}
		if count > len(n.cfg.Peers)/2 {
			n.commitIndex = N
			n.applyCond.Broadcast()
			return
		}
	}
}

// --- apply ---

// applyLoop feeds committed entries to the FSM in order and resolves
// proposal waiters. FSM.Apply runs without the node lock.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for n.lastApplied >= n.commitIndex && !n.closed {
			n.applyCond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		var batch []Entry
		for n.lastApplied < n.commitIndex {
			n.lastApplied++
			batch = append(batch, n.log[n.lastApplied-1])
		}
		n.mu.Unlock()
		for _, e := range batch {
			if e.Cmd != nil && n.cfg.FSM != nil {
				n.cfg.FSM.Apply(e)
			}
		}
		n.mu.Lock()
		for _, e := range batch {
			for _, ch := range n.waiters[e.Index] {
				ch <- waitResult{term: e.Term}
			}
			delete(n.waiters, e.Index)
		}
		n.mu.Unlock()
	}
}

// --- persistence + log helpers (callers hold n.mu) ---

func (n *Node) persistMetaLocked() {
	if n.wal == nil {
		return
	}
	if err := n.wal.saveMeta(n.term, n.votedFor); err != nil {
		n.cfg.Logf("consensus %s: wal meta: %v", n.cfg.ID, err)
	}
	if err := n.wal.sync(); err != nil {
		n.cfg.Logf("consensus %s: wal sync: %v", n.cfg.ID, err)
	}
}

func (n *Node) persistEntriesLocked(es ...Entry) {
	if n.wal == nil {
		return
	}
	for _, e := range es {
		if err := n.wal.appendEntry(e); err != nil {
			n.cfg.Logf("consensus %s: wal entry: %v", n.cfg.ID, err)
		}
	}
	if err := n.wal.sync(); err != nil {
		n.cfg.Logf("consensus %s: wal sync: %v", n.cfg.ID, err)
	}
}

// truncateFromLocked discards log entries with Index >= from, failing
// any waiters parked on them (their slots were overwritten).
func (n *Node) truncateFromLocked(from uint64) {
	n.log = n.log[:from-1]
	if n.wal != nil {
		if err := n.wal.truncateFrom(from); err != nil {
			n.cfg.Logf("consensus %s: wal truncate: %v", n.cfg.ID, err)
		}
	}
	for idx, chans := range n.waiters {
		if idx >= from {
			for _, ch := range chans {
				ch <- waitResult{err: ErrLost}
			}
			delete(n.waiters, idx)
		}
	}
}

func (n *Node) lastIndexLocked() uint64 { return uint64(len(n.log)) }

func (n *Node) lastTermLocked() uint64 {
	if len(n.log) == 0 {
		return 0
	}
	return n.log[len(n.log)-1].Term
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
