package consensus

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// memTransport delivers RPCs by direct handler call, with a switchable
// partition and per-node disconnect — and it records every leadership
// claim it carries (term → leaders), which is what the election-safety
// property is asserted over.
type memTransport struct {
	mu      sync.Mutex
	nodes   map[string]*Node
	cut     map[string]bool // nodes on the minority side of the partition
	leaders map[uint64]map[string]bool
}

func newMemTransport() *memTransport {
	return &memTransport{
		nodes:   make(map[string]*Node),
		cut:     make(map[string]bool),
		leaders: make(map[uint64]map[string]bool),
	}
}

func (tr *memTransport) connect(id string, n *Node) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nodes[id] = n
}

func (tr *memTransport) disconnect(id string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	delete(tr.nodes, id)
}

// partition puts ids on one side, everyone else on the other.
func (tr *memTransport) partition(ids ...string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.cut = make(map[string]bool)
	for _, id := range ids {
		tr.cut[id] = true
	}
}

func (tr *memTransport) heal() { tr.partition() }

// route returns the destination node, or an error if the pair is
// severed or the destination is down.
func (tr *memTransport) route(src, dst string) (*Node, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.cut[src] != tr.cut[dst] {
		return nil, errors.New("memtransport: partitioned")
	}
	n := tr.nodes[dst]
	if n == nil {
		return nil, errors.New("memtransport: peer down")
	}
	return n, nil
}

func (tr *memTransport) RequestVote(ctx context.Context, peer string, args *VoteArgs, reply *VoteReply) error {
	n, err := tr.route(args.Candidate, peer)
	if err != nil {
		return err
	}
	n.HandleRequestVote(args, reply)
	return nil
}

func (tr *memTransport) AppendEntries(ctx context.Context, peer string, args *AppendArgs, reply *AppendReply) error {
	tr.mu.Lock()
	set := tr.leaders[args.Term]
	if set == nil {
		set = make(map[string]bool)
		tr.leaders[args.Term] = set
	}
	set[args.Leader] = true
	tr.mu.Unlock()
	n, err := tr.route(args.Leader, peer)
	if err != nil {
		return err
	}
	n.HandleAppendEntries(args, reply)
	return nil
}

// leadersPerTerm snapshots the observed claims.
func (tr *memTransport) leadersPerTerm() map[uint64][]string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[uint64][]string)
	for term, set := range tr.leaders {
		for id := range set {
			out[term] = append(out[term], id)
		}
	}
	return out
}

// recFSM records applied entries in order.
type recFSM struct {
	mu      sync.Mutex
	entries []Entry
}

func (f *recFSM) Apply(e Entry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entries = append(f.entries, e)
}

func (f *recFSM) cmds() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.entries))
	for i, e := range f.entries {
		out[i] = string(e.Cmd)
	}
	return out
}

// testCluster spins up n nodes over one memTransport. walDir == "" runs
// without persistence.
func testCluster(t *testing.T, n int, walDir string) (*memTransport, []*Node, []*recFSM, []string) {
	t.Helper()
	tr := newMemTransport()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	nodes := make([]*Node, n)
	fsms := make([]*recFSM, n)
	for i, id := range ids {
		fsms[i] = &recFSM{}
		nd := startNode(t, tr, ids, id, fsms[i], walDir)
		nodes[i] = nd
	}
	return tr, nodes, fsms, ids
}

func startNode(t *testing.T, tr *memTransport, ids []string, id string, fsm FSM, walDir string) *Node {
	t.Helper()
	walPath := ""
	if walDir != "" {
		walPath = filepath.Join(walDir, id+".wal")
	}
	nd, err := New(Config{
		ID:                 id,
		Peers:              ids,
		WALPath:            walPath,
		Transport:          tr,
		FSM:                fsm,
		HeartbeatInterval:  15 * time.Millisecond,
		ElectionTimeoutMin: 60 * time.Millisecond,
		ElectionTimeoutMax: 120 * time.Millisecond,
		Seed:               int64(len(id)) * 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.connect(id, nd)
	return nd
}

// waitFor polls cond for up to timeout.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// findLeader returns the current self-declared leader among live nodes.
func findLeader(nodes []*Node) *Node {
	for _, nd := range nodes {
		if nd != nil && nd.IsLeader() {
			return nd
		}
	}
	return nil
}

// propose finds the leader and proposes, retrying through election
// churn until committed or the deadline passes.
func propose(t *testing.T, nodes []*Node, cmd string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ld := findLeader(nodes)
		if ld == nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := ld.Propose(ctx, []byte(cmd))
		cancel()
		if err == nil {
			return
		}
		if errors.Is(err, ErrNotLeader) || errors.Is(err, ErrLost) ||
			errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		t.Fatalf("propose %q: %v", cmd, err)
	}
	t.Fatalf("propose %q never committed", cmd)
}

func closeAll(nodes []*Node) {
	for _, nd := range nodes {
		if nd != nil {
			nd.Close()
		}
	}
}

// TestElectionSafety is the core safety property: across repeated
// forced re-elections (partitioning away whoever currently leads),
// no term ever has two leaders.
func TestElectionSafety(t *testing.T) {
	tr, nodes, _, ids := testCluster(t, 5, "")
	defer closeAll(nodes)

	waitFor(t, 5*time.Second, "initial leader", func() bool { return findLeader(nodes) != nil })
	for round := 0; round < 6; round++ {
		ld := findLeader(nodes)
		if ld == nil {
			waitFor(t, 5*time.Second, "re-elected leader", func() bool { return findLeader(nodes) != nil })
			ld = findLeader(nodes)
		}
		// Cut the leader (plus one more node, keeping a 3/5 majority)
		// and wait for the majority side to elect a replacement.
		other := ids[round%len(ids)]
		if other == ld.cfg.ID {
			other = ids[(round+1)%len(ids)]
		}
		tr.partition(ld.cfg.ID, other)
		waitFor(t, 5*time.Second, "majority-side leader", func() bool {
			for _, nd := range nodes {
				if nd.IsLeader() && nd != ld && nd.cfg.ID != other {
					return true
				}
			}
			return false
		})
		tr.heal()
		// Let the deposed leader rejoin and the cluster settle.
		waitFor(t, 5*time.Second, "single settled leader", func() bool {
			count := 0
			for _, nd := range nodes {
				if nd.IsLeader() {
					count++
				}
			}
			return count == 1
		})
	}

	for term, claimants := range tr.leadersPerTerm() {
		if len(claimants) > 1 {
			t.Fatalf("election safety violated: term %d claimed by %v", term, claimants)
		}
	}
}

// TestCommitDurabilityAcrossMinorityRestart: entries committed while a
// minority is down (crashed, WAL intact) reach the restarted node, and
// everything it had before the crash survives — the log is durable and
// converges identically on every member.
func TestCommitDurabilityAcrossMinorityRestart(t *testing.T) {
	dir := t.TempDir()
	tr, nodes, fsms, ids := testCluster(t, 3, dir)
	defer func() { closeAll(nodes) }()

	for i := 0; i < 4; i++ {
		propose(t, nodes, fmt.Sprintf("cmd-%d", i))
	}
	// All three FSMs converge on the first four commands.
	waitFor(t, 5*time.Second, "initial convergence", func() bool {
		for _, f := range fsms {
			if len(f.cmds()) != 4 {
				return false
			}
		}
		return true
	})

	// Crash a follower (minority of one).
	victim := -1
	for i, nd := range nodes {
		if !nd.IsLeader() {
			victim = i
			break
		}
	}
	tr.disconnect(ids[victim])
	nodes[victim].Close()

	// The surviving majority keeps committing.
	live := make([]*Node, len(nodes))
	copy(live, nodes)
	live[victim] = nil
	for i := 4; i < 8; i++ {
		propose(t, live, fmt.Sprintf("cmd-%d", i))
	}

	// Restart the victim from its WAL: it must recover its pre-crash
	// log and catch up to all eight commands, in order.
	fsms[victim] = &recFSM{}
	nodes[victim] = startNode(t, tr, ids, ids[victim], fsms[victim], dir)
	waitFor(t, 10*time.Second, "restarted node catch-up", func() bool {
		return len(fsms[victim].cmds()) == 8
	})
	want := fsms[victim].cmds()
	for i, c := range want {
		if c != fmt.Sprintf("cmd-%d", i) {
			t.Fatalf("restarted node applied %v (bad at %d)", want, i)
		}
	}
	if nodes[victim].Term() == 0 {
		t.Fatal("restarted node lost its term")
	}
}

// TestLeaderCrashFailover: killing the leader yields a new leader that
// can commit — the availability half of the failure model.
func TestLeaderCrashFailover(t *testing.T) {
	dir := t.TempDir()
	tr, nodes, fsms, ids := testCluster(t, 3, dir)
	defer closeAll(nodes)

	propose(t, nodes, "before")
	ld := findLeader(nodes)
	if ld == nil {
		t.Fatal("no leader after commit")
	}
	var ldIdx int
	for i := range nodes {
		if nodes[i] == ld {
			ldIdx = i
		}
	}
	tr.disconnect(ids[ldIdx])
	ld.Close()
	live := make([]*Node, len(nodes))
	copy(live, nodes)
	live[ldIdx] = nil

	waitFor(t, 5*time.Second, "new leader after crash", func() bool {
		l := findLeader(live)
		return l != nil
	})
	propose(t, live, "after")
	for i, f := range fsms {
		if i == ldIdx {
			continue
		}
		waitFor(t, 5*time.Second, "survivor convergence", func() bool {
			cs := f.cmds()
			return len(cs) == 2 && cs[0] == "before" && cs[1] == "after"
		})
	}
}

// TestProposeOnFollowerFailsFast: non-leaders reject with the typed
// hint instead of hanging.
func TestProposeOnFollowerFailsFast(t *testing.T) {
	_, nodes, _, _ := testCluster(t, 3, "")
	defer closeAll(nodes)
	waitFor(t, 5*time.Second, "leader", func() bool { return findLeader(nodes) != nil })
	ld := findLeader(nodes)
	for _, nd := range nodes {
		if nd == ld {
			continue
		}
		err := nd.Propose(context.Background(), []byte("x"))
		var nle *NotLeaderError
		if !errors.As(err, &nle) || !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower Propose: want NotLeaderError, got %v", err)
		}
	}
}

// TestSingleNodeCommits: a cluster of one elects itself and commits
// immediately — the degenerate deployment must work.
func TestSingleNodeCommits(t *testing.T) {
	fsm := &recFSM{}
	nd, err := New(Config{
		ID:                 "solo",
		Peers:              []string{"solo"},
		WALPath:            filepath.Join(t.TempDir(), "solo.wal"),
		FSM:                fsm,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	waitFor(t, 2*time.Second, "self-election", nd.IsLeader)
	if err := nd.Propose(ctx, []byte("only")); err != nil {
		t.Fatal(err)
	}
	if got := fsm.cmds(); len(got) != 1 || got[0] != "only" {
		t.Fatalf("fsm = %v", got)
	}
}

// TestWALReplayTornTail: a WAL whose final record is cut mid-write
// replays everything before the tear and keeps working.
func TestWALReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, st, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.term != 0 || len(st.log) != 0 {
		t.Fatalf("fresh wal state = %+v", st)
	}
	if err := w.saveMeta(7, "node-1"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := w.appendEntry(Entry{Index: i, Term: 7, Cmd: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the tail: chop 5 bytes off the last record.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	w2, st2, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st2.term != 7 || st2.vote != "node-1" {
		t.Fatalf("replayed meta = term %d vote %q", st2.term, st2.vote)
	}
	if len(st2.log) != 2 {
		t.Fatalf("replayed %d entries, want 2 (torn third dropped)", len(st2.log))
	}
	// The file still appends cleanly after the trim.
	if err := w2.appendEntry(Entry{Index: 3, Term: 8, Cmd: []byte("re")}); err != nil {
		t.Fatal(err)
	}
	if err := w2.sync(); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, st3, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st3.log) != 3 || st3.log[2].Term != 8 {
		t.Fatalf("post-repair replay = %+v", st3.log)
	}
}

// TestWALTruncateRecord: conflict truncation survives replay.
func TestWALTruncateRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.wal")
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		w.appendEntry(Entry{Index: i, Term: 1, Cmd: []byte{byte(i)}})
	}
	w.truncateFrom(3)
	w.appendEntry(Entry{Index: 3, Term: 2, Cmd: []byte("new")})
	w.sync()
	w.Close()
	_, st, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.log) != 3 {
		t.Fatalf("log len %d, want 3", len(st.log))
	}
	if st.log[2].Term != 2 || string(st.log[2].Cmd) != "new" {
		t.Fatalf("overwritten entry = %+v", st.log[2])
	}
}
