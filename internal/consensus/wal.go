package consensus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The WAL is the node's durability: current term + vote and the log
// itself survive a crash, which is what makes a granted vote binding
// and a committed entry permanent. The format is a flat sequence of
// length-prefixed, CRC-checked records:
//
//	[u32 len][u32 crc32(payload)][payload]
//
// payload = [u8 kind] + kind-specific fixed-width fields. Three kinds:
// meta (term, votedFor — rewritten on every term/vote change), entry
// (index, term, cmd — appended as the log grows), truncate (index —
// entries >= index are discarded, the conflict-overwrite path). Replay
// folds the sequence back into (term, vote, log); a torn tail (short or
// CRC-failing final record, the artifact of dying mid-write) is
// tolerated by stopping replay there. There is no compaction: the FSM
// is a placement table whose writes are operator-rare (migrations,
// failovers), so the file stays tiny for the lifetime of a deployment.
type wal struct {
	f *os.File
}

const (
	walKindMeta  = 1
	walKindEntry = 2
	walKindTrunc = 3
)

// walState is what replay recovers.
type walState struct {
	term uint64
	vote string
	log  []Entry
}

// openWAL opens (creating if absent) and replays the WAL at path.
func openWAL(path string) (*wal, walState, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, walState{}, fmt.Errorf("consensus: open wal: %w", err)
	}
	st, goodEnd, err := replayWAL(f)
	if err != nil {
		f.Close()
		return nil, walState{}, err
	}
	// Drop a torn tail so new records append onto a clean boundary.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, walState{}, fmt.Errorf("consensus: trim wal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, walState{}, err
	}
	return &wal{f: f}, st, nil
}

// replayWAL scans records from the start, returning the recovered state
// and the offset of the last intact record boundary.
func replayWAL(f *os.File) (walState, int64, error) {
	var st walState
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return st, 0, err
	}
	var off int64
	hdr := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return st, off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > 1<<26 {
			return st, off, nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return st, off, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return st, off, nil
		}
		if err := applyWALRecord(&st, payload); err != nil {
			return st, off, err
		}
		off += int64(8 + n)
	}
}

// applyWALRecord folds one intact payload into the replay state.
func applyWALRecord(st *walState, p []byte) error {
	if len(p) < 1 {
		return errors.New("consensus: empty wal record")
	}
	switch p[0] {
	case walKindMeta:
		if len(p) < 11 {
			return errors.New("consensus: short meta record")
		}
		st.term = binary.LittleEndian.Uint64(p[1:9])
		vl := int(binary.LittleEndian.Uint16(p[9:11]))
		if len(p) < 11+vl {
			return errors.New("consensus: short meta vote")
		}
		st.vote = string(p[11 : 11+vl])
	case walKindEntry:
		if len(p) < 21 {
			return errors.New("consensus: short entry record")
		}
		e := Entry{
			Index: binary.LittleEndian.Uint64(p[1:9]),
			Term:  binary.LittleEndian.Uint64(p[9:17]),
		}
		cl := int(binary.LittleEndian.Uint32(p[17:21]))
		if len(p) < 21+cl {
			return errors.New("consensus: short entry cmd")
		}
		if cl > 0 {
			e.Cmd = append([]byte(nil), p[21:21+cl]...)
		}
		// Self-healing append: an entry at an existing index implies the
		// suffix from there was overwritten (normally preceded by a
		// truncate record, but robust without one).
		for len(st.log) > 0 && st.log[len(st.log)-1].Index >= e.Index {
			st.log = st.log[:len(st.log)-1]
		}
		st.log = append(st.log, e)
	case walKindTrunc:
		if len(p) < 9 {
			return errors.New("consensus: short truncate record")
		}
		from := binary.LittleEndian.Uint64(p[1:9])
		for len(st.log) > 0 && st.log[len(st.log)-1].Index >= from {
			st.log = st.log[:len(st.log)-1]
		}
	default:
		return fmt.Errorf("consensus: unknown wal record kind %d", p[0])
	}
	return nil
}

// writeRecord appends one framed record (no fsync; callers batch then
// sync once).
func (w *wal) writeRecord(payload []byte) error {
	if w == nil {
		return nil
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr); err != nil {
		return err
	}
	_, err := w.f.Write(payload)
	return err
}

// saveMeta records the current term and vote.
func (w *wal) saveMeta(term uint64, vote string) error {
	p := make([]byte, 11+len(vote))
	p[0] = walKindMeta
	binary.LittleEndian.PutUint64(p[1:9], term)
	binary.LittleEndian.PutUint16(p[9:11], uint16(len(vote)))
	copy(p[11:], vote)
	return w.writeRecord(p)
}

// appendEntry records one log entry.
func (w *wal) appendEntry(e Entry) error {
	p := make([]byte, 21+len(e.Cmd))
	p[0] = walKindEntry
	binary.LittleEndian.PutUint64(p[1:9], e.Index)
	binary.LittleEndian.PutUint64(p[9:17], e.Term)
	binary.LittleEndian.PutUint32(p[17:21], uint32(len(e.Cmd)))
	copy(p[21:], e.Cmd)
	return w.writeRecord(p)
}

// truncateFrom records that entries with Index >= from are discarded.
func (w *wal) truncateFrom(from uint64) error {
	p := make([]byte, 9)
	p[0] = walKindTrunc
	binary.LittleEndian.PutUint64(p[1:9], from)
	return w.writeRecord(p)
}

// sync flushes to stable storage — the point a vote or entry becomes
// binding.
func (w *wal) sync() error {
	if w == nil {
		return nil
	}
	return w.f.Sync()
}

// Close releases the file.
func (w *wal) Close() error {
	if w == nil {
		return nil
	}
	return w.f.Close()
}
