package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	for _, name := range []string{"uniform", "weighted", "topk", ""} {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if name != "" && s.Name() != name {
			t.Fatalf("Name()=%q want %q", s.Name(), name)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func checkValid(t *testing.T, idx []int, n, k int) {
	t.Helper()
	want := k
	if n < k {
		want = n
	}
	if len(idx) != want {
		t.Fatalf("got %d indices want %d", len(idx), want)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= n {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestStrategiesReturnValidSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	weights := make([]float64, 50)
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
	}
	for _, s := range []Strategy{Uniform{}, Weighted{}, TopK{}} {
		for _, k := range []int{0, 1, 10, 50, 100} {
			idx := s.Sample(rng, 50, weights, k)
			checkValid(t, idx, 50, k)
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 10)
	for trial := 0; trial < 5000; trial++ {
		for _, i := range (Uniform{}).Sample(rng, 10, nil, 3) {
			counts[i]++
		}
	}
	// Each index expected 1500 times.
	for i, c := range counts {
		if c < 1200 || c > 1800 {
			t.Fatalf("index %d chosen %d times, expected ~1500", i, c)
		}
	}
}

func TestWeightedPrefersHeavyEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := []float64{100, 1, 1, 1, 1}
	hits := 0
	for trial := 0; trial < 1000; trial++ {
		for _, i := range (Weighted{}).Sample(rng, 5, weights, 1) {
			if i == 0 {
				hits++
			}
		}
	}
	if hits < 900 {
		t.Fatalf("heavy edge chosen only %d/1000 times", hits)
	}
}

func TestTopKDeterministic(t *testing.T) {
	weights := []float64{1, 9, 3, 7, 5}
	a := (TopK{}).Sample(nil, 5, weights, 2)
	b := (TopK{}).Sample(nil, 5, weights, 2)
	if len(a) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("TopK nondeterministic: %v vs %v", a, b)
	}
	want := map[int]bool{1: true, 3: true}
	for _, i := range a {
		if !want[i] {
			t.Fatalf("TopK picked %v, want {1,3}", a)
		}
	}
}

func TestNodeRNGDeterministicAndDistinct(t *testing.T) {
	a := NodeRNG(7, 100, 1).Int63()
	b := NodeRNG(7, 100, 1).Int63()
	if a != b {
		t.Fatal("NodeRNG not deterministic")
	}
	c := NodeRNG(7, 100, 2).Int63()
	d := NodeRNG(7, 101, 1).Int63()
	e := NodeRNG(8, 100, 1).Int63()
	if a == c || a == d || a == e {
		t.Fatal("NodeRNG collisions across (seed,node,round)")
	}
}

func TestReservoirUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 20)
	for trial := 0; trial < 3000; trial++ {
		r := NewReservoir(5, rng)
		for i := 0; i < 20; i++ {
			r.Offer([]byte{byte(i)})
		}
		if r.Seen() != 20 || len(r.Items) != 5 {
			t.Fatalf("seen=%d len=%d", r.Seen(), len(r.Items))
		}
		for _, it := range r.Items {
			counts[it[0]]++
		}
	}
	// Each item expected 750 times.
	for i, c := range counts {
		if c < 580 || c > 920 {
			t.Fatalf("item %d kept %d times, expected ~750", i, c)
		}
	}
}

// Property: all strategies return valid subsets for random shapes.
func TestStrategySubsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		k := rng.Intn(35)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() + 0.001
		}
		for _, s := range []Strategy{Uniform{}, Weighted{}, TopK{}} {
			idx := s.Sample(rng, n, w, k)
			want := k
			if n < k {
				want = n
			}
			if len(idx) != want {
				return false
			}
			seen := map[int]bool{}
			for _, i := range idx {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
