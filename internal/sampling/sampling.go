// Package sampling is AGL's neighbor-sampling framework (paper §3.2.2): a
// set of strategies that bound the in-degree of k-hop neighborhoods so hub
// nodes neither skew reducer load nor blow up memory. The same strategy,
// seeded deterministically per (node, round), runs in GraphFlat and
// GraphInfer so inference stays consistent with the data the model was
// trained on.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"
)

// Strategy selects at most k of n candidate neighbors.
type Strategy interface {
	// Name identifies the strategy in CLIs and serialized configs.
	Name() string
	// Sample returns the chosen candidate indices (any order, no
	// duplicates). weights[i] is candidate i's edge weight; strategies that
	// ignore weights accept nil.
	Sample(rng *rand.Rand, n int, weights []float64, k int) []int
}

// Uniform samples k candidates uniformly without replacement.
type Uniform struct{}

// Name implements Strategy.
func (Uniform) Name() string { return "uniform" }

// Sample implements Strategy via a partial Fisher–Yates shuffle.
func (Uniform) Sample(rng *rand.Rand, n int, _ []float64, k int) []int {
	if k >= n {
		return all(n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Weighted samples k candidates without replacement with probability
// proportional to edge weight, using the exponential-clock method
// (Efraimidis–Spirakis): key_i = weight_i / Exp(1); take the k largest.
type Weighted struct{}

// Name implements Strategy.
func (Weighted) Name() string { return "weighted" }

// Sample implements Strategy.
func (Weighted) Sample(rng *rand.Rand, n int, weights []float64, k int) []int {
	if k >= n {
		return all(n)
	}
	type kv struct {
		key float64
		idx int
	}
	keys := make([]kv, n)
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w <= 0 {
				w = 1e-12
			}
		}
		keys[i] = kv{key: w / rng.ExpFloat64(), idx: i}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key > keys[j].key })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].idx
	}
	return out
}

// TopK deterministically keeps the k heaviest edges (ties broken by index),
// a common industrial strategy for weighted interaction graphs.
type TopK struct{}

// Name implements Strategy.
func (TopK) Name() string { return "topk" }

// Sample implements Strategy.
func (TopK) Sample(_ *rand.Rand, n int, weights []float64, k int) []int {
	if k >= n {
		return all(n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		wa, wb := 1.0, 1.0
		if weights != nil {
			wa, wb = weights[idx[a]], weights[idx[b]]
		}
		return wa > wb
	})
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}

func all(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Parse returns the strategy named s.
func Parse(s string) (Strategy, error) {
	switch s {
	case "uniform", "":
		return Uniform{}, nil
	case "weighted":
		return Weighted{}, nil
	case "topk":
		return TopK{}, nil
	}
	return nil, fmt.Errorf("sampling: unknown strategy %q", s)
}

// NodeRNG derives a deterministic RNG for one (node, round) pair from a
// pipeline seed, so GraphFlat and GraphInfer make identical sampling
// decisions — the property the paper relies on for unbiased inference.
func NodeRNG(seed, nodeID int64, round int) *rand.Rand {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	h ^= uint64(nodeID) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	h ^= uint64(round+1)*0xBF58476D1CE4E5B9 + (h << 13)
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}

// Reservoir maintains a uniform sample of size k over a stream.
type Reservoir struct {
	K     int
	Items [][]byte
	seen  int
	rng   *rand.Rand
}

// NewReservoir builds a reservoir sampler of capacity k.
func NewReservoir(k int, rng *rand.Rand) *Reservoir {
	return &Reservoir{K: k, rng: rng}
}

// Offer presents one stream item.
func (r *Reservoir) Offer(item []byte) {
	r.seen++
	if len(r.Items) < r.K {
		r.Items = append(r.Items, item)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.K {
		r.Items[j] = item
	}
}

// Seen reports how many items were offered.
func (r *Reservoir) Seen() int { return r.seen }
