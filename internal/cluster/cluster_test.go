package cluster

import (
	"math"
	"testing"
	"time"
)

func TestCostConversions(t *testing.T) {
	if CPUCoreMin(2*time.Minute) != 2 {
		t.Fatal("CPUCoreMin")
	}
	if got := MemGBMin(2e9, time.Minute); math.Abs(got-2) > 1e-9 {
		t.Fatalf("MemGBMin=%v", got)
	}
	c := JobCosts(time.Minute, 3*time.Minute, 1e9)
	if c.CPUCoreMin != 3 || math.Abs(c.MemGBMin-1) > 1e-9 {
		t.Fatalf("JobCosts: %+v", c)
	}
}

func TestSpeedupMonotonicAndSubLinear(t *testing.T) {
	m := SpeedupModel{
		BatchCompute:        10 * time.Millisecond,
		PullPush:            2500 * time.Microsecond,
		ContentionPerWorker: 5 * time.Microsecond,
	}
	batches := 10000
	prev := 0.0
	for _, n := range []int{1, 2, 5, 10, 50, 100} {
		s := m.Speedup(batches, n)
		if s < prev {
			t.Fatalf("speedup not monotone at %d workers: %v < %v", n, s, prev)
		}
		if float64(n) > 1 && s >= float64(n) {
			t.Fatalf("superlinear speedup at %d workers: %v", n, s)
		}
		prev = s
	}
}

func TestSpeedupSlopeNearPaper(t *testing.T) {
	// With PS cost = 25% of batch compute, the efficiency plateau sits at
	// ~0.8 — the paper's slope.
	m := SpeedupModel{
		BatchCompute:        10 * time.Millisecond,
		PullPush:            2500 * time.Microsecond,
		ContentionPerWorker: 2 * time.Microsecond,
	}
	s := m.Speedup(100000, 100)
	slope := s / 100
	if slope < 0.7 || slope > 0.9 {
		t.Fatalf("slope %v outside [0.7, 0.9]", slope)
	}
}

func TestSingleWorkerBaselineHasNoComm(t *testing.T) {
	m := SpeedupModel{BatchCompute: time.Millisecond, PullPush: time.Millisecond}
	if got := m.EpochTime(100, 1); got != 100*time.Millisecond {
		t.Fatalf("T(1)=%v want 100ms", got)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	m := SpeedupModel{BatchCompute: time.Millisecond, Jitter: 0.1, Seed: 7}
	a := m.EpochTime(100, 4)
	b := m.EpochTime(100, 4)
	if a != b {
		t.Fatal("jitter not deterministic")
	}
	m2 := m
	m2.Seed = 8
	if m2.EpochTime(100, 4) == a {
		t.Log("warning: identical jitter across seeds (unlikely)")
	}
}

func TestDerivePullPush(t *testing.T) {
	// 1 MB both ways at 100 MB/s = 20 ms + 2 rtt.
	got := DerivePullPush(1e6, 100e6, time.Millisecond)
	want := 22 * time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("DerivePullPush=%v want ~%v", got, want)
	}
	if DerivePullPush(1e6, 0, 0) != 0 {
		t.Fatal("zero bandwidth should be 0")
	}
}
