// Package cluster models the production CPU cluster the paper deploys on
// (1000+ machines, 32-core/64GB workers): it converts measured in-process
// task accounting into the cluster-level cost units of Table 5 (CPU
// core·min, memory GB·min) and extrapolates multi-worker training speedup
// beyond the host's core count for Figure 8.
//
// The speedup model encodes the paper's own explanation of its ~0.8 slope:
// every mini-batch pays a fixed parameter-server pull+push overhead on top
// of its compute, so efficiency is roughly constant at
// compute/(compute+comm), with a mild additional contention term that
// grows with the worker count and perturbs the slope (the "different tasks
// on the same physical machine" noise the paper reports).
package cluster

import (
	"math/rand"
	"time"
)

// Costs are Table-5 style resource totals.
type Costs struct {
	Wall       time.Duration
	CPUCoreMin float64
	MemGBMin   float64
}

// CPUCoreMin converts summed busy time into core·minutes.
func CPUCoreMin(busy time.Duration) float64 {
	return busy.Minutes()
}

// MemGBMin integrates a resident-set size over a duration into GB·minutes.
func MemGBMin(bytes int64, d time.Duration) float64 {
	return float64(bytes) / 1e9 * d.Minutes()
}

// JobCosts folds a job's wall time, summed busy time and peak working-set
// estimate into Costs.
func JobCosts(wall, busy time.Duration, peakBytes int64) Costs {
	return Costs{
		Wall:       wall,
		CPUCoreMin: CPUCoreMin(busy),
		MemGBMin:   MemGBMin(peakBytes, wall),
	}
}

// SpeedupModel predicts training speedup versus worker count.
type SpeedupModel struct {
	// BatchCompute is the measured pure model-compute time of one
	// mini-batch on one worker.
	BatchCompute time.Duration
	// PullPush is the per-batch parameter-server communication cost
	// (weights down + gradients up). The default used by the experiment
	// harness derives it from the model's parameter byte count and the
	// cluster NIC bandwidth; the paper's setting lands near 25% of batch
	// compute.
	PullPush time.Duration
	// ContentionPerWorker adds PS-side serialization cost that grows
	// linearly with the number of concurrent workers.
	ContentionPerWorker time.Duration
	// Jitter is the relative standard deviation of straggler noise
	// (multiplicative, applied per configuration); 0 disables.
	Jitter float64
	// Seed drives the jitter.
	Seed int64
}

// EpochTime predicts the wall time of one epoch of b batches on n workers.
// The single-worker baseline (n=1) is standalone-style: batches run
// back-to-back with no PS round trips, matching how the paper normalizes
// its speedup curve.
func (m SpeedupModel) EpochTime(batches, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	perWorker := (batches + workers - 1) / workers
	batchCost := m.BatchCompute
	if workers > 1 {
		batchCost += m.PullPush + time.Duration(workers)*m.ContentionPerWorker
	}
	t := time.Duration(perWorker) * batchCost
	if m.Jitter > 0 {
		rng := rand.New(rand.NewSource(m.Seed + int64(workers)))
		f := 1 + m.Jitter*rng.NormFloat64()
		if f < 0.5 {
			f = 0.5
		}
		t = time.Duration(float64(t) * f)
	}
	return t
}

// Speedup predicts T(1)/T(n) for an epoch of b batches.
func (m SpeedupModel) Speedup(batches, workers int) float64 {
	t1 := m.EpochTime(batches, 1)
	tn := m.EpochTime(batches, workers)
	if tn <= 0 {
		return 0
	}
	return float64(t1) / float64(tn)
}

// DerivePullPush estimates per-batch PS communication from the model size
// and effective per-worker bandwidth: a pull of all weights plus a push of
// all gradients.
func DerivePullPush(paramBytes int64, bandwidthBytesPerSec float64, rtt time.Duration) time.Duration {
	if bandwidthBytesPerSec <= 0 {
		return 0
	}
	transfer := time.Duration(float64(2*paramBytes) / bandwidthBytesPerSec * float64(time.Second))
	return transfer + 2*rtt
}
