package placement

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestEvenTotalFunction: the boot table owns every slot exactly once and
// spreads them within one slot across replicas.
func TestEvenTotalFunction(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		reps := make([]string, n)
		for i := range reps {
			reps[i] = fmt.Sprintf("127.0.0.1:%d", 7000+i)
		}
		tab, err := Even(reps, 0)
		if err != nil {
			t.Fatalf("Even(%d replicas): %v", n, err)
		}
		if tab.Slots() != DefaultSlots {
			t.Fatalf("slots = %d, want %d", tab.Slots(), DefaultSlots)
		}
		if tab.Epoch != 1 {
			t.Fatalf("boot epoch = %d, want 1", tab.Epoch)
		}
		counts := make([]int, n)
		for s := 0; s < tab.Slots(); s++ {
			o := tab.Owner(s)
			if o < 0 || o >= n {
				t.Fatalf("slot %d owner %d out of range", s, o)
			}
			counts[o]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("uneven boot placement: counts %v", counts)
		}
	}
}

// TestOwnershipTotalAtEveryEpoch walks a long random chain of WithOwner
// derivations and checks that at every epoch, ownership stays a validated
// total function, the epoch is strictly monotone, and predecessors are
// untouched (immutability).
func TestOwnershipTotalAtEveryEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab, err := Even([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 500; step++ {
		prev := tab.Clone()
		next, err := tab.WithOwner(rng.Intn(tab.Slots()), rng.Intn(len(tab.Replicas)))
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := next.Validate(); err != nil {
			t.Fatalf("step %d: derived table invalid: %v", step, err)
		}
		if next.Epoch != tab.Epoch+1 {
			t.Fatalf("step %d: epoch %d after %d, want +1", step, next.Epoch, tab.Epoch)
		}
		// The receiver must be untouched by the derivation.
		if tab.Epoch != prev.Epoch || !bytes.Equal(int32sToBytes(tab.Owners), int32sToBytes(prev.Owners)) {
			t.Fatalf("step %d: WithOwner mutated its receiver", step)
		}
		// Every id routes to the single owner of its slot.
		for i := 0; i < 32; i++ {
			id := rng.Int63()
			if next.OwnerOf(id) != next.Owner(SlotOf(id, next.Slots())) {
				t.Fatalf("step %d: OwnerOf disagrees with Owner(SlotOf)", step)
			}
		}
		tab = next
	}
}

func int32sToBytes(xs []int32) []byte {
	b := make([]byte, 0, len(xs))
	for _, x := range xs {
		b = append(b, byte(x))
	}
	return b
}

// TestSlotsOfPartition: SlotsOf over all replicas partitions the slot space.
func TestSlotsOfPartition(t *testing.T) {
	tab, err := Even([]string{"a", "b", "c"}, 97)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for r := range tab.Replicas {
		for _, s := range tab.SlotsOf(r) {
			if seen[s] {
				t.Fatalf("slot %d listed for two replicas", s)
			}
			seen[s] = true
			if tab.Owner(s) != r {
				t.Fatalf("SlotsOf(%d) contains slot %d owned by %d", r, s, tab.Owner(s))
			}
		}
	}
	if len(seen) != tab.Slots() {
		t.Fatalf("SlotsOf covers %d slots, want %d", len(seen), tab.Slots())
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	cases := []*Table{
		nil,
		{Epoch: 1, Replicas: nil, Owners: []int32{0}},
		{Epoch: 1, Replicas: []string{"a"}, Owners: nil},
		{Epoch: 0, Replicas: []string{"a"}, Owners: []int32{0}},
		{Epoch: 1, Replicas: []string{"a"}, Owners: []int32{1}},
		{Epoch: 1, Replicas: []string{"a"}, Owners: []int32{-1}},
	}
	for i, tab := range cases {
		if err := tab.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted an invalid table", i)
		}
	}
}

func TestWithOwnerRange(t *testing.T) {
	tab, err := Even([]string{"a", "b"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.WithOwner(-1, 0); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := tab.WithOwner(16, 0); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := tab.WithOwner(0, 2); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
}

// TestSerializationRoundTrip: WriteTo/Read and WriteFile/ReadFile preserve
// the table exactly.
func TestSerializationRoundTrip(t *testing.T) {
	tab, err := Even([]string{"127.0.0.1:7101", "127.0.0.1:7102"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	tab, err = tab.WithOwner(5, 1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, tab, got)

	path := filepath.Join(t.TempDir(), "placement.json")
	if err := tab.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, tab, got)
	// The staged temp file must not linger.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale temp file after WriteFile: %v", err)
	}
}

func assertTablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if got.Epoch != want.Epoch || len(got.Owners) != len(want.Owners) || len(got.Replicas) != len(want.Replicas) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", want, got)
	}
	for i := range want.Owners {
		if got.Owners[i] != want.Owners[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, got.Owners[i], want.Owners[i])
		}
	}
	for i := range want.Replicas {
		if got.Replicas[i] != want.Replicas[i] {
			t.Fatalf("replica[%d] = %q, want %q", i, got.Replicas[i], want.Replicas[i])
		}
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte(`{"epoch":0,"replicas":["a"],"owners":[0]}`))); err == nil {
		t.Fatal("Read accepted epoch-0 table")
	}
	if _, err := Read(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("Read accepted garbage")
	}
}

// TestEpochErrorTyping: EpochError is retryable, unwraps to the sentinel,
// and survives the string flattening of an RPC boundary.
func TestEpochErrorTyping(t *testing.T) {
	orig := &EpochError{Have: 7, Got: 3}
	if !errors.Is(orig, ErrStaleEpoch) {
		t.Fatal("EpochError does not unwrap to ErrStaleEpoch")
	}
	if !orig.Retryable() {
		t.Fatal("EpochError not retryable")
	}

	// Simulate net/rpc: the encoded error crosses the wire as a bare string.
	wire := errors.New(EncodeError(orig).Error())
	back := DecodeError(wire)
	var ee *EpochError
	if !errors.As(back, &ee) {
		t.Fatalf("DecodeError returned %T, want *EpochError", back)
	}
	if ee.Have != 7 || ee.Got != 3 {
		t.Fatalf("decoded epochs = (%d,%d), want (7,3)", ee.Have, ee.Got)
	}
	if !errors.Is(back, ErrStaleEpoch) {
		t.Fatal("decoded error does not unwrap to sentinel")
	}

	// Non-epoch errors pass through both directions unchanged.
	plain := errors.New("boom")
	if EncodeError(plain) != plain {
		t.Fatal("EncodeError rewrote an unrelated error")
	}
	if DecodeError(plain) != plain {
		t.Fatal("DecodeError rewrote an unrelated error")
	}
	if DecodeError(nil) != nil {
		t.Fatal("DecodeError(nil) != nil")
	}
	// Malformed payloads after the prefix fall back to pass-through.
	mangled := errors.New(epochErrPrefix + "xyz")
	if DecodeError(mangled) != mangled {
		t.Fatal("DecodeError accepted a mangled payload")
	}
}

// TestSlotOfStability pins the hash: routing depends on every participant
// computing identical slots, so a change here is a wire-format break.
func TestSlotOfStability(t *testing.T) {
	pins := map[int64]int{
		0:     0,
		1:     SlotOf(1, 256),
		12345: SlotOf(12345, 256),
	}
	for id, want := range pins {
		if got := SlotOf(id, 256); got != want {
			t.Fatalf("SlotOf(%d) changed: %d != %d", id, got, want)
		}
		if got := SlotOf(id, 256); got < 0 || got >= 256 {
			t.Fatalf("SlotOf(%d) = %d out of range", id, got)
		}
	}
	// Distribution sanity: sequential ids should not pile into few slots.
	counts := make(map[int]int)
	for id := int64(0); id < 4096; id++ {
		counts[SlotOf(id, 256)]++
	}
	for s, c := range counts {
		if c > 64 { // perfectly even would be 16
			t.Fatalf("slot %d got %d of 4096 sequential ids — hash badly skewed", s, c)
		}
	}
}
