// Package placement is the cluster's slot-ownership layer: node ids hash
// into a fixed number of slots, and a versioned Table maps every slot to
// the replica that owns its embedding-store rows and serves its requests.
//
// The table is a total function at every epoch — every slot has exactly
// one owner — and every membership or migration change produces a NEW
// table with the epoch bumped. Routers and replicas fence on the epoch:
// an internal request stamped with a different epoch than the callee's is
// rejected with a typed, retryable *EpochError, and the caller refetches
// the table and re-routes. That fence is what makes a live slot migration
// safe: the moment the new table lands on the destination, requests routed
// under the old table bounce instead of being answered from moved state.
//
// This PR ships the static/file-based variant of the table (seeded evenly
// over the boot-time peer list, mutated only by the migration protocol in
// internal/serve); a consensus-backed table that survives coordinator
// failure is the ROADMAP follow-on.
package placement

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// DefaultSlots is the slot count used when a configuration passes 0. 256
// slots over single-digit replica counts keeps migration granularity fine
// (one slot moves ~0.4% of the keyspace) while the table stays one cache
// line of owners.
const DefaultSlots = 256

// SlotOf maps a node id to its hash slot via Fibonacci hashing — cheap,
// and well-mixed even for the sequential ids synthetic datasets produce.
// Every router and replica must agree on this function.
func SlotOf(id int64, slots int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(slots))
}

// ErrStaleEpoch is the sentinel wrapped by every *EpochError; callers can
// errors.Is(err, ErrStaleEpoch) without caring about the epoch pair.
var ErrStaleEpoch = errors.New("placement: stale epoch")

// EpochError reports an epoch fence rejection: a request stamped with
// epoch Got reached a participant at epoch Have. It is retryable by
// construction — refetch the table (the side with the higher epoch has
// it) and re-route.
type EpochError struct {
	Have uint64 // the rejecting participant's epoch
	Got  uint64 // the epoch stamped on the request
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("placement: stale epoch (request %d, table %d)", e.Got, e.Have)
}

func (e *EpochError) Unwrap() error { return ErrStaleEpoch }

// Retryable marks the error as safe to retry after refreshing the table.
func (e *EpochError) Retryable() bool { return true }

// epochErrPrefix is the wire form of an EpochError carried across an RPC
// boundary, where typed errors flatten to strings. EncodeError/DecodeError
// round-trip it.
const epochErrPrefix = "placement/stale-epoch:"

// EncodeError flattens an *EpochError into a string form that survives
// net/rpc's error transport; other errors pass through unchanged.
func EncodeError(err error) error {
	var ee *EpochError
	if errors.As(err, &ee) {
		return fmt.Errorf("%s%d:%d", epochErrPrefix, ee.Have, ee.Got)
	}
	return err
}

// DecodeError re-types an error that crossed an RPC boundary: strings
// produced by EncodeError become *EpochError again, everything else is
// returned unchanged.
func DecodeError(err error) error {
	if err == nil {
		return nil
	}
	s := err.Error()
	i := strings.Index(s, epochErrPrefix)
	if i < 0 {
		return err
	}
	var have, got uint64
	if _, serr := fmt.Sscanf(s[i+len(epochErrPrefix):], "%d:%d", &have, &got); serr != nil {
		return err
	}
	return &EpochError{Have: have, Got: got}
}

// Table is one immutable epoch of the slot-ownership map. Mutate by
// deriving a successor with WithOwner (epoch bumps); never in place.
type Table struct {
	// Epoch versions the table; every derived table increments it.
	Epoch uint64 `json:"epoch"`
	// Replicas lists the cluster's internal RPC addresses; a slot owner is
	// an index into this list.
	Replicas []string `json:"replicas"`
	// Owners maps slot -> replica index; len(Owners) is the slot count.
	Owners []int32 `json:"owners"`
}

// Even builds the boot-time table: slots dealt round-robin over the
// replicas, epoch 1. slots <= 0 selects DefaultSlots.
func Even(replicas []string, slots int) (*Table, error) {
	if slots <= 0 {
		slots = DefaultSlots
	}
	t := &Table{Epoch: 1, Replicas: append([]string(nil), replicas...), Owners: make([]int32, slots)}
	for s := range t.Owners {
		t.Owners[s] = int32(s % max(len(replicas), 1))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate rejects tables under which ownership is not a total function:
// no replicas, no slots, or any slot owned by an out-of-range replica.
func (t *Table) Validate() error {
	if t == nil {
		return errors.New("placement: nil table")
	}
	if len(t.Replicas) == 0 {
		return errors.New("placement: table has no replicas")
	}
	if len(t.Owners) == 0 {
		return errors.New("placement: table has no slots")
	}
	if t.Epoch == 0 {
		return errors.New("placement: table epoch 0 (tables start at 1)")
	}
	for s, r := range t.Owners {
		if r < 0 || int(r) >= len(t.Replicas) {
			return fmt.Errorf("placement: slot %d owned by replica %d, want [0,%d)",
				s, r, len(t.Replicas))
		}
	}
	return nil
}

// Slots returns the slot count.
func (t *Table) Slots() int { return len(t.Owners) }

// Owner returns the replica index owning slot.
func (t *Table) Owner(slot int) int { return int(t.Owners[slot]) }

// OwnerOf returns the replica index owning id's slot.
func (t *Table) OwnerOf(id int64) int { return int(t.Owners[SlotOf(id, len(t.Owners))]) }

// Owns reports whether replica owns id's slot under this table.
func (t *Table) Owns(replica int, id int64) bool { return t.OwnerOf(id) == replica }

// SlotsOf returns the slots owned by replica, ascending.
func (t *Table) SlotsOf(replica int) []int {
	var out []int
	for s, r := range t.Owners {
		if int(r) == replica {
			out = append(out, s)
		}
	}
	return out
}

// Clone returns a deep copy of the table at the same epoch.
func (t *Table) Clone() *Table {
	return &Table{
		Epoch:    t.Epoch,
		Replicas: append([]string(nil), t.Replicas...),
		Owners:   append([]int32(nil), t.Owners...),
	}
}

// WithOwner derives the successor table in which slot is owned by replica:
// a deep copy with the epoch incremented. The receiver is unchanged.
func (t *Table) WithOwner(slot, replica int) (*Table, error) {
	if slot < 0 || slot >= len(t.Owners) {
		return nil, fmt.Errorf("placement: slot %d out of range [0,%d)", slot, len(t.Owners))
	}
	if replica < 0 || replica >= len(t.Replicas) {
		return nil, fmt.Errorf("placement: replica %d out of range [0,%d)", replica, len(t.Replicas))
	}
	nt := t.Clone()
	nt.Epoch++
	nt.Owners[slot] = int32(replica)
	return nt, nil
}

// WriteTo serializes the table as JSON (the on-disk and HTTP wire form).
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(append(b, '\n'))
	return int64(n), err
}

// Read deserializes and validates a table written by WriteTo.
func Read(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("placement: decode table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// WriteFile persists the table to path (staged write + rename, so a
// concurrent reader never sees a torn table).
func (t *Table) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads and validates a table persisted with WriteFile.
func ReadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
