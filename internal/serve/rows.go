package serve

import (
	"context"
	"fmt"
)

// This file is the Server's row-level surface for the cluster layer
// (replica.go): embedding extraction for cross-shard scatter-gather, and
// the bulk row snapshot/install/drop primitives the slot-migration
// protocol is built from. Rows move through this surface in their native
// codec (Row), so a quantized store migrates and scatter-gathers packed
// int8 payloads without round-tripping through float64. None of it is
// needed (or reached) in single-process serving.

// EmbedRow returns node's layer-K embedding in its stored codec — the
// scatter half of cross-shard link scoring. Warm rows return immediately
// (cloned, caller-owned); everything else resolves through the same
// micro-batched single-flight cold pipeline as Score (admission control
// and deadlines included) and comes back full-precision.
func (s *Server) EmbedRow(ctx context.Context, node int64) (Row, error) {
	row, c, err := s.embedStart(ctx, node)
	if err != nil {
		return Row{}, err
	}
	if c != nil {
		emb, err := s.waitEmb(ctx, c)
		if err != nil {
			return Row{}, err
		}
		// c.emb is shared with every other waiter on the call; copy.
		return F64Row(append([]float64(nil), emb...)), nil
	}
	// embedStart's warm path returns a view into store memory; clone so
	// the result survives the store (and any RPC serialization happening
	// off this goroutine).
	return row.Clone(), nil
}

// Embed returns node's layer-K embedding decoded to float64s the caller
// owns. Prefer EmbedRow where the codec should survive (wire transfer,
// quantized link scoring); Embed is the decode-at-the-edge form.
func (s *Server) Embed(ctx context.Context, node int64) ([]float64, error) {
	row, err := s.EmbedRow(ctx, node)
	if err != nil {
		return nil, err
	}
	return row.Floats(nil), nil
}

// RowsInSlot snapshots every clean warm row whose id falls in the given
// hash slot — the migration payload, in each row's native codec. Dirty
// rows are deliberately excluded: they carry no servable value, and the
// destination recomputes them cold exactly as this replica would have.
// Rows are deep copies.
func (s *Server) RowsInSlot(slot, slots int, slotOf func(id int64, slots int) int) map[int64]Row {
	out := make(map[int64]Row)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Range(func(id int64, row Row) bool {
		if slotOf(id, slots) != slot {
			return true
		}
		if _, d := s.dirty[id]; d {
			return true
		}
		if ov, ok := s.overlay[id]; ok {
			row = ov // re-admitted row shadows the store
		}
		out[id] = row.Clone()
		return true
	})
	// Overlay rows with no base store row (installed by a previous
	// migration, or re-admitted after the base store was built without
	// them).
	for id, ov := range s.overlay {
		if slotOf(id, slots) != slot {
			continue
		}
		if _, d := s.dirty[id]; d {
			continue
		}
		if _, seen := out[id]; !seen {
			out[id] = ov.Clone()
		}
	}
	return out
}

// FloatRows wraps a float64 row map as CodecF64 Rows (referencing the
// slices, not copying) — the adapter for callers holding raw GraphInfer
// embeddings.
func FloatRows(rows map[int64][]float64) map[int64]Row {
	out := make(map[int64]Row, len(rows))
	for id, emb := range rows {
		out[id] = F64Row(emb)
	}
	return out
}

// InstallRows admits migrated rows into the warm tier (the overlay, which
// shadows the base store), preserving each row's codec. A row this replica
// has already marked dirty is NOT resurrected: the dirty flag records a
// mutation the incoming snapshot may predate, and a cold recompute is
// always correct while a stale warm row never is.
func (s *Server) InstallRows(rows map[int64]Row) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, row := range rows {
		if _, d := s.dirty[id]; d {
			continue
		}
		s.overlay[id] = row.Clone()
		n++
	}
	return n
}

// DropRows discards overlay rows, dirty flags, and cache entries for every
// id matching the predicate — the source-side cleanup after a slot
// migrates away. Base store rows cannot be deleted (the store is
// read-only) but they stay invalidation-tracked by Apply, so a stale
// router asking this replica anyway still gets a correct answer, just a
// slower one.
func (s *Server) DropRows(match func(id int64) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id := range s.overlay {
		if match(id) {
			delete(s.overlay, id)
			n++
		}
	}
	for id := range s.dirty {
		if match(id) {
			delete(s.dirty, id)
		}
	}
	for _, id := range s.cache.keys() {
		if match(id) {
			s.cache.remove(id)
		}
	}
	return n
}

// WarmRow reports whether id currently serves warm (clean store or overlay
// row) — a test and stats observable for migration.
func (s *Server) WarmRow(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.lookupRowLocked(id)
	return ok
}

// keys lists the cached ids (callers hold the server mutex).
func (l *lruCache) keys() []int64 {
	out := make([]int64, 0, len(l.m))
	for id := range l.m {
		out = append(out, id)
	}
	return out
}

// ScoreVecLink scores a link directly from two endpoint rows — the gather
// half of cross-shard link scoring, used by the cluster router once both
// rows arrive. Rows are scored in their native codecs: two quantized rows
// under a dot-product head never dequantize. The model must have an edge
// head. ctx is checked once up front (the scoring itself is a few
// arithmetic ops — too small to be interruptible).
func (s *Server) ScoreVecLink(ctx context.Context, u, v Row) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.model.Edge == nil {
		return 0, ErrNoEdgeHead
	}
	if u.Dim() != s.model.Cfg.Hidden || v.Dim() != s.model.Cfg.Hidden {
		return 0, fmt.Errorf("serve: row dim (%d,%d) does not match model hidden %d",
			u.Dim(), v.Dim(), s.model.Cfg.Hidden)
	}
	return s.scoreRows(u, v), nil
}
