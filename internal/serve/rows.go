package serve

import (
	"context"
	"fmt"
)

// This file is the Server's row-level surface for the cluster layer
// (replica.go): embedding extraction for cross-shard scatter-gather, and
// the bulk row snapshot/install/drop primitives the slot-migration
// protocol is built from. None of it is needed (or reached) in
// single-process serving.

// Embed returns node's layer-K embedding — the scatter half of cross-shard
// link scoring. Warm rows return immediately; everything else resolves
// through the same micro-batched single-flight cold pipeline as Score
// (admission control and deadlines included). The returned slice is the
// caller's to keep.
func (s *Server) Embed(ctx context.Context, node int64) ([]float64, error) {
	emb, c, err := s.embedStart(ctx, node)
	if err != nil {
		return nil, err
	}
	if c != nil {
		if emb, err = s.waitEmb(ctx, c); err != nil {
			return nil, err
		}
	}
	// embedStart's warm path returns a view into store memory; copy so the
	// result survives the store (and any RPC serialization happening off
	// this goroutine).
	return append([]float64(nil), emb...), nil
}

// RowsInSlot snapshots every clean warm row whose id falls in the given
// hash slot — the migration payload. Dirty rows are deliberately excluded:
// they carry no servable value, and the destination recomputes them cold
// exactly as this replica would have. Rows are deep copies.
func (s *Server) RowsInSlot(slot, slots int, slotOf func(id int64, slots int) int) map[int64][]float64 {
	out := make(map[int64][]float64)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Range(func(id int64, emb []float64) bool {
		if slotOf(id, slots) != slot {
			return true
		}
		if _, d := s.dirty[id]; d {
			return true
		}
		if ov, ok := s.overlay[id]; ok {
			emb = ov // re-admitted row shadows the store
		}
		out[id] = append([]float64(nil), emb...)
		return true
	})
	// Overlay rows with no base store row (installed by a previous
	// migration, or re-admitted after the base store was built without
	// them).
	for id, ov := range s.overlay {
		if slotOf(id, slots) != slot {
			continue
		}
		if _, d := s.dirty[id]; d {
			continue
		}
		if _, seen := out[id]; !seen {
			out[id] = append([]float64(nil), ov...)
		}
	}
	return out
}

// InstallRows admits migrated rows into the warm tier (the overlay, which
// shadows the base store). A row this replica has already marked dirty is
// NOT resurrected: the dirty flag records a mutation the incoming snapshot
// may predate, and a cold recompute is always correct while a stale warm
// row never is.
func (s *Server) InstallRows(rows map[int64][]float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, emb := range rows {
		if _, d := s.dirty[id]; d {
			continue
		}
		s.overlay[id] = append([]float64(nil), emb...)
		n++
	}
	return n
}

// DropRows discards overlay rows, dirty flags, and cache entries for every
// id matching the predicate — the source-side cleanup after a slot
// migrates away. Base store rows cannot be deleted (the store is
// read-only) but they stay invalidation-tracked by Apply, so a stale
// router asking this replica anyway still gets a correct answer, just a
// slower one.
func (s *Server) DropRows(match func(id int64) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id := range s.overlay {
		if match(id) {
			delete(s.overlay, id)
			n++
		}
	}
	for id := range s.dirty {
		if match(id) {
			delete(s.dirty, id)
		}
	}
	for _, id := range s.cache.keys() {
		if match(id) {
			s.cache.remove(id)
		}
	}
	return n
}

// WarmRow reports whether id currently serves warm (clean store or overlay
// row) — a test and stats observable for migration.
func (s *Server) WarmRow(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.lookupEmbLocked(id)
	return ok
}

// keys lists the cached ids (callers hold the server mutex).
func (l *lruCache) keys() []int64 {
	out := make([]int64, 0, len(l.m))
	for id := range l.m {
		out = append(out, id)
	}
	return out
}

// ScoreVecLink scores a link directly from two endpoint embeddings — the
// gather half of cross-shard link scoring, used by the cluster router once
// both embeddings arrive. The model must have an edge head.
func (s *Server) ScoreVecLink(hu, hv []float64) (float64, error) {
	if s.model.Edge == nil {
		return 0, ErrNoEdgeHead
	}
	if len(hu) != s.model.Cfg.Hidden || len(hv) != s.model.Cfg.Hidden {
		return 0, fmt.Errorf("serve: embedding dim (%d,%d) does not match model hidden %d",
			len(hu), len(hv), s.model.Cfg.Hidden)
	}
	return s.model.Edge.ScoreVec(hu, hv), nil
}
