package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"agl/internal/gnn"
	"agl/internal/graph"
)

// cloneModel deep-copies a model through its serialized form — Server owns
// its model, so reference recomputation needs a second instance.
func cloneModel(t testing.TB, m *gnn.Model) *gnn.Model {
	t.Helper()
	b, err := gnn.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := gnn.UnmarshalModel(b)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// coldRecompute scores ids from scratch on g: a fresh all-cold server
// (no store, no prior cache) over the given graph — the ground truth the
// incrementally invalidated server must match.
func coldRecompute(t testing.TB, cfg Config, m *gnn.Model, g *graph.Graph, ids []int64) map[int64][]float64 {
	t.Helper()
	ref, err := New(cfg, cloneModel(t, m), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	out := make(map[int64][]float64, len(ids))
	for _, id := range ids {
		s, err := ref.Score(context.Background(), id)
		if err != nil {
			t.Fatalf("recompute node %d: %v", id, err)
		}
		out[id] = s
	}
	return out
}

// randomMutations builds a valid batch against cur: edge adds/removes
// between existing nodes, feature updates, occasional node adds.
func randomMutations(rng *rand.Rand, cur *graph.Graph, nextID *int64, n int) []graph.Mutation {
	var muts []graph.Mutation
	removed := map[[2]int64]bool{}
	for k := 0; k < n; k++ {
		switch rng.Intn(5) {
		case 0:
			feat := make([]float64, cur.FeatureDim())
			for j := range feat {
				feat[j] = rng.NormFloat64()
			}
			muts = append(muts, graph.AddNode(*nextID, feat))
			*nextID++
		case 1, 2:
			s := cur.Nodes[rng.Intn(cur.NumNodes())].ID
			d := cur.Nodes[rng.Intn(cur.NumNodes())].ID
			if s != d {
				muts = append(muts, graph.AddEdge(s, d, 1+rng.Float64()))
			}
		case 3:
			if cur.NumEdges() > 0 {
				e := cur.Edges[rng.Intn(cur.NumEdges())]
				key := [2]int64{e.Src, e.Dst}
				if !removed[key] {
					removed[key] = true
					muts = append(muts, graph.RemoveEdge(e.Src, e.Dst))
				}
			}
		case 4:
			id := cur.Nodes[rng.Intn(cur.NumNodes())].ID
			feat := make([]float64, cur.FeatureDim())
			for j := range feat {
				feat[j] = rng.NormFloat64()
			}
			muts = append(muts, graph.UpdateNodeFeat(id, feat))
		}
	}
	return muts
}

// buildBackend materializes one Store backend over GraphInfer embeddings:
// the heap MemStore, or a MappedStore round-tripped through its on-disk
// layout. Consistency suites run over both — the serving tier must behave
// identically regardless of where the rows live, and for the mapped
// backend the dirty-row overlay must shadow rows without ever writing the
// (read-only) mapped file.
func buildBackend(t *testing.T, name string, embs map[int64][]float64) Store {
	t.Helper()
	mem, err := NewStore(8, embs)
	if err != nil {
		t.Fatal(err)
	}
	if name == "mmap" {
		return mappedFromMem(t, mem)
	}
	return mem
}

// storeBackendNames lists the Store implementations the parameterized
// consistency suites cover.
var storeBackendNames = []string{"mem", "mmap"}

// TestIncrementalConsistencyWithStore is the tentpole property test: a
// store-backed server receives random mutation batches, and after every
// Apply each served score must equal a from-scratch cold recompute on the
// mutated graph. Sampling is disabled so extractions are
// information-complete and the comparison is exact: unaffected rows keep
// serving warm off the original store, so the test proves invalidation is
// broad enough (no stale row survives) while the warm/cold accounting
// proves it is not absurdly over-broad (warm traffic remains). It runs
// over both store backends.
func TestIncrementalConsistencyWithStore(t *testing.T) {
	for _, backend := range storeBackendNames {
		t.Run(backend, func(t *testing.T) { testIncrementalConsistency(t, backend) })
	}
}

func testIncrementalConsistency(t *testing.T, backend string) {
	g, model, res := testGraph(t)
	store := buildBackend(t, backend, res.Embeddings)
	cfg := Config{Seed: 4}
	srv, err := New(cfg, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	refModel := cloneModel(t, model)
	rng := rand.New(rand.NewSource(99))
	nextID := int64(1 << 30)
	for batch := 0; batch < 5; batch++ {
		cur, _ := srv.Graph()
		muts := randomMutations(rng, cur, &nextID, 1+rng.Intn(6))
		ar, err := srv.Apply(context.Background(), muts)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range ar.Errs {
			if e != nil {
				t.Fatalf("batch %d mutation %d (%+v): %v", batch, i, muts[i], e)
			}
		}

		cur, ver := srv.Graph()
		if ver != ar.Version {
			t.Fatalf("Graph() version %d, Apply reported %d", ver, ar.Version)
		}
		want := coldRecompute(t, cfg, refModel, cur, cur.IDs())
		for _, id := range cur.IDs() {
			got, err := srv.Score(context.Background(), id)
			if err != nil {
				t.Fatalf("batch %d node %d: %v", batch, id, err)
			}
			for j := range want[id] {
				if math.Abs(got[j]-want[id][j]) > 1e-9 {
					t.Fatalf("batch %d node %d dim %d: served %v, cold recompute %v",
						batch, id, j, got[j], want[id][j])
				}
			}
		}
	}
	st := srv.Stats()
	if st.Warm == 0 {
		t.Fatalf("invalidation evicted everything — expected surviving warm rows, got %+v", st)
	}
	if st.Applies != 5 || st.Mutations == 0 || st.Invalidated == 0 {
		t.Fatalf("mutation accounting off: %+v", st)
	}
	// The mapped file is read-only: dirty rows live in the resident
	// overlay, so after all the mutation traffic the on-disk sections must
	// still checksum clean.
	if ms, ok := store.(*MappedStore); ok {
		if err := ms.Verify(); err != nil {
			t.Fatalf("dynamic serving wrote through to the mapped file: %v", err)
		}
	}
}

// TestIncrementalConsistencySampled repeats the property under neighbor
// sampling (all-cold server, so extraction sampling is the only score
// source): post-mutation scores must match a fresh server with identical
// sampling config over the mutated graph — cache invalidation and the
// rebound flattener cannot leak pre-mutation state.
func TestIncrementalConsistencySampled(t *testing.T) {
	g, model, _ := testGraph(t)
	cfg := Config{Seed: 4, MaxNeighbors: 3}
	srv, err := New(cfg, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	refModel := cloneModel(t, model)
	rng := rand.New(rand.NewSource(5))
	nextID := int64(1 << 30)

	// Pre-warm the cache so stale entries exist to invalidate.
	ids := g.IDs()[:60]
	for _, id := range ids {
		if _, err := srv.Score(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}

	for batch := 0; batch < 4; batch++ {
		cur, _ := srv.Graph()
		muts := randomMutations(rng, cur, &nextID, 1+rng.Intn(5))
		if _, err := srv.Apply(context.Background(), muts); err != nil {
			t.Fatal(err)
		}
		cur, _ = srv.Graph()
		want := coldRecompute(t, cfg, refModel, cur, ids)
		for _, id := range ids {
			got, err := srv.Score(context.Background(), id)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got[0]-want[id][0]) > 1e-9 {
				t.Fatalf("batch %d node %d: served %v, fresh sampled recompute %v",
					batch, id, got[0], want[id][0])
			}
		}
	}
}

// lineServer builds an all-cold server over a 6-node directed chain
// 0→1→2→3→4→5 with a 2-layer model — invalidation distances are exact
// and easy to reason about.
func lineServer(t *testing.T) (*Server, *gnn.Model) {
	t.Helper()
	const n = 6
	nodes := make([]graph.Node, n)
	var edges []graph.Edge
	for i := range nodes {
		nodes[i] = graph.Node{ID: int64(i), Feat: []float64{float64(i) / n, 1}}
		if i > 0 {
			edges = append(edges, graph.Edge{Src: int64(i - 1), Dst: int64(i), Weight: 1})
		}
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 2, Hidden: 4, Classes: 1, Layers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 1}, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv, model
}

// TestInvalidationScope pins the k-hop dependency semantics on a chain
// 0→1→2→3→4→5 with K=2: mutating node 0's features must invalidate
// exactly {0, 1, 2}.
func TestInvalidationScope(t *testing.T) {
	srv, _ := lineServer(t)
	defer srv.Close()

	// Warm the cache for every node.
	for id := int64(0); id < 6; id++ {
		if _, err := srv.Score(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.Stats()
	ar, err := srv.Apply(context.Background(), []graph.Mutation{graph.UpdateNodeFeat(0, []float64{9, 9})})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Applied != 1 || ar.Version != 1 {
		t.Fatalf("apply result %+v", ar)
	}
	if ar.Invalidated != 3 { // cache entries for 0, 1, 2 (no store rows)
		t.Fatalf("invalidated %d entries, want 3 (nodes 0,1,2)", ar.Invalidated)
	}

	// Nodes 3..5 must still answer from the cache; 0..2 recompute.
	for id := int64(0); id < 6; id++ {
		if _, err := srv.Score(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	after := srv.Stats()
	if hits := after.CacheHits - before.CacheHits; hits != 3 {
		t.Fatalf("%d cache hits after invalidation, want 3 (nodes 3,4,5)", hits)
	}
	if cold := after.Cold - before.Cold; cold != 3 {
		t.Fatalf("%d cold recomputes, want 3 (nodes 0,1,2)", cold)
	}
}

// TestDirtyRowReadmission: an invalidated store row serves cold exactly
// once, then returns to the warm tier with its recomputed embedding. Runs
// over both store backends — for the mmap backend the readmitted row lands
// in the overlay, never in the file.
func TestDirtyRowReadmission(t *testing.T) {
	for _, backend := range storeBackendNames {
		t.Run(backend, func(t *testing.T) { testDirtyRowReadmission(t, backend) })
	}
}

func testDirtyRowReadmission(t *testing.T, backend string) {
	g, model, res := testGraph(t)
	store := buildBackend(t, backend, res.Embeddings)
	// CacheSize 1 so the cache cannot mask the warm/cold distinction.
	srv, err := New(Config{Seed: 4, CacheSize: 1}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	target := g.Nodes[0].ID
	if _, err := srv.Apply(context.Background(), []graph.Mutation{
		graph.UpdateNodeFeat(target, make([]float64, g.FeatureDim())),
	}); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.DirtyRows == 0 {
		t.Fatalf("no dirty rows after mutating a stored node: %+v", st)
	}
	dirtyBefore := st.DirtyRows

	first, err := srv.Score(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	st = srv.Stats()
	if st.Cold == 0 || st.Readmitted != 1 {
		t.Fatalf("dirty row did not recompute cold + readmit: %+v", st)
	}
	if st.DirtyRows != dirtyBefore-1 {
		t.Fatalf("dirty gauge did not shrink: %d -> %d", dirtyBefore, st.DirtyRows)
	}

	// Evict the score cache entry, then re-request: must serve warm from
	// the overlay with the identical recomputed score.
	if _, err := srv.Score(context.Background(), g.Nodes[1].ID); err != nil {
		t.Fatal(err)
	}
	warmBefore := srv.Stats().Warm
	again, err := srv.Score(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Stats().Warm != warmBefore+1 {
		t.Fatalf("re-admitted row did not serve warm: %+v", srv.Stats())
	}
	if math.Abs(first[0]-again[0]) > 1e-12 {
		t.Fatalf("overlay score %v diverged from cold recompute %v", again[0], first[0])
	}
}

// TestApplyPartialFailureSemantics mirrors ScoreMany: bad mutations report
// positionally, good ones land.
func TestApplyPartialFailureSemantics(t *testing.T) {
	srv, _ := lineServer(t)
	defer srv.Close()
	ar, err := srv.Apply(context.Background(), []graph.Mutation{
		graph.AddEdge(0, 2, 1),     // ok
		graph.AddEdge(0, 12345, 1), // unknown node
		graph.RemoveEdge(5, 0),     // unknown edge
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Applied != 1 || ar.Errs[0] != nil {
		t.Fatalf("apply result %+v", ar)
	}
	if !errors.Is(ar.Errs[1], graph.ErrUnknownNode) || !errors.Is(ar.Errs[2], graph.ErrUnknownEdge) {
		t.Fatalf("errors %v", ar.Errs)
	}
	// All-failed batch: version must not advance.
	before := srv.Stats().Version
	ar, err = srv.Apply(context.Background(), []graph.Mutation{graph.RemoveEdge(5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Applied != 0 || srv.Stats().Version != before {
		t.Fatalf("all-failed batch advanced version: %+v", ar)
	}
}

func TestApplyAfterCloseFails(t *testing.T) {
	srv, _ := lineServer(t)
	srv.Close()
	if _, err := srv.Apply(context.Background(), []graph.Mutation{graph.AddEdge(0, 2, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close: %v", err)
	}
}

// TestAddNodeServed: a node streamed in via Apply (with edges) is
// immediately scorable and consistent with a fresh recompute.
func TestAddNodeServed(t *testing.T) {
	g, model, res := testGraph(t)
	store, err := NewStore(8, res.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 4}
	srv, err := New(cfg, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const newID = int64(777777)
	feat := make([]float64, g.FeatureDim())
	feat[0] = 1
	anchor := g.Nodes[3].ID
	if _, err := srv.Apply(context.Background(), []graph.Mutation{
		graph.AddNode(newID, feat),
		graph.AddEdge(anchor, newID, 1),
		graph.AddEdge(newID, anchor, 1),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Score(context.Background(), newID)
	if err != nil {
		t.Fatalf("scoring a streamed-in node: %v", err)
	}
	cur, _ := srv.Graph()
	want := coldRecompute(t, cfg, cloneModel(t, model), cur, []int64{newID, anchor})
	if math.Abs(got[0]-want[newID][0]) > 1e-9 {
		t.Fatalf("new node score %v, recompute %v", got[0], want[newID][0])
	}
	gotAnchor, err := srv.Score(context.Background(), anchor)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotAnchor[0]-want[anchor][0]) > 1e-9 {
		t.Fatalf("anchor score %v, recompute %v (stale despite new in-edge)", gotAnchor[0], want[anchor][0])
	}
}

// TestApplyDetachesInflightCalls: a computation in flight on the
// pre-mutation version must not capture requests arriving after Apply
// returns — Apply detaches affected calls from the single-flight table so
// the next request computes fresh on the new version.
func TestApplyDetachesInflightCalls(t *testing.T) {
	srv, _ := lineServer(t)
	defer srv.Close()

	// Simulate an in-flight computation for node 0 (as if a batch had
	// snapshotted the old graph version and were mid-forward-pass).
	c := &call{id: 0, done: make(chan struct{})}
	srv.mu.Lock()
	srv.inflight[0] = c
	srv.mu.Unlock()

	if _, err := srv.Apply(context.Background(), []graph.Mutation{graph.UpdateNodeFeat(0, []float64{9, 9})}); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	_, still := srv.inflight[0]
	srv.mu.Unlock()
	if still {
		t.Fatal("Apply left an affected in-flight call collapsible")
	}
	// An unaffected node's in-flight call must NOT be detached: register
	// one for node 5 (outside node 0's 2-hop downstream) and mutate 0.
	c5 := &call{id: 5, done: make(chan struct{})}
	srv.mu.Lock()
	srv.inflight[5] = c5
	srv.mu.Unlock()
	if _, err := srv.Apply(context.Background(), []graph.Mutation{graph.UpdateNodeFeat(0, []float64{8, 8})}); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	_, still = srv.inflight[5]
	delete(srv.inflight, 5) // unregister the fake call before real traffic
	srv.mu.Unlock()
	if !still {
		t.Fatal("Apply detached an unaffected in-flight call")
	}

	// A request for the mutated node now computes fresh instead of
	// collapsing onto the stale call.
	before := srv.Stats()
	if _, err := srv.Score(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats()
	if after.Collapsed != before.Collapsed {
		t.Fatalf("post-Apply request collapsed onto a pre-mutation computation: %+v", after)
	}
	if after.Cold != before.Cold+1 {
		t.Fatalf("post-Apply request did not recompute: %+v", after)
	}
}

// TestMutationsSince: the server's bounded catch-up log replays applied
// batches by version and reports trimming honestly.
func TestMutationsSince(t *testing.T) {
	srv, _ := lineServer(t)
	defer srv.Close()
	if entries, ok := srv.MutationsSince(0); !ok || len(entries) != 0 {
		t.Fatalf("fresh log: entries %v ok %v", entries, ok)
	}
	if _, err := srv.Apply(context.Background(), []graph.Mutation{graph.AddEdge(0, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(context.Background(), []graph.Mutation{
		graph.UpdateNodeFeat(3, []float64{1, 1}),
		graph.RemoveEdge(5, 0), // invalid: filtered out of the log
	}); err != nil {
		t.Fatal(err)
	}
	entries, ok := srv.MutationsSince(0)
	if !ok || len(entries) != 2 {
		t.Fatalf("entries %v ok %v", entries, ok)
	}
	if entries[0].Version != 1 || len(entries[0].Muts) != 1 || entries[0].Muts[0].Op != graph.OpAddEdge {
		t.Fatalf("entry 0: %+v", entries[0])
	}
	if entries[1].Version != 2 || len(entries[1].Muts) != 1 {
		t.Fatalf("entry 1 should hold only the applied mutation: %+v", entries[1])
	}
	if entries, ok := srv.MutationsSince(1); !ok || len(entries) != 1 || entries[0].Version != 2 {
		t.Fatalf("Since(1): %v ok %v", entries, ok)
	}
}

// TestDepIndexUnionCoversRemovedEdges: invalidation BFS must traverse
// edges that the same batch removes — targets downstream through a
// removed edge were computed with it present.
func TestDepIndexUnionCoversRemovedEdges(t *testing.T) {
	// 0→1→2: removing 1→2 changes node 2's neighborhood; the affected set
	// from seed 2 must be found even though the BFS advances past the
	// removal. Also 0→1 removed in the same batch: seed 1 must still reach
	// 2 through the old 1→2 row.
	nodes := []graph.Node{{ID: 0, Feat: []float64{1}}, {ID: 1, Feat: []float64{1}}, {ID: 2, Feat: []float64{1}}}
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := newDepIndex(g)
	next, errs := g.Apply([]graph.Mutation{graph.RemoveEdge(0, 1), graph.RemoveEdge(1, 2)})
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	got := d.invalidate(next, []graph.Mutation{graph.RemoveEdge(0, 1), graph.RemoveEdge(1, 2)}, 2)
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	// Seeds are {1, 2}; 1 reaches 2 over the (removed) 1→2 edge.
	want := []int64{1, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("affected %v, want %v", got, want)
	}
	// The index must have advanced: a follow-up feat change at 0 now
	// reaches nobody downstream.
	next2, _ := next.Apply([]graph.Mutation{graph.UpdateNodeFeat(0, []float64{2})})
	got = d.invalidate(next2, []graph.Mutation{graph.UpdateNodeFeat(0, []float64{2})}, 2)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("affected after edge removals %v, want [0]", got)
	}
}
