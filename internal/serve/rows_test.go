package serve

import (
	"context"
	"errors"
	"math"
	"testing"

	"agl/internal/gnn"
	"agl/internal/graph"
)

// slotMod is the test slot function: trivially invertible so each case can
// place ids in slots by construction.
func slotMod(id int64, slots int) int { return int(id % int64(slots)) }

// TestRowSurfaceForMigration exercises the Server primitives the slot
// migration protocol is assembled from: snapshot (RowsInSlot), install
// (InstallRows), drop (DropRows), and the WarmRow observable — including
// the dirty-row exclusions that make a migrated snapshot always safe to
// serve.
func TestRowSurfaceForMigration(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadBilinear)
	store, err := NewStore(0, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 4}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	ids := g.IDs()
	var even, odd int64 = -1, -1
	for _, id := range ids {
		if id%2 == 0 && even < 0 {
			even = id
		}
		if id%2 == 1 && odd < 0 {
			odd = id
		}
	}
	if even < 0 || odd < 0 {
		t.Fatal("dataset has no even/odd id pair")
	}

	// Dirty one even id via a real mutation: the snapshot must skip it.
	if _, err := srv.Apply(ctx, []graph.Mutation{graph.UpdateNodeFeat(even, make([]float64, g.FeatureDim()))}); err != nil {
		t.Fatal(err)
	}
	rows := srv.RowsInSlot(0, 2, slotMod)
	if _, ok := rows[even]; ok {
		t.Fatalf("dirty row %d leaked into the migration snapshot", even)
	}
	if _, ok := rows[odd]; ok {
		t.Fatalf("slot-1 row %d leaked into the slot-0 snapshot", odd)
	}
	if len(rows) == 0 {
		t.Fatal("slot-0 snapshot empty")
	}

	// InstallRows must not resurrect the dirty row, and an overlay-only id
	// (no base store row) must round-trip through the next snapshot.
	ghost := ids[len(ids)-1]*2 + 2 // even, not in the store
	installed := srv.InstallRows(FloatRows(map[int64][]float64{
		even:  make([]float64, model.Cfg.Hidden),
		ghost: make([]float64, model.Cfg.Hidden),
	}))
	if installed != 1 {
		t.Fatalf("installed %d rows, want 1 (dirty id must be refused)", installed)
	}
	if !srv.WarmRow(ghost) || srv.WarmRow(even) {
		t.Fatalf("warm observability wrong: ghost=%v dirty=%v", srv.WarmRow(ghost), srv.WarmRow(even))
	}
	rows = srv.RowsInSlot(0, 2, slotMod)
	if _, ok := rows[ghost]; !ok {
		t.Fatal("overlay-only row missing from snapshot")
	}

	// DropRows clears the overlay and dirty bookkeeping for the slot.
	dropped := srv.DropRows(func(id int64) bool { return slotMod(id, 2) == 0 })
	if dropped != 1 {
		t.Fatalf("dropped %d overlay rows, want 1", dropped)
	}
	if srv.WarmRow(ghost) {
		t.Fatal("dropped row still serves warm")
	}
}

// TestEmbedTiersAndScoreVecLink pins the scatter-gather halves to the
// single-process link path: owner-side Embed (warm and cold) feeding
// ScoreVecLink must reproduce ScoreLink's logit exactly.
func TestEmbedTiersAndScoreVecLink(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadBilinear)
	store, err := NewStore(0, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(Config{Seed: 4}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	coldModel, err := gnn.UnmarshalModel(mustMarshal(t, model))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(Config{Seed: 4}, coldModel, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	ctx := context.Background()

	ids := g.IDs()
	u, v := ids[0], ids[1]
	hu, err := warm.Embed(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	hv, err := warm.Embed(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	// The warm result is a copy, not a store view.
	orig := hu[0]
	hu[0] = math.Inf(1)
	again, err := warm.Embed(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != orig {
		t.Fatal("Embed returned a store view: caller mutation leaked back")
	}
	hu[0] = orig

	gathered, err := warm.ScoreVecLink(ctx, F64Row(hu), F64Row(hv))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := warm.ScoreLink(ctx, u, v)
	if err != nil {
		t.Fatal(err)
	}
	if gathered != direct {
		t.Fatalf("gathered %v != direct %v", gathered, direct)
	}

	// Cold Embed (no store) runs the batcher and agrees with warm.
	chu, err := cold.Embed(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chu {
		if math.Abs(chu[i]-hu[i]) > 1e-9 {
			t.Fatalf("cold embed dim %d: %v vs warm %v", i, chu[i], hu[i])
		}
	}

	// Error surface: unknown id, dimension mismatch, missing edge head.
	if _, err := warm.Embed(ctx, 1<<40); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown-node embed err = %v", err)
	}
	if _, err := warm.ScoreVecLink(ctx, F64Row(hu[:1]), F64Row(hv)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	plainModel, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: g.FeatureDim(), Hidden: 8, Classes: 1, Layers: 2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Config{Seed: 4}, plainModel, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.ScoreVecLink(ctx, F64Row(hu), F64Row(hv)); !errors.Is(err, ErrNoEdgeHead) {
		t.Fatalf("edge-head-less ScoreVecLink err = %v", err)
	}
}

// TestFlightAccessors covers the recorder's observability surface: the
// ring's Len/Seq bookkeeping past wraparound and the server-level
// spec/samples accessors.
func TestFlightAccessors(t *testing.T) {
	ring, err := NewFlightRing(3, "")
	if err != nil {
		t.Fatal(err)
	}
	defer ring.Close()
	for i := 0; i < 5; i++ {
		if err := ring.Append(FlightSample{UnixNanos: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if ring.Len() != 3 || ring.Seq() != 5 {
		t.Fatalf("ring Len=%d Seq=%d, want 3/5 after wraparound", ring.Len(), ring.Seq())
	}

	g, model, _ := testLinkGraph(t, gnn.EdgeHeadBilinear)
	srv, err := New(Config{Seed: 4, FlightSlots: 7}, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if spec := srv.FlightInfo(); spec.Slots != 7 || spec.Interval <= 0 {
		t.Fatalf("flight spec %+v", spec)
	}
	if srv.Flight() == nil {
		t.Fatal("always-on recorder returned nil samples slice")
	}
}
