package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sort"
	"unsafe"
)

// MappedStore is the out-of-core Store backend: a fixed-stride on-disk
// layout mapped into the address space and served with zero
// deserialization. A lookup is a binary search over the mapped id index
// plus a pointer into the mapped row region, so a warm lookup is a
// page-cache hit and opening a store is O(1) in its size — only the
// 64-byte header is read and verified eagerly.
//
// On-disk layout (little-endian throughout):
//
//	offset  0  magic "AGLMAP01"                     (8 bytes)
//	offset  8  uint32 dim                           (4 bytes)
//	offset 12  uint32 reserved, zero                (4 bytes)
//	offset 16  uint64 count                         (8 bytes)
//	offset 24  uint64 CRC64(index section)          (8 bytes)
//	offset 32  uint64 CRC64(row section)            (8 bytes)
//	offset 40  uint64 CRC64(header bytes [0,40))    (8 bytes)
//	offset 48  zero padding                         (16 bytes)
//	offset 64  index: count x int64 node ids, sorted ascending
//	           rows:  count x dim x float64, row i belongs to index[i]
//
// The header checksum is verified at open (it covers everything needed to
// trust the geometry); the section checksums cover the bulk payload and
// are verified on demand by Verify, so open stays O(1).
//
// A MappedStore is strictly read-only: the serving tier's dynamic
// invalidation overlays recomputed rows in resident memory (Server.overlay)
// and never writes the mapped file. It is immutable after open and safe
// for concurrent readers; Close unmaps the file, after which previously
// returned row views are invalid.
type MappedStore struct {
	path   string
	data   []byte // the whole file (mmap'd, or heap-read on platforms without mmap)
	ids    []int64
	rows   []float64
	dim    int
	count  int
	mapped bool
}

var mappedMagic = [8]byte{'A', 'G', 'L', 'M', 'A', 'P', '0', '1'}

const (
	mappedHeaderSize = 64
	mappedCRCRange   = 40 // header CRC covers bytes [0, 40)
)

// mappedHeader is the decoded fixed-size header.
type mappedHeader struct {
	dim       uint32
	count     uint64
	indexCRC  uint64
	dataCRC   uint64
	headerCRC uint64
}

func (h *mappedHeader) encode() [mappedHeaderSize]byte {
	var b [mappedHeaderSize]byte
	copy(b[0:8], mappedMagic[:])
	binary.LittleEndian.PutUint32(b[8:12], h.dim)
	binary.LittleEndian.PutUint64(b[16:24], h.count)
	binary.LittleEndian.PutUint64(b[24:32], h.indexCRC)
	binary.LittleEndian.PutUint64(b[32:40], h.dataCRC)
	h.headerCRC = crc64.Checksum(b[:mappedCRCRange], crcTable)
	binary.LittleEndian.PutUint64(b[40:48], h.headerCRC)
	return b
}

// CreateMapped writes src's embeddings to path in the mapped layout. The
// file is staged at path+".tmp" and renamed into place on success, so a
// crash mid-write never leaves a half-written store at path.
func CreateMapped(path string, src Store) error {
	ids := make([]int64, 0, src.Len())
	src.Range(func(id int64, _ Row) bool {
		ids = append(ids, id)
		return true
	})
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename
	if err := writeMapped(f, src, ids); err != nil {
		f.Close()
		return fmt.Errorf("serve: write mapped store %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeMapped streams the index and row sections (computing their CRCs on
// the way through), then seeks back and commits the real header.
func writeMapped(f *os.File, src Store, sortedIDs []int64) error {
	var zero [mappedHeaderSize]byte
	if _, err := f.Write(zero[:]); err != nil {
		return err
	}
	bw := newSectionWriter(f)
	for _, id := range sortedIDs {
		if err := bw.writeInt64(id); err != nil {
			return err
		}
	}
	indexCRC, err := bw.finishSection()
	if err != nil {
		return err
	}
	dim := src.Dim()
	scratch := make([]float64, dim)
	for _, id := range sortedIDs {
		emb, ok := src.LookupInto(scratch, id)
		if !ok || len(emb) != dim {
			return fmt.Errorf("store changed during write: node %d (dim %d, want %d)", id, len(emb), dim)
		}
		scratch = emb
		for _, v := range emb {
			if err := bw.writeUint64(mathFloat64bits(v)); err != nil {
				return err
			}
		}
	}
	dataCRC, err := bw.finishSection()
	if err != nil {
		return err
	}
	h := mappedHeader{dim: uint32(dim), count: uint64(len(sortedIDs)), indexCRC: indexCRC, dataCRC: dataCRC}
	hdr := h.encode()
	_, err = f.WriteAt(hdr[:], 0)
	return err
}

// mathFloat64bits avoids importing math for one call site.
func mathFloat64bits(v float64) uint64 { return *(*uint64)(unsafe.Pointer(&v)) }

// sectionWriter buffers little-endian writes to f while teeing them
// through a CRC64, resettable per section.
type sectionWriter struct {
	f   *os.File
	buf []byte
	crc uint64
}

func newSectionWriter(f *os.File) *sectionWriter {
	return &sectionWriter{f: f, buf: make([]byte, 0, 1<<16)}
}

func (w *sectionWriter) writeInt64(v int64) error { return w.writeUint64(uint64(v)) }

func (w *sectionWriter) writeUint64(v uint64) error {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	if len(w.buf) >= 1<<16 {
		return w.flush()
	}
	return nil
}

func (w *sectionWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	w.crc = crc64.Update(w.crc, crcTable, w.buf)
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// finishSection flushes and returns the section's CRC, resetting it for
// the next section.
func (w *sectionWriter) finishSection() (uint64, error) {
	if err := w.flush(); err != nil {
		return 0, err
	}
	crc := w.crc
	w.crc = 0
	return crc, nil
}

// OpenMapped maps the store at path. Open is O(1) regardless of store
// size: it reads and verifies only the 64-byte header (magic, header
// checksum, and that the declared geometry matches the file size), then
// maps the file read-only. Use Verify to additionally checksum the index
// and row sections.
func OpenMapped(path string) (*MappedStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < mappedHeaderSize {
		return nil, fmt.Errorf("serve: mapped store %s truncated: %d bytes, want at least the %d-byte header",
			path, size, mappedHeaderSize)
	}
	var hdr [mappedHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: mapped store %s: read header: %w", path, err)
	}
	if string(hdr[0:8]) != string(mappedMagic[:]) {
		return nil, fmt.Errorf("serve: mapped store %s: bad magic %q at offset 0 (want %q)",
			path, hdr[0:8], mappedMagic[:])
	}
	wantHeaderCRC := binary.LittleEndian.Uint64(hdr[40:48])
	if got := crc64.Checksum(hdr[:mappedCRCRange], crcTable); got != wantHeaderCRC {
		return nil, fmt.Errorf("serve: mapped store %s: header checksum mismatch at offset 40: got %#016x, want %#016x",
			path, got, wantHeaderCRC)
	}
	dim := binary.LittleEndian.Uint32(hdr[8:12])
	count := binary.LittleEndian.Uint64(hdr[16:24])
	if dim > 1<<20 || count > 1<<40 || (count > 0 && dim == 0) {
		return nil, fmt.Errorf("serve: mapped store %s: implausible header at offset 8 (dim=%d count=%d)",
			path, dim, count)
	}
	indexBytes := count * 8
	rowBytes := count * uint64(dim) * 8
	want := int64(mappedHeaderSize + indexBytes + rowBytes)
	if size < want {
		return nil, fmt.Errorf("serve: mapped store %s truncated at offset %d: %d bytes, header at offset 16 declares %d (count=%d dim=%d)",
			path, size, size, want, count, dim)
	}
	if size > want {
		return nil, fmt.Errorf("serve: mapped store %s: %d trailing bytes past offset %d (count=%d dim=%d)",
			path, size-want, want, count, dim)
	}
	data, mapped, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("serve: mmap %s: %w", path, err)
	}
	s := &MappedStore{
		path:   path,
		data:   data,
		ids:    bytesToInt64s(data[mappedHeaderSize : mappedHeaderSize+indexBytes]),
		rows:   bytesToFloat64s(data[mappedHeaderSize+indexBytes : want]),
		dim:    int(dim),
		count:  int(count),
		mapped: mapped,
	}
	return s, nil
}

// lookup returns the stored embedding slice for id, a view straight into
// the mapped file.
func (s *MappedStore) lookup(id int64) ([]float64, bool) {
	if s == nil || s.count == 0 {
		return nil, false
	}
	i := sort.Search(len(s.ids), func(j int) bool { return s.ids[j] >= id })
	if i == len(s.ids) || s.ids[i] != id {
		return nil, false
	}
	return s.rows[i*s.dim : (i+1)*s.dim : (i+1)*s.dim], true
}

// LookupRow returns the stored row for id. The payload is a view straight
// into the mapped file — read-only, clone before retaining, invalid after
// Close (see Store).
func (s *MappedStore) LookupRow(id int64) (Row, bool) {
	v, ok := s.lookup(id)
	if !ok {
		return Row{}, false
	}
	return F64Row(v), true
}

// LookupInto decodes the stored row for id into caller-owned memory.
func (s *MappedStore) LookupInto(dst []float64, id int64) ([]float64, bool) {
	v, ok := s.lookup(id)
	if !ok {
		return nil, false
	}
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	}
	dst = dst[:len(v)]
	copy(dst, v)
	return dst, true
}

// RowCodec returns CodecF64: mapped rows are full-precision floats.
func (s *MappedStore) RowCodec() Codec { return CodecF64 }

// Len returns the number of stored embeddings.
func (s *MappedStore) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Dim returns the embedding dimensionality (0 for an empty store).
func (s *MappedStore) Dim() int {
	if s == nil {
		return 0
	}
	return s.dim
}

// Range iterates the stored rows in ascending id order. The row payload
// aliases the mapped region, valid only for the callback.
func (s *MappedStore) Range(fn func(id int64, row Row) bool) {
	if s == nil {
		return
	}
	for i, id := range s.ids {
		if !fn(id, F64Row(s.rows[i*s.dim:(i+1)*s.dim:(i+1)*s.dim])) {
			return
		}
	}
}

// WriteTo copies the store's raw bytes — the mapped file already is the
// serialization, so this is a single contiguous write.
func (s *MappedStore) WriteTo(w io.Writer) (int64, error) {
	if s == nil || s.data == nil {
		h := mappedHeader{}
		hdr := h.encode()
		n, err := w.Write(hdr[:])
		return int64(n), err
	}
	n, err := w.Write(s.data)
	return int64(n), err
}

// Verify checksums the index and row sections against the header — the
// full-file integrity check deferred from open. It faults in every page,
// so it costs one sequential read of the file.
func (s *MappedStore) Verify() error {
	if s == nil || s.data == nil {
		return nil
	}
	indexEnd := mappedHeaderSize + len(s.ids)*8
	wantIndex := binary.LittleEndian.Uint64(s.data[24:32])
	if got := crc64.Checksum(s.data[mappedHeaderSize:indexEnd], crcTable); got != wantIndex {
		return fmt.Errorf("serve: mapped store %s: index checksum mismatch (section at offset %d): got %#016x, want %#016x",
			s.path, mappedHeaderSize, got, wantIndex)
	}
	wantData := binary.LittleEndian.Uint64(s.data[32:40])
	if got := crc64.Checksum(s.data[indexEnd:], crcTable); got != wantData {
		return fmt.Errorf("serve: mapped store %s: row checksum mismatch (section at offset %d): got %#016x, want %#016x",
			s.path, indexEnd, got, wantData)
	}
	return nil
}

// Path returns the file the store was opened from.
func (s *MappedStore) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Close unmaps the file. Slices previously returned by Lookup/Range are
// invalid afterwards. Close is idempotent.
func (s *MappedStore) Close() error {
	if s == nil || s.data == nil {
		return nil
	}
	data, mapped := s.data, s.mapped
	s.data, s.ids, s.rows, s.count, s.dim = nil, nil, nil, 0, 0
	if mapped {
		return munmapFile(data)
	}
	return nil
}

// bytesToInt64s reinterprets b as little-endian int64s. On little-endian
// hosts with aligned input this is a zero-copy cast; otherwise it falls
// back to an allocating decode (correct everywhere, paid only on exotic
// platforms or unaligned heap buffers).
func bytesToInt64s(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// bytesToFloat64s reinterprets b as little-endian float64s; same cast /
// fallback split as bytesToInt64s.
func bytesToFloat64s(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		bits := binary.LittleEndian.Uint64(b[i*8:])
		out[i] = *(*float64)(unsafe.Pointer(&bits))
	}
	return out
}

// hostLittleEndian reports whether the native byte order matches the
// file's little-endian layout, deciding whether the zero-copy casts above
// are legal.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
