package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/clockx"
	"agl/internal/consensus"
	"agl/internal/placement"
	"agl/internal/rpcx"
)

// This file binds the cluster to internal/consensus: the placement
// table becomes the FSM of a raft-replicated log, raft heartbeats
// double as the failure detector, and the leader reacts to a dead
// replica by committing a failover table that reassigns its slots to
// survivors. Everything here is opt-in via EnableConsensus; without it
// the replica behaves exactly as in PR-8 (static table, push-based
// distribution).
//
// Failover correctness leans on the PR-8 serving invariants rather than
// on copying state out of the corpse: the graph and model are fully
// replicated, so any survivor can serve any id — cold. Un-copied warm
// rows are recomputed on demand (bit-equal for float stores, within the
// documented cold tolerance otherwise); deployments sharing a store
// file get instant warm coverage because every replica's base store
// already holds all rows. A returning replica rejoins raft, learns the
// committed table, and owns nothing until an operator migrates slots
// back.

// proposeTimeout bounds one placement proposal (raft commit round).
const proposeTimeout = 10 * time.Second

// proposeForwardRetries bounds leader-forwarding attempts through
// election churn.
const proposeForwardRetries = 5

// ConsensusConfig configures EnableConsensus. The replica addresses in
// the placement table are the raft member identities.
type ConsensusConfig struct {
	// WALDir holds this node's raft WAL (raft-<id>.wal). Empty runs
	// without persistence — in-process tests only; real deployments
	// lose election safety across restarts without it.
	WALDir string

	// SuspectAfter flags a peer whose last heartbeat reply is older than
	// this (observability only); DeadAfter triggers failover. Defaults:
	// 2s / 5s.
	SuspectAfter time.Duration
	DeadAfter    time.Duration

	// Raft timers; zero values take the consensus package defaults.
	HeartbeatInterval  time.Duration
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration

	// Clock drives the failure-detection monitor (tests inject a fake).
	// The raft node itself always runs on the same clock.
	Clock clockx.Clock

	Seed int64
	Logf func(format string, args ...any)
}

// replicaConsensus is the live consensus state hung off a Replica.
type replicaConsensus struct {
	r    *Replica
	node *consensus.Node
	cfg  ConsensusConfig

	addrOf map[string]int // raft identity (address) → replica index

	heartbeatsMissed atomic.Int64
	failovers        atomic.Int64

	mu         sync.Mutex
	failedOver map[int]bool // replica index → failover already committed

	stop chan struct{}
	wg   sync.WaitGroup
}

// EnableConsensus starts the raft node (replaying its WAL) and the
// leader-side failure monitor. Call after Join; the table installed by
// Join seeds the FSM state and the raft member set.
func (r *Replica) EnableConsensus(cfg ConsensusConfig) error {
	t := r.Table()
	if t == nil {
		return errors.New("serve: EnableConsensus before Join")
	}
	if r.cns.Load() != nil {
		return errors.New("serve: consensus already enabled")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2 * time.Second
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 5 * time.Second
		if cfg.DeadAfter <= cfg.SuspectAfter {
			cfg.DeadAfter = 2 * cfg.SuspectAfter
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = clockx.Real{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	c := &replicaConsensus{
		r:          r,
		cfg:        cfg,
		addrOf:     make(map[string]int, len(t.Replicas)),
		failedOver: make(map[int]bool),
		stop:       make(chan struct{}),
	}
	for i, addr := range t.Replicas {
		c.addrOf[addr] = i
	}
	walPath := ""
	if cfg.WALDir != "" {
		walPath = filepath.Join(cfg.WALDir, fmt.Sprintf("raft-%d.wal", r.id))
	}
	node, err := consensus.New(consensus.Config{
		ID:                 r.Addr(),
		Peers:              append([]string(nil), t.Replicas...),
		WALPath:            walPath,
		Transport:          &raftTransport{c: c},
		FSM:                &placementFSM{c: c},
		Clock:              cfg.Clock,
		HeartbeatInterval:  cfg.HeartbeatInterval,
		ElectionTimeoutMin: cfg.ElectionTimeoutMin,
		ElectionTimeoutMax: cfg.ElectionTimeoutMax,
		Seed:               cfg.Seed,
		Logf:               cfg.Logf,
	})
	if err != nil {
		return err
	}
	c.node = node
	if !r.cns.CompareAndSwap(nil, c) {
		node.Close()
		return errors.New("serve: consensus already enabled")
	}
	c.wg.Add(1)
	go c.monitor()
	return nil
}

// ConsensusNode exposes the raft node (nil when not enabled) — status
// surfaces and tests.
func (r *Replica) ConsensusNode() *consensus.Node {
	if c := r.cns.Load(); c != nil {
		return c.node
	}
	return nil
}

func (c *replicaConsensus) close() {
	close(c.stop)
	c.wg.Wait()
	c.node.Close()
}

// ---------------------------------------------------------------------------
// Transport: raft RPCs ride the replica's pooled rpcx clients.

type raftTransport struct{ c *replicaConsensus }

func (t *raftTransport) client(peer string) (*rpcx.Client, error) {
	idx, ok := t.c.addrOf[peer]
	if !ok {
		return nil, fmt.Errorf("serve: raft peer %q not in placement table", peer)
	}
	cl := t.c.r.peerClient(idx)
	if cl == nil {
		return nil, fmt.Errorf("serve: no client for raft peer %q", peer)
	}
	return cl, nil
}

func (t *raftTransport) RequestVote(ctx context.Context, peer string, args *consensus.VoteArgs, reply *consensus.VoteReply) error {
	cl, err := t.client(peer)
	if err != nil {
		return err
	}
	return cl.Call(ctx, "Replica.RaftVote", args, reply)
}

func (t *raftTransport) AppendEntries(ctx context.Context, peer string, args *consensus.AppendArgs, reply *consensus.AppendReply) error {
	cl, err := t.client(peer)
	if err != nil {
		return err
	}
	return cl.Call(ctx, "Replica.RaftAppend", args, reply)
}

// ---------------------------------------------------------------------------
// FSM: committed entries are JSON placement tables, adopted iff newer —
// idempotent, so log replay after restart converges to the same table.

type placementFSM struct{ c *replicaConsensus }

func (f *placementFSM) Apply(e consensus.Entry) {
	var t placement.Table
	if err := json.Unmarshal(e.Cmd, &t); err != nil {
		f.c.cfg.Logf("serve: consensus entry %d undecodable: %v", e.Index, err)
		return
	}
	if err := f.c.r.adoptTable(&t); err != nil {
		f.c.cfg.Logf("serve: consensus entry %d rejected: %v", e.Index, err)
	}
}

// ---------------------------------------------------------------------------
// Proposal path.

// proposeLocal proposes t on this node (which must be the leader).
func (c *replicaConsensus) proposeLocal(ctx context.Context, t *placement.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cmd, err := json.Marshal(t)
	if err != nil {
		return err
	}
	return c.node.Propose(ctx, cmd)
}

// proposeTable commits t to the replicated log from anywhere in the
// cluster: leaders propose directly, followers forward to the leader
// (retrying through election churn). On success the local FSM has
// applied the table.
func (c *replicaConsensus) proposeTable(ctx context.Context, t *placement.Table) error {
	var last error
	for attempt := 0; attempt < proposeForwardRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		leader, isSelf := c.node.Leader()
		if isSelf {
			err := c.proposeLocal(ctx, t)
			if err == nil || !errors.Is(err, consensus.ErrNotLeader) && !errors.Is(err, consensus.ErrLost) {
				return err
			}
			last = err
			continue
		}
		if leader == "" {
			last = &consensus.NotLeaderError{}
			continue // no leader known yet; wait out the election
		}
		idx, ok := c.addrOf[leader]
		if !ok {
			last = fmt.Errorf("serve: unknown raft leader %q", leader)
			continue
		}
		var reply TableReply
		err := c.r.call(ctx, idx, "Replica.ProposeTable", &TableArgs{Table: t}, &reply)
		if err == nil {
			// Committed on the leader; adopt immediately rather than
			// waiting for the commit to reach us via AppendEntries.
			return c.r.adoptTable(t)
		}
		last = err
	}
	return fmt.Errorf("serve: propose table epoch %d: %w", t.Epoch, last)
}

// ---------------------------------------------------------------------------
// Failure detection + automatic failover.

// peerHealth is the suspect→dead state machine's verdict for one peer.
type peerHealth int

const (
	peerHealthy peerHealth = iota
	peerSuspect
	peerDead
)

// assessPeer classifies a heartbeat-reply age. Pure — the deterministic
// unit under test.
func assessPeer(sinceContact, suspectAfter, deadAfter time.Duration) peerHealth {
	switch {
	case sinceContact >= deadAfter:
		return peerDead
	case sinceContact >= suspectAfter:
		return peerSuspect
	default:
		return peerHealthy
	}
}

// monitor is the leader-side failure detector: every SuspectAfter/2 it
// classifies each peer by the age of its last raft heartbeat reply and
// commits a failover table for peers that cross DeadAfter. Non-leaders
// run the loop too but observe only (raft contact times are
// leader-side); leadership can arrive at any tick.
func (c *replicaConsensus) monitor() {
	defer c.wg.Done()
	tick := c.cfg.SuspectAfter / 2
	if tick <= 0 {
		tick = time.Second
	}
	clk := c.cfg.Clock
	for {
		woke := make(chan struct{})
		tm := clk.AfterFunc(tick, func() { close(woke) })
		select {
		case <-c.stop:
			tm.Stop()
			return
		case <-woke:
		}
		if !c.node.IsLeader() {
			continue
		}
		t := c.r.Table()
		if t == nil {
			continue
		}
		for idx, addr := range t.Replicas {
			if idx == c.r.id {
				continue
			}
			contact := c.node.PeerContact(addr)
			if contact.IsZero() {
				continue // no sample since this node became leader
			}
			switch assessPeer(clk.Since(contact), c.cfg.SuspectAfter, c.cfg.DeadAfter) {
			case peerHealthy:
				c.mu.Lock()
				c.failedOver[idx] = false // peer came back; re-arm
				c.mu.Unlock()
			case peerSuspect:
				c.heartbeatsMissed.Add(1)
			case peerDead:
				c.heartbeatsMissed.Add(1)
				c.maybeFailover(idx, addr)
			}
		}
	}
}

// maybeFailover commits a table reassigning idx's slots to survivors —
// once per death (re-armed if the peer's heartbeats resume).
func (c *replicaConsensus) maybeFailover(idx int, addr string) {
	c.mu.Lock()
	if c.failedOver[idx] {
		c.mu.Unlock()
		return
	}
	c.failedOver[idx] = true
	c.mu.Unlock()

	t := c.r.Table()
	next, moved, err := failoverTable(t, idx, c.aliveSet(t))
	if err != nil {
		c.cfg.Logf("serve: failover for replica %d (%s): %v", idx, addr, err)
		c.mu.Lock()
		c.failedOver[idx] = false // retry next tick
		c.mu.Unlock()
		return
	}
	if moved == 0 {
		return // owns nothing; nothing to do
	}
	ctx, cancel := context.WithTimeout(context.Background(), proposeTimeout)
	defer cancel()
	if err := c.proposeLocal(ctx, next); err != nil {
		c.cfg.Logf("serve: failover commit for replica %d: %v", idx, err)
		c.mu.Lock()
		c.failedOver[idx] = false
		c.mu.Unlock()
		return
	}
	c.failovers.Add(1)
	c.cfg.Logf("serve: failover committed — replica %d dead, %d slots reassigned, epoch %d",
		idx, moved, next.Epoch)
}

// aliveSet lists replica indexes currently considered alive by the
// detector (self plus peers inside DeadAfter).
func (c *replicaConsensus) aliveSet(t *placement.Table) map[int]bool {
	alive := map[int]bool{c.r.id: true}
	clk := c.cfg.Clock
	for idx, addr := range t.Replicas {
		if idx == c.r.id {
			continue
		}
		contact := c.node.PeerContact(addr)
		if contact.IsZero() {
			continue
		}
		if assessPeer(clk.Since(contact), c.cfg.SuspectAfter, c.cfg.DeadAfter) != peerDead {
			alive[idx] = true
		}
	}
	return alive
}

// failoverTable derives the table in which dead's slots are reassigned
// round-robin across the alive set. Pure — unit-testable without a
// cluster. Each reassignment bumps the epoch, so the result is strictly
// newer than t by at least the number of moved slots.
func failoverTable(t *placement.Table, dead int, alive map[int]bool) (*placement.Table, int, error) {
	if t == nil {
		return nil, 0, errors.New("serve: no placement table")
	}
	if alive[dead] {
		return nil, 0, fmt.Errorf("serve: replica %d is in the alive set", dead)
	}
	var survivors []int
	for idx := range t.Replicas {
		if alive[idx] {
			survivors = append(survivors, idx)
		}
	}
	if len(survivors) == 0 {
		return nil, 0, errors.New("serve: no survivors to fail over to")
	}
	next := t
	moved := 0
	for slot := 0; slot < t.Slots(); slot++ {
		if next.Owner(slot) != dead {
			continue
		}
		nt, err := next.WithOwner(slot, survivors[moved%len(survivors)])
		if err != nil {
			return nil, 0, err
		}
		next = nt
		moved++
	}
	return next, moved, nil
}
