package serve

import (
	"context"
	"testing"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
)

func benchServer(b *testing.B, withStore bool, cacheSize int) (*Server, *graph.Graph) {
	b.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 2000, FeatDim: 16, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 16, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	var store *MemStore
	if withStore {
		res, err := core.Infer(core.InferConfig{Seed: 4, TempDir: b.TempDir(), KeepEmbeddings: true},
			model, mapreduce.MemInput(core.TableRecords(ds.G)))
		if err != nil {
			b.Fatal(err)
		}
		store, err = NewStore(16, res.Embeddings)
		if err != nil {
			b.Fatal(err)
		}
	}
	srv, err := New(Config{Seed: 4, CacheSize: cacheSize}, model, ds.G, store)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv, ds.G
}

// BenchmarkScoreCacheHit measures the fully cached fast path.
func BenchmarkScoreCacheHit(b *testing.B) {
	srv, g := benchServer(b, true, 4096)
	id := g.Nodes[0].ID
	if _, err := srv.Score(context.Background(), id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Score(context.Background(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreWarmStore measures the store-lookup + prediction-slice
// path; a 1-entry cache keeps every request a cache miss.
func BenchmarkScoreWarmStore(b *testing.B) {
	srv, g := benchServer(b, true, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := g.Nodes[i%len(g.Nodes)].ID
		if _, err := srv.Score(context.Background(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreColdForward measures the request-time k-hop extraction +
// forward-pass path (no store, 1-entry cache).
func BenchmarkScoreColdForward(b *testing.B) {
	srv, g := benchServer(b, false, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := g.Nodes[i%len(g.Nodes)].ID
		if _, err := srv.Score(context.Background(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// linkBenchServer builds a dot-head link server over the requested store
// backend ("mem" or "quant") for the warm pair-scoring benchmarks.
func linkBenchServer(b *testing.B, backend string) (*Server, *graph.Graph) {
	b.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 2000, FeatDim: 16, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 16, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: 5, EdgeHead: gnn.EdgeHeadDot,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Infer(core.InferConfig{Seed: 4, TempDir: b.TempDir(), KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		b.Fatal(err)
	}
	mem, err := NewStore(16, res.Embeddings)
	if err != nil {
		b.Fatal(err)
	}
	var store Store = mem
	if backend == "quant" {
		store, err = Quantize(mem)
		if err != nil {
			b.Fatal(err)
		}
	}
	srv, err := New(Config{Seed: 4}, model, ds.G, store)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv, ds.G
}

// BenchmarkScoreLinkWarmMem measures the warm pair path over the float64
// store: two lookups + float dot.
func BenchmarkScoreLinkWarmMem(b *testing.B) {
	srv, g := linkBenchServer(b, "mem")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := g.Nodes[i%len(g.Nodes)].ID
		dst := g.Nodes[(i*7+1)%len(g.Nodes)].ID
		if _, err := srv.ScoreLink(ctx, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreLinkWarmQuant measures the same workload over the int8
// store: two lookups + quantDot, no dequantization.
func BenchmarkScoreLinkWarmQuant(b *testing.B) {
	srv, g := linkBenchServer(b, "quant")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := g.Nodes[i%len(g.Nodes)].ID
		dst := g.Nodes[(i*7+1)%len(g.Nodes)].ID
		if _, err := srv.ScoreLink(ctx, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreParallelHot measures contended throughput on a small hot
// working set — the hub-traffic shape single-flight and the LRU exist for.
func BenchmarkScoreParallelHot(b *testing.B) {
	srv, g := benchServer(b, true, 4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := g.Nodes[i%64].ID
			if _, err := srv.Score(context.Background(), id); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
