package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"agl/internal/placement"
)

// reflatten simulates the net/rpc boundary: the server returns err.Error()
// as a plain string and the client wraps it in a fresh error value, so the
// only thing that survives is the tagged text.
func reflatten(err error) error {
	if err == nil {
		return nil
	}
	return errors.New(err.Error())
}

// TestErrWireCodec: every typed serve error must survive the
// flatten-to-string RPC boundary so HTTP status mapping works on the
// routing replica exactly as it does on the owner.
func TestErrWireCodec(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   error
		want error
	}{
		{"unknown-node", fmt.Errorf("score: %w", ErrUnknownNode), ErrUnknownNode},
		{"no-edge-head", fmt.Errorf("link: %w", ErrNoEdgeHead), ErrNoEdgeHead},
		{"expired", fmt.Errorf("batch: %w", ErrExpired), ErrExpired},
		{"closed", ErrClosed, ErrClosed},
		{"deadline", context.DeadlineExceeded, context.DeadlineExceeded},
		{"canceled", fmt.Errorf("call: %w", context.Canceled), context.Canceled},
		{"stale-epoch", &placement.EpochError{Have: 3, Got: 1}, placement.ErrStaleEpoch},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := errFromWire(reflatten(errToWire(tc.in)))
			if !errors.Is(got, tc.want) {
				t.Fatalf("decoded %v, want errors.Is(%v)", got, tc.want)
			}
		})
	}

	// ShedError carries fields, not just identity: RetryAfter/Pending/Limit
	// must cross the wire intact for the 429 Retry-After header.
	shed := &ShedError{RetryAfter: 250 * time.Millisecond, Pending: 9, Limit: 8}
	got := errFromWire(reflatten(errToWire(fmt.Errorf("admission: %w", shed))))
	var back *ShedError
	if !errors.As(got, &back) {
		t.Fatalf("decoded %v, want *ShedError", got)
	}
	if back.RetryAfter != shed.RetryAfter || back.Pending != shed.Pending || back.Limit != shed.Limit {
		t.Fatalf("shed fields lost: %+v want %+v", back, shed)
	}
	if !errors.Is(got, ErrOverloaded) {
		t.Fatal("decoded shed error does not unwrap to ErrOverloaded")
	}

	// Untyped errors pass through as opaque text; a mangled shed payload
	// degrades to the raw error instead of a zero-valued ShedError.
	if errFromWire(nil) != nil || errToWire(nil) != nil {
		t.Fatal("nil must stay nil across the codec")
	}
	plain := errFromWire(reflatten(errToWire(errors.New("disk on fire"))))
	if plain == nil || plain.Error() == "" {
		t.Fatal("plain error lost its message")
	}
	mangled := errFromWire(errors.New(wireShed + "not-a-number:x:y: boom"))
	if errors.As(mangled, &back) {
		t.Fatal("mangled shed payload decoded to a typed ShedError")
	}
}

// TestEpochBounceResyncsTables: a routed call that hits an epoch fence
// must heal the divergence in both directions — fetch the peer's table
// when the peer is ahead, push ours when the peer is behind — and then
// succeed on the retry, invisibly to the caller.
func TestEpochBounceResyncsTables(t *testing.T) {
	cl := buildCluster(t, 2)
	ctx := context.Background()

	// A probe owned by replica 1 at every epoch in this test (only slot
	// `moved` changes hands below).
	t1 := cl.reps[0].Table()
	var probe int64 = -1
	moved := -1
	for s := 0; s < testClusterSlots && moved < 0; s++ {
		if t1.Owner(s) == 0 {
			moved = s
		}
	}
	for _, n := range cl.g.Nodes {
		if s := placement.SlotOf(n.ID, testClusterSlots); t1.Owner(s) == 1 && s != moved {
			probe = n.ID
			break
		}
	}
	if probe < 0 {
		t.Fatal("no probe node owned by replica 1")
	}
	want, err := cl.ref.Score(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}

	// Peer ahead: replica 1 has adopted epoch 2, replica 0 still routes
	// with epoch 1. The bounce must fetch the newer table.
	t2, err := t1.WithOwner(moved, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.reps[1].adoptTable(t2); err != nil {
		t.Fatal(err)
	}
	got, err := cl.reps[0].Score(ctx, probe)
	if err != nil {
		t.Fatalf("routed score after peer-ahead bounce: %v", err)
	}
	if !scoresEqual(got, want) {
		t.Fatalf("score diverged through epoch bounce: %v want %v", got, want)
	}
	if e := cl.reps[0].Table().Epoch; e != t2.Epoch {
		t.Fatalf("caller did not adopt the fetched table: epoch %d want %d", e, t2.Epoch)
	}

	// Peer behind: replica 0 moves on to epoch 3 alone. The bounce must
	// push the newer table down to replica 1.
	t3, err := t2.WithOwner(moved, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.reps[0].adoptTable(t3); err != nil {
		t.Fatal(err)
	}
	got, err = cl.reps[0].Score(ctx, probe)
	if err != nil {
		t.Fatalf("routed score after peer-behind bounce: %v", err)
	}
	if !scoresEqual(got, want) {
		t.Fatalf("score diverged through epoch push: %v want %v", got, want)
	}
	if e := cl.reps[1].Table().Epoch; e != t3.Epoch {
		t.Fatalf("peer did not accept the pushed table: epoch %d want %d", e, t3.Epoch)
	}
	if cl.reps[0].ClusterStats().EpochRejects == 0 {
		t.Fatal("epoch bounces left no trace in ClusterStats")
	}
}

// TestReplicaScoreManyRouted: the bulk path keeps Server.ScoreMany's
// positional partial-failure contract while routing each id to its owner.
func TestReplicaScoreManyRouted(t *testing.T) {
	cl := buildCluster(t, 3)
	ctx := context.Background()

	entry := cl.reps[2]
	if entry.ID() != 2 {
		t.Fatalf("ID() = %d want 2", entry.ID())
	}
	ids := make([]int64, 0, 13)
	for _, n := range cl.g.Nodes[:12] {
		ids = append(ids, n.ID)
	}
	// One id that no replica knows, owned by a peer so the error is
	// forwarded, decoded, and slotted at the right position.
	missing := int64(20_000_000)
	for entry.Table().OwnerOf(missing) == entry.ID() {
		missing++
	}
	ids = append(ids, missing)

	scores, errs := entry.ScoreMany(ctx, ids)
	if len(scores) != len(ids) || len(errs) != len(ids) {
		t.Fatalf("positional contract broken: %d/%d results for %d ids", len(scores), len(errs), len(ids))
	}
	for i, id := range ids[:12] {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", id, errs[i])
		}
		want, err := cl.ref.Score(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !scoresEqual(scores[i], want) {
			t.Fatalf("node %d routed score %v != reference %v", id, scores[i], want)
		}
	}
	if last := errs[len(errs)-1]; !errors.Is(last, ErrUnknownNode) {
		t.Fatalf("missing id error = %v, want ErrUnknownNode at its position", last)
	}
}
