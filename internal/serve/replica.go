package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/clockx"
	"agl/internal/consensus"
	"agl/internal/graph"
	"agl/internal/placement"
	"agl/internal/rpcx"
)

// This file is the sharded serving tier: a Replica wraps one Server and
// routes by the placement table, turning N aglserve processes into one
// cluster.
//
// Partitioning model. The GRAPH is fully replicated — every replica
// applies every mutation batch, because cold scoring needs arbitrary k-hop
// neighborhoods and those do not respect hash-slot boundaries. What is
// partitioned is the WARM state: each replica's embedding store, overlay,
// and score cache hold only the node ids whose hash slot it owns, so N
// replicas hold N-th of the warm tier each and run N independent batcher
// goroutines (the cold-path throughput multiplier).
//
// Request routing. Score/Apply for a non-owned id forward over rpcx to the
// owner, stamped with the router's placement epoch; the owner fences on
// epoch equality and rejects mismatches with placement.EpochError, which
// the router resolves by exchanging tables and retrying (bounded). Warm
// cross-shard link scoring is a two-replica scatter-gather: one Embed RPC
// per endpoint owner in parallel, then the pairwise head runs locally
// (models are replicated, ScoreVec is stateless).
//
// Mutation flow. A batch routes to the owner of its first mutation's
// primary node. The owner applies locally, appends the applied batch to
// its authority log (per-replica sequence, decoupled from graph versions
// so follower-applied batches never echo), and synchronously fans the log
// tail out to every peer before returning — the same catch-up-feed shape
// as MutationsSince, keyed by (owner, seq). Each follower applies the
// batch through its own Server.Apply, so the k-hop dependency BFS runs
// everywhere and invalidation is cluster-wide: after Apply returns, every
// replica serves scores consistent with the new graph.
//
// Migration. Migrate moves one slot from its owner to another replica
// under a cluster-wide WRITE freeze (reads never pause): freeze + drain
// in-flight applies everywhere, snapshot the slot's clean rows, install
// them at the destination, push the epoch-bumped table (destination
// first), drop the source rows, unfreeze. The freeze makes the snapshot
// quiescent; the epoch fence makes the handover atomic for routed
// requests; and a replica with a stale table that self-serves a dropped
// slot still answers correctly (the full graph is local and leftover rows
// stay invalidation-tracked) — just slower, until the push reaches it.
//
// Fault tolerance. With EnableConsensus (replica_consensus.go) the
// placement table is the FSM of a raft-replicated log: migrations and
// failovers commit as log entries, the leader's AppendEntries heartbeats
// double as the failure detector, and a replica that dies has its slots
// reassigned to survivors by a committed failover table — no operator
// re-seed. Proxied reads retry transport failures with jittered backoff
// and fail fast through a per-peer circuit breaker (typed ErrPeerDown →
// HTTP 503 + Retry-After at the edge).
//
// Known limits (documented, ROADMAP item): membership is fixed at boot
// (migration and failover move slots among the boot-time replica set; a
// dead member still counts toward raft quorum, so a 3-replica cluster
// tolerates exactly one failure), and a peer that stays unreachable past
// the authority log's capacity desyncs (counted in
// ClusterStats.FanoutErrors) until restarted from a fresh snapshot.

// replicaLogCap bounds the authority log, mirroring graph.DefaultLogCap.
const replicaLogCap = 1024

// routeRetries bounds epoch-fence retry loops; each retry exchanges
// tables with the rejecting peer, so a handful always converges outside
// of actual partitions.
const routeRetries = 4

// DefaultFreezeTTL is the migration write-freeze watchdog: every frozen
// replica thaws itself after this long even if the coordinator dies
// mid-migration, so a failed migration costs one bounded pause, not a
// wedged cluster.
const DefaultFreezeTTL = 10 * time.Second

// ---------------------------------------------------------------------------
// Wire types (gob over rpcx).

// ScoreArgs routes one Score to the owning replica.
type ScoreArgs struct {
	Epoch             uint64
	Node              int64
	DeadlineUnixNanos int64 // 0 = none
}

// ScoreReply carries the score vector back.
type ScoreReply struct{ Scores []float64 }

// EmbedArgs requests one layer-K embedding (link-scoring scatter).
type EmbedArgs struct {
	Epoch             uint64
	Node              int64
	DeadlineUnixNanos int64
}

// WireRow is the gob form of a Row: rows cross the cluster in their
// native codec, so a quantized replica's scatter-gather and migration
// payloads stay int8 on the wire (1 byte per dimension + 8 bytes of
// scale/zero instead of 8 bytes per dimension) and float rows stay
// bit-exact float64 — the cluster's bit-identical-serving invariant never
// rides through a lossy re-encode.
type WireRow struct {
	F []float64 // CodecF64 payload (nil for quantized rows)

	Q     []int8 // CodecQ8 payload
	Scale float32
	Zero  float32
}

// rowToWire flattens a Row for the RPC boundary (referencing, not
// copying — gob serializes immediately).
func rowToWire(r Row) WireRow {
	return WireRow{F: r.F64, Q: r.Q8, Scale: r.Scale, Zero: r.Zero}
}

// row re-types a WireRow; the decoded slices are owned by the receiver.
func (w WireRow) row() Row {
	if w.Q != nil {
		return Q8Row(w.Q, w.Scale, w.Zero)
	}
	return F64Row(w.F)
}

// wireRows converts a row map for the RPC boundary.
func wireRows(rows map[int64]Row) map[int64]WireRow {
	out := make(map[int64]WireRow, len(rows))
	for id, r := range rows {
		out[id] = rowToWire(r)
	}
	return out
}

// rowsFromWire re-types a received row map.
func rowsFromWire(rows map[int64]WireRow) map[int64]Row {
	out := make(map[int64]Row, len(rows))
	for id, w := range rows {
		out[id] = w.row()
	}
	return out
}

// EmbedReply carries the embedding back in its native codec.
type EmbedReply struct{ Row WireRow }

// ApplyArgs forwards a whole mutation batch to its owning replica.
type ApplyArgs struct {
	Epoch             uint64
	Muts              []graph.Mutation
	DeadlineUnixNanos int64
}

// ApplyReply is the gob-safe form of ApplyResult ("" = nil error).
type ApplyReply struct {
	Version     uint64
	Applied     int
	Invalidated int
	Errs        []string
}

// AuthEntry is one authority-log record: a batch this replica accepted as
// slot owner, under its own monotone sequence.
type AuthEntry struct {
	Seq  uint64
	Muts []graph.Mutation
}

// SyncArgs pushes the authority-log tail (FromSeq, last] to a follower.
type SyncArgs struct {
	From    int // owning replica id
	FromSeq uint64
	Entries []AuthEntry
}

// SyncReply acks the highest contiguously applied sequence.
type SyncReply struct{ AckSeq uint64 }

// InstallArgs delivers a migrating slot's clean warm rows in their native
// codecs.
type InstallArgs struct {
	Epoch uint64
	Slot  int
	Rows  map[int64]WireRow
}

// InstallReply reports how many rows were admitted.
type InstallReply struct{ Installed int }

// TableArgs pushes a placement table (adopted iff its epoch is newer).
type TableArgs struct{ Table *placement.Table }

// TableReply reports the receiver's epoch after the push (or fetch).
type TableReply struct {
	Epoch uint64
	Table *placement.Table
}

// FreezeArgs opens a write freeze with a watchdog TTL; the reply is sent
// only after in-flight authority applies drain.
type FreezeArgs struct{ TTLNanos int64 }

// NoArgs is the empty RPC body.
type NoArgs struct{}

// ---------------------------------------------------------------------------
// Error codec: typed serve errors flattened to tagged strings for the
// net/rpc boundary and re-typed on the caller, so HTTP status mapping
// (404/429/408/...) survives cross-replica forwarding.

const (
	wireUnknownNode = "serve/unknown-node:"
	wireNoEdgeHead  = "serve/no-edge-head:"
	wireClosed      = "serve/closed:"
	wireExpired     = "serve/expired:"
	wireShed        = "serve/shed:" // shed:<retryAfterNs>:<pending>:<limit>:
	wireDeadline    = "serve/deadline:"
	wireCanceled    = "serve/canceled:"
)

func errToWire(err error) error {
	if err == nil {
		return nil
	}
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		return fmt.Errorf("%s%d:%d:%d: %s", wireShed,
			shed.RetryAfter.Nanoseconds(), shed.Pending, shed.Limit, err)
	case errors.Is(err, ErrUnknownNode):
		return fmt.Errorf("%s %w", wireUnknownNode, err)
	case errors.Is(err, ErrNoEdgeHead):
		return fmt.Errorf("%s %w", wireNoEdgeHead, err)
	case errors.Is(err, ErrExpired):
		return fmt.Errorf("%s %w", wireExpired, err)
	case errors.Is(err, ErrClosed):
		return fmt.Errorf("%s %w", wireClosed, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%s %w", wireDeadline, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%s %w", wireCanceled, err)
	}
	return placement.EncodeError(err)
}

func errFromWire(err error) error {
	if err == nil {
		return nil
	}
	s := err.Error()
	if i := strings.Index(s, wireShed); i >= 0 {
		rest := s[i+len(wireShed):]
		parts := strings.SplitN(rest, ":", 4)
		if len(parts) == 4 {
			ra, e1 := strconv.ParseInt(parts[0], 10, 64)
			pend, e2 := strconv.Atoi(parts[1])
			lim, e3 := strconv.Atoi(parts[2])
			if e1 == nil && e2 == nil && e3 == nil {
				return &ShedError{RetryAfter: time.Duration(ra), Pending: pend, Limit: lim}
			}
		}
		return err
	}
	for _, m := range []struct {
		tag string
		err error
	}{
		{wireUnknownNode, ErrUnknownNode},
		{wireNoEdgeHead, ErrNoEdgeHead},
		{wireExpired, ErrExpired},
		{wireClosed, ErrClosed},
		{wireDeadline, context.DeadlineExceeded},
		{wireCanceled, context.Canceled},
	} {
		if strings.Contains(s, m.tag) {
			return fmt.Errorf("replica: %w", m.err)
		}
	}
	return placement.DecodeError(err)
}

// ---------------------------------------------------------------------------
// Write freezer.

// freezer gates NEW authority applies during migration; follower Sync
// applies are deliberately NOT gated (an in-flight authority apply must be
// able to finish its fan-out, or the drain below would deadlock).
//
// Its TTL watchdog runs on an injected clockx.Clock so timing tests
// advance a fake clock instead of sleeping out real TTLs.
type freezer struct {
	mu     sync.Mutex
	frozen bool
	thaw   chan struct{} // non-nil while frozen; closed on unfreeze
	timer  clockx.Timer
	start  time.Time
	clk    clockx.Clock // nil = real time

	inflight sync.WaitGroup // in-flight authority applies

	pausedNs atomic.Int64 // cumulative frozen time (metric)
}

// clock returns the injected time source (callers hold f.mu).
func (f *freezer) clock() clockx.Clock {
	if f.clk == nil {
		f.clk = clockx.Real{}
	}
	return f.clk
}

// enter blocks while frozen, then claims an in-flight slot.
func (f *freezer) enter(ctx context.Context) error {
	for {
		f.mu.Lock()
		if !f.frozen {
			f.inflight.Add(1)
			f.mu.Unlock()
			return nil
		}
		ch := f.thaw
		f.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (f *freezer) exit() { f.inflight.Done() }

// freeze opens the gate and DRAINS: it returns only once every in-flight
// authority apply (fan-out included) has finished, so post-freeze state is
// quiescent. The TTL watchdog thaws a replica whose coordinator died.
func (f *freezer) freeze(ttl time.Duration) {
	f.mu.Lock()
	clk := f.clock()
	if !f.frozen {
		f.frozen = true
		f.thaw = make(chan struct{})
		f.start = clk.Now()
	}
	if f.timer != nil {
		f.timer.Stop()
	}
	f.timer = clk.AfterFunc(ttl, f.unfreeze)
	f.mu.Unlock()
	f.inflight.Wait()
}

func (f *freezer) unfreeze() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.frozen {
		return
	}
	f.frozen = false
	f.pausedNs.Add(f.clock().Since(f.start).Nanoseconds())
	close(f.thaw)
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
}

// ---------------------------------------------------------------------------
// Replica.

// ClusterStats snapshots the cluster-layer counters of one replica.
type ClusterStats struct {
	ReplicaID    int    // this replica's index
	Epoch        uint64 // current placement epoch
	OwnedSlots   int    // slots owned under the current table
	AuthSeq      uint64 // authority-log high-water mark
	Forwards     int64  // requests forwarded to a peer (score/embed/apply)
	EpochRejects int64  // epoch-fence bounces seen as a caller
	FanoutErrors int64  // follower syncs that failed or partially acked
	PausedMs     int64  // cumulative write-freeze time on this replica

	// Consensus + cluster health (zero unless EnableConsensus).
	ConsensusOn      bool   // raft-backed placement active
	RaftLeader       string // known leader address ("" = none known)
	RaftIsLeader     bool   // this replica currently leads
	RaftTerm         uint64 // current raft term
	HeartbeatsMissed int64  // suspect-or-worse detector observations
	Failovers        int64  // committed failover tables proposed by this node
	ProxiedRetries   int64  // backoff retries on proxied reads (all peers)
	BreakerOpens     int64  // circuit-breaker open transitions (all peers)
}

// Replica is one member of a sharded serving cluster: a Server plus the
// placement-routed RPC fabric. Create with NewReplica (which binds the
// internal RPC listener), then Join with the cluster's placement table.
type Replica struct {
	id  int
	srv *Server

	rpc *rpcx.Server

	tmu   sync.RWMutex
	table *placement.Table
	peers []*rpcx.Client // indexed by replica id; nil at self

	frz freezer

	// Authority log (this replica as owner). amu is held across fan-out
	// RPCs to keep per-owner entries totally ordered; Sync handlers on the
	// receiving side use fmu, never amu, so cross-replica apply cycles
	// cannot deadlock.
	amu     sync.Mutex
	authSeq uint64
	authLog []AuthEntry
	cursors []uint64 // cursors[peer] = last seq acked by peer

	// Follower state (this replica as receiver of peers' authority logs).
	fmu     sync.Mutex
	applied []uint64 // applied[owner] = last seq applied from owner

	migrateMu sync.Mutex

	forwards     atomic.Int64
	epochRejects atomic.Int64
	fanoutErrs   atomic.Int64

	freezeTTL time.Duration
	closed    atomic.Bool

	// Consensus + failure detection (replica_consensus.go). nil unless
	// EnableConsensus was called.
	cns atomic.Pointer[replicaConsensus]
}

// NewReplica wraps srv as cluster member id and binds the internal RPC
// listener on listen ("127.0.0.1:0" picks an ephemeral port — read it back
// with Addr for table construction). The replica rejects traffic until
// Join installs a placement table.
func NewReplica(id int, srv *Server, listen string) (*Replica, error) {
	if id < 0 {
		return nil, fmt.Errorf("serve: replica id %d must be >= 0", id)
	}
	if srv == nil {
		return nil, errors.New("serve: nil server")
	}
	r := &Replica{id: id, srv: srv, freezeTTL: DefaultFreezeTTL}
	r.rpc = rpcx.NewServer()
	if err := r.rpc.Register("Replica", &replicaService{r: r}); err != nil {
		return nil, err
	}
	if _, err := r.rpc.Listen(listen); err != nil {
		return nil, err
	}
	return r, nil
}

// Addr returns the bound internal RPC address.
func (r *Replica) Addr() string { return r.rpc.Addr() }

// ID returns this replica's index.
func (r *Replica) ID() int { return r.id }

// Server exposes the wrapped local Server (stats, mutation feed, flight
// recorder — everything that is per-replica rather than cluster-routed).
func (r *Replica) Server() *Server { return r.srv }

// SetFreezeTTL overrides the migration freeze watchdog (tests).
func (r *Replica) SetFreezeTTL(d time.Duration) { r.freezeTTL = d }

// SetClock injects the time source driving the freeze-TTL watchdog (and
// any future replica-local timers), making timing tests deterministic.
// Call before the first freeze.
func (r *Replica) SetClock(clk clockx.Clock) {
	r.frz.mu.Lock()
	r.frz.clk = clk
	r.frz.mu.Unlock()
}

// Join installs the cluster's placement table and dials peers (lazily —
// peers need not be listening yet). The table must list this replica's
// bound address at index id.
func (r *Replica) Join(t *placement.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if r.id >= len(t.Replicas) {
		return fmt.Errorf("serve: replica id %d not in table of %d replicas", r.id, len(t.Replicas))
	}
	if t.Replicas[r.id] != r.Addr() {
		return fmt.Errorf("serve: table lists %q at index %d, but this replica is bound to %q",
			t.Replicas[r.id], r.id, r.Addr())
	}
	peers := make([]*rpcx.Client, len(t.Replicas))
	for i, addr := range t.Replicas {
		if i == r.id {
			continue
		}
		peers[i] = rpcx.NewClient(addr)
		// A dead peer costs one breaker cooldown, not a dial timeout per
		// request; routed reads fail fast with ErrPeerDown → HTTP 503.
		peers[i].SetBreaker(rpcx.DefaultBreakerThreshold, rpcx.DefaultBreakerCooldown)
	}
	r.tmu.Lock()
	r.table = t.Clone()
	r.peers = peers
	r.tmu.Unlock()

	r.amu.Lock()
	r.cursors = make([]uint64, len(t.Replicas))
	r.amu.Unlock()
	r.fmu.Lock()
	r.applied = make([]uint64, len(t.Replicas))
	r.fmu.Unlock()
	if r.srv != nil {
		r.srv.SetClusterHealth(r.clusterHealth)
	}
	return nil
}

// clusterHealth feeds the wrapped Server's flight recorder (AGLFR002
// cluster counters). Cumulative totals; the recorder computes deltas.
func (r *Replica) clusterHealth() ClusterHealth {
	var h ClusterHealth
	r.tmu.RLock()
	for _, p := range r.peers {
		if p != nil {
			h.ProxiedRetries += p.Retries()
			h.BreakerOpens += p.BreakerOpens()
		}
	}
	r.tmu.RUnlock()
	if c := r.cns.Load(); c != nil {
		h.HeartbeatsMissed = c.heartbeatsMissed.Load()
		h.Failovers = c.failovers.Load()
	}
	return h
}

// Table returns the replica's current placement table (a shared snapshot;
// treat as immutable).
func (r *Replica) Table() *placement.Table {
	r.tmu.RLock()
	defer r.tmu.RUnlock()
	return r.table
}

func (r *Replica) peerClient(peer int) *rpcx.Client {
	r.tmu.RLock()
	defer r.tmu.RUnlock()
	if peer < 0 || peer >= len(r.peers) {
		return nil
	}
	return r.peers[peer]
}

// Close tears the cluster fabric down: RPC listener, peer connections, and
// any freeze this replica holds. The wrapped Server is NOT closed — its
// lifetime belongs to the caller.
func (r *Replica) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	if c := r.cns.Load(); c != nil {
		c.close()
	}
	r.frz.unfreeze()
	r.rpc.Close()
	r.tmu.RLock()
	peers := r.peers
	r.tmu.RUnlock()
	for _, p := range peers {
		if p != nil {
			p.Close()
		}
	}
	return nil
}

// ClusterStats snapshots the cluster-layer counters.
func (r *Replica) ClusterStats() ClusterStats {
	t := r.Table()
	r.amu.Lock()
	seq := r.authSeq
	r.amu.Unlock()
	cs := ClusterStats{
		ReplicaID:    r.id,
		AuthSeq:      seq,
		Forwards:     r.forwards.Load(),
		EpochRejects: r.epochRejects.Load(),
		FanoutErrors: r.fanoutErrs.Load(),
		PausedMs:     r.frz.pausedNs.Load() / int64(time.Millisecond),
	}
	if t != nil {
		cs.Epoch = t.Epoch
		cs.OwnedSlots = len(t.SlotsOf(r.id))
	}
	r.tmu.RLock()
	for _, p := range r.peers {
		if p != nil {
			cs.ProxiedRetries += p.Retries()
			cs.BreakerOpens += p.BreakerOpens()
		}
	}
	r.tmu.RUnlock()
	if c := r.cns.Load(); c != nil {
		cs.ConsensusOn = true
		cs.RaftLeader, cs.RaftIsLeader = c.node.Leader()
		cs.RaftTerm = c.node.Term()
		cs.HeartbeatsMissed = c.heartbeatsMissed.Load()
		cs.Failovers = c.failovers.Load()
	}
	return cs
}

func (r *Replica) call(ctx context.Context, peer int, method string, args, reply any) error {
	c := r.peerClient(peer)
	if c == nil {
		return fmt.Errorf("serve: replica %d has no route to peer %d (Join not called?)", r.id, peer)
	}
	return errFromWire(c.Call(ctx, method, args, reply))
}

// callIdempotent is call with jittered-backoff retries for transport
// failures — routed reads only (the method must be safe to re-send).
// Exhausted retries surface as *rpcx.PeerDownError.
func (r *Replica) callIdempotent(ctx context.Context, peer int, method string, args, reply any) error {
	c := r.peerClient(peer)
	if c == nil {
		return fmt.Errorf("serve: replica %d has no route to peer %d (Join not called?)", r.id, peer)
	}
	return errFromWire(c.CallIdempotent(ctx, method, args, reply))
}

// SetChaos installs a fault-injection table on every peer client (nil
// removes it) — the aglbench chaos experiment's hook.
func (r *Replica) SetChaos(ch *rpcx.Chaos) {
	r.tmu.RLock()
	defer r.tmu.RUnlock()
	for _, p := range r.peers {
		if p != nil {
			p.SetChaos(ch)
		}
	}
}

// peerDownRetry reports whether a routed request that failed with
// ErrPeerDown should re-route: it waits briefly for a failover to
// reassign node away from the dead owner (the consensus FSM installs
// the new table asynchronously). Callers re-check ownership on retry.
func (r *Replica) peerDownRetry(ctx context.Context, node int64, owner, attempt int) bool {
	if attempt >= routeRetries {
		return false
	}
	const window, poll = 250 * time.Millisecond, 25 * time.Millisecond
	for waited := time.Duration(0); ; waited += poll {
		t := r.Table()
		if t != nil && t.OwnerOf(node) != owner {
			return true
		}
		if waited >= window {
			return false
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return false
		}
	}
}

// fence rejects requests stamped with a different placement epoch.
func (r *Replica) fence(epoch uint64) error {
	t := r.Table()
	if t == nil {
		return errors.New("serve: replica has no placement table")
	}
	if t.Epoch != epoch {
		return &placement.EpochError{Have: t.Epoch, Got: epoch}
	}
	return nil
}

// shouldRetryRoute handles an epoch-fence bounce: exchange tables with the
// rejecting peer (adopt theirs if newer, push ours if theirs is older) and
// signal one more routing attempt.
func (r *Replica) shouldRetryRoute(ctx context.Context, peer, attempt int, err error) bool {
	var ee *placement.EpochError
	if !errors.As(err, &ee) || attempt >= routeRetries {
		return false
	}
	r.epochRejects.Add(1)
	if ee.Have > ee.Got {
		// Peer is ahead: fetch its table.
		var reply TableReply
		if ferr := r.call(ctx, peer, "Replica.FetchTable", &NoArgs{}, &reply); ferr == nil && reply.Table != nil {
			r.adoptTable(reply.Table)
		}
	} else {
		// Peer is behind: push ours.
		var reply TableReply
		_ = r.call(ctx, peer, "Replica.PushTable", &TableArgs{Table: r.Table()}, &reply)
	}
	// Brief backoff so a mid-push window settles before the next attempt.
	select {
	case <-time.After(time.Duration(attempt+1) * 2 * time.Millisecond):
	case <-ctx.Done():
		return false
	}
	return true
}

// adoptTable installs t iff it is strictly newer than the current table.
func (r *Replica) adoptTable(t *placement.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.tmu.Lock()
	defer r.tmu.Unlock()
	if r.table == nil || t.Epoch > r.table.Epoch {
		r.table = t.Clone()
	}
	return nil
}

func deadlineArg(ctx context.Context) int64 {
	if d, ok := ctx.Deadline(); ok {
		return d.UnixNano()
	}
	return 0
}

func ctxFor(deadlineNanos int64) (context.Context, context.CancelFunc) {
	if deadlineNanos <= 0 {
		return context.Background(), func() {}
	}
	return context.WithDeadline(context.Background(), time.Unix(0, deadlineNanos))
}

// ---------------------------------------------------------------------------
// Routed request paths.

// Score routes one node score to its owning replica (or serves it locally
// when this replica owns the id), retrying through epoch-fence bounces.
func (r *Replica) Score(ctx context.Context, node int64) ([]float64, error) {
	for attempt := 0; ; attempt++ {
		t := r.Table()
		if t == nil {
			return nil, errors.New("serve: replica has no placement table")
		}
		owner := t.OwnerOf(node)
		if owner == r.id {
			return r.srv.Score(ctx, node)
		}
		r.forwards.Add(1)
		var reply ScoreReply
		err := r.callIdempotent(ctx, owner, "Replica.Score",
			&ScoreArgs{Epoch: t.Epoch, Node: node, DeadlineUnixNanos: deadlineArg(ctx)}, &reply)
		if err == nil {
			return reply.Scores, nil
		}
		if errors.Is(err, rpcx.ErrPeerDown) {
			if r.peerDownRetry(ctx, node, owner, attempt) {
				continue // failover moved the slot; re-route
			}
			return nil, err
		}
		if !r.shouldRetryRoute(ctx, owner, attempt, err) {
			return nil, err
		}
	}
}

// ScoreMany routes a bulk request node by node (each to its owner), with
// the same positional partial-failure contract as Server.ScoreMany.
func (r *Replica) ScoreMany(ctx context.Context, nodes []int64) ([][]float64, []error) {
	out := make([][]float64, len(nodes))
	errs := make([]error, len(nodes))
	sem := make(chan struct{}, 4*r.srv.cfg.MaxBatch)
	var wg sync.WaitGroup
	for i, id := range nodes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id int64) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = r.Score(ctx, id)
		}(i, id)
	}
	wg.Wait()
	return out, errs
}

// EmbedRow resolves one endpoint row from its owner (local or remote) in
// the owner's stored codec.
func (r *Replica) EmbedRow(ctx context.Context, node int64) (Row, error) {
	for attempt := 0; ; attempt++ {
		t := r.Table()
		if t == nil {
			return Row{}, errors.New("serve: replica has no placement table")
		}
		owner := t.OwnerOf(node)
		if owner == r.id {
			return r.srv.EmbedRow(ctx, node)
		}
		r.forwards.Add(1)
		var reply EmbedReply
		err := r.callIdempotent(ctx, owner, "Replica.Embed",
			&EmbedArgs{Epoch: t.Epoch, Node: node, DeadlineUnixNanos: deadlineArg(ctx)}, &reply)
		if err == nil {
			return reply.Row.row(), nil
		}
		if errors.Is(err, rpcx.ErrPeerDown) {
			if r.peerDownRetry(ctx, node, owner, attempt) {
				continue
			}
			return Row{}, err
		}
		if !r.shouldRetryRoute(ctx, owner, attempt, err) {
			return Row{}, err
		}
	}
}

// Embed resolves one endpoint embedding from its owner, decoded to
// float64s the caller owns.
func (r *Replica) Embed(ctx context.Context, node int64) ([]float64, error) {
	row, err := r.EmbedRow(ctx, node)
	if err != nil {
		return nil, err
	}
	return row.Floats(nil), nil
}

// ScoreLink scores the (src, dst) pair cluster-wide: both endpoints on
// this replica short-circuits to the local fast path; otherwise the two
// endpoint embeddings are gathered from their owners in parallel (the
// scatter) and the replicated pairwise head scores them locally (the
// gather). Consistency matches the single-process contract: each endpoint
// embedding is individually consistent with a committed graph version.
func (r *Replica) ScoreLink(ctx context.Context, src, dst int64) (float64, error) {
	t := r.Table()
	if t == nil {
		return 0, errors.New("serve: replica has no placement table")
	}
	if t.OwnerOf(src) == r.id && t.OwnerOf(dst) == r.id {
		return r.srv.ScoreLink(ctx, src, dst)
	}
	var hs, hd Row
	var es, ed error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); hs, es = r.EmbedRow(ctx, src) }()
	go func() { defer wg.Done(); hd, ed = r.EmbedRow(ctx, dst) }()
	wg.Wait()
	if es != nil {
		return 0, es
	}
	if ed != nil {
		return 0, ed
	}
	return r.srv.ScoreVecLink(ctx, hs, hd)
}

// primaryNode is the id a mutation batch routes by: the mutated node for
// node ops, the edge head (Dst — the invalidation seed) for edge ops.
func primaryNode(m graph.Mutation) int64 {
	switch m.Op {
	case graph.OpAddEdge, graph.OpRemoveEdge:
		return m.Dst
	}
	return m.ID
}

// Apply routes a whole mutation batch to the owner of its first mutation's
// primary node; the owner applies, logs, and synchronously fans out to
// every peer before returning, so on success the mutation is visible (and
// its invalidations applied) cluster-wide.
func (r *Replica) Apply(ctx context.Context, muts []graph.Mutation) (*ApplyResult, error) {
	if len(muts) == 0 {
		return r.srv.Apply(ctx, muts)
	}
	for attempt := 0; ; attempt++ {
		t := r.Table()
		if t == nil {
			return nil, errors.New("serve: replica has no placement table")
		}
		owner := t.OwnerOf(primaryNode(muts[0]))
		if owner == r.id {
			return r.applyAsOwner(ctx, muts)
		}
		r.forwards.Add(1)
		var reply ApplyReply
		err := r.call(ctx, owner, "Replica.Apply",
			&ApplyArgs{Epoch: t.Epoch, Muts: muts, DeadlineUnixNanos: deadlineArg(ctx)}, &reply)
		if err == nil {
			return reply.toResult(), nil
		}
		// A breaker-open fail-fast means nothing was sent, so re-routing
		// a write after failover is safe (an ambiguous mid-call transport
		// error is NOT retried — Apply is not idempotent).
		var pd *rpcx.PeerDownError
		if errors.As(err, &pd) {
			if r.peerDownRetry(ctx, primaryNode(muts[0]), owner, attempt) {
				continue
			}
			return nil, err
		}
		if !r.shouldRetryRoute(ctx, owner, attempt, err) {
			return nil, err
		}
	}
}

func (r *Replica) applyAsOwner(ctx context.Context, muts []graph.Mutation) (*ApplyResult, error) {
	if err := r.frz.enter(ctx); err != nil {
		return nil, err
	}
	defer r.frz.exit()
	res, err := r.srv.Apply(ctx, muts)
	if err != nil || res.Applied == 0 {
		return res, err
	}
	applied := make([]graph.Mutation, 0, res.Applied)
	for i := range muts {
		if res.Errs[i] == nil {
			applied = append(applied, muts[i])
		}
	}
	// Log + fan out under amu: per-owner entries stay totally ordered and
	// every peer acks before Apply returns. Fan-out runs on its own clock
	// (not the caller's deadline): a caller timeout must not leave peers
	// behind on a batch that already committed locally.
	r.amu.Lock()
	defer r.amu.Unlock()
	r.authSeq++
	r.authLog = append(r.authLog, AuthEntry{Seq: r.authSeq, Muts: applied})
	r.trimAuthLogLocked()
	fctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r.fanoutLocked(fctx)
	return res, err
}

// trimAuthLogLocked drops entries every peer has acked, hard-capped at
// replicaLogCap (an unreachable peer then desyncs — counted, documented).
func (r *Replica) trimAuthLogLocked() {
	minAck := r.authSeq
	for p := range r.cursors {
		if p == r.id {
			continue
		}
		if r.cursors[p] < minAck {
			minAck = r.cursors[p]
		}
	}
	keepFrom := 0
	for keepFrom < len(r.authLog) && r.authLog[keepFrom].Seq <= minAck {
		keepFrom++
	}
	if over := len(r.authLog) - keepFrom - replicaLogCap; over > 0 {
		keepFrom += over
	}
	if keepFrom > 0 {
		r.authLog = append([]AuthEntry(nil), r.authLog[keepFrom:]...)
	}
}

// fanoutLocked pushes the authority-log tail to every peer (amu held).
func (r *Replica) fanoutLocked(ctx context.Context) {
	r.tmu.RLock()
	n := len(r.peers)
	r.tmu.RUnlock()
	for p := 0; p < n; p++ {
		if p == r.id {
			continue
		}
		r.syncPeerLocked(ctx, p)
	}
}

func (r *Replica) syncPeerLocked(ctx context.Context, p int) {
	cursor := r.cursors[p]
	var ents []AuthEntry
	for _, e := range r.authLog {
		if e.Seq > cursor {
			ents = append(ents, e)
		}
	}
	if len(ents) == 0 {
		return
	}
	if ents[0].Seq != cursor+1 {
		// The log was trimmed past this peer's cursor: it cannot be caught
		// up incrementally anymore.
		r.fanoutErrs.Add(1)
		return
	}
	var reply SyncReply
	if err := r.call(ctx, p, "Replica.Sync",
		&SyncArgs{From: r.id, FromSeq: cursor, Entries: ents}, &reply); err != nil {
		r.fanoutErrs.Add(1)
		return
	}
	if reply.AckSeq > r.cursors[p] {
		r.cursors[p] = reply.AckSeq
	}
	if reply.AckSeq < ents[len(ents)-1].Seq {
		r.fanoutErrs.Add(1)
	}
}

func (rep *ApplyReply) toResult() *ApplyResult {
	res := &ApplyResult{
		Version:     rep.Version,
		Applied:     rep.Applied,
		Invalidated: rep.Invalidated,
		Errs:        make([]error, len(rep.Errs)),
	}
	for i, s := range rep.Errs {
		if s != "" {
			res.Errs[i] = errors.New(s)
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Migration.

// MigrateResult summarizes one completed slot migration.
type MigrateResult struct {
	Slot      int           `json:"slot"`
	From      int           `json:"from"`
	To        int           `json:"to"`
	Epoch     uint64        `json:"epoch"`      // placement epoch after the move
	RowsMoved int           `json:"rows_moved"` // clean warm rows installed at the destination
	Pause     time.Duration `json:"pause_ns"`   // cluster write-freeze duration
}

// Migrate moves one slot from this replica (which must own it) to dst,
// live: reads keep flowing the whole time (routed reads bounce off the
// epoch fence for at most the table-push window), writes pause for the
// freeze-snapshot-install-push sequence, and the result is bit-identical
// serving — the destination answers warm from the installed rows, and
// every row a concurrent-looking mutation could have touched was already
// dirty (excluded from the snapshot) or is invalidated by the normal
// fan-out after the thaw.
func (r *Replica) Migrate(ctx context.Context, slot, dst int) (*MigrateResult, error) {
	r.migrateMu.Lock()
	defer r.migrateMu.Unlock()

	t := r.Table()
	if t == nil {
		return nil, errors.New("serve: replica has no placement table")
	}
	if slot < 0 || slot >= t.Slots() {
		return nil, fmt.Errorf("serve: slot %d out of range [0,%d)", slot, t.Slots())
	}
	if t.Owner(slot) != r.id {
		return nil, fmt.Errorf("serve: replica %d does not own slot %d (owner is %d)", r.id, slot, t.Owner(slot))
	}
	if dst == r.id {
		return nil, fmt.Errorf("serve: slot %d already lives on replica %d", slot, dst)
	}
	if dst < 0 || dst >= len(t.Replicas) {
		return nil, fmt.Errorf("serve: destination %d out of range [0,%d)", dst, len(t.Replicas))
	}

	next, err := t.WithOwner(slot, dst)
	if err != nil {
		return nil, err
	}

	// 1. Cluster-wide write freeze + drain. Self first (stop producing),
	// then peers; each Freeze reply means that replica is drained.
	pauseStart := time.Now()
	r.frz.freeze(r.freezeTTL)
	for p := 0; p < len(t.Replicas); p++ {
		if p == r.id {
			continue
		}
		if err := r.call(ctx, p, "Replica.Freeze", &FreezeArgs{TTLNanos: int64(r.freezeTTL)}, &struct{}{}); err != nil {
			r.unfreezeAll(t)
			return nil, fmt.Errorf("serve: freeze replica %d: %w", p, err)
		}
	}

	// 2. Quiescent snapshot of the slot's clean warm rows.
	rows := r.srv.RowsInSlot(slot, t.Slots(), placement.SlotOf)

	// 3. Install at the destination (old epoch — the handover hasn't
	// happened yet).
	var ir InstallReply
	if err := r.call(ctx, dst, "Replica.Install",
		&InstallArgs{Epoch: t.Epoch, Slot: slot, Rows: wireRows(rows)}, &ir); err != nil {
		r.unfreezeAll(t)
		return nil, fmt.Errorf("serve: install slot %d on replica %d: %w", slot, dst, err)
	}

	// 4. Commit the epoch-bumped table. With consensus enabled it is
	// proposed as a raft log entry first — the handover is then durable
	// (it survives this coordinator crashing right here) — and the
	// direct pushes below become best-effort accelerators for replicas
	// that have not seen the commit yet. Without consensus the pushes
	// ARE the handover (PR-8 behavior).
	if c := r.cns.Load(); c != nil {
		if err := c.proposeTable(ctx, next); err != nil {
			r.unfreezeAll(t)
			return nil, fmt.Errorf("serve: commit table epoch %d: %w", next.Epoch, err)
		}
	}
	// Push destination first (it must accept routed traffic the moment
	// anyone routes by the new table), then the rest, self last. A
	// replica the push misses keeps bouncing routed requests off the
	// fence until the retry exchange (or the raft commit) delivers it.
	if err := r.call(ctx, dst, "Replica.PushTable", &TableArgs{Table: next}, &TableReply{}); err != nil {
		if r.cns.Load() == nil {
			// Destination never learned it owns the slot — abort (rows
			// installed there are harmless: overlay rows are invalidation-
			// tracked and it owns none of them for routing).
			r.unfreezeAll(t)
			return nil, fmt.Errorf("serve: push table to replica %d: %w", dst, err)
		}
		// Already raft-committed: the destination learns through the log.
		r.fanoutErrs.Add(1)
	}
	for p := 0; p < len(t.Replicas); p++ {
		if p == r.id || p == dst {
			continue
		}
		if err := r.call(ctx, p, "Replica.PushTable", &TableArgs{Table: next}, &TableReply{}); err != nil {
			r.fanoutErrs.Add(1) // fence + retry exchange will converge it
		}
	}
	if err := r.adoptTable(next); err != nil {
		r.unfreezeAll(next)
		return nil, err
	}

	// 5. Drop the moved rows locally (hygiene — leftover base-store rows
	// stay invalidation-tracked and are never routed to).
	r.srv.DropRows(func(id int64) bool { return placement.SlotOf(id, next.Slots()) == slot })

	// 6. Thaw.
	r.unfreezeAll(next)
	return &MigrateResult{
		Slot:      slot,
		From:      r.id,
		To:        dst,
		Epoch:     next.Epoch,
		RowsMoved: ir.Installed,
		Pause:     time.Since(pauseStart),
	}, nil
}

// unfreezeAll thaws self and every peer (best effort — the TTL watchdog
// covers a peer the call cannot reach).
func (r *Replica) unfreezeAll(t *placement.Table) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for p := 0; p < len(t.Replicas); p++ {
		if p == r.id {
			continue
		}
		_ = r.call(ctx, p, "Replica.Unfreeze", &NoArgs{}, &struct{}{})
	}
	r.frz.unfreeze()
}

// ---------------------------------------------------------------------------
// RPC service (the callee side of everything above).

type replicaService struct{ r *Replica }

func (rs *replicaService) Score(args *ScoreArgs, reply *ScoreReply) error {
	r := rs.r
	if err := r.fence(args.Epoch); err != nil {
		return errToWire(err)
	}
	ctx, cancel := ctxFor(args.DeadlineUnixNanos)
	defer cancel()
	scores, err := r.srv.Score(ctx, args.Node)
	if err != nil {
		return errToWire(err)
	}
	reply.Scores = scores
	return nil
}

func (rs *replicaService) Embed(args *EmbedArgs, reply *EmbedReply) error {
	r := rs.r
	if err := r.fence(args.Epoch); err != nil {
		return errToWire(err)
	}
	ctx, cancel := ctxFor(args.DeadlineUnixNanos)
	defer cancel()
	row, err := r.srv.EmbedRow(ctx, args.Node)
	if err != nil {
		return errToWire(err)
	}
	reply.Row = rowToWire(row)
	return nil
}

func (rs *replicaService) Apply(args *ApplyArgs, reply *ApplyReply) error {
	r := rs.r
	if err := r.fence(args.Epoch); err != nil {
		return errToWire(err)
	}
	ctx, cancel := ctxFor(args.DeadlineUnixNanos)
	defer cancel()
	// Ownership is the caller's routing decision; fencing guaranteed we
	// agree on the table, so apply as owner here.
	res, err := r.applyAsOwner(ctx, args.Muts)
	if err != nil {
		return errToWire(err)
	}
	reply.Version = res.Version
	reply.Applied = res.Applied
	reply.Invalidated = res.Invalidated
	reply.Errs = make([]string, len(res.Errs))
	for i, e := range res.Errs {
		if e != nil {
			reply.Errs[i] = e.Error()
		}
	}
	return nil
}

// Sync applies a peer's authority-log tail. Not epoch-fenced (catch-up
// must flow across epoch changes) and not freeze-gated (see freezer).
func (rs *replicaService) Sync(args *SyncArgs, reply *SyncReply) error {
	r := rs.r
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if args.From < 0 || args.From >= len(r.applied) {
		return errToWire(fmt.Errorf("serve: sync from unknown replica %d", args.From))
	}
	last := r.applied[args.From]
	for _, e := range args.Entries {
		if e.Seq <= last {
			continue // duplicate delivery — idempotent
		}
		if e.Seq != last+1 {
			break // gap: ack what we have, owner re-sends from there
		}
		if _, err := r.srv.Apply(context.Background(), e.Muts); err != nil {
			break
		}
		last = e.Seq
	}
	r.applied[args.From] = last
	reply.AckSeq = last
	return nil
}

func (rs *replicaService) Install(args *InstallArgs, reply *InstallReply) error {
	r := rs.r
	if err := r.fence(args.Epoch); err != nil {
		return errToWire(err)
	}
	reply.Installed = r.srv.InstallRows(rowsFromWire(args.Rows))
	return nil
}

func (rs *replicaService) PushTable(args *TableArgs, reply *TableReply) error {
	r := rs.r
	if args.Table == nil {
		return errToWire(errors.New("serve: nil table push"))
	}
	if err := r.adoptTable(args.Table); err != nil {
		return errToWire(err)
	}
	reply.Epoch = r.Table().Epoch
	return nil
}

func (rs *replicaService) FetchTable(_ *NoArgs, reply *TableReply) error {
	t := rs.r.Table()
	if t == nil {
		return errToWire(errors.New("serve: replica has no placement table"))
	}
	reply.Epoch = t.Epoch
	reply.Table = t.Clone()
	return nil
}

// Freeze opens the write freeze and replies only after this replica's
// in-flight authority applies drain (the coordinator's quiescence point).
func (rs *replicaService) Freeze(args *FreezeArgs, _ *struct{}) error {
	ttl := time.Duration(args.TTLNanos)
	if ttl <= 0 {
		ttl = DefaultFreezeTTL
	}
	rs.r.frz.freeze(ttl)
	return nil
}

func (rs *replicaService) Unfreeze(_ *NoArgs, _ *struct{}) error {
	rs.r.frz.unfreeze()
	return nil
}

// RaftVote delivers a raft RequestVote to this replica's consensus node.
func (rs *replicaService) RaftVote(args *consensus.VoteArgs, reply *consensus.VoteReply) error {
	c := rs.r.cns.Load()
	if c == nil {
		return errToWire(errors.New("serve: consensus not enabled"))
	}
	c.node.HandleRequestVote(args, reply)
	return nil
}

// RaftAppend delivers a raft AppendEntries (also the heartbeat).
func (rs *replicaService) RaftAppend(args *consensus.AppendArgs, reply *consensus.AppendReply) error {
	c := rs.r.cns.Load()
	if c == nil {
		return errToWire(errors.New("serve: consensus not enabled"))
	}
	c.node.HandleAppendEntries(args, reply)
	return nil
}

// ProposeTable accepts a forwarded placement proposal (a non-leader
// coordinator routes its table here, to the raft leader).
func (rs *replicaService) ProposeTable(args *TableArgs, reply *TableReply) error {
	r := rs.r
	c := r.cns.Load()
	if c == nil {
		return errToWire(errors.New("serve: consensus not enabled"))
	}
	if args.Table == nil {
		return errToWire(errors.New("serve: nil table proposal"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), proposeTimeout)
	defer cancel()
	if err := c.proposeLocal(ctx, args.Table); err != nil {
		return errToWire(err)
	}
	reply.Epoch = args.Table.Epoch
	return nil
}
