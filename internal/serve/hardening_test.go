package serve

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"agl/internal/core"
	"agl/internal/graph"
)

// hardenedServer builds a server where the first half of the graph's nodes
// are warm (in the store) and the second half are cold, with a tiny
// admission cap so overload is easy to provoke.
func hardenedServer(t *testing.T, cfg Config) (*Server, []int64, []int64) {
	t.Helper()
	g, model, res := testGraph(t)
	ids := make([]int64, 0, len(res.Embeddings))
	for id := range res.Embeddings {
		ids = append(ids, id)
	}
	warm := make(map[int64][]float64, len(ids)/2)
	var warmIDs, coldIDs []int64
	for i, id := range ids {
		if i%2 == 0 {
			warm[id] = res.Embeddings[id]
			warmIDs = append(warmIDs, id)
		} else {
			coldIDs = append(coldIDs, id)
		}
	}
	store, err := NewStore(0, warm)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, warmIDs, coldIDs
}

// TestOverloadShedsColdNeverWarm saturates the cold path far past the
// admission cap while warm traffic runs concurrently, and asserts the
// overload contract: cold requests shed explicitly (ShedError unwrapping
// ErrOverloaded, with a usable retry hint), warm requests always succeed,
// and the admission gauge returns to zero when the storm passes. Run it
// with -race: the shed path, inline warm path, and batcher all overlap.
func TestOverloadShedsColdNeverWarm(t *testing.T) {
	srv, warmIDs, coldIDs := hardenedServer(t, Config{
		Seed: 1, MaxBatch: 4, QueueDepth: 4, ShedThreshold: 2,
		FlightInterval: -1, // recorder off: this test is about admission
	})

	// Phase 1: hold both admission slots so the cold path is saturated for
	// the whole storm — deterministically, not at the scheduler's whim.
	for i := 0; i < 2; i++ {
		if err := srv.adm.admit(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var shedCount atomic.Int64
	half := len(coldIDs) / 2
	for _, id := range coldIDs[:half] {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			_, err := srv.Score(context.Background(), id)
			if !errors.Is(err, ErrOverloaded) {
				t.Errorf("cold node %d at full saturation: err = %v, want ErrOverloaded", id, err)
				return
			}
			var shed *ShedError
			if !errors.As(err, &shed) {
				t.Errorf("overloaded error is not a *ShedError: %v", err)
				return
			}
			if shed.RetryAfter <= 0 {
				t.Errorf("shed with non-positive RetryAfter: %+v", shed)
			}
			if shed.Limit != 2 {
				t.Errorf("shed reports limit %d, want 2", shed.Limit)
			}
			shedCount.Add(1)
		}(id)
	}
	// Warm traffic throughout the storm: must never shed, never fail.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := warmIDs[(w*50+i)%len(warmIDs)]
				if _, err := srv.Score(context.Background(), id); err != nil {
					t.Errorf("warm node %d failed under cold overload: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	srv.adm.release()
	srv.adm.release()

	st := srv.Stats()
	if got := shedCount.Load(); got != int64(half) {
		t.Fatalf("%d/%d cold requests shed at full saturation, want all", got, half)
	}
	if st.Shed != shedCount.Load() {
		t.Fatalf("Stats.Shed = %d, callers saw %d", st.Shed, shedCount.Load())
	}
	if st.Warm == 0 {
		t.Fatal("no warm requests recorded")
	}

	// Phase 2: saturation lifted — the same traffic is admitted again and
	// the pending gauge returns to zero once it drains.
	for _, id := range coldIDs[half:] {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			if _, err := srv.Score(context.Background(), id); err != nil && !errors.Is(err, ErrOverloaded) {
				t.Errorf("cold node %d after release: unexpected error %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	st = srv.Stats()
	if st.Cold == 0 {
		t.Fatal("no cold request was admitted after saturation lifted")
	}
	if st.ColdPending != 0 {
		t.Fatalf("ColdPending = %d after traffic drained, want 0", st.ColdPending)
	}
}

// TestExpiredDroppedBeforeForwardPass drives the batcher's deadline triage
// directly: a call whose deadline has already passed must resolve
// ErrExpired without the forward pass running for it, while its live
// batchmate is served normally.
func TestExpiredDroppedBeforeForwardPass(t *testing.T) {
	srv, _, coldIDs := hardenedServer(t, Config{Seed: 1, FlightInterval: -1})

	dead := &call{id: coldIDs[0], done: make(chan struct{}), enq: time.Now()}
	dead.deadline.Store(time.Now().Add(-time.Millisecond).UnixNano())
	live := &call{id: coldIDs[1], done: make(chan struct{}), enq: time.Now()}
	live.deadline.Store(noDeadline)

	coldBefore := srv.cold.Load()
	srv.process([]*call{dead, live})

	if !errors.Is(dead.err, ErrExpired) || !errors.Is(dead.err, context.DeadlineExceeded) {
		t.Fatalf("expired call err = %v, want ErrExpired (a context.DeadlineExceeded)", dead.err)
	}
	if dead.scores != nil {
		t.Fatal("expired call was scored anyway")
	}
	if live.err != nil || live.scores == nil {
		t.Fatalf("live batchmate: err=%v scores=%v", live.err, live.scores)
	}
	if got := srv.cold.Load() - coldBefore; got != 1 {
		t.Fatalf("cold counter advanced by %d, want 1 (expired call must not reach the forward pass)", got)
	}
	if srv.expired.Load() != 1 {
		t.Fatalf("expired counter = %d, want 1", srv.expired.Load())
	}
}

// TestNoResultServedPastDeadline issues cold requests with deadlines far
// shorter than a cold computation and asserts none ever returns a score —
// whichever way the race between compute and deadline lands, the caller
// gets a deadline error, never a late success.
func TestNoResultServedPastDeadline(t *testing.T) {
	srv, _, coldIDs := hardenedServer(t, Config{Seed: 1, FlightInterval: -1})
	for _, id := range coldIDs[:20] {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Microsecond)
		scores, err := srv.Score(ctx, id)
		cancel()
		if err == nil || scores != nil {
			t.Fatalf("node %d: served past a 10µs deadline (err=%v)", id, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("node %d: err = %v, want context.DeadlineExceeded", id, err)
		}
	}
}

// TestWarmStaysInlineUnderColdSaturation pins the architectural guarantee
// behind the overload experiment: a warm request completes without ever
// entering the cold queue, so it cannot be stuck behind a saturated
// batcher. We saturate admission completely (threshold 1, slow cold work
// outstanding) and require warm scoring to still finish quickly.
func TestWarmStaysInlineUnderColdSaturation(t *testing.T) {
	srv, warmIDs, coldIDs := hardenedServer(t, Config{
		Seed: 1, MaxBatch: 1, QueueDepth: 1, ShedThreshold: 1,
		FlightInterval: -1,
	})
	// Keep the single admission slot permanently busy.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.Score(context.Background(), coldIDs[i%len(coldIDs)])
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for i, id := range warmIDs {
		if _, err := srv.Score(context.Background(), id); err != nil {
			t.Fatalf("warm node %d failed: %v", id, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm traffic crawled: only %d/%d served in 10s under cold saturation", i+1, len(warmIDs))
		}
	}
	close(stop)
	wg.Wait()
	if st := srv.Stats(); st.Warm < int64(len(warmIDs)) {
		t.Fatalf("Warm = %d, want >= %d (inline path must not be bypassed)", st.Warm, len(warmIDs))
	}
}

// TestFlightRecorderCoversTraffic runs mixed traffic with a fast recorder
// and asserts the dump parses, spans the run, and its counter totals agree
// with the server's own accounting.
func TestFlightRecorderCoversTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.aglfr")
	srv, warmIDs, coldIDs := hardenedServer(t, Config{
		Seed: 1, FlightPath: path, FlightInterval: 5 * time.Millisecond, FlightSlots: 4096,
	})
	start := time.Now()
	for i := 0; i < 3; i++ {
		for _, id := range warmIDs[:30] {
			if _, err := srv.Score(context.Background(), id); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range coldIDs[:10] {
			if _, err := srv.Score(context.Background(), id); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(12 * time.Millisecond)
	}
	elapsed := time.Since(start)
	st := srv.Stats()
	srv.Close() // appends the final sample and closes the file

	samples, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("only %d samples for a %s run at 5ms interval", len(samples), elapsed)
	}
	span := time.Duration(samples[len(samples)-1].UnixNanos - samples[0].UnixNanos)
	if span <= 0 {
		t.Fatalf("samples do not advance in time: span %s", span)
	}
	var reqs, warm, cold int64
	for _, s := range samples {
		reqs += int64(s.Requests)
		warm += int64(s.Warm)
		cold += int64(s.Cold)
	}
	if reqs != st.Requests+st.LinkRequests {
		t.Fatalf("flight requests total %d != served %d", reqs, st.Requests+st.LinkRequests)
	}
	if warm != st.Warm+st.LinkWarm || cold != st.Cold+st.LinkCold {
		t.Fatalf("flight warm/cold %d/%d != stats %d/%d", warm, cold, st.Warm, st.Cold)
	}
	if got := srv.Flight(); len(got) != len(samples) {
		t.Fatalf("in-memory ring has %d samples, file %d", len(got), len(samples))
	}
}

// TestServeConfigValidationError table-tests the typed validation errors:
// every rejected ServeConfig field surfaces as a *core.ValidationError with
// the qualified public field name, so callers can branch programmatically.
func TestServeConfigValidationError(t *testing.T) {
	cases := []struct {
		cfg   Config
		field string
	}{
		{Config{Hops: -1}, "ServeConfig.Hops"},
		{Config{MaxNeighbors: -1}, "ServeConfig.MaxNeighbors"},
		{Config{CacheSize: -1}, "ServeConfig.CacheSize"},
		{Config{MaxBatch: -1}, "ServeConfig.MaxBatch"},
		{Config{MaxWait: -time.Second}, "ServeConfig.MaxWait"},
		{Config{QueueDepth: -1}, "ServeConfig.QueueDepth"},
		{Config{ShedThreshold: -1}, "ServeConfig.ShedThreshold"},
		{Config{FlightSlots: -1}, "ServeConfig.FlightSlots"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Fatalf("%s: invalid config accepted", tc.field)
		}
		var verr *core.ValidationError
		if !errors.As(err, &verr) {
			t.Fatalf("%s: error %T is not a *core.ValidationError", tc.field, err)
		}
		if verr.Field != tc.field {
			t.Fatalf("Field = %q, want %q", verr.Field, tc.field)
		}
		if verr.Reason == "" {
			t.Fatalf("%s: empty Reason", tc.field)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

// TestApplyContext covers the context-first Apply: a cancelled context
// aborts before committing, a live one commits normally.
func TestApplyContext(t *testing.T) {
	g, model, res := testGraph(t)
	store, err := NewStore(0, res.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 1, FlightInterval: -1}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Apply(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Apply with cancelled ctx: err = %v, want context.Canceled", err)
	}

	feat := make([]float64, g.FeatureDim())
	for i := range feat {
		feat[i] = float64(i)
	}
	ar, err := srv.Apply(context.Background(), []graph.Mutation{graph.UpdateNodeFeat(0, feat)})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Applied != 1 {
		t.Fatalf("Apply applied %d, want 1", ar.Applied)
	}
}
