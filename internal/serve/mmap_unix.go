//go:build unix

package serve

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps f read-only. The second return reports whether the bytes
// are a real mapping (and must go back through munmapFile) as opposed to
// a heap buffer.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size > math.MaxInt32 && strconv64bit == 32 {
		return nil, false, fmt.Errorf("file too large to map on a 32-bit platform (%d bytes)", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }

// strconv64bit is 64 on 64-bit platforms, 32 on 32-bit ones.
const strconv64bit = 32 << (^uint(0) >> 63)
