package serve

import (
	"fmt"
	"os"
)

// Store backend names accepted by StoreSpec.Backend.
const (
	BackendMem   = "mem"   // heap-resident MemStore (AGLEMB02)
	BackendMmap  = "mmap"  // mmap'd MappedStore (AGLMAP01)
	BackendQuant = "quant" // int8-quantized QuantStore (AGLQNT01)
)

// StoreSpec is the one-stop description of an embedding-store backend:
// which of the three implementations to use, where its file lives (or
// should be written), and whether to run the full checksum pass after
// opening. It replaces the per-backend flag pile that was accreting in
// cmd/aglserve (-store / -store-mmap / -save-store / -save-store-mmap)
// with a single declarative selection shared by the CLI, the experiments,
// and embedding API users.
type StoreSpec struct {
	// Backend selects the implementation: BackendMem (default when
	// empty), BackendMmap, or BackendQuant.
	Backend string
	// Path is an existing store file to open, in the backend's native
	// format. Empty means build the store from the embeddings passed to
	// Open (GraphInfer output).
	Path string
	// Verify runs the backend's full checksum verification after opening
	// Path (one sequential read of the file). MemStore files are always
	// verified during decode; for the mmap-backed backends this is the
	// deferred O(size) half of their O(1) open.
	Verify bool
	// SavePath, when non-empty, persists the opened or built store there
	// in the backend's native format (staged and renamed, never
	// half-written). A built mmap/quant store is served FROM the saved
	// file, so SavePath doubles as the serving path for those backends.
	SavePath string
	// Shards is the MemStore shard count (0 selects the default); also
	// used for the intermediate heap store when building the other
	// backends from embeddings.
	Shards int
}

// Validate rejects contradictory or unknown specs with descriptive
// errors.
func (sp StoreSpec) Validate() error {
	switch sp.backend() {
	case BackendMem, BackendMmap, BackendQuant:
	default:
		return fmt.Errorf("serve: unknown store backend %q (want %q, %q, or %q)",
			sp.Backend, BackendMem, BackendMmap, BackendQuant)
	}
	if sp.Verify && sp.Path == "" {
		return fmt.Errorf("serve: store verify requested but no store path to verify")
	}
	if sp.backend() == BackendMmap && sp.Path == "" && sp.SavePath == "" {
		return fmt.Errorf("serve: mmap store backend needs a path or a save path (the mapping needs a file)")
	}
	return nil
}

func (sp StoreSpec) backend() string {
	if sp.Backend == "" {
		return BackendMem
	}
	return sp.Backend
}

// Open materializes the spec: it opens Path when set, otherwise builds
// the backend from embeddings (which may be nil for an empty store), and
// honors Verify/SavePath. The returned close function releases any file
// mapping (a no-op for heap stores) — call it when done serving.
func (sp StoreSpec) Open(embeddings map[int64][]float64) (Store, func() error, error) {
	if err := sp.Validate(); err != nil {
		return nil, nil, err
	}
	noop := func() error { return nil }
	buildMem := func() (*MemStore, error) {
		if sp.Path == "" {
			return NewStore(sp.Shards, embeddings)
		}
		f, err := os.Open(sp.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ReadStore(f)
	}
	switch sp.backend() {
	case BackendMem:
		st, err := buildMem()
		if err != nil {
			return nil, nil, err
		}
		if sp.SavePath != "" {
			if err := saveStoreFile(sp.SavePath, st); err != nil {
				return nil, nil, err
			}
		}
		return st, noop, nil

	case BackendMmap:
		path := sp.Path
		if path == "" {
			mem, err := buildMem()
			if err != nil {
				return nil, nil, err
			}
			if err := CreateMapped(sp.SavePath, mem); err != nil {
				return nil, nil, err
			}
			path = sp.SavePath
		} else if sp.SavePath != "" && sp.SavePath != path {
			st, err := OpenMapped(path)
			if err != nil {
				return nil, nil, err
			}
			err = saveStoreFile(sp.SavePath, st)
			st.Close()
			if err != nil {
				return nil, nil, err
			}
		}
		st, err := OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		if sp.Verify {
			if err := st.Verify(); err != nil {
				st.Close()
				return nil, nil, err
			}
		}
		return st, st.Close, nil

	case BackendQuant:
		if sp.Path != "" {
			st, err := OpenQuant(sp.Path)
			if err != nil {
				return nil, nil, err
			}
			if sp.Verify {
				if err := st.Verify(); err != nil {
					st.Close()
					return nil, nil, err
				}
			}
			if sp.SavePath != "" && sp.SavePath != sp.Path {
				if err := saveStoreFile(sp.SavePath, st); err != nil {
					st.Close()
					return nil, nil, err
				}
			}
			return st, st.Close, nil
		}
		mem, err := buildMem()
		if err != nil {
			return nil, nil, err
		}
		if sp.SavePath != "" {
			if err := CreateQuant(sp.SavePath, mem); err != nil {
				return nil, nil, err
			}
			st, err := OpenQuant(sp.SavePath)
			if err != nil {
				return nil, nil, err
			}
			return st, st.Close, nil
		}
		st, err := Quantize(mem)
		if err != nil {
			return nil, nil, err
		}
		return st, noop, nil
	}
	return nil, nil, fmt.Errorf("serve: unknown store backend %q", sp.Backend)
}

// saveStoreFile persists any store's native serialization (WriteTo) at
// path, staged at path+".tmp" and renamed into place on success.
func saveStoreFile(path string, st Store) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename
	if _, err := st.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("serve: write store %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
