package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/placement"
	"agl/internal/rpcx"
)

// testClusterSlots keeps migration granular but tables tiny in tests.
const testClusterSlots = 64

// cluster is the in-process test fixture: n replicas over one dataset,
// each holding the full graph and a model clone but only its owned shard
// of the embedding store, plus a single-process reference server over the
// full store for bit-exactness checks.
type cluster struct {
	reps []*Replica
	ref  *Server
	g    *graph.Graph
}

func buildCluster(t *testing.T, n int) *cluster {
	t.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 250, FeatDim: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 8, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: 21, EdgeHead: gnn.EdgeHeadBilinear,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Infer(core.InferConfig{Seed: 4, TempDir: t.TempDir(), KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		t.Fatal(err)
	}
	blob := mustMarshal(t, model)

	refModel, err := gnn.UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	refStore, err := NewStore(0, res.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{Seed: 4}, refModel, ds.G, refStore)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })

	// Bind every replica's RPC port first (the table needs all addresses),
	// then seed the even table and join.
	reps := make([]*Replica, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		m, err := gnn.UnmarshalModel(blob)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{Seed: 4}, m, ds.G, nil) // store set below via table
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		r, err := NewReplica(i, srv, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		reps[i] = r
		addrs[i] = r.Addr()
	}
	table, err := placement.Even(addrs, testClusterSlots)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		if err := r.Join(table); err != nil {
			t.Fatal(err)
		}
		// Partition the warm tier: install only owned rows (the fixture's
		// servers were built storeless, so the warm shard arrives through
		// the same InstallRows path a migration uses).
		owned := make(map[int64][]float64)
		for id, emb := range res.Embeddings {
			if table.Owns(i, id) {
				owned[id] = emb
			}
		}
		r.Server().InstallRows(FloatRows(owned))
	}
	return &cluster{reps: reps, ref: ref, g: ds.G}
}

func scoresEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterRoutedScoreMatchesSingle: any replica answers any node with
// the exact scores the single-process server serves, whether the id is
// owned locally or routed to a peer.
func TestClusterRoutedScoreMatchesSingle(t *testing.T) {
	cl := buildCluster(t, 3)
	ctx := context.Background()
	for _, node := range cl.g.Nodes[:60] {
		want, err := cl.ref.Score(ctx, node.ID)
		if err != nil {
			t.Fatal(err)
		}
		for ri, r := range cl.reps {
			got, err := r.Score(ctx, node.ID)
			if err != nil {
				t.Fatalf("replica %d score(%d): %v", ri, node.ID, err)
			}
			if !scoresEqual(got, want) {
				t.Fatalf("replica %d score(%d) = %v, want %v", ri, node.ID, got, want)
			}
		}
	}
	// Forwarding must actually have happened (3 replicas, 60 ids — the
	// odds of every id being local to every router are nil, but check the
	// counter, not the odds).
	var forwards int64
	for _, r := range cl.reps {
		forwards += r.ClusterStats().Forwards
	}
	if forwards == 0 {
		t.Fatal("no request was forwarded — routing never exercised")
	}
}

// TestClusterLinkScatterGather: cross-shard pairs score identically to the
// single-process warm pair path.
func TestClusterLinkScatterGather(t *testing.T) {
	cl := buildCluster(t, 3)
	ctx := context.Background()
	table := cl.reps[0].Table()

	crossPairs := 0
	for i := 0; i+1 < len(cl.g.Nodes) && crossPairs < 40; i += 2 {
		u, v := cl.g.Nodes[i].ID, cl.g.Nodes[i+1].ID
		if table.OwnerOf(u) != table.OwnerOf(v) {
			crossPairs++
		}
		want, err := cl.ref.ScoreLink(ctx, u, v)
		if err != nil {
			t.Fatal(err)
		}
		for ri, r := range cl.reps {
			got, err := r.ScoreLink(ctx, u, v)
			if err != nil {
				t.Fatalf("replica %d link(%d,%d): %v", ri, u, v, err)
			}
			if got != want {
				t.Fatalf("replica %d link(%d,%d) = %v, want %v", ri, u, v, got, want)
			}
		}
	}
	if crossPairs == 0 {
		t.Fatal("no cross-shard pair tested")
	}
}

// TestClusterApplyForwardsAndInvalidatesEverywhere: a mutation submitted
// to a NON-owning replica forwards to the owner, fans out, and afterwards
// every replica serves scores equal to a cold recompute on the mutated
// graph — the incremental-consistency property, cluster-wide.
func TestClusterApplyForwardsAndInvalidatesEverywhere(t *testing.T) {
	cl := buildCluster(t, 3)
	ctx := context.Background()

	u, v := cl.g.Nodes[3].ID, cl.g.Nodes[11].ID
	muts := []graph.Mutation{{Op: graph.OpAddEdge, Src: u, Dst: v, Weight: 2.5}}

	// Submit via a replica that does NOT own the batch's primary node.
	owner := cl.reps[0].Table().OwnerOf(v)
	router := cl.reps[(owner+1)%len(cl.reps)]
	res, err := router.Apply(ctx, muts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("applied %d, want 1", res.Applied)
	}
	if router.ClusterStats().Forwards == 0 {
		t.Fatal("apply was not forwarded")
	}

	// Reference: same mutation on the single-process server.
	if _, err := cl.ref.Apply(ctx, muts); err != nil {
		t.Fatal(err)
	}

	for _, node := range []int64{v, u, cl.g.Nodes[20].ID} {
		want, err := cl.ref.Score(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		for ri, r := range cl.reps {
			got, err := r.Score(ctx, node)
			if err != nil {
				t.Fatalf("replica %d score(%d): %v", ri, node, err)
			}
			if !scoresEqual(got, want) {
				t.Fatalf("replica %d post-apply score(%d) = %v, want %v", ri, node, got, want)
			}
		}
	}

	// Every replica's graph converged to the same version of the edit.
	for ri, r := range cl.reps {
		g, _ := r.Server().Graph()
		if w, ok := edgeWeight(g, u, v); !ok || w != 2.5 {
			t.Fatalf("replica %d edge (%d,%d) weight = %v (present=%v), want 2.5", ri, u, v, w, ok)
		}
	}
}

func edgeWeight(g *graph.Graph, src, dst int64) (float64, bool) {
	for _, e := range g.Edges {
		if e.Src == src && e.Dst == dst {
			return e.Weight, true
		}
	}
	return 0, false
}

// TestMigrationLiveBitExact: migrate a slot while traffic flows; every
// answer during and after the move must be bit-identical to the reference
// server, and the warm rows must actually move.
func TestMigrationLiveBitExact(t *testing.T) {
	cl := buildCluster(t, 3)
	ctx := context.Background()
	table := cl.reps[0].Table()

	// Pick a slot owned by replica 0 with at least one node in it.
	slot := -1
	var probe int64
	for _, n := range cl.g.Nodes {
		s := placement.SlotOf(n.ID, testClusterSlots)
		if table.Owner(s) == 0 {
			slot, probe = s, n.ID
			break
		}
	}
	if slot < 0 {
		t.Fatal("no slot owned by replica 0 contains a node")
	}
	want, err := cl.ref.Score(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}

	// Traffic: every replica scores the probe node continuously.
	stop := make(chan struct{})
	var wrong, served atomic64
	var wg sync.WaitGroup
	for _, r := range cl.reps {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := r.Score(ctx, probe)
				if err == nil {
					served.add(1)
					if !scoresEqual(got, want) {
						wrong.add(1)
					}
				} // unavailability is bounded, not forbidden
				time.Sleep(200 * time.Microsecond)
			}
		}(r)
	}

	res, err := cl.reps[0].Migrate(ctx, slot, 2)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsMoved == 0 {
		t.Fatal("migration moved no rows")
	}
	if served.load() == 0 {
		t.Fatal("no traffic served during migration")
	}
	if w := wrong.load(); w != 0 {
		t.Fatalf("%d wrong answers during live migration", w)
	}

	// The new table owns the slot at the destination, epoch bumped.
	for ri, r := range cl.reps {
		nt := r.Table()
		if nt.Epoch != table.Epoch+1 {
			t.Fatalf("replica %d epoch %d, want %d", ri, nt.Epoch, table.Epoch+1)
		}
		if nt.Owner(slot) != 2 {
			t.Fatalf("replica %d still routes slot %d to %d", ri, slot, nt.Owner(slot))
		}
	}
	// Destination serves the probe warm; source dropped its copy.
	if !cl.reps[2].Server().WarmRow(probe) {
		t.Fatal("destination did not install the migrated row")
	}
	if cl.reps[0].Server().WarmRow(probe) {
		t.Fatal("source kept a warm copy after migration")
	}
	// Scores still exact after the move, from every router.
	for ri, r := range cl.reps {
		got, err := r.Score(ctx, probe)
		if err != nil {
			t.Fatalf("replica %d post-migration: %v", ri, err)
		}
		if !scoresEqual(got, want) {
			t.Fatalf("replica %d post-migration score = %v, want %v", ri, got, want)
		}
	}
}

// atomic64 is a tiny counter helper (avoids importing sync/atomic twice
// under test-local names).
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestMigrationConcurrentApplyNeverLosesOrDoubleApplies: AddEdge on an
// existing pair SUMS weights, so a lost mutation shows as a low total and
// a double-applied one as a high total. Hammer one edge with concurrent
// unit-weight adds while slots migrate; afterwards every replica's graph
// must carry exactly initial + number-of-successful-applies.
func TestMigrationConcurrentApplyNeverLosesOrDoubleApplies(t *testing.T) {
	cl := buildCluster(t, 3)
	ctx := context.Background()
	u, v := cl.g.Nodes[5].ID, cl.g.Nodes[9].ID

	base, hadEdge := edgeWeight(cl.g, u, v)
	if !hadEdge {
		// Seed the edge so every later add merges by summing.
		if _, err := cl.reps[0].Apply(ctx, []graph.Mutation{
			{Op: graph.OpAddEdge, Src: u, Dst: v, Weight: 1}}); err != nil {
			t.Fatal(err)
		}
		base = 1
	}

	var applies int64
	var amu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			router := cl.reps[w%len(cl.reps)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := router.Apply(ctx, []graph.Mutation{
					{Op: graph.OpAddEdge, Src: u, Dst: v, Weight: 1}})
				if err == nil && res.Applied == 1 {
					amu.Lock()
					applies++
					amu.Unlock()
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Migrate several slots around while the writes hammer.
	for s := 0; s < 3; s++ {
		owner := cl.reps[0].Table().Owner(s)
		dst := (owner + 1) % len(cl.reps)
		if _, err := cl.reps[owner].Migrate(ctx, s, dst); err != nil {
			t.Fatalf("migrate slot %d: %v", s, err)
		}
	}
	close(stop)
	wg.Wait()

	want := base + float64(applies)
	for ri, r := range cl.reps {
		g, _ := r.Server().Graph()
		got, ok := edgeWeight(g, u, v)
		if !ok {
			t.Fatalf("replica %d lost the edge entirely", ri)
		}
		if got != want {
			t.Fatalf("replica %d edge weight %v, want %v (base %v + %d applies) — lost or double-applied",
				ri, got, want, base, applies)
		}
	}
	if applies == 0 {
		t.Fatal("no apply succeeded — detector never armed")
	}
}

// TestStaleEpochRejectedTyped: a request stamped with the wrong epoch is
// rejected with a retryable *placement.EpochError that survives the RPC
// boundary.
func TestStaleEpochRejectedTyped(t *testing.T) {
	cl := buildCluster(t, 2)
	c := rpcx.NewClient(cl.reps[1].Addr())
	defer c.Close()

	var reply ScoreReply
	err := c.Call(context.Background(), "Replica.Score",
		&ScoreArgs{Epoch: 999, Node: cl.g.Nodes[0].ID}, &reply)
	if err == nil {
		t.Fatal("stale-epoch request accepted")
	}
	typed := errFromWire(err)
	var ee *placement.EpochError
	if !errors.As(typed, &ee) {
		t.Fatalf("decoded error %T %v, want *placement.EpochError", typed, typed)
	}
	if !errors.Is(typed, placement.ErrStaleEpoch) {
		t.Fatal("decoded error does not unwrap to ErrStaleEpoch")
	}
	if !ee.Retryable() || ee.Got != 999 || ee.Have != cl.reps[1].Table().Epoch {
		t.Fatalf("epoch error fields wrong: %+v", ee)
	}
}

// TestTypedErrorsCrossTheWire: sentinel serve errors keep their types
// through a forwarded request, so HTTP status mapping works cluster-wide.
func TestTypedErrorsCrossTheWire(t *testing.T) {
	cl := buildCluster(t, 2)
	ctx := context.Background()

	// An id owned by the peer and absent everywhere → ErrUnknownNode must
	// survive forwarding.
	table := cl.reps[0].Table()
	missing := int64(10_000_000)
	for table.OwnerOf(missing) != 1 {
		missing++
	}
	_, err := cl.reps[0].Score(ctx, missing)
	if err == nil || !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("forwarded unknown-node error = %v, want ErrUnknownNode", err)
	}

	// A deadline that cannot be met comes back as DeadlineExceeded.
	dctx, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	_, err = cl.reps[0].Score(dctx, missing)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error = %v, want DeadlineExceeded", err)
	}
}

// TestFreezeBlocksWritesNotReads: during a freeze, reads flow and writes
// park; the TTL watchdog thaws a replica whose coordinator vanished.
func TestFreezeBlocksWritesNotReads(t *testing.T) {
	cl := buildCluster(t, 2)
	ctx := context.Background()
	r := cl.reps[0]
	r.SetFreezeTTL(250 * time.Millisecond)
	r.frz.freeze(250 * time.Millisecond)

	// Reads still serve.
	if _, err := r.Score(ctx, cl.g.Nodes[0].ID); err != nil {
		t.Fatalf("read blocked by freeze: %v", err)
	}

	// A write parks, then completes once the watchdog thaws. Route to
	// self: pick a mutation primary owned by replica 0.
	start := time.Now()
	table := r.Table()
	u, v := cl.g.Nodes[2].ID, cl.g.Nodes[4].ID
	for _, n := range cl.g.Nodes {
		if table.OwnerOf(n.ID) == 0 {
			v = n.ID
			break
		}
	}
	if _, err := r.Apply(ctx, []graph.Mutation{{Op: graph.OpAddEdge, Src: u, Dst: v, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("write did not park during freeze (returned in %v)", el)
	}

	// A frozen write honors its context deadline.
	r.frz.freeze(250 * time.Millisecond)
	dctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	_, err := r.Apply(dctx, []graph.Mutation{{Op: graph.OpAddEdge, Src: u, Dst: v, Weight: 1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("frozen write with deadline = %v, want DeadlineExceeded", err)
	}
	r.frz.unfreeze()
}

// TestReplicaMisc covers the small contract edges: Join validation, stats
// fields, and double Close.
func TestReplicaMisc(t *testing.T) {
	cl := buildCluster(t, 2)
	r := cl.reps[0]

	// Join with a table that lists someone else at our index.
	bad, err := placement.Even([]string{"127.0.0.1:1", "127.0.0.1:2"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Join(bad); err == nil {
		t.Fatal("Join accepted a table with a foreign address at our index")
	}

	cs := r.ClusterStats()
	if cs.ReplicaID != 0 || cs.Epoch == 0 || cs.OwnedSlots == 0 {
		t.Fatalf("implausible cluster stats: %+v", cs)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateValidation rejects nonsense moves up front.
func TestMigrateValidation(t *testing.T) {
	cl := buildCluster(t, 2)
	ctx := context.Background()
	r := cl.reps[0]
	if _, err := r.Migrate(ctx, -1, 1); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := r.Migrate(ctx, testClusterSlots, 1); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	slot0 := r.Table().SlotsOf(0)[0]
	if _, err := r.Migrate(ctx, slot0, 0); err == nil {
		t.Fatal("self-migration accepted")
	}
	if _, err := r.Migrate(ctx, slot0, 99); err == nil {
		t.Fatal("unknown destination accepted")
	}
	slot1 := r.Table().SlotsOf(1)[0]
	if _, err := r.Migrate(ctx, slot1, 0); err == nil {
		t.Fatal("migrating a non-owned slot accepted")
	}
}
