package serve

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func randSample(rng *rand.Rand, i int) FlightSample {
	u32 := func() uint32 { return rng.Uint32() }
	return FlightSample{
		UnixNanos:  int64(1_700_000_000_000_000_000) + int64(i)*1_000_000_000,
		QueueDepth: u32(), BatchMax: u32(), Requests: u32(), CacheHits: u32(),
		Warm: u32(), Cold: u32(), Batches: u32(), Shed: u32(),
		Expired: u32(), Errors: u32(), WarmP50us: u32(), WarmP99us: u32(),
		ColdP50us: u32(), ColdP99us: u32(), DirtyRows: u32(), Applies: u32(),
		HeartbeatsMissed: u32(), Failovers: u32(), ProxiedRetries: u32(), BreakerOpens: u32(),
	}
}

// TestFlightRingRoundTripBitExact writes more samples than the ring holds
// and asserts the file decode is bit-for-bit identical to the in-memory
// ring: every field of every retained sample, oldest-first, after wrap.
func TestFlightRingRoundTripBitExact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.aglfr")
	const capacity, appended = 7, 23
	ring, err := NewFlightRing(capacity, path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var all []FlightSample
	for i := 0; i < appended; i++ {
		s := randSample(rng, i)
		all = append(all, s)
		if err := ring.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	want := all[appended-capacity:]
	if got := ring.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("in-memory ring diverged:\n got %+v\nwant %+v", got, want)
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file decode diverged from appended samples:\n got %+v\nwant %+v", got, want)
	}
}

// TestFlightRingPartialFill covers the pre-wrap case: fewer samples than
// slots must decode to exactly the appended prefix, not garbage slots.
func TestFlightRingPartialFill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.aglfr")
	ring, err := NewFlightRing(16, path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var all []FlightSample
	for i := 0; i < 3; i++ {
		s := randSample(rng, i)
		all = append(all, s)
		if err := ring.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("partial ring decode diverged:\n got %+v\nwant %+v", got, all)
	}
}

// TestFlightRingLiveRead reads the file while the ring is still open —
// the post-incident case where the server is wedged but not dead.
func TestFlightRingLiveRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.aglfr")
	ring, err := NewFlightRing(4, path)
	if err != nil {
		t.Fatal(err)
	}
	defer ring.Close()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 6; i++ {
		if err := ring.Append(randSample(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ring.Samples()) {
		t.Fatal("live read diverged from in-memory ring")
	}
}

func TestReadFlightFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.aglfr")
	if err := os.WriteFile(bad, []byte("NOTAFLIGHTFILE_________________________"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightFile(bad); err == nil {
		t.Fatal("garbage file decoded without error")
	}
	short := filepath.Join(dir, "short.aglfr")
	if err := os.WriteFile(short, []byte("AGLFR001"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightFile(short); err == nil {
		t.Fatal("truncated header decoded without error")
	}
}

// TestReadFlightFileV1Compat: an AGLFR001 file (72-byte slots, 16 fields,
// written by pre-cluster-health builds) still decodes; the four cluster
// counters read as zero.
func TestReadFlightFileV1Compat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.aglfr")
	const count = 3
	hdr := make([]byte, flightHdrSize)
	copy(hdr, flightMagicV1)
	le := func(b []byte, off int, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	le(hdr, 8, flightSlotV1)
	le(hdr, 12, count)
	le(hdr, 16, 2) // seq: two samples appended, no wrap
	body := make([]byte, count*flightSlotV1)
	rng := rand.New(rand.NewSource(5))
	var want []FlightSample
	for i := 0; i < 2; i++ {
		s := randSample(rng, i)
		s.HeartbeatsMissed, s.Failovers, s.ProxiedRetries, s.BreakerOpens = 0, 0, 0, 0
		want = append(want, s)
		var full [flightSlotSize]byte
		s.encode(full[:])
		copy(body[i*flightSlotV1:(i+1)*flightSlotV1], full[:flightSlotV1])
	}
	if err := os.WriteFile(path, append(hdr, body...), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 decode diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestLatHistPercentiles(t *testing.T) {
	var h latHist
	for i := 0; i < 99; i++ {
		h.observe(100) // bucket [64,128) -> upper bound 128
	}
	h.observe(100_000) // one outlier in [65536,131072)
	if p50 := h.percentile(0.50); p50 != 128 {
		t.Fatalf("p50 = %d, want 128", p50)
	}
	if p99 := h.percentile(0.99); p99 != 131072 {
		t.Fatalf("p99 = %d, want 131072 (the outlier's bucket bound)", p99)
	}
	h.reset()
	if got := h.percentile(0.99); got != 0 {
		t.Fatalf("percentile after reset = %d, want 0", got)
	}
}
