package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"agl/internal/clockx"
	"agl/internal/placement"
)

// fastConsensus is the test timer profile: tight enough that elections
// and failovers resolve in tens of milliseconds, loose enough to be
// stable under -race on a loaded CI box.
func fastConsensus(walDir string, seed int64) ConsensusConfig {
	return ConsensusConfig{
		WALDir:             walDir,
		HeartbeatInterval:  15 * time.Millisecond,
		ElectionTimeoutMin: 75 * time.Millisecond,
		ElectionTimeoutMax: 150 * time.Millisecond,
		SuspectAfter:       100 * time.Millisecond,
		DeadAfter:          300 * time.Millisecond,
		Seed:               seed,
	}
}

// enableConsensus turns raft on for every replica in the fixture.
func enableConsensus(t *testing.T, cl *cluster) {
	t.Helper()
	dir := t.TempDir()
	for i, r := range cl.reps {
		if err := r.EnableConsensus(fastConsensus(dir, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// clusterLeader returns the index of the replica that currently believes
// it leads, or -1.
func clusterLeader(cl *cluster, skip int) int {
	for i, r := range cl.reps {
		if i == skip {
			continue
		}
		if n := r.ConsensusNode(); n != nil && n.IsLeader() {
			return i
		}
	}
	return -1
}

// TestConsensusElectsLeaderAndReplicatesProposals: with raft enabled, a
// leader emerges, and a table proposed from a FOLLOWER (forwarded to the
// leader) commits on every replica.
func TestConsensusElectsLeaderAndReplicatesProposals(t *testing.T) {
	cl := buildCluster(t, 3)
	enableConsensus(t, cl)

	waitFor(t, 5*time.Second, "leader election", func() bool {
		return clusterLeader(cl, -1) >= 0
	})
	lead := clusterLeader(cl, -1)

	// Propose from a follower: move slot 0 to the follower itself.
	follower := (lead + 1) % len(cl.reps)
	cur := cl.reps[follower].Table()
	next, err := cur.WithOwner(0, follower)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c := cl.reps[follower].cns.Load()
	if err := c.proposeTable(ctx, next); err != nil {
		t.Fatalf("follower propose: %v", err)
	}

	// Every replica converges to the committed table.
	waitFor(t, 5*time.Second, "table replication", func() bool {
		for _, r := range cl.reps {
			tb := r.Table()
			if tb.Epoch < next.Epoch || tb.Owner(0) != follower {
				return false
			}
		}
		return true
	})

	// Raft state is visible in ClusterStats.
	cs := cl.reps[lead].ClusterStats()
	if !cs.ConsensusOn || cs.RaftTerm == 0 {
		t.Fatalf("ClusterStats missing consensus state: %+v", cs)
	}
}

// TestConsensusFailoverOnReplicaCrash is the heart of the PR: kill one
// replica of three under consensus and, with NO operator action, the
// survivors commit a failover table that reassigns every slot the corpse
// owned; routed reads then answer correctly from the survivors.
func TestConsensusFailoverOnReplicaCrash(t *testing.T) {
	cl := buildCluster(t, 3)
	enableConsensus(t, cl)

	waitFor(t, 5*time.Second, "leader election", func() bool {
		return clusterLeader(cl, -1) >= 0
	})

	// Kill a FOLLOWER first (leader crash is TestConsensusLeaderCrash).
	lead := clusterLeader(cl, -1)
	victim := (lead + 1) % len(cl.reps)
	if err := cl.reps[victim].Close(); err != nil {
		t.Fatal(err)
	}

	// The leader's failure detector commits a failover table: no slot
	// remains owned by the victim on any survivor.
	waitFor(t, 10*time.Second, "failover table", func() bool {
		for i, r := range cl.reps {
			if i == victim {
				continue
			}
			tb := r.Table()
			for s := 0; s < tb.Slots(); s++ {
				if tb.Owner(s) == victim {
					return false
				}
			}
		}
		return true
	})

	// Zero wrong answers: every node scores correctly from a survivor.
	// Slots inherited from the victim lost their warm rows, so those ids
	// recompute cold — identical within the documented 1e-9 tolerance.
	ctx := context.Background()
	caller := cl.reps[(victim+1)%len(cl.reps)]
	for _, n := range cl.g.Nodes[:80] {
		want, err := cl.ref.Score(ctx, n.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := caller.Score(ctx, n.ID)
		if err != nil {
			t.Fatalf("score %d after failover: %v", n.ID, err)
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("node %d: got %v want %v", n.ID, got, want)
			}
		}
	}

	// The detector's bookkeeping surfaced.
	var failovers, missed int64
	for i, r := range cl.reps {
		if i == victim {
			continue
		}
		cs := r.ClusterStats()
		failovers += cs.Failovers
		missed += cs.HeartbeatsMissed
	}
	if failovers == 0 {
		t.Fatal("no failover counted")
	}
	if missed == 0 {
		t.Fatal("no missed heartbeats counted")
	}
}

// TestConsensusLeaderCrash: killing the raft LEADER forces an election
// AND a failover; the new leader commits the reassignment.
func TestConsensusLeaderCrash(t *testing.T) {
	cl := buildCluster(t, 3)
	enableConsensus(t, cl)

	waitFor(t, 5*time.Second, "leader election", func() bool {
		return clusterLeader(cl, -1) >= 0
	})
	victim := clusterLeader(cl, -1)
	if err := cl.reps[victim].Close(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, "new leader", func() bool {
		return clusterLeader(cl, victim) >= 0
	})
	waitFor(t, 10*time.Second, "failover after leader crash", func() bool {
		for i, r := range cl.reps {
			if i == victim {
				continue
			}
			tb := r.Table()
			for s := 0; s < tb.Slots(); s++ {
				if tb.Owner(s) == victim {
					return false
				}
			}
		}
		return true
	})

	// Survivors still answer; spot-check a handful of ids.
	ctx := context.Background()
	caller := cl.reps[(victim+1)%len(cl.reps)]
	for _, n := range cl.g.Nodes[:20] {
		want, err := cl.ref.Score(ctx, n.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := caller.Score(ctx, n.ID)
		if err != nil {
			t.Fatalf("score %d after leader crash: %v", n.ID, err)
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("node %d: got %v want %v", n.ID, got, want)
			}
		}
	}
}

// TestFailoverTablePure exercises the failover table builder directly.
func TestFailoverTablePure(t *testing.T) {
	base, err := placement.Even([]string{"a:1", "b:2", "c:3"}, 12)
	if err != nil {
		t.Fatal(err)
	}

	next, moved, err := failoverTable(base, 1, map[int]bool{0: true, 2: true})
	if err != nil {
		t.Fatal(err)
	}
	if moved != len(base.SlotsOf(1)) {
		t.Fatalf("moved %d slots, want %d", moved, len(base.SlotsOf(1)))
	}
	if next.Epoch != base.Epoch+uint64(moved) {
		t.Fatalf("epoch %d, want %d", next.Epoch, base.Epoch+uint64(moved))
	}
	for s := 0; s < next.Slots(); s++ {
		if next.Owner(s) == 1 {
			t.Fatalf("slot %d still owned by dead replica", s)
		}
		if base.Owner(s) != 1 && next.Owner(s) != base.Owner(s) {
			t.Fatalf("slot %d moved from surviving owner %d to %d", s, base.Owner(s), next.Owner(s))
		}
	}

	// Dead replica listed alive is a bug upstream — rejected.
	if _, _, err := failoverTable(base, 1, map[int]bool{0: true, 1: true}); err == nil {
		t.Fatal("alive dead replica accepted")
	}
	// Nobody left standing.
	if _, _, err := failoverTable(base, 1, map[int]bool{}); err == nil {
		t.Fatal("empty alive set accepted")
	}
	// Dead replica owning nothing is a no-op.
	only, err := placement.Even([]string{"a:1", "b:2"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cur := only
	for _, s := range only.SlotsOf(1) {
		if cur, err = cur.WithOwner(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, moved, err := failoverTable(cur, 1, map[int]bool{0: true}); err != nil || moved != 0 {
		t.Fatalf("no-op failover: moved=%d err=%v", moved, err)
	}
}

// TestAssessPeer pins the suspect→dead thresholds.
func TestAssessPeer(t *testing.T) {
	const sus, dead = 100 * time.Millisecond, 300 * time.Millisecond
	cases := []struct {
		age  time.Duration
		want peerHealth
	}{
		{0, peerHealthy},
		{99 * time.Millisecond, peerHealthy},
		{100 * time.Millisecond, peerSuspect},
		{299 * time.Millisecond, peerSuspect},
		{300 * time.Millisecond, peerDead},
		{time.Hour, peerDead},
	}
	for _, c := range cases {
		if got := assessPeer(c.age, sus, dead); got != c.want {
			t.Errorf("assessPeer(%v) = %d, want %d", c.age, got, c.want)
		}
	}
}

// TestFreezeTTLDeterministic drives the migration write-freeze watchdog
// with a fake clock: no real time passes, yet the TTL fires exactly at
// the deadline and the paused-time metric records the TTL, not wall time.
func TestFreezeTTLDeterministic(t *testing.T) {
	fake := clockx.NewFake()
	f := &freezer{clk: fake}

	f.freeze(10 * time.Second)
	f.mu.Lock()
	frozen := f.frozen
	f.mu.Unlock()
	if !frozen {
		t.Fatal("freeze did not freeze")
	}

	// One nanosecond short of the TTL: still frozen.
	fake.Advance(10*time.Second - time.Nanosecond)
	f.mu.Lock()
	frozen = f.frozen
	f.mu.Unlock()
	if !frozen {
		t.Fatal("watchdog fired early")
	}

	fake.Advance(time.Nanosecond)
	f.mu.Lock()
	frozen = f.frozen
	f.mu.Unlock()
	if frozen {
		t.Fatal("watchdog did not fire at TTL")
	}
	if got := f.pausedNs.Load(); got != int64(10*time.Second) {
		t.Fatalf("pausedNs = %d, want %d", got, int64(10*time.Second))
	}

	// Re-freezing re-arms the watchdog from now.
	f.freeze(time.Second)
	fake.Advance(time.Second)
	f.mu.Lock()
	frozen = f.frozen
	f.mu.Unlock()
	if frozen {
		t.Fatal("re-armed watchdog did not fire")
	}
}

// TestClusterHealthFlowsToFlightRecorder: breaker/retry/failover counters
// registered by Join surface as AGLFR002 sample fields.
func TestClusterHealthFlowsToFlightRecorder(t *testing.T) {
	cl := buildCluster(t, 2)

	// The replica registered its health source with the wrapped server at
	// Join; simulate retries by reading the source directly after forcing
	// proxied traffic through a dead peer.
	if err := cl.reps[1].Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	tb := cl.reps[0].Table()
	var remote int64 = -1
	for _, n := range cl.g.Nodes {
		if tb.OwnerOf(n.ID) == 1 {
			remote = n.ID
			break
		}
	}
	if remote < 0 {
		t.Fatal("no node owned by replica 1")
	}
	if _, err := cl.reps[0].Score(ctx, remote); err == nil {
		t.Fatal("score against dead peer unexpectedly succeeded")
	}

	h := cl.reps[0].clusterHealth()
	if h.ProxiedRetries == 0 {
		t.Fatalf("no proxied retries recorded: %+v", h)
	}

	// The same totals reach a FlightSample through the server hook.
	srv := cl.reps[0].Server()
	prev := flightCounters{}
	cur := srv.snapCounters()
	if cur.health.ProxiedRetries != h.ProxiedRetries {
		t.Fatalf("snapCounters health %+v, want retries %d", cur.health, h.ProxiedRetries)
	}
	_ = prev
}
