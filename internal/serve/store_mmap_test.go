package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agl/internal/gnn"
)

// randomEmbeddings builds n random embeddings with mixed-sign ids,
// including NaN/Inf payloads so bit-identity (not float equality) is what
// the property tests actually check.
func randomEmbeddings(seed int64, n, dim int) map[int64][]float64 {
	rng := rand.New(rand.NewSource(seed))
	embs := make(map[int64][]float64, n)
	for len(embs) < n {
		id := int64(rng.Intn(4*n)) - int64(2*n)
		h := make([]float64, dim)
		for j := range h {
			switch rng.Intn(20) {
			case 0:
				h[j] = math.NaN()
			case 1:
				h[j] = math.Inf(1 - 2*rng.Intn(2))
			case 2:
				h[j] = 0
			default:
				h[j] = rng.NormFloat64()
			}
		}
		embs[id] = h
	}
	return embs
}

// mappedFromMem round-trips a MemStore through the mapped layout and opens
// it, closing on test cleanup.
func mappedFromMem(t *testing.T, src *MemStore) *MappedStore {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.aglmap")
	if err := CreateMapped(path, src); err != nil {
		t.Fatal(err)
	}
	ms, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	return ms
}

// TestMappedStoreMatchesMemStore is the backend-equivalence property: for
// random embeddings, every Store method must answer bit-identically over
// the mmap backend and the heap backend.
func TestMappedStoreMatchesMemStore(t *testing.T) {
	embs := randomEmbeddings(11, 600, 7)
	mem, err := NewStore(8, embs)
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedFromMem(t, mem)

	if mapped.Len() != mem.Len() || mapped.Dim() != mem.Dim() {
		t.Fatalf("mapped len/dim %d/%d, mem %d/%d", mapped.Len(), mapped.Dim(), mem.Len(), mem.Dim())
	}
	// Present ids: bit-identical rows. Absent ids: both miss.
	for id := int64(-1500); id < 1500; id++ {
		mr, mok := mem.LookupRow(id)
		pr, pok := mapped.LookupRow(id)
		if mok != pok {
			t.Fatalf("id %d: mem ok=%v mapped ok=%v", id, mok, pok)
		}
		if !mok {
			continue
		}
		me, pe := mr.F64, pr.F64
		for j := range me {
			if math.Float64bits(me[j]) != math.Float64bits(pe[j]) {
				t.Fatalf("id %d dim %d: mem %x mapped %x", id, j,
					math.Float64bits(me[j]), math.Float64bits(pe[j]))
			}
		}
	}
	// Range must visit the identical (id, row) set.
	got := make(map[int64][]float64, mapped.Len())
	mapped.Range(func(id int64, row Row) bool {
		got[id] = row.FloatsCopy()
		return true
	})
	if len(got) != len(embs) {
		t.Fatalf("Range visited %d ids, want %d", len(got), len(embs))
	}
	for id, want := range embs {
		for j := range want {
			if math.Float64bits(got[id][j]) != math.Float64bits(want[j]) {
				t.Fatalf("Range id %d dim %d mismatch", id, j)
			}
		}
	}
	if err := mapped.Verify(); err != nil {
		t.Fatalf("Verify on a freshly written store: %v", err)
	}
}

// TestMappedStoreWriteToRoundTrip: WriteTo emits the file bytes verbatim,
// and those bytes re-open as an identical store.
func TestMappedStoreWriteToRoundTrip(t *testing.T) {
	mem, err := NewStore(4, randomEmbeddings(13, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedFromMem(t, mem)

	var buf bytes.Buffer
	if _, err := mapped.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(mapped.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), disk) {
		t.Fatal("WriteTo bytes differ from the backing file")
	}
	copyPath := filepath.Join(t.TempDir(), "copy.aglmap")
	if err := os.WriteFile(copyPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := OpenMapped(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Len() != mem.Len() || back.Verify() != nil {
		t.Fatalf("round-tripped store len=%d verify=%v", back.Len(), back.Verify())
	}
}

// TestMappedStoreEmpty pins the degenerate geometry: zero embeddings is a
// valid store on both the write and read sides, and a closed/nil store
// answers like an empty one.
func TestMappedStoreEmpty(t *testing.T) {
	empty := &MemStore{shards: make([]storeShard, 1)}
	path := filepath.Join(t.TempDir(), "empty.aglmap")
	if err := CreateMapped(path, empty); err != nil {
		t.Fatal(err)
	}
	ms, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Len() != 0 || ms.Dim() != 0 {
		t.Fatalf("empty store len=%d dim=%d", ms.Len(), ms.Dim())
	}
	if _, ok := ms.LookupRow(1); ok {
		t.Fatal("empty store returned a row")
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok := ms.LookupRow(1); ok {
		t.Fatal("closed store returned a row")
	}
	var nilStore *MappedStore
	if nilStore.Len() != 0 || nilStore.Dim() != 0 {
		t.Fatal("nil store not empty")
	}
}

// TestOpenMappedCorruption is the table-driven corruption suite for the
// mmap layout: every damaged fixture must be rejected at open with an
// error naming what broke and where.
func TestOpenMappedCorruption(t *testing.T) {
	mem, err := NewStore(2, randomEmbeddings(17, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.aglmap")
	if err := CreateMapped(goodPath, mem); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "truncated"},
		{"shorter than header", func(b []byte) []byte { return b[:40] }, "truncated"},
		{"bad magic", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out[0:8], "NOTASTOR")
			return out
		}, "bad magic"},
		{"header bit flip", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[16] ^= 0x01 // count byte: header CRC must catch it
			return out
		}, "header checksum mismatch"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-9] }, "truncated"},
		{"trailing bytes", func(b []byte) []byte { return append(append([]byte(nil), b...), 0, 0, 0) }, "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".aglmap")
			if err := os.WriteFile(path, tc.mutate(good), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenMapped(path)
			if err == nil {
				t.Fatal("corrupted store opened")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestMappedStoreVerifyDetectsSectionCorruption: payload damage that the
// O(1) open intentionally does not scan for must be caught by Verify, with
// the broken section named.
func TestMappedStoreVerifyDetectsSectionCorruption(t *testing.T) {
	mem, err := NewStore(2, randomEmbeddings(19, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	goodPath := filepath.Join(t.TempDir(), "good.aglmap")
	if err := CreateMapped(goodPath, mem); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	indexEnd := mappedHeaderSize + mem.Len()*8

	cases := []struct {
		name    string
		offset  int
		wantSub string
	}{
		{"index flip", mappedHeaderSize + 3, "index checksum mismatch"},
		{"row flip", indexEnd + 5, "row checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := append([]byte(nil), good...)
			bad[tc.offset] ^= 0x40
			path := filepath.Join(t.TempDir(), "bad.aglmap")
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			ms, err := OpenMapped(path) // open is O(1): payload damage passes
			if err != nil {
				t.Fatalf("open after payload flip should succeed (header intact): %v", err)
			}
			defer ms.Close()
			verr := ms.Verify()
			if verr == nil {
				t.Fatal("Verify missed the flipped byte")
			}
			if !strings.Contains(verr.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", verr, tc.wantSub)
			}
		})
	}
}

// TestReadStoreCorruption is the table-driven corruption suite for the
// heap-store serialization (AGLEMB02): truncations, bad magic, and payload
// damage must produce descriptive offset-bearing errors, and the legacy
// checksum-less AGLEMB01 layout must still load.
func TestReadStoreCorruption(t *testing.T) {
	mem, err := NewStore(3, randomEmbeddings(23, 50, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := mem.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "header truncated"},
		{"magic only", func(b []byte) []byte { return b[:8] }, "header truncated"},
		{"bad magic", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out[0:8], "AGLEMB99")
			return out
		}, "bad store magic"},
		{"truncated mid shard", func(b []byte) []byte { return b[:len(b)/2] }, "truncated in shard"},
		{"truncated before final checksum", func(b []byte) []byte { return b[:len(b)-4] }, "truncated in shard"},
		{"payload bit flip", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)/2] ^= 0x10
			return out
		}, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadStore(bytes.NewReader(tc.mutate(good)))
			if err == nil {
				t.Fatal("corrupted store accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "offset") && tc.name != "bad magic" {
				t.Fatalf("error %q carries no offset", err)
			}
		})
	}

	t.Run("legacy v1 accepted", func(t *testing.T) {
		// A v1 file is the v2 layout minus the per-shard checksums: strip
		// them by re-encoding by hand.
		v1 := legacyV1Bytes(t, mem)
		back, err := ReadStore(bytes.NewReader(v1))
		if err != nil {
			t.Fatalf("legacy store rejected: %v", err)
		}
		if back.Len() != mem.Len() || back.Dim() != mem.Dim() {
			t.Fatalf("legacy round trip len=%d dim=%d, want %d/%d",
				back.Len(), back.Dim(), mem.Len(), mem.Dim())
		}
	})
}

// legacyV1Bytes encodes a store in the AGLEMB01 layout (no shard CRCs).
func legacyV1Bytes(t *testing.T, s *MemStore) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(storeMagicV1[:])
	le := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	le(uint32(len(s.shards)))
	le(uint32(s.dim))
	for i := range s.shards {
		sh := &s.shards[i]
		le(uint64(len(sh.ids)))
		le(sh.ids)
		le(sh.data)
	}
	return buf.Bytes()
}

// TestLookupAliasingContract pins the documented LookupRow contract on
// both float backends: the returned F64 view is capacity-capped (an
// append cannot clobber the neighboring row) and a caller-side copy is
// fully detached.
func TestLookupAliasingContract(t *testing.T) {
	embs := randomEmbeddings(29, 100, 4)
	mem, err := NewStore(4, embs)
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedFromMem(t, mem)

	for _, backend := range []struct {
		name  string
		store Store
	}{
		{"mem", mem},
		{"mmap", mapped},
	} {
		t.Run(backend.name, func(t *testing.T) {
			var someID int64
			backend.store.Range(func(id int64, _ Row) bool {
				someID = id
				return false
			})
			row, ok := backend.store.LookupRow(someID)
			if !ok {
				t.Fatal("lookup miss")
			}
			v := row.F64
			if cap(v) != len(v) {
				t.Fatalf("LookupRow view has spare capacity (%d > %d): an append would scribble on the backend",
					cap(v), len(v))
			}
			// The documented pattern — copy before retaining — must detach.
			cp := row.FloatsCopy()
			cp[0] = math.Pi
			after, _ := backend.store.LookupRow(someID)
			if math.Float64bits(after.F64[0]) == math.Float64bits(math.Pi) &&
				math.Float64bits(v[0]) != math.Float64bits(math.Pi) {
				t.Fatal("mutating a copy reached the backend")
			}
		})
	}
}

// TestServeBackendsBitIdentical runs the serving tier's Score and
// ScoreLink over both store backends: identical requests must produce
// bit-identical answers, because the backends differ only in where the
// bytes live.
func TestServeBackendsBitIdentical(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadBilinear)
	mem, err := NewStore(8, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedFromMem(t, mem)

	memSrv, err := New(Config{Seed: 4}, model, g, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer memSrv.Close()
	model2, err := gnn.UnmarshalModel(mustMarshal(t, model))
	if err != nil {
		t.Fatal(err)
	}
	mapSrv, err := New(Config{Seed: 4}, model2, g, mapped)
	if err != nil {
		t.Fatal(err)
	}
	defer mapSrv.Close()

	ctx := context.Background()
	ids := g.IDs()
	for i := 0; i < 40; i++ {
		id := ids[i*5%len(ids)]
		a, err := memSrv.Score(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mapSrv.Score(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("node %d dim %d: mem %v mmap %v", id, j, a[j], b[j])
			}
		}
	}
	for i := 0; i < 25; i++ {
		src, dst := ids[i], ids[(i*13+7)%len(ids)]
		if src == dst {
			continue
		}
		a, err := memSrv.ScoreLink(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mapSrv.ScoreLink(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("pair (%d,%d): mem %v mmap %v", src, dst, a, b)
		}
	}
	if st := mapSrv.Stats(); st.Warm == 0 {
		t.Fatalf("mapped server never served warm: %+v", st)
	}
}

// TestStoreNilAndEmptyReceivers pins the zero-value contracts both
// backends share: nil stores answer empty, and a nil MappedStore still
// serializes a valid (empty) header.
func TestStoreNilAndEmptyReceivers(t *testing.T) {
	var mem *MemStore
	if mem.Len() != 0 || mem.Dim() != 0 {
		t.Fatal("nil MemStore reports non-empty")
	}
	if _, ok := mem.LookupRow(1); ok {
		t.Fatal("nil MemStore resolved a lookup")
	}
	mem.Range(func(int64, Row) bool { t.Fatal("Range callback on nil store"); return true })

	var mapped *MappedStore
	if mapped.Len() != 0 || mapped.Dim() != 0 {
		t.Fatal("nil MappedStore reports non-empty")
	}
	mapped.Range(func(int64, Row) bool { t.Fatal("Range callback on nil store"); return true })
	var buf bytes.Buffer
	if _, err := mapped.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != mappedHeaderSize {
		t.Fatalf("nil MappedStore wrote %d bytes, want the bare %d-byte header", buf.Len(), mappedHeaderSize)
	}
}

// TestStoreRangeEarlyStop: returning false must end the iteration on
// both backends.
func TestStoreRangeEarlyStop(t *testing.T) {
	src, err := NewStore(4, randomEmbeddings(11, 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedFromMem(t, src)
	for name, st := range map[string]Store{"mem": src, "mmap": mapped} {
		seen := 0
		st.Range(func(int64, Row) bool {
			seen++
			return false
		})
		if seen != 1 {
			t.Fatalf("%s: Range visited %d rows after a stop", name, seen)
		}
	}
}
