package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sort"
	"unsafe"
)

// QuantStore is the int8-quantized Store backend: each row is packed to
// one byte per dimension plus a per-row float32 scale and zero-point
// (affine quantization over the row's own value range, reconstruction
// error at most scale/2 per dimension). At dim d a row costs d+8 bytes
// against the float backends' 8d, so a store fits roughly 8x the nodes
// per GB (4.25x at dim 16 counting the shared 8-byte id index entry).
//
// Rows are served in their packed codec: LookupRow returns a CodecQ8 Row,
// and the serving tier's dot-product edge head scores pairs directly on
// the int8 payloads (quantDot) — the warm link path never dequantizes.
// Paths that need floats decode through Row.Floats/LookupInto.
//
// On-disk layout (little-endian throughout):
//
//	offset  0  magic "AGLQNT01"                     (8 bytes)
//	offset  8  uint32 dim                           (4 bytes)
//	offset 12  uint32 reserved, zero                (4 bytes)
//	offset 16  uint64 count                         (8 bytes)
//	offset 24  uint64 CRC64(index section)          (8 bytes)
//	offset 32  uint64 CRC64(meta section)           (8 bytes)
//	offset 40  uint64 CRC64(row section)            (8 bytes)
//	offset 48  uint64 CRC64(header bytes [0,48))    (8 bytes)
//	offset 56  zero padding                         (8 bytes)
//	offset 64  index: count x int64 node ids, sorted ascending
//	           meta:  count x {float32 scale, float32 zero}
//	           rows:  count x dim x int8, row i belongs to index[i]
//
// Open discipline matches MappedStore: OpenQuant reads and verifies only
// the 64-byte header (O(1) in store size), Verify checksums the bulk
// sections on demand. A QuantStore is strictly read-only — dynamic
// invalidation overlays recomputed rows in resident memory — and safe for
// concurrent readers; Close unmaps the file, invalidating returned row
// views.
type QuantStore struct {
	path   string
	data   []byte // the whole file (mmap'd, or heap-read without mmap)
	ids    []int64
	meta   []float32 // 2*count: scale at 2i, zero at 2i+1
	rows   []int8
	dim    int
	count  int
	mapped bool
}

var quantMagic = [8]byte{'A', 'G', 'L', 'Q', 'N', 'T', '0', '1'}

const quantCRCRange = 48 // header CRC covers bytes [0, 48)

// quantHeader is the decoded fixed-size header.
type quantHeader struct {
	dim      uint32
	count    uint64
	indexCRC uint64
	metaCRC  uint64
	rowsCRC  uint64
}

func (h *quantHeader) encode() [mappedHeaderSize]byte {
	var b [mappedHeaderSize]byte
	copy(b[0:8], quantMagic[:])
	binary.LittleEndian.PutUint32(b[8:12], h.dim)
	binary.LittleEndian.PutUint64(b[16:24], h.count)
	binary.LittleEndian.PutUint64(b[24:32], h.indexCRC)
	binary.LittleEndian.PutUint64(b[32:40], h.metaCRC)
	binary.LittleEndian.PutUint64(b[40:48], h.rowsCRC)
	binary.LittleEndian.PutUint64(b[48:56], crc64.Checksum(b[:quantCRCRange], crcTable))
	return b
}

// Quantize builds a heap-resident QuantStore from any source store,
// encoding every row with per-row affine int8 parameters. It fails on
// non-finite values: NaN/Inf have no affine image and would corrupt the
// row's scale (serve such stores from a float backend instead).
func Quantize(src Store) (*QuantStore, error) {
	if src == nil {
		src = (*MemStore)(nil)
	}
	count, dim := src.Len(), src.Dim()
	s := &QuantStore{
		ids:   make([]int64, 0, count),
		meta:  make([]float32, 0, 2*count),
		rows:  make([]int8, 0, count*dim),
		dim:   dim,
		count: count,
	}
	src.Range(func(id int64, _ Row) bool {
		s.ids = append(s.ids, id)
		return true
	})
	sort.Slice(s.ids, func(a, b int) bool { return s.ids[a] < s.ids[b] })
	scratch := make([]float64, dim)
	q := make([]int8, dim)
	for _, id := range s.ids {
		emb, ok := src.LookupInto(scratch, id)
		if !ok || len(emb) != dim {
			return nil, fmt.Errorf("serve: quantize: store changed during encode: node %d (dim %d, want %d)",
				id, len(emb), dim)
		}
		scale, zero, err := quantizeRow(q, emb)
		if err != nil {
			return nil, fmt.Errorf("serve: quantize node %d: %w", id, err)
		}
		s.meta = append(s.meta, scale, zero)
		s.rows = append(s.rows, q...)
	}
	return s, nil
}

// CreateQuant quantizes src and writes it to path in the AGLQNT01 layout.
// The file is staged at path+".tmp" and renamed into place on success, so
// a crash mid-write never leaves a half-written store at path.
func CreateQuant(path string, src Store) error {
	qs, err := Quantize(src)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename
	if _, err := qs.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("serve: write quant store %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// OpenQuant maps the quantized store at path. Open is O(1) regardless of
// store size: it reads and verifies only the 64-byte header (magic,
// header checksum, and that the declared geometry matches the file size),
// then maps the file read-only. Use Verify to additionally checksum the
// index, meta, and row sections.
func OpenQuant(path string) (*QuantStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < mappedHeaderSize {
		return nil, fmt.Errorf("serve: quant store %s truncated: %d bytes, want at least the %d-byte header",
			path, size, mappedHeaderSize)
	}
	var hdr [mappedHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: quant store %s: read header: %w", path, err)
	}
	if string(hdr[0:8]) != string(quantMagic[:]) {
		return nil, fmt.Errorf("serve: quant store %s: bad magic %q at offset 0 (want %q)",
			path, hdr[0:8], quantMagic[:])
	}
	wantHeaderCRC := binary.LittleEndian.Uint64(hdr[48:56])
	if got := crc64.Checksum(hdr[:quantCRCRange], crcTable); got != wantHeaderCRC {
		return nil, fmt.Errorf("serve: quant store %s: header checksum mismatch at offset 48: got %#016x, want %#016x",
			path, got, wantHeaderCRC)
	}
	dim := binary.LittleEndian.Uint32(hdr[8:12])
	count := binary.LittleEndian.Uint64(hdr[16:24])
	if dim > 1<<20 || count > 1<<40 || (count > 0 && dim == 0) {
		return nil, fmt.Errorf("serve: quant store %s: implausible header at offset 8 (dim=%d count=%d)",
			path, dim, count)
	}
	indexBytes := count * 8
	metaBytes := count * 8
	rowBytes := count * uint64(dim)
	want := int64(mappedHeaderSize + indexBytes + metaBytes + rowBytes)
	if size < want {
		return nil, fmt.Errorf("serve: quant store %s truncated at offset %d: %d bytes, header at offset 16 declares %d (count=%d dim=%d)",
			path, size, size, want, count, dim)
	}
	if size > want {
		return nil, fmt.Errorf("serve: quant store %s: %d trailing bytes past offset %d (count=%d dim=%d)",
			path, size-want, want, count, dim)
	}
	data, mapped, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("serve: mmap %s: %w", path, err)
	}
	metaEnd := mappedHeaderSize + indexBytes + metaBytes
	s := &QuantStore{
		path:   path,
		data:   data,
		ids:    bytesToInt64s(data[mappedHeaderSize : mappedHeaderSize+indexBytes]),
		meta:   bytesToFloat32s(data[mappedHeaderSize+indexBytes : metaEnd]),
		rows:   bytesToInt8s(data[metaEnd:want]),
		dim:    int(dim),
		count:  int(count),
		mapped: mapped,
	}
	return s, nil
}

// rowAt returns row i as a CodecQ8 Row aliasing the backing memory.
func (s *QuantStore) rowAt(i int) Row {
	return Q8Row(s.rows[i*s.dim:(i+1)*s.dim:(i+1)*s.dim], s.meta[2*i], s.meta[2*i+1])
}

// LookupRow returns the stored row for id in its packed int8 codec. The
// payload aliases the store's memory — read-only, clone before retaining,
// invalid after Close (see Store). The binary search is hand-rolled
// rather than sort.Search: this sits on the warm link path, where the
// closure-call overhead is measurable against a ~100ns request.
func (s *QuantStore) LookupRow(id int64) (Row, bool) {
	if s == nil || s.count == 0 {
		return Row{}, false
	}
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.ids) || s.ids[lo] != id {
		return Row{}, false
	}
	return s.rowAt(lo), true
}

// LookupInto dequantizes the stored row for id into caller-owned memory.
func (s *QuantStore) LookupInto(dst []float64, id int64) ([]float64, bool) {
	r, ok := s.LookupRow(id)
	if !ok {
		return nil, false
	}
	return dequantInto(dst, r.Q8, r.Scale, r.Zero), true
}

// RowCodec returns CodecQ8: every stored row is int8-quantized.
func (s *QuantStore) RowCodec() Codec { return CodecQ8 }

// Len returns the number of stored embeddings.
func (s *QuantStore) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Dim returns the embedding dimensionality (0 for an empty store).
func (s *QuantStore) Dim() int {
	if s == nil {
		return 0
	}
	return s.dim
}

// Range iterates the stored rows in ascending id order. The row payload
// aliases the backing memory, valid only for the callback.
func (s *QuantStore) Range(fn func(id int64, row Row) bool) {
	if s == nil {
		return
	}
	for i, id := range s.ids {
		if !fn(id, s.rowAt(i)) {
			return
		}
	}
}

// WriteTo serializes the store in the AGLQNT01 layout. A mapped store
// copies its raw bytes; a heap-built store (Quantize) encodes the
// sections and their checksums.
func (s *QuantStore) WriteTo(w io.Writer) (int64, error) {
	if s != nil && s.data != nil {
		n, err := w.Write(s.data)
		return int64(n), err
	}
	if s == nil {
		s = &QuantStore{}
	}
	idx := make([]byte, len(s.ids)*8)
	for i, id := range s.ids {
		binary.LittleEndian.PutUint64(idx[i*8:], uint64(id))
	}
	meta := make([]byte, len(s.meta)*4)
	for i, v := range s.meta {
		binary.LittleEndian.PutUint32(meta[i*4:], mathFloat32bits(v))
	}
	rows := make([]byte, len(s.rows))
	for i, v := range s.rows {
		rows[i] = byte(v)
	}
	h := quantHeader{
		dim:      uint32(s.dim),
		count:    uint64(s.count),
		indexCRC: crc64.Checksum(idx, crcTable),
		metaCRC:  crc64.Checksum(meta, crcTable),
		rowsCRC:  crc64.Checksum(rows, crcTable),
	}
	hdr := h.encode()
	var n int64
	for _, section := range [][]byte{hdr[:], idx, meta, rows} {
		m, err := w.Write(section)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Verify checksums the index, meta, and row sections against the header —
// the full-file integrity check deferred from open. Heap-built stores
// (Quantize) have no file backing and verify trivially.
func (s *QuantStore) Verify() error {
	if s == nil || s.data == nil {
		return nil
	}
	indexEnd := mappedHeaderSize + len(s.ids)*8
	metaEnd := indexEnd + len(s.meta)*4
	sections := []struct {
		name       string
		start, end int
		wantOff    int
	}{
		{"index", mappedHeaderSize, indexEnd, 24},
		{"meta", indexEnd, metaEnd, 32},
		{"row", metaEnd, len(s.data), 40},
	}
	for _, sec := range sections {
		want := binary.LittleEndian.Uint64(s.data[sec.wantOff : sec.wantOff+8])
		if got := crc64.Checksum(s.data[sec.start:sec.end], crcTable); got != want {
			return fmt.Errorf("serve: quant store %s: %s checksum mismatch (section at offset %d): got %#016x, want %#016x",
				s.path, sec.name, sec.start, got, want)
		}
	}
	return nil
}

// Path returns the file the store was opened from ("" for a heap-built
// store).
func (s *QuantStore) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Close unmaps the file. Rows previously returned by LookupRow/Range are
// invalid afterwards. Close is idempotent and a no-op for heap-built
// stores.
func (s *QuantStore) Close() error {
	if s == nil || s.data == nil {
		return nil
	}
	data, mapped := s.data, s.mapped
	s.data, s.ids, s.meta, s.rows, s.count, s.dim = nil, nil, nil, nil, 0, 0
	if mapped {
		return munmapFile(data)
	}
	return nil
}

// mathFloat32bits avoids importing math for one call site.
func mathFloat32bits(v float32) uint32 { return *(*uint32)(unsafe.Pointer(&v)) }

// bytesToFloat32s reinterprets b as little-endian float32s; same cast /
// fallback split as bytesToInt64s.
func bytesToFloat32s(b []byte) []float32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		bits := binary.LittleEndian.Uint32(b[i*4:])
		out[i] = *(*float32)(unsafe.Pointer(&bits))
	}
	return out
}

// bytesToInt8s reinterprets b as int8s — byte-width, so always zero-copy.
func bytesToInt8s(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}
