package serve

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"agl/internal/gnn"
	"agl/internal/graph"
)

// finiteEmbeddings mirrors randomEmbeddings without the NaN/Inf payloads:
// quantization has no affine image for non-finite values (Quantize rejects
// them by contract), so the quant property tests draw from finite rows
// with mixed magnitudes instead.
func finiteEmbeddings(seed int64, n, dim int) map[int64][]float64 {
	rng := rand.New(rand.NewSource(seed))
	embs := make(map[int64][]float64, n)
	for len(embs) < n {
		id := int64(rng.Intn(4*n)) - int64(2*n)
		h := make([]float64, dim)
		mag := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
		for j := range h {
			switch rng.Intn(16) {
			case 0:
				h[j] = 0
			default:
				h[j] = rng.NormFloat64() * mag
			}
		}
		embs[id] = h
	}
	return embs
}

// quantFromMem quantizes a MemStore to the AGLQNT01 file layout and opens
// it, closing on test cleanup.
func quantFromMem(t *testing.T, src *MemStore) *QuantStore {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.aglqnt")
	if err := CreateQuant(path, src); err != nil {
		t.Fatal(err)
	}
	qs, err := OpenQuant(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { qs.Close() })
	return qs
}

// TestQuantRoundTripErrorBound is the quantizer's core property: for any
// finite row, every dequantized value sits within half a quantization step
// of the original — |x̂ - x| <= scale/2 (plus float32 rounding headroom).
func TestQuantRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	q := make([]int8, 16)
	dst := make([]float64, 16)
	for trial := 0; trial < 2000; trial++ {
		row := make([]float64, 16)
		mag := math.Pow(10, float64(rng.Intn(9)-4)) // 1e-4 .. 1e4
		for j := range row {
			row[j] = rng.NormFloat64() * mag
		}
		scale, zero, err := quantizeRow(q, row)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := dequantInto(dst, q, scale, zero)
		bound := float64(scale) / 2
		for j := range row {
			// The half-step bound plus a relative term for the float32
			// rounding of scale/zero themselves.
			if diff := math.Abs(got[j] - row[j]); diff > bound+1e-6*(1+math.Abs(row[j])) {
				t.Fatalf("trial %d dim %d: |%v - %v| = %v exceeds scale/2 = %v (scale %v zero %v)",
					trial, j, got[j], row[j], diff, bound, scale, zero)
			}
		}
	}

	// Degenerate rows quantize exactly: constant, zero, and empty.
	for _, row := range [][]float64{
		{3.5, 3.5, 3.5},
		{-2.25, -2.25},
		{0, 0, 0, 0},
		{},
	} {
		scale, zero, err := quantizeRow(q[:len(row)], row)
		if err != nil {
			t.Fatalf("degenerate row %v: %v", row, err)
		}
		got := dequantInto(dst[:0], q[:len(row)], scale, zero)
		for j := range row {
			if math.Abs(got[j]-row[j]) > float64(scale)/2+1e-6*(1+math.Abs(row[j])) {
				t.Fatalf("degenerate row %v dim %d: got %v", row, j, got[j])
			}
		}
	}
}

// TestQuantizeRejectsNonFinite: NaN/Inf rows have no affine image and must
// fail loudly (naming the node), never encode to garbage.
func TestQuantizeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		mem, err := NewStore(1, map[int64][]float64{
			1: {1, 2, 3},
			7: {0.5, bad, 1.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Quantize(mem); err == nil {
			t.Fatalf("Quantize accepted %v", bad)
		} else if !strings.Contains(err.Error(), "node 7") {
			t.Fatalf("error %q does not name the offending node", err)
		}
	}
}

// TestQuantStoreMatchesMemStore is the backend-equivalence property for
// the quant layout: every Store method must answer consistently with the
// heap backend, up to the documented scale/2 reconstruction error.
func TestQuantStoreMatchesMemStore(t *testing.T) {
	embs := finiteEmbeddings(43, 400, 6)
	mem, err := NewStore(8, embs)
	if err != nil {
		t.Fatal(err)
	}
	quant := quantFromMem(t, mem)

	if quant.Len() != mem.Len() || quant.Dim() != mem.Dim() {
		t.Fatalf("quant len/dim %d/%d, mem %d/%d", quant.Len(), quant.Dim(), mem.Len(), mem.Dim())
	}
	if quant.RowCodec() != CodecQ8 {
		t.Fatalf("quant codec %v, want %v", quant.RowCodec(), CodecQ8)
	}
	buf := make([]float64, quant.Dim())
	for id := int64(-1200); id < 1200; id++ {
		row, qok := quant.LookupRow(id)
		want, mok := embs[id]
		if qok != mok {
			t.Fatalf("id %d: quant ok=%v mem ok=%v", id, qok, mok)
		}
		if !qok {
			continue
		}
		if row.Codec() != CodecQ8 || row.Dim() != quant.Dim() {
			t.Fatalf("id %d: row codec %v dim %d", id, row.Codec(), row.Dim())
		}
		via, ok := quant.LookupInto(buf, id)
		if !ok {
			t.Fatalf("id %d missing via LookupInto", id)
		}
		dec := row.Floats(nil)
		bound := float64(row.Scale)/2 + 1e-6
		for j := range want {
			if math.Float64bits(dec[j]) != math.Float64bits(via[j]) {
				t.Fatalf("id %d dim %d: Floats %v != LookupInto %v", id, j, dec[j], via[j])
			}
			if diff := math.Abs(dec[j] - want[j]); diff > bound*(1+math.Abs(want[j])) {
				t.Fatalf("id %d dim %d: |%v - %v| = %v exceeds bound %v",
					id, j, dec[j], want[j], diff, bound)
			}
		}
	}
	// Range visits the same id set, ascending, with rows matching LookupRow.
	var prev int64 = math.MinInt64
	seen := 0
	quant.Range(func(id int64, row Row) bool {
		if id <= prev {
			t.Fatalf("Range out of order: %d after %d", id, prev)
		}
		prev = id
		seen++
		direct, ok := quant.LookupRow(id)
		if !ok || &direct.Q8[0] != &row.Q8[0] {
			t.Fatalf("Range row for %d does not alias LookupRow", id)
		}
		return true
	})
	if seen != len(embs) {
		t.Fatalf("Range visited %d ids, want %d", seen, len(embs))
	}
}

// TestQuantFileRoundTrip: a heap-built store (Quantize) and its mapped
// twin serialize to identical bytes, and those bytes re-open as an
// identical store.
func TestQuantFileRoundTrip(t *testing.T) {
	mem, err := NewStore(4, finiteEmbeddings(47, 80, 5))
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Quantize(mem)
	if err != nil {
		t.Fatal(err)
	}
	mapped := quantFromMem(t, mem)

	var heapBytes, mappedBytes bytes.Buffer
	if _, err := heap.WriteTo(&heapBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := mapped.WriteTo(&mappedBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(heapBytes.Bytes(), mappedBytes.Bytes()) {
		t.Fatal("heap and mapped serializations differ")
	}
	disk, err := os.ReadFile(mapped.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mappedBytes.Bytes(), disk) {
		t.Fatal("WriteTo bytes differ from the backing file")
	}
	if err := mapped.Verify(); err != nil {
		t.Fatalf("Verify on a freshly written store: %v", err)
	}
	// Identical quantization parameters and payloads on both forms.
	mapped.Range(func(id int64, row Row) bool {
		h, ok := heap.LookupRow(id)
		if !ok || h.Scale != row.Scale || h.Zero != row.Zero {
			t.Fatalf("id %d: heap meta (%v,%v) vs mapped (%v,%v)", id, h.Scale, h.Zero, row.Scale, row.Zero)
		}
		for j := range h.Q8 {
			if h.Q8[j] != row.Q8[j] {
				t.Fatalf("id %d dim %d: heap %d vs mapped %d", id, j, h.Q8[j], row.Q8[j])
			}
		}
		return true
	})

	// Zero embeddings is a valid store; nil heap store serializes the bare
	// header.
	empty := &MemStore{shards: make([]storeShard, 1)}
	path := filepath.Join(t.TempDir(), "empty.aglqnt")
	if err := CreateQuant(path, empty); err != nil {
		t.Fatal(err)
	}
	qs, err := OpenQuant(path)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 0 || qs.Dim() != 0 {
		t.Fatalf("empty store len=%d dim=%d", qs.Len(), qs.Dim())
	}
	if _, ok := qs.LookupRow(1); ok {
		t.Fatal("empty store returned a row")
	}
	if err := qs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := qs.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var nilStore *QuantStore
	if nilStore.Len() != 0 || nilStore.Dim() != 0 || nilStore.Verify() != nil {
		t.Fatal("nil QuantStore not empty")
	}
}

// TestOpenQuantCorruption is the table-driven corruption suite for the
// quant layout, mirroring TestOpenMappedCorruption: every damaged fixture
// must be rejected at open with an error naming what broke and where.
func TestOpenQuantCorruption(t *testing.T) {
	mem, err := NewStore(2, finiteEmbeddings(53, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.aglqnt")
	if err := CreateQuant(goodPath, mem); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "truncated"},
		{"shorter than header", func(b []byte) []byte { return b[:40] }, "truncated"},
		{"bad magic", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out[0:8], "NOTQUANT")
			return out
		}, "bad magic"},
		{"header bit flip", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[16] ^= 0x01 // count byte: header CRC must catch it
			return out
		}, "header checksum mismatch"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "truncated"},
		{"trailing bytes", func(b []byte) []byte { return append(append([]byte(nil), b...), 0, 0, 0) }, "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".aglqnt")
			if err := os.WriteFile(path, tc.mutate(good), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenQuant(path)
			if err == nil {
				t.Fatal("corrupted store opened")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestQuantVerifyDetectsSectionCorruption: payload damage the O(1) open
// does not scan for must be caught by Verify, naming the broken section.
func TestQuantVerifyDetectsSectionCorruption(t *testing.T) {
	mem, err := NewStore(2, finiteEmbeddings(59, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	goodPath := filepath.Join(t.TempDir(), "good.aglqnt")
	if err := CreateQuant(goodPath, mem); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	indexEnd := mappedHeaderSize + mem.Len()*8
	metaEnd := indexEnd + mem.Len()*8

	cases := []struct {
		name    string
		offset  int
		wantSub string
	}{
		{"index flip", mappedHeaderSize + 3, "index checksum mismatch"},
		{"meta flip", indexEnd + 2, "meta checksum mismatch"},
		{"row flip", metaEnd + 5, "row checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := append([]byte(nil), good...)
			bad[tc.offset] ^= 0x40
			path := filepath.Join(t.TempDir(), "bad.aglqnt")
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			qs, err := OpenQuant(path) // open is O(1): payload damage passes
			if err != nil {
				t.Fatalf("open after payload flip should succeed (header intact): %v", err)
			}
			defer qs.Close()
			verr := qs.Verify()
			if verr == nil {
				t.Fatal("Verify missed the flipped byte")
			}
			if !strings.Contains(verr.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", verr, tc.wantSub)
			}
		})
	}
}

// TestServeQuantBackend runs the serving tier over mem and quant backends
// under a dot-product edge head: node scores and link logits must agree
// within the quantization error budget, warm traffic must actually serve
// warm, and — the tentpole invariant — the quantized warm link path must
// reproduce the dequantize-then-score reference exactly (quantDot computes
// the same affine expansion in exact int64 arithmetic).
func TestServeQuantBackend(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadDot)
	mem, err := NewStore(8, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	quant := quantFromMem(t, mem)

	memSrv, err := New(Config{Seed: 4}, model, g, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer memSrv.Close()
	model2, err := gnn.UnmarshalModel(mustMarshal(t, model))
	if err != nil {
		t.Fatal(err)
	}
	quantSrv, err := New(Config{Seed: 4}, model2, g, quant)
	if err != nil {
		t.Fatal(err)
	}
	defer quantSrv.Close()

	// Embeddings are tanh-bounded, so per-dim reconstruction error is at
	// most ~(2/255)/2 and a hidden-dim dot/dense accumulation stays well
	// inside this tolerance.
	const tol = 0.1
	ctx := context.Background()
	ids := g.IDs()
	for i := 0; i < 40; i++ {
		id := ids[i*5%len(ids)]
		a, err := memSrv.Score(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := quantSrv.Score(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if math.Abs(a[j]-b[j]) > tol {
				t.Fatalf("node %d dim %d: mem %v quant %v", id, j, a[j], b[j])
			}
		}
	}
	for i := 0; i < 25; i++ {
		src, dst := ids[i], ids[(i*13+7)%len(ids)]
		if src == dst {
			continue
		}
		a, err := memSrv.ScoreLink(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := quantSrv.ScoreLink(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > tol {
			t.Fatalf("pair (%d,%d): mem %v quant %v", src, dst, a, b)
		}

		// quantDot vs the dequantize-then-dot reference: identical up to
		// float64 rounding, since both expand the same affine form.
		ru, uok := quant.LookupRow(src)
		rv, vok := quant.LookupRow(dst)
		if !uok || !vok {
			t.Fatalf("pair (%d,%d) missing from quant store", src, dst)
		}
		gathered, err := quantSrv.ScoreVecLink(ctx, ru, rv)
		if err != nil {
			t.Fatal(err)
		}
		ref := model2.Edge.ScoreVec(ru.Floats(nil), rv.Floats(nil))
		if math.Abs(gathered-ref) > 1e-9*(1+math.Abs(ref)) {
			t.Fatalf("pair (%d,%d): quantDot %v vs dequantized reference %v", src, dst, gathered, ref)
		}
		if math.Float64bits(gathered) != math.Float64bits(b) {
			t.Fatalf("pair (%d,%d): ScoreVecLink %v != warm ScoreLink %v", src, dst, gathered, b)
		}
	}
	if st := quantSrv.Stats(); st.Warm == 0 || st.LinkWarm == 0 {
		t.Fatalf("quant server never served warm: %+v", st)
	}
}

// TestQuantWarmPathRaceStress hammers the quantized warm path from many
// goroutines while mutations invalidate rows — the -race exercise for the
// int8 fast path, the overlay re-admission flow, and their interaction.
func TestQuantWarmPathRaceStress(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadDot)
	mem, err := NewStore(4, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	quant := quantFromMem(t, mem)
	srv, err := New(Config{Seed: 4}, model, g, quant)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	ids := g.IDs()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				src := ids[(w*31+i)%len(ids)]
				dst := ids[(w*17+i*7+1)%len(ids)]
				if _, err := srv.Score(ctx, src); err != nil {
					t.Errorf("Score: %v", err)
					return
				}
				if src != dst {
					if _, err := srv.ScoreLink(ctx, src, dst); err != nil {
						t.Errorf("ScoreLink: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		feat := make([]float64, g.FeatureDim())
		for i := 0; i < 20; i++ {
			id := ids[(i*13)%len(ids)]
			if _, err := srv.Apply(ctx, []graph.Mutation{graph.UpdateNodeFeat(id, feat)}); err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
