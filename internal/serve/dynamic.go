package serve

import (
	"context"

	"agl/internal/graph"
)

// This file is the serving tier's dynamic-graph machinery: the reverse
// k-hop dependency index that turns a mutation batch into the exact set of
// invalidated nodes, and Server.Apply, which commits a batch and evicts
// precisely those entries from the score cache and the embedding store.
//
// Consistency model. A node's served score depends on its k-hop in-edge
// neighborhood (the GraphFeature extraction walks in-edges backwards from
// the target). Mutating node v — its features, or an edge into it —
// therefore affects exactly the targets reachable FROM v within K hops
// along out-edges. The index maintains the dense out-adjacency and BFSes
// it from the batch's seed nodes; everything reached is invalidated.
//
// The BFS deliberately follows the full fan-out rather than the sampled
// fan-out used at extraction time: sampling (FlatConfig.MaxNeighbors +
// Strategy) decides per (node, depth) which in-edges survive, and a
// mutation can flip those decisions arbitrarily, so bounding the
// dependency walk by the sampled set would under-invalidate. Full fan-out
// over-approximates — an invalidation is never missed, at worst a few
// unaffected entries recompute once.

// depIndex is the reverse k-hop dependency index: the graph's dense
// out-adjacency, advanced incrementally as mutation batches commit. It is
// owned by Server.Apply (serialized by applyMu) and never read
// concurrently.
type depIndex struct {
	out [][]int32
}

// newDepIndex builds the out-adjacency for g.
func newDepIndex(g *graph.Graph) *depIndex {
	out := make([][]int32, g.NumNodes())
	for _, e := range g.Edges {
		si := g.MustIndex(e.Src)
		out[si] = append(out[si], int32(g.MustIndex(e.Dst)))
	}
	return &depIndex{out: out}
}

// invalidate returns the ids of every node whose k-hop extraction may have
// changed under the applied batch, and advances the index to next.
//
// The BFS runs over the union of pre- and post-batch out-edges: removed
// edges are still present in the not-yet-advanced rows, added edges are
// overlaid from the batch itself — so entries computed under either
// version are covered, including cycles routed through a removed edge.
func (d *depIndex) invalidate(next *graph.Graph, muts []graph.Mutation, hops int) []int64 {
	for len(d.out) < next.NumNodes() {
		d.out = append(d.out, nil)
	}
	added := map[int32][]int32{}
	seeds := map[int32]bool{}
	touchedSrc := map[int]bool{}
	for _, m := range muts {
		switch m.Op {
		case graph.OpAddEdge:
			si, ok1 := next.Index(m.Src)
			di, ok2 := next.Index(m.Dst)
			if ok1 && ok2 {
				added[int32(si)] = append(added[int32(si)], int32(di))
				seeds[int32(di)] = true
				touchedSrc[si] = true
			}
		case graph.OpRemoveEdge:
			si, ok1 := next.Index(m.Src)
			di, ok2 := next.Index(m.Dst)
			if ok1 && ok2 {
				seeds[int32(di)] = true
				touchedSrc[si] = true
			}
		case graph.OpAddNode, graph.OpUpdateNodeFeat:
			if i, ok := next.Index(m.ID); ok {
				seeds[int32(i)] = true
			}
		}
	}

	affected := make(map[int32]bool, len(seeds))
	frontier := make([]int32, 0, len(seeds))
	for s := range seeds {
		affected[s] = true
		frontier = append(frontier, s)
	}
	for depth := 0; depth < hops && len(frontier) > 0; depth++ {
		var nextFrontier []int32
		visit := func(v int32) {
			if !affected[v] {
				affected[v] = true
				nextFrontier = append(nextFrontier, v)
			}
		}
		for _, u := range frontier {
			for _, v := range d.out[u] {
				visit(v)
			}
			for _, v := range added[u] {
				visit(v)
			}
		}
		frontier = nextFrontier
	}

	// Advance the index: rows of sources the batch touched are rebuilt
	// from next's edge table (canonical — repeated weight merges on one
	// edge never duplicate an entry).
	if len(touchedSrc) > 0 {
		for si := range touchedSrc {
			d.out[si] = nil
		}
		for _, e := range next.Edges {
			si := next.MustIndex(e.Src)
			if touchedSrc[si] {
				d.out[si] = append(d.out[si], int32(next.MustIndex(e.Dst)))
			}
		}
	}

	ids := make([]int64, 0, len(affected))
	for i := range affected {
		ids = append(ids, next.Nodes[i].ID)
	}
	return ids
}

// ApplyResult summarizes one mutation batch committed to a Server.
type ApplyResult struct {
	// Version is the graph version after the batch (unchanged when
	// nothing applied).
	Version uint64
	// Applied counts the mutations that took effect.
	Applied int
	// Errs is positional: Errs[i] is nil when muts[i] applied, otherwise
	// why it was skipped. Matches ScoreMany's partial-failure contract —
	// one bad mutation does not discard the rest of the batch.
	Errs []error
	// Invalidated counts cache entries evicted plus store rows newly
	// marked dirty by this batch.
	Invalidated int
}

// Apply commits a mutation batch to the serving graph and incrementally
// invalidates everything the batch can have affected: the k-hop dependency
// BFS picks the affected node set, their score-cache entries are evicted,
// and their embedding-store rows are marked dirty. Dirty rows serve
// through the cold path (request-time extraction + forward pass on the new
// graph version) and are re-admitted warm on their first recompute.
//
// Requests already in flight when Apply commits may still answer from the
// pre-batch version — that, plus the gap between Apply returning and a
// node's next request, is the staleness window. From the first request
// after Apply returns, every served score reflects the mutated graph.
//
// Apply is safe to call concurrently with Score traffic and with other
// Apply calls (batches serialize).
//
// ctx is honored at batch boundaries: a context already done when the
// batch would commit aborts before mutating anything. A committed batch is
// never rolled back by cancellation.
func (s *Server) Apply(ctx context.Context, muts []graph.Mutation) (*ApplyResult, error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	oldFlat := s.flat
	s.mu.Unlock()

	next, ver, errs := s.vg.Apply(muts)
	applied := make([]graph.Mutation, 0, len(muts))
	for i := range muts {
		if errs[i] == nil {
			applied = append(applied, muts[i])
		}
	}
	res := &ApplyResult{Version: ver, Applied: len(applied), Errs: errs}
	if len(applied) == 0 {
		return res, nil
	}
	s.applies.Add(1)
	s.mutations.Add(int64(len(applied)))

	newFlat := oldFlat.Rebind(next, applied)
	affected := s.dep.invalidate(next, applied, s.cfg.Hops)

	s.mu.Lock()
	s.flat = newFlat
	s.version = ver
	for _, id := range affected {
		if s.cache.remove(id) {
			res.Invalidated++
		}
		// Detach any in-flight computation for an affected node: its
		// waiters (who arrived before this commit) still get its result,
		// but requests arriving after Apply returns must not collapse onto
		// a pre-mutation computation — they start a fresh one on the new
		// version. The detached call's result is also barred from the
		// cache by the version fence in process().
		delete(s.inflight, id)
		if _, wasDirty := s.dirty[id]; wasDirty {
			continue
		}
		// A warm row needing invalidation can live in the base store OR
		// only in the overlay (re-admitted rows shadow the store; rows
		// installed by a slot migration may have no store row at all on
		// this replica). Either way it goes dirty: the lookup misses, the
		// next request recomputes cold on the new version, and the first
		// recompute re-admits it warm.
		_, inStore := s.store.LookupRow(id)
		_, inOverlay := s.overlay[id]
		if inStore || inOverlay {
			s.dirty[id] = struct{}{}
			delete(s.overlay, id) // a re-admitted embedding is stale too
			res.Invalidated++
		}
	}
	s.mu.Unlock()
	s.invalidations.Add(int64(res.Invalidated))
	return res, nil
}

// Graph returns the server's current graph snapshot and its version. The
// snapshot is immutable and stays consistent across later mutations.
func (s *Server) Graph() (*graph.Graph, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flat.Graph(), s.version
}

// MutationsSince returns the applied mutation batches committed after
// version, oldest first — the catch-up feed for replicas, downstream
// indexes, or audit trails (the log is bounded at graph.DefaultLogCap
// batches). ok is false when the log has been trimmed past the requested
// version and the caller must resync from a fresh Graph() snapshot.
func (s *Server) MutationsSince(version uint64) (entries []graph.LogEntry, ok bool) {
	return s.vg.Since(version)
}
