package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/core"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/sampling"
	"agl/internal/wire"
)

// ErrClosed is returned by Score once the server has shut down.
var ErrClosed = errors.New("serve: server closed")

// ErrUnknownNode marks a request for a node absent from both the store
// and the graph (a client error, unlike internal scoring failures).
var ErrUnknownNode = core.ErrNodeNotFound

// Config parameterizes a Server.
type Config struct {
	// Hops, MaxNeighbors, Strategy and Seed mirror FlatConfig for the cold
	// path's request-time neighborhood extraction; use the training run's
	// values. Hops defaults to the model's layer count.
	Hops         int
	MaxNeighbors int
	Strategy     sampling.Strategy
	Seed         int64

	// CacheSize bounds the LRU score cache in entries (0 selects 4096).
	CacheSize int
	// MaxBatch caps how many pending requests one forward pass serves
	// (0 selects 64).
	MaxBatch int
	// MaxWait is an optional micro-batching linger: after the first queued
	// request the batcher waits up to this long for companions before
	// flushing, trading latency for batch size. 0 (the default) flushes
	// greedily as soon as the queue is momentarily empty — concurrent
	// traffic still coalesces because requests queue up while the previous
	// batch computes.
	MaxWait time.Duration
	// QueueDepth bounds the pending-request channel (0 selects 4*MaxBatch).
	// Enqueues beyond it block, providing backpressure.
	QueueDepth int
}

// Validate rejects nonsensical serving parameters.
func (c Config) Validate() error {
	if c.Hops < 0 {
		return fmt.Errorf("serve: Config.Hops must be >= 1 (0 selects the model depth), got %d", c.Hops)
	}
	if c.MaxNeighbors < 0 {
		return fmt.Errorf("serve: Config.MaxNeighbors must be >= 0 (0 disables sampling), got %d", c.MaxNeighbors)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("serve: Config.CacheSize must be >= 0 (0 selects the default), got %d", c.CacheSize)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: Config.MaxBatch must be >= 0 (0 selects the default), got %d", c.MaxBatch)
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("serve: Config.MaxWait must be >= 0 (0 selects the default), got %v", c.MaxWait)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: Config.QueueDepth must be >= 0 (0 selects the default), got %d", c.QueueDepth)
	}
	return nil
}

func (c Config) withDefaults(modelLayers int) Config {
	if c.Hops == 0 {
		c.Hops = modelLayers
	}
	if c.Strategy == nil {
		c.Strategy = sampling.Uniform{}
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// Stats is a snapshot of the server's request accounting.
type Stats struct {
	Requests  int64 // Score calls
	CacheHits int64 // served straight from the LRU
	Collapsed int64 // joined an already-in-flight computation (single-flight)
	Warm      int64 // scored from the embedding store + prediction slice
	Cold      int64 // scored by a full forward pass over a k-hop extraction
	Batches   int64 // micro-batches flushed
	Errors    int64 // requests that failed (unknown node, shutdown, ...)
}

// Server answers per-node score requests on top of the offline pipeline's
// artifacts. Three tiers, fastest first:
//
//  1. an LRU cache over final score vectors;
//  2. a "warm" path for nodes whose layer-K embedding is in the Store:
//     only the model's prediction slice (hierarchical segmentation,
//     paper §3.4) runs;
//  3. a "cold" path for unknown-to-the-store nodes: the request-time
//     LocalFlattener extracts the node's k-hop GraphFeature and a single
//     vectorized forward pass scores the whole micro-batch.
//
// Concurrent requests for one node collapse into a single computation
// (single-flight), and all model execution is confined to the batcher
// goroutine — Model instances cache activations and are not safe for
// concurrent use. The Server owns its model; don't share it.
type Server struct {
	cfg   Config
	model *gnn.Model
	head  *gnn.Slice
	store *Store
	flat  *core.LocalFlattener

	mu       sync.Mutex
	closed   bool
	cache    *lruCache
	inflight map[int64]*call

	reqs chan *call
	stop chan struct{}
	done chan struct{}

	requests, hits, collapsed atomic.Int64
	warm, cold                atomic.Int64
	batches, errors           atomic.Int64
}

// call is one de-duplicated score computation; waiters block on done.
type call struct {
	id     int64
	scores []float64
	err    error
	done   chan struct{}
}

// New starts a Server for model over g, optionally backed by an embedding
// store built from GraphInfer output (nil serves everything cold). The
// model's prediction slice is segmented out once at startup.
func New(cfg Config, model *gnn.Model, g *graph.Graph, store *Store) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, errors.New("serve: nil model")
	}
	if g == nil {
		return nil, errors.New("serve: nil graph")
	}
	cfg = cfg.withDefaults(len(model.Layers))
	if store.Len() > 0 && store.Dim() != model.Cfg.Hidden {
		return nil, fmt.Errorf("serve: store dim %d does not match model hidden dim %d",
			store.Dim(), model.Cfg.Hidden)
	}
	slices, err := model.Segment()
	if err != nil {
		return nil, fmt.Errorf("serve: model segmentation: %w", err)
	}
	head := slices[len(slices)-1]
	if !head.IsPrediction() {
		return nil, errors.New("serve: segmentation produced no prediction slice")
	}
	s := &Server{
		cfg:   cfg,
		model: model,
		head:  head,
		store: store,
		flat: core.NewLocalFlattener(core.FlatConfig{
			Hops:         cfg.Hops,
			MaxNeighbors: cfg.MaxNeighbors,
			Strategy:     cfg.Strategy,
			Seed:         cfg.Seed,
		}, g),
		cache:    newLRU(cfg.CacheSize),
		inflight: make(map[int64]*call),
		reqs:     make(chan *call, cfg.QueueDepth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.batcher()
	return s, nil
}

// Score returns the predicted score vector for one node, computing it at
// most once no matter how many goroutines ask concurrently. The returned
// slice is shared with the score cache and other waiters and must not be
// modified.
func (s *Server) Score(ctx context.Context, node int64) ([]float64, error) {
	s.requests.Add(1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return nil, ErrClosed
	}
	if v, ok := s.cache.get(node); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return v, nil
	}
	if c, ok := s.inflight[node]; ok {
		s.mu.Unlock()
		s.collapsed.Add(1)
		return s.wait(ctx, c)
	}
	c := &call{id: node, done: make(chan struct{})}
	s.inflight[node] = c
	s.mu.Unlock()

	// Plain blocking send, deliberately NOT select-ing on ctx: other
	// requests may already have collapsed onto this call, and abandoning
	// it here would fail them all with this caller's cancellation. The
	// send cannot wedge — a call registered before close is always
	// consumed by the batcher (or by its shutdown drain, which keeps
	// receiving until the in-flight table empties) — and this caller's
	// own ctx is still honored below in wait.
	s.reqs <- c
	return s.wait(ctx, c)
}

// ScoreMany scores a set of nodes, coalescing them through the same
// micro-batching queue (at most 4*MaxBatch concurrently, so an
// arbitrarily large bulk request cannot spawn unbounded goroutines).
// Scores and errors are positional: one failed node does not discard the
// others' results. Returned score slices are shared, same contract as
// Score. errors.Join the second return value for a single verdict.
func (s *Server) ScoreMany(ctx context.Context, nodes []int64) ([][]float64, []error) {
	out := make([][]float64, len(nodes))
	errs := make([]error, len(nodes))
	sem := make(chan struct{}, 4*s.cfg.MaxBatch)
	var wg sync.WaitGroup
	for i, id := range nodes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id int64) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = s.Score(ctx, id)
		}(i, id)
	}
	wg.Wait()
	return out, errs
}

// Stats snapshots the request counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		CacheHits: s.hits.Load(),
		Collapsed: s.collapsed.Load(),
		Warm:      s.warm.Load(),
		Cold:      s.cold.Load(),
		Batches:   s.batches.Load(),
		Errors:    s.errors.Load(),
	}
}

// Close shuts the batcher down. In-flight requests fail with ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	<-s.done
	return nil
}

func (s *Server) wait(ctx context.Context, c *call) ([]float64, error) {
	select {
	case <-c.done:
		if c.err != nil {
			s.errors.Add(1)
		}
		return c.scores, c.err
	case <-ctx.Done():
		s.errors.Add(1)
		return nil, ctx.Err()
	}
}

// fail resolves a call without scoring it (shutdown drain).
func (s *Server) fail(c *call, err error) {
	s.mu.Lock()
	if s.inflight[c.id] == c {
		delete(s.inflight, c.id)
	}
	s.mu.Unlock()
	c.err = err
	close(c.done)
}

// batcher is the single consumer of the request queue. After the first
// request it greedily drains whatever else is already queued (optionally
// lingering MaxWait for stragglers), then scores the whole batch in one
// go; requests arriving mid-computation form the next batch.
func (s *Server) batcher() {
	defer close(s.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.stop:
			s.drain()
			return
		case c := <-s.reqs:
			batch := []*call{c}
			if s.cfg.MaxWait > 0 {
				timer.Reset(s.cfg.MaxWait)
			linger:
				for len(batch) < s.cfg.MaxBatch {
					select {
					case c2 := <-s.reqs:
						batch = append(batch, c2)
					case <-timer.C:
						break linger
					case <-s.stop:
						break linger
					}
				}
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			}
		greedy:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case c2 := <-s.reqs:
					batch = append(batch, c2)
				default:
					break greedy
				}
			}
			s.process(batch)
		}
	}
}

// drain resolves every outstanding call at shutdown. Calls registered
// before the closed flag flipped may still be on their way into the
// queue, so it keeps consuming until the in-flight table is empty.
func (s *Server) drain() {
	for {
		select {
		case c := <-s.reqs:
			s.fail(c, ErrClosed)
			continue
		default:
		}
		s.mu.Lock()
		n := len(s.inflight)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		select {
		case c := <-s.reqs:
			s.fail(c, ErrClosed)
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// process scores one micro-batch: store-backed nodes through the
// prediction slice, the rest through one merged forward pass.
func (s *Server) process(batch []*call) {
	s.batches.Add(1)
	var coldCalls []*call
	var coldRecs []*wire.TrainRecord
	for _, c := range batch {
		if emb, ok := s.store.Lookup(c.id); ok {
			c.scores = core.ScoresFromLogits(gnn.ApplyDense(s.head.Head, emb))
			s.warm.Add(1)
			continue
		}
		rec, err := s.flat.GraphFeature(c.id)
		if err != nil {
			c.err = err
			continue
		}
		coldCalls = append(coldCalls, c)
		coldRecs = append(coldRecs, rec)
	}
	if len(coldRecs) > 0 {
		b, err := core.AssembleBatch(coldRecs, s.model.Cfg.Classes, false)
		if err != nil {
			for _, c := range coldCalls {
				c.err = fmt.Errorf("serve: batch assembly: %w", err)
			}
		} else {
			logits := s.model.Infer(b.Graph, gnn.RunOptions{})
			for i, c := range coldCalls {
				c.scores = core.ScoresFromLogits(logits.Row(i))
				s.cold.Add(1)
			}
		}
	}
	s.mu.Lock()
	for _, c := range batch {
		if c.err == nil {
			s.cache.add(c.id, c.scores)
		}
		if s.inflight[c.id] == c {
			delete(s.inflight, c.id)
		}
	}
	s.mu.Unlock()
	for _, c := range batch {
		close(c.done)
	}
}

// lruCache is a minimal bounded LRU over score vectors. Callers hold the
// server mutex.
type lruCache struct {
	cap int
	ll  *list.List
	m   map[int64]*list.Element
}

type lruEntry struct {
	id     int64
	scores []float64
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[int64]*list.Element)}
}

func (l *lruCache) get(id int64) ([]float64, bool) {
	if e, ok := l.m[id]; ok {
		l.ll.MoveToFront(e)
		return e.Value.(*lruEntry).scores, true
	}
	return nil, false
}

func (l *lruCache) add(id int64, scores []float64) {
	if e, ok := l.m[id]; ok {
		e.Value.(*lruEntry).scores = scores
		l.ll.MoveToFront(e)
		return
	}
	l.m[id] = l.ll.PushFront(&lruEntry{id: id, scores: scores})
	if l.ll.Len() > l.cap {
		last := l.ll.Back()
		l.ll.Remove(last)
		delete(l.m, last.Value.(*lruEntry).id)
	}
}
