package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/core"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/sampling"
	"agl/internal/tensor"
	"agl/internal/wire"
)

// ErrClosed is returned by Score once the server has shut down.
var ErrClosed = errors.New("serve: server closed")

// ErrUnknownNode marks a request for a node absent from both the store
// and the graph (a client error, unlike internal scoring failures).
var ErrUnknownNode = core.ErrNodeNotFound

// ErrNoEdgeHead marks a link request against a model trained without a
// pairwise head (ModelConfig.EdgeHead unset) — a client error.
var ErrNoEdgeHead = errors.New("serve: model has no edge head (not a link model)")

// Config parameterizes a Server.
type Config struct {
	// Hops, MaxNeighbors, Strategy and Seed mirror FlatConfig for the cold
	// path's request-time neighborhood extraction; use the training run's
	// values. Hops defaults to the model's layer count.
	Hops         int
	MaxNeighbors int
	Strategy     sampling.Strategy
	Seed         int64

	// CacheSize bounds the LRU score cache in entries (0 selects 4096).
	CacheSize int
	// MaxBatch caps how many pending requests one forward pass serves
	// (0 selects 64).
	MaxBatch int
	// MaxWait is an optional micro-batching linger: after the first queued
	// request the batcher waits up to this long for companions before
	// flushing, trading latency for batch size. 0 (the default) flushes
	// greedily as soon as the queue is momentarily empty — concurrent
	// traffic still coalesces because requests queue up while the previous
	// batch computes.
	MaxWait time.Duration
	// QueueDepth bounds the pending-request channel (0 selects 4*MaxBatch).
	// Enqueues beyond it block, providing backpressure.
	QueueDepth int
}

// Validate rejects nonsensical serving parameters.
func (c Config) Validate() error {
	if c.Hops < 0 {
		return fmt.Errorf("serve: Config.Hops must be >= 1 (0 selects the model depth), got %d", c.Hops)
	}
	if c.MaxNeighbors < 0 {
		return fmt.Errorf("serve: Config.MaxNeighbors must be >= 0 (0 disables sampling), got %d", c.MaxNeighbors)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("serve: Config.CacheSize must be >= 0 (0 selects the default), got %d", c.CacheSize)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: Config.MaxBatch must be >= 0 (0 selects the default), got %d", c.MaxBatch)
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("serve: Config.MaxWait must be >= 0 (0 selects the default), got %v", c.MaxWait)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: Config.QueueDepth must be >= 0 (0 selects the default), got %d", c.QueueDepth)
	}
	return nil
}

func (c Config) withDefaults(modelLayers int) Config {
	if c.Hops == 0 {
		c.Hops = modelLayers
	}
	if c.Strategy == nil {
		c.Strategy = sampling.Uniform{}
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// Stats is a snapshot of the server's request and mutation accounting.
type Stats struct {
	Requests  int64 // Score calls
	CacheHits int64 // served straight from the LRU
	Collapsed int64 // joined an already-in-flight computation (single-flight)
	Warm      int64 // scored from the embedding store + prediction slice
	Cold      int64 // scored by a full forward pass over a k-hop extraction
	Batches   int64 // micro-batches flushed
	Errors    int64 // requests that failed (unknown node, shutdown, ...)

	LinkRequests int64 // ScoreLink calls
	LinkWarm     int64 // pairs scored straight off two stored embeddings
	LinkCold     int64 // pairs needing >= 1 request-time endpoint embedding

	Version     uint64 // current graph version (one per applied batch)
	Applies     int64  // mutation batches that applied at least one mutation
	Mutations   int64  // individual mutations applied
	Invalidated int64  // cache entries evicted + store rows dirtied by mutations
	Readmitted  int64  // dirty rows recomputed cold and re-admitted warm
	DirtyRows   int64  // store rows currently dirty (the staleness frontier)
}

// Server answers per-node score requests on top of the offline pipeline's
// artifacts. Three tiers, fastest first:
//
//  1. an LRU cache over final score vectors;
//  2. a "warm" path for nodes whose layer-K embedding is in the Store:
//     only the model's prediction slice (hierarchical segmentation,
//     paper §3.4) runs;
//  3. a "cold" path for unknown-to-the-store nodes: the request-time
//     LocalFlattener extracts the node's k-hop GraphFeature and a single
//     vectorized forward pass scores the whole micro-batch.
//
// The graph is live: Apply commits mutation batches (edge inserts and
// removals, feature updates, new nodes) onto copy-on-write graph versions,
// and a reverse k-hop dependency index invalidates exactly the cache
// entries and store rows a batch can have affected — see dynamic.go for
// the consistency model.
//
// Concurrent requests for one node collapse into a single computation
// (single-flight), and all model execution is confined to the batcher
// goroutine — Model instances cache activations and are not safe for
// concurrent use. The Server owns its model; don't share it.
type Server struct {
	cfg   Config
	model *gnn.Model
	head  *gnn.Slice
	store Store

	vg  *graph.Versioned // graph versions; mutated only via Apply
	dep *depIndex        // reverse k-hop dependency index (owned by Apply)

	applyMu sync.Mutex // serializes Apply end to end

	mu       sync.Mutex
	closed   bool
	flat     *core.LocalFlattener // extractor for the current version (swapped by Apply)
	version  uint64               // version flat/cache/dirty reflect
	cache    *lruCache
	overlay  map[int64][]float64 // recomputed embeddings overriding the base store
	dirty    map[int64]struct{}  // store rows invalidated by mutations
	inflight map[int64]*call

	// ws is the cold-path workspace: all model execution runs on the
	// batcher goroutine, so one arena serves every cold forward pass and
	// is reset at the end of each micro-batch.
	ws *tensor.Workspace

	reqs chan *call
	stop chan struct{}
	done chan struct{}
	// queued counts calls registered but not yet received by the batcher
	// (or its shutdown drain). It — not the in-flight table, whose entries
	// Apply may detach early — is what guarantees every registered call is
	// eventually resolved.
	queued atomic.Int64

	requests, hits, collapsed atomic.Int64
	warm, cold                atomic.Int64
	batches, errors           atomic.Int64
	applies, mutations        atomic.Int64
	invalidations, readmitted atomic.Int64

	linkRequests, linkWarm, linkCold atomic.Int64
}

// call is one de-duplicated score computation; waiters block on done. Every
// resolved call also carries the node's layer-K embedding (emb), so link
// requests share in-flight computations with node scoring.
type call struct {
	id     int64
	scores []float64
	emb    []float64
	err    error
	done   chan struct{}
}

// New starts a Server for model over g, optionally backed by an embedding
// store built from GraphInfer output (nil serves everything cold). Both
// backends work: a heap MemStore or an mmap'd MappedStore — the server
// never writes through the store, so dirty rows from mutations live in a
// resident overlay either way. The model's prediction slice is segmented
// out once at startup.
func New(cfg Config, model *gnn.Model, g *graph.Graph, store Store) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, errors.New("serve: nil model")
	}
	if g == nil {
		return nil, errors.New("serve: nil graph")
	}
	if store == nil {
		store = (*MemStore)(nil) // method set is nil-tolerant; empty store
	}
	cfg = cfg.withDefaults(len(model.Layers))
	if store.Len() > 0 && store.Dim() != model.Cfg.Hidden {
		return nil, fmt.Errorf("serve: store dim %d does not match model hidden dim %d",
			store.Dim(), model.Cfg.Hidden)
	}
	slices, err := model.Segment()
	if err != nil {
		return nil, fmt.Errorf("serve: model segmentation: %w", err)
	}
	head := slices[len(slices)-1]
	if !head.IsPrediction() {
		return nil, errors.New("serve: segmentation produced no prediction slice")
	}
	s := &Server{
		cfg:   cfg,
		model: model,
		head:  head,
		store: store,
		vg:    graph.NewVersioned(g),
		dep:   newDepIndex(g),
		flat: core.NewLocalFlattener(core.FlatConfig{
			Hops:         cfg.Hops,
			MaxNeighbors: cfg.MaxNeighbors,
			Strategy:     cfg.Strategy,
			Seed:         cfg.Seed,
		}, g),
		cache:    newLRU(cfg.CacheSize),
		overlay:  make(map[int64][]float64),
		dirty:    make(map[int64]struct{}),
		inflight: make(map[int64]*call),
		ws:       tensor.NewWorkspace(),
		reqs:     make(chan *call, cfg.QueueDepth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.batcher()
	return s, nil
}

// Score returns the predicted score vector for one node, computing it at
// most once no matter how many goroutines ask concurrently. The returned
// slice is shared with the score cache and other waiters and must not be
// modified.
func (s *Server) Score(ctx context.Context, node int64) ([]float64, error) {
	s.requests.Add(1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return nil, ErrClosed
	}
	if v, ok := s.cache.get(node); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return v, nil
	}
	if c, ok := s.inflight[node]; ok {
		s.mu.Unlock()
		s.collapsed.Add(1)
		return s.wait(ctx, c)
	}
	c := &call{id: node, done: make(chan struct{})}
	s.inflight[node] = c
	s.queued.Add(1)
	s.mu.Unlock()

	// Plain blocking send, deliberately NOT select-ing on ctx: other
	// requests may already have collapsed onto this call, and abandoning
	// it here would fail them all with this caller's cancellation. The
	// send cannot wedge — a call registered before close is always
	// consumed by the batcher (or by its shutdown drain, which keeps
	// receiving until the queued counter empties) — and this caller's
	// own ctx is still honored below in wait.
	s.reqs <- c
	return s.wait(ctx, c)
}

// ScoreMany scores a set of nodes, coalescing them through the same
// micro-batching queue (at most 4*MaxBatch concurrently, so an
// arbitrarily large bulk request cannot spawn unbounded goroutines).
// Scores and errors are positional: one failed node does not discard the
// others' results. Returned score slices are shared, same contract as
// Score. errors.Join the second return value for a single verdict.
func (s *Server) ScoreMany(ctx context.Context, nodes []int64) ([][]float64, []error) {
	out := make([][]float64, len(nodes))
	errs := make([]error, len(nodes))
	sem := make(chan struct{}, 4*s.cfg.MaxBatch)
	var wg sync.WaitGroup
	for i, id := range nodes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id int64) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = s.Score(ctx, id)
		}(i, id)
	}
	wg.Wait()
	return out, errs
}

// ScoreLink returns the model's link logit for the (src, dst) pair — the
// online edge-level workload (fraud-pair scoring, recommendation). The warm
// path is two shard lookups plus one pairwise-head forward, with no k-hop
// extraction; endpoints missing from the store (new or dirtied by
// mutations) resolve cold through the same micro-batched single-flight
// pipeline as node scoring, then the pair is scored off the fresh
// embeddings. Requires a model built with ModelConfig.EdgeHead.
//
// Each endpoint embedding is individually consistent with some committed
// graph version; under a concurrent Apply the two endpoints may straddle
// versions for that one request — the next request converges, the same
// staleness window as node scoring.
func (s *Server) ScoreLink(ctx context.Context, src, dst int64) (float64, error) {
	s.linkRequests.Add(1)
	if s.model.Edge == nil {
		s.errors.Add(1)
		return 0, ErrNoEdgeHead
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return 0, ErrClosed
	}
	hs, okS := s.lookupEmbLocked(src)
	hd, okD := s.lookupEmbLocked(dst)
	s.mu.Unlock()
	if okS && okD {
		s.linkWarm.Add(1)
		return s.model.Edge.ScoreVec(hs, hd), nil
	}
	// Queue every missing endpoint before waiting on either, so the
	// batcher can fold both cold extractions into one micro-batch (and a
	// pair of dirty endpoints costs one forward pass, not two).
	var cs, cd *call
	var err error
	if !okS {
		if hs, cs, err = s.embedStart(src); err != nil {
			return 0, err
		}
	}
	if !okD {
		if hd, cd, err = s.embedStart(dst); err != nil {
			return 0, err
		}
	}
	if cs != nil {
		if hs, err = s.waitEmb(ctx, cs); err != nil {
			return 0, err
		}
	}
	if cd != nil {
		if hd, err = s.waitEmb(ctx, cd); err != nil {
			return 0, err
		}
	}
	s.linkCold.Add(1)
	return s.model.Edge.ScoreVec(hs, hd), nil
}

// embedStart resolves one node's layer-K embedding or queues its
// computation: warm hits return the embedding immediately; otherwise the
// returned call is registered with the batcher (sharing any in-flight
// Score/ScoreLink computation for the same node, single-flight) and the
// caller collects it with waitEmb. A dirty row recomputed this way
// re-admits warm for everyone, same as node scoring.
func (s *Server) embedStart(node int64) ([]float64, *call, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return nil, nil, ErrClosed
	}
	if emb, ok := s.lookupEmbLocked(node); ok {
		s.mu.Unlock()
		return emb, nil, nil
	}
	if c, ok := s.inflight[node]; ok {
		s.mu.Unlock()
		s.collapsed.Add(1)
		return nil, c, nil
	}
	c := &call{id: node, done: make(chan struct{})}
	s.inflight[node] = c
	s.queued.Add(1)
	s.mu.Unlock()
	// Same deliberate plain send as Score: a registered call is always
	// consumed by the batcher or its shutdown drain.
	s.reqs <- c
	return nil, c, nil
}

func (s *Server) waitEmb(ctx context.Context, c *call) ([]float64, error) {
	select {
	case <-c.done:
		if c.err != nil {
			s.errors.Add(1)
			return nil, c.err
		}
		if c.emb == nil {
			s.errors.Add(1)
			return nil, fmt.Errorf("serve: no embedding computed for node %d", c.id)
		}
		return c.emb, nil
	case <-ctx.Done():
		s.errors.Add(1)
		return nil, ctx.Err()
	}
}

// Stats snapshots the request and mutation counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	version := s.version
	dirtyRows := int64(len(s.dirty))
	s.mu.Unlock()
	return Stats{
		Requests:     s.requests.Load(),
		CacheHits:    s.hits.Load(),
		Collapsed:    s.collapsed.Load(),
		Warm:         s.warm.Load(),
		Cold:         s.cold.Load(),
		Batches:      s.batches.Load(),
		Errors:       s.errors.Load(),
		LinkRequests: s.linkRequests.Load(),
		LinkWarm:     s.linkWarm.Load(),
		LinkCold:     s.linkCold.Load(),
		Version:      version,
		Applies:      s.applies.Load(),
		Mutations:    s.mutations.Load(),
		Invalidated:  s.invalidations.Load(),
		Readmitted:   s.readmitted.Load(),
		DirtyRows:    dirtyRows,
	}
}

// Close shuts the batcher down. In-flight requests fail with ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	<-s.done
	return nil
}

func (s *Server) wait(ctx context.Context, c *call) ([]float64, error) {
	select {
	case <-c.done:
		if c.err != nil {
			s.errors.Add(1)
		}
		return c.scores, c.err
	case <-ctx.Done():
		s.errors.Add(1)
		return nil, ctx.Err()
	}
}

// fail resolves a call without scoring it (shutdown drain).
func (s *Server) fail(c *call, err error) {
	s.mu.Lock()
	if s.inflight[c.id] == c {
		delete(s.inflight, c.id)
	}
	s.mu.Unlock()
	c.err = err
	close(c.done)
}

// batcher is the single consumer of the request queue. After the first
// request it greedily drains whatever else is already queued (optionally
// lingering MaxWait for stragglers), then scores the whole batch in one
// go; requests arriving mid-computation form the next batch.
func (s *Server) batcher() {
	defer close(s.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.stop:
			s.drain()
			return
		case c := <-s.reqs:
			s.queued.Add(-1)
			batch := []*call{c}
			if s.cfg.MaxWait > 0 {
				timer.Reset(s.cfg.MaxWait)
			linger:
				for len(batch) < s.cfg.MaxBatch {
					select {
					case c2 := <-s.reqs:
						s.queued.Add(-1)
						batch = append(batch, c2)
					case <-timer.C:
						break linger
					case <-s.stop:
						break linger
					}
				}
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			}
		greedy:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case c2 := <-s.reqs:
					s.queued.Add(-1)
					batch = append(batch, c2)
				default:
					break greedy
				}
			}
			s.process(batch)
		}
	}
}

// drain resolves every outstanding call at shutdown. Calls registered
// before the closed flag flipped may still be on their way into the
// queue, so it keeps consuming until the queued counter reaches zero.
func (s *Server) drain() {
	for {
		select {
		case c := <-s.reqs:
			s.queued.Add(-1)
			s.fail(c, ErrClosed)
			continue
		default:
		}
		if s.queued.Load() == 0 {
			return
		}
		select {
		case c := <-s.reqs:
			s.queued.Add(-1)
			s.fail(c, ErrClosed)
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// lookupEmbLocked resolves a node's warm embedding: dirty rows miss (they
// must recompute on the current graph version), the overlay (recomputed
// rows) shadows the base store. Callers hold s.mu.
func (s *Server) lookupEmbLocked(id int64) ([]float64, bool) {
	if _, isDirty := s.dirty[id]; isDirty {
		return nil, false
	}
	if emb, ok := s.overlay[id]; ok {
		return emb, true
	}
	return s.store.Lookup(id)
}

// process scores one micro-batch: store-backed nodes through the
// prediction slice, the rest through one merged forward pass. The whole
// batch runs against one graph version (the flattener snapshot taken at
// entry); results are admitted to the cache and store only if no mutation
// batch committed meanwhile, so a concurrent Apply can never be shadowed
// by an in-flight computation on the old version.
func (s *Server) process(batch []*call) {
	s.batches.Add(1)
	var coldCalls []*call
	var warmEmbs [][]float64 // parallel to the warm prefix handled inline

	s.mu.Lock()
	flat := s.flat
	ver := s.version
	warmCalls := batch[:0:0]
	for _, c := range batch {
		if emb, ok := s.lookupEmbLocked(c.id); ok {
			warmCalls = append(warmCalls, c)
			warmEmbs = append(warmEmbs, emb)
			continue
		}
		coldCalls = append(coldCalls, c)
	}
	s.mu.Unlock()

	for i, c := range warmCalls {
		c.scores = core.ScoresFromLogits(gnn.ApplyDense(s.head.Head, warmEmbs[i]))
		// Copy: warmEmbs[i] is a Lookup view into store memory, and c.emb
		// outlives this batch (ScoreLink waiters read it after resolution;
		// for a MappedStore the view also dies with Close).
		c.emb = append([]float64(nil), warmEmbs[i]...)
		s.warm.Add(1)
	}

	var coldRecs []*wire.TrainRecord
	kept := coldCalls[:0]
	for _, c := range coldCalls {
		rec, err := flat.GraphFeature(c.id)
		if err != nil {
			c.err = err
			continue
		}
		kept = append(kept, c)
		coldRecs = append(coldRecs, rec)
	}
	coldCalls = kept

	var coldEmb *tensor.Matrix
	if len(coldRecs) > 0 {
		// The whole cold pass — batch assembly, adjacency normalization,
		// layer activations — runs out of the batcher-owned workspace;
		// scores and the (small) per-target embeddings are copied out
		// before the deferred reset recycles it for the next micro-batch.
		defer s.ws.Reset()
		opt := gnn.RunOptions{Workspace: s.ws}
		b, err := core.AssembleBatchWS(s.ws, coldRecs, s.model.Cfg.Classes, false)
		if err != nil {
			for _, c := range coldCalls {
				c.err = fmt.Errorf("serve: batch assembly: %w", err)
			}
		} else {
			// Forward (rather than Infer) keeps the target rows' layer-K
			// embeddings, which re-admit recomputed dirty rows warm below.
			prep := s.model.Prepare(b.Graph, opt)
			st := s.model.Forward(b.Graph, prep, opt)
			coldEmb = st.Emb
			for i, c := range coldCalls {
				c.scores = core.ScoresFromLogits(st.Logits.Row(i))
				c.emb = append([]float64(nil), coldEmb.Row(i)...)
				s.cold.Add(1)
			}
		}
	}

	s.mu.Lock()
	fresh := ver == s.version
	for _, c := range batch {
		if c.err == nil && fresh {
			s.cache.add(c.id, c.scores)
		}
		if s.inflight[c.id] == c {
			delete(s.inflight, c.id)
		}
	}
	if fresh && coldEmb != nil {
		for _, c := range coldCalls {
			if c.err != nil {
				continue
			}
			if _, isDirty := s.dirty[c.id]; isDirty {
				s.overlay[c.id] = c.emb // already a heap copy of coldEmb.Row(i)
				delete(s.dirty, c.id)
				s.readmitted.Add(1)
			}
		}
	}
	s.mu.Unlock()
	for _, c := range batch {
		close(c.done)
	}
}

// lruCache is a minimal bounded LRU over score vectors. Callers hold the
// server mutex.
type lruCache struct {
	cap int
	ll  *list.List
	m   map[int64]*list.Element
}

type lruEntry struct {
	id     int64
	scores []float64
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[int64]*list.Element)}
}

func (l *lruCache) get(id int64) ([]float64, bool) {
	if e, ok := l.m[id]; ok {
		l.ll.MoveToFront(e)
		return e.Value.(*lruEntry).scores, true
	}
	return nil, false
}

// remove evicts one entry, reporting whether it was present.
func (l *lruCache) remove(id int64) bool {
	if e, ok := l.m[id]; ok {
		l.ll.Remove(e)
		delete(l.m, id)
		return true
	}
	return false
}

func (l *lruCache) add(id int64, scores []float64) {
	if e, ok := l.m[id]; ok {
		e.Value.(*lruEntry).scores = scores
		l.ll.MoveToFront(e)
		return
	}
	l.m[id] = l.ll.PushFront(&lruEntry{id: id, scores: scores})
	if l.ll.Len() > l.cap {
		last := l.ll.Back()
		l.ll.Remove(last)
		delete(l.m, last.Value.(*lruEntry).id)
	}
}
