package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/core"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/sampling"
	"agl/internal/tensor"
	"agl/internal/wire"
)

// ErrClosed is returned by Score once the server has shut down.
var ErrClosed = errors.New("serve: server closed")

// ErrExpired marks a request dropped from a micro-batch because its
// deadline could not be met — the forward pass never ran for it.
// errors.Is(err, context.DeadlineExceeded) holds.
var ErrExpired = fmt.Errorf("serve: request expired before compute: %w", context.DeadlineExceeded)

// ErrUnknownNode marks a request for a node absent from both the store
// and the graph (a client error, unlike internal scoring failures).
var ErrUnknownNode = core.ErrNodeNotFound

// ErrNoEdgeHead marks a link request against a model trained without a
// pairwise head (ModelConfig.EdgeHead unset) — a client error.
var ErrNoEdgeHead = errors.New("serve: model has no edge head (not a link model)")

// Config parameterizes a Server.
type Config struct {
	// Hops, MaxNeighbors, Strategy and Seed mirror FlatConfig for the cold
	// path's request-time neighborhood extraction; use the training run's
	// values. Hops defaults to the model's layer count.
	Hops         int
	MaxNeighbors int
	Strategy     sampling.Strategy
	Seed         int64

	// CacheSize bounds the LRU score cache in entries (0 selects 4096).
	CacheSize int
	// MaxBatch caps how many pending requests one forward pass serves
	// (0 selects 64).
	MaxBatch int
	// MaxWait is an optional micro-batching linger: after the first queued
	// request the batcher waits up to this long for companions before
	// flushing, trading latency for batch size. 0 (the default) flushes
	// greedily as soon as the queue is momentarily empty — concurrent
	// traffic still coalesces because requests queue up while the previous
	// batch computes.
	MaxWait time.Duration
	// QueueDepth bounds the pending-request channel (0 selects 4*MaxBatch).
	// Enqueues beyond it block, providing backpressure.
	QueueDepth int

	// ShedThreshold caps cold-path requests in flight (admitted but not
	// yet completed); beyond it new cold requests are rejected immediately
	// with a ShedError instead of queueing into latency they cannot
	// survive. 0 selects QueueDepth. Warm, cache-hit, and single-flight
	// collapsed requests are never subject to admission.
	ShedThreshold int

	// FlightPath, when non-empty, mirrors the always-on metrics ring to a
	// fixed-size binary flight-recorder file (see ring.go for the format),
	// readable post-hoc with cmd/aglmetrics or ReadFlightFile.
	FlightPath string
	// FlightSlots is the ring capacity in samples (0 selects 3600 — one
	// hour at the default interval).
	FlightSlots int
	// FlightInterval is the sampling period (0 selects 1s; < 0 disables
	// the recorder entirely).
	FlightInterval time.Duration
}

// Validate rejects nonsensical serving parameters. Failures are
// *core.ValidationError with the public field name ("ServeConfig.Hops").
func (c Config) Validate() error {
	if c.Hops < 0 {
		return core.Invalidf("ServeConfig.Hops", "must be >= 1 (0 selects the model depth), got %d", c.Hops)
	}
	if c.MaxNeighbors < 0 {
		return core.Invalidf("ServeConfig.MaxNeighbors", "must be >= 0 (0 disables sampling), got %d", c.MaxNeighbors)
	}
	if c.CacheSize < 0 {
		return core.Invalidf("ServeConfig.CacheSize", "must be >= 0 (0 selects the default), got %d", c.CacheSize)
	}
	if c.MaxBatch < 0 {
		return core.Invalidf("ServeConfig.MaxBatch", "must be >= 0 (0 selects the default), got %d", c.MaxBatch)
	}
	if c.MaxWait < 0 {
		return core.Invalidf("ServeConfig.MaxWait", "must be >= 0 (0 selects the default), got %v", c.MaxWait)
	}
	if c.QueueDepth < 0 {
		return core.Invalidf("ServeConfig.QueueDepth", "must be >= 0 (0 selects the default), got %d", c.QueueDepth)
	}
	if c.ShedThreshold < 0 {
		return core.Invalidf("ServeConfig.ShedThreshold", "must be >= 0 (0 selects QueueDepth), got %d", c.ShedThreshold)
	}
	if c.FlightSlots < 0 {
		return core.Invalidf("ServeConfig.FlightSlots", "must be >= 0 (0 selects the default), got %d", c.FlightSlots)
	}
	return nil
}

func (c Config) withDefaults(modelLayers int) Config {
	if c.Hops == 0 {
		c.Hops = modelLayers
	}
	if c.Strategy == nil {
		c.Strategy = sampling.Uniform{}
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.ShedThreshold == 0 {
		// Matching QueueDepth keeps the batcher's plain channel send
		// non-blocking: admitted-but-unconsumed calls never exceed the
		// channel capacity.
		c.ShedThreshold = c.QueueDepth
	}
	if c.FlightSlots == 0 {
		c.FlightSlots = 3600
	}
	if c.FlightInterval == 0 {
		c.FlightInterval = time.Second
	}
	return c
}

// Stats is a snapshot of the server's request and mutation accounting.
type Stats struct {
	Requests  int64 // Score calls
	CacheHits int64 // served straight from the LRU
	Collapsed int64 // joined an already-in-flight computation (single-flight)
	Warm      int64 // scored from the embedding store + prediction slice
	Cold      int64 // scored by a full forward pass over a k-hop extraction
	Batches   int64 // micro-batches flushed
	Errors    int64 // requests that failed (unknown node, shutdown, ...)

	Shed        int64 // cold requests rejected by admission control (429 at the edge)
	Expired     int64 // requests dropped from a batch past their deadline
	ColdPending int64 // cold requests admitted but not yet completed (gauge)

	LinkRequests int64 // ScoreLink calls
	LinkWarm     int64 // pairs scored straight off two stored embeddings
	LinkCold     int64 // pairs needing >= 1 request-time endpoint embedding

	Version     uint64 // current graph version (one per applied batch)
	Applies     int64  // mutation batches that applied at least one mutation
	Mutations   int64  // individual mutations applied
	Invalidated int64  // cache entries evicted + store rows dirtied by mutations
	Readmitted  int64  // dirty rows recomputed cold and re-admitted warm
	DirtyRows   int64  // store rows currently dirty (the staleness frontier)
}

// Server answers per-node score requests on top of the offline pipeline's
// artifacts. Three tiers, fastest first:
//
//  1. an LRU cache over final score vectors;
//  2. a "warm" path for nodes whose layer-K embedding is in the Store:
//     only the model's prediction slice (hierarchical segmentation,
//     paper §3.4) runs;
//  3. a "cold" path for unknown-to-the-store nodes: the request-time
//     LocalFlattener extracts the node's k-hop GraphFeature and a single
//     vectorized forward pass scores the whole micro-batch.
//
// The graph is live: Apply commits mutation batches (edge inserts and
// removals, feature updates, new nodes) onto copy-on-write graph versions,
// and a reverse k-hop dependency index invalidates exactly the cache
// entries and store rows a batch can have affected — see dynamic.go for
// the consistency model.
//
// Concurrent requests for one node collapse into a single computation
// (single-flight), and all model execution is confined to the batcher
// goroutine — Model instances cache activations and are not safe for
// concurrent use. The Server owns its model; don't share it.
type Server struct {
	cfg   Config
	model *gnn.Model
	head  *gnn.Slice
	store Store

	vg  *graph.Versioned // graph versions; mutated only via Apply
	dep *depIndex        // reverse k-hop dependency index (owned by Apply)

	applyMu sync.Mutex // serializes Apply end to end

	mu       sync.Mutex
	closed   bool
	flat     *core.LocalFlattener // extractor for the current version (swapped by Apply)
	version  uint64               // version flat/cache/dirty reflect
	cache    *lruCache
	overlay  map[int64]Row      // recomputed/installed rows overriding the base store
	dirty    map[int64]struct{} // store rows invalidated by mutations
	inflight map[int64]*call

	// ws is the cold-path workspace: all model execution runs on the
	// batcher goroutine, so one arena serves every cold forward pass and
	// is reset at the end of each micro-batch.
	ws *tensor.Workspace

	reqs chan *call
	stop chan struct{}
	done chan struct{}
	// queued counts calls registered but not yet received by the batcher
	// (or its shutdown drain). It — not the in-flight table, whose entries
	// Apply may detach early — is what guarantees every registered call is
	// eventually resolved.
	queued atomic.Int64

	// adm caps in-flight cold work; warm and cache traffic bypass it.
	adm *admission

	// flight is the always-on metrics ring, fed by the recorder goroutine
	// every cfg.FlightInterval. flightMu guards the per-interval latency
	// histograms (observed from request goroutines and the batcher).
	flight      *FlightRing
	flightStop  chan struct{}
	flightDone  chan struct{}
	flightMu    sync.Mutex
	warmHist    latHist
	coldHist    latHist
	batchMaxWin atomic.Int64 // largest batch this flight interval

	requests, hits, collapsed atomic.Int64
	warm, cold                atomic.Int64
	batches, errors           atomic.Int64
	shed, expired             atomic.Int64
	applies, mutations        atomic.Int64
	invalidations, readmitted atomic.Int64

	linkRequests, linkWarm, linkCold atomic.Int64

	// health is an optional func() ClusterHealth registered by the
	// cluster layer; the recorder samples it each interval for the
	// AGLFR002 cluster counters.
	health atomic.Value
}

// call is one de-duplicated score computation; waiters block on done. Every
// resolved call also carries the node's layer-K embedding (emb), so link
// requests share in-flight computations with node scoring.
type call struct {
	id     int64
	scores []float64
	emb    []float64
	err    error
	done   chan struct{}

	enq      time.Time // registration time, for cold-path latency accounting
	admitted bool      // holds an admission slot (released on resolution)
	// deadline is the latest deadline among all waiters, in UnixNanos
	// (noDeadline when any waiter has none). Single-flight collapse only
	// ever extends it, so a shared computation is dropped from a batch
	// only when no waiter can still use the result.
	deadline atomic.Int64
}

// noDeadline marks a call some waiter will wait on forever.
const noDeadline = math.MaxInt64

func deadlineOf(ctx context.Context) int64 {
	if d, ok := ctx.Deadline(); ok {
		return d.UnixNano()
	}
	return noDeadline
}

// extendDeadline raises the call's deadline to at least d (atomic max).
func (c *call) extendDeadline(d int64) {
	for {
		cur := c.deadline.Load()
		if cur >= d || c.deadline.CompareAndSwap(cur, d) {
			return
		}
	}
}

// New starts a Server for model over g, optionally backed by an embedding
// store built from GraphInfer output (nil serves everything cold). Every
// backend works: a heap MemStore, an mmap'd MappedStore, or an
// int8-quantized QuantStore — the server never writes through the store,
// so dirty rows from mutations live in a resident overlay either way, and
// rows flow through the tier in their native codec (a QuantStore's
// dot-product link scoring never dequantizes). The model's prediction
// slice is segmented out once at startup.
func New(cfg Config, model *gnn.Model, g *graph.Graph, store Store) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, errors.New("serve: nil model")
	}
	if g == nil {
		return nil, errors.New("serve: nil graph")
	}
	if store == nil {
		store = (*MemStore)(nil) // method set is nil-tolerant; empty store
	}
	cfg = cfg.withDefaults(len(model.Layers))
	if store.Len() > 0 && store.Dim() != model.Cfg.Hidden {
		return nil, fmt.Errorf("serve: store dim %d does not match model hidden dim %d",
			store.Dim(), model.Cfg.Hidden)
	}
	slices, err := model.Segment()
	if err != nil {
		return nil, fmt.Errorf("serve: model segmentation: %w", err)
	}
	head := slices[len(slices)-1]
	if !head.IsPrediction() {
		return nil, errors.New("serve: segmentation produced no prediction slice")
	}
	s := &Server{
		cfg:   cfg,
		model: model,
		head:  head,
		store: store,
		vg:    graph.NewVersioned(g),
		dep:   newDepIndex(g),
		flat: core.NewLocalFlattener(core.FlatConfig{
			Hops:         cfg.Hops,
			MaxNeighbors: cfg.MaxNeighbors,
			Strategy:     cfg.Strategy,
			Seed:         cfg.Seed,
		}, g),
		cache:    newLRU(cfg.CacheSize),
		overlay:  make(map[int64]Row),
		dirty:    make(map[int64]struct{}),
		inflight: make(map[int64]*call),
		ws:       tensor.NewWorkspace(),
		adm:      newAdmission(cfg.ShedThreshold, cfg.MaxBatch),
		reqs:     make(chan *call, cfg.QueueDepth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.FlightInterval > 0 {
		ring, err := NewFlightRing(cfg.FlightSlots, cfg.FlightPath)
		if err != nil {
			return nil, err
		}
		s.flight = ring
		s.flightStop = make(chan struct{})
		s.flightDone = make(chan struct{})
		go s.recorder()
	}
	go s.batcher()
	return s, nil
}

// Score returns the predicted score vector for one node, computing it at
// most once no matter how many goroutines ask concurrently. The returned
// slice is shared with the score cache and other waiters and must not be
// modified.
//
// ctx carries the request deadline end to end: a cold request whose
// deadline passes while queued is dropped from its micro-batch before the
// forward pass runs (ErrExpired, errors.Is context.DeadlineExceeded), and
// a result is never delivered after the deadline even if the computation
// finished. When the cold path is saturated (Config.ShedThreshold
// requests already in flight), Score fails fast with a *ShedError
// (errors.Is ErrOverloaded) carrying a retry hint, instead of queueing
// work that cannot meet any deadline. Cache hits and warm requests
// complete inline on the caller's goroutine and are never shed.
func (s *Server) Score(ctx context.Context, node int64) ([]float64, error) {
	s.requests.Add(1)
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return nil, ErrClosed
	}
	if v, ok := s.cache.get(node); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return v, nil
	}
	if c, ok := s.inflight[node]; ok {
		s.mu.Unlock()
		c.extendDeadline(deadlineOf(ctx))
		s.collapsed.Add(1)
		return s.wait(ctx, c)
	}
	if row, ok := s.lookupRowLocked(node); ok {
		ver := s.version
		s.mu.Unlock()
		// Warm path, inline: the prediction slice is a pure function of
		// the stored embedding, so it runs on the caller's goroutine and
		// never queues behind cold-path batches — under cold saturation
		// warm latency is untouched by design, not by luck. A CodecF64 row
		// feeds the head as a zero-copy view; a CodecQ8 row dequantizes
		// dim floats here (the only decode on the node warm path).
		scores := core.ScoresFromLogits(gnn.ApplyDense(s.head.Head, row.Floats(nil)))
		s.warm.Add(1)
		s.observeWarm(time.Since(start))
		s.mu.Lock()
		if !s.closed && ver == s.version {
			s.cache.add(node, scores)
		}
		s.mu.Unlock()
		if err := ctx.Err(); err != nil {
			s.errors.Add(1)
			return nil, err
		}
		return scores, nil
	}
	s.mu.Unlock()

	// Cold path: everything below costs a k-hop extraction plus a shared
	// forward pass, gated by admission control.
	if err := ctx.Err(); err != nil {
		s.errors.Add(1)
		return nil, err
	}
	if err := s.adm.admit(); err != nil {
		s.shed.Add(1)
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.adm.release()
		s.errors.Add(1)
		return nil, ErrClosed
	}
	if c, ok := s.inflight[node]; ok {
		// Raced with another registration for the same node; join it.
		s.mu.Unlock()
		s.adm.release()
		c.extendDeadline(deadlineOf(ctx))
		s.collapsed.Add(1)
		return s.wait(ctx, c)
	}
	c := &call{id: node, done: make(chan struct{}), enq: start, admitted: true}
	c.deadline.Store(deadlineOf(ctx))
	s.inflight[node] = c
	s.queued.Add(1)
	s.mu.Unlock()

	// Plain blocking send, deliberately NOT select-ing on ctx: other
	// requests may already have collapsed onto this call, and abandoning
	// it here would fail them all with this caller's cancellation. The
	// send cannot wedge — a call registered before close is always
	// consumed by the batcher (or by its shutdown drain, which keeps
	// receiving until the queued counter empties), and admission bounds
	// in-flight sends to the channel capacity — and this caller's own ctx
	// is still honored below in wait.
	s.reqs <- c
	return s.wait(ctx, c)
}

// ScoreMany scores a set of nodes, coalescing them through the same
// micro-batching queue (at most 4*MaxBatch concurrently, so an
// arbitrarily large bulk request cannot spawn unbounded goroutines).
// Scores and errors are positional: one failed node does not discard the
// others' results. Returned score slices are shared, same contract as
// Score. errors.Join the second return value for a single verdict.
func (s *Server) ScoreMany(ctx context.Context, nodes []int64) ([][]float64, []error) {
	out := make([][]float64, len(nodes))
	errs := make([]error, len(nodes))
	sem := make(chan struct{}, 4*s.cfg.MaxBatch)
	var wg sync.WaitGroup
	for i, id := range nodes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id int64) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = s.Score(ctx, id)
		}(i, id)
	}
	wg.Wait()
	return out, errs
}

// ScoreLink returns the model's link logit for the (src, dst) pair — the
// online edge-level workload (fraud-pair scoring, recommendation). The warm
// path is two shard lookups plus one pairwise-head forward, with no k-hop
// extraction; endpoints missing from the store (new or dirtied by
// mutations) resolve cold through the same micro-batched single-flight
// pipeline as node scoring, then the pair is scored off the fresh
// embeddings. Requires a model built with ModelConfig.EdgeHead.
//
// Each endpoint embedding is individually consistent with some committed
// graph version; under a concurrent Apply the two endpoints may straddle
// versions for that one request — the next request converges, the same
// staleness window as node scoring.
func (s *Server) ScoreLink(ctx context.Context, src, dst int64) (float64, error) {
	s.linkRequests.Add(1)
	if s.model.Edge == nil {
		s.errors.Add(1)
		return 0, ErrNoEdgeHead
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return 0, ErrClosed
	}
	hs, okS := s.lookupRowLocked(src)
	hd, okD := s.lookupRowLocked(dst)
	s.mu.Unlock()
	if okS && okD {
		s.linkWarm.Add(1)
		return s.scoreRows(hs, hd), nil
	}
	// Queue every missing endpoint before waiting on either, so the
	// batcher can fold both cold extractions into one micro-batch (and a
	// pair of dirty endpoints costs one forward pass, not two).
	var cs, cd *call
	var err error
	if !okS {
		if hs, cs, err = s.embedStart(ctx, src); err != nil {
			return 0, err
		}
	}
	if !okD {
		if hd, cd, err = s.embedStart(ctx, dst); err != nil {
			return 0, err
		}
	}
	if cs != nil {
		var emb []float64
		if emb, err = s.waitEmb(ctx, cs); err != nil {
			return 0, err
		}
		hs = F64Row(emb)
	}
	if cd != nil {
		var emb []float64
		if emb, err = s.waitEmb(ctx, cd); err != nil {
			return 0, err
		}
		hd = F64Row(emb)
	}
	s.linkCold.Add(1)
	return s.scoreRows(hs, hd), nil
}

// scoreRows runs the pairwise edge head on two rows in whatever codecs
// they arrive in. When both rows are int8-quantized and the head is a
// plain dot product, the score is computed directly on the packed payloads
// (integer accumulate, one final rescale) — the dequantize-free warm path.
// Every other combination decodes to floats first.
func (s *Server) scoreRows(u, v Row) float64 {
	if s.model.Edge.Kind == gnn.EdgeHeadDot && u.Codec() == CodecQ8 && v.Codec() == CodecQ8 {
		return quantDot(u, v)
	}
	return s.model.Edge.ScoreVec(u.Floats(nil), v.Floats(nil))
}

// embedStart resolves one node's layer-K embedding or queues its
// computation: warm hits return the stored row (native codec) immediately; otherwise the
// returned call is registered with the batcher (sharing any in-flight
// Score/ScoreLink computation for the same node, single-flight) and the
// caller collects it with waitEmb. A dirty row recomputed this way
// re-admits warm for everyone, same as node scoring. Queueing a fresh
// computation passes admission control: a saturated cold path sheds the
// link request with a *ShedError instead of registering.
func (s *Server) embedStart(ctx context.Context, node int64) (Row, *call, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return Row{}, nil, ErrClosed
	}
	if row, ok := s.lookupRowLocked(node); ok {
		s.mu.Unlock()
		return row, nil, nil
	}
	if c, ok := s.inflight[node]; ok {
		s.mu.Unlock()
		c.extendDeadline(deadlineOf(ctx))
		s.collapsed.Add(1)
		return Row{}, c, nil
	}
	s.mu.Unlock()
	if err := s.adm.admit(); err != nil {
		s.shed.Add(1)
		return Row{}, nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.adm.release()
		s.errors.Add(1)
		return Row{}, nil, ErrClosed
	}
	if c, ok := s.inflight[node]; ok {
		s.mu.Unlock()
		s.adm.release()
		c.extendDeadline(deadlineOf(ctx))
		s.collapsed.Add(1)
		return Row{}, c, nil
	}
	c := &call{id: node, done: make(chan struct{}), enq: time.Now(), admitted: true}
	c.deadline.Store(deadlineOf(ctx))
	s.inflight[node] = c
	s.queued.Add(1)
	s.mu.Unlock()
	// Same deliberate plain send as Score: a registered call is always
	// consumed by the batcher or its shutdown drain.
	s.reqs <- c
	return Row{}, c, nil
}

func (s *Server) waitEmb(ctx context.Context, c *call) ([]float64, error) {
	select {
	case <-c.done:
		// Deadline first: a result that arrives past the caller's
		// deadline is strictly never delivered, even when c.done and
		// ctx.Done() race.
		if err := ctx.Err(); err != nil {
			s.errors.Add(1)
			return nil, err
		}
		if c.err != nil {
			s.errors.Add(1)
			return nil, c.err
		}
		if c.emb == nil {
			s.errors.Add(1)
			return nil, fmt.Errorf("serve: no embedding computed for node %d", c.id)
		}
		return c.emb, nil
	case <-ctx.Done():
		s.errors.Add(1)
		return nil, ctx.Err()
	}
}

// Stats snapshots the request and mutation counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	version := s.version
	dirtyRows := int64(len(s.dirty))
	s.mu.Unlock()
	return Stats{
		Requests:     s.requests.Load(),
		CacheHits:    s.hits.Load(),
		Collapsed:    s.collapsed.Load(),
		Warm:         s.warm.Load(),
		Cold:         s.cold.Load(),
		Batches:      s.batches.Load(),
		Errors:       s.errors.Load(),
		Shed:         s.shed.Load(),
		Expired:      s.expired.Load(),
		ColdPending:  s.adm.pending.Load(),
		LinkRequests: s.linkRequests.Load(),
		LinkWarm:     s.linkWarm.Load(),
		LinkCold:     s.linkCold.Load(),
		Version:      version,
		Applies:      s.applies.Load(),
		Mutations:    s.mutations.Load(),
		Invalidated:  s.invalidations.Load(),
		Readmitted:   s.readmitted.Load(),
		DirtyRows:    dirtyRows,
	}
}

// Close shuts the batcher down. In-flight requests fail with ErrClosed.
// The flight recorder appends one final sample (so a run's tail is always
// covered) before its file mirror is closed.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	<-s.done
	if s.flight != nil {
		if !already {
			close(s.flightStop)
		}
		<-s.flightDone
	}
	return nil
}

func (s *Server) wait(ctx context.Context, c *call) ([]float64, error) {
	select {
	case <-c.done:
		// Deadline first (see waitEmb): never deliver a success past it.
		if err := ctx.Err(); err != nil {
			s.errors.Add(1)
			return nil, err
		}
		if c.err != nil {
			s.errors.Add(1)
		}
		return c.scores, c.err
	case <-ctx.Done():
		s.errors.Add(1)
		return nil, ctx.Err()
	}
}

// fail resolves a call without scoring it (shutdown drain).
func (s *Server) fail(c *call, err error) {
	s.mu.Lock()
	if s.inflight[c.id] == c {
		delete(s.inflight, c.id)
	}
	s.mu.Unlock()
	if c.admitted {
		s.adm.release()
	}
	c.err = err
	close(c.done)
}

// batcher is the single consumer of the request queue. After the first
// request it greedily drains whatever else is already queued (optionally
// lingering MaxWait for stragglers), then scores the whole batch in one
// go; requests arriving mid-computation form the next batch.
func (s *Server) batcher() {
	defer close(s.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.stop:
			s.drain()
			return
		case c := <-s.reqs:
			s.queued.Add(-1)
			batch := []*call{c}
			if s.cfg.MaxWait > 0 {
				timer.Reset(s.cfg.MaxWait)
			linger:
				for len(batch) < s.cfg.MaxBatch {
					select {
					case c2 := <-s.reqs:
						s.queued.Add(-1)
						batch = append(batch, c2)
					case <-timer.C:
						break linger
					case <-s.stop:
						break linger
					}
				}
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			}
		greedy:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case c2 := <-s.reqs:
					s.queued.Add(-1)
					batch = append(batch, c2)
				default:
					break greedy
				}
			}
			s.process(batch)
		}
	}
}

// drain resolves every outstanding call at shutdown. Calls registered
// before the closed flag flipped may still be on their way into the
// queue, so it keeps consuming until the queued counter reaches zero.
func (s *Server) drain() {
	for {
		select {
		case c := <-s.reqs:
			s.queued.Add(-1)
			s.fail(c, ErrClosed)
			continue
		default:
		}
		if s.queued.Load() == 0 {
			return
		}
		select {
		case c := <-s.reqs:
			s.queued.Add(-1)
			s.fail(c, ErrClosed)
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// lookupRowLocked resolves a node's warm row in its stored codec: dirty
// rows miss (they must recompute on the current graph version), the
// overlay (recomputed/installed rows) shadows the base store. The payload
// may alias store or overlay memory; overlay entries are replaced, never
// mutated in place, so a returned row stays valid after the lock drops.
// Callers hold s.mu.
func (s *Server) lookupRowLocked(id int64) (Row, bool) {
	if _, isDirty := s.dirty[id]; isDirty {
		return Row{}, false
	}
	if row, ok := s.overlay[id]; ok {
		return row, true
	}
	return s.store.LookupRow(id)
}

// process scores one micro-batch: store-backed nodes through the
// prediction slice, the rest through one merged forward pass. The whole
// batch runs against one graph version (the flattener snapshot taken at
// entry); results are admitted to the cache and store only if no mutation
// batch committed meanwhile, so a concurrent Apply can never be shadowed
// by an in-flight computation on the old version.
func (s *Server) process(batch []*call) {
	s.batches.Add(1)
	s.recordBatch(len(batch))
	var coldCalls []*call
	var warmRows []Row // parallel to the warm prefix handled inline

	s.mu.Lock()
	flat := s.flat
	ver := s.version
	warmCalls := batch[:0:0]
	for _, c := range batch {
		if row, ok := s.lookupRowLocked(c.id); ok {
			warmCalls = append(warmCalls, c)
			warmRows = append(warmRows, row)
			continue
		}
		coldCalls = append(coldCalls, c)
	}
	s.mu.Unlock()

	// Deadline triage before any compute. A warm entry (a row that turned
	// warm between registration and processing) is dropped if its deadline
	// has already passed; a cold entry is dropped if the deadline will
	// have passed by the time this batch's forward pass can complete
	// (EWMA service-time estimate) — spending the forward pass on it
	// would only delay the batchmates that can still make theirs.
	now := time.Now().UnixNano()
	coldEst := int64(len(coldCalls)) * s.adm.perReqNs.Load()
	keptW, keptE := warmCalls[:0], warmRows[:0]
	for i, c := range warmCalls {
		if c.deadline.Load() < now {
			c.err = ErrExpired
			s.expired.Add(1)
			continue
		}
		keptW = append(keptW, c)
		keptE = append(keptE, warmRows[i])
	}
	warmCalls, warmRows = keptW, keptE
	kept := coldCalls[:0]
	for _, c := range coldCalls {
		if c.deadline.Load() < now+coldEst {
			c.err = ErrExpired
			s.expired.Add(1)
			continue
		}
		kept = append(kept, c)
	}
	coldCalls = kept

	for i, c := range warmCalls {
		// FloatsCopy, not Floats: the row payload is a lookup view into
		// store memory, and c.emb outlives this batch (ScoreLink waiters
		// read it after resolution; for mmap-backed stores the view also
		// dies with Close).
		c.emb = warmRows[i].FloatsCopy()
		c.scores = core.ScoresFromLogits(gnn.ApplyDense(s.head.Head, c.emb))
		s.warm.Add(1)
		s.observeWarm(time.Since(c.enq))
	}

	coldStart := time.Now()
	var coldRecs []*wire.TrainRecord
	kept = coldCalls[:0]
	for _, c := range coldCalls {
		rec, err := flat.GraphFeature(c.id)
		if err != nil {
			c.err = err
			continue
		}
		kept = append(kept, c)
		coldRecs = append(coldRecs, rec)
	}
	coldCalls = kept

	var coldEmb *tensor.Matrix
	if len(coldRecs) > 0 {
		// The whole cold pass — batch assembly, adjacency normalization,
		// layer activations — runs out of the batcher-owned workspace;
		// scores and the (small) per-target embeddings are copied out
		// before the deferred reset recycles it for the next micro-batch.
		defer s.ws.Reset()
		opt := gnn.RunOptions{Workspace: s.ws}
		b, err := core.AssembleBatchWS(s.ws, coldRecs, s.model.Cfg.Classes, false)
		if err != nil {
			for _, c := range coldCalls {
				c.err = fmt.Errorf("serve: batch assembly: %w", err)
			}
		} else {
			// Forward (rather than Infer) keeps the target rows' layer-K
			// embeddings, which re-admit recomputed dirty rows warm below.
			prep := s.model.Prepare(b.Graph, opt)
			st := s.model.Forward(b.Graph, prep, opt)
			coldEmb = st.Emb
			for i, c := range coldCalls {
				c.scores = core.ScoresFromLogits(st.Logits.Row(i))
				c.emb = append([]float64(nil), coldEmb.Row(i)...)
				s.cold.Add(1)
				s.observeCold(time.Since(c.enq))
			}
		}
		s.adm.observe(len(coldRecs), time.Since(coldStart))
	}

	s.mu.Lock()
	fresh := ver == s.version
	for _, c := range batch {
		if c.err == nil && fresh {
			s.cache.add(c.id, c.scores)
		}
		if s.inflight[c.id] == c {
			delete(s.inflight, c.id)
		}
	}
	if fresh && coldEmb != nil {
		for _, c := range coldCalls {
			if c.err != nil {
				continue
			}
			if _, isDirty := s.dirty[c.id]; isDirty {
				// c.emb is already a heap copy of coldEmb.Row(i); recomputed
				// rows re-admit full-precision even over a quantized base
				// store — the overlay is resident memory either way.
				s.overlay[c.id] = F64Row(c.emb)
				delete(s.dirty, c.id)
				s.readmitted.Add(1)
			}
		}
	}
	s.mu.Unlock()
	for _, c := range batch {
		if c.admitted {
			s.adm.release()
		}
		close(c.done)
	}
}

// observeWarm folds one warm-path latency into the current flight interval.
func (s *Server) observeWarm(d time.Duration) {
	if s.flight == nil {
		return
	}
	s.flightMu.Lock()
	s.warmHist.observe(d.Microseconds())
	s.flightMu.Unlock()
}

// observeCold folds one cold-path latency into the current flight interval.
func (s *Server) observeCold(d time.Duration) {
	if s.flight == nil {
		return
	}
	s.flightMu.Lock()
	s.coldHist.observe(d.Microseconds())
	s.flightMu.Unlock()
}

// recordBatch tracks the largest batch drained this flight interval.
func (s *Server) recordBatch(n int) {
	for {
		cur := s.batchMaxWin.Load()
		if int64(n) <= cur || s.batchMaxWin.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// ClusterHealth is a cumulative snapshot of cluster-health counters,
// produced by the cluster layer (see Replica) and sampled into AGLFR002
// flight samples. All fields are monotonic totals; the recorder turns
// them into per-interval deltas.
type ClusterHealth struct {
	HeartbeatsMissed int64 `json:"heartbeats_missed"`
	Failovers        int64 `json:"failovers"`
	ProxiedRetries   int64 `json:"proxied_retries"`
	BreakerOpens     int64 `json:"breaker_opens"`
}

// SetClusterHealth registers the cluster-health counter source sampled
// once per flight interval. Single-process servers never call this; the
// AGLFR002 cluster fields then stay zero.
func (s *Server) SetClusterHealth(fn func() ClusterHealth) {
	s.health.Store(fn)
}

func (s *Server) clusterHealth() ClusterHealth {
	if fn, ok := s.health.Load().(func() ClusterHealth); ok && fn != nil {
		return fn()
	}
	return ClusterHealth{}
}

// flightCounters is the recorder's previous-tick snapshot; samples carry
// per-interval deltas so a flat line really means "nothing happened".
type flightCounters struct {
	requests, hits, warm, cold, batches int64
	shed, expired, errs, applies        int64
	health                              ClusterHealth
}

func (s *Server) snapCounters() flightCounters {
	return flightCounters{
		requests: s.requests.Load() + s.linkRequests.Load(),
		hits:     s.hits.Load(),
		warm:     s.warm.Load() + s.linkWarm.Load(),
		cold:     s.cold.Load() + s.linkCold.Load(),
		batches:  s.batches.Load(),
		shed:     s.shed.Load(),
		expired:  s.expired.Load(),
		errs:     s.errors.Load(),
		applies:  s.applies.Load(),
		health:   s.clusterHealth(),
	}
}

// recorder is the flight-recorder goroutine: every cfg.FlightInterval it
// appends one sample of counter deltas, gauges, and latency percentiles to
// the ring (and its file mirror, when configured). One final sample is
// taken at shutdown so the tail of a run is always covered.
func (s *Server) recorder() {
	defer close(s.flightDone)
	defer s.flight.Close()
	tick := time.NewTicker(s.cfg.FlightInterval)
	defer tick.Stop()
	// Baseline is server birth (all counters zero), not goroutine start:
	// requests racing the recorder's spin-up must not vanish from the
	// first interval's deltas — sum(samples) always equals the totals.
	var prev flightCounters
	for {
		select {
		case <-tick.C:
			prev = s.sample(prev)
		case <-s.flightStop:
			s.sample(prev)
			return
		}
	}
}

func (s *Server) sample(prev flightCounters) flightCounters {
	cur := s.snapCounters()
	s.flightMu.Lock()
	warm50 := s.warmHist.percentile(0.50)
	warm99 := s.warmHist.percentile(0.99)
	cold50 := s.coldHist.percentile(0.50)
	cold99 := s.coldHist.percentile(0.99)
	s.warmHist.reset()
	s.coldHist.reset()
	s.flightMu.Unlock()
	s.mu.Lock()
	dirty := len(s.dirty)
	s.mu.Unlock()
	fs := FlightSample{
		UnixNanos:  time.Now().UnixNano(),
		QueueDepth: clampU32(s.adm.pending.Load()),
		BatchMax:   clampU32(s.batchMaxWin.Swap(0)),
		Requests:   clampU32(cur.requests - prev.requests),
		CacheHits:  clampU32(cur.hits - prev.hits),
		Warm:       clampU32(cur.warm - prev.warm),
		Cold:       clampU32(cur.cold - prev.cold),
		Batches:    clampU32(cur.batches - prev.batches),
		Shed:       clampU32(cur.shed - prev.shed),
		Expired:    clampU32(cur.expired - prev.expired),
		Errors:     clampU32(cur.errs - prev.errs),
		WarmP50us:  warm50,
		WarmP99us:  warm99,
		ColdP50us:  cold50,
		ColdP99us:  cold99,
		DirtyRows:  clampU32(int64(dirty)),
		Applies:    clampU32(cur.applies - prev.applies),

		HeartbeatsMissed: clampU32(cur.health.HeartbeatsMissed - prev.health.HeartbeatsMissed),
		Failovers:        clampU32(cur.health.Failovers - prev.health.Failovers),
		ProxiedRetries:   clampU32(cur.health.ProxiedRetries - prev.health.ProxiedRetries),
		BreakerOpens:     clampU32(cur.health.BreakerOpens - prev.health.BreakerOpens),
	}
	s.flight.Append(fs) // best-effort: a failed file write keeps the in-memory ring going
	return cur
}

func clampU32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// Flight returns the retained flight-recorder samples oldest-first (nil
// when the recorder is disabled via a negative FlightInterval).
func (s *Server) Flight() []FlightSample {
	if s.flight == nil {
		return nil
	}
	return s.flight.Samples()
}

// FlightSpec describes the recorder configuration for /metrics handlers.
type FlightSpec struct {
	Interval time.Duration
	Slots    int
	Path     string
}

// FlightInfo reports the recorder configuration (zero value if disabled).
func (s *Server) FlightInfo() FlightSpec {
	if s.flight == nil {
		return FlightSpec{}
	}
	return FlightSpec{Interval: s.cfg.FlightInterval, Slots: s.cfg.FlightSlots, Path: s.cfg.FlightPath}
}

// lruCache is a minimal bounded LRU over score vectors. Callers hold the
// server mutex.
type lruCache struct {
	cap int
	ll  *list.List
	m   map[int64]*list.Element
}

type lruEntry struct {
	id     int64
	scores []float64
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[int64]*list.Element)}
}

func (l *lruCache) get(id int64) ([]float64, bool) {
	if e, ok := l.m[id]; ok {
		l.ll.MoveToFront(e)
		return e.Value.(*lruEntry).scores, true
	}
	return nil, false
}

// remove evicts one entry, reporting whether it was present.
func (l *lruCache) remove(id int64) bool {
	if e, ok := l.m[id]; ok {
		l.ll.Remove(e)
		delete(l.m, id)
		return true
	}
	return false
}

func (l *lruCache) add(id int64, scores []float64) {
	if e, ok := l.m[id]; ok {
		e.Value.(*lruEntry).scores = scores
		l.ll.MoveToFront(e)
		return
	}
	l.m[id] = l.ll.PushFront(&lruEntry{id: id, scores: scores})
	if l.ll.Len() > l.cap {
		last := l.ll.Back()
		l.ll.Remove(last)
		delete(l.m, last.Value.(*lruEntry).id)
	}
}
