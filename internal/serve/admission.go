package serve

// Admission control for the cold path. The micro-batcher's queue is the
// only place the server can build unbounded latency under overload: warm
// and cache-hit requests complete inline, but a cold request costs a k-hop
// extraction plus a forward pass, and once the queue holds more work than
// the engine can clear within a request deadline, every queued request is
// already dead — it just doesn't know yet. The admission controller keeps
// the queue short enough that admitted requests can still meet deadlines,
// and turns the rest into an explicit, machine-readable shed the caller
// can retry against (HTTP 429 + Retry-After at the aglserve edge).
//
// The controller is deliberately simple: a hard cap on in-flight cold
// requests (admitted but not yet completed) plus an EWMA of per-request
// cold-path service time used to compute honest Retry-After hints. The cap
// doubles as the safety invariant for the batcher's plain channel send:
// pending <= limit <= QueueDepth, so the send can never block on a full
// channel while holding admission.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the sentinel wrapped by every ShedError; callers can
// errors.Is(err, ErrOverloaded) without caring about the hint fields.
var ErrOverloaded = errors.New("serve: cold path overloaded")

// ShedError reports an admission rejection with a retry hint.
type ShedError struct {
	RetryAfter time.Duration // estimated time until the queue has room
	Pending    int           // cold requests in flight at rejection time
	Limit      int           // the admission cap that was hit
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: cold path overloaded (%d/%d in flight, retry after %s)",
		e.Pending, e.Limit, e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return ErrOverloaded }

// admission caps in-flight cold-path requests and tracks service time.
type admission struct {
	limit    int64
	maxBatch int64
	pending  atomic.Int64
	// perReqNs is an EWMA of cold-path service time per request in a
	// batch, updated by the batcher after each cold section.
	perReqNs atomic.Int64
}

func newAdmission(limit, maxBatch int) *admission {
	a := &admission{limit: int64(limit), maxBatch: int64(maxBatch)}
	a.perReqNs.Store(int64(2 * time.Millisecond)) // prior until first batch
	return a
}

// admit reserves a slot, or returns a ShedError when the cap is reached.
// Every successful admit must be paired with exactly one release.
func (a *admission) admit() error {
	for {
		p := a.pending.Load()
		if p >= a.limit {
			return &ShedError{
				RetryAfter: a.retryAfter(p),
				Pending:    int(p),
				Limit:      int(a.limit),
			}
		}
		if a.pending.CompareAndSwap(p, p+1) {
			return nil
		}
	}
}

func (a *admission) release() { a.pending.Add(-1) }

// observe folds one cold section (n requests served in d) into the EWMA.
func (a *admission) observe(n int, d time.Duration) {
	if n <= 0 {
		return
	}
	per := int64(d) / int64(n)
	old := a.perReqNs.Load()
	a.perReqNs.Store(old + (per-old)/4) // EWMA alpha 1/4
}

// estimate returns the expected cold-path wait for a request entering now
// with p requests already ahead of it: full batches ahead plus its own.
func (a *admission) estimate(p int64) time.Duration {
	batches := p/a.maxBatch + 1
	return time.Duration(batches * a.maxBatch * a.perReqNs.Load())
}

// retryAfter is the shed hint: how long until enough of the backlog has
// drained that a retry is likely to be admitted. Floor of 5ms so clients
// never busy-spin on a hint of zero.
func (a *admission) retryAfter(p int64) time.Duration {
	d := a.estimate(p)
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}
