// Package serve is AGL's online inference tier: a read-optimized embedding
// store loaded from GraphInfer's K-round outputs, a micro-batching request
// queue that coalesces concurrent cold lookups into single forward passes,
// and a bounded LRU score cache with single-flight deduplication. The batch
// pipelines (GraphFlat/GraphTrainer/GraphInfer) produce artifacts offline;
// this package answers per-node score requests at request latency.
//
// The serving graph is mutable: Server.Apply streams mutation batches onto
// versioned copy-on-write snapshots, and a reverse k-hop dependency index
// keeps the cache and store incrementally consistent (dynamic.go).
//
// Three store backends implement the Store interface: MemStore holds the
// embeddings on the heap (sharded, built directly from GraphInfer output),
// MappedStore (store_mmap.go) serves a fixed-stride on-disk layout through
// mmap with zero deserialization, so the resident footprint is whatever
// the page cache keeps warm rather than the whole store, and QuantStore
// (store_quant.go) packs each row to int8 with a per-row affine scale and
// zero-point — ~8x smaller rows, served either dequantize-on-read or,
// for dot-product edge heads, scored directly in the quantized domain.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"sort"
)

// Store magics identify the sharded heap-store layout; the trailing digits
// bump on incompatible changes. Version 02 appends a CRC64 per shard;
// ReadStore still accepts the checksum-less 01 files.
var (
	storeMagic   = [8]byte{'A', 'G', 'L', 'E', 'M', 'B', '0', '2'}
	storeMagicV1 = [8]byte{'A', 'G', 'L', 'E', 'M', 'B', '0', '1'}
)

// crcTable is the CRC64 polynomial shared by every store format.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Store is the read interface of an embedding store backend. The serving
// tier (Server, ScoreLink, dynamic invalidation) works identically over
// any implementation; MemStore keeps float64 embeddings on the heap,
// MappedStore serves an mmap'd file, QuantStore serves int8-quantized
// rows. Rows travel as typed Row values carrying their codec, so packed
// layouts flow through the tier without being decoded at the store
// boundary — the old `Lookup(id) []float64` surface could only express
// raw float views and forced every backend to decode eagerly.
//
// Aliasing contract: the Row payload returned by LookupRow/Range is a
// view into the backend's memory (a heap slab for MemStore, the mapped
// region for MappedStore/QuantStore). It must be treated as read-only and
// must be cloned (Row.Clone / Row.FloatsCopy) before being retained
// across a batch boundary, stored in any structure that outlives the
// current request, or exposed to code that may mutate it — for the
// mmap-backed stores, writing through the view would fault or corrupt the
// shared page-cache pages, and the view dies with Close. LookupInto is
// the exception: it always decodes into caller-owned memory.
type Store interface {
	// LookupRow returns the stored row for id in the backend's native
	// codec. The payload aliases backend memory — see the interface
	// comment for the contract.
	LookupRow(id int64) (Row, bool)
	// LookupInto decodes the stored row for id to float64s in dst (reused
	// when its capacity suffices, allocated otherwise). The result is
	// caller-owned — never a backend view.
	LookupInto(dst []float64, id int64) ([]float64, bool)
	// RowCodec returns the codec every stored row uses.
	RowCodec() Codec
	// Len returns the number of stored embeddings.
	Len() int
	// Dim returns the embedding dimensionality (0 for an empty store).
	Dim() int
	// Range iterates the stored (id, row) pairs until fn returns false.
	// The row payload aliases backend memory, same contract as LookupRow;
	// it is only valid for the duration of the callback.
	Range(fn func(id int64, row Row) bool)
	// WriteTo serializes the store in the backend's native on-disk layout.
	WriteTo(w io.Writer) (int64, error)
}

// MemStore is the heap-resident Store backend: node ids hash across
// shards, and each shard keeps a sorted id array plus one flat float64
// slab holding the embeddings back to back. Lookups are a shard hash plus
// a binary search, no allocation.
//
// A MemStore is immutable after construction and safe for concurrent
// readers.
type MemStore struct {
	dim    int
	count  int
	shards []storeShard
}

type storeShard struct {
	ids  []int64   // sorted ascending
	data []float64 // len(ids)*dim, embedding i at [i*dim, (i+1)*dim)
}

// NewStore builds a heap store over GraphInfer's final-layer embeddings
// (InferResult.Embeddings). numShards <= 0 selects a default; every
// embedding must share one dimensionality.
func NewStore(numShards int, embeddings map[int64][]float64) (*MemStore, error) {
	if numShards <= 0 {
		numShards = 16
	}
	s := &MemStore{shards: make([]storeShard, numShards)}
	for id, h := range embeddings {
		if s.dim == 0 {
			s.dim = len(h)
		}
		if len(h) != s.dim || len(h) == 0 {
			return nil, fmt.Errorf("serve: embedding for node %d has dim %d, want %d", id, len(h), s.dim)
		}
		sh := &s.shards[shardOf(id, numShards)]
		sh.ids = append(sh.ids, id)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sort.Slice(sh.ids, func(a, b int) bool { return sh.ids[a] < sh.ids[b] })
		sh.data = make([]float64, 0, len(sh.ids)*s.dim)
		for _, id := range sh.ids {
			sh.data = append(sh.data, embeddings[id]...)
		}
		s.count += len(sh.ids)
	}
	return s, nil
}

// shardOf maps a node id to its shard (Fibonacci hashing: cheap and
// well-mixed even for sequential ids).
func shardOf(id int64, shards int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(shards))
}

// lookup returns the stored embedding slice for id, aliasing the shard
// slab.
func (s *MemStore) lookup(id int64) ([]float64, bool) {
	if s == nil || s.count == 0 {
		return nil, false
	}
	sh := &s.shards[shardOf(id, len(s.shards))]
	i := sort.Search(len(sh.ids), func(j int) bool { return sh.ids[j] >= id })
	if i == len(sh.ids) || sh.ids[i] != id {
		return nil, false
	}
	return sh.data[i*s.dim : (i+1)*s.dim : (i+1)*s.dim], true
}

// LookupRow returns the stored row for id. The payload aliases the
// store's slab — read-only, clone before retaining (see Store).
func (s *MemStore) LookupRow(id int64) (Row, bool) {
	v, ok := s.lookup(id)
	if !ok {
		return Row{}, false
	}
	return F64Row(v), true
}

// LookupInto decodes the stored row for id into caller-owned memory.
func (s *MemStore) LookupInto(dst []float64, id int64) ([]float64, bool) {
	v, ok := s.lookup(id)
	if !ok {
		return nil, false
	}
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	}
	dst = dst[:len(v)]
	copy(dst, v)
	return dst, true
}

// RowCodec returns CodecF64: MemStore rows are full-precision floats.
func (s *MemStore) RowCodec() Codec { return CodecF64 }

// Len returns the number of stored embeddings.
func (s *MemStore) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Dim returns the embedding dimensionality (0 for an empty store).
func (s *MemStore) Dim() int {
	if s == nil {
		return 0
	}
	return s.dim
}

// Range iterates the stored rows shard by shard (ids ascending within a
// shard). The row payload aliases the shard slab, valid only for the
// duration of the callback.
func (s *MemStore) Range(fn func(id int64, row Row) bool) {
	if s == nil {
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		for j, id := range sh.ids {
			if !fn(id, F64Row(sh.data[j*s.dim:(j+1)*s.dim:(j+1)*s.dim])) {
				return
			}
		}
	}
}

// WriteTo serializes the store in its flat layout: magic, shard count and
// dim, then per shard a count, the raw id and float arrays, and a CRC64
// over the shard's encoded bytes. A nil receiver writes a valid empty
// store.
func (s *MemStore) WriteTo(w io.Writer) (int64, error) {
	if s == nil {
		s = &MemStore{shards: make([]storeShard, 1)}
	}
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := write(storeMagic); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(s.shards))); err != nil {
		return cw.n, err
	}
	if err := write(uint32(s.dim)); err != nil {
		return cw.n, err
	}
	for i := range s.shards {
		sh := &s.shards[i]
		crc := crc64.New(crcTable)
		tee := io.MultiWriter(cw, crc)
		wr := func(v any) error { return binary.Write(tee, binary.LittleEndian, v) }
		if err := wr(uint64(len(sh.ids))); err != nil {
			return cw.n, err
		}
		if err := wr(sh.ids); err != nil {
			return cw.n, err
		}
		if err := wr(sh.data); err != nil {
			return cw.n, err
		}
		if err := write(crc.Sum64()); err != nil {
			return cw.n, err
		}
	}
	return cw.n, bw.Flush()
}

// ReadStore deserializes a heap store written by WriteTo. It accepts both
// the current checksummed format (AGLEMB02) and the legacy AGLEMB01
// layout; truncation, garbage headers, and checksum mismatches return
// descriptive errors carrying the byte offset of the failure.
func ReadStore(r io.Reader) (*MemStore, error) {
	cr := &countingReader{r: bufio.NewReader(r)}
	read := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }
	var magic [8]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("serve: store header truncated at offset %d: %w", cr.n, noEOF(err))
	}
	checksummed := magic == storeMagic
	if !checksummed && magic != storeMagicV1 {
		return nil, fmt.Errorf("serve: bad store magic %q at offset 0 (want %q or %q)",
			magic[:], storeMagic[:], storeMagicV1[:])
	}
	var shards, dim uint32
	if err := read(&shards); err != nil {
		return nil, fmt.Errorf("serve: store header truncated at offset %d: %w", cr.n, noEOF(err))
	}
	if err := read(&dim); err != nil {
		return nil, fmt.Errorf("serve: store header truncated at offset %d: %w", cr.n, noEOF(err))
	}
	if shards == 0 || shards > 1<<20 || dim > 1<<20 {
		return nil, fmt.Errorf("serve: implausible store header at offset 8 (shards=%d dim=%d)", shards, dim)
	}
	s := &MemStore{dim: int(dim), shards: make([]storeShard, shards)}
	for i := range s.shards {
		crc := crc64.New(crcTable)
		shr := io.Reader(cr)
		if checksummed {
			shr = io.TeeReader(cr, crc)
		}
		rd := func(v any) error { return binary.Read(shr, binary.LittleEndian, v) }
		var n uint64
		if err := rd(&n); err != nil {
			return nil, fmt.Errorf("serve: store truncated in shard %d header at offset %d: %w",
				i, cr.n, noEOF(err))
		}
		// Bound the allocation a corrupt/truncated header can trigger:
		// 2^28 embeddings per shard and 2^31 floats (16 GiB) of payload.
		if n > 1<<28 || n*uint64(s.dim) > 1<<31 {
			return nil, fmt.Errorf("serve: implausible shard %d size %d (dim %d) at offset %d",
				i, n, s.dim, cr.n)
		}
		sh := &s.shards[i]
		sh.ids = make([]int64, n)
		if err := rd(sh.ids); err != nil {
			return nil, fmt.Errorf("serve: store truncated in shard %d ids at offset %d: %w",
				i, cr.n, noEOF(err))
		}
		sh.data = make([]float64, int(n)*s.dim)
		if err := rd(sh.data); err != nil {
			return nil, fmt.Errorf("serve: store truncated in shard %d embeddings at offset %d: %w",
				i, cr.n, noEOF(err))
		}
		if checksummed {
			var want uint64
			if err := read(&want); err != nil {
				return nil, fmt.Errorf("serve: store truncated in shard %d checksum at offset %d: %w",
					i, cr.n, noEOF(err))
			}
			if got := crc.Sum64(); got != want {
				return nil, fmt.Errorf("serve: shard %d checksum mismatch at offset %d: got %#016x, want %#016x",
					i, cr.n-8, got, want)
			}
		}
		s.count += int(n)
	}
	return s, nil
}

// noEOF rewrites a bare io.EOF as io.ErrUnexpectedEOF: every read here is
// mid-structure, so running out of input is always a truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader tracks how many bytes the decoder has consumed, so parse
// errors can report where in the file they happened.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
