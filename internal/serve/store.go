// Package serve is AGL's online inference tier: a read-optimized embedding
// store loaded from GraphInfer's K-round outputs, a micro-batching request
// queue that coalesces concurrent cold lookups into single forward passes,
// and a bounded LRU score cache with single-flight deduplication. The batch
// pipelines (GraphFlat/GraphTrainer/GraphInfer) produce artifacts offline;
// this package answers per-node score requests at request latency.
//
// The serving graph is mutable: Server.Apply streams mutation batches onto
// versioned copy-on-write snapshots, and a reverse k-hop dependency index
// keeps the cache and store incrementally consistent (dynamic.go).
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// storeMagic identifies the flat store layout; bump the trailing digits on
// incompatible changes.
var storeMagic = [8]byte{'A', 'G', 'L', 'E', 'M', 'B', '0', '1'}

// Store is a sharded, read-only embedding store: node ids hash across
// shards, and each shard keeps a sorted id array plus one flat float64
// slab holding the embeddings back to back. The layout is deliberately
// mmap-friendly — fixed-width little-endian arrays with no per-entry
// framing — so a serialized store can be paged in lazily; lookups are a
// shard hash plus a binary search, no allocation.
//
// A Store is immutable after construction and safe for concurrent readers.
type Store struct {
	dim    int
	count  int
	shards []storeShard
}

type storeShard struct {
	ids  []int64   // sorted ascending
	data []float64 // len(ids)*dim, embedding i at [i*dim, (i+1)*dim)
}

// NewStore builds a store over GraphInfer's final-layer embeddings
// (InferResult.Embeddings). numShards <= 0 selects a default; every
// embedding must share one dimensionality.
func NewStore(numShards int, embeddings map[int64][]float64) (*Store, error) {
	if numShards <= 0 {
		numShards = 16
	}
	s := &Store{shards: make([]storeShard, numShards)}
	for id, h := range embeddings {
		if s.dim == 0 {
			s.dim = len(h)
		}
		if len(h) != s.dim || len(h) == 0 {
			return nil, fmt.Errorf("serve: embedding for node %d has dim %d, want %d", id, len(h), s.dim)
		}
		sh := &s.shards[shardOf(id, numShards)]
		sh.ids = append(sh.ids, id)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sort.Slice(sh.ids, func(a, b int) bool { return sh.ids[a] < sh.ids[b] })
		sh.data = make([]float64, 0, len(sh.ids)*s.dim)
		for _, id := range sh.ids {
			sh.data = append(sh.data, embeddings[id]...)
		}
		s.count += len(sh.ids)
	}
	return s, nil
}

// shardOf maps a node id to its shard (Fibonacci hashing: cheap and
// well-mixed even for sequential ids).
func shardOf(id int64, shards int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(shards))
}

// Lookup returns the stored embedding for id. The returned slice aliases
// the store's slab and must not be modified.
func (s *Store) Lookup(id int64) ([]float64, bool) {
	if s == nil || s.count == 0 {
		return nil, false
	}
	sh := &s.shards[shardOf(id, len(s.shards))]
	i := sort.Search(len(sh.ids), func(j int) bool { return sh.ids[j] >= id })
	if i == len(sh.ids) || sh.ids[i] != id {
		return nil, false
	}
	return sh.data[i*s.dim : (i+1)*s.dim : (i+1)*s.dim], true
}

// Len returns the number of stored embeddings.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Dim returns the embedding dimensionality (0 for an empty store).
func (s *Store) Dim() int {
	if s == nil {
		return 0
	}
	return s.dim
}

// WriteTo serializes the store in its flat layout: magic, shard count and
// dim, then per shard a count followed by the raw id and float arrays.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := write(storeMagic); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(s.shards))); err != nil {
		return cw.n, err
	}
	if err := write(uint32(s.dim)); err != nil {
		return cw.n, err
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if err := write(uint64(len(sh.ids))); err != nil {
			return cw.n, err
		}
		if err := write(sh.ids); err != nil {
			return cw.n, err
		}
		if err := write(sh.data); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadStore deserializes a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var magic [8]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("serve: store header: %w", err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("serve: bad store magic %q", magic[:])
	}
	var shards, dim uint32
	if err := read(&shards); err != nil {
		return nil, err
	}
	if err := read(&dim); err != nil {
		return nil, err
	}
	if shards == 0 || shards > 1<<20 || dim > 1<<20 {
		return nil, fmt.Errorf("serve: implausible store header (shards=%d dim=%d)", shards, dim)
	}
	s := &Store{dim: int(dim), shards: make([]storeShard, shards)}
	for i := range s.shards {
		var n uint64
		if err := read(&n); err != nil {
			return nil, err
		}
		// Bound the allocation a corrupt/truncated header can trigger:
		// 2^28 embeddings per shard and 2^31 floats (16 GiB) of payload.
		if n > 1<<28 || n*uint64(s.dim) > 1<<31 {
			return nil, fmt.Errorf("serve: implausible shard size %d (dim %d)", n, s.dim)
		}
		sh := &s.shards[i]
		sh.ids = make([]int64, n)
		if err := read(sh.ids); err != nil {
			return nil, err
		}
		sh.data = make([]float64, int(n)*s.dim)
		if err := read(sh.data); err != nil {
			return nil, err
		}
		s.count += int(n)
	}
	return s, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
