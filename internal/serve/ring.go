package serve

// Flight recorder: an ftdc-style fixed-size ring of per-interval counter
// samples, always on and cheap enough to never turn off (~72 bytes/second).
// The ring lives in memory and, when a path is configured, is mirrored to a
// fixed-size binary file slot-by-slot so a crashed or wedged process leaves
// behind the last N intervals for post-hoc diagnosis without logs.
//
// File layout (little-endian):
//
//	offset 0   magic   "AGLFR002" (8 bytes)
//	offset 8   slotSize  uint32   (bytes per sample, currently 88)
//	offset 12  slotCount uint32   (ring capacity)
//	offset 16  writeSeq  uint64   (total samples ever appended)
//	offset 24  reserved  8 bytes  (zero)
//	offset 32  slots     slotCount * slotSize bytes
//
// Slot i holds sample writeSeq' where writeSeq' % slotCount == i; the oldest
// retained sample is writeSeq-slotCount (when the ring has wrapped). Each
// slot write is a single WriteAt followed by a WriteAt of the header seq, so
// a torn final slot is detectable (its UnixNanos predates its neighbors) but
// never corrupts older samples.
//
// Version history: AGLFR001 used 72-byte slots (16 counter fields);
// AGLFR002 appends four cluster-health counters for 88-byte slots.
// ReadFlightFile decodes both — the four new fields read as zero from an
// AGLFR001 file.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sync"
)

const (
	flightMagic    = "AGLFR002"
	flightMagicV1  = "AGLFR001"
	flightHdrSize  = 32
	flightSlotSize = 88
	flightSlotV1   = 72
	flightSeqOff   = 16
)

// FlightSample is one interval of serving-tier counters. Counter fields are
// deltas over the interval; gauge fields (QueueDepth, DirtyRows) are
// sampled at interval end. Latency percentiles are in microseconds, computed
// from a per-interval histogram (power-of-two buckets, so values are upper
// bounds accurate to 2x — good enough for flight-recorder triage).
type FlightSample struct {
	UnixNanos  int64  `json:"unix_nanos"`  // sample timestamp
	QueueDepth uint32 `json:"queue_depth"` // cold requests admitted but not completed (gauge)
	BatchMax   uint32 `json:"batch_max"`   // largest batch drained this interval
	Requests   uint32 `json:"requests"`    // Score/ScoreLink calls entering the server
	CacheHits  uint32 `json:"cache_hits"`
	Warm       uint32 `json:"warm"`
	Cold       uint32 `json:"cold"`
	Batches    uint32 `json:"batches"` // batches processed
	Shed       uint32 `json:"shed"`    // requests rejected by admission control
	Expired    uint32 `json:"expired"` // requests dropped from a batch past their deadline
	Errors     uint32 `json:"errors"`  // requests that failed for any other reason
	WarmP50us  uint32 `json:"warm_p50_us"`
	WarmP99us  uint32 `json:"warm_p99_us"`
	ColdP50us  uint32 `json:"cold_p50_us"`
	ColdP99us  uint32 `json:"cold_p99_us"`
	DirtyRows  uint32 `json:"dirty_rows"` // store rows shadowed by the dynamic overlay (gauge)
	Applies    uint32 `json:"applies"`    // mutation batches applied

	// Cluster-health counters (AGLFR002; zero outside cluster mode).
	HeartbeatsMissed uint32 `json:"heartbeats_missed"` // peers seen suspect/dead by the failure detector
	Failovers        uint32 `json:"failovers"`         // committed failover tables
	ProxiedRetries   uint32 `json:"proxied_retries"`   // idempotent proxied-read retry attempts
	BreakerOpens     uint32 `json:"breaker_opens"`     // per-peer circuit-breaker open transitions
}

func (s *FlightSample) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(s.UnixNanos))
	for i, v := range s.fields() {
		le.PutUint32(buf[8+4*i:], v)
	}
}

// decode reads as many fields as buf holds — an AGLFR001 slot (72 bytes)
// fills the first 16 and leaves the cluster counters zero.
func (s *FlightSample) decode(buf []byte) {
	le := binary.LittleEndian
	s.UnixNanos = int64(le.Uint64(buf[0:]))
	f := []*uint32{
		&s.QueueDepth, &s.BatchMax, &s.Requests, &s.CacheHits,
		&s.Warm, &s.Cold, &s.Batches, &s.Shed,
		&s.Expired, &s.Errors, &s.WarmP50us, &s.WarmP99us,
		&s.ColdP50us, &s.ColdP99us, &s.DirtyRows, &s.Applies,
		&s.HeartbeatsMissed, &s.Failovers, &s.ProxiedRetries, &s.BreakerOpens,
	}
	for i, p := range f {
		off := 8 + 4*i
		if off+4 > len(buf) {
			break
		}
		*p = le.Uint32(buf[off:])
	}
}

func (s *FlightSample) fields() [20]uint32 {
	return [20]uint32{
		s.QueueDepth, s.BatchMax, s.Requests, s.CacheHits,
		s.Warm, s.Cold, s.Batches, s.Shed,
		s.Expired, s.Errors, s.WarmP50us, s.WarmP99us,
		s.ColdP50us, s.ColdP99us, s.DirtyRows, s.Applies,
		s.HeartbeatsMissed, s.Failovers, s.ProxiedRetries, s.BreakerOpens,
	}
}

// FlightRing is the in-memory ring plus its optional file mirror. All
// methods are safe for concurrent use; Append is called by the server's
// recorder goroutine, Samples by /metrics handlers and tests.
type FlightRing struct {
	mu    sync.Mutex
	slots []FlightSample
	seq   uint64 // total appended
	f     *os.File
	buf   [flightSlotSize]byte
}

// NewFlightRing creates a ring with the given capacity, mirrored to path
// when path is non-empty (the file is created or truncated and sized up
// front, so disk usage is fixed for the life of the process).
func NewFlightRing(capacity int, path string) (*FlightRing, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("serve: flight ring capacity must be > 0, got %d", capacity)
	}
	r := &FlightRing{slots: make([]FlightSample, capacity)}
	if path != "" {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("serve: create flight file: %w", err)
		}
		hdr := make([]byte, flightHdrSize)
		copy(hdr, flightMagic)
		binary.LittleEndian.PutUint32(hdr[8:], flightSlotSize)
		binary.LittleEndian.PutUint32(hdr[12:], uint32(capacity))
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: write flight header: %w", err)
		}
		if err := f.Truncate(int64(flightHdrSize + capacity*flightSlotSize)); err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: size flight file: %w", err)
		}
		r.f = f
	}
	return r, nil
}

// Append records one sample, overwriting the slot of the sample
// capacity intervals ago once the ring has wrapped.
func (r *FlightRing) Append(s FlightSample) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := int(r.seq % uint64(len(r.slots)))
	r.slots[i] = s
	r.seq++
	if r.f == nil {
		return nil
	}
	s.encode(r.buf[:])
	if _, err := r.f.WriteAt(r.buf[:], int64(flightHdrSize+i*flightSlotSize)); err != nil {
		return fmt.Errorf("serve: write flight slot: %w", err)
	}
	var seq [8]byte
	binary.LittleEndian.PutUint64(seq[:], r.seq)
	if _, err := r.f.WriteAt(seq[:], flightSeqOff); err != nil {
		return fmt.Errorf("serve: write flight seq: %w", err)
	}
	return nil
}

// Len reports how many samples are currently retained.
func (r *FlightRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.slots)) {
		return int(r.seq)
	}
	return len(r.slots)
}

// Seq reports the total number of samples ever appended.
func (r *FlightRing) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Samples returns the retained samples oldest-first.
func (r *FlightRing) Samples() []FlightSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.slots))
	out := make([]FlightSample, 0, n)
	start := uint64(0)
	if r.seq > n {
		start = r.seq - n
	}
	for s := start; s < r.seq; s++ {
		out = append(out, r.slots[s%n])
	}
	return out
}

// Close syncs and closes the file mirror, if any.
func (r *FlightRing) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Sync()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	r.f = nil
	return err
}

// ReadFlightFile decodes a flight-recorder file into oldest-first samples.
// It tolerates a live writer: the header seq is read once and slots decoded
// from the resulting window, so a concurrent Append can at worst make the
// newest sample appear twice-written (same slot, newer content) — never a
// decode error.
func ReadFlightFile(path string) ([]FlightSample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, flightHdrSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("serve: flight header: %w", err)
	}
	var wantSlot uint32
	switch string(hdr[:8]) {
	case flightMagic:
		wantSlot = flightSlotSize
	case flightMagicV1:
		wantSlot = flightSlotV1
	default:
		return nil, fmt.Errorf("serve: not a flight file (magic %q)", hdr[:8])
	}
	slotSize := binary.LittleEndian.Uint32(hdr[8:])
	count := binary.LittleEndian.Uint32(hdr[12:])
	seq := binary.LittleEndian.Uint64(hdr[16:])
	if slotSize != wantSlot {
		return nil, fmt.Errorf("serve: flight slot size %d unsupported (want %d)", slotSize, wantSlot)
	}
	if count == 0 || count > 1<<24 {
		return nil, fmt.Errorf("serve: flight slot count %d out of range", count)
	}
	ss := int(slotSize)
	raw := make([]byte, int(count)*ss)
	if _, err := io.ReadFull(f, raw); err != nil {
		return nil, fmt.Errorf("serve: flight slots: %w", err)
	}
	n := uint64(count)
	start := uint64(0)
	if seq > n {
		start = seq - n
	}
	out := make([]FlightSample, 0, seq-start)
	for s := start; s < seq; s++ {
		var fs FlightSample
		i := int(s%n) * ss
		fs.decode(raw[i : i+ss])
		out = append(out, fs)
	}
	return out, nil
}

// latHist is a lock-free-enough latency histogram with power-of-two
// microsecond buckets, reset each flight interval. Callers hold the
// server's stats mutex (flightMu) around observe/snapshot.
type latHist struct {
	buckets [32]uint32 // bucket i counts latencies in [2^i, 2^(i+1)) µs
	count   uint32
}

func (h *latHist) observe(us int64) {
	if us < 1 {
		us = 1
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	h.count++
}

// percentile returns an upper bound on the q-quantile (q in [0,1]) in µs.
func (h *latHist) percentile(q float64) uint32 {
	if h.count == 0 {
		return 0
	}
	rank := uint32(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint32
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			return uint32(1) << uint(i+1) // bucket upper bound
		}
	}
	return 1 << 31
}

func (h *latHist) reset() { *h = latHist{} }
