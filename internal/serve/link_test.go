package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
)

// testLinkGraph mirrors testGraph but builds a link model (edge head).
func testLinkGraph(t *testing.T, kind string) (*graph.Graph, *gnn.Model, *core.InferResult) {
	t.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 250, FeatDim: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 8, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: 21, EdgeHead: kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Infer(core.InferConfig{Seed: 4, TempDir: t.TempDir(), KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		t.Fatal(err)
	}
	return ds.G, model, res
}

// TestScoreLinkWarmMatchesCold pins the warm pair path (two store lookups +
// pairwise head) to the cold path (request-time k-hop extraction) on a
// store-less twin server: both must produce the same logit.
func TestScoreLinkWarmMatchesCold(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadBilinear)
	store, err := NewStore(0, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	warmSrv, err := New(Config{Seed: 4}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer warmSrv.Close()
	coldModel, err := gnn.UnmarshalModel(mustMarshal(t, model))
	if err != nil {
		t.Fatal(err)
	}
	coldSrv, err := New(Config{Seed: 4}, coldModel, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer coldSrv.Close()

	ids := g.IDs()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		src, dst := ids[i], ids[(i*13+7)%len(ids)]
		if src == dst {
			continue
		}
		warm, err := warmSrv.ScoreLink(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := coldSrv.ScoreLink(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(warm-cold) > 1e-9 {
			t.Fatalf("pair (%d,%d): warm %v vs cold %v", src, dst, warm, cold)
		}
	}
	ws, cs := warmSrv.Stats(), coldSrv.Stats()
	if ws.LinkWarm == 0 || ws.LinkCold != 0 {
		t.Fatalf("warm server stats: %+v", ws)
	}
	if cs.LinkCold == 0 || cs.LinkWarm != 0 {
		t.Fatalf("cold server stats: %+v", cs)
	}
}

func mustMarshal(t *testing.T, m *gnn.Model) []byte {
	t.Helper()
	b, err := gnn.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScoreLinkErrors(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadDot)
	store, err := NewStore(0, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 4}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	ids := g.IDs()

	// Unknown endpoint: ErrUnknownNode, distinguishable for a 404.
	if _, err := srv.ScoreLink(ctx, 99999999, ids[0]); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown src: got %v", err)
	}
	if _, err := srv.ScoreLink(ctx, ids[0], 99999999); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown dst: got %v", err)
	}

	// A node-task model must reject link requests loudly.
	plainG, plainModel, _ := testGraph(t)
	plainSrv, err := New(Config{Seed: 4}, plainModel, plainG, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plainSrv.Close()
	if _, err := plainSrv.ScoreLink(ctx, ids[0], ids[1]); !errors.Is(err, ErrNoEdgeHead) {
		t.Fatalf("edge-head-less model: got %v", err)
	}
}

// TestScoreLinkMutationConsistency applies a feature mutation to one
// endpoint and checks the next link score is recomputed on the new graph
// (cold), matches a freshly built server, and re-admits the row warm.
func TestScoreLinkMutationConsistency(t *testing.T) {
	g, model, inf := testLinkGraph(t, gnn.EdgeHeadBilinear)
	store, err := NewStore(0, inf.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 4}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	ids := g.IDs()
	src, dst := ids[3], ids[11]

	before, err := srv.ScoreLink(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}

	newFeat := make([]float64, g.FeatureDim())
	for i := range newFeat {
		newFeat[i] = 9
	}
	res, err := srv.Apply(context.Background(), []graph.Mutation{graph.UpdateNodeFeat(src, newFeat)})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	after, err := srv.ScoreLink(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-before) < 1e-12 {
		t.Fatal("link score unchanged after endpoint feature mutation (stale embedding?)")
	}
	st := srv.Stats()
	if st.LinkCold == 0 {
		t.Fatalf("mutated endpoint did not take the cold path: %+v", st)
	}
	// The recomputed row was re-admitted: the next request is warm again.
	warmBefore := st.LinkWarm
	again, err := srv.ScoreLink(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if again != after {
		t.Fatalf("readmitted score drifted: %v vs %v", again, after)
	}
	if srv.Stats().LinkWarm != warmBefore+1 {
		t.Fatalf("recomputed row not re-admitted warm: %+v", srv.Stats())
	}

	// Cross-check against a server built fresh on the mutated graph.
	freshModel, err := gnn.UnmarshalModel(mustMarshal(t, model))
	if err != nil {
		t.Fatal(err)
	}
	mutatedG, _ := srv.Graph()
	freshSrv, err := New(Config{Seed: 4}, freshModel, mutatedG, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer freshSrv.Close()
	want, err := freshSrv.ScoreLink(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-want) > 1e-9 {
		t.Fatalf("post-mutation link score %v, fresh server %v", after, want)
	}
}

// TestScoreLinkConcurrent hammers ScoreLink and Score for overlapping nodes
// under the race detector; cold endpoint embeddings must single-flight with
// node scoring.
func TestScoreLinkConcurrent(t *testing.T) {
	g, model, _ := testLinkGraph(t, gnn.EdgeHeadDot)
	srv, err := New(Config{Seed: 4}, model, g, nil) // no store: everything cold
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ids := g.IDs()
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					if _, err := srv.ScoreLink(ctx, ids[i%7], ids[(i+1)%7]); err != nil {
						errCh <- err
						return
					}
				} else {
					if _, err := srv.Score(ctx, ids[i%7]); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := srv.Stats()
	if st.LinkRequests == 0 || st.LinkCold == 0 {
		t.Fatalf("link accounting lost requests: %+v", st)
	}
}
