package serve

import (
	"fmt"
	"math"
)

// Codec identifies the packed layout of a stored embedding row. It is the
// descriptor half of the Store redesign: a Row carries its codec with it,
// so call sites that only ever need float64s decode through Floats, while
// codec-aware paths (the quantized dot-product scorer, the wire encoders)
// branch on Codec and work on the packed payload directly.
type Codec uint8

const (
	// CodecF64 is the full-precision layout: 8 bytes per dimension.
	CodecF64 Codec = iota
	// CodecQ8 is the int8 affine-quantized layout: 1 byte per dimension
	// plus a per-row float32 scale and zero-point. A stored q decodes to
	// (float64(q) - zero) * scale.
	CodecQ8
)

// String returns the codec's wire name.
func (c Codec) String() string {
	switch c {
	case CodecF64:
		return "f64"
	case CodecQ8:
		return "q8"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// Row is one embedding in its stored codec. Exactly one payload slice is
// populated: F64 for CodecF64 rows, Q8 (plus Scale/Zero) for CodecQ8 rows.
// A zero Row means "no row".
//
// Aliasing contract: a Row returned by a Store lookup or Range may alias
// backend memory (a heap slab, or mmap'd pages that become invalid after
// Close). Treat the payload as read-only and use Clone or FloatsCopy
// before retaining it past the lookup.
type Row struct {
	F64 []float64

	Q8    []int8
	Scale float32 // CodecQ8: dequantization scale, > 0 for a valid row
	Zero  float32 // CodecQ8: zero-point, in quantized units
}

// F64Row wraps a float64 vector as a full-precision Row. The slice is
// referenced, not copied.
func F64Row(v []float64) Row { return Row{F64: v} }

// Q8Row wraps a quantized payload as an int8 Row. The slice is referenced,
// not copied.
func Q8Row(q []int8, scale, zero float32) Row {
	return Row{Q8: q, Scale: scale, Zero: zero}
}

// Codec returns the row's layout. A zero Row reports CodecF64.
func (r Row) Codec() Codec {
	if r.Q8 != nil {
		return CodecQ8
	}
	return CodecF64
}

// Dim returns the row's dimensionality.
func (r Row) Dim() int {
	if r.Q8 != nil {
		return len(r.Q8)
	}
	return len(r.F64)
}

// IsZero reports whether the row carries no payload.
func (r Row) IsZero() bool { return r.F64 == nil && r.Q8 == nil }

// Floats returns the row decoded to float64s. For CodecF64 rows it returns
// the payload itself (a view — same aliasing contract as the Row); for
// CodecQ8 rows it dequantizes into buf (reused when its capacity suffices,
// allocated otherwise). Callers that retain the result must use FloatsCopy.
func (r Row) Floats(buf []float64) []float64 {
	if r.Q8 == nil {
		return r.F64
	}
	return dequantInto(buf, r.Q8, r.Scale, r.Zero)
}

// FloatsCopy returns the row decoded to float64s in freshly allocated
// memory the caller owns.
func (r Row) FloatsCopy() []float64 {
	if r.Q8 == nil {
		if r.F64 == nil {
			return nil
		}
		return append([]float64(nil), r.F64...)
	}
	return dequantInto(make([]float64, len(r.Q8)), r.Q8, r.Scale, r.Zero)
}

// Clone returns a deep copy of the row in its native codec.
func (r Row) Clone() Row {
	cp := r
	if r.F64 != nil {
		cp.F64 = append([]float64(nil), r.F64...)
	}
	if r.Q8 != nil {
		cp.Q8 = append([]int8(nil), r.Q8...)
	}
	return cp
}

// quantizeRow encodes src into dst (len(dst) == len(src)) with per-row
// affine int8 quantization: scale spans the row's [min, max] across the
// 255 usable steps and zero maps min to -128, so the absolute
// reconstruction error is at most scale/2. Both parameters are rounded to
// float32 before quantizing, so encode and decode see identical values.
// Non-finite inputs are rejected: NaN/Inf have no meaningful affine image
// and would silently poison the whole row's scale.
func quantizeRow(dst []int8, src []float64) (scale, zero float32, err error) {
	if len(dst) != len(src) {
		return 0, 0, fmt.Errorf("serve: quantize: dst dim %d != src dim %d", len(dst), len(src))
	}
	low, high := math.Inf(1), math.Inf(-1)
	for i, v := range src {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, fmt.Errorf("serve: quantize: non-finite value %v at dim %d", v, i)
		}
		if v < low {
			low = v
		}
		if v > high {
			high = v
		}
	}
	var s64 float64
	switch {
	case len(src) == 0:
		return 1, 0, nil
	case low == high && low == 0:
		s64 = 1
	case low == high:
		s64 = math.Abs(low) / 127
	default:
		s64 = (high - low) / 255
	}
	scale = float32(s64)
	s64 = float64(scale) // quantize against the value decode will see
	zero = float32(-128 - low/s64)
	z64 := float64(zero)
	for i, v := range src {
		q := math.Round(v/s64 + z64)
		if q < -128 {
			q = -128
		} else if q > 127 {
			q = 127
		}
		dst[i] = int8(q)
	}
	return scale, zero, nil
}

// dequantInto decodes q into dst (reused when capacity suffices, allocated
// otherwise) and returns the decoded slice.
func dequantInto(dst []float64, q []int8, scale, zero float32) []float64 {
	if cap(dst) < len(q) {
		dst = make([]float64, len(q))
	}
	dst = dst[:len(q)]
	s, z := float64(scale), float64(zero)
	for i, v := range q {
		dst[i] = (float64(v) - z) * s
	}
	return dst
}

// quantDot computes the dot product of two quantized rows without
// dequantizing either: expanding sum((qu-zu)*su * (qv-zv)*sv) gives three
// integer accumulators (exact in int64 — |q| <= 128, so d <= 2^48 dims
// before sum(qu*qv) could overflow) and one final float rescale.
func quantDot(u, v Row) float64 {
	var qq, su64, sv64 int64
	vq := v.Q8[:len(u.Q8)] // hoist the bounds check out of the loop
	for i, a := range u.Q8 {
		b := vq[i]
		qq += int64(a) * int64(b)
		su64 += int64(a)
		sv64 += int64(b)
	}
	zu, zv := float64(u.Zero), float64(v.Zero)
	d := float64(len(u.Q8))
	return float64(u.Scale) * float64(v.Scale) *
		(float64(qq) - zv*float64(su64) - zu*float64(sv64) + d*zu*zv)
}
