//go:build !unix

package serve

import "os"

// mmapFile on platforms without syscall.Mmap reads the whole file into a
// heap buffer — same semantics (read-only view of the file's bytes, O(1)
// header validation already done by the caller), without the bounded
// resident footprint. The second return is false: nothing to munmap.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	b := make([]byte, size)
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func munmapFile(b []byte) error { return nil }
