package serve

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"agl/internal/graph"
)

// TestStressConcurrentMixedTraffic hammers one server from many goroutines
// with a mix of cache hits, warm store lookups and cold forward passes —
// the -race tripwire for the serving hot path. Every response must agree
// with the offline GraphInfer score for its node.
func TestStressConcurrentMixedTraffic(t *testing.T) {
	g, model, res := testGraph(t)
	// Half the nodes in the store (warm), half absent (cold); a tiny cache
	// forces constant eviction churn.
	embs := make(map[int64][]float64)
	for i, n := range g.Nodes {
		if i%2 == 0 {
			embs[n.ID] = res.Embeddings[n.ID]
		}
	}
	store, err := NewStore(4, embs)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 4, CacheSize: 16, MaxBatch: 8}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const goroutines = 32
	const perG = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Skewed access: low indices repeat often (hits), the rest
				// spread across the graph (misses, both warm and cold).
				idx := (w*perG + i*i) % len(g.Nodes)
				id := g.Nodes[idx].ID
				got, err := srv.Score(context.Background(), id)
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(got[0]-res.Scores[id][0]) > 1e-9 {
					t.Errorf("node %d: served %v offline %v", id, got[0], res.Scores[id][0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Requests != goroutines*perG {
		t.Fatalf("requests %d, want %d", st.Requests, goroutines*perG)
	}
	if st.Warm == 0 || st.Cold == 0 || st.CacheHits == 0 {
		t.Fatalf("expected all three tiers exercised, got %+v", st)
	}
}

// TestSingleFlightCollapsesHubNode: a burst of concurrent requests for one
// cold hub node must compute exactly one forward pass; everyone else waits
// on the in-flight call or hits the cache.
func TestSingleFlightCollapsesHubNode(t *testing.T) {
	g, model, res := testGraph(t)
	srv, err := New(Config{Seed: 4}, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hub := g.Nodes[0].ID
	const burst = 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	scores := make([][]float64, burst)
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			scores[i], errs[i] = srv.Score(context.Background(), hub)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if scores[i][0] != scores[0][0] {
			t.Fatalf("request %d got %v, request 0 got %v", i, scores[i][0], scores[0][0])
		}
	}
	if math.Abs(scores[0][0]-res.Scores[hub][0]) > 1e-9 {
		t.Fatalf("hub score %v, offline %v", scores[0][0], res.Scores[hub][0])
	}
	st := srv.Stats()
	if st.Cold != 1 {
		t.Fatalf("hub burst ran %d forward computations, want exactly 1 (stats %+v)", st.Cold, st)
	}
	if st.Collapsed+st.CacheHits != burst-1 {
		t.Fatalf("collapse accounting off: %+v", st)
	}
}

// TestStressConcurrentScoreAndApply races mutation batches against full
// score traffic — the -race tripwire for the invalidation path (LRU
// eviction, dirty marking, flattener swaps, overlay re-admission all
// interleaving with lookups). Every response must be a valid score; after
// the writers drain, every node must agree with a cold recompute on the
// final graph.
func TestStressConcurrentScoreAndApply(t *testing.T) {
	g, model, res := testGraph(t)
	embs := make(map[int64][]float64)
	for i, n := range g.Nodes {
		if i%2 == 0 {
			embs[n.ID] = res.Embeddings[n.ID]
		}
	}
	store, err := NewStore(4, embs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 4, CacheSize: 32, MaxBatch: 8}
	srv, err := New(cfg, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ids := g.IDs()
	const readers = 16
	const writers = 2
	const perReader = 60
	const batchesPerWriter = 25

	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for b := 0; b < batchesPerWriter; b++ {
				var muts []graph.Mutation
				for k := 0; k < 4; k++ {
					s := ids[rng.Intn(len(ids))]
					d := ids[rng.Intn(len(ids))]
					if s == d {
						continue
					}
					if rng.Intn(2) == 0 {
						muts = append(muts, graph.AddEdge(s, d, 1))
					} else {
						feat := make([]float64, 6)
						feat[0] = rng.NormFloat64()
						muts = append(muts, graph.UpdateNodeFeat(s, feat))
					}
				}
				if _, err := srv.Apply(context.Background(), muts); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				id := ids[(w*perReader+i*i)%len(ids)]
				scores, err := srv.Score(context.Background(), id)
				if err != nil {
					errs <- err
					return
				}
				if len(scores) != 1 || math.IsNaN(scores[0]) {
					t.Errorf("node %d: bad score %v", id, scores)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: every served score must now equal a cold recompute on the
	// final mutated graph (sampling disabled → exact).
	cur, ver := srv.Graph()
	if ver == 0 {
		t.Fatal("no mutation batch applied")
	}
	want := coldRecompute(t, cfg, cloneModel(t, model), cur, ids)
	for _, id := range ids {
		got, err := srv.Score(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-want[id][0]) > 1e-9 {
			t.Fatalf("node %d after churn: served %v, recompute %v", id, got[0], want[id][0])
		}
	}
}

// TestConcurrentCloseDuringTraffic races shutdown against live requests:
// every Score must resolve (result or ErrClosed), never hang.
func TestConcurrentCloseDuringTraffic(t *testing.T) {
	g, model, _ := testGraph(t)
	srv, err := New(Config{Seed: 4, MaxBatch: 4}, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := g.Nodes[(w*20+i)%len(g.Nodes)].ID
				_, _ = srv.Score(context.Background(), id) // ErrClosed is fine
			}
		}(w)
	}
	srv.Close()
	wg.Wait()
}
