package serve

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
)

// testGraph builds a small power-law graph plus a trained-shape model and
// its GraphInfer result — the offline artifacts a server is loaded from.
func testGraph(t *testing.T) (*graph.Graph, *gnn.Model, *core.InferResult) {
	t.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 250, FeatDim: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 8, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Infer(core.InferConfig{Seed: 4, TempDir: t.TempDir(), KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		t.Fatal(err)
	}
	return ds.G, model, res
}

func TestStoreLookupAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	embs := make(map[int64][]float64)
	for i := 0; i < 500; i++ {
		h := make([]float64, 8)
		for j := range h {
			h[j] = rng.NormFloat64()
		}
		embs[int64(i*7-100)] = h // mixed negative/positive ids
	}
	store, err := NewStore(5, embs)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(embs) || store.Dim() != 8 {
		t.Fatalf("store len=%d dim=%d, want %d/8", store.Len(), store.Dim(), len(embs))
	}
	if store.RowCodec() != CodecF64 {
		t.Fatalf("MemStore codec = %v, want %v", store.RowCodec(), CodecF64)
	}
	buf64 := make([]float64, store.Dim())
	for id, want := range embs {
		row, ok := store.LookupRow(id)
		if !ok {
			t.Fatalf("node %d missing from store", id)
		}
		got := row.Floats(nil)
		into, ok2 := store.LookupInto(buf64, id)
		if !ok2 {
			t.Fatalf("node %d missing via LookupInto", id)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d dim %d: got %v want %v", id, j, got[j], want[j])
			}
			if into[j] != want[j] {
				t.Fatalf("LookupInto node %d dim %d: got %v want %v", id, j, into[j], want[j])
			}
		}
	}
	if _, ok := store.LookupRow(99999); ok {
		t.Fatal("lookup of absent id succeeded")
	}

	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != store.Len() || loaded.Dim() != store.Dim() {
		t.Fatalf("roundtrip len=%d dim=%d, want %d/%d",
			loaded.Len(), loaded.Dim(), store.Len(), store.Dim())
	}
	for id, want := range embs {
		row, ok := loaded.LookupRow(id)
		if !ok {
			t.Fatalf("node %d missing after roundtrip", id)
		}
		got := row.Floats(nil)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("roundtrip node %d dim %d: got %v want %v", id, j, got[j], want[j])
			}
		}
	}
}

func TestReadStoreRejectsGarbage(t *testing.T) {
	if _, err := ReadStore(bytes.NewReader([]byte("not a store at all"))); err == nil {
		t.Fatal("garbage store accepted")
	}
}

// TestWarmPathMatchesGraphInfer: scores served off the embedding store must
// equal the offline GraphInfer scores — both apply the same prediction
// slice to the same layer-K embedding.
func TestWarmPathMatchesGraphInfer(t *testing.T) {
	g, model, res := testGraph(t)
	store, err := NewStore(8, res.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 4}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, n := range g.Nodes[:50] {
		got, err := srv.Score(context.Background(), n.ID)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Scores[n.ID]
		if math.Abs(got[0]-want[0]) > 1e-12 {
			t.Fatalf("node %d: serve %v offline %v", n.ID, got[0], want[0])
		}
	}
	st := srv.Stats()
	if st.Warm == 0 || st.Cold != 0 {
		t.Fatalf("expected all-warm serving, got %+v", st)
	}
}

// TestColdPathMatchesGraphInfer: with no store, the request-time k-hop
// extraction plus one forward pass must reproduce the offline scores
// (sampling disabled, so the neighborhoods are information-complete).
func TestColdPathMatchesGraphInfer(t *testing.T) {
	g, model, res := testGraph(t)
	srv, err := New(Config{Seed: 4, MaxBatch: 16}, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ids := make([]int64, 0, 40)
	for _, n := range g.Nodes[:40] {
		ids = append(ids, n.ID)
	}
	scores, errs := srv.ScoreMany(context.Background(), ids)
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		want := res.Scores[id]
		if math.Abs(scores[i][0]-want[0]) > 1e-9 {
			t.Fatalf("node %d: cold serve %v offline %v", id, scores[i][0], want[0])
		}
	}
	st := srv.Stats()
	if st.Cold == 0 || st.Warm != 0 {
		t.Fatalf("expected all-cold serving, got %+v", st)
	}
}

func TestCacheHitsSkipRecomputation(t *testing.T) {
	g, model, res := testGraph(t)
	store, err := NewStore(8, res.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Seed: 4}, model, g, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	id := g.Nodes[0].ID
	first, err := srv.Score(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := srv.Score(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if again[0] != first[0] {
			t.Fatalf("cached score changed: %v vs %v", again[0], first[0])
		}
	}
	st := srv.Stats()
	if st.CacheHits != 10 || st.Warm != 1 {
		t.Fatalf("expected 10 hits over 1 computation, got %+v", st)
	}
}

func TestLRUCacheEvicts(t *testing.T) {
	l := newLRU(2)
	l.add(1, []float64{1})
	l.add(2, []float64{2})
	if _, ok := l.get(1); !ok { // 1 is now most recent
		t.Fatal("entry 1 missing")
	}
	l.add(3, []float64{3}) // evicts 2
	if _, ok := l.get(2); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if _, ok := l.get(1); !ok {
		t.Fatal("entry 1 evicted out of LRU order")
	}
	if _, ok := l.get(3); !ok {
		t.Fatal("entry 3 missing")
	}
}

func TestUnknownNodeErrors(t *testing.T) {
	g, model, _ := testGraph(t)
	srv, err := New(Config{Seed: 4}, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Score(context.Background(), 1<<40); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("scoring an unknown node: got %v, want ErrUnknownNode", err)
	}
}

func TestScoreAfterCloseFails(t *testing.T) {
	g, model, _ := testGraph(t)
	srv, err := New(Config{Seed: 4}, model, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := srv.Score(context.Background(), g.Nodes[0].ID); err == nil {
		t.Fatal("score after close succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	g, model, _ := testGraph(t)
	bad := []Config{
		{Hops: -1},
		{MaxNeighbors: -3},
		{CacheSize: -1},
		{MaxBatch: -2},
		{MaxWait: -1},
		{QueueDepth: -5},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, model, g, nil); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := New(Config{}, nil, g, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := New(Config{}, model, nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestStoreDimMismatchRejected(t *testing.T) {
	g, model, _ := testGraph(t)
	store, err := NewStore(2, map[int64][]float64{1: {1, 2, 3}}) // dim 3 != hidden 8
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}, model, g, store); err == nil {
		t.Fatal("mismatched store dim accepted")
	}
}
