// Package dfs simulates the distributed file system AGL's pipelines write
// to: a dataset is a directory of numbered part files, each a stream of
// length-prefixed records. Writers stage to a temp file and commit with an
// atomic rename, mirroring the commit discipline of real DFS writers so a
// failed (retried) task never leaves a partial part visible.
package dfs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Dir is a dataset directory of part files.
type Dir struct {
	path string
}

// Create makes (or reuses) a dataset directory.
func Create(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: create %s: %w", path, err)
	}
	return &Dir{path: path}, nil
}

// Open opens an existing dataset directory.
func Open(path string) (*Dir, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("dfs: open %s: %w", path, err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("dfs: %s is not a directory", path)
	}
	return &Dir{path: path}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// Parts lists committed part files in order.
func (d *Dir) Parts() ([]string, error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "part-") && !strings.HasSuffix(name, ".tmp") {
			out = append(out, filepath.Join(d.path, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Remove deletes the dataset directory and all parts.
func (d *Dir) Remove() error { return os.RemoveAll(d.path) }

// PartWriter writes length-prefixed records to one part file.
type PartWriter struct {
	f       *os.File
	bw      *bufio.Writer
	tmp     string
	final   string
	lenBuf  [binary.MaxVarintLen64]byte
	Records int
	Bytes   int64
}

// Writer opens a staged writer for part number idx. Commit is atomic on
// Close; abandoning the writer (process death, task retry) leaves only a
// .tmp file that readers ignore.
func (d *Dir) Writer(idx int) (*PartWriter, error) {
	final := filepath.Join(d.path, fmt.Sprintf("part-%05d", idx))
	tmp := final + fmt.Sprintf(".%d.tmp", os.Getpid())
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("dfs: stage part %d: %w", idx, err)
	}
	return &PartWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), tmp: tmp, final: final}, nil
}

// Append writes one record.
func (w *PartWriter) Append(rec []byte) error {
	n := binary.PutUvarint(w.lenBuf[:], uint64(len(rec)))
	if _, err := w.bw.Write(w.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(rec); err != nil {
		return err
	}
	w.Records++
	w.Bytes += int64(n + len(rec))
	return nil
}

// Close flushes and atomically commits the part.
func (w *PartWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return os.Rename(w.tmp, w.final)
}

// Abort discards the staged part without committing.
func (w *PartWriter) Abort() error {
	w.f.Close()
	return os.Remove(w.tmp)
}

// PartReader iterates the records of one part file.
type PartReader struct {
	f  *os.File
	br *bufio.Reader
}

// OpenPart opens a committed part file for reading.
func OpenPart(path string) (*PartReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dfs: open part: %w", err)
	}
	return &PartReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

// Next returns the next record, or io.EOF when exhausted.
func (r *PartReader) Next() ([]byte, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dfs: read record length: %w", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("dfs: read record body: %w", err)
	}
	return buf, nil
}

// Close releases the underlying file.
func (r *PartReader) Close() error { return r.f.Close() }

// WriteAll distributes records round-robin over nParts part files.
func (d *Dir) WriteAll(records [][]byte, nParts int) error {
	if nParts < 1 {
		nParts = 1
	}
	writers := make([]*PartWriter, nParts)
	for i := range writers {
		w, err := d.Writer(i)
		if err != nil {
			return err
		}
		writers[i] = w
	}
	for i, rec := range records {
		if err := writers[i%nParts].Append(rec); err != nil {
			return err
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll loads every record from every part, in part order.
func (d *Dir) ReadAll() ([][]byte, error) {
	parts, err := d.Parts()
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, p := range parts {
		r, err := OpenPart(p)
		if err != nil {
			return nil, err
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return nil, err
			}
			out = append(out, rec)
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scan streams every record to fn, stopping on the first error.
func (d *Dir) Scan(fn func(rec []byte) error) error {
	parts, err := d.Parts()
	if err != nil {
		return err
	}
	for _, p := range parts {
		r, err := OpenPart(p)
		if err != nil {
			return err
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return err
			}
			if err := fn(rec); err != nil {
				r.Close()
				return err
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
	}
	return nil
}
