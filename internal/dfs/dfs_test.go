package dfs

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d, err := Create(filepath.Join(t.TempDir(), "ds"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma")}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records != 3 {
		t.Fatalf("Records=%d", w.Records)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], recs[0]) || len(got[1]) != 0 || !bytes.Equal(got[2], recs[2]) {
		t.Fatalf("ReadAll: %q", got)
	}
}

func TestMultiplePartsOrdered(t *testing.T) {
	d, _ := Create(filepath.Join(t.TempDir(), "ds"))
	for i := 2; i >= 0; i-- { // write out of order
		w, err := d.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append([]byte(fmt.Sprintf("part%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	parts, err := d.Parts()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts: %v", parts)
	}
	got, _ := d.ReadAll()
	for i := 0; i < 3; i++ {
		if string(got[i]) != fmt.Sprintf("part%d", i) {
			t.Fatalf("part order: %q", got)
		}
	}
}

func TestAbortLeavesNothingVisible(t *testing.T) {
	d, _ := Create(filepath.Join(t.TempDir(), "ds"))
	w, _ := d.Writer(0)
	_ = w.Append([]byte("junk"))
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	parts, _ := d.Parts()
	if len(parts) != 0 {
		t.Fatalf("aborted part visible: %v", parts)
	}
}

func TestUncommittedTmpIgnored(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	d, _ := Create(dir)
	// Simulate a crashed task: stage but never close.
	w, _ := d.Writer(0)
	_ = w.Append([]byte("half-written"))
	_ = w.bw.Flush()
	// Leave the tmp file around.
	parts, _ := d.Parts()
	if len(parts) != 0 {
		t.Fatalf("tmp file listed as part: %v", parts)
	}
	recs, err := d.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("tmp contents leaked: %q err=%v", recs, err)
	}
}

func TestWriteAllRoundRobin(t *testing.T) {
	d, _ := Create(filepath.Join(t.TempDir(), "ds"))
	var recs [][]byte
	for i := 0; i < 10; i++ {
		recs = append(recs, []byte{byte(i)})
	}
	if err := d.WriteAll(recs, 3); err != nil {
		t.Fatal(err)
	}
	parts, _ := d.Parts()
	if len(parts) != 3 {
		t.Fatalf("parts: %v", parts)
	}
	got, _ := d.ReadAll()
	if len(got) != 10 {
		t.Fatalf("records: %d", len(got))
	}
	seen := map[byte]bool{}
	for _, r := range got {
		seen[r[0]] = true
	}
	if len(seen) != 10 {
		t.Fatal("records lost or duplicated")
	}
}

func TestScanStopsOnError(t *testing.T) {
	d, _ := Create(filepath.Join(t.TempDir(), "ds"))
	_ = d.WriteAll([][]byte{{1}, {2}, {3}}, 1)
	count := 0
	err := d.Scan(func(rec []byte) error {
		count++
		if rec[0] == 2 {
			return io.ErrUnexpectedEOF
		}
		return nil
	})
	if err != io.ErrUnexpectedEOF || count != 2 {
		t.Fatalf("err=%v count=%d", err, count)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing dir")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Fatal("expected error for non-directory")
	}
}

func TestRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	d, _ := Create(dir)
	_ = d.WriteAll([][]byte{{1}}, 1)
	if err := d.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("directory still exists")
	}
}

func TestLargeRecords(t *testing.T) {
	d, _ := Create(filepath.Join(t.TempDir(), "ds"))
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	w, _ := d.Writer(0)
	if err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAll()
	if err != nil || len(got) != 1 || !bytes.Equal(got[0], big) {
		t.Fatal("large record corrupted")
	}
}
