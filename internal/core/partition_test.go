package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agl/internal/datagen"
	"agl/internal/dfs"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/wire"
)

// flattenPartitioned runs the miniCora train flatten into a partitioned
// output dataset and opens it.
func flattenPartitioned(t *testing.T, partitions int) (*PartitionSet, *datagen.Dataset, string) {
	t.Helper()
	ds, err := datagen.Cora(datagen.CoraConfig{
		Nodes: 240, Edges: 700, FeatDim: 48, Classes: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	targets := map[int64]Target{}
	for _, id := range ds.Train {
		targets[id] = Target{Label: int64(ds.LabelOf(id))}
	}
	outPath := filepath.Join(t.TempDir(), "flat")
	out, err := dfs.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Flatten(FlatConfig{
		Hops: 2, Seed: 5, TempDir: t.TempDir(),
		Output: out, Partitions: partitions,
	}, mapreduce.MemInput(TableRecords(ds.G)), targets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != nil {
		t.Fatal("partitioned flatten materialized Records")
	}
	if res.Partitioned == nil || res.Partitioned.Partitions != partitions {
		t.Fatalf("manifest %+v", res.Partitioned)
	}
	parts, err := OpenPartitions(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return parts, ds, outPath
}

// TestPartitionedFlattenMatchesUnpartitioned: partitioning must be a pure
// re-bucketing — the union of all partitions equals the unpartitioned
// flatten's records as a multiset, and every record sits in the partition
// its target id hashes to.
func TestPartitionedFlattenMatchesUnpartitioned(t *testing.T) {
	want, _, _ := miniCora(t, 2)
	parts, _, path := flattenPartitioned(t, 4)

	if !IsPartitioned(path) {
		t.Fatalf("IsPartitioned(%s) = false", path)
	}
	wantSet := map[string]int{}
	for _, rec := range want {
		wantSet[string(rec)]++
	}
	total := 0
	for i := 0; i < parts.NumPartitions(); i++ {
		recs, err := parts.Load(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != parts.Manifest().Counts[i] {
			t.Fatalf("partition %d: %d records, manifest says %d", i, len(recs), parts.Manifest().Counts[i])
		}
		for _, rec := range recs {
			tr, err := wire.DecodeTrainRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			if p := partitionOf(tr.TargetID, parts.NumPartitions()); p != i {
				t.Fatalf("target %d landed in partition %d, hashes to %d", tr.TargetID, i, p)
			}
			wantSet[string(rec)]--
			total++
		}
	}
	if total != len(want) || total != parts.Records() {
		t.Fatalf("partitions hold %d records, unpartitioned %d, manifest %d", total, len(want), parts.Records())
	}
	for _, n := range wantSet {
		if n != 0 {
			t.Fatal("partitioned records are not the same multiset as unpartitioned")
		}
	}
}

// TestOpenPartitionsRejectsUnpartitioned: a plain dataset directory has no
// manifest and must not open as a PartitionSet.
func TestOpenPartitionsRejectsUnpartitioned(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "plain")
	out, err := dfs.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.WriteAll([][]byte{[]byte("x")}, 1); err != nil {
		t.Fatal(err)
	}
	if IsPartitioned(dir) {
		t.Fatal("plain dataset reported as partitioned")
	}
	if _, err := OpenPartitions(dir); err == nil || !strings.Contains(err.Error(), "not a partitioned dataset") {
		t.Fatalf("OpenPartitions on plain dataset: %v", err)
	}
}

// TestTrainPartitionsLearns: streaming one partition at a time through the
// shared parameter server must still converge — loss decreases and the
// final model reaches the same accuracy band as in-memory Train on the
// identical dataset.
func TestTrainPartitionsLearns(t *testing.T) {
	_, test, _ := miniCora(t, 2)
	parts, _, _ := flattenPartitioned(t, 3)
	res, err := TrainPartitions(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 16, Classes: 4, Layers: 2,
			Act: nn.ActReLU, Seed: 1,
		},
		Loss: LossCE, BatchSize: 32, Epochs: 25, LR: 0.02,
		Eval: test, EvalMetric: MetricAccuracy, Seed: 2,
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 25 {
		t.Fatalf("history has %d epochs, want 25", len(res.History))
	}
	first, last := res.History[0].Loss, res.History[len(res.History)-1].Loss
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	final := res.History[len(res.History)-1]
	if !final.HasMetric || final.Metric < 0.55 {
		t.Fatalf("test accuracy %v too low (random = 0.25)", final.Metric)
	}
	if res.PSBytesOut == 0 || res.PSBytesIn == 0 {
		t.Fatalf("no PS traffic recorded: %+v", res)
	}
}

// TestTrainPartitionsMultiWorker: the per-partition worker fan-out must
// hold up with several workers sharing the PS cluster.
func TestTrainPartitionsMultiWorker(t *testing.T) {
	parts, _, _ := flattenPartitioned(t, 4)
	res, err := TrainPartitions(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 1,
			Act: nn.ActReLU, Seed: 1,
		},
		Loss: LossCE, BatchSize: 16, Epochs: 6, LR: 0.02,
		Workers: 3, PSShards: 2, Seed: 3,
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
		t.Fatal("multi-worker partition training did not learn")
	}
}

// TestTrainPartitionsValidation pins the config cross-checks.
func TestTrainPartitionsValidation(t *testing.T) {
	parts, _, _ := flattenPartitioned(t, 2)
	// Node partitions + link model: rejected.
	_, err := TrainPartitions(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 1, Layers: 1,
			Act: nn.ActReLU, Seed: 1, EdgeHead: gnn.EdgeHeadDot,
		},
		Loss: LossBCE, Epochs: 1,
	}, parts)
	if err == nil || !strings.Contains(err.Error(), "does not match model edge head") {
		t.Fatalf("link-mode mismatch: %v", err)
	}
	// FlatConfig validation: Partitions needs Output, and must be >= 0.
	if err := (FlatConfig{Partitions: 2}).Validate(); err == nil {
		t.Fatal("Partitions without Output accepted")
	}
	if err := (FlatConfig{Partitions: -1}).Validate(); err == nil {
		t.Fatal("negative Partitions accepted")
	}
}

// TestScorePartitionsMatchesPredict: the streaming scorer must reproduce
// the direct Predict logits partition by partition.
func TestScorePartitionsMatchesPredict(t *testing.T) {
	parts, _, _ := flattenPartitioned(t, 3)
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 2,
		Act: nn.ActReLU, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const bs = 32
	seen := 0
	err = ScorePartitions(model, parts, bs, gnn.RunOptions{},
		func(part int, ids []int64, scores [][]float64) error {
			recs, err := parts.Load(part)
			if err != nil {
				t.Fatal(err)
			}
			wantIDs, logits, _, _, err := Predict(model, recs, bs, gnn.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(wantIDs) {
				t.Fatalf("partition %d: %d ids, Predict %d", part, len(ids), len(wantIDs))
			}
			for i := range ids {
				if ids[i] != wantIDs[i] {
					t.Fatalf("partition %d row %d: id %d, Predict %d", part, i, ids[i], wantIDs[i])
				}
				want := ScoresFromLogits(logits.Row(i))
				for j := range want {
					if scores[i][j] != want[j] {
						t.Fatalf("partition %d id %d dim %d: %v vs %v", part, ids[i], j, scores[i][j], want[j])
					}
				}
				seen++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != parts.Records() {
		t.Fatalf("scored %d records, dataset has %d", seen, parts.Records())
	}
}

// TestFlattenLinkPartitioned: edge-target mode partitions the pair records
// by source endpoint and round-trips the unpartitioned multiset.
func TestFlattenLinkPartitioned(t *testing.T) {
	ds, err := datagen.Cora(datagen.CoraConfig{
		Nodes: 120, Edges: 350, FeatDim: 12, Classes: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []EdgeTarget
	for i, e := range ds.G.Edges {
		if i%4 == 0 && len(pairs) < 40 && e.Src != e.Dst {
			pairs = append(pairs, EdgeTarget{Src: e.Src, Dst: e.Dst, Label: 1})
		}
	}
	base := FlatConfig{Hops: 2, Seed: 5, EdgeTargets: pairs}

	cfg := base
	cfg.TempDir = t.TempDir()
	plain, err := Flatten(cfg, mapreduce.MemInput(TableRecords(ds.G)), nil)
	if err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(t.TempDir(), "flat")
	out, err := dfs.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.TempDir = t.TempDir()
	cfg.Output, cfg.Partitions = out, 3
	res, err := Flatten(cfg, mapreduce.MemInput(TableRecords(ds.G)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioned == nil || !res.Partitioned.Link {
		t.Fatalf("manifest %+v, want link partitions", res.Partitioned)
	}

	parts, err := OpenPartitions(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !parts.Link() {
		t.Fatal("PartitionSet lost the link flag")
	}
	wantSet := map[string]int{}
	for _, rec := range plain.Records {
		wantSet[string(rec)]++
	}
	total := 0
	for i := 0; i < parts.NumPartitions(); i++ {
		recs, err := parts.Load(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			lr, err := wire.DecodeLinkRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			if p := partitionOf(lr.Src, parts.NumPartitions()); p != i {
				t.Fatalf("pair src %d landed in partition %d, hashes to %d", lr.Src, i, p)
			}
			wantSet[string(rec)]--
			total++
		}
	}
	if total != len(plain.Records) {
		t.Fatalf("partitions hold %d link records, unpartitioned %d", total, len(plain.Records))
	}
	for _, n := range wantSet {
		if n != 0 {
			t.Fatal("partitioned link records differ from unpartitioned")
		}
	}
	// ScorePartitions refuses link partitions.
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 12, Hidden: 4, Classes: 1, Layers: 1,
		Act: nn.ActReLU, Seed: 2, EdgeHead: gnn.EdgeHeadDot,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = ScorePartitions(model, parts, 8, gnn.RunOptions{}, func(int, []int64, [][]float64) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "LinkRecords") {
		t.Fatalf("ScorePartitions on link partitions: %v", err)
	}
}

// TestTrainPartitionsSurfacesLoadErrors: a partition file going missing
// mid-run must surface as an error, not a hang (the prefetch goroutine is
// drained on the error path).
func TestTrainPartitionsSurfacesLoadErrors(t *testing.T) {
	parts, _, path := flattenPartitioned(t, 3)
	if err := os.Remove(filepath.Join(path, "part-00001")); err != nil {
		t.Fatal(err)
	}
	_, err := TrainPartitions(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 1,
			Act: nn.ActReLU, Seed: 1,
		},
		Loss: LossCE, Epochs: 2, Seed: 3,
	}, parts)
	if err == nil {
		t.Fatal("missing partition file went unnoticed")
	}
}

// TestPartitionSetFirstAndLoadBounds: First sniffs the first record of
// the first non-empty partition without materializing it, and Load
// rejects out-of-range indices.
func TestPartitionSetFirstAndLoadBounds(t *testing.T) {
	parts, _, _ := flattenPartitioned(t, 3)
	first, err := parts.First()
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < parts.NumPartitions(); i++ {
		if parts.Manifest().Counts[i] == 0 {
			continue
		}
		recs, err := parts.Load(i)
		if err != nil {
			t.Fatal(err)
		}
		want = recs[0]
		break
	}
	if string(first) != string(want) {
		t.Fatal("First does not match the first record of the first non-empty partition")
	}
	if _, err := parts.Load(-1); err == nil {
		t.Fatal("Load(-1) accepted")
	}
	if _, err := parts.Load(parts.NumPartitions()); err == nil {
		t.Fatal("Load past the end accepted")
	}
}

// TestScorePartitionsPropagatesCallbackError: an error returned from the
// per-partition callback must stop the scan (draining the prefetcher,
// not deadlocking it) and surface to the caller.
func TestScorePartitionsPropagatesCallbackError(t *testing.T) {
	parts, _, _ := flattenPartitioned(t, 3)
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 48, Hidden: 4, Classes: 4, Layers: 1,
		Act: nn.ActReLU, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = ScorePartitions(model, parts, 16, gnn.RunOptions{},
		func(int, []int64, [][]float64) error {
			calls++
			return fmt.Errorf("sink full")
		})
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("callback error lost: %v", err)
	}
	if calls != 1 {
		t.Fatalf("scan continued past the failing callback: %d calls", calls)
	}
}
