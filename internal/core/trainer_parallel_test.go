package core

import (
	"bytes"
	"testing"

	"agl/internal/gnn"
	"agl/internal/nn"
	"agl/internal/tensor"
)

// runFixedSeedTrain trains a small GCN with dropout and aggregation
// threading enabled (the configuration that exercises every parallel and
// workspace-backed code path) and returns the final loss, the eval metric,
// and the serialized model bytes.
func runFixedSeedTrain(t *testing.T, train, test [][]byte) (float64, float64, []byte) {
	t.Helper()
	res, err := Train(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 16, Classes: 4, Layers: 2,
			Act: nn.ActReLU, Dropout: 0.2, Seed: 1,
		},
		Loss: LossCE, BatchSize: 32, Epochs: 4, LR: 0.02,
		Pipeline: true, AggThreads: 4,
		Eval: test, EvalMetric: MetricAccuracy, Seed: 2,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := gnn.MarshalModel(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	return last.Loss, last.Metric, enc
}

// TestTrainBitIdenticalAcrossParallelism is the engine's core determinism
// guarantee: because every kernel is row-partitioned (each output row is
// produced by exactly one worker in the reference accumulation order),
// fixed-seed training produces identical losses, metrics and serialized
// model bytes whether the shared pool runs serial or wide.
func TestTrainBitIdenticalAcrossParallelism(t *testing.T) {
	train, test, _ := miniCora(t, 2)
	defer tensor.SetParallelism(tensor.SetParallelism(0))

	tensor.SetParallelism(1)
	loss1, metric1, bytes1 := runFixedSeedTrain(t, train, test)

	tensor.SetParallelism(8)
	loss8, metric8, bytes8 := runFixedSeedTrain(t, train, test)

	if loss1 != loss8 {
		t.Fatalf("final loss differs across parallelism: %v (serial) vs %v (8-way)", loss1, loss8)
	}
	if metric1 != metric8 {
		t.Fatalf("eval metric differs across parallelism: %v vs %v", metric1, metric8)
	}
	if !bytes.Equal(bytes1, bytes8) {
		t.Fatal("serialized model bytes differ across parallelism settings")
	}
}

// TestTrainWorkspaceMatchesAllocating pins the workspace plumbing itself:
// a fixed-seed run must be bit-identical whether layer temporaries come
// from the per-step arena (Train's default) or from a fresh forward pass
// with no workspace at all. Both paths share one model snapshot.
func TestTrainWorkspaceMatchesAllocating(t *testing.T) {
	train, _, _ := miniCora(t, 1)
	recs, err := DecodeRecords(train[:16])
	if err != nil {
		t.Fatal(err)
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 2,
		Act: nn.ActReLU, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Allocating path.
	b1, err := AssembleBatch(recs, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	plain := model.Infer(b1.Graph, gnn.RunOptions{})

	// Workspace path, run twice so the second pass exercises recycled
	// (dirty-capacity) buffers.
	ws := tensor.NewWorkspace()
	var wsLogits *tensor.Matrix
	for i := 0; i < 2; i++ {
		ws.Reset()
		b2, err := AssembleBatchWS(ws, recs, 4, false)
		if err != nil {
			t.Fatal(err)
		}
		wsLogits = model.Infer(b2.Graph, gnn.RunOptions{Workspace: ws})
	}
	if tensor.MaxAbsDiff(plain, wsLogits) != 0 {
		t.Fatalf("workspace-backed forward differs from allocating forward by %v",
			tensor.MaxAbsDiff(plain, wsLogits))
	}

	// The second pass must be (nearly) allocation-free on the arena side.
	gets, misses := ws.Stats()
	if gets == 0 {
		t.Fatal("workspace unused")
	}
	if misses > gets/2 {
		t.Fatalf("workspace hit rate too low: %d misses of %d gets", misses, gets)
	}
}
