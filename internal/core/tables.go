// Package core implements the AGL system itself — the paper's three
// modules, built on the substrate packages:
//
//   - GraphFlat (flatten.go): the distributed k-hop-neighborhood generator,
//     a MapReduce pipeline of one join round plus K merge/propagate rounds,
//     with hub re-indexing and the sampling framework.
//   - GraphTrainer (trainer.go, batch.go): parameter-server training over
//     self-contained GraphFeatures with the training pipeline, graph
//     pruning and edge partitioning optimizations.
//   - GraphInfer (infer.go): hierarchical model segmentation plus a K+1
//     round MapReduce inference pipeline that computes every embedding
//     exactly once.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"agl/internal/dfs"
	"agl/internal/graph"
	"agl/internal/mapreduce"
)

// Table row records are TSV lines with a leading tag column:
//
//	N <id> <f1,f2,...>          node row
//	E <src> <dst> <weight>      edge row
//
// This is the "node table and edge table" input contract of paper §3.2.1.

// EncodeNodeRow renders a node-table record.
func EncodeNodeRow(n graph.Node) []byte {
	parts := make([]string, 0, len(n.Feat))
	for _, f := range n.Feat {
		parts = append(parts, strconv.FormatFloat(f, 'g', -1, 64))
	}
	return []byte(fmt.Sprintf("N\t%d\t%s", n.ID, strings.Join(parts, ",")))
}

// EncodeEdgeRow renders an edge-table record; edge features, when present,
// go into a fourth comma-separated column.
func EncodeEdgeRow(e graph.Edge) []byte {
	if len(e.Feat) == 0 {
		return []byte(fmt.Sprintf("E\t%d\t%d\t%s", e.Src, e.Dst,
			strconv.FormatFloat(e.Weight, 'g', -1, 64)))
	}
	parts := make([]string, 0, len(e.Feat))
	for _, f := range e.Feat {
		parts = append(parts, strconv.FormatFloat(f, 'g', -1, 64))
	}
	return []byte(fmt.Sprintf("E\t%d\t%d\t%s\t%s", e.Src, e.Dst,
		strconv.FormatFloat(e.Weight, 'g', -1, 64), strings.Join(parts, ",")))
}

// TableRow is a decoded node- or edge-table record.
type TableRow struct {
	IsNode bool
	Node   graph.Node
	Edge   graph.Edge
}

// DecodeTableRow parses a record written by EncodeNodeRow/EncodeEdgeRow.
func DecodeTableRow(rec []byte) (TableRow, error) {
	s := string(rec)
	parts := strings.Split(s, "\t")
	switch {
	case len(parts) >= 2 && parts[0] == "N":
		id, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return TableRow{}, fmt.Errorf("core: node row id: %w", err)
		}
		var feat []float64
		if len(parts) >= 3 && parts[2] != "" {
			fields := strings.Split(parts[2], ",")
			feat = make([]float64, len(fields))
			for i, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return TableRow{}, fmt.Errorf("core: node row feature: %w", err)
				}
				feat[i] = v
			}
		}
		return TableRow{IsNode: true, Node: graph.Node{ID: id, Feat: feat}}, nil
	case len(parts) >= 4 && parts[0] == "E":
		src, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return TableRow{}, fmt.Errorf("core: edge row src: %w", err)
		}
		dst, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return TableRow{}, fmt.Errorf("core: edge row dst: %w", err)
		}
		w, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return TableRow{}, fmt.Errorf("core: edge row weight: %w", err)
		}
		var feat []float64
		if len(parts) >= 5 && parts[4] != "" {
			fields := strings.Split(parts[4], ",")
			feat = make([]float64, len(fields))
			for i, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return TableRow{}, fmt.Errorf("core: edge row feature: %w", err)
				}
				feat[i] = v
			}
		}
		return TableRow{Edge: graph.Edge{Src: src, Dst: dst, Weight: w, Feat: feat}}, nil
	}
	return TableRow{}, fmt.Errorf("core: malformed table row %q", s)
}

// TableRecords renders a whole graph as table records (nodes then edges).
func TableRecords(g *graph.Graph) [][]byte {
	out := make([][]byte, 0, g.NumNodes()+g.NumEdges())
	for _, n := range g.Nodes {
		out = append(out, EncodeNodeRow(n))
	}
	for _, e := range g.Edges {
		out = append(out, EncodeEdgeRow(e))
	}
	return out
}

// WriteTables writes a graph's table records to a dfs dataset split into
// nParts part files.
func WriteTables(g *graph.Graph, dir *dfs.Dir, nParts int) error {
	return dir.WriteAll(TableRecords(g), nParts)
}

// WeightedInDegrees runs a small MapReduce job counting each node's
// weighted in-degree plus one (the self-loop term GCN normalization needs).
// It doubles as the hub detector for re-indexing: the unweighted in-degree
// is returned alongside.
func WeightedInDegrees(records mapreduce.Input, cfg mapreduce.Config) (map[int64]float64, map[int64]int, error) {
	cfg.Name = "degrees"
	mapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		row, err := DecodeTableRow(rec)
		if err != nil {
			return err
		}
		if row.IsNode {
			// Ensure isolated nodes appear with degree 1.
			return emit(mapreduce.KeyValue{
				Key:   strconv.FormatInt(row.Node.ID, 10),
				Value: []byte("n"),
			})
		}
		return emit(mapreduce.KeyValue{
			Key:   strconv.FormatInt(row.Edge.Dst, 10),
			Value: []byte("e," + strconv.FormatFloat(row.Edge.Weight, 'g', -1, 64)),
		})
	})
	reducer := mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		var w float64
		var count int
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			s := string(v)
			if s == "n" {
				continue
			}
			wv, err := strconv.ParseFloat(strings.TrimPrefix(s, "e,"), 64)
			if err != nil {
				return err
			}
			w += wv
			count++
		}
		if err := values.Err(); err != nil {
			return err
		}
		return emit(mapreduce.KeyValue{
			Key:   key,
			Value: []byte(fmt.Sprintf("%s,%d", strconv.FormatFloat(w+1, 'g', -1, 64), count)),
		})
	})
	out := mapreduce.NewMemOutput()
	if _, err := mapreduce.Run(cfg, mapper, reducer, records, out); err != nil {
		return nil, nil, err
	}
	weighted := make(map[int64]float64)
	unweighted := make(map[int64]int)
	for _, kv := range out.Pairs() {
		id, err := strconv.ParseInt(kv.Key, 10, 64)
		if err != nil {
			return nil, nil, err
		}
		fields := strings.Split(string(kv.Value), ",")
		w, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, err
		}
		c, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, err
		}
		weighted[id] = w
		unweighted[id] = c
	}
	return weighted, unweighted, nil
}
