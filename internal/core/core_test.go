package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"testing"

	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/ps"
	"agl/internal/sampling"
	"agl/internal/tensor"
	"agl/internal/wire"
)

// chainGraph builds 0->1->2->3->4 (edges point forward: src=i, dst=i+1).
func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	var nodes []graph.Node
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		nodes = append(nodes, graph.Node{ID: int64(i), Feat: []float64{float64(i), 1}})
		if i > 0 {
			edges = append(edges, graph.Edge{Src: int64(i - 1), Dst: int64(i), Weight: 1})
		}
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func flatten(t *testing.T, g *graph.Graph, cfg FlatConfig, targets map[int64]Target) *FlatResult {
	t.Helper()
	cfg.TempDir = t.TempDir()
	res, err := Flatten(cfg, mapreduce.MemInput(TableRecords(g)), targets)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func recordByID(t *testing.T, res *FlatResult, id int64) *wire.TrainRecord {
	t.Helper()
	for _, enc := range res.Records {
		rec, err := wire.DecodeTrainRecord(enc)
		if err != nil {
			t.Fatal(err)
		}
		if rec.TargetID == id {
			return rec
		}
	}
	t.Fatalf("no record for target %d", id)
	return nil
}

func nodeIDs(sg *wire.Subgraph) []int64 {
	var ids []int64
	for _, n := range sg.Nodes {
		ids = append(ids, n.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestTableRowRoundTrip(t *testing.T) {
	n := graph.Node{ID: 7, Feat: []float64{1.5, -2}}
	row, err := DecodeTableRow(EncodeNodeRow(n))
	if err != nil || !row.IsNode || row.Node.ID != 7 || row.Node.Feat[1] != -2 {
		t.Fatalf("node row: %+v err=%v", row, err)
	}
	e := graph.Edge{Src: 1, Dst: 2, Weight: 0.25}
	row, err = DecodeTableRow(EncodeEdgeRow(e))
	if err != nil || row.IsNode || row.Edge.Dst != 2 || row.Edge.Weight != 0.25 {
		t.Fatalf("edge row: %+v err=%v", row, err)
	}
	if _, err := DecodeTableRow([]byte("garbage")); err == nil {
		t.Fatal("expected error")
	}
}

func TestWeightedInDegrees(t *testing.T) {
	g := chainGraph(t, 4)
	w, u, err := WeightedInDegrees(mapreduce.MemInput(TableRecords(g)),
		mapreduce.Config{TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 has no in-edges: weighted degree 1 (self term), count 0.
	if w[0] != 1 || u[0] != 0 {
		t.Fatalf("node 0: w=%v u=%v", w[0], u[0])
	}
	if w[2] != 2 || u[2] != 1 {
		t.Fatalf("node 2: w=%v u=%v", w[2], u[2])
	}
}

func TestFlattenKHopChain(t *testing.T) {
	g := chainGraph(t, 5)
	targets := map[int64]Target{4: {Label: 1}}
	for hops := 1; hops <= 3; hops++ {
		res := flatten(t, g, FlatConfig{Hops: hops}, targets)
		if len(res.Records) != 1 {
			t.Fatalf("hops=%d records=%d", hops, len(res.Records))
		}
		rec := recordByID(t, res, 4)
		ids := nodeIDs(rec.SG)
		// k-hop of node 4 along the chain: {4-k .. 4}.
		want := []int64{}
		for i := 4 - hops; i <= 4; i++ {
			want = append(want, int64(i))
		}
		if fmt.Sprint(ids) != fmt.Sprint(want) {
			t.Fatalf("hops=%d nodes=%v want %v", hops, ids, want)
		}
		if len(rec.SG.Edges) != hops {
			t.Fatalf("hops=%d edges=%d want %d", hops, len(rec.SG.Edges), hops)
		}
		if rec.Label != 1 {
			t.Fatalf("label=%d", rec.Label)
		}
		// Every node carries its features.
		for _, n := range rec.SG.Nodes {
			if len(n.Feat) != 2 || n.Feat[0] != float64(n.ID) {
				t.Fatalf("node %d features missing: %v", n.ID, n.Feat)
			}
		}
	}
}

func TestFlattenDiamondCollectsAllPaths(t *testing.T) {
	// Diamond: 1->3, 2->3, 0->1, 0->2; 2-hop of 3 = {0,1,2,3} with 4 edges.
	nodes := []graph.Node{{ID: 0, Feat: []float64{0}}, {ID: 1, Feat: []float64{1}},
		{ID: 2, Feat: []float64{2}}, {ID: 3, Feat: []float64{3}}}
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	res := flatten(t, g, FlatConfig{Hops: 2}, map[int64]Target{3: {}})
	rec := recordByID(t, res, 3)
	if fmt.Sprint(nodeIDs(rec.SG)) != "[0 1 2 3]" {
		t.Fatalf("nodes: %v", nodeIDs(rec.SG))
	}
	if len(rec.SG.Edges) != 4 {
		t.Fatalf("edges: %d want 4", len(rec.SG.Edges))
	}
}

func TestFlattenOnlyTargetsEmitted(t *testing.T) {
	g := chainGraph(t, 6)
	res := flatten(t, g, FlatConfig{Hops: 2}, map[int64]Target{2: {}, 5: {}})
	if len(res.Records) != 2 {
		t.Fatalf("records=%d want 2", len(res.Records))
	}
}

func TestFlattenSamplingCapsInDegree(t *testing.T) {
	// Star: 30 leaves all pointing at hub 999.
	nodes := []graph.Node{{ID: 999, Feat: []float64{9}}}
	var edges []graph.Edge
	for i := 0; i < 30; i++ {
		nodes = append(nodes, graph.Node{ID: int64(i), Feat: []float64{float64(i)}})
		edges = append(edges, graph.Edge{Src: int64(i), Dst: 999, Weight: float64(i + 1)})
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	res := flatten(t, g, FlatConfig{Hops: 1, MaxNeighbors: 5, Seed: 11}, map[int64]Target{999: {}})
	rec := recordByID(t, res, 999)
	if len(rec.SG.Edges) != 5 {
		t.Fatalf("sampled edges=%d want 5", len(rec.SG.Edges))
	}
	if len(rec.SG.Nodes) != 6 { // hub + 5 sampled leaves
		t.Fatalf("nodes=%d want 6", len(rec.SG.Nodes))
	}
	// Deterministic given the seed.
	res2 := flatten(t, g, FlatConfig{Hops: 1, MaxNeighbors: 5, Seed: 11}, map[int64]Target{999: {}})
	rec2 := recordByID(t, res2, 999)
	if fmt.Sprint(nodeIDs(rec.SG)) != fmt.Sprint(nodeIDs(rec2.SG)) {
		t.Fatal("sampling not deterministic across runs")
	}
	// Different seed, (very likely) different choice.
	res3 := flatten(t, g, FlatConfig{Hops: 1, MaxNeighbors: 5, Seed: 12}, map[int64]Target{999: {}})
	rec3 := recordByID(t, res3, 999)
	if fmt.Sprint(nodeIDs(rec.SG)) == fmt.Sprint(nodeIDs(rec3.SG)) {
		t.Log("warning: same sample under different seed (possible but unlikely)")
	}
}

func TestFlattenWeightedSamplingPrefersHeavy(t *testing.T) {
	nodes := []graph.Node{{ID: 100, Feat: []float64{0}}}
	var edges []graph.Edge
	for i := 0; i < 20; i++ {
		w := 0.001
		if i >= 18 {
			w = 1000 // two dominant edges
		}
		nodes = append(nodes, graph.Node{ID: int64(i), Feat: []float64{1}})
		edges = append(edges, graph.Edge{Src: int64(i), Dst: 100, Weight: w})
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	res := flatten(t, g, FlatConfig{
		Hops: 1, MaxNeighbors: 2, Seed: 3, Strategy: sampling.Weighted{},
	}, map[int64]Target{100: {}})
	rec := recordByID(t, res, 100)
	for _, e := range rec.SG.Edges {
		if e.Src != 18 && e.Src != 19 {
			t.Fatalf("weighted sampling kept light edge from %d", e.Src)
		}
	}
}

func TestFlattenReindexingHandlesHubs(t *testing.T) {
	// Hub with in-degree 40, threshold 10 -> 4 suffix shards.
	nodes := []graph.Node{{ID: 500, Feat: []float64{5}}}
	var edges []graph.Edge
	for i := 0; i < 40; i++ {
		nodes = append(nodes, graph.Node{ID: int64(i), Feat: []float64{float64(i)}})
		edges = append(edges, graph.Edge{Src: int64(i), Dst: 500, Weight: 1})
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	res := flatten(t, g, FlatConfig{
		Hops: 1, MaxNeighbors: 8, HubThreshold: 10, Seed: 7,
	}, map[int64]Target{500: {}})
	if res.HubCount != 1 {
		t.Fatalf("hub count=%d", res.HubCount)
	}
	rec := recordByID(t, res, 500)
	if len(rec.SG.Edges) > 8 {
		t.Fatalf("re-indexed hub kept %d edges, cap 8", len(rec.SG.Edges))
	}
	if len(rec.SG.Edges) < 4 {
		t.Fatalf("re-indexed hub kept only %d edges", len(rec.SG.Edges))
	}
	// Extra reindex rounds must appear in accounting.
	if len(res.RoundStats) != 3 { // degrees+join, reindex, merge -> join, reindex, merge
		t.Logf("round stats: %d", len(res.RoundStats))
	}
}

func TestFlattenNonHubUnaffectedByReindexing(t *testing.T) {
	g := chainGraph(t, 5)
	plain := flatten(t, g, FlatConfig{Hops: 2, Seed: 1}, map[int64]Target{4: {}})
	reidx := flatten(t, g, FlatConfig{Hops: 2, Seed: 1, HubThreshold: 100}, map[int64]Target{4: {}})
	a := recordByID(t, plain, 4)
	b := recordByID(t, reidx, 4)
	if fmt.Sprint(nodeIDs(a.SG)) != fmt.Sprint(nodeIDs(b.SG)) || len(a.SG.Edges) != len(b.SG.Edges) {
		t.Fatal("re-indexing changed a non-hub neighborhood")
	}
}

func TestFlattenSurvivesTaskFailures(t *testing.T) {
	g := chainGraph(t, 6)
	var injected int32
	faults := func(kind string, idx, attempt int) error {
		// Fail the first attempt of every task once, across all rounds.
		if attempt == 0 && atomic.AddInt32(&injected, 1) < 100 {
			return errors.New("injected")
		}
		return nil
	}
	clean := flatten(t, g, FlatConfig{Hops: 2}, map[int64]Target{5: {}})
	faulty := flatten(t, g, FlatConfig{Hops: 2, Faults: faults, MaxAttempts: 3}, map[int64]Target{5: {}})
	a := recordByID(t, clean, 5)
	b := recordByID(t, faulty, 5)
	if fmt.Sprint(nodeIDs(a.SG)) != fmt.Sprint(nodeIDs(b.SG)) {
		t.Fatalf("fault injection changed output: %v vs %v", nodeIDs(a.SG), nodeIDs(b.SG))
	}
	if atomic.LoadInt32(&injected) == 0 {
		t.Fatal("faults never injected")
	}
}

func TestAssembleBatchMergesOverlap(t *testing.T) {
	r1 := &wire.TrainRecord{TargetID: 1, Label: 0, SG: &wire.Subgraph{
		Target: 1,
		Nodes:  []wire.SGNode{{ID: 1, Feat: []float64{1, 0}}, {ID: 2, Feat: []float64{2, 0}}},
		Edges:  []wire.SGEdge{{Src: 2, Dst: 1, Weight: 1}},
	}}
	r2 := &wire.TrainRecord{TargetID: 3, Label: 1, SG: &wire.Subgraph{
		Target: 3,
		Nodes:  []wire.SGNode{{ID: 3, Feat: []float64{3, 0}}, {ID: 2, Feat: []float64{2, 0}}},
		Edges:  []wire.SGEdge{{Src: 2, Dst: 3, Weight: 1}},
	}}
	b, err := AssembleBatch([]*wire.TrainRecord{r1, r2}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph.Adj.NumRows != 3 { // node 2 deduplicated
		t.Fatalf("rows=%d want 3", b.Graph.Adj.NumRows)
	}
	if b.Graph.Adj.NNZ() != 2 {
		t.Fatalf("nnz=%d want 2", b.Graph.Adj.NNZ())
	}
	if len(b.Graph.Targets) != 2 || b.Labels[1] != 1 {
		t.Fatalf("targets/labels wrong: %+v", b)
	}
	// Distances: targets 0, neighbors 1.
	for i, tgt := range b.Graph.Targets {
		if b.Graph.Dist[tgt] != 0 {
			t.Fatalf("target %d dist %d", i, b.Graph.Dist[tgt])
		}
	}
}

func TestAssembleBatchEmptyErrors(t *testing.T) {
	if _, err := AssembleBatch(nil, 2, false); err == nil {
		t.Fatal("expected error")
	}
}

// miniCora builds a small learnable dataset plus its flattened records.
func miniCora(t *testing.T, hops int) (train, test [][]byte, ds *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Cora(datagen.CoraConfig{
		Nodes: 240, Edges: 700, FeatDim: 48, Classes: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	targets := map[int64]Target{}
	for _, id := range ds.Train {
		targets[id] = Target{Label: int64(ds.LabelOf(id))}
	}
	cfg := FlatConfig{Hops: hops, Seed: 5, TempDir: t.TempDir()}
	res, err := Flatten(cfg, mapreduce.MemInput(TableRecords(ds.G)), targets)
	if err != nil {
		t.Fatal(err)
	}
	testTargets := map[int64]Target{}
	for _, id := range ds.Test {
		testTargets[id] = Target{Label: int64(ds.LabelOf(id))}
	}
	res2, err := Flatten(cfg, mapreduce.MemInput(TableRecords(ds.G)), testTargets)
	if err != nil {
		t.Fatal(err)
	}
	return res.Records, res2.Records, ds
}

func TestTrainLearnsMiniCora(t *testing.T) {
	train, test, _ := miniCora(t, 2)
	res, err := Train(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 16, Classes: 4, Layers: 2,
			Act: nn.ActReLU, Seed: 1,
		},
		Loss: LossCE, BatchSize: 32, Epochs: 25, LR: 0.02,
		Eval: test, EvalMetric: MetricAccuracy, Seed: 2,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0].Loss
	last := res.History[len(res.History)-1].Loss
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	final := res.History[len(res.History)-1]
	if !final.HasMetric || final.Metric < 0.55 {
		t.Fatalf("test accuracy %v too low (random = 0.25)", final.Metric)
	}
}

func TestTrainMultiWorkerModes(t *testing.T) {
	train, test, _ := miniCora(t, 1)
	for _, mode := range []ps.Mode{ps.Async, ps.Sync} {
		res, err := Train(TrainConfig{
			Model: gnn.Config{
				Kind: gnn.KindSAGE, InDim: 48, Hidden: 12, Classes: 4, Layers: 1,
				Act: nn.ActReLU, Seed: 1,
			},
			Loss: LossCE, BatchSize: 16, Epochs: 6, LR: 0.02,
			Workers: 3, PSShards: 2, Mode: mode,
			Eval: test, EvalMetric: MetricAccuracy, Seed: 3,
		}, train)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
			t.Fatalf("mode %v: loss did not decrease", mode)
		}
		if res.PSBytesOut == 0 || res.PSBytesIn == 0 {
			t.Fatalf("mode %v: no PS traffic recorded", mode)
		}
	}
}

func TestTrainPipelineDoesNotChangeResults(t *testing.T) {
	train, test, _ := miniCora(t, 1)
	var metrics []float64
	for _, pipeline := range []bool{false, true} {
		res, err := Train(TrainConfig{
			Model: gnn.Config{
				Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 1,
				Act: nn.ActReLU, Seed: 1,
			},
			Loss: LossCE, BatchSize: 16, Epochs: 5, LR: 0.02,
			Pipeline: pipeline, Eval: test, EvalMetric: MetricAccuracy, Seed: 4,
		}, train)
		if err != nil {
			t.Fatal(err)
		}
		metrics = append(metrics, res.History[len(res.History)-1].Metric)
	}
	if math.Abs(metrics[0]-metrics[1]) > 1e-9 {
		t.Fatalf("pipeline changed training results: %v vs %v", metrics[0], metrics[1])
	}
}

func TestTrainPruningAndPartitioningConsistent(t *testing.T) {
	train, test, _ := miniCora(t, 2)
	var accs []float64
	for _, opt := range []TrainConfig{
		{},
		{Pruning: true},
		{AggThreads: 4},
		{Pruning: true, AggThreads: 4},
	} {
		cfg := TrainConfig{
			Model: gnn.Config{
				Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 2,
				Act: nn.ActReLU, Seed: 1,
			},
			Loss: LossCE, BatchSize: 32, Epochs: 5, LR: 0.02,
			Pruning: opt.Pruning, AggThreads: opt.AggThreads,
			Eval: test, EvalMetric: MetricAccuracy, Seed: 5,
		}
		res, err := Train(cfg, train)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, res.History[len(res.History)-1].Metric)
	}
	for i := 1; i < len(accs); i++ {
		if math.Abs(accs[i]-accs[0]) > 1e-9 {
			t.Fatalf("optimization %d changed results: %v vs %v", i, accs[i], accs[0])
		}
	}
}

func TestTrainWithHistoryProducesCurve(t *testing.T) {
	train, test, _ := miniCora(t, 1)
	res, err := TrainWithHistory(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 1,
			Act: nn.ActReLU, Seed: 1,
		},
		Loss: LossCE, BatchSize: 16, Epochs: 4, LR: 0.02,
		Workers: 2, Eval: test, EvalMetric: MetricAccuracy, EvalEvery: 1, Seed: 6,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 4 {
		t.Fatalf("history len %d", len(res.History))
	}
	for _, st := range res.History {
		if !st.HasMetric {
			t.Fatalf("epoch %d missing metric", st.Epoch)
		}
	}
}

// buildInferGraph returns a small weighted digraph for inference tests.
func buildInferGraph(t *testing.T) *graph.Graph {
	t.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 80, FeatDim: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return ds.G
}

func TestGraphInferMatchesDirectInference(t *testing.T) {
	g := buildInferGraph(t)
	for _, kind := range []string{gnn.KindGCN, gnn.KindSAGE, gnn.KindGAT, gnn.KindGIN} {
		model, err := gnn.NewModel(gnn.Config{
			Kind: kind, InDim: 6, Hidden: 8, Classes: 1, Layers: 2,
			Act: nn.ActTanh, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Direct dense inference over the whole graph.
		adj := g.CSR()
		x := make([][]float64, g.NumNodes())
		for i, n := range g.Nodes {
			x[i] = n.Feat
		}
		targets := make([]int, g.NumNodes())
		for i := range targets {
			targets[i] = i
		}
		xm := tensor.FromRows(x)
		bg := &gnn.BatchGraph{Adj: adj, X: xm, Targets: targets, Dist: gnn.ComputeDistances(adj, targets)}
		direct := model.Infer(bg, gnn.RunOptions{})

		// GraphInfer over the tables.
		res, err := Infer(InferConfig{Seed: 4, TempDir: t.TempDir()},
			model, mapreduce.MemInput(TableRecords(g)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Scores) != g.NumNodes() {
			t.Fatalf("%s: scored %d nodes want %d", kind, len(res.Scores), g.NumNodes())
		}
		for i, n := range g.Nodes {
			want := nn.Sigmoid(direct.At(i, 0))
			got := res.Scores[n.ID][0]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s node %d: GraphInfer %v direct %v", kind, n.ID, got, want)
			}
		}
	}
}

func TestOriginalInferMatchesGraphInfer(t *testing.T) {
	g := buildInferGraph(t)
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 6, Hidden: 8, Classes: 1, Layers: 2,
		Act: nn.ActTanh, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	tables := mapreduce.MemInput(TableRecords(g))
	fast, err := Infer(InferConfig{Seed: 4, TempDir: t.TempDir()}, model, tables)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := OriginalInfer(FlatConfig{Hops: 2, Seed: 4, TempDir: t.TempDir()},
		model, tables, g.IDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Scores) != len(fast.Scores) {
		t.Fatalf("score counts differ: %d vs %d", len(slow.Scores), len(fast.Scores))
	}
	for id, want := range fast.Scores {
		got := slow.Scores[id]
		if math.Abs(got[0]-want[0]) > 1e-9 {
			t.Fatalf("node %d: original %v graphinfer %v", id, got[0], want[0])
		}
	}
	// GraphInfer must shuffle less than the original's GraphFlat phase on
	// overlapping neighborhoods.
	var flatBytes int64
	for _, s := range slow.FlatStats {
		flatBytes += s.BytesShuffled
	}
	if fast.TotalShuffledBytes() >= flatBytes {
		t.Fatalf("GraphInfer shuffled more than baseline: %d vs %d",
			fast.TotalShuffledBytes(), flatBytes)
	}
}

func TestInferWithSamplingIsDeterministic(t *testing.T) {
	g := buildInferGraph(t)
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindSAGE, InDim: 6, Hidden: 8, Classes: 1, Layers: 2,
		Act: nn.ActTanh, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	tables := mapreduce.MemInput(TableRecords(g))
	cfg := InferConfig{Seed: 9, MaxNeighbors: 3, TempDir: t.TempDir()}
	a, err := Infer(cfg, model, tables)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(cfg, model, tables)
	if err != nil {
		t.Fatal(err)
	}
	for id, sa := range a.Scores {
		if math.Abs(sa[0]-b.Scores[id][0]) > 0 {
			t.Fatalf("node %d: sampling nondeterministic", id)
		}
	}
}

func TestFlattenSpillRoundsMatchesMemory(t *testing.T) {
	g := chainGraph(t, 8)
	targets := map[int64]Target{6: {Label: 1}, 7: {Label: 0}}
	mem := flatten(t, g, FlatConfig{Hops: 2, Seed: 3}, targets)
	disk := flatten(t, g, FlatConfig{Hops: 2, Seed: 3, SpillRounds: true}, targets)
	if len(mem.Records) != len(disk.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(mem.Records), len(disk.Records))
	}
	for _, id := range []int64{6, 7} {
		a := recordByID(t, mem, id)
		b := recordByID(t, disk, id)
		if fmt.Sprint(nodeIDs(a.SG)) != fmt.Sprint(nodeIDs(b.SG)) || len(a.SG.Edges) != len(b.SG.Edges) {
			t.Fatalf("target %d: disk-spooled rounds changed the neighborhood", id)
		}
	}
}

func TestTrainWithHistoryEarlyStopping(t *testing.T) {
	train, test, _ := miniCora(t, 1)
	res, err := TrainWithHistory(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 1,
			Act: nn.ActReLU, Seed: 1,
		},
		Loss: LossCE, BatchSize: 16, Epochs: 40, LR: 0.05,
		Eval: test, EvalMetric: MetricAccuracy, EvalEvery: 1, Patience: 3, Seed: 9,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Skip("model kept improving for all 40 epochs; patience untested on this seed")
	}
	if len(res.History) >= 40 {
		t.Fatal("early stopping did not shorten training")
	}
	if res.BestEpoch == 0 || res.BestMetric <= 0 {
		t.Fatalf("best snapshot not tracked: epoch=%d metric=%v", res.BestEpoch, res.BestMetric)
	}
	// The returned model must be the best snapshot, not the last one.
	acc, err := Evaluate(res.Model, test, EvalConfig{Metric: MetricAccuracy})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-res.BestMetric) > 1e-9 {
		t.Fatalf("returned model scores %v, best was %v", acc, res.BestMetric)
	}
}

func TestFlattenCarriesEdgeFeatures(t *testing.T) {
	nodes := []graph.Node{
		{ID: 0, Feat: []float64{0}}, {ID: 1, Feat: []float64{1}}, {ID: 2, Feat: []float64{2}},
	}
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 2, Feat: []float64{0.5, -1}},
		{Src: 1, Dst: 2, Weight: 3, Feat: []float64{7, 8}},
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	res := flatten(t, g, FlatConfig{Hops: 2}, map[int64]Target{2: {}})
	rec := recordByID(t, res, 2)
	if len(rec.SG.Edges) != 2 {
		t.Fatalf("edges=%d", len(rec.SG.Edges))
	}
	for _, e := range rec.SG.Edges {
		switch {
		case e.Src == 0 && e.Dst == 1:
			if len(e.Feat) != 2 || e.Feat[1] != -1 {
				t.Fatalf("edge (0,1) features lost: %v", e.Feat)
			}
		case e.Src == 1 && e.Dst == 2:
			if len(e.Feat) != 2 || e.Feat[0] != 7 {
				t.Fatalf("edge (1,2) features lost: %v", e.Feat)
			}
		default:
			t.Fatalf("unexpected edge (%d,%d)", e.Src, e.Dst)
		}
	}
	// And they survive batch vectorization into E_B.
	b, err := AssembleBatch([]*wire.TrainRecord{rec}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph.EdgeFeat == nil {
		t.Fatal("EdgeFeat not vectorized")
	}
	di, si := -1, -1
	for i, id := range b.NodeIDs {
		if id == 2 {
			di = i
		}
		if id == 1 {
			si = i
		}
	}
	ef := b.Graph.EdgeFeat[[2]int{di, si}]
	if len(ef) != 2 || ef[0] != 7 {
		t.Fatalf("E_B entry wrong: %v", ef)
	}
}

func TestEdgeGATGraphInferMatchesDirect(t *testing.T) {
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 70, FeatDim: 6, EdgeFeatDim: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.G
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGAT, InDim: 6, Hidden: 8, Classes: 1, Layers: 2,
		Heads: 2, EdgeDim: 4, Act: nn.ActTanh, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Direct whole-graph inference with E_B.
	adj := g.CSR()
	x := make([][]float64, g.NumNodes())
	for i, n := range g.Nodes {
		x[i] = n.Feat
	}
	targets := make([]int, g.NumNodes())
	for i := range targets {
		targets[i] = i
	}
	edgeFeat := make(map[[2]int][]float64)
	for _, e := range g.Edges {
		edgeFeat[[2]int{g.MustIndex(e.Dst), g.MustIndex(e.Src)}] = e.Feat
	}
	bg := &gnn.BatchGraph{
		Adj: adj, X: tensor.FromRows(x), Targets: targets,
		Dist: gnn.ComputeDistances(adj, targets), EdgeFeat: edgeFeat,
	}
	direct := model.Infer(bg, gnn.RunOptions{})

	res, err := Infer(InferConfig{Seed: 4, TempDir: t.TempDir()},
		model, mapreduce.MemInput(TableRecords(g)))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range g.Nodes {
		want := nn.Sigmoid(direct.At(i, 0))
		got := res.Scores[n.ID][0]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("node %d: GraphInfer %v direct %v", n.ID, got, want)
		}
	}
}

func TestPredictReturnsAlignedOutputs(t *testing.T) {
	train, _, _ := miniCora(t, 1)
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 48, Hidden: 8, Classes: 4, Layers: 1,
		Act: nn.ActReLU, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids, logits, labels, _, err := Predict(model, train, 16, gnn.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(train) || logits.Rows != len(train) || len(labels) != len(train) {
		t.Fatalf("misaligned outputs: %d %d %d vs %d", len(ids), logits.Rows, len(labels), len(train))
	}
}
