package core

import (
	"fmt"
	"math"

	"agl/internal/gnn"
)

// Validation for the public pipeline configs. Zero values keep their
// "pick a sensible default" meaning (withDefaults), but explicitly
// negative or non-finite inputs — which the defaults used to silently
// clamp or which would quietly misbehave downstream — are rejected before
// any MapReduce round runs.
//
// Every Validate returns a *ValidationError so callers can branch on the
// offending field programmatically instead of parsing error strings.

// ValidationError reports one rejected configuration field. Field is the
// qualified public name ("FlatConfig.Hops"), Reason the violated
// constraint including the offending value. Retrieve it with errors.As:
//
//	var verr *core.ValidationError
//	if errors.As(err, &verr) { switch verr.Field { ... } }
type ValidationError struct {
	Field  string
	Reason string
}

func (e *ValidationError) Error() string { return e.Field + ": " + e.Reason }

// Invalidf builds a ValidationError for field with a formatted reason.
func Invalidf(field, format string, args ...any) error {
	return &ValidationError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate rejects nonsensical GraphFlat parameters.
func (c FlatConfig) Validate() error {
	if c.Hops < 0 {
		return Invalidf("FlatConfig.Hops", "must be >= 1 (0 selects the default), got %d", c.Hops)
	}
	if c.MaxNeighbors < 0 {
		return Invalidf("FlatConfig.MaxNeighbors", "must be >= 0 (0 disables sampling), got %d", c.MaxNeighbors)
	}
	if c.HubThreshold < 0 {
		return Invalidf("FlatConfig.HubThreshold", "must be >= 0 (0 disables re-indexing), got %d", c.HubThreshold)
	}
	for i, p := range c.EdgeTargets {
		if p.Label != 0 && p.Label != 1 {
			return Invalidf("FlatConfig.EdgeTargets",
				"element %d label must be 0 (negative) or 1 (positive), got %d", i, p.Label)
		}
		if p.Src == p.Dst {
			return Invalidf("FlatConfig.EdgeTargets",
				"element %d is a self pair (%d,%d); link prediction needs distinct endpoints", i, p.Src, p.Dst)
		}
	}
	if c.Partitions < 0 {
		return Invalidf("FlatConfig.Partitions", "must be >= 0 (0 disables partitioned output), got %d", c.Partitions)
	}
	if c.Partitions > 0 && c.Output == nil {
		return Invalidf("FlatConfig.Partitions", "requires Output (partitions are part files of the output dataset)")
	}
	return validateMRKnobs("FlatConfig", c.NumMappers, c.NumReducers, c.MaxAttempts)
}

// Validate rejects nonsensical GraphInfer parameters.
func (c InferConfig) Validate() error {
	if c.MaxNeighbors < 0 {
		return Invalidf("InferConfig.MaxNeighbors", "must be >= 0 (0 disables sampling), got %d", c.MaxNeighbors)
	}
	if c.HubThreshold < 0 {
		return Invalidf("InferConfig.HubThreshold", "must be >= 0 (0 disables re-indexing), got %d", c.HubThreshold)
	}
	if len(c.EdgeTargets) > 0 && !c.KeepEmbeddings {
		return Invalidf("InferConfig.EdgeTargets", "requires KeepEmbeddings: offline pair scoring reads final-layer embeddings")
	}
	for i, p := range c.EdgeTargets {
		if p.Src == p.Dst {
			return Invalidf("InferConfig.EdgeTargets",
				"element %d is a self pair (%d,%d); link scoring needs distinct endpoints", i, p.Src, p.Dst)
		}
	}
	return validateMRKnobs("InferConfig", c.NumMappers, c.NumReducers, c.MaxAttempts)
}

// Validate rejects nonsensical GraphTrainer parameters.
func (c TrainConfig) Validate() error {
	if c.BatchSize < 0 {
		return Invalidf("TrainConfig.BatchSize", "must be >= 1 (0 selects the default), got %d", c.BatchSize)
	}
	if c.Epochs < 0 {
		return Invalidf("TrainConfig.Epochs", "must be >= 1 (0 selects the default), got %d", c.Epochs)
	}
	if c.LR < 0 || math.IsNaN(c.LR) || math.IsInf(c.LR, 0) {
		return Invalidf("TrainConfig.LR", "must be a finite value >= 0 (0 selects the default), got %v", c.LR)
	}
	if c.Workers < 0 {
		return Invalidf("TrainConfig.Workers", "must be >= 0 (0 selects the default), got %d", c.Workers)
	}
	if c.PSShards < 0 {
		return Invalidf("TrainConfig.PSShards", "must be >= 0 (0 selects the default), got %d", c.PSShards)
	}
	if c.AggThreads < 0 {
		return Invalidf("TrainConfig.AggThreads", "must be >= 0 (<= 1 aggregates serially), got %d", c.AggThreads)
	}
	if c.EvalEvery < 0 {
		return Invalidf("TrainConfig.EvalEvery", "must be >= 0 (0 selects the default), got %d", c.EvalEvery)
	}
	if c.Patience < 0 {
		return Invalidf("TrainConfig.Patience", "must be >= 0 (0 disables early stopping), got %d", c.Patience)
	}
	if c.Model.Dropout < 0 || c.Model.Dropout >= 1 {
		return Invalidf("TrainConfig.Model.Dropout", "must be in [0, 1), got %v", c.Model.Dropout)
	}
	if c.Model.Layers < 0 {
		return Invalidf("TrainConfig.Model.Layers", "must be >= 1 (0 selects the default), got %d", c.Model.Layers)
	}
	if !gnn.ValidEdgeHead(c.Model.EdgeHead) {
		return Invalidf("TrainConfig.Model.EdgeHead", "must be one of %q, %q, %q (empty for node tasks), got %q",
			gnn.EdgeHeadDot, gnn.EdgeHeadBilinear, gnn.EdgeHeadMLP, c.Model.EdgeHead)
	}
	if c.NegativeRatio < 0 {
		return Invalidf("TrainConfig.NegativeRatio", "must be >= 1 (0 selects 1), got %d", c.NegativeRatio)
	}
	if c.NegativeRatio > 0 && c.Model.EdgeHead == "" {
		return Invalidf("TrainConfig.NegativeRatio", "is a link-training knob; set Model.EdgeHead or leave it 0")
	}
	return nil
}

func validateMRKnobs(cfg string, mappers, reducers, attempts int) error {
	if mappers < 0 {
		return Invalidf(cfg+".NumMappers", "must be >= 0 (0 selects the default), got %d", mappers)
	}
	if reducers < 0 {
		return Invalidf(cfg+".NumReducers", "must be >= 0 (0 selects the default), got %d", reducers)
	}
	if attempts < 0 {
		return Invalidf(cfg+".MaxAttempts", "must be >= 0 (0 selects the default), got %d", attempts)
	}
	return nil
}
