package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"agl/internal/graph"
	"agl/internal/mapreduce"
)

// kHopGroundTruth computes, by direct BFS on reversed edges, the node and
// edge sets GraphFlat must materialize for a target: nodes with a directed
// path of length ≤ k into the target, and every edge (a→b) whose
// destination b still has ≥ 1 round of propagation budget (d(b) ≤ k−1).
func kHopGroundTruth(g *graph.Graph, target int64, k int) (map[int64]bool, map[[2]int64]bool) {
	// dist[u] = length of shortest directed path u -> target.
	dist := map[int64]int{target: 0}
	frontier := []int64{target}
	// reverse adjacency: for node v, who points at v.
	inOf := map[int64][]int64{}
	for _, e := range g.Edges {
		inOf[e.Dst] = append(inOf[e.Dst], e.Src)
	}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		if dist[v] >= k {
			continue
		}
		for _, u := range inOf[v] {
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				frontier = append(frontier, u)
			}
		}
	}
	nodes := map[int64]bool{}
	for u, d := range dist {
		if d <= k {
			nodes[u] = true
		}
	}
	edges := map[[2]int64]bool{}
	for _, e := range g.Edges {
		if d, ok := dist[e.Dst]; ok && d <= k-1 {
			edges[[2]int64{e.Src, e.Dst}] = true
		}
	}
	return nodes, edges
}

// TestFlattenMatchesBFSGroundTruthProperty checks GraphFlat against the
// BFS-derived k-hop definition on random digraphs for k ∈ {1, 2, 3}.
func TestFlattenMatchesBFSGroundTruthProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		var nodes []graph.Node
		for i := 0; i < n; i++ {
			nodes = append(nodes, graph.Node{ID: int64(i), Feat: []float64{float64(i)}})
		}
		var edges []graph.Edge
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && rng.Float64() < 0.15 {
					edges = append(edges, graph.Edge{Src: int64(a), Dst: int64(b), Weight: 1})
				}
			}
		}
		g, err := graph.Build(nodes, edges)
		if err != nil {
			return false
		}
		target := int64(rng.Intn(n))
		k := 1 + rng.Intn(3)

		res, err := Flatten(FlatConfig{Hops: k, TempDir: t.TempDir()},
			mapreduce.MemInput(TableRecords(g)),
			map[int64]Target{target: {}})
		if err != nil {
			t.Logf("flatten error: %v", err)
			return false
		}
		rec := recordByID(t, res, target)
		wantNodes, wantEdges := kHopGroundTruth(g, target, k)
		gotNodes := map[int64]bool{}
		for _, nd := range rec.SG.Nodes {
			gotNodes[nd.ID] = true
		}
		gotEdges := map[[2]int64]bool{}
		for _, e := range rec.SG.Edges {
			gotEdges[[2]int64{e.Src, e.Dst}] = true
		}
		if len(gotNodes) != len(wantNodes) || len(gotEdges) != len(wantEdges) {
			t.Logf("seed=%d k=%d target=%d: nodes %d/%d edges %d/%d",
				seed, k, target, len(gotNodes), len(wantNodes), len(gotEdges), len(wantEdges))
			return false
		}
		for u := range wantNodes {
			if !gotNodes[u] {
				t.Logf("missing node %d", u)
				return false
			}
		}
		for e := range wantEdges {
			if !gotEdges[e] {
				t.Logf("missing edge %v", e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFlattenBatchTargetsShareWork checks the multi-target property of
// Theorem 1's extension: flattening a batch of targets together produces
// exactly the union of per-target runs.
func TestFlattenBatchTargetsShareWork(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 14
	var nodes []graph.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, graph.Node{ID: int64(i), Feat: []float64{float64(i)}})
	}
	var edges []graph.Edge
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && rng.Float64() < 0.2 {
				edges = append(edges, graph.Edge{Src: int64(a), Dst: int64(b), Weight: 1})
			}
		}
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	joint := flatten(t, g, FlatConfig{Hops: 2}, map[int64]Target{3: {}, 9: {}})
	solo3 := flatten(t, g, FlatConfig{Hops: 2}, map[int64]Target{3: {}})
	solo9 := flatten(t, g, FlatConfig{Hops: 2}, map[int64]Target{9: {}})
	for _, pair := range []struct {
		id   int64
		solo *FlatResult
	}{{3, solo3}, {9, solo9}} {
		a := recordByID(t, joint, pair.id)
		b := recordByID(t, pair.solo, pair.id)
		if fmt.Sprint(nodeIDs(a.SG)) != fmt.Sprint(nodeIDs(b.SG)) {
			t.Fatalf("target %d: joint flatten differs from solo", pair.id)
		}
	}
}
