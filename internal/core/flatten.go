package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"agl/internal/dfs"
	"agl/internal/mapreduce"
	"agl/internal/sampling"
	"agl/internal/wire"
)

// Target marks a node whose k-hop neighborhood GraphFlat must materialize,
// together with its supervision.
type Target struct {
	Label    int64
	LabelVec []float64
}

// FlatConfig parameterizes GraphFlat.
type FlatConfig struct {
	// Hops is K, the neighborhood radius; must match the model depth.
	Hops int
	// MaxNeighbors caps each node's in-edges per round (0 = no sampling).
	MaxNeighbors int
	// Strategy picks which in-edges survive sampling (default uniform).
	Strategy sampling.Strategy
	// Seed drives deterministic per-(node, round) sampling; GraphInfer must
	// use the same seed for consistent decisions.
	Seed int64
	// HubThreshold enables re-indexing: nodes whose in-degree exceeds the
	// threshold have their shuffle keys split across suffixed sub-keys
	// (0 = disabled).
	HubThreshold int

	// EdgeTargets switches GraphFlat to edge-level mode (link prediction):
	// instead of per-node TrainRecords, Flatten emits one wire.LinkRecord
	// per pair carrying the merged k-hop neighborhood of both endpoints.
	// Mutually exclusive with node targets.
	EdgeTargets []EdgeTarget

	NumMappers  int
	NumReducers int
	TempDir     string
	MaxAttempts int
	Faults      mapreduce.FaultInjector

	// Output, when set, receives the final GraphFeature records as a dfs
	// dataset in addition to the in-memory result.
	Output *dfs.Dir

	// SpillRounds routes intermediate round data through dfs part files in
	// TempDir instead of memory — the industrial-scale mode where a round's
	// shuffle exceeds RAM. Results are identical to the in-memory mode.
	SpillRounds bool

	// Partitions, when > 0, switches Output to partitioned mode: the final
	// records are hash-partitioned by target id (the pair's source endpoint
	// in edge mode) into exactly Partitions part files plus a manifest, and
	// FlatResult.Records is left nil — the records are meant to be streamed
	// back one partition at a time (OpenPartitions / TrainPartitions /
	// ScorePartitions) with bounded resident memory. Combine with
	// SpillRounds so the final round never materializes in RAM either.
	// Requires Output.
	Partitions int
}

func (c FlatConfig) withDefaults() FlatConfig {
	if c.Hops <= 0 {
		c.Hops = 2
	}
	if c.Strategy == nil {
		c.Strategy = sampling.Uniform{}
	}
	if c.NumReducers <= 0 {
		c.NumReducers = 4
	}
	return c
}

func (c FlatConfig) mrConfig(name string) mapreduce.Config {
	return mapreduce.Config{
		Name:        name,
		NumMappers:  c.NumMappers,
		NumReducers: c.NumReducers,
		TempDir:     c.TempDir,
		MaxAttempts: c.MaxAttempts,
		Faults:      c.Faults,
	}
}

// FlatResult is GraphFlat's output: one serialized TrainRecord (the triple
// <TargetedNodeId, Label, GraphFeature>) per target node, plus accounting.
type FlatResult struct {
	// Records holds the final records in memory — nil in partitioned mode
	// (FlatConfig.Partitions > 0), where they live only in the output
	// dataset's part files.
	Records     [][]byte
	RoundStats  []*mapreduce.Stats
	InDegrees   map[int64]int
	WeightedDeg map[int64]float64
	HubCount    int
	// Partitioned is the manifest of the partitioned output dataset (nil
	// when FlatConfig.Partitions was 0).
	Partitioned *PartitionManifest
}

// TotalShuffledBytes sums shuffle volume over all rounds.
func (r *FlatResult) TotalShuffledBytes() int64 {
	var n int64
	for _, s := range r.RoundStats {
		n += s.BytesShuffled
	}
	return n
}

// Flatten runs the GraphFlat pipeline over node/edge table records (see
// TableRecords) producing the k-hop neighborhood of every target.
//
// The pipeline is: one degree-counting job, one join round (round 0, which
// attaches node features to out-edges — realizing the paper's "in-edge
// information: feature of the in-edge and the neighbor node"), then K
// merge/propagate rounds. When re-indexing is enabled, each merge round is
// preceded by a re-index/sample/invert job for hub keys (paper Figure 3).
func Flatten(cfg FlatConfig, tables mapreduce.Input, targets map[int64]Target) (*FlatResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.EdgeTargets) > 0 {
		if len(targets) > 0 {
			return nil, fmt.Errorf("core: FlatConfig.EdgeTargets and node targets are mutually exclusive (got %d pairs and %d node targets)",
				len(cfg.EdgeTargets), len(targets))
		}
		return flattenEdges(cfg, tables)
	}
	return flattenNodes(cfg, tables, targets)
}

// flattenNodes is the node-target pipeline (the original GraphFlat mode);
// flattenEdges reuses it to materialize every pair endpoint's neighborhood.
func flattenNodes(cfg FlatConfig, tables mapreduce.Input, targets map[int64]Target) (*FlatResult, error) {
	cfg = cfg.withDefaults()
	res := &FlatResult{}

	weighted, unweighted, err := WeightedInDegrees(tables, cfg.mrConfig("flat-degrees"))
	if err != nil {
		return nil, fmt.Errorf("core: GraphFlat degrees: %w", err)
	}
	res.InDegrees = unweighted
	res.WeightedDeg = weighted

	// Hub set for re-indexing: node id -> number of suffix shards.
	hubs := map[int64]int{}
	if cfg.HubThreshold > 0 {
		for id, d := range unweighted {
			if d > cfg.HubThreshold {
				hubs[id] = (d + cfg.HubThreshold - 1) / cfg.HubThreshold
			}
		}
	}
	res.HubCount = len(hubs)

	// Round 0: join node features onto out-edges.
	cur, collect, stats, err := runRound(cfg, "flat-join", joinMapper(), joinReducer(weighted), tables)
	if err != nil {
		return nil, fmt.Errorf("core: GraphFlat join: %w", err)
	}
	res.RoundStats = append(res.RoundStats, stats)

	for round := 1; round <= cfg.Hops; round++ {
		if len(hubs) > 0 {
			cur, collect, stats, err = runRound(cfg, fmt.Sprintf("flat-reindex-%d", round),
				reindexMapper(hubs), reindexReducer(cfg, hubs, round), cur)
			if err != nil {
				return nil, fmt.Errorf("core: GraphFlat reindex round %d: %w", round, err)
			}
			res.RoundStats = append(res.RoundStats, stats)
		}
		final := round == cfg.Hops
		cur, collect, stats, err = runRound(cfg, fmt.Sprintf("flat-merge-%d", round),
			mapreduce.IdentityMapper, mergeReducer(cfg, targets, round, final), cur)
		if err != nil {
			return nil, fmt.Errorf("core: GraphFlat merge round %d: %w", round, err)
		}
		res.RoundStats = append(res.RoundStats, stats)
	}
	if cfg.Partitions > 0 {
		// Partitioned mode streams the final round straight into the
		// hash-partitioned part files; nothing is materialized here (with
		// SpillRounds the records go disk to disk).
		man, err := writePartitionedOutput(cfg, cur, nil)
		if err != nil {
			return nil, fmt.Errorf("core: GraphFlat partitioned output: %w", err)
		}
		res.Partitioned = man
		return res, nil
	}

	pairs, err := collect()
	if err != nil {
		return nil, fmt.Errorf("core: GraphFlat collect: %w", err)
	}
	res.Records = make([][]byte, 0, len(pairs))
	for _, kv := range pairs {
		res.Records = append(res.Records, kv.Value)
	}
	if cfg.Output != nil {
		n := cfg.NumReducers
		if err := cfg.Output.WriteAll(res.Records, n); err != nil {
			return nil, fmt.Errorf("core: GraphFlat output: %w", err)
		}
	}
	return res, nil
}

// pairsInput re-frames a previous round's output as the next round's input.
func pairsInput(pairs []mapreduce.KeyValue) mapreduce.MemInput {
	recs := make([][]byte, len(pairs))
	for i, kv := range pairs {
		recs[i] = mapreduce.EncodeKV(kv)
	}
	return recs
}

// runRound executes one MapReduce round, routing its output either through
// memory (default) or through dfs part files (SpillRounds). It returns the
// next round's input and a collector that materializes the round's pairs
// (used after the final round).
func runRound(cfg FlatConfig, name string, mapper mapreduce.Mapper, reducer mapreduce.Reducer, input mapreduce.Input) (mapreduce.Input, func() ([]mapreduce.KeyValue, error), *mapreduce.Stats, error) {
	if cfg.SpillRounds {
		spillRoot := cfg.TempDir
		if spillRoot == "" {
			spillRoot = os.TempDir()
		}
		path, err := os.MkdirTemp(spillRoot, "agl-"+name+"-")
		if err != nil {
			return nil, nil, nil, err
		}
		dir, err := dfs.Create(path)
		if err != nil {
			return nil, nil, nil, err
		}
		stats, err := mapreduce.Run(cfg.mrConfig(name), mapper, reducer, input, mapreduce.DFSOutput{Dir: dir})
		if err != nil {
			return nil, nil, stats, err
		}
		collect := func() ([]mapreduce.KeyValue, error) {
			recs, err := dir.ReadAll()
			if err != nil {
				return nil, err
			}
			out := make([]mapreduce.KeyValue, 0, len(recs))
			for _, r := range recs {
				kv, err := mapreduce.DecodeKV(r)
				if err != nil {
					return nil, err
				}
				out = append(out, kv)
			}
			return out, nil
		}
		return mapreduce.DFSInput{Dir: dir}, collect, stats, nil
	}
	out := mapreduce.NewMemOutput()
	stats, err := mapreduce.Run(cfg.mrConfig(name), mapper, reducer, input, out)
	if err != nil {
		return nil, nil, stats, err
	}
	pairs := out.Pairs()
	collect := func() ([]mapreduce.KeyValue, error) { return pairs, nil }
	return pairsInput(pairs), collect, stats, nil
}

func key64(id int64) string { return strconv.FormatInt(id, 10) }

// joinMapper emits node rows keyed by node and edge rows keyed by SOURCE,
// so the join reducer can attach the source's features to each out-edge.
func joinMapper() mapreduce.Mapper {
	return mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		row, err := DecodeTableRow(rec)
		if err != nil {
			return err
		}
		if row.IsNode {
			m := flatMsg{Tag: tagNodeRow, Feat: row.Node.Feat}
			return emit(mapreduce.KeyValue{Key: key64(row.Node.ID), Value: m.encode()})
		}
		m := flatMsg{Tag: tagOutEdge, Dst: row.Edge.Dst, W: row.Edge.Weight, EFeat: row.Edge.Feat}
		return emit(mapreduce.KeyValue{Key: key64(row.Edge.Src), Value: m.encode()})
	})
}

// joinReducer seeds the message-passing state: each node u emits its
// 0-hop self info, its out-edge info, and the initial in-edge info
// (u's id, features, normalization degree and edge weight) to each
// destination it points at. Values stream off the shuffle one at a time;
// only the decoded out-edge list (O(out-degree)) is retained.
func joinReducer(weightedDeg map[int64]float64) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		id, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			return err
		}
		var feat []float64
		var haveNode bool
		var outs []*flatMsg
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			m, err := decodeMsg(v)
			if err != nil {
				return err
			}
			switch m.Tag {
			case tagNodeRow:
				feat = m.Feat
				haveNode = true
			case tagOutEdge:
				outs = append(outs, m)
			default:
				return fmt.Errorf("core: join reducer got tag %d", m.Tag)
			}
		}
		if err := values.Err(); err != nil {
			return err
		}
		if !haveNode {
			// Edge rows referencing a node absent from the node table:
			// drop, matching the Build validation upstream.
			return nil
		}
		deg := weightedDeg[id]
		if deg == 0 {
			deg = 1
		}
		self := &wire.Subgraph{Target: id, Nodes: []wire.SGNode{{ID: id, Feat: feat, Deg: deg}}}
		sm := flatMsg{Tag: tagSelf, Payload: self}
		if err := emit(mapreduce.KeyValue{Key: key, Value: sm.encode()}); err != nil {
			return err
		}
		payload := &wire.Subgraph{Target: id, Nodes: []wire.SGNode{{ID: id, Feat: feat, Deg: deg}}}
		for _, o := range outs {
			om := flatMsg{Tag: tagOutEdge, Dst: o.Dst, W: o.W, EFeat: o.EFeat}
			if err := emit(mapreduce.KeyValue{Key: key, Value: om.encode()}); err != nil {
				return err
			}
			im := flatMsg{Tag: tagInEdge, Src: id, W: o.W, EFeat: o.EFeat, Payload: payload}
			if err := emit(mapreduce.KeyValue{Key: key64(o.Dst), Value: im.encode()}); err != nil {
				return err
			}
		}
		return nil
	})
}

// sampleInEdges applies the sampling framework to a node's in-edge
// messages: candidates are sorted (deterministic order shared with
// GraphInfer), then the strategy picks at most cfg.MaxNeighbors survivors
// with the per-(node, round) RNG.
func sampleInEdges(cfg FlatConfig, node int64, round int, ins []*flatMsg) []*flatMsg {
	return sampleInEdgesWithRNG(cfg.MaxNeighbors, cfg.Strategy,
		sampling.NodeRNG(cfg.Seed, node, round), ins)
}

// sampleInEdgesWithRNG is the shared sampling primitive: it sorts
// candidates into the canonical (src, weight) order and applies the
// strategy. GraphFlat and GraphInfer both funnel through it, which is what
// keeps their sampling decisions identical for the same (seed, node,
// round).
func sampleInEdgesWithRNG(maxNeighbors int, strategy sampling.Strategy, rng *rand.Rand, ins []*flatMsg) []*flatMsg {
	sortIns(ins)
	if maxNeighbors <= 0 || len(ins) <= maxNeighbors {
		return ins
	}
	weights := make([]float64, len(ins))
	for i, m := range ins {
		weights[i] = m.W
	}
	idx := strategy.Sample(rng, len(ins), weights, maxNeighbors)
	sort.Ints(idx)
	out := make([]*flatMsg, 0, len(idx))
	for _, i := range idx {
		out = append(out, ins[i])
	}
	return out
}

func sortIns(ins []*flatMsg) {
	sort.SliceStable(ins, func(a, b int) bool {
		if ins[a].Src != ins[b].Src {
			return ins[a].Src < ins[b].Src
		}
		return ins[a].W < ins[b].W
	})
}

// mergeReducer is one merge/propagate round (paper Figure 2): merge self +
// in-edge info into the new self info (the node's round-hop neighborhood),
// then propagate it along out-edges. In the final round it emits the
// TrainRecord for target nodes instead.
func mergeReducer(cfg FlatConfig, targets map[int64]Target, round int, final bool) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		id, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			return err
		}
		var self *wire.Subgraph
		var outs []*flatMsg
		var ins []*flatMsg
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			m, err := decodeMsg(v)
			if err != nil {
				return err
			}
			switch m.Tag {
			case tagSelf:
				self = m.Payload
			case tagOutEdge:
				outs = append(outs, m)
			case tagInEdge:
				ins = append(ins, m)
			default:
				return fmt.Errorf("core: merge reducer got tag %d", m.Tag)
			}
		}
		if err := values.Err(); err != nil {
			return err
		}
		if self == nil {
			// In-edge info addressed to a node that has no self info (not
			// in the node table): nothing to merge into.
			return nil
		}
		ins = sampleInEdges(cfg, id, round, ins)
		seenN, seenE := self.NewSeenSets()
		for _, in := range ins {
			ek := [2]int64{in.Src, id}
			if !seenE[ek] {
				seenE[ek] = true
				self.Edges = append(self.Edges, wire.SGEdge{
					Src: in.Src, Dst: id, Weight: in.W, Feat: in.EFeat,
				})
			}
			self.MergeInto(in.Payload, seenN, seenE)
		}
		if final {
			tgt, ok := targets[id]
			if !ok {
				return nil
			}
			rec := &wire.TrainRecord{TargetID: id, Label: tgt.Label, LabelVec: tgt.LabelVec, SG: self}
			return emit(mapreduce.KeyValue{Key: key, Value: wire.EncodeTrainRecord(rec)})
		}
		sm := flatMsg{Tag: tagSelf, Payload: self}
		if err := emit(mapreduce.KeyValue{Key: key, Value: sm.encode()}); err != nil {
			return err
		}
		for _, o := range outs {
			om := flatMsg{Tag: tagOutEdge, Dst: o.Dst, W: o.W, EFeat: o.EFeat}
			if err := emit(mapreduce.KeyValue{Key: key, Value: om.encode()}); err != nil {
				return err
			}
			im := flatMsg{Tag: tagInEdge, Src: id, W: o.W, EFeat: o.EFeat, Payload: self}
			if err := emit(mapreduce.KeyValue{Key: key64(o.Dst), Value: im.encode()}); err != nil {
				return err
			}
		}
		return nil
	})
}

// reindexMapper splits hub destinations' in-edge traffic across suffixed
// shuffle keys so no single reducer drowns (paper §3.2.2, "re-indexing").
func reindexMapper(hubs map[int64]int) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		kv, err := mapreduce.DecodeKV(rec)
		if err != nil {
			return err
		}
		if len(kv.Value) > 0 && (kv.Value[0] == tagInEdge || kv.Value[0] == tagInEmb) {
			if id, err := strconv.ParseInt(kv.Key, 10, 64); err == nil {
				if shards, ok := hubs[id]; ok && shards > 1 {
					m, err := decodeMsg(kv.Value)
					if err != nil {
						return err
					}
					h := fnv.New32a()
					fmt.Fprintf(h, "%d", m.Src)
					suffix := int(h.Sum32() % uint32(shards))
					kv.Key = fmt.Sprintf("%s#%d", kv.Key, suffix)
				}
			}
		}
		return emit(kv)
	})
}

// reindexReducer pre-samples each suffixed shard of a hub's in-edges, then
// inverts the key back to the original node id (paper §3.2.2, "sampling"
// plus "inverted indexing"). Non-suffixed keys pass through untouched.
func reindexReducer(cfg FlatConfig, hubs map[int64]int, round int) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		hash := strings.IndexByte(key, '#')
		if hash < 0 {
			for {
				v, ok := values.Next()
				if !ok {
					return values.Err()
				}
				// Copy: v aliases the engine's reusable read buffer, and
				// emitted values may be retained by the output.
				if err := emit(mapreduce.KeyValue{Key: key, Value: append([]byte(nil), v...)}); err != nil {
					return err
				}
			}
		}
		orig := key[:hash]
		id, err := strconv.ParseInt(orig, 10, 64)
		if err != nil {
			return err
		}
		suffix, err := strconv.Atoi(key[hash+1:])
		if err != nil {
			return err
		}
		shards := hubs[id]
		budget := cfg.MaxNeighbors
		if budget <= 0 {
			budget = cfg.HubThreshold
		}
		perShard := (budget + shards - 1) / shards
		if perShard < 1 {
			perShard = 1
		}
		var ins []*flatMsg
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			m, err := decodeMsg(v)
			if err != nil {
				return err
			}
			ins = append(ins, m)
		}
		if err := values.Err(); err != nil {
			return err
		}
		// A distinct RNG stream per suffix keeps shards independent.
		kept := sampleInEdgesWithRNG(perShard, cfg.Strategy,
			sampling.NodeRNG(cfg.Seed, id, round*1000+suffix), ins)
		for _, m := range kept {
			if err := emit(mapreduce.KeyValue{Key: orig, Value: m.encode()}); err != nil {
				return err
			}
		}
		return nil
	})
}
