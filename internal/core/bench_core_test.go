package core

import (
	"fmt"
	"testing"

	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/sampling"
	"agl/internal/wire"
)

// Ablation benchmarks for the design choices in DESIGN.md: sampling,
// re-indexing, the three GraphTrainer optimizations, and the two inference
// pipelines.

func benchGraph(b *testing.B, nodes int) (*datagen.Dataset, mapreduce.MemInput) {
	b.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: nodes, FeatDim: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return ds, mapreduce.MemInput(TableRecords(ds.G))
}

func benchTargets(ds *datagen.Dataset) map[int64]Target {
	targets := make(map[int64]Target, len(ds.Train))
	for _, id := range ds.Train {
		y := ds.LabelOf(id)
		targets[id] = Target{Label: int64(y), LabelVec: []float64{float64(y)}}
	}
	return targets
}

func BenchmarkFlatten2Hop(b *testing.B) {
	ds, tables := benchGraph(b, 2000)
	targets := benchTargets(ds)
	cfg := FlatConfig{Hops: 2, MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flatten(cfg, tables, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatten2HopNoSampling(b *testing.B) {
	ds, tables := benchGraph(b, 2000)
	targets := benchTargets(ds)
	cfg := FlatConfig{Hops: 2, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flatten(cfg, tables, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlattenWithReindexing(b *testing.B) {
	ds, tables := benchGraph(b, 2000)
	targets := benchTargets(ds)
	cfg := FlatConfig{
		Hops: 2, MaxNeighbors: 15, Seed: 2, HubThreshold: 32,
		Strategy: sampling.Weighted{}, TempDir: b.TempDir(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flatten(cfg, tables, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTrainRecords(b *testing.B) [][]byte {
	b.Helper()
	ds, tables := benchGraph(b, 1500)
	res, err := Flatten(FlatConfig{
		Hops: 2, MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir(),
	}, tables, benchTargets(ds))
	if err != nil {
		b.Fatal(err)
	}
	return res.Records
}

func benchTrainConfig(pruning bool, threads int, pipeline bool) TrainConfig {
	return TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGAT, InDim: 16, Hidden: 8, Classes: 1, Layers: 2,
			Act: nn.ActReLU, Seed: 3,
		},
		Loss: LossBCE, BatchSize: 64, Epochs: 1, LR: 0.01,
		Pipeline: pipeline, Pruning: pruning, AggThreads: threads, Seed: 4,
	}
}

func BenchmarkTrainEpochBase(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(false, 1, false), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochPruning(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(true, 1, false), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochPartition(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(false, 8, false), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochAllOptimizations(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(true, 8, true), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchAssembly(b *testing.B) {
	encoded := benchTrainRecords(b)
	if len(encoded) > 64 {
		encoded = encoded[:64]
	}
	recs := make([]*wire.TrainRecord, 0, len(encoded))
	for _, e := range encoded {
		r, err := wire.DecodeTrainRecord(e)
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssembleBatch(recs, 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

func benchInferModel(b *testing.B) *gnn.Model {
	b.Helper()
	m, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGAT, InDim: 16, Hidden: 8, Classes: 1, Layers: 2,
		Act: nn.ActTanh, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkGraphInfer(b *testing.B) {
	_, tables := benchGraph(b, 1500)
	model := benchInferModel(b)
	cfg := InferConfig{MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Infer(cfg, model, tables); err != nil {
			b.Fatal(err)
		}
	}
}

// Skewed-key shuffle: every record fans into one hub key, the access
// pattern that motivated the streaming reducer contract. The streaming
// variant reduces straight off the k-way merge; the collected variant
// materializes the group via CollectValues, standing in for the old
// [][]byte contract. Compare allocs/op and peak-group-bytes between them.

func skewedShuffleInput(values, size int) mapreduce.MemInput {
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	in := make(mapreduce.MemInput, values)
	for i := range in {
		in[i] = payload
	}
	return in
}

func benchSkewedShuffle(b *testing.B, reducer mapreduce.Reducer) {
	in := skewedShuffleInput(50_000, 64)
	mapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		return emit(mapreduce.KeyValue{Key: "hub", Value: rec})
	})
	cfg := mapreduce.Config{Name: "bench-skew", TempDir: b.TempDir(), NumMappers: 4, NumReducers: 2}
	b.ReportAllocs()
	b.ResetTimer()
	var peak int64
	for i := 0; i < b.N; i++ {
		stats, err := mapreduce.Run(cfg, mapper, reducer, in, mapreduce.NewMemOutput())
		if err != nil {
			b.Fatal(err)
		}
		peak = stats.PeakGroupBytes
	}
	b.ReportMetric(float64(peak), "peak-group-bytes")
}

func BenchmarkSkewedShuffleStreaming(b *testing.B) {
	benchSkewedShuffle(b, mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		var n, total int64
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n++
			total += int64(len(v))
		}
		if err := values.Err(); err != nil {
			return err
		}
		return emit(mapreduce.KeyValue{Key: key, Value: []byte(fmt.Sprintf("%d/%d", n, total))})
	}))
}

func BenchmarkSkewedShuffleCollected(b *testing.B) {
	benchSkewedShuffle(b, mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		vals, err := mapreduce.CollectValues(values)
		if err != nil {
			return err
		}
		var total int64
		for _, v := range vals {
			total += int64(len(v))
		}
		return emit(mapreduce.KeyValue{Key: key, Value: []byte(fmt.Sprintf("%d/%d", len(vals), total))})
	}))
}

func BenchmarkOriginalInfer(b *testing.B) {
	ds, tables := benchGraph(b, 1500)
	model := benchInferModel(b)
	cfg := FlatConfig{Hops: 2, MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OriginalInfer(cfg, model, tables, ds.G.IDs()); err != nil {
			b.Fatal(err)
		}
	}
}
