package core

import (
	"testing"

	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/sampling"
	"agl/internal/wire"
)

// Ablation benchmarks for the design choices in DESIGN.md: sampling,
// re-indexing, the three GraphTrainer optimizations, and the two inference
// pipelines.

func benchGraph(b *testing.B, nodes int) (*datagen.Dataset, mapreduce.MemInput) {
	b.Helper()
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: nodes, FeatDim: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return ds, mapreduce.MemInput(TableRecords(ds.G))
}

func benchTargets(ds *datagen.Dataset) map[int64]Target {
	targets := make(map[int64]Target, len(ds.Train))
	for _, id := range ds.Train {
		y := ds.LabelOf(id)
		targets[id] = Target{Label: int64(y), LabelVec: []float64{float64(y)}}
	}
	return targets
}

func BenchmarkFlatten2Hop(b *testing.B) {
	ds, tables := benchGraph(b, 2000)
	targets := benchTargets(ds)
	cfg := FlatConfig{Hops: 2, MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flatten(cfg, tables, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatten2HopNoSampling(b *testing.B) {
	ds, tables := benchGraph(b, 2000)
	targets := benchTargets(ds)
	cfg := FlatConfig{Hops: 2, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flatten(cfg, tables, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlattenWithReindexing(b *testing.B) {
	ds, tables := benchGraph(b, 2000)
	targets := benchTargets(ds)
	cfg := FlatConfig{
		Hops: 2, MaxNeighbors: 15, Seed: 2, HubThreshold: 32,
		Strategy: sampling.Weighted{}, TempDir: b.TempDir(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flatten(cfg, tables, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTrainRecords(b *testing.B) [][]byte {
	b.Helper()
	ds, tables := benchGraph(b, 1500)
	res, err := Flatten(FlatConfig{
		Hops: 2, MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir(),
	}, tables, benchTargets(ds))
	if err != nil {
		b.Fatal(err)
	}
	return res.Records
}

func benchTrainConfig(pruning bool, threads int, pipeline bool) TrainConfig {
	return TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGAT, InDim: 16, Hidden: 8, Classes: 1, Layers: 2,
			Act: nn.ActReLU, Seed: 3,
		},
		Loss: LossBCE, BatchSize: 64, Epochs: 1, LR: 0.01,
		Pipeline: pipeline, Pruning: pruning, AggThreads: threads, Seed: 4,
	}
}

func BenchmarkTrainEpochBase(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(false, 1, false), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochPruning(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(true, 1, false), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochPartition(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(false, 8, false), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochAllOptimizations(b *testing.B) {
	recs := benchTrainRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(benchTrainConfig(true, 8, true), recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchAssembly(b *testing.B) {
	encoded := benchTrainRecords(b)
	if len(encoded) > 64 {
		encoded = encoded[:64]
	}
	recs := make([]*wire.TrainRecord, 0, len(encoded))
	for _, e := range encoded {
		r, err := wire.DecodeTrainRecord(e)
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssembleBatch(recs, 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

func benchInferModel(b *testing.B) *gnn.Model {
	b.Helper()
	m, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGAT, InDim: 16, Hidden: 8, Classes: 1, Layers: 2,
		Act: nn.ActTanh, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkGraphInfer(b *testing.B) {
	_, tables := benchGraph(b, 1500)
	model := benchInferModel(b)
	cfg := InferConfig{MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Infer(cfg, model, tables); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOriginalInfer(b *testing.B) {
	ds, tables := benchGraph(b, 1500)
	model := benchInferModel(b)
	cfg := FlatConfig{Hops: 2, MaxNeighbors: 15, Seed: 2, TempDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OriginalInfer(cfg, model, tables, ds.G.IDs()); err != nil {
			b.Fatal(err)
		}
	}
}
