package core

import (
	"sort"
	"testing"

	"agl/internal/mapreduce"
	"agl/internal/wire"
)

// subgraphSets canonicalizes a subgraph into sorted node-id and edge-key
// lists for set comparison.
func subgraphSets(sg *wire.Subgraph) ([]int64, [][2]int64) {
	nodes := make([]int64, 0, len(sg.Nodes))
	for _, n := range sg.Nodes {
		nodes = append(nodes, n.ID)
	}
	sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
	edges := make([][2]int64, 0, len(sg.Edges))
	for _, e := range sg.Edges {
		edges = append(edges, [2]int64{e.Src, e.Dst})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	return nodes, edges
}

// TestLocalFlattenerMatchesFlatten: with sampling disabled, the
// request-time BFS extraction must produce exactly the GraphFeature the
// batch pipeline materializes — same node set, edge set and degrees.
func TestLocalFlattenerMatchesFlatten(t *testing.T) {
	g := buildInferGraph(t)
	targets := map[int64]Target{}
	ids := g.IDs()[:10]
	for _, id := range ids {
		targets[id] = Target{Label: -1}
	}
	flat, err := Flatten(FlatConfig{Hops: 2, Seed: 4, TempDir: t.TempDir()},
		mapreduce.MemInput(TableRecords(g)), targets)
	if err != nil {
		t.Fatal(err)
	}
	offline := map[int64]*wire.Subgraph{}
	for _, rec := range flat.Records {
		tr, err := wire.DecodeTrainRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		offline[tr.TargetID] = tr.SG
	}

	lf := NewLocalFlattener(FlatConfig{Hops: 2, Seed: 4}, g)
	for _, id := range ids {
		rec, err := lf.GraphFeature(id)
		if err != nil {
			t.Fatal(err)
		}
		wantN, wantE := subgraphSets(offline[id])
		gotN, gotE := subgraphSets(rec.SG)
		if len(gotN) != len(wantN) {
			t.Fatalf("target %d: %d nodes, batch pipeline has %d", id, len(gotN), len(wantN))
		}
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("target %d: node sets diverge at %d: %d vs %d", id, i, gotN[i], wantN[i])
			}
		}
		if len(gotE) != len(wantE) {
			t.Fatalf("target %d: %d edges, batch pipeline has %d", id, len(gotE), len(wantE))
		}
		for i := range wantE {
			if gotE[i] != wantE[i] {
				t.Fatalf("target %d: edge sets diverge at %d: %v vs %v", id, i, gotE[i], wantE[i])
			}
		}
		// Degrees must carry the same normalization the offline join
		// computed (weighted in-degree + 1).
		wantDeg := map[int64]float64{}
		for _, n := range offline[id].Nodes {
			wantDeg[n.ID] = n.Deg
		}
		for _, n := range rec.SG.Nodes {
			if wantDeg[n.ID] != n.Deg {
				t.Fatalf("target %d node %d: deg %v, batch pipeline %v", id, n.ID, n.Deg, wantDeg[n.ID])
			}
		}
	}
}

// TestLocalFlattenerSamplingCapsAndDeterminism: with MaxNeighbors set,
// every node's in-edges inside the extraction respect the cap, and two
// extractions of the same target are identical.
func TestLocalFlattenerSamplingCapsAndDeterminism(t *testing.T) {
	g := buildInferGraph(t)
	lf := NewLocalFlattener(FlatConfig{Hops: 2, MaxNeighbors: 3, Seed: 9}, g)
	id := g.IDs()[0]
	a, err := lf.GraphFeature(id)
	if err != nil {
		t.Fatal(err)
	}
	inCount := map[int64]int{}
	for _, e := range a.SG.Edges {
		inCount[e.Dst]++
	}
	for n, c := range inCount {
		if c > 3 {
			t.Fatalf("node %d kept %d in-edges, cap is 3", n, c)
		}
	}
	b, err := lf.GraphFeature(id)
	if err != nil {
		t.Fatal(err)
	}
	an, ae := subgraphSets(a.SG)
	bn, be := subgraphSets(b.SG)
	if len(an) != len(bn) || len(ae) != len(be) {
		t.Fatalf("repeat extraction differs: %d/%d nodes, %d/%d edges", len(an), len(bn), len(ae), len(be))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatal("repeat extraction picked different nodes")
		}
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("repeat extraction picked different edges")
		}
	}
}

func TestLocalFlattenerUnknownNode(t *testing.T) {
	g := buildInferGraph(t)
	lf := NewLocalFlattener(FlatConfig{Hops: 2}, g)
	if _, err := lf.GraphFeature(1 << 40); err == nil {
		t.Fatal("unknown node accepted")
	}
}
