package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/wire"
)

// randomDigraph builds a random n-node digraph with unit-feature nodes.
func randomDigraph(rng *rand.Rand, n int, density float64) *graph.Graph {
	var nodes []graph.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, graph.Node{ID: int64(i), Feat: []float64{float64(i)}})
	}
	var edges []graph.Edge
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && rng.Float64() < density {
				edges = append(edges, graph.Edge{Src: int64(a), Dst: int64(b), Weight: 1})
			}
		}
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// TestFlattenEdgesIsUnionOfEndpointFlattensProperty checks the edge-target
// mode's defining property on random digraphs: the merged pair subgraph is
// exactly the union (by node id and (src,dst) edge) of the two endpoints'
// single-node flattens.
func TestFlattenEdgesIsUnionOfEndpointFlattensProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := randomDigraph(rng, n, 0.15)
		src := int64(rng.Intn(n))
		dst := int64((int(src) + 1 + rng.Intn(n-1)) % n)
		k := 1 + rng.Intn(3)

		cfg := FlatConfig{Hops: k, TempDir: t.TempDir()}
		cfg.EdgeTargets = []EdgeTarget{{Src: src, Dst: dst, Label: 1}}
		linkRes, err := Flatten(cfg, mapreduce.MemInput(TableRecords(g)), nil)
		if err != nil {
			t.Logf("edge flatten: %v", err)
			return false
		}
		if len(linkRes.Records) != 1 {
			t.Logf("want 1 link record, got %d", len(linkRes.Records))
			return false
		}
		lr, err := wire.DecodeLinkRecord(linkRes.Records[0])
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if lr.Src != src || lr.Dst != dst || lr.Label != 1 {
			t.Logf("pair mismatch: %+v", lr)
			return false
		}

		nodeRes, err := Flatten(FlatConfig{Hops: k, TempDir: t.TempDir()},
			mapreduce.MemInput(TableRecords(g)),
			map[int64]Target{src: {Label: -1}, dst: {Label: -1}})
		if err != nil {
			t.Logf("node flatten: %v", err)
			return false
		}
		wantNodes := map[int64]bool{}
		wantEdges := map[[2]int64]bool{}
		for _, enc := range nodeRes.Records {
			tr, err := wire.DecodeTrainRecord(enc)
			if err != nil {
				t.Logf("decode node record: %v", err)
				return false
			}
			for _, nd := range tr.SG.Nodes {
				wantNodes[nd.ID] = true
			}
			for _, e := range tr.SG.Edges {
				wantEdges[[2]int64{e.Src, e.Dst}] = true
			}
		}
		gotNodes := map[int64]bool{}
		for _, nd := range lr.SG.Nodes {
			gotNodes[nd.ID] = true
		}
		gotEdges := map[[2]int64]bool{}
		for _, e := range lr.SG.Edges {
			gotEdges[[2]int64{e.Src, e.Dst}] = true
		}
		if len(gotNodes) != len(wantNodes) || len(gotEdges) != len(wantEdges) {
			t.Logf("seed=%d k=%d pair=(%d,%d): nodes %d/%d edges %d/%d",
				seed, k, src, dst, len(gotNodes), len(wantNodes), len(gotEdges), len(wantEdges))
			return false
		}
		for u := range wantNodes {
			if !gotNodes[u] {
				return false
			}
		}
		for e := range wantEdges {
			if !gotEdges[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestFlattenEdgesMultiplePairsAndSpill covers shared endpoints across
// pairs, negative-label pairs, the SpillRounds path, and dropped pairs
// whose endpoint is absent from the node table.
func TestFlattenEdgesMultiplePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomDigraph(rng, 12, 0.2)
	pairs := []EdgeTarget{
		{Src: 0, Dst: 1, Label: 1},
		{Src: 0, Dst: 2, Label: 0}, // shares endpoint 0
		{Src: 3, Dst: 4, Label: 1},
		{Src: 5, Dst: 999, Label: 1}, // endpoint not in graph: dropped
	}
	for _, spill := range []bool{false, true} {
		cfg := FlatConfig{Hops: 2, TempDir: t.TempDir(), SpillRounds: spill, EdgeTargets: pairs}
		res, err := Flatten(cfg, mapreduce.MemInput(TableRecords(g)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 3 {
			t.Fatalf("spill=%v: want 3 link records (unknown endpoint dropped), got %d", spill, len(res.Records))
		}
		seen := map[[2]int64]int64{}
		for _, enc := range res.Records {
			lr, err := wire.DecodeLinkRecord(enc)
			if err != nil {
				t.Fatal(err)
			}
			seen[[2]int64{lr.Src, lr.Dst}] = lr.Label
			// Both endpoints must be nodes of the merged subgraph.
			found := 0
			for _, nd := range lr.SG.Nodes {
				if nd.ID == lr.Src || nd.ID == lr.Dst {
					found++
				}
			}
			if found != 2 {
				t.Fatalf("pair (%d,%d): endpoints missing from merged subgraph", lr.Src, lr.Dst)
			}
		}
		if seen[[2]int64{0, 2}] != 0 || seen[[2]int64{0, 1}] != 1 {
			t.Fatalf("labels lost: %v", seen)
		}
	}
}

func TestFlattenRejectsMixedTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomDigraph(rng, 6, 0.3)
	cfg := FlatConfig{Hops: 1, EdgeTargets: []EdgeTarget{{Src: 0, Dst: 1, Label: 1}}}
	_, err := Flatten(cfg, mapreduce.MemInput(TableRecords(g)), map[int64]Target{2: {}})
	if err == nil {
		t.Fatal("expected mutual-exclusion error for edge + node targets")
	}
}

func TestLinkValidation(t *testing.T) {
	bad := []FlatConfig{
		{EdgeTargets: []EdgeTarget{{Src: 1, Dst: 2, Label: 7}}},
		{EdgeTargets: []EdgeTarget{{Src: 3, Dst: 3, Label: 1}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("FlatConfig %d: expected validation error", i)
		}
	}
	if err := (TrainConfig{NegativeRatio: -1, Model: gnn.Config{EdgeHead: gnn.EdgeHeadDot}}).Validate(); err == nil {
		t.Fatal("expected NegativeRatio error")
	}
	if err := (TrainConfig{NegativeRatio: 2}).Validate(); err == nil {
		t.Fatal("expected NegativeRatio-without-EdgeHead error")
	}
	if err := (TrainConfig{Model: gnn.Config{EdgeHead: "cosine"}}).Validate(); err == nil {
		t.Fatal("expected EdgeHead enum error")
	}
	if err := (InferConfig{EdgeTargets: []EdgeTarget{{Src: 1, Dst: 2}}}).Validate(); err == nil {
		t.Fatal("expected EdgeTargets-without-KeepEmbeddings error")
	}
	if err := (InferConfig{KeepEmbeddings: true, EdgeTargets: []EdgeTarget{{Src: 2, Dst: 2}}}).Validate(); err == nil {
		t.Fatal("expected self-pair error")
	}
}

// linkTrainingFixture flattens train/eval pairs over a two-community graph
// where intra-community links are dense — learnable link structure.
func linkTrainingFixture(t *testing.T, seed int64) (train, eval [][]byte, inDim int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 60
	var nodes []graph.Node
	for i := 0; i < n; i++ {
		f := []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
		f[i%2] += 1.5 // community feature signal
		nodes = append(nodes, graph.Node{ID: int64(i), Feat: f})
	}
	var edges []graph.Edge
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			p := 0.02
			if a%2 == b%2 {
				p = 0.18 // homophilous links
			}
			if rng.Float64() < p {
				edges = append(edges, graph.Edge{Src: int64(a), Dst: int64(b), Weight: 1})
			}
		}
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	exists := map[[2]int64]bool{}
	for _, e := range g.Edges {
		exists[[2]int64{e.Src, e.Dst}] = true
	}
	var trainPairs, evalPairs []EdgeTarget
	for i, e := range g.Edges {
		if i%5 == 0 && len(evalPairs) < 30 {
			evalPairs = append(evalPairs, EdgeTarget{Src: e.Src, Dst: e.Dst, Label: 1})
		} else {
			trainPairs = append(trainPairs, EdgeTarget{Src: e.Src, Dst: e.Dst, Label: 1})
		}
	}
	for len(evalPairs) < 60 {
		s, d := int64(rng.Intn(n)), int64(rng.Intn(n))
		if s == d || exists[[2]int64{s, d}] {
			continue
		}
		evalPairs = append(evalPairs, EdgeTarget{Src: s, Dst: d, Label: 0})
	}
	tables := mapreduce.MemInput(TableRecords(g))
	trRes, err := Flatten(FlatConfig{Hops: 2, TempDir: t.TempDir(), EdgeTargets: trainPairs}, tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	evRes, err := Flatten(FlatConfig{Hops: 2, TempDir: t.TempDir(), EdgeTargets: evalPairs}, tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	return trRes.Records, evRes.Records, 2
}

// TestLinkTrainingLearns trains a pairwise model end to end through the
// dispatching Train and checks the held-out AUC clearly beats chance.
func TestLinkTrainingLearns(t *testing.T) {
	train, eval, inDim := linkTrainingFixture(t, 7)
	res, err := Train(TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: inDim, Hidden: 8, Classes: 1,
			Layers: 2, Act: nn.ActTanh, Seed: 5, EdgeHead: gnn.EdgeHeadBilinear,
		},
		Loss: LossBCE, Epochs: 20, BatchSize: 32, LR: 0.05,
		Workers: 2, NegativeRatio: 2, Seed: 5,
		Eval: eval, EvalMetric: MetricAUC,
		Pipeline: true, Pruning: true,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	if !last.HasMetric {
		t.Fatal("final epoch has no metric")
	}
	if last.Metric < 0.7 {
		t.Fatalf("link AUC %.3f, want > 0.7", last.Metric)
	}
	// Training must have reached a lower loss than it started with. The
	// comparison is against the best epoch, not the last: per-epoch loss
	// is noisy under async workers with freshly resampled negatives.
	best := res.History[0].Loss
	for _, st := range res.History[1:] {
		if st.Loss < best {
			best = st.Loss
		}
	}
	if best >= res.History[0].Loss {
		t.Fatalf("loss never decreased below the first epoch's %.4f", res.History[0].Loss)
	}
}

func TestAssembleLinkBatchNegativeSampling(t *testing.T) {
	train, _, _ := linkTrainingFixture(t, 13)
	recs, err := DecodeLinkRecords(train[:8])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b, err := AssembleLinkBatch(recs, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Negatives == 0 {
		t.Fatal("no negatives sampled")
	}
	if len(b.SrcRows) != 8+b.Negatives || b.Labels.Rows != len(b.SrcRows) {
		t.Fatalf("pair bookkeeping: %d src rows, %d negatives, %d labels",
			len(b.SrcRows), b.Negatives, b.Labels.Rows)
	}
	// Negatives carry label 0, positives label 1, and negatives never
	// duplicate a batch edge.
	edgeSet := map[[2]int64]bool{}
	for _, rec := range recs {
		for _, e := range rec.SG.Edges {
			edgeSet[[2]int64{e.Src, e.Dst}] = true
		}
	}
	for p := 8; p < len(b.SrcRows); p++ {
		if b.Labels.At(p, 0) != 0 {
			t.Fatalf("negative pair %d has label %v", p, b.Labels.At(p, 0))
		}
		if edgeSet[b.Pairs[p]] {
			t.Fatalf("negative pair %v is a real batch edge", b.Pairs[p])
		}
	}
	// Without an rng no negatives appear (evaluation mode).
	b2, err := AssembleLinkBatch(recs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Negatives != 0 || len(b2.SrcRows) != 8 {
		t.Fatalf("eval assembly sampled negatives: %+v", b2.Negatives)
	}
}

// TestInferLinkScores checks offline pair scoring through GraphInfer and
// pins it to the edge head applied to the kept embeddings.
func TestInferLinkScores(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomDigraph(rng, 20, 0.2)
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 1, Hidden: 6, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: 2, EdgeHead: gnn.EdgeHeadBilinear,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []EdgeTarget{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 4, Dst: 888}}
	res, err := Infer(InferConfig{KeepEmbeddings: true, EdgeTargets: pairs},
		model, mapreduce.MemInput(TableRecords(g)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LinkScores) != 2 {
		t.Fatalf("want 2 scored pairs (unknown endpoint dropped), got %d", len(res.LinkScores))
	}
	want := ScoresFromLogits([]float64{model.Edge.ScoreVec(res.Embeddings[0], res.Embeddings[1])})[0]
	got := res.LinkScores[[2]int64{0, 1}]
	if got != want {
		t.Fatalf("pair (0,1) score %v, want %v", got, want)
	}
	// Without an edge head the same request must fail loudly.
	plain, err := gnn.NewModel(gnn.Config{Kind: gnn.KindGCN, InDim: 1, Hidden: 6, Classes: 1, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(InferConfig{KeepEmbeddings: true, EdgeTargets: pairs[:1]},
		plain, mapreduce.MemInput(TableRecords(g))); err == nil {
		t.Fatal("expected error for EdgeTargets without an edge head")
	}
}
