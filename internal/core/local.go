package core

import (
	"errors"
	"fmt"

	"agl/internal/graph"
	"agl/internal/sampling"
	"agl/internal/wire"
)

// ErrNodeNotFound marks a request for a node id absent from the graph;
// callers can distinguish it (errors.Is) from internal failures.
var ErrNodeNotFound = errors.New("node not in graph")

// LocalFlattener materializes the k-hop GraphFeature of a single node
// directly from an in-memory graph — the online counterpart of the batch
// Flatten pipeline. The serving tier (internal/serve) uses it for "cold"
// nodes whose embedding is not in the offline store: a request-time BFS
// along in-edges replaces the K MapReduce merge rounds, producing a
// TrainRecord a forward pass can consume.
//
// With sampling disabled (MaxNeighbors = 0) the extracted subgraph contains
// exactly the nodes and edges GraphFlat would materialize for the same
// target: every node on a directed path of length ≤ Hops into the target,
// and every in-edge of nodes within Hops−1. With sampling enabled, the same
// Strategy and a deterministic per-(node, depth) RNG keep decisions stable
// across requests, though they need not coincide with the offline run's
// per-round choices.
type LocalFlattener struct {
	cfg FlatConfig
	g   *graph.Graph
	// ins[i] lists node i's in-edges (by dense index); deg[i] is the
	// node's normalization degree (weighted in-degree + 1), matching
	// WeightedInDegrees.
	ins [][]inRef
	deg []float64
}

type inRef struct {
	src   int
	w     float64
	efeat []float64
}

// NewLocalFlattener indexes g's in-edges for request-time extraction.
func NewLocalFlattener(cfg FlatConfig, g *graph.Graph) *LocalFlattener {
	cfg = cfg.withDefaults()
	lf := &LocalFlattener{
		cfg: cfg,
		g:   g,
		ins: make([][]inRef, g.NumNodes()),
		deg: make([]float64, g.NumNodes()),
	}
	for i := range lf.deg {
		lf.deg[i] = 1 // isolated nodes normalize by 1, as in WeightedInDegrees
	}
	for _, e := range g.Edges {
		si := g.MustIndex(e.Src)
		di := g.MustIndex(e.Dst)
		lf.ins[di] = append(lf.ins[di], inRef{src: si, w: e.Weight, efeat: e.Feat})
		lf.deg[di] += e.Weight
	}
	return lf
}

// Graph returns the graph version this flattener extracts from.
func (lf *LocalFlattener) Graph() *graph.Graph { return lf.g }

// Hops returns the neighborhood radius K the flattener extracts.
func (lf *LocalFlattener) Hops() int { return lf.cfg.Hops }

// Rebind returns a flattener over next, the graph produced by applying
// muts to lf's graph (see graph.Graph.Apply). Per-node in-edge rows are
// copy-on-write: only nodes whose in-edge set the batch touched are
// re-indexed, every other row is shared with lf. Rebound rows are rebuilt
// from next's edge table in table order — exactly what NewLocalFlattener
// would produce — so a rebound flattener's extractions (including sampled
// ones, which canonicalize candidate order) are indistinguishable from a
// freshly constructed flattener's.
//
// lf itself is never modified: extractions in flight on the old version
// keep their consistent view.
func (lf *LocalFlattener) Rebind(next *graph.Graph, muts []graph.Mutation) *LocalFlattener {
	nn := next.NumNodes()
	ins := make([][]inRef, nn)
	copy(ins, lf.ins)
	deg := make([]float64, nn)
	copy(deg, lf.deg)
	for i := len(lf.deg); i < nn; i++ {
		deg[i] = 1 // new nodes start isolated, normalized by 1
	}

	touched := make(map[int]bool)
	for _, m := range muts {
		switch m.Op {
		case graph.OpAddEdge, graph.OpRemoveEdge:
			if di, ok := next.Index(m.Dst); ok {
				touched[di] = true
			}
		}
	}
	if len(touched) == 0 {
		return &LocalFlattener{cfg: lf.cfg, g: next, ins: ins, deg: deg}
	}
	for di := range touched {
		ins[di] = nil
		deg[di] = 1
	}
	for _, e := range next.Edges {
		di := next.MustIndex(e.Dst)
		if !touched[di] {
			continue
		}
		ins[di] = append(ins[di], inRef{src: next.MustIndex(e.Src), w: e.Weight, efeat: e.Feat})
		deg[di] += e.Weight
	}
	return &LocalFlattener{cfg: lf.cfg, g: next, ins: ins, deg: deg}
}

// GraphFeature extracts the target's k-hop neighborhood as a TrainRecord
// (Label −1: inference has no supervision). It errors on unknown node ids.
func (lf *LocalFlattener) GraphFeature(id int64) (*wire.TrainRecord, error) {
	ti, ok := lf.g.Index(id)
	if !ok {
		return nil, fmt.Errorf("core: node %d: %w", id, ErrNodeNotFound)
	}
	sg := &wire.Subgraph{Target: id}
	added := map[int]bool{ti: true}
	sg.Nodes = append(sg.Nodes, lf.sgNode(ti))

	frontier := []int{ti}
	for depth := 1; depth <= lf.cfg.Hops && len(frontier) > 0; depth++ {
		var next []int
		for _, v := range frontier {
			for _, in := range lf.sampledIns(v, depth) {
				sg.Edges = append(sg.Edges, wire.SGEdge{
					Src:    lf.g.Nodes[in.src].ID,
					Dst:    lf.g.Nodes[v].ID,
					Weight: in.w,
					Feat:   in.efeat,
				})
				if !added[in.src] {
					added[in.src] = true
					sg.Nodes = append(sg.Nodes, lf.sgNode(in.src))
					next = append(next, in.src)
				}
			}
		}
		frontier = next
	}
	return &wire.TrainRecord{TargetID: id, Label: -1, SG: sg}, nil
}

func (lf *LocalFlattener) sgNode(i int) wire.SGNode {
	n := lf.g.Nodes[i]
	return wire.SGNode{ID: n.ID, Feat: n.Feat, Deg: lf.deg[i]}
}

// sampledIns applies the shared sampling framework to node i's in-edges:
// candidates funnel through the same canonical ordering and Strategy as
// GraphFlat/GraphInfer, with a per-(node, depth) RNG for determinism.
func (lf *LocalFlattener) sampledIns(i, depth int) []inRef {
	ins := lf.ins[i]
	if lf.cfg.MaxNeighbors <= 0 || len(ins) <= lf.cfg.MaxNeighbors {
		return ins
	}
	msgs := make([]*flatMsg, len(ins))
	for j, in := range ins {
		msgs[j] = &flatMsg{Src: lf.g.Nodes[in.src].ID, W: in.w, EFeat: in.efeat}
	}
	kept := sampleInEdgesWithRNG(lf.cfg.MaxNeighbors, lf.cfg.Strategy,
		sampling.NodeRNG(lf.cfg.Seed, lf.g.Nodes[i].ID, depth), msgs)
	out := make([]inRef, 0, len(kept))
	for _, m := range kept {
		out = append(out, inRef{src: lf.g.MustIndex(m.Src), w: m.W, efeat: m.EFeat})
	}
	return out
}
