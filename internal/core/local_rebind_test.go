package core

import (
	"math/rand"
	"reflect"
	"testing"

	"agl/internal/graph"
)

// applyAndRebind applies one mutation batch and rebinds the flattener,
// failing the test on any per-mutation error.
func applyAndRebind(t *testing.T, lf *LocalFlattener, muts []graph.Mutation) *LocalFlattener {
	t.Helper()
	next, errs := lf.Graph().Apply(muts)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutation %d (%+v): %v", i, muts[i], err)
		}
	}
	return lf.Rebind(next, muts)
}

// TestRebindMatchesFreshFlattener is the flattener-level property test:
// after any random mutation sequence, every extraction from the
// incrementally rebound flattener must be byte-identical to one from a
// flattener freshly constructed over the mutated graph — with sampling
// both disabled and enabled (candidate order canonicalizes before the
// strategy runs, so the shared rows cannot skew decisions).
func TestRebindMatchesFreshFlattener(t *testing.T) {
	for _, cfg := range []FlatConfig{
		{Hops: 2, Seed: 4},
		{Hops: 2, Seed: 4, MaxNeighbors: 3},
		{Hops: 3, Seed: 9, MaxNeighbors: 2},
	} {
		g := buildInferGraph(t)
		lf := NewLocalFlattener(cfg, g)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(cfg.MaxNeighbors)))
		nextID := int64(1 << 20)

		for batch := 0; batch < 6; batch++ {
			var muts []graph.Mutation
			cur := lf.Graph()
			for k := 0; k < 1+rng.Intn(5); k++ {
				switch rng.Intn(4) {
				case 0:
					feat := make([]float64, cur.FeatureDim())
					for j := range feat {
						feat[j] = rng.NormFloat64()
					}
					muts = append(muts, graph.AddNode(nextID, feat))
					nextID++
				case 1:
					s := cur.Nodes[rng.Intn(cur.NumNodes())].ID
					d := cur.Nodes[rng.Intn(cur.NumNodes())].ID
					if s != d {
						muts = append(muts, graph.AddEdge(s, d, 1+rng.Float64()))
					}
				case 2:
					if cur.NumEdges() > 0 {
						e := cur.Edges[rng.Intn(cur.NumEdges())]
						muts = append(muts, graph.RemoveEdge(e.Src, e.Dst))
					}
				case 3:
					id := cur.Nodes[rng.Intn(cur.NumNodes())].ID
					feat := make([]float64, cur.FeatureDim())
					for j := range feat {
						feat[j] = rng.NormFloat64()
					}
					muts = append(muts, graph.UpdateNodeFeat(id, feat))
				}
			}
			// Drop duplicate RemoveEdge targets within one batch (would be a
			// legitimate per-mutation error, which this test treats as fatal).
			seen := map[[2]int64]bool{}
			dedup := muts[:0]
			for _, m := range muts {
				if m.Op == graph.OpRemoveEdge {
					k := [2]int64{m.Src, m.Dst}
					if seen[k] {
						continue
					}
					seen[k] = true
				}
				dedup = append(dedup, m)
			}
			lf = applyAndRebind(t, lf, dedup)

			fresh := NewLocalFlattener(cfg, lf.Graph())
			if !reflect.DeepEqual(fresh.deg, lf.deg) {
				t.Fatalf("cfg %+v batch %d: degree arrays diverge", cfg, batch)
			}
			for _, n := range lf.Graph().Nodes {
				got, err := lf.GraphFeature(n.ID)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.GraphFeature(n.ID)
				if err != nil {
					t.Fatal(err)
				}
				gn, ge := subgraphSets(got.SG)
				wn, we := subgraphSets(want.SG)
				if !reflect.DeepEqual(gn, wn) || !reflect.DeepEqual(ge, we) {
					t.Fatalf("cfg %+v batch %d: node %d extraction diverged\nrebound: %v %v\nfresh:   %v %v",
						cfg, batch, n.ID, gn, ge, wn, we)
				}
			}
		}
	}
}

// TestRebindOldVersionStaysConsistent: a flattener bound to the old
// version must keep extracting the pre-mutation neighborhood.
func TestRebindOldVersionStaysConsistent(t *testing.T) {
	g := buildInferGraph(t)
	cfg := FlatConfig{Hops: 2, Seed: 4}
	old := NewLocalFlattener(cfg, g)
	target := g.Nodes[0].ID

	before, err := old.GraphFeature(target)
	if err != nil {
		t.Fatal(err)
	}
	bn, be := subgraphSets(before.SG)

	// Mutate heavily around the target: add a fresh hub pointing at it.
	muts := []graph.Mutation{graph.AddNode(999999, make([]float64, g.FeatureDim()))}
	muts = append(muts, graph.AddEdge(999999, target, 3))
	rebound := applyAndRebind(t, old, muts)

	after, err := old.GraphFeature(target)
	if err != nil {
		t.Fatal(err)
	}
	an, ae := subgraphSets(after.SG)
	if !reflect.DeepEqual(bn, an) || !reflect.DeepEqual(be, ae) {
		t.Fatal("old-version flattener saw the mutation")
	}

	got, err := rebound.GraphFeature(target)
	if err != nil {
		t.Fatal(err)
	}
	gn, _ := subgraphSets(got.SG)
	found := false
	for _, id := range gn {
		if id == 999999 {
			found = true
		}
	}
	if !found {
		t.Fatal("rebound flattener missing the new in-neighbor")
	}
}
