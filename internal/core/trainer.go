package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/gnn"
	"agl/internal/metrics"
	"agl/internal/nn"
	"agl/internal/ps"
	"agl/internal/tensor"
	"agl/internal/wire"
)

// LossKind selects the training objective.
type LossKind int

// Objectives.
const (
	// LossCE is softmax cross-entropy over integer class labels (Cora).
	LossCE LossKind = iota
	// LossBCE is elementwise sigmoid binary cross-entropy over 0/1 label
	// vectors (PPI multi-label, UUG binary).
	LossBCE
)

// MetricKind selects the evaluation metric (paper Table 3).
type MetricKind int

// Metrics.
const (
	MetricAccuracy MetricKind = iota
	MetricMicroF1
	MetricAUC
)

// String names the metric.
func (m MetricKind) String() string {
	switch m {
	case MetricMicroF1:
		return "micro-F1"
	case MetricAUC:
		return "AUC"
	}
	return "accuracy"
}

// TrainConfig parameterizes GraphTrainer.
type TrainConfig struct {
	Model gnn.Config
	Loss  LossKind

	BatchSize int
	Epochs    int
	LR        float64

	// Workers is the number of training workers (paper Figure 4); each
	// holds a model replica and its own partition of the GraphFeatures.
	Workers int
	// PSShards is the number of parameter-server shards.
	PSShards int
	// Mode selects sync (BSP gradient averaging) or async consistency.
	Mode ps.Mode

	// The three optimization strategies of paper §3.3.2:
	Pipeline   bool // overlap vectorization with model compute
	Pruning    bool // per-layer pruned adjacency
	AggThreads int  // edge-partitioned aggregation threads (<=1 serial)

	Seed int64

	// Eval, when non-nil, is scored with EvalMetric (the final model in
	// Train; every EvalEvery epochs in TrainWithHistory).
	Eval       [][]byte
	EvalEvery  int
	EvalMetric MetricKind

	// NegativeRatio is the number of uniform negatives sampled per positive
	// pair at batch-assembly time during link training (Model.EdgeHead set;
	// 0 selects 1). Meaningless for node tasks and rejected there.
	NegativeRatio int

	// Patience enables early stopping in TrainWithHistory: training stops
	// once the eval metric has not improved for Patience consecutive
	// evaluations, and the best snapshot is returned (0 disables). This is
	// the paper's protocol of training "at a maximum of 200 epochs" against
	// a validation set.
	Patience int

	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.PSShards <= 0 {
		c.PSShards = 1
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	return c
}

// EpochStats records one epoch's accounting.
type EpochStats struct {
	Epoch    int
	Loss     float64
	Duration time.Duration
	// VecBusy and ComputeBusy are summed across workers: time spent in
	// subgraph vectorization vs model computation. With the pipeline
	// enabled they overlap, so wall time approaches max(vec, compute)
	// instead of their sum — the effect of §3.3.2's training pipeline.
	VecBusy     time.Duration
	ComputeBusy time.Duration
	Metric      float64
	HasMetric   bool
}

// TrainResult is GraphTrainer's output.
type TrainResult struct {
	Model   *gnn.Model
	History []EpochStats
	Total   time.Duration
	// PSBytesOut/In are the parameter-server traffic totals.
	PSBytesOut, PSBytesIn int64
	// BestEpoch/BestMetric identify the best evaluated snapshot
	// (TrainWithHistory only; zero when no evaluation ran).
	BestEpoch  int
	BestMetric float64
	// Stopped reports whether early stopping fired before Epochs ran out.
	Stopped bool
}

// epochAcc accumulates per-epoch loss and phase timings across workers.
type epochAcc struct {
	lossSum      float64
	batches      int64
	vec, compute int64 // nanoseconds
}

// Train runs distributed parameter-server training over encoded
// GraphFeature records (GraphFlat's output).
func Train(cfg TrainConfig, records [][]byte) (*TrainResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(records) == 0 {
		return nil, fmt.Errorf("core: no training records")
	}
	global, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	cluster := ps.NewCluster(cfg.PSShards, global.Params(),
		func() nn.Optimizer { return nn.NewAdam(cfg.LR) }, cfg.Mode)

	parts := make([][][]byte, cfg.Workers)
	for i, rec := range records {
		parts[i%cfg.Workers] = append(parts[i%cfg.Workers], rec)
	}

	// Link models (Model.EdgeHead set) train on LinkRecords with a
	// pairwise loop; node models on TrainRecords with the classic loop.
	loop := trainWorkerLoop
	if cfg.Model.EdgeHead != "" {
		loop = trainLinkWorkerLoop
	}

	start := time.Now()
	accs := make([]epochAcc, cfg.Epochs)
	var accMu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]epochAcc, cfg.Epochs)
			if err := loop(cfg, w, parts[w], cluster.Client(), local); err != nil {
				errCh <- err
				return
			}
			accMu.Lock()
			for e := range accs {
				accs[e].lossSum += local[e].lossSum
				accs[e].batches += local[e].batches
				accs[e].vec += local[e].vec
				accs[e].compute += local[e].compute
			}
			accMu.Unlock()
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	result := &TrainResult{Total: time.Since(start)}
	final, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	cluster.Snapshot(final.Params())
	result.Model = final
	result.PSBytesOut, result.PSBytesIn = cluster.Traffic()
	for e := range accs {
		st := EpochStats{Epoch: e + 1}
		if accs[e].batches > 0 {
			st.Loss = accs[e].lossSum / float64(accs[e].batches)
		}
		st.VecBusy = time.Duration(accs[e].vec)
		st.ComputeBusy = time.Duration(accs[e].compute)
		result.History = append(result.History, st)
	}
	if cfg.Eval != nil {
		metric, err := evalDispatch(cfg, final)
		if err != nil {
			return nil, err
		}
		last := &result.History[len(result.History)-1]
		last.Metric = metric
		last.HasMetric = true
		if cfg.Logf != nil {
			cfg.Logf("final %s = %.4f", cfg.EvalMetric, metric)
		}
	}
	return result, nil
}

// TrainWithHistory behaves like Train but evaluates a consistent global
// snapshot after every EvalEvery epochs, producing the convergence curves
// of the paper's Figure 7. Epochs are globally synchronized (workers are
// re-joined per epoch), so it is slower than Train.
func TrainWithHistory(cfg TrainConfig, records [][]byte) (*TrainResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Eval == nil {
		return Train(cfg, records)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("core: no training records")
	}
	global, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	cluster := ps.NewCluster(cfg.PSShards, global.Params(),
		func() nn.Optimizer { return nn.NewAdam(cfg.LR) }, cfg.Mode)
	parts := make([][][]byte, cfg.Workers)
	for i, rec := range records {
		parts[i%cfg.Workers] = append(parts[i%cfg.Workers], rec)
	}
	loop := trainWorkerLoop
	if cfg.Model.EdgeHead != "" {
		loop = trainLinkWorkerLoop
	}

	start := time.Now()
	var history []EpochStats
	var best *gnn.Model
	bestMetric, bestEpoch := -1.0, 0
	sinceBest := 0
	stopped := false
	for e := 0; e < cfg.Epochs; e++ {
		epochStart := time.Now()
		var acc epochAcc
		var accMu sync.Mutex
		var wg sync.WaitGroup
		errCh := make(chan error, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sub := cfg
				sub.Epochs = 1
				sub.Seed = cfg.Seed + int64(e+1)*104729
				local := make([]epochAcc, 1)
				if err := loop(sub, w, parts[w], cluster.Client(), local); err != nil {
					errCh <- err
					return
				}
				accMu.Lock()
				acc.lossSum += local[0].lossSum
				acc.batches += local[0].batches
				acc.vec += local[0].vec
				acc.compute += local[0].compute
				accMu.Unlock()
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		st := EpochStats{Epoch: e + 1, Duration: time.Since(epochStart)}
		if acc.batches > 0 {
			st.Loss = acc.lossSum / float64(acc.batches)
		}
		st.VecBusy = time.Duration(acc.vec)
		st.ComputeBusy = time.Duration(acc.compute)
		if (e+1)%cfg.EvalEvery == 0 || e == cfg.Epochs-1 {
			snap, err := gnn.NewModel(cfg.Model)
			if err != nil {
				return nil, err
			}
			cluster.Snapshot(snap.Params())
			metric, err := evalDispatch(cfg, snap)
			if err != nil {
				return nil, err
			}
			st.Metric = metric
			st.HasMetric = true
			if cfg.Logf != nil {
				cfg.Logf("workers=%d epoch=%d loss=%.4f %s=%.4f",
					cfg.Workers, e+1, st.Loss, cfg.EvalMetric, metric)
			}
			if metric > bestMetric {
				bestMetric, bestEpoch, sinceBest = metric, e+1, 0
				best = snap
			} else {
				sinceBest++
			}
		}
		history = append(history, st)
		if cfg.Patience > 0 && sinceBest >= cfg.Patience {
			stopped = true
			if cfg.Logf != nil {
				cfg.Logf("early stop at epoch %d (best %s %.4f at epoch %d)",
					e+1, cfg.EvalMetric, bestMetric, bestEpoch)
			}
			break
		}
	}
	final, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	cluster.Snapshot(final.Params())
	if cfg.Patience > 0 && best != nil {
		final = best // restore the early-stopping optimum
	}
	if bestEpoch == 0 {
		bestMetric = 0
	}
	out, in := cluster.Traffic()
	return &TrainResult{
		Model: final, History: history, Total: time.Since(start),
		PSBytesOut: out, PSBytesIn: in,
		BestEpoch: bestEpoch, BestMetric: bestMetric, Stopped: stopped,
	}, nil
}

// evalDispatch scores cfg.Eval with the task-appropriate protocol: ROC-AUC
// over LinkRecords for link models, EvalMetric over TrainRecords otherwise.
func evalDispatch(cfg TrainConfig, model *gnn.Model) (float64, error) {
	ec := EvalConfig{
		BatchSize: cfg.BatchSize, Loss: cfg.Loss, Metric: cfg.EvalMetric,
		Pruning: cfg.Pruning, AggThreads: cfg.AggThreads,
	}
	if cfg.Model.EdgeHead != "" {
		return EvaluateLinks(model, cfg.Eval, ec)
	}
	return Evaluate(model, cfg.Eval, ec)
}

// preparedBatch is a vectorized batch ready for model computation.
type preparedBatch struct {
	batch *Batch
	prep  *gnn.Prepared
}

// trainWorkerLoop is the per-worker training loop: for each batch, pull the
// latest weights, vectorize (possibly pipelined), run forward/backward, and
// push gradients.
func trainWorkerLoop(cfg TrainConfig, workerID int, part [][]byte, client ps.Client, accs []epochAcc) error {
	if len(part) == 0 {
		return nil
	}
	local, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return err
	}
	client.Register()
	defer client.Deregister()

	opt := gnn.RunOptions{Pruning: cfg.Pruning, Threads: cfg.AggThreads, Train: true}
	prepare := func(ws *tensor.Workspace, idx []int) (*preparedBatch, int64, error) {
		t0 := time.Now()
		recs := make([]*wire.TrainRecord, 0, len(idx))
		for _, i := range idx {
			rec, err := wire.DecodeTrainRecord(part[i])
			if err != nil {
				return nil, 0, err
			}
			recs = append(recs, rec)
		}
		b, err := AssembleBatchWS(ws, recs, cfg.Model.Classes, cfg.Loss == LossBCE)
		if err != nil {
			return nil, 0, err
		}
		po := opt
		po.Workspace = ws
		prep := local.Prepare(b.Graph, po)
		return &preparedBatch{batch: b, prep: prep}, int64(time.Since(t0)), nil
	}
	step := func(pb *preparedBatch, ws *tensor.Workspace) (float64, error) {
		if err := client.PullInto(local.Params()); err != nil {
			return 0, err
		}
		so := opt
		so.Workspace = ws
		st := local.Forward(pb.batch.Graph, pb.prep, so)
		var loss float64
		var dLogits *tensor.Matrix
		switch cfg.Loss {
		case LossCE:
			loss, dLogits = nn.SoftmaxCrossEntropyWS(ws, st.Logits, pb.batch.Labels)
		case LossBCE:
			loss, dLogits = nn.SigmoidBCEWS(ws, st.Logits, pb.batch.LabelVecs)
		default:
			return 0, fmt.Errorf("core: unknown loss %d", cfg.Loss)
		}
		local.Params().ZeroGrads()
		local.Backward(st, dLogits)
		if err := client.PushGrads(local.Params()); err != nil {
			return 0, err
		}
		return loss, nil
	}
	return runWorkerEpochs(cfg, workerID, len(part), prepare, step, accs)
}

// runWorkerEpochs drives the scaffolding the node and link training loops
// share: per-epoch example shuffling and batch slicing, the prepare stage
// running in its own goroutine (pipelined ahead of model compute when
// cfg.Pipeline, lock-step otherwise), and per-epoch loss/time accounting.
// prepare vectorizes one batch of partition indices into the given
// workspace and reports its vectorization time; step pulls weights, runs
// forward/backward and pushes gradients against the same workspace,
// returning the batch loss.
//
// The worker owns two workspaces cycled through a channel: batch N+1's
// decode + assembly + adjacency normalization fills one arena while batch
// N's model step runs against the other (the paper's training pipeline,
// §3.3.2). A workspace is reset and recycled only after its batch's step
// completes, so the prepare stage can never overwrite live activations.
func runWorkerEpochs[B any](cfg TrainConfig, workerID, n int,
	prepare func(ws *tensor.Workspace, idx []int) (B, int64, error),
	step func(b B, ws *tensor.Workspace) (float64, error),
	accs []epochAcc) error {
	type fed struct {
		b     B
		vecNS int64
		ws    *tensor.Workspace
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(workerID)*7919))
	wsCh := make(chan *tensor.Workspace, 2)
	wsCh <- tensor.NewWorkspace()
	wsCh <- tensor.NewWorkspace()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(n)
		batches := make([][]int, 0, n/cfg.BatchSize+1)
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			batches = append(batches, order[lo:hi])
		}

		acc := &accs[epoch]
		var prepErr atomic.Value
		depth := 0
		if cfg.Pipeline {
			depth = 2 // preprocessing stage runs ahead of model computation
		}
		feed := make(chan fed, depth)
		go func() {
			defer close(feed)
			for _, idx := range batches {
				ws := <-wsCh
				b, vecNS, err := prepare(ws, idx)
				if err != nil {
					prepErr.Store(err)
					return
				}
				feed <- fed{b: b, vecNS: vecNS, ws: ws}
			}
		}()
		for f := range feed {
			t0 := time.Now()
			loss, err := step(f.b, f.ws)
			if err != nil {
				// Unblock the prepare goroutine (it may be parked on a
				// send or a workspace receive) before abandoning the
				// epoch, recycling the drained workspaces so it can
				// finish. wsCh holds at most the two worker-owned
				// workspaces, so the sends never block.
				go func() {
					wsCh <- f.ws
					for g := range feed {
						wsCh <- g.ws
					}
				}()
				return err
			}
			f.ws.Reset()
			wsCh <- f.ws
			acc.lossSum += loss
			acc.batches++
			acc.vec += f.vecNS
			acc.compute += int64(time.Since(t0))
		}
		if err, ok := prepErr.Load().(error); ok && err != nil {
			return err
		}
	}
	return nil
}

// trainLinkWorkerLoop is the pairwise counterpart of trainWorkerLoop: the
// worker's partition holds encoded LinkRecords; each batch assembles the
// merged pair subgraphs, samples NegativeRatio uniform negatives per
// positive, and trains the GNN stack plus the edge head with sigmoid BCE.
func trainLinkWorkerLoop(cfg TrainConfig, workerID int, part [][]byte, client ps.Client, accs []epochAcc) error {
	if len(part) == 0 {
		return nil
	}
	local, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return err
	}
	client.Register()
	defer client.Deregister()

	negPerPos := cfg.NegativeRatio
	if negPerPos <= 0 {
		negPerPos = 1
	}
	// The prepare stage runs in its own goroutine; its negative sampling
	// gets a dedicated RNG so it never races the runner's shuffling RNG.
	negRNG := rand.New(rand.NewSource(cfg.Seed + int64(workerID)*7919 + 1))
	opt := gnn.RunOptions{Pruning: cfg.Pruning, Threads: cfg.AggThreads, Train: true}
	prepare := func(ws *tensor.Workspace, idx []int) (*preparedLinkBatch, int64, error) {
		t0 := time.Now()
		recs := make([]*wire.LinkRecord, 0, len(idx))
		for _, i := range idx {
			rec, err := wire.DecodeLinkRecord(part[i])
			if err != nil {
				return nil, 0, err
			}
			recs = append(recs, rec)
		}
		b, err := AssembleLinkBatchWS(ws, recs, negPerPos, negRNG)
		if err != nil {
			return nil, 0, err
		}
		po := opt
		po.Workspace = ws
		prep := local.Prepare(b.Graph, po)
		return &preparedLinkBatch{batch: b, prep: prep}, int64(time.Since(t0)), nil
	}
	step := func(pb *preparedLinkBatch, ws *tensor.Workspace) (float64, error) {
		if err := client.PullInto(local.Params()); err != nil {
			return 0, err
		}
		so := opt
		so.Workspace = ws
		st := local.ForwardEdges(pb.batch.Graph, pb.prep, pb.batch.SrcRows, pb.batch.DstRows, so)
		loss, dLogits := nn.SigmoidBCEWS(ws, st.Logits, pb.batch.Labels)
		local.Params().ZeroGrads()
		local.BackwardEdges(st, dLogits)
		if err := client.PushGrads(local.Params()); err != nil {
			return 0, err
		}
		return loss, nil
	}
	return runWorkerEpochs(cfg, workerID, len(part), prepare, step, accs)
}

// EvalConfig parameterizes Evaluate.
type EvalConfig struct {
	BatchSize  int
	Loss       LossKind
	Metric     MetricKind
	Pruning    bool
	AggThreads int
}

// Evaluate scores a model over encoded GraphFeature records.
func Evaluate(model *gnn.Model, records [][]byte, cfg EvalConfig) (float64, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	_, logits, labels, labelVecs, err := Predict(model, records, cfg.BatchSize, gnn.RunOptions{
		Pruning: cfg.Pruning, Threads: cfg.AggThreads,
	})
	if err != nil {
		return 0, err
	}
	switch cfg.Metric {
	case MetricAccuracy:
		return metrics.Accuracy(logits.ArgMaxRows(), labels), nil
	case MetricMicroF1:
		if labelVecs == nil {
			return 0, fmt.Errorf("core: micro-F1 needs label vectors")
		}
		return metrics.MicroF1(nn.SigmoidMatrix(logits), labelVecs, 0.5), nil
	case MetricAUC:
		scores := make([]float64, logits.Rows)
		for i := 0; i < logits.Rows; i++ {
			scores[i] = nn.Sigmoid(logits.At(i, 0))
		}
		return metrics.AUC(scores, labels), nil
	}
	return 0, fmt.Errorf("core: unknown metric %d", cfg.Metric)
}

// Predict runs batched inference over GraphFeature records, returning the
// target ids, raw logits, integer labels, and label vectors when present.
func Predict(model *gnn.Model, records [][]byte, batchSize int, opt gnn.RunOptions) ([]int64, *tensor.Matrix, []int, *tensor.Matrix, error) {
	var ids []int64
	var labels []int
	var logitParts []*tensor.Matrix
	var vecParts []*tensor.Matrix
	// One workspace serves every batch: assembly and the forward pass fill
	// it, the (small) logit block is cloned out, and a reset recycles the
	// arena for the next batch.
	ws := tensor.NewWorkspace()
	opt.Workspace = ws
	for lo := 0; lo < len(records); lo += batchSize {
		hi := lo + batchSize
		if hi > len(records) {
			hi = len(records)
		}
		recs, err := DecodeRecords(records[lo:hi])
		if err != nil {
			return nil, nil, nil, nil, err
		}
		b, err := AssembleBatchWS(ws, recs, model.Cfg.Classes, false)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		logits := model.Infer(b.Graph, opt).Clone()
		ws.Reset()
		logitParts = append(logitParts, logits)
		ids = append(ids, b.TargetIDs...)
		labels = append(labels, b.Labels...)
		if b.LabelVecs != nil {
			vecParts = append(vecParts, b.LabelVecs)
		}
	}
	var vecs *tensor.Matrix
	if len(vecParts) > 0 {
		vecs = tensor.Concat(vecParts...)
	}
	return ids, tensor.Concat(logitParts...), labels, vecs, nil
}
