package core

import (
	"fmt"
	"math/rand"
	"strconv"

	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/metrics"
	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
	"agl/internal/wire"
)

// EdgeTarget marks a (src, dst) pair whose merged endpoint neighborhood
// GraphFlat must materialize, with its link label: 1 for an observed
// (positive) edge, 0 for a sampled negative. The edge-level counterpart of
// Target.
type EdgeTarget = wire.EdgeTarget

// flattenEdges is GraphFlat's edge-target mode: the K merge rounds run once
// over the union of all pair endpoints (each endpoint's k-hop neighborhood
// is materialized exactly once no matter how many pairs share it), then one
// extra MapReduce pass re-keys the endpoint records by pair and merges the
// two endpoint subgraphs into a LinkRecord. The pair pass rides the same
// streaming shuffle as every other round.
func flattenEdges(cfg FlatConfig, tables mapreduce.Input) (*FlatResult, error) {
	pairs := cfg.EdgeTargets
	nodeTargets := make(map[int64]Target, 2*len(pairs))
	for _, p := range pairs {
		nodeTargets[p.Src] = Target{Label: -1}
		nodeTargets[p.Dst] = Target{Label: -1}
	}
	sub := cfg.withDefaults()
	sub.EdgeTargets = nil
	sub.Output = nil   // the output dataset receives LinkRecords, not endpoint records
	sub.Partitions = 0 // only the final pair records are partitioned
	res, err := flattenNodes(sub, tables, nodeTargets)
	if err != nil {
		return nil, err
	}

	// byNode maps an endpoint to the pairs it participates in; the mapper
	// fans each endpoint record out to one shuffle key per pair.
	byNode := make(map[int64][]int, len(nodeTargets))
	for i, p := range pairs {
		byNode[p.Src] = append(byNode[p.Src], i)
		if p.Dst != p.Src {
			byNode[p.Dst] = append(byNode[p.Dst], i)
		}
	}
	pairMapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		tr, err := wire.DecodeTrainRecord(rec)
		if err != nil {
			return err
		}
		for _, pi := range byNode[tr.TargetID] {
			if err := emit(mapreduce.KeyValue{Key: strconv.Itoa(pi), Value: rec}); err != nil {
				return err
			}
		}
		return nil
	})
	pairReducer := mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		pi, err := strconv.Atoi(key)
		if err != nil || pi < 0 || pi >= len(pairs) {
			return fmt.Errorf("core: pair reducer got key %q", key)
		}
		pair := pairs[pi]
		var srcSG, dstSG *wire.Subgraph
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			tr, err := wire.DecodeTrainRecord(v)
			if err != nil {
				return err
			}
			switch tr.TargetID {
			case pair.Src:
				srcSG = tr.SG
			case pair.Dst:
				dstSG = tr.SG
			default:
				return fmt.Errorf("core: pair %d got record for node %d", pi, tr.TargetID)
			}
		}
		if err := values.Err(); err != nil {
			return err
		}
		if srcSG == nil || dstSG == nil {
			// An endpoint absent from the node table produced no record:
			// drop the pair, mirroring node-target behavior.
			return nil
		}
		merged := srcSG
		seenN, seenE := merged.NewSeenSets()
		merged.MergeInto(dstSG, seenN, seenE)
		rec := &wire.LinkRecord{Src: pair.Src, Dst: pair.Dst, Label: pair.Label, SG: merged}
		return emit(mapreduce.KeyValue{Key: key, Value: wire.EncodeLinkRecord(rec)})
	})

	cur, collect, stats, err := runRound(sub, "flat-pairs", pairMapper, pairReducer,
		mapreduce.MemInput(res.Records))
	if err != nil {
		return nil, fmt.Errorf("core: GraphFlat pair merge: %w", err)
	}
	res.RoundStats = append(res.RoundStats, stats)
	if cfg.Partitions > 0 {
		// Partition the pair records by source endpoint; see flattenNodes.
		man, err := writePartitionedOutput(cfg, cur, pairs)
		if err != nil {
			return nil, fmt.Errorf("core: GraphFlat partitioned output: %w", err)
		}
		res.Records = nil
		res.Partitioned = man
		return res, nil
	}
	kvs, err := collect()
	if err != nil {
		return nil, fmt.Errorf("core: GraphFlat pair collect: %w", err)
	}
	res.Records = make([][]byte, 0, len(kvs))
	for _, kv := range kvs {
		res.Records = append(res.Records, kv.Value)
	}
	if cfg.Output != nil {
		if err := cfg.Output.WriteAll(res.Records, sub.NumReducers); err != nil {
			return nil, fmt.Errorf("core: GraphFlat output: %w", err)
		}
	}
	return res, nil
}

// LinkBatch is a vectorized batch of link examples: the merged subgraph of
// every pair's GraphFeature plus per-pair endpoint rows and 0/1 labels.
type LinkBatch struct {
	Graph *gnn.BatchGraph
	// SrcRows/DstRows index each pair's endpoints into Graph's rows.
	SrcRows, DstRows []int
	// Pairs holds the original (src, dst) node ids, parallel to the rows.
	Pairs [][2]int64
	// Labels is the P×1 0/1 link label matrix (BCE targets).
	Labels *tensor.Matrix
	// NodeIDs maps batch row -> original node id.
	NodeIDs []int64
	// Negatives counts the pairs appended by negative sampling.
	Negatives int
}

// AssembleLinkBatch merges decoded LinkRecords into a single LinkBatch.
// When rng is non-nil, negPerPos uniform negatives are sampled per positive
// record at batch-assembly time (the GraphSAGE/GiGL in-batch scheme): the
// source endpoint is kept and the destination is drawn uniformly from the
// batch's node rows, skipping pairs that exist as batch edges or positive
// pairs. Evaluation callers pass a nil rng and pre-materialized negatives.
func AssembleLinkBatch(recs []*wire.LinkRecord, negPerPos int, rng *rand.Rand) (*LinkBatch, error) {
	return AssembleLinkBatchWS(nil, recs, negPerPos, rng)
}

// AssembleLinkBatchWS is AssembleLinkBatch with the batch feature matrix X
// drawn from a per-step workspace (nil allocates). Labels stay
// heap-allocated for callers that outlive the workspace.
func AssembleLinkBatchWS(ws *tensor.Workspace, recs []*wire.LinkRecord, negPerPos int, rng *rand.Rand) (*LinkBatch, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("core: empty link batch")
	}
	index := make(map[int64]int)
	var nodeIDs []int64
	var feats [][]float64
	var degs []float64
	anyDeg := false
	edgeSeen := make(map[[2]int64]bool)
	var coos []sparse.Coo

	for _, rec := range recs {
		for _, n := range rec.SG.Nodes {
			if _, ok := index[n.ID]; ok {
				continue
			}
			index[n.ID] = len(nodeIDs)
			nodeIDs = append(nodeIDs, n.ID)
			feats = append(feats, n.Feat)
			degs = append(degs, n.Deg)
			if n.Deg > 0 {
				anyDeg = true
			}
		}
	}
	var edgeFeat map[[2]int][]float64
	for _, rec := range recs {
		for _, e := range rec.SG.Edges {
			k := [2]int64{e.Src, e.Dst}
			if edgeSeen[k] {
				continue
			}
			edgeSeen[k] = true
			si, ok1 := index[e.Src]
			di, ok2 := index[e.Dst]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("core: edge (%d,%d) references node outside subgraphs", e.Src, e.Dst)
			}
			coos = append(coos, sparse.Coo{Row: di, Col: si, Val: e.Weight})
			if len(e.Feat) > 0 {
				if edgeFeat == nil {
					edgeFeat = make(map[[2]int][]float64)
				}
				edgeFeat[[2]int{di, si}] = e.Feat
			}
		}
	}

	b := &LinkBatch{NodeIDs: nodeIDs}
	posSeen := make(map[[2]int64]bool, len(recs))
	var labels []float64
	addPair := func(srcRow, dstRow int, srcID, dstID int64, label float64) {
		b.SrcRows = append(b.SrcRows, srcRow)
		b.DstRows = append(b.DstRows, dstRow)
		b.Pairs = append(b.Pairs, [2]int64{srcID, dstID})
		labels = append(labels, label)
	}
	for _, rec := range recs {
		si, ok1 := index[rec.Src]
		di, ok2 := index[rec.Dst]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: pair (%d,%d) endpoints missing from merged subgraph", rec.Src, rec.Dst)
		}
		if rec.Label != 0 {
			posSeen[[2]int64{rec.Src, rec.Dst}] = true
		}
		addPair(si, di, rec.Src, rec.Dst, float64(rec.Label))
	}
	if rng != nil && negPerPos > 0 && len(nodeIDs) > 1 {
		for _, rec := range recs {
			if rec.Label == 0 {
				continue
			}
			si := index[rec.Src]
			for k := 0; k < negPerPos; k++ {
				for attempt := 0; attempt < 10; attempt++ {
					di := rng.Intn(len(nodeIDs))
					dstID := nodeIDs[di]
					// Both orientations count as "known edge": reciprocal
					// pairs are one relationship, and a sampled subgraph may
					// carry only the reverse direction (same convention as
					// datagen.Links' negative sampling).
					if di == si ||
						posSeen[[2]int64{rec.Src, dstID}] || posSeen[[2]int64{dstID, rec.Src}] ||
						edgeSeen[[2]int64{rec.Src, dstID}] || edgeSeen[[2]int64{dstID, rec.Src}] {
						continue
					}
					addPair(si, di, rec.Src, dstID, 0)
					b.Negatives++
					break
				}
			}
		}
	}

	featDim := 0
	for _, f := range feats {
		if len(f) > featDim {
			featDim = len(f)
		}
	}
	x := ws.Get(len(nodeIDs), featDim)
	for i, f := range feats {
		copy(x.Row(i), f)
	}
	b.Graph = &gnn.BatchGraph{Adj: sparse.NewCSR(len(nodeIDs), len(nodeIDs), coos), X: x, EdgeFeat: edgeFeat}
	if anyDeg {
		b.Graph.Deg = degs
	}
	// Every endpoint row (including sampled negatives) is a pruning target:
	// its embedding must survive all K layers.
	seenT := make(map[int]bool, len(b.SrcRows)*2)
	for _, rows := range [][]int{b.SrcRows, b.DstRows} {
		for _, r := range rows {
			if !seenT[r] {
				seenT[r] = true
				b.Graph.Targets = append(b.Graph.Targets, r)
			}
		}
	}
	b.Graph.Dist = gnn.ComputeDistances(b.Graph.Adj, b.Graph.Targets)
	b.Labels = tensor.FromSlice(len(labels), 1, labels)
	return b, nil
}

// DecodeLinkRecords parses a slice of encoded LinkRecords.
func DecodeLinkRecords(encoded [][]byte) ([]*wire.LinkRecord, error) {
	out := make([]*wire.LinkRecord, 0, len(encoded))
	for i, e := range encoded {
		rec, err := wire.DecodeLinkRecord(e)
		if err != nil {
			return nil, fmt.Errorf("core: link record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// PredictLinks runs batched link inference over LinkRecords, returning the
// sigmoid link probability, 0/1 label and (src, dst) pair per record.
func PredictLinks(model *gnn.Model, records [][]byte, batchSize int, opt gnn.RunOptions) ([]float64, []int, [][2]int64, error) {
	if model.Edge == nil {
		return nil, nil, nil, fmt.Errorf("core: model has no edge head (set ModelConfig.EdgeHead)")
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	var scores []float64
	var labels []int
	var pairs [][2]int64
	// Per-batch workspace: scores are extracted scalar by scalar before
	// the reset, so nothing workspace-owned escapes the loop.
	ws := tensor.NewWorkspace()
	opt.Workspace = ws
	for lo := 0; lo < len(records); lo += batchSize {
		hi := lo + batchSize
		if hi > len(records) {
			hi = len(records)
		}
		recs, err := DecodeLinkRecords(records[lo:hi])
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := AssembleLinkBatchWS(ws, recs, 0, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		logits := model.InferEdges(b.Graph, b.SrcRows, b.DstRows, opt)
		for p := 0; p < logits.Rows; p++ {
			scores = append(scores, nn.Sigmoid(logits.At(p, 0)))
			labels = append(labels, int(b.Labels.At(p, 0)))
		}
		pairs = append(pairs, b.Pairs...)
		ws.Reset()
	}
	return scores, labels, pairs, nil
}

// EvaluateLinks scores a link model over LinkRecords with ROC-AUC. The
// records carry their own labels (held-out positives plus materialized
// negatives); no batch-time negative sampling happens here.
func EvaluateLinks(model *gnn.Model, records [][]byte, cfg EvalConfig) (float64, error) {
	scores, labels, _, err := PredictLinks(model, records, cfg.BatchSize, gnn.RunOptions{
		Pruning: cfg.Pruning, Threads: cfg.AggThreads,
	})
	if err != nil {
		return 0, err
	}
	return metrics.AUC(scores, labels), nil
}

// preparedLinkBatch is a vectorized link batch ready for model computation.
type preparedLinkBatch struct {
	batch *LinkBatch
	prep  *gnn.Prepared
}
