package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFlatConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  FlatConfig
		want string // substring of the error, "" for valid
	}{
		{"zero value ok", FlatConfig{}, ""},
		{"sane ok", FlatConfig{Hops: 3, MaxNeighbors: 10, HubThreshold: 50, NumReducers: 4}, ""},
		{"negative hops", FlatConfig{Hops: -1}, "Hops"},
		{"negative max neighbors", FlatConfig{MaxNeighbors: -2}, "MaxNeighbors"},
		{"negative hub threshold", FlatConfig{HubThreshold: -1}, "HubThreshold"},
		{"negative mappers", FlatConfig{NumMappers: -1}, "NumMappers"},
		{"negative reducers", FlatConfig{NumReducers: -4}, "NumReducers"},
		{"negative attempts", FlatConfig{MaxAttempts: -1}, "MaxAttempts"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

func TestInferConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  InferConfig
		want string
	}{
		{"zero value ok", InferConfig{}, ""},
		{"negative max neighbors", InferConfig{MaxNeighbors: -1}, "MaxNeighbors"},
		{"negative hub threshold", InferConfig{HubThreshold: -9}, "HubThreshold"},
		{"negative mappers", InferConfig{NumMappers: -2}, "NumMappers"},
		{"negative reducers", InferConfig{NumReducers: -1}, "NumReducers"},
		{"negative attempts", InferConfig{MaxAttempts: -3}, "MaxAttempts"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

func TestTrainConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  TrainConfig
		want string
	}{
		{"zero value ok", TrainConfig{}, ""},
		{"negative batch", TrainConfig{BatchSize: -1}, "BatchSize"},
		{"negative epochs", TrainConfig{Epochs: -5}, "Epochs"},
		{"negative lr", TrainConfig{LR: -0.1}, "LR"},
		{"nan lr", TrainConfig{LR: math.NaN()}, "LR"},
		{"inf lr", TrainConfig{LR: math.Inf(1)}, "LR"},
		{"negative workers", TrainConfig{Workers: -2}, "Workers"},
		{"negative shards", TrainConfig{PSShards: -1}, "PSShards"},
		{"negative agg threads", TrainConfig{AggThreads: -1}, "AggThreads"},
		{"negative eval every", TrainConfig{EvalEvery: -1}, "EvalEvery"},
		{"negative patience", TrainConfig{Patience: -1}, "Patience"},
		{"dropout too high", trainCfgDropout(1.0), "Dropout"},
		{"dropout negative", trainCfgDropout(-0.2), "Dropout"},
		{"negative layers", trainCfgLayers(-1), "Layers"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

func trainCfgDropout(d float64) TrainConfig {
	c := TrainConfig{}
	c.Model.Dropout = d
	return c
}

func trainCfgLayers(l int) TrainConfig {
	c := TrainConfig{}
	c.Model.Layers = l
	return c
}

// TestValidationErrorTyped table-tests the typed-error mapping: every
// Validate rejection across the pipeline configs is a *ValidationError
// whose Field is the qualified public name, so callers branch on the
// field instead of parsing message strings.
func TestValidationErrorTyped(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		field string
	}{
		{"flat hops", FlatConfig{Hops: -1}.Validate(), "FlatConfig.Hops"},
		{"flat neighbors", FlatConfig{MaxNeighbors: -2}.Validate(), "FlatConfig.MaxNeighbors"},
		{"flat partitions", FlatConfig{Partitions: 3}.Validate(), "FlatConfig.Partitions"},
		{"flat mr knob", FlatConfig{NumReducers: -1}.Validate(), "FlatConfig.NumReducers"},
		{"infer edge targets", InferConfig{EdgeTargets: []EdgeTarget{{Src: 1, Dst: 2}}}.Validate(), "InferConfig.EdgeTargets"},
		{"infer mr knob", InferConfig{MaxAttempts: -1}.Validate(), "InferConfig.MaxAttempts"},
		{"train lr", TrainConfig{LR: math.NaN()}.Validate(), "TrainConfig.LR"},
		{"train dropout", trainCfgDropout(1.5).Validate(), "TrainConfig.Model.Dropout"},
		{"train neg ratio", TrainConfig{NegativeRatio: 2}.Validate(), "TrainConfig.NegativeRatio"},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		var verr *ValidationError
		if !errors.As(tc.err, &verr) {
			t.Errorf("%s: error %T is not a *ValidationError", tc.name, tc.err)
			continue
		}
		if verr.Field != tc.field {
			t.Errorf("%s: Field = %q, want %q", tc.name, verr.Field, tc.field)
		}
		if verr.Reason == "" {
			t.Errorf("%s: empty Reason", tc.name)
		}
		if want := verr.Field + ": " + verr.Reason; tc.err.Error() != want {
			t.Errorf("%s: Error() = %q, want %q", tc.name, tc.err.Error(), want)
		}
	}
}

// TestValidationRejectsBeforeRunning: the pipeline entry points surface
// validation errors instead of clamping.
func TestValidationRejectsBeforeRunning(t *testing.T) {
	if _, err := Flatten(FlatConfig{Hops: -3}, nil, nil); err == nil {
		t.Fatal("Flatten accepted negative Hops")
	}
	if _, err := Infer(InferConfig{NumReducers: -1}, nil, nil); err == nil {
		t.Fatal("Infer accepted negative NumReducers")
	}
	if _, err := Train(TrainConfig{Workers: -1}, nil); err == nil {
		t.Fatal("Train accepted negative Workers")
	}
	if _, err := TrainWithHistory(TrainConfig{Epochs: -1}, nil); err == nil {
		t.Fatal("TrainWithHistory accepted negative Epochs")
	}
}
