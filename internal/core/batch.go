package core

import (
	"fmt"

	"agl/internal/gnn"
	"agl/internal/sparse"
	"agl/internal/tensor"
	"agl/internal/wire"
)

// Batch is a vectorized batch of training examples: the merged subgraph of
// every target's GraphFeature expressed as the three matrices of paper
// §3.3.1 (adjacency, node features, edge weights), plus supervision.
type Batch struct {
	Graph     *gnn.BatchGraph
	TargetIDs []int64
	// Labels holds per-target class labels for cross-entropy training.
	Labels []int
	// LabelVecs holds per-target 0/1 vectors for BCE (multi-label or
	// binary) training; nil when unused.
	LabelVecs *tensor.Matrix
	// NodeIDs maps batch row -> original node id.
	NodeIDs []int64
}

// AssembleBatch merges decoded TrainRecords into a single Batch — the
// "subgraph vectorization" phase of GraphTrainer. Subgraphs of different
// targets overlap; nodes and edges are deduplicated by id.
func AssembleBatch(recs []*wire.TrainRecord, numClasses int, multiLabel bool) (*Batch, error) {
	return AssembleBatchWS(nil, recs, numClasses, multiLabel)
}

// AssembleBatchWS is AssembleBatch with the batch feature matrix X drawn
// from a per-step workspace (nil allocates). Supervision (LabelVecs) stays
// heap-allocated: callers like Predict keep it past the workspace reset.
func AssembleBatchWS(ws *tensor.Workspace, recs []*wire.TrainRecord, numClasses int, multiLabel bool) (*Batch, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	index := make(map[int64]int)
	var nodeIDs []int64
	var feats [][]float64
	var degs []float64
	anyDeg := false
	edgeSeen := make(map[[2]int64]bool)
	var coos []sparse.Coo

	addNode := func(n wire.SGNode) int {
		if i, ok := index[n.ID]; ok {
			return i
		}
		i := len(nodeIDs)
		index[n.ID] = i
		nodeIDs = append(nodeIDs, n.ID)
		feats = append(feats, n.Feat)
		degs = append(degs, n.Deg)
		if n.Deg > 0 {
			anyDeg = true
		}
		return i
	}

	for _, rec := range recs {
		for _, n := range rec.SG.Nodes {
			addNode(n)
		}
	}
	var edgeFeat map[[2]int][]float64
	for _, rec := range recs {
		for _, e := range rec.SG.Edges {
			k := [2]int64{e.Src, e.Dst}
			if edgeSeen[k] {
				continue
			}
			edgeSeen[k] = true
			si, ok1 := index[e.Src]
			di, ok2 := index[e.Dst]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("core: edge (%d,%d) references node outside subgraphs", e.Src, e.Dst)
			}
			coos = append(coos, sparse.Coo{Row: di, Col: si, Val: e.Weight})
			if len(e.Feat) > 0 {
				if edgeFeat == nil {
					edgeFeat = make(map[[2]int][]float64)
				}
				edgeFeat[[2]int{di, si}] = e.Feat
			}
		}
	}

	featDim := 0
	for _, f := range feats {
		if len(f) > featDim {
			featDim = len(f)
		}
	}
	x := ws.Get(len(nodeIDs), featDim)
	for i, f := range feats {
		copy(x.Row(i), f)
	}

	adj := sparse.NewCSR(len(nodeIDs), len(nodeIDs), coos)
	b := &Batch{
		Graph:   &gnn.BatchGraph{Adj: adj, X: x},
		NodeIDs: nodeIDs,
	}
	if anyDeg {
		b.Graph.Deg = degs
	}
	b.Graph.EdgeFeat = edgeFeat
	if multiLabel || len(recs[0].LabelVec) > 0 {
		cols := numClasses
		if len(recs[0].LabelVec) > 0 {
			cols = len(recs[0].LabelVec)
		}
		b.LabelVecs = tensor.New(len(recs), cols)
	}
	for bi, rec := range recs {
		ti, ok := index[rec.TargetID]
		if !ok {
			return nil, fmt.Errorf("core: target %d missing from its own subgraph", rec.TargetID)
		}
		b.Graph.Targets = append(b.Graph.Targets, ti)
		b.TargetIDs = append(b.TargetIDs, rec.TargetID)
		b.Labels = append(b.Labels, int(rec.Label))
		if b.LabelVecs != nil {
			copy(b.LabelVecs.Row(bi), rec.LabelVec)
		}
	}
	b.Graph.Dist = gnn.ComputeDistances(adj, b.Graph.Targets)
	return b, nil
}

// DecodeRecords parses a slice of encoded TrainRecords.
func DecodeRecords(encoded [][]byte) ([]*wire.TrainRecord, error) {
	out := make([]*wire.TrainRecord, 0, len(encoded))
	for i, e := range encoded {
		rec, err := wire.DecodeTrainRecord(e)
		if err != nil {
			return nil, fmt.Errorf("core: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
