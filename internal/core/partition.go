package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"agl/internal/dfs"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/ps"
)

// This file is GraphFlat's partitioned-output mode and the bounded-memory
// train/infer loops over it. With FlatConfig.Partitions set, the final
// round's records are hash-partitioned by target id into per-partition
// part files instead of being materialized in FlatResult.Records, and
// TrainPartitions / ScorePartitions stream them back one partition at a
// time — peak resident memory is the largest partition plus the training
// workspaces, not the dataset.

// partitionManifestName is the manifest file written next to the part
// files; dfs readers ignore it (they only list part-* files).
const partitionManifestName = "partitions.json"

// PartitionManifest describes a partitioned GraphFlat output dataset:
// part-NNNNN holds exactly the records whose target id hashes to
// partition NNNNN.
type PartitionManifest struct {
	// Partitions is the partition count; part files are part-00000 ..
	// part-(Partitions-1).
	Partitions int `json:"partitions"`
	// Link marks LinkRecord partitions (FlatConfig.EdgeTargets mode,
	// partitioned by the pair's source endpoint); false means per-node
	// TrainRecords partitioned by target node id.
	Link bool `json:"link"`
	// Records is the total record count across all partitions.
	Records int `json:"records"`
	// Counts is the per-partition record count, len == Partitions.
	Counts []int `json:"counts"`
}

// partitionOf maps a target id to its partition — the same Fibonacci hash
// as the serving tier's shards, well-mixed even for sequential ids.
func partitionOf(id int64, partitions int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(partitions))
}

// writePartitionedOutput streams the final round's keyed records into
// cfg.Partitions hash-partitioned part files under cfg.Output, plus the
// manifest. In node mode the shuffle key is the target node id; in link
// mode (pairs non-nil) it is the pair index, and the pair's source
// endpoint picks the partition. The input is the final round's output
// re-framed as an Input, so with SpillRounds set the records stream from
// disk to disk without ever being resident at once.
func writePartitionedOutput(cfg FlatConfig, finalRound mapreduce.Input, pairs []EdgeTarget) (*PartitionManifest, error) {
	writers := make([]*dfs.PartWriter, cfg.Partitions)
	abort := func() {
		for _, w := range writers {
			if w != nil {
				w.Abort()
			}
		}
	}
	for i := range writers {
		w, err := cfg.Output.Writer(i)
		if err != nil {
			abort()
			return nil, err
		}
		writers[i] = w
	}
	man := &PartitionManifest{
		Partitions: cfg.Partitions,
		Link:       pairs != nil,
		Counts:     make([]int, cfg.Partitions),
	}
	iters, err := finalRound.Splits(1)
	if err != nil {
		abort()
		return nil, err
	}
	for _, iter := range iters {
		err := iter(func(rec []byte) error {
			kv, err := mapreduce.DecodeKV(rec)
			if err != nil {
				return err
			}
			key, err := strconv.ParseInt(kv.Key, 10, 64)
			if err != nil {
				return fmt.Errorf("bad final-round key %q: %w", kv.Key, err)
			}
			target := key
			if pairs != nil {
				if key < 0 || key >= int64(len(pairs)) {
					return fmt.Errorf("pair index %d out of range (have %d pairs)", key, len(pairs))
				}
				target = pairs[key].Src
			}
			p := partitionOf(target, cfg.Partitions)
			man.Counts[p]++
			man.Records++
			return writers[p].Append(kv.Value)
		})
		if err != nil {
			abort()
			return nil, err
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	manPath := filepath.Join(cfg.Output.Path(), partitionManifestName)
	if err := os.WriteFile(manPath, append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	return man, nil
}

// PartitionSet is a reader over a partitioned GraphFlat output: the
// manifest plus lazy per-partition loading. Load materializes exactly one
// partition's records; dropping the returned slice releases them.
type PartitionSet struct {
	dir *dfs.Dir
	man PartitionManifest
}

// OpenPartitions opens a dataset written by Flatten with
// FlatConfig.Partitions set. It fails with os.ErrNotExist (wrapped) when
// the directory has no partition manifest — callers can fall back to
// treating the dataset as unpartitioned.
func OpenPartitions(path string) (*PartitionSet, error) {
	dir, err := dfs.Open(path)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(path, partitionManifestName))
	if err != nil {
		return nil, fmt.Errorf("core: %s is not a partitioned dataset: %w", path, err)
	}
	var man PartitionManifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("core: bad partition manifest in %s: %w", path, err)
	}
	if man.Partitions < 1 || len(man.Counts) != man.Partitions {
		return nil, fmt.Errorf("core: implausible partition manifest in %s (partitions=%d counts=%d)",
			path, man.Partitions, len(man.Counts))
	}
	return &PartitionSet{dir: dir, man: man}, nil
}

// IsPartitioned reports whether path carries a partition manifest.
func IsPartitioned(path string) bool {
	_, err := os.Stat(filepath.Join(path, partitionManifestName))
	return err == nil
}

// Manifest returns the dataset's manifest.
func (p *PartitionSet) Manifest() PartitionManifest { return p.man }

// NumPartitions returns the partition count.
func (p *PartitionSet) NumPartitions() int { return p.man.Partitions }

// Link reports whether the partitions hold LinkRecords.
func (p *PartitionSet) Link() bool { return p.man.Link }

// Records returns the total record count.
func (p *PartitionSet) Records() int { return p.man.Records }

// Load materializes partition i's records.
func (p *PartitionSet) Load(i int) ([][]byte, error) {
	if i < 0 || i >= p.man.Partitions {
		return nil, fmt.Errorf("core: partition %d out of range [0,%d)", i, p.man.Partitions)
	}
	path := filepath.Join(p.dir.Path(), fmt.Sprintf("part-%05d", i))
	r, err := dfs.OpenPart(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	out := make([][]byte, 0, p.man.Counts[i])
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// First returns the first record of the first non-empty partition —
// enough to sniff the feature dimension without loading a partition.
func (p *PartitionSet) First() ([]byte, error) {
	for i := 0; i < p.man.Partitions; i++ {
		if p.man.Counts[i] == 0 {
			continue
		}
		path := filepath.Join(p.dir.Path(), fmt.Sprintf("part-%05d", i))
		r, err := dfs.OpenPart(path)
		if err != nil {
			return nil, err
		}
		rec, err := r.Next()
		r.Close()
		if err != nil {
			return nil, err
		}
		return rec, nil
	}
	return nil, fmt.Errorf("core: partitioned dataset is empty")
}

// loadedPartition is one prefetched partition on its way to the consumer.
type loadedPartition struct {
	idx  int
	recs [][]byte
	err  error
}

// prefetchPartitions loads partitions in the given order on a side
// goroutine, one ahead of the consumer: partition N+1's disk read and
// record framing overlap partition N's compute. The consumer must drain
// the channel (or the goroutine parks forever on a buffered send — drain
// on error paths too).
func prefetchPartitions(parts *PartitionSet, order []int) <-chan loadedPartition {
	ch := make(chan loadedPartition, 1)
	go func() {
		defer close(ch)
		for _, pi := range order {
			recs, err := parts.Load(pi)
			ch <- loadedPartition{idx: pi, recs: recs, err: err}
			if err != nil {
				return
			}
		}
	}()
	return ch
}

// TrainPartitions runs parameter-server training over a partitioned
// GraphFlat output with bounded resident memory: each epoch streams the
// partitions (in per-epoch shuffled order) through the PR-5 worker
// pipeline, holding one partition's records at a time while the prefetch
// goroutine decodes the next. The parameter-server cluster is shared
// across partitions, so convergence matches Train over the concatenated
// records up to batch ordering.
//
// cfg.Eval is evaluated once on the final model, as in Train.
func TrainPartitions(cfg TrainConfig, parts *PartitionSet) (*TrainResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if parts.Records() == 0 {
		return nil, fmt.Errorf("core: no training records")
	}
	link := cfg.Model.EdgeHead != ""
	if link != parts.Link() {
		return nil, fmt.Errorf("core: partitioned dataset link=%v does not match model edge head %q",
			parts.Link(), cfg.Model.EdgeHead)
	}
	global, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	cluster := ps.NewCluster(cfg.PSShards, global.Params(),
		func() nn.Optimizer { return nn.NewAdam(cfg.LR) }, cfg.Mode)
	loop := trainWorkerLoop
	if link {
		loop = trainLinkWorkerLoop
	}

	start := time.Now()
	accs := make([]epochAcc, cfg.Epochs)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for e := 0; e < cfg.Epochs; e++ {
		order := rng.Perm(parts.NumPartitions())
		feed := prefetchPartitions(parts, order)
		for lp := range feed {
			if lp.err != nil {
				return nil, lp.err
			}
			if len(lp.recs) == 0 {
				continue
			}
			workerParts := make([][][]byte, cfg.Workers)
			for i, rec := range lp.recs {
				workerParts[i%cfg.Workers] = append(workerParts[i%cfg.Workers], rec)
			}
			var acc epochAcc
			var accMu sync.Mutex
			var wg sync.WaitGroup
			errCh := make(chan error, cfg.Workers)
			for w := 0; w < cfg.Workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sub := cfg
					sub.Epochs = 1
					// A distinct seed per (epoch, partition) keeps batch
					// shuffling fresh across the outer loops.
					sub.Seed = cfg.Seed + int64(e+1)*104729 + int64(lp.idx+1)*15485863
					local := make([]epochAcc, 1)
					if err := loop(sub, w, workerParts[w], cluster.Client(), local); err != nil {
						errCh <- err
						return
					}
					accMu.Lock()
					acc.lossSum += local[0].lossSum
					acc.batches += local[0].batches
					acc.vec += local[0].vec
					acc.compute += local[0].compute
					accMu.Unlock()
				}(w)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				// Drain the prefetcher so its buffered send never leaks.
				go func() {
					for range feed {
					}
				}()
				return nil, err
			default:
			}
			accs[e].lossSum += acc.lossSum
			accs[e].batches += acc.batches
			accs[e].vec += acc.vec
			accs[e].compute += acc.compute
		}
	}

	result := &TrainResult{Total: time.Since(start)}
	final, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	cluster.Snapshot(final.Params())
	result.Model = final
	result.PSBytesOut, result.PSBytesIn = cluster.Traffic()
	for e := range accs {
		st := EpochStats{Epoch: e + 1}
		if accs[e].batches > 0 {
			st.Loss = accs[e].lossSum / float64(accs[e].batches)
		}
		st.VecBusy = time.Duration(accs[e].vec)
		st.ComputeBusy = time.Duration(accs[e].compute)
		result.History = append(result.History, st)
	}
	if cfg.Eval != nil {
		metric, err := evalDispatch(cfg, final)
		if err != nil {
			return nil, err
		}
		last := &result.History[len(result.History)-1]
		last.Metric = metric
		last.HasMetric = true
		if cfg.Logf != nil {
			cfg.Logf("final %s = %.4f", cfg.EvalMetric, metric)
		}
	}
	return result, nil
}

// ScorePartitions runs batched node inference over a partitioned GraphFlat
// output one partition at a time (prefetching the next while the current
// one scores), streaming each partition's (ids, score vectors) to fn.
// Resident memory is bounded by one partition plus the inference
// workspace. Link partitions are rejected — use PredictLinks over
// PartitionSet.Load for pair scoring.
func ScorePartitions(model *gnn.Model, parts *PartitionSet, batchSize int, opt gnn.RunOptions,
	fn func(part int, ids []int64, scores [][]float64) error) error {
	if parts.Link() {
		return fmt.Errorf("core: ScorePartitions needs node partitions (this dataset holds LinkRecords)")
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	order := make([]int, parts.NumPartitions())
	for i := range order {
		order[i] = i
	}
	feed := prefetchPartitions(parts, order)
	for lp := range feed {
		if lp.err != nil {
			return lp.err
		}
		if len(lp.recs) == 0 {
			continue
		}
		ids, logits, _, _, err := Predict(model, lp.recs, batchSize, opt)
		if err != nil {
			go func() {
				for range feed {
				}
			}()
			return err
		}
		scores := make([][]float64, logits.Rows)
		for i := range scores {
			scores[i] = ScoresFromLogits(logits.Row(i))
		}
		if err := fn(lp.idx, ids, scores); err != nil {
			go func() {
				for range feed {
				}
			}()
			return err
		}
	}
	return nil
}
