package core

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/sampling"
	"agl/internal/tensor"
	"agl/internal/wire"
)

// InferConfig parameterizes GraphInfer.
type InferConfig struct {
	// MaxNeighbors, Strategy, Seed and HubThreshold mirror FlatConfig; use
	// the same values as training's GraphFlat run so sampling decisions
	// match and inference stays unbiased (paper §3.4).
	MaxNeighbors int
	Strategy     sampling.Strategy
	Seed         int64
	HubThreshold int

	// KeepEmbeddings makes the prediction round carry every node's final
	// layer-K embedding through to InferResult.Embeddings — the artifact
	// the online serving tier's store is built from. Off by default:
	// batch-only scoring runs would otherwise shuffle and retain an extra
	// hidden-dim vector per node for no benefit.
	KeepEmbeddings bool

	// EdgeTargets, when non-empty, additionally scores these (src, dst)
	// pairs offline with the model's edge head (InferResult.LinkScores) —
	// the batch counterpart of the serving tier's warm /link path. Requires
	// KeepEmbeddings (pair scoring reads the final-layer embeddings) and a
	// model built with ModelConfig.EdgeHead.
	EdgeTargets []EdgeTarget

	NumMappers  int
	NumReducers int
	TempDir     string
	MaxAttempts int
	Faults      mapreduce.FaultInjector
}

func (c InferConfig) withDefaults() InferConfig {
	if c.Strategy == nil {
		c.Strategy = sampling.Uniform{}
	}
	if c.NumReducers <= 0 {
		c.NumReducers = 4
	}
	return c
}

func (c InferConfig) mrConfig(name string) mapreduce.Config {
	return mapreduce.Config{
		Name:        name,
		NumMappers:  c.NumMappers,
		NumReducers: c.NumReducers,
		TempDir:     c.TempDir,
		MaxAttempts: c.MaxAttempts,
		Faults:      c.Faults,
	}
}

// InferResult is GraphInfer's output: predicted scores for every node plus
// per-round accounting for the paper's Table 5 cost comparison.
type InferResult struct {
	// Scores maps node id to its predicted score vector: sigmoid
	// probability for single-logit models, softmax distribution otherwise.
	Scores map[int64][]float64
	// Embeddings maps node id to its final (layer-K) embedding — the
	// artifact the online serving tier (internal/serve) loads into its
	// read-optimized store so warm requests skip the K embedding rounds
	// and only apply the prediction slice. Nil unless
	// InferConfig.KeepEmbeddings is set.
	Embeddings map[int64][]float64
	// LinkScores maps a requested (src, dst) pair to its sigmoid link
	// probability. Nil unless InferConfig.EdgeTargets was set; pairs with
	// an endpoint absent from the graph are dropped.
	LinkScores map[[2]int64]float64
	RoundStats []*mapreduce.Stats
	Wall       time.Duration
}

// TotalShuffledBytes sums shuffle volume over all rounds.
func (r *InferResult) TotalShuffledBytes() int64 {
	var n int64
	for _, s := range r.RoundStats {
		n += s.BytesShuffled
	}
	return n
}

// TotalBusy sums map+reduce busy time over all rounds (the CPU-cost input
// of Table 5).
func (r *InferResult) TotalBusy() time.Duration {
	var d time.Duration
	for _, s := range r.RoundStats {
		d += s.MapBusy + s.ReduceBusy
	}
	return d
}

// Infer runs the GraphInfer pipeline (paper §3.4) over node/edge tables:
// the model is hierarchically segmented into K+1 slices; K embedding
// rounds merge each node's previous-layer in-edge embeddings and propagate
// the new embedding along out-edges, and the final round applies the
// prediction slice. Every node's layer-k embedding is computed exactly
// once.
func Infer(cfg InferConfig, model *gnn.Model, tables mapreduce.Input) (*InferResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.EdgeTargets) > 0 && model.Edge == nil {
		// Checked before any MapReduce round runs: at scale the pipeline is
		// minutes of compute, and this is a configuration error.
		return nil, fmt.Errorf("core: InferConfig.EdgeTargets needs a link model (set ModelConfig.EdgeHead)")
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &InferResult{Scores: make(map[int64][]float64)}
	if cfg.KeepEmbeddings {
		res.Embeddings = make(map[int64][]float64)
	}

	slices, err := model.Segment()
	if err != nil {
		return nil, fmt.Errorf("core: GraphInfer segmentation: %w", err)
	}
	// Serialize each slice; every reduce round loads exactly its own slice,
	// the way a real reduce task ships only the parameters it needs.
	sliceBytes := make([][]byte, len(slices))
	for i, s := range slices {
		b, err := gnn.EncodeSlice(s)
		if err != nil {
			return nil, err
		}
		sliceBytes[i] = b
	}
	k := len(slices) - 1 // number of GNN layers

	weighted, unweighted, err := WeightedInDegrees(tables, cfg.mrConfig("infer-degrees"))
	if err != nil {
		return nil, fmt.Errorf("core: GraphInfer degrees: %w", err)
	}
	hubs := map[int64]int{}
	if cfg.HubThreshold > 0 {
		for id, d := range unweighted {
			if d > cfg.HubThreshold {
				hubs[id] = (d + cfg.HubThreshold - 1) / cfg.HubThreshold
			}
		}
	}

	// Round 0: join features onto out-edges, seed h0 embeddings.
	out := mapreduce.NewMemOutput()
	stats, err := mapreduce.Run(cfg.mrConfig("infer-join"), joinMapper(), joinEmbReducer(weighted), tables, out)
	if err != nil {
		return nil, fmt.Errorf("core: GraphInfer join: %w", err)
	}
	res.RoundStats = append(res.RoundStats, stats)
	pairs := out.Pairs()

	flatLike := FlatConfig{
		MaxNeighbors: cfg.MaxNeighbors,
		Strategy:     cfg.Strategy,
		Seed:         cfg.Seed,
		HubThreshold: cfg.HubThreshold,
	}
	for round := 1; round <= k; round++ {
		if len(hubs) > 0 {
			reOut := mapreduce.NewMemOutput()
			stats, err := mapreduce.Run(cfg.mrConfig(fmt.Sprintf("infer-reindex-%d", round)),
				reindexMapper(hubs), reindexReducer(flatLike, hubs, round), pairsInput(pairs), reOut)
			if err != nil {
				return nil, fmt.Errorf("core: GraphInfer reindex round %d: %w", round, err)
			}
			res.RoundStats = append(res.RoundStats, stats)
			pairs = reOut.Pairs()
		}
		slice, err := gnn.DecodeSlice(sliceBytes[round-1])
		if err != nil {
			return nil, err
		}
		final := round == k
		roundOut := mapreduce.NewMemOutput()
		stats, err := mapreduce.Run(cfg.mrConfig(fmt.Sprintf("infer-emb-%d", round)),
			mapreduce.IdentityMapper, embReducer(flatLike, slice, round, final), pairsInput(pairs), roundOut)
		if err != nil {
			return nil, fmt.Errorf("core: GraphInfer round %d: %w", round, err)
		}
		res.RoundStats = append(res.RoundStats, stats)
		pairs = roundOut.Pairs()
	}

	// Round K+1: prediction slice.
	predSlice, err := gnn.DecodeSlice(sliceBytes[k])
	if err != nil {
		return nil, err
	}
	predOut := mapreduce.NewMemOutput()
	stats, err = mapreduce.Run(cfg.mrConfig("infer-predict"),
		mapreduce.IdentityMapper, predictReducer(predSlice, cfg.KeepEmbeddings), pairsInput(pairs), predOut)
	if err != nil {
		return nil, fmt.Errorf("core: GraphInfer predict: %w", err)
	}
	res.RoundStats = append(res.RoundStats, stats)

	for _, kv := range predOut.Pairs() {
		id, err := strconv.ParseInt(kv.Key, 10, 64)
		if err != nil {
			return nil, err
		}
		m, err := decodeMsg(kv.Value)
		if err != nil {
			return nil, err
		}
		if m.Tag != tagScore {
			return nil, fmt.Errorf("core: prediction round emitted tag %d", m.Tag)
		}
		res.Scores[id] = m.Scores
		if res.Embeddings != nil && m.Emb != nil {
			res.Embeddings[id] = m.Emb.H
		}
	}
	if len(cfg.EdgeTargets) > 0 {
		res.LinkScores = make(map[[2]int64]float64, len(cfg.EdgeTargets))
		for _, p := range cfg.EdgeTargets {
			hs, ok1 := res.Embeddings[p.Src]
			hd, ok2 := res.Embeddings[p.Dst]
			if !ok1 || !ok2 {
				continue // endpoint not in the graph: drop, as flatten does
			}
			res.LinkScores[[2]int64{p.Src, p.Dst}] = ScoresFromLogits([]float64{model.Edge.ScoreVec(hs, hd)})[0]
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// OriginalInferResult is the output of the naive inference module the
// paper compares GraphInfer against in Table 5: generate the GraphFeature
// of every node with GraphFlat, then forward-propagate each one separately.
// Overlapping neighborhoods are re-computed once per target, which is
// exactly the waste GraphInfer eliminates.
type OriginalInferResult struct {
	Scores map[int64][]float64
	// FlatWall/ForwardWall split total time into the GraphFlat phase and
	// the forward-propagation phase, matching Table 5's rows.
	FlatWall    time.Duration
	ForwardWall time.Duration
	FlatStats   []*mapreduce.Stats
	// ForwardBusy approximates forward-phase CPU cost (single-threaded
	// batched execution, so busy ≈ wall).
	ForwardBusy time.Duration
}

// Wall is the baseline's total wall time.
func (r *OriginalInferResult) Wall() time.Duration { return r.FlatWall + r.ForwardWall }

// OriginalInfer runs the naive GraphFeature-based inference baseline over
// every node listed in ids.
func OriginalInfer(cfg FlatConfig, model *gnn.Model, tables mapreduce.Input, ids []int64) (*OriginalInferResult, error) {
	targets := make(map[int64]Target, len(ids))
	for _, id := range ids {
		targets[id] = Target{Label: -1}
	}
	t0 := time.Now()
	flat, err := Flatten(cfg, tables, targets)
	if err != nil {
		return nil, fmt.Errorf("core: original inference flatten: %w", err)
	}
	flatWall := time.Since(t0)

	t1 := time.Now()
	res := &OriginalInferResult{
		Scores:    make(map[int64][]float64, len(ids)),
		FlatWall:  flatWall,
		FlatStats: flat.RoundStats,
	}
	// Forward each GraphFeature independently — the "massive repetitions of
	// embedding inference" of paper §3.4. Batching here would only merge
	// literal duplicates; each record still carries its full k-hop subgraph
	// through vectorization, so per-record forwarding is the honest
	// baseline. One workspace is recycled across all records: scores are
	// copied out by ScoresFromLogits before each reset.
	ws := tensor.NewWorkspace()
	iopt := gnn.RunOptions{Workspace: ws}
	for _, rec := range flat.Records {
		tr, err := wire.DecodeTrainRecord(rec)
		if err != nil {
			return nil, err
		}
		b, err := AssembleBatchWS(ws, []*wire.TrainRecord{tr}, model.Cfg.Classes, false)
		if err != nil {
			return nil, err
		}
		logits := model.Infer(b.Graph, iopt)
		res.Scores[tr.TargetID] = ScoresFromLogits(logits.Row(0))
		ws.Reset()
	}
	res.ForwardWall = time.Since(t1)
	res.ForwardBusy = res.ForwardWall
	return res, nil
}

// joinEmbReducer seeds GraphInfer's message state: each node's h0 (= raw
// features) plus its normalization degree, propagated to out-edge
// destinations.
func joinEmbReducer(weightedDeg map[int64]float64) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		id, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			return err
		}
		var feat []float64
		var haveNode bool
		var outs []*flatMsg
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			m, err := decodeMsg(v)
			if err != nil {
				return err
			}
			switch m.Tag {
			case tagNodeRow:
				feat = m.Feat
				haveNode = true
			case tagOutEdge:
				outs = append(outs, m)
			default:
				return fmt.Errorf("core: infer join reducer got tag %d", m.Tag)
			}
		}
		if err := values.Err(); err != nil {
			return err
		}
		if !haveNode {
			return nil
		}
		deg := weightedDeg[id]
		if deg == 0 {
			deg = 1
		}
		emb := &wire.Embedding{ID: id, H: feat, Deg: deg}
		sm := flatMsg{Tag: tagEmbSelf, Emb: emb}
		if err := emit(mapreduce.KeyValue{Key: key, Value: sm.encode()}); err != nil {
			return err
		}
		for _, o := range outs {
			om := flatMsg{Tag: tagOutEdge, Dst: o.Dst, W: o.W, EFeat: o.EFeat}
			if err := emit(mapreduce.KeyValue{Key: key, Value: om.encode()}); err != nil {
				return err
			}
			im := flatMsg{Tag: tagInEmb, Src: id, W: o.W, EFeat: o.EFeat, Emb: emb}
			if err := emit(mapreduce.KeyValue{Key: key64(o.Dst), Value: im.encode()}); err != nil {
				return err
			}
		}
		return nil
	})
}

// embReducer is GraphInfer's round-k reducer: it loads the kth model slice,
// merges the (k−1)-layer embeddings from sampled in-edges into the node's
// k-layer embedding, and propagates it along out-edges. In the final
// embedding round only the embedding itself is forwarded (paper §3.4).
func embReducer(cfg FlatConfig, slice *gnn.Slice, round int, final bool) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		id, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			return err
		}
		var self *wire.Embedding
		var outs []*flatMsg
		var ins []*flatMsg
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			m, err := decodeMsg(v)
			if err != nil {
				return err
			}
			switch m.Tag {
			case tagEmbSelf:
				self = m.Emb
			case tagOutEdge:
				outs = append(outs, m)
			case tagInEmb:
				ins = append(ins, m)
			default:
				return fmt.Errorf("core: emb reducer got tag %d", m.Tag)
			}
		}
		if err := values.Err(); err != nil {
			return err
		}
		if self == nil {
			return nil
		}
		ins = sampleInEdges(cfg, id, round, ins)
		msgs := make([]gnn.NeighborMsg, 0, len(ins))
		for _, in := range ins {
			msgs = append(msgs, gnn.NeighborMsg{H: in.Emb.H, W: in.W, Deg: in.Emb.Deg, EFeat: in.EFeat})
		}
		h := slice.Layer.InferNode(self.H, self.Deg, msgs)
		emb := &wire.Embedding{ID: id, H: h, Deg: self.Deg}
		sm := flatMsg{Tag: tagEmbSelf, Emb: emb}
		if err := emit(mapreduce.KeyValue{Key: key, Value: sm.encode()}); err != nil {
			return err
		}
		if final {
			return nil
		}
		for _, o := range outs {
			om := flatMsg{Tag: tagOutEdge, Dst: o.Dst, W: o.W, EFeat: o.EFeat}
			if err := emit(mapreduce.KeyValue{Key: key, Value: om.encode()}); err != nil {
				return err
			}
			im := flatMsg{Tag: tagInEmb, Src: id, W: o.W, EFeat: o.EFeat, Emb: emb}
			if err := emit(mapreduce.KeyValue{Key: key64(o.Dst), Value: im.encode()}); err != nil {
				return err
			}
		}
		return nil
	})
}

// predictReducer applies the prediction slice to each node's final
// embedding and emits the predicted score (paper: "the last Reduce phase is
// responsible to infer the final predicted score"). With keepEmb the
// embedding rides along so the serving tier can build its store.
func predictReducer(slice *gnn.Slice, keepEmb bool) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		for {
			v, ok := values.Next()
			if !ok {
				return values.Err()
			}
			m, err := decodeMsg(v)
			if err != nil {
				return err
			}
			if m.Tag != tagEmbSelf {
				return fmt.Errorf("core: predict reducer got tag %d", m.Tag)
			}
			logits := gnn.ApplyDense(slice.Head, m.Emb.H)
			scores := ScoresFromLogits(logits)
			sm := flatMsg{Tag: tagScore, Scores: scores}
			if keepEmb {
				sm.Emb = m.Emb
			}
			if err := emit(mapreduce.KeyValue{Key: key, Value: sm.encode()}); err != nil {
				return err
			}
		}
	})
}

// ScoresFromLogits converts raw logits to predicted scores: sigmoid for a
// single output, softmax otherwise. GraphInfer's prediction round and the
// online serving tier share it so offline and online scores agree.
func ScoresFromLogits(logits []float64) []float64 {
	if len(logits) == 1 {
		return []float64{nn.Sigmoid(logits[0])}
	}
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
