package core

import (
	"fmt"

	"agl/internal/wire"
)

// Shuffle message tags. Every reduce value starts with one tag byte; the
// three kinds of information of paper §3.2.1 (self, in-edge, out-edge) plus
// the embedding payloads GraphInfer propagates.
const (
	tagNodeRow byte = iota + 1 // round-0 join: a node's raw features
	tagOutEdge                 // out-edge info: destination + weight
	tagSelf                    // self info: the accumulating k-hop subgraph
	tagInEdge                  // in-edge info: source, weight, propagated subgraph
	tagEmbSelf                 // GraphInfer: node's own embedding state
	tagInEmb                   // GraphInfer: in-edge neighbor's embedding
	tagScore                   // GraphInfer: final predicted scores
)

// flatMsg is the decoded form of one GraphFlat/GraphInfer shuffle value.
type flatMsg struct {
	Tag byte

	Feat []float64 // tagNodeRow

	Dst   int64     // tagOutEdge
	W     float64   // tagOutEdge, tagInEdge, tagInEmb
	EFeat []float64 // edge features: tagOutEdge, tagInEdge, tagInEmb

	Src     int64          // tagInEdge, tagInEmb
	Payload *wire.Subgraph // tagSelf, tagInEdge

	Emb    *wire.Embedding // tagEmbSelf, tagInEmb; tagScore optionally (KeepEmbeddings)
	Scores []float64       // tagScore
}

// encode serializes m.
func (m *flatMsg) encode() []byte {
	b := []byte{m.Tag}
	switch m.Tag {
	case tagNodeRow:
		b = wire.AppendFloat64s(b, m.Feat)
	case tagOutEdge:
		b = wire.AppendVarint(b, m.Dst)
		b = wire.AppendFloat64(b, m.W)
		b = wire.AppendFloat64s(b, m.EFeat)
	case tagSelf:
		b = wire.EncodeSubgraph(b, m.Payload)
	case tagInEdge:
		b = wire.AppendVarint(b, m.Src)
		b = wire.AppendFloat64(b, m.W)
		b = wire.AppendFloat64s(b, m.EFeat)
		b = wire.EncodeSubgraph(b, m.Payload)
	case tagEmbSelf:
		b = wire.EncodeEmbedding(b, m.Emb)
	case tagInEmb:
		b = wire.AppendVarint(b, m.Src)
		b = wire.AppendFloat64(b, m.W)
		b = wire.AppendFloat64s(b, m.EFeat)
		b = wire.EncodeEmbedding(b, m.Emb)
	case tagScore:
		b = wire.AppendFloat64s(b, m.Scores)
		if m.Emb != nil {
			b = append(b, 1)
			b = wire.EncodeEmbedding(b, m.Emb)
		} else {
			b = append(b, 0)
		}
	default:
		panic(fmt.Sprintf("core: encode of unknown tag %d", m.Tag))
	}
	return b
}

// decodeMsg deserializes one shuffle value.
func decodeMsg(buf []byte) (*flatMsg, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("core: empty shuffle value")
	}
	m := &flatMsg{Tag: buf[0]}
	r := wire.NewReader(buf[1:])
	var err error
	switch m.Tag {
	case tagNodeRow:
		m.Feat = r.Float64s()
	case tagOutEdge:
		m.Dst = r.Varint()
		m.W = r.Float64()
		m.EFeat = r.Float64s()
	case tagSelf:
		m.Payload, err = wire.DecodeSubgraph(r)
	case tagInEdge:
		m.Src = r.Varint()
		m.W = r.Float64()
		m.EFeat = r.Float64s()
		m.Payload, err = wire.DecodeSubgraph(r)
	case tagEmbSelf:
		m.Emb, err = wire.DecodeEmbedding(r)
	case tagInEmb:
		m.Src = r.Varint()
		m.W = r.Float64()
		m.EFeat = r.Float64s()
		m.Emb, err = wire.DecodeEmbedding(r)
	case tagScore:
		m.Scores = r.Float64s()
		if r.Uvarint() == 1 {
			m.Emb, err = wire.DecodeEmbedding(r)
		}
	default:
		return nil, fmt.Errorf("core: unknown shuffle tag %d", m.Tag)
	}
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decode tag %d: %w", m.Tag, err)
	}
	return m, nil
}
