package experiments

import (
	"fmt"
	"strings"
	"time"

	"agl/internal/cluster"
	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/nn"
	"agl/internal/ps"
)

// Fig7Curve is one convergence curve: AUC per epoch for a worker count.
type Fig7Curve struct {
	Workers int
	AUC     []float64
	Loss    []float64
}

// Fig7Result holds the convergence study.
type Fig7Result struct {
	Curves []Fig7Curve
	Text   string
}

func (r *Fig7Result) String() string { return r.Text }

// Fig7 reproduces the convergence study: a GAT trained on the UUG-like
// graph with increasing worker counts (asynchronous PS mode) converges to
// the same AUC, needing a few more epochs as parallelism grows. Worker
// counts are scaled to host cores (paper: 1/10/20/30 on a production
// cluster).
func Fig7(opt Options) (*Fig7Result, error) {
	uug, err := datagen.UUG(opt.uugCfg())
	if err != nil {
		return nil, err
	}
	train, test, err := flattenSplits(opt, uug, 2, core.LossBCE)
	if err != nil {
		return nil, err
	}
	epochs := 7
	workerSets := []int{1, 2, 4, 8}
	if opt.Quick {
		epochs = 4
		workerSets = []int{1, 2, 4}
	}
	res := &Fig7Result{}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: convergence (AUC vs epoch) on UUG-like graph, async PS\n")
	fmt.Fprintf(&b, "(worker counts scaled to host; paper uses 1/10/20/30)\n")
	for _, workers := range workerSets {
		opt.logf("fig7: %d workers", workers)
		tres, err := core.TrainWithHistory(core.TrainConfig{
			Model: gnn.Config{
				Kind: gnn.KindGAT, InDim: uug.G.FeatureDim(), Hidden: 8, Classes: 1,
				Layers: 2, Heads: 1, Act: nn.ActReLU, Seed: opt.Seed + 37,
			},
			Loss: core.LossBCE, BatchSize: 32, Epochs: epochs, LR: 0.01,
			Workers: workers, PSShards: 2, Mode: ps.Async,
			Eval: test, EvalMetric: core.MetricAUC, EvalEvery: 1,
			Seed: opt.Seed + 41,
		}, train)
		if err != nil {
			return nil, err
		}
		curve := Fig7Curve{Workers: workers}
		for _, st := range tres.History {
			curve.AUC = append(curve.AUC, st.Metric)
			curve.Loss = append(curve.Loss, st.Loss)
		}
		res.Curves = append(res.Curves, curve)
		fmt.Fprintf(&b, "workers=%-3d AUC:", workers)
		for _, a := range curve.AUC {
			fmt.Fprintf(&b, " %.4f", a)
		}
		fmt.Fprintln(&b)
	}
	res.Text = b.String()
	return res, nil
}

// Fig8Point is one speedup measurement or prediction.
type Fig8Point struct {
	Workers  int
	Speedup  float64
	Measured bool
}

// Fig8Result holds the speedup study.
type Fig8Result struct {
	Points []Fig8Point
	Slope  float64 // fitted speedup/workers slope over the modeled range
	Text   string
}

func (r *Fig8Result) String() string { return r.Text }

// Fig8 reproduces the speedup curve. Real multi-worker runs measure wall
// time up to the host's capacity; beyond that, the cluster cost model
// extrapolates using the measured per-batch compute time and a derived
// per-batch parameter-server cost (see internal/cluster). The paper
// reports slope ≈ 0.8 with 78x at 100 workers.
func Fig8(opt Options) (*Fig8Result, error) {
	uug, err := datagen.UUG(opt.uugCfg())
	if err != nil {
		return nil, err
	}
	train, _, err := flattenSplits(opt, uug, 2, core.LossBCE)
	if err != nil {
		return nil, err
	}
	mcfg := gnn.Config{
		Kind: gnn.KindGAT, InDim: uug.G.FeatureDim(), Hidden: 8, Classes: 1,
		Layers: 2, Heads: 1, Act: nn.ActReLU, Seed: opt.Seed + 43,
	}
	batchSize := 32
	epochs := 2
	measureSets := []int{1, 2, 4}
	if !opt.Quick {
		measureSets = []int{1, 2, 4, 8}
	}

	res := &Fig8Result{}
	var t1 time.Duration
	for _, workers := range measureSets {
		opt.logf("fig8: measuring %d workers", workers)
		tres, err := core.Train(core.TrainConfig{
			Model: mcfg, Loss: core.LossBCE, BatchSize: batchSize, Epochs: epochs,
			LR: 0.01, Workers: workers, PSShards: 2, Mode: ps.Async,
			Pipeline: true, Seed: opt.Seed + 47,
		}, train)
		if err != nil {
			return nil, err
		}
		per := tres.Total / time.Duration(epochs)
		if workers == 1 {
			t1 = per
		}
		sp := 1.0
		if per > 0 {
			sp = float64(t1) / float64(per)
		}
		res.Points = append(res.Points, Fig8Point{Workers: workers, Speedup: sp, Measured: true})
	}

	// Extrapolate with the cluster model: per-batch compute from the
	// single-worker run, PS cost from model size over a 1 GbE-class
	// effective share (the paper's commodity cluster), matching its ~25%
	// per-batch overhead.
	batches := (len(train) + batchSize - 1) / batchSize
	perBatch := t1 / time.Duration(batches)
	paramBytes := int64(0)
	model, err := gnn.NewModel(mcfg)
	if err != nil {
		return nil, err
	}
	paramBytes = int64(model.Params().NumValues() * 8)
	pullPush := cluster.DerivePullPush(paramBytes, 100e6, 200*time.Microsecond)
	if limit := perBatch / 4; pullPush < limit {
		// Small synthetic models underutilize the wire; clamp to the
		// paper-calibrated 25% per-batch overhead so the extrapolated curve
		// reflects production model sizes (656-dim features).
		pullPush = limit
	}
	sm := cluster.SpeedupModel{
		BatchCompute:        perBatch,
		PullPush:            pullPush,
		ContentionPerWorker: perBatch / 2000,
		Jitter:              0.02,
		Seed:                opt.Seed + 53,
	}
	clusterBatches := batches * 32 // cluster-scale workload (many more targets)
	for _, workers := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		res.Points = append(res.Points, Fig8Point{
			Workers: workers,
			Speedup: sm.Speedup(clusterBatches, workers),
		})
	}
	last := res.Points[len(res.Points)-1]
	res.Slope = last.Speedup / float64(last.Workers)

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: training speedup vs workers (measured up to %d, modeled beyond)\n",
		measureSets[len(measureSets)-1])
	fmt.Fprintf(&b, "%-8s %-10s %s\n", "workers", "speedup", "source")
	for _, p := range res.Points {
		src := "cluster model"
		if p.Measured {
			src = "measured"
		}
		fmt.Fprintf(&b, "%-8d %-10.2f %s\n", p.Workers, p.Speedup, src)
	}
	fmt.Fprintf(&b, "slope at 100 workers: %.2f (paper: %.2f, 78x at 100)\n", res.Slope, paperFig8Slope)
	res.Text = b.String()
	return res, nil
}
