package experiments

import (
	"fmt"
	"time"

	"agl/internal/cluster"
	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
)

// Table5Result compares GraphInfer with the original GraphFeature-based
// inference over the whole UUG-like graph.
type Table5Result struct {
	OriginalFlat    cluster.Costs
	OriginalForward cluster.Costs
	OriginalTotal   cluster.Costs
	GraphInfer      cluster.Costs
	SpeedupTime     float64
	SpeedupCPU      float64
	Text            string
}

func (r *Table5Result) String() string { return r.Text }

// Table5 trains nothing new — the comparison is pure inference cost: a
// 2-layer GAT producing 8-dimensional embeddings (the paper's setting)
// scores every node, once via the original module (GraphFlat over all
// nodes + per-GraphFeature forward propagation) and once via GraphInfer.
func Table5(opt Options) (*Table5Result, error) {
	uug, err := datagen.UUG(opt.uugInferCfg())
	if err != nil {
		return nil, err
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGAT, InDim: uug.G.FeatureDim(), Hidden: 8, Classes: 1,
		Layers: 2, Heads: 1, Act: nn.ActTanh, Seed: opt.Seed + 29,
	})
	if err != nil {
		return nil, err
	}
	tables := mapreduce.MemInput(core.TableRecords(uug.G))
	maxNeighbors := 20

	opt.logf("table5: original inference over %d nodes", uug.G.NumNodes())
	orig, err := core.OriginalInfer(core.FlatConfig{
		Hops: 2, MaxNeighbors: maxNeighbors, Seed: opt.Seed + 31,
		HubThreshold: 500, TempDir: opt.TempDir,
	}, model, tables, uug.G.IDs())
	if err != nil {
		return nil, err
	}
	opt.logf("table5: GraphInfer over %d nodes", uug.G.NumNodes())
	fast, err := core.Infer(core.InferConfig{
		MaxNeighbors: maxNeighbors, Seed: opt.Seed + 31,
		HubThreshold: 500, TempDir: opt.TempDir,
	}, model, tables)
	if err != nil {
		return nil, err
	}

	res := &Table5Result{}
	// Cost folding: CPU = summed task busy time; memory integral uses each
	// round's shuffle volume as its resident working set over the round's
	// wall time (see DESIGN.md, cluster cost model).
	var flatBusy time.Duration
	var flatMem float64
	var flatBytes int64
	for _, s := range orig.FlatStats {
		flatBusy += s.MapBusy + s.ReduceBusy
		flatMem += cluster.MemGBMin(s.BytesShuffled, s.Wall)
		flatBytes += s.BytesShuffled
	}
	res.OriginalFlat = cluster.Costs{Wall: orig.FlatWall, CPUCoreMin: cluster.CPUCoreMin(flatBusy), MemGBMin: flatMem}
	// The forward phase holds every GraphFeature resident; the final
	// round's shuffle volume bounds the record store size.
	featureBytes := flatBytes
	res.OriginalForward = cluster.Costs{
		Wall:       orig.ForwardWall,
		CPUCoreMin: cluster.CPUCoreMin(orig.ForwardBusy),
		MemGBMin:   cluster.MemGBMin(featureBytes, orig.ForwardWall),
	}
	res.OriginalTotal = cluster.Costs{
		Wall:       res.OriginalFlat.Wall + res.OriginalForward.Wall,
		CPUCoreMin: res.OriginalFlat.CPUCoreMin + res.OriginalForward.CPUCoreMin,
		MemGBMin:   res.OriginalFlat.MemGBMin + res.OriginalForward.MemGBMin,
	}
	var fastBusy time.Duration
	var fastMem float64
	for _, s := range fast.RoundStats {
		fastBusy += s.MapBusy + s.ReduceBusy
		fastMem += cluster.MemGBMin(s.BytesShuffled, s.Wall)
	}
	res.GraphInfer = cluster.Costs{Wall: fast.Wall, CPUCoreMin: cluster.CPUCoreMin(fastBusy), MemGBMin: fastMem}
	if res.GraphInfer.Wall > 0 {
		res.SpeedupTime = float64(res.OriginalTotal.Wall) / float64(res.GraphInfer.Wall)
	}
	if res.GraphInfer.CPUCoreMin > 0 {
		res.SpeedupCPU = res.OriginalTotal.CPUCoreMin / res.GraphInfer.CPUCoreMin
	}

	fmtRow := func(name string, c cluster.Costs) []string {
		return []string{name, fmt.Sprintf("%.2fs", c.Wall.Seconds()),
			fmt.Sprintf("%.4f", c.CPUCoreMin), fmt.Sprintf("%.6f", c.MemGBMin)}
	}
	rows := [][]string{
		fmtRow("Original/GraphFlat", res.OriginalFlat),
		fmtRow("Original/Forward", res.OriginalForward),
		fmtRow("Original/Total", res.OriginalTotal),
		fmtRow("GraphInfer/Total", res.GraphInfer),
		{"paper Original/Total", fmt.Sprintf("%.0fs", paperT5OriginalTimeS),
			fmt.Sprintf("%.0f", paperT5OriginalCoreMin), fmt.Sprintf("%.0f", paperT5OriginalGBMin)},
		{"paper GraphInfer/Total", fmt.Sprintf("%.0fs", paperT5InferTimeS),
			fmt.Sprintf("%.0f", paperT5InferCoreMin), fmt.Sprintf("%.0f", paperT5InferGBMin)},
	}
	res.Text = fmt.Sprintf(
		"Table 5: inference efficiency on UUG-like graph (%d nodes)\n%s"+
			"speedup: %.2fx time (paper 4.1x), %.2fx CPU (paper 2.0x)\n",
		uug.G.NumNodes(),
		table([]string{"Method/Phase", "Time", "CPU core*min", "Mem GB*min"}, rows),
		res.SpeedupTime, res.SpeedupCPU)
	return res, nil
}
