package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/serve"
)

// ServePhase is one load-test phase: a traffic shape against the online
// server with its latency distribution.
type ServePhase struct {
	Name       string
	Requests   int
	Wall       time.Duration
	P50, P99   time.Duration
	Throughput float64 // requests/second
}

// ServeResult records the online-serving load test: the same request
// volume pushed through the three serving tiers (cold forward passes,
// warm store lookups, hot cache hits) plus the single-flight hub-collapse
// measurement. It is the perf anchor for the serving tier — re-run it
// after serve/ changes.
type ServeResult struct {
	Nodes   int
	Clients int
	Phases  []ServePhase
	// HitColdSpeedup is p50(cold) / p50(hot): how much faster a cache hit
	// answers than a request-time forward pass.
	HitColdSpeedup float64
	// HubRequests concurrent requests for one cold node collapsed into
	// HubForwardPasses computations (single-flight).
	HubRequests      int
	HubForwardPasses int64
	Text             string
}

func (r *ServeResult) String() string { return r.Text }

// Serve runs the online-serving load test: an in-process Server hammered
// by concurrent clients, one phase per serving tier.
func Serve(opt Options) (*ServeResult, error) {
	nodes, requests, clients, hubBurst := 6000, 4000, 16, 2000
	if opt.Quick {
		nodes, requests, clients, hubBurst = 1200, 800, 8, 400
	}
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: nodes, FeatDim: 16, Seed: opt.Seed + 11})
	if err != nil {
		return nil, err
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 16, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: opt.Seed + 12,
	})
	if err != nil {
		return nil, err
	}
	opt.logf("serve: GraphInfer precompute over %d nodes", nodes)
	inf, err := core.Infer(core.InferConfig{Seed: opt.Seed, TempDir: opt.TempDir, NumReducers: 8, KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		return nil, err
	}
	store, err := serve.NewStore(0, inf.Embeddings)
	if err != nil {
		return nil, err
	}
	ids := ds.G.IDs()

	res := &ServeResult{Nodes: nodes, Clients: clients, HubRequests: hubBurst}

	// Phase 1 — cold: no embedding store, every node requested once, so
	// every score is a request-time k-hop extraction + forward pass
	// (micro-batched across clients).
	coldSrv, err := serve.New(serve.Config{Seed: opt.Seed}, model, ds.G, nil)
	if err != nil {
		return nil, err
	}
	opt.logf("serve: cold phase, %d requests", min(requests, len(ids)))
	cold, err := loadPhase("cold (forward pass)", coldSrv, uniqueIDs(ids, requests), clients)
	coldSrv.Close()
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, cold)

	// Phase 2 — warm: embedding store loaded, fresh cache, every node
	// requested once: store lookup + prediction slice only.
	warmSrv, err := serve.New(serve.Config{Seed: opt.Seed}, model, ds.G, store)
	if err != nil {
		return nil, err
	}
	opt.logf("serve: warm phase, %d requests", min(requests, len(ids)))
	warm, err := loadPhase("warm (store)", warmSrv, uniqueIDs(ids, requests), clients)
	if err != nil {
		warmSrv.Close()
		return nil, err
	}
	res.Phases = append(res.Phases, warm)

	// Phase 3 — hot: the same server, traffic concentrated on a small
	// working set that fits the LRU: cache hits.
	hot := make([]int64, requests)
	for i := range hot {
		hot[i] = ids[i%256]
	}
	opt.logf("serve: hot phase, %d requests", len(hot))
	hotPhase, err := loadPhase("hot (cache hit)", warmSrv, hot, clients)
	warmSrv.Close()
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, hotPhase)
	res.HitColdSpeedup = float64(cold.P50) / float64(hotPhase.P50)

	// Hub collapse: a burst of concurrent requests for one cold node must
	// compute exactly one forward pass.
	hubSrv, err := serve.New(serve.Config{Seed: opt.Seed}, model, ds.G, nil)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	hubErr := atomic.Value{}
	for i := 0; i < hubBurst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := hubSrv.Score(context.Background(), ids[0]); err != nil {
				hubErr.Store(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	res.HubForwardPasses = hubSrv.Stats().Cold
	hubSrv.Close()
	if err, ok := hubErr.Load().(error); ok {
		return nil, err
	}

	rows := make([][]string, 0, len(res.Phases))
	for _, p := range res.Phases {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%.0f", p.Throughput),
			fmtLatency(p.P50),
			fmtLatency(p.P99),
		})
	}
	res.Text = fmt.Sprintf(
		"Online serving: %d-node graph, %d concurrent clients (GCN, hidden 16, 2 hops)\n%s"+
			"cache hit vs cold forward pass: %.0fx faster (p50)\n"+
			"single-flight: %d concurrent requests for one cold node -> %d forward pass(es)\n",
		nodes, clients,
		table([]string{"Phase", "Requests", "Req/s", "p50", "p99"}, rows),
		res.HitColdSpeedup, res.HubRequests, res.HubForwardPasses)
	return res, nil
}

// uniqueIDs returns up to n distinct ids (every request a cache miss).
func uniqueIDs(ids []int64, n int) []int64 {
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// loadPhase drives one traffic shape: clients pull the next request index
// off a shared counter and record per-request latency.
func loadPhase(name string, srv *serve.Server, reqIDs []int64, clients int) (ServePhase, error) {
	lats := make([]time.Duration, len(reqIDs))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqIDs) {
					return
				}
				s := time.Now()
				if _, err := srv.Score(context.Background(), reqIDs[i]); err != nil {
					firstErr.Store(err)
					return
				}
				lats[i] = time.Since(s)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	if err, ok := firstErr.Load().(error); ok {
		return ServePhase{}, fmt.Errorf("%s: %w", name, err)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return ServePhase{
		Name:       name,
		Requests:   len(reqIDs),
		Wall:       wall,
		P50:        lats[len(lats)/2],
		P99:        lats[len(lats)*99/100],
		Throughput: float64(len(reqIDs)) / wall.Seconds(),
	}, nil
}

func fmtLatency(d time.Duration) string {
	switch {
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
}
