package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/dfs"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/serve"
)

// OOCoreResult records the out-of-core experiment: the full
// flatten -> train -> infer -> serve flow run under a hard GOMEMLIMIT
// smaller than the flattened dataset, comparing the mmap serve-store
// backend against the in-RAM one.
type OOCoreResult struct {
	Nodes      int
	Partitions int
	// FlatBytes is the on-disk size of the partitioned GraphFlat output —
	// the dataset the trainer streams without ever holding at once.
	FlatBytes int64
	// MemLimit is the Go soft memory limit in force during train + serve;
	// OutOfCore reports whether it was genuinely below FlatBytes.
	MemLimit  int64
	OutOfCore bool
	TrainWall time.Duration
	FinalLoss float64
	StoreLen  int
	// RAMOpen is ReadStore wall time (full decode); MmapOpen is OpenMapped
	// wall time (header checks only, no deserialization).
	RAMOpen, MmapOpen time.Duration
	// WarmRAM / WarmMmap are identical warm-path load tests over the two
	// store backends.
	WarmRAM, WarmMmap ServePhase
	// PeakRSS is the process high-water mark (VmHWM) after the run.
	PeakRSS int64
	Text    string
}

func (r *OOCoreResult) String() string { return r.Text }

// Metrics implements MetricsProvider for the out-of-core flow.
func (r *OOCoreResult) Metrics() map[string]float64 {
	return map[string]float64{
		"mmap_open_ns":     float64(r.MmapOpen),
		"ram_open_ns":      float64(r.RAMOpen),
		"warm_p50_mmap_ns": float64(r.WarmMmap.P50),
		"warm_p50_ram_ns":  float64(r.WarmRAM.P50),
		"peak_rss_bytes":   float64(r.PeakRSS),
	}
}

// OOCore runs the out-of-core data-tier experiment: GraphFlat with
// partitioned spilled output, partition-streaming training under a Go
// memory limit set below the flattened dataset size, then the online
// serving warm path over the mmap store vs the in-RAM store.
//
// When the process already carries a GOMEMLIMIT (the CI e2e run sets one
// in the environment), that limit is honored; otherwise the experiment
// installs half the flattened dataset size for the train+serve phases and
// restores the prior limit on exit.
func OOCore(opt Options) (*OOCoreResult, error) {
	nodes, featDim, partitions, epochs, requests, clients := 12000, 32, 8, 3, 3000, 16
	if opt.Quick {
		nodes, featDim, partitions, epochs, requests, clients = 5000, 16, 4, 2, 1000, 8
	}
	ds, err := datagen.UUG(datagen.UUGConfig{
		Nodes: nodes, FeatDim: featDim, FeatureNoise: 3, Homophily: 0.75, Seed: opt.Seed + 41,
	})
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp(opt.TempDir, "oocore-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	outDir, err := dfs.Create(filepath.Join(tmp, "flat"))
	if err != nil {
		return nil, err
	}

	res := &OOCoreResult{Nodes: nodes, Partitions: partitions}

	// Phase 1 — GraphFlat, partitioned + spilled: the flattened records go
	// disk to disk and land hash-partitioned by target id. Every node is a
	// target — the neighborhood duplication that makes GraphFeatures dwarf
	// the raw tables is exactly the footprint this tier exists to absorb.
	ids := ds.G.IDs()
	targets := make(map[int64]core.Target, len(ids))
	for _, id := range ids {
		targets[id] = core.Target{Label: int64(ds.LabelOf(id))}
	}
	opt.logf("oocore: flatten %d targets into %d partitions (spilled)", len(targets), partitions)
	flat, err := core.Flatten(core.FlatConfig{
		Hops: 2, MaxNeighbors: 25, Seed: opt.Seed + 42,
		NumReducers: 8, TempDir: tmp,
		Output: outDir, Partitions: partitions, SpillRounds: true,
	}, mapreduce.MemInput(core.TableRecords(ds.G)), targets)
	if err != nil {
		return nil, err
	}
	if flat.Partitioned == nil {
		return nil, fmt.Errorf("oocore: flatten did not produce a partitioned output")
	}
	res.FlatBytes = dirSize(outDir.Path())

	// Phase 2 — install the memory limit. An env-provided GOMEMLIMIT (the
	// CI e2e) wins; otherwise cap the heap at half the flattened bytes so
	// the trainer provably cannot hold the dataset resident.
	prior := debug.SetMemoryLimit(-1)
	res.MemLimit = prior
	if prior == int64(^uint64(0)>>1) { // math.MaxInt64: no limit set
		res.MemLimit = res.FlatBytes / 2
		if min := int64(64 << 20); res.MemLimit < min {
			res.MemLimit = min
		}
		debug.SetMemoryLimit(res.MemLimit)
		defer debug.SetMemoryLimit(prior)
	}
	res.OutOfCore = res.MemLimit < res.FlatBytes

	// Phase 3 — partition-streaming training: one partition resident at a
	// time, the prefetcher decoding the next while workers train.
	parts, err := core.OpenPartitions(outDir.Path())
	if err != nil {
		return nil, err
	}
	opt.logf("oocore: train %d epochs over %d records in %d partitions under %d MiB limit",
		epochs, parts.Records(), parts.NumPartitions(), res.MemLimit>>20)
	tr, err := core.TrainPartitions(core.TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 16,
			Classes: ds.NumClasses, Layers: 2, Seed: opt.Seed + 43,
		},
		Epochs: epochs, Workers: 2, Seed: opt.Seed + 44, Logf: opt.Logf,
	}, parts)
	if err != nil {
		return nil, err
	}
	res.TrainWall = tr.Total
	if len(tr.History) > 0 {
		res.FinalLoss = tr.History[len(tr.History)-1].Loss
	}

	// Phase 4 — GraphInfer precompute, then both store serializations: the
	// in-RAM AGLEMB file (full decode on open) and the AGLMAP mmap file
	// (O(1) open, rows read on demand straight from the page cache).
	opt.logf("oocore: infer embeddings for %d nodes", nodes)
	inf, err := core.Infer(core.InferConfig{
		Seed: opt.Seed + 45, TempDir: tmp, NumReducers: 8, KeepEmbeddings: true,
	}, tr.Model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		return nil, err
	}
	memStore, err := serve.NewStore(0, inf.Embeddings)
	if err != nil {
		return nil, err
	}
	res.StoreLen = memStore.Len()

	ramPath := filepath.Join(tmp, "store.emb")
	f, err := os.Create(ramPath)
	if err != nil {
		return nil, err
	}
	if _, err := memStore.WriteTo(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	mmapPath := filepath.Join(tmp, "store.aglmap")
	if err := serve.CreateMapped(mmapPath, memStore); err != nil {
		return nil, err
	}

	t0 := time.Now()
	rf, err := os.Open(ramPath)
	if err != nil {
		return nil, err
	}
	ramStore, err := serve.ReadStore(rf)
	rf.Close()
	if err != nil {
		return nil, err
	}
	res.RAMOpen = time.Since(t0)
	t0 = time.Now()
	mmapStore, err := serve.OpenMapped(mmapPath)
	if err != nil {
		return nil, err
	}
	res.MmapOpen = time.Since(t0)
	defer mmapStore.Close()

	// Phase 5 — identical warm-path load tests over the two backends.
	for _, backend := range []struct {
		name  string
		store serve.Store
		out   *ServePhase
	}{
		{"warm (ram store)", ramStore, &res.WarmRAM},
		{"warm (mmap store)", mmapStore, &res.WarmMmap},
	} {
		srv, err := serve.New(serve.Config{Seed: opt.Seed + 46}, tr.Model, ds.G, backend.store)
		if err != nil {
			return nil, err
		}
		opt.logf("oocore: %s phase, %d requests", backend.name, min(requests, len(ids)))
		ph, err := loadPhase(backend.name, srv, uniqueIDs(ids, requests), clients)
		srv.Close()
		if err != nil {
			return nil, err
		}
		*backend.out = ph
	}
	res.PeakRSS = peakRSS()

	rows := [][]string{
		{"ram", fmtLatency(res.RAMOpen), fmt.Sprintf("%d", res.WarmRAM.Requests),
			fmt.Sprintf("%.0f", res.WarmRAM.Throughput), fmtLatency(res.WarmRAM.P50), fmtLatency(res.WarmRAM.P99)},
		{"mmap", fmtLatency(res.MmapOpen), fmt.Sprintf("%d", res.WarmMmap.Requests),
			fmt.Sprintf("%.0f", res.WarmMmap.Throughput), fmtLatency(res.WarmMmap.P50), fmtLatency(res.WarmMmap.P99)},
	}
	regime := "in-core (limit above dataset)"
	if res.OutOfCore {
		regime = "out-of-core (limit below dataset)"
	}
	res.Text = fmt.Sprintf(
		"Out-of-core data tier: %d-node UUG, %d partitions, flattened %.1f MiB, GOMEMLIMIT %.1f MiB — %s\n"+
			"partition-streaming train: %d epochs in %s, final loss %.4f; store: %d embeddings\n%s"+
			"mmap warm p50 is %.2fx the in-RAM p50; open is %.0fx faster; peak RSS %.1f MiB\n",
		res.Nodes, res.Partitions, float64(res.FlatBytes)/(1<<20), float64(res.MemLimit)/(1<<20), regime,
		epochs, res.TrainWall.Round(time.Millisecond), res.FinalLoss, res.StoreLen,
		table([]string{"Backend", "Open", "Requests", "Req/s", "p50", "p99"}, rows),
		float64(res.WarmMmap.P50)/float64(res.WarmRAM.P50),
		float64(res.RAMOpen)/float64(max(res.MmapOpen, 1)),
		float64(res.PeakRSS)/(1<<20))
	return res, nil
}

// dirSize sums the file sizes under dir (non-recursive walk is enough for
// a dfs dataset directory).
func dirSize(dir string) int64 {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !info.IsDir() {
			total += info.Size()
		}
	}
	return total
}

// peakRSS reads the process resident-set high-water mark from
// /proc/self/status (VmHWM); on platforms without procfs it falls back to
// the Go runtime's OS-claimed bytes.
func peakRSS() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
						return kb * 1024
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
