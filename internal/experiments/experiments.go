// Package experiments regenerates every table and figure of the AGL
// paper's evaluation section (§4). Each experiment has one entry point
// returning a printable result; cmd/aglbench and the repository's
// bench_test.go both drive these. Paper-reported values are kept alongside
// (paperref.go) so the output juxtaposes paper vs measured.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"agl/internal/datagen"
)

// Options sizes the experiments.
type Options struct {
	// Quick shrinks datasets and epochs for CI-scale runs; the full setting
	// targets minutes on a laptop-class machine.
	Quick bool
	// Seed makes the whole run deterministic.
	Seed int64
	// TempDir hosts MapReduce spills (default os.TempDir()).
	TempDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Dataset presets. The paper's absolute scales (UUG: 6.23e9 nodes) are
// hardware-gated; these presets keep the published shape (feature dims,
// class structure, degree skew, split ratios) at laptop scale.

func (o Options) coraCfg() datagen.CoraConfig {
	if o.Quick {
		return datagen.CoraConfig{Nodes: 240, Edges: 700, FeatDim: 48, Classes: 4, Seed: o.Seed + 1}
	}
	return datagen.CoraConfig{Seed: o.Seed + 1} // published shape: 2708/5429/1433/7
}

func (o Options) ppiCfg() datagen.PPIConfig {
	if o.Quick {
		return datagen.PPIConfig{Scale: 0.015, Seed: o.Seed + 2}
	}
	return datagen.PPIConfig{Scale: 0.08, Seed: o.Seed + 2}
}

// uugCfg deliberately weakens the feature signal (high noise, moderate
// homophily) so training genuinely needs the graph structure and the
// Figure-7 convergence curves climb over several epochs instead of
// saturating immediately.
func (o Options) uugCfg() datagen.UUGConfig {
	if o.Quick {
		return datagen.UUGConfig{Nodes: 700, FeatDim: 16, FeatureNoise: 3, Homophily: 0.75, Seed: o.Seed + 3}
	}
	return datagen.UUGConfig{Nodes: 8000, FeatDim: 64, FeatureNoise: 3, Homophily: 0.75, Seed: o.Seed + 3}
}

// uugInferCfg sizes the Table-5 inference graph. The recomputation waste
// GraphInfer eliminates only dominates fixed per-round MapReduce overhead
// once neighborhoods overlap substantially, so this preset is larger than
// the training one even in quick mode.
func (o Options) uugInferCfg() datagen.UUGConfig {
	if o.Quick {
		return datagen.UUGConfig{Nodes: 4000, FeatDim: 16, Seed: o.Seed + 3}
	}
	return datagen.UUGConfig{Nodes: 12000, FeatDim: 64, Seed: o.Seed + 3}
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

// AllExperiments lists every experiment name in canonical run order —
// what "-exp all" expands to in cmd/aglbench.
var AllExperiments = []string{
	"table1", "table2", "table3", "table4", "table5",
	"fig7", "fig8", "shuffle", "serve", "update", "link", "train", "oocore",
	"overload", "cluster", "quant", "chaos",
}
