// Package experiments regenerates every table and figure of the AGL
// paper's evaluation section (§4). Each experiment has one entry point
// returning a printable result; cmd/aglbench and the repository's
// bench_test.go both drive these. Paper-reported values are kept alongside
// (paperref.go) so the output juxtaposes paper vs measured.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"agl/internal/datagen"
)

// Options sizes the experiments.
type Options struct {
	// Quick shrinks datasets and epochs for CI-scale runs; the full setting
	// targets minutes on a laptop-class machine.
	Quick bool
	// Seed makes the whole run deterministic.
	Seed int64
	// TempDir hosts MapReduce spills (default os.TempDir()).
	TempDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Dataset presets. The paper's absolute scales (UUG: 6.23e9 nodes) are
// hardware-gated; these presets keep the published shape (feature dims,
// class structure, degree skew, split ratios) at laptop scale.

func (o Options) coraCfg() datagen.CoraConfig {
	if o.Quick {
		return datagen.CoraConfig{Nodes: 240, Edges: 700, FeatDim: 48, Classes: 4, Seed: o.Seed + 1}
	}
	return datagen.CoraConfig{Seed: o.Seed + 1} // published shape: 2708/5429/1433/7
}

func (o Options) ppiCfg() datagen.PPIConfig {
	if o.Quick {
		return datagen.PPIConfig{Scale: 0.015, Seed: o.Seed + 2}
	}
	return datagen.PPIConfig{Scale: 0.08, Seed: o.Seed + 2}
}

// uugCfg deliberately weakens the feature signal (high noise, moderate
// homophily) so training genuinely needs the graph structure and the
// Figure-7 convergence curves climb over several epochs instead of
// saturating immediately.
func (o Options) uugCfg() datagen.UUGConfig {
	if o.Quick {
		return datagen.UUGConfig{Nodes: 700, FeatDim: 16, FeatureNoise: 3, Homophily: 0.75, Seed: o.Seed + 3}
	}
	return datagen.UUGConfig{Nodes: 8000, FeatDim: 64, FeatureNoise: 3, Homophily: 0.75, Seed: o.Seed + 3}
}

// uugInferCfg sizes the Table-5 inference graph. The recomputation waste
// GraphInfer eliminates only dominates fixed per-round MapReduce overhead
// once neighborhoods overlap substantially, so this preset is larger than
// the training one even in quick mode.
func (o Options) uugInferCfg() datagen.UUGConfig {
	if o.Quick {
		return datagen.UUGConfig{Nodes: 4000, FeatDim: 16, Seed: o.Seed + 3}
	}
	return datagen.UUGConfig{Nodes: 12000, FeatDim: 64, Seed: o.Seed + 3}
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

// WriteAll runs every experiment and streams the formatted outputs to w.
func WriteAll(w io.Writer, opt Options) error {
	fmt.Fprintln(w, Table1())
	t2, err := Table2(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t2)
	t3, err := Table3(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t3)
	t4, err := Table4(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t4)
	t5, err := Table5(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t5)
	f7, err := Fig7(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f7)
	f8, err := Fig8(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f8)
	sh, err := Shuffle(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, sh)
	sv, err := Serve(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, sv)
	return nil
}
