package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"agl/internal/rpcx"
	"agl/internal/serve"
)

// failoverCeiling is the hard bound on automatic recovery: if a crashed
// replica's slots have not been reassigned and re-serving within this
// window, the experiment fails — unavailability must be bounded, not
// merely eventual.
const failoverCeiling = 15 * time.Second

// ChaosResult records the fault-injection experiment: a raft-backed
// 3-replica cluster first serves routed reads through a seeded
// drop/delay/duplicate chaos schedule (correctness bit-exact, failures
// absorbed by the idempotent-retry + circuit-breaker stack), then loses
// a replica outright and must fail its slots over to the survivors with
// no operator action and zero wrong answers.
type ChaosResult struct {
	Nodes    int
	Replicas int
	Slots    int

	// Chaos-read phase (proxied reads through an adversarial transport).
	ChaosReads    int   // routed reads attempted under chaos
	ChaosInjected int64 // faults the chaos schedule injected
	ChaosRetries  int64 // transparent idempotent-retry attempts
	ChaosPeerDown int   // reads that surfaced ErrPeerDown (breaker open)
	ChaosFailures int   // reads that failed even after client retries
	BreakerOpens  int64 // circuit-breaker open transitions during chaos
	WrongAnswers  int   // both phases; zero is a hard invariant
	ChaosReadP50  time.Duration
	ChaosReadP99  time.Duration

	// Crash-failover phase.
	Victim           int           // replica index killed
	VictimSlots      int           // slots it owned at the kill
	Failover         time.Duration // kill -> victim-owned id served again
	FailoverEpoch    uint64        // placement epoch after failover
	UnavailableReads int           // reads failed inside the failover window
	PostProbes       int           // reads verified after failover

	Text string
}

func (r *ChaosResult) String() string { return r.Text }

// Metrics implements the bench-regression contract (lower is better).
// wrong_answers and read_failures carry zero baselines — the experiment
// also hard-fails on any wrong answer or unrecovered failover.
func (r *ChaosResult) Metrics() map[string]float64 {
	return map[string]float64{
		"failover_ms":   float64(r.Failover) / float64(time.Millisecond),
		"wrong_answers": float64(r.WrongAnswers),
		"read_failures": float64(r.ChaosFailures),
		"read_p99_ns":   float64(r.ChaosReadP99),
	}
}

// chaosConsensus is the experiment's raft timer profile: tight enough
// that detection + failover completes in well under a second of real
// time, loose enough to be stable on a loaded CI box.
func chaosConsensus(walDir string, seed int64) serve.ConsensusConfig {
	return serve.ConsensusConfig{
		WALDir:             walDir,
		HeartbeatInterval:  20 * time.Millisecond,
		ElectionTimeoutMin: 100 * time.Millisecond,
		ElectionTimeoutMax: 200 * time.Millisecond,
		SuspectAfter:       150 * time.Millisecond,
		DeadAfter:          400 * time.Millisecond,
		Seed:               seed,
	}
}

// Chaos runs the fault-injection experiment.
func Chaos(opt Options) (*ChaosResult, error) {
	const replicas = 3
	nodes, slots := 1200, 64
	if opt.Quick {
		nodes = 600
	}

	h, err := buildClusterHarness(opt, replicas, nodes, slots)
	if err != nil {
		return nil, err
	}
	defer h.close()
	res := &ChaosResult{Nodes: nodes, Replicas: replicas, Slots: slots}

	walDir, err := os.MkdirTemp(opt.TempDir, "aglchaos-raft-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	for i, rep := range h.reps {
		cfg := chaosConsensus(walDir, opt.Seed+int64(i)*13)
		cfg.Logf = opt.Logf
		if err := rep.EnableConsensus(cfg); err != nil {
			return nil, fmt.Errorf("chaos: enable consensus on replica %d: %w", i, err)
		}
	}
	leader := func() int {
		for i, rep := range h.reps {
			if n := rep.ConsensusNode(); n != nil && n.IsLeader() {
				return i
			}
		}
		return -1
	}
	deadline := time.Now().Add(10 * time.Second)
	for leader() < 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("chaos: no raft leader elected within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	opt.logf("chaos: raft leader is replica %d", leader())

	// Phase 1 — routed reads through a seeded, deterministic chaos
	// schedule on replica 0's peer links: 8%% of calls dropped, all calls
	// delayed, 5%% duplicated. Drops surface as transport errors, so they
	// exercise exactly the retry + breaker machinery a flaky network
	// would; every answer that does come back must be bit-exact.
	ch := rpcx.NewChaos(opt.Seed + 77)
	tab := h.reps[0].Table()
	for i, addr := range tab.Replicas {
		if i == 0 {
			continue
		}
		ch.Set(addr, rpcx.ChaosPolicy{
			Drop:        0.08,
			Delay:       200 * time.Microsecond,
			DelayJitter: 600 * time.Microsecond,
			Duplicate:   0.05,
		})
	}
	h.reps[0].SetChaos(ch)

	chaosN := len(h.warm)
	if chaosN > 400 {
		chaosN = 400
	}
	opt.logf("chaos: %d routed reads through the chaos schedule", chaosN)
	lats := make(latSlice, 0, chaosN)
	for _, id := range h.warm[:chaosN] {
		want, err := h.ref.Score(context.Background(), id)
		if err != nil {
			return nil, err
		}
		res.ChaosReads++
		t0 := time.Now()
		got, err := h.reps[0].Score(context.Background(), id)
		lats = append(lats, time.Since(t0))
		if err != nil {
			// A breaker that opened under the fault schedule fails fast;
			// a real client would back off on the 503's Retry-After and
			// resend. Model that once, after the cooldown.
			if !errors.Is(err, rpcx.ErrPeerDown) {
				res.ChaosFailures++
				continue
			}
			res.ChaosPeerDown++
			time.Sleep(rpcx.DefaultBreakerCooldown + 50*time.Millisecond)
			if got, err = h.reps[0].Score(context.Background(), id); err != nil {
				res.ChaosFailures++
				continue
			}
		}
		if !scoresBitEqual(got, want) {
			res.WrongAnswers++
		}
	}
	h.reps[0].SetChaos(nil)
	res.ChaosInjected = ch.Injected()
	cs := h.reps[0].ClusterStats()
	res.ChaosRetries = cs.ProxiedRetries
	res.BreakerOpens = cs.BreakerOpens
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	res.ChaosReadP50, res.ChaosReadP99 = lats.p50(), lats.p99()
	if res.ChaosInjected == 0 {
		return nil, fmt.Errorf("chaos: schedule injected no faults over %d reads — phase is vacuous", res.ChaosReads)
	}
	if res.WrongAnswers > 0 {
		return nil, fmt.Errorf("chaos: %d of %d reads under fault injection diverged from reference", res.WrongAnswers, res.ChaosReads)
	}

	// Phase 2 — replica crash and automatic failover. Kill a non-leader
	// survivor-side peer (leader crash + election is covered by the
	// consensus suite); replica 0 stays up as the probe entry point.
	victim := 1
	if leader() == victim {
		victim = 2
	}
	res.Victim = victim
	tab = h.reps[0].Table()
	res.VictimSlots = len(tab.SlotsOf(victim))
	if res.VictimSlots == 0 {
		return nil, fmt.Errorf("chaos: victim replica %d owns no slots", victim)
	}

	// Pin expectations before the kill. Victim-owned rows lose their warm
	// copies and recompute cold on a survivor — the documented 1e-9
	// contract; everything else must stay bit-exact.
	var victimIDs, otherIDs []int64
	for _, id := range h.warm {
		if tab.OwnerOf(id) == victim {
			if len(victimIDs) < 40 {
				victimIDs = append(victimIDs, id)
			}
		} else if len(otherIDs) < 40 {
			otherIDs = append(otherIDs, id)
		}
	}
	if len(victimIDs) == 0 {
		return nil, fmt.Errorf("chaos: no warm ids owned by victim replica %d", victim)
	}
	expected := make(map[int64][]float64, len(victimIDs)+len(otherIDs))
	for _, id := range append(append([]int64(nil), victimIDs...), otherIDs...) {
		want, err := h.ref.Score(context.Background(), id)
		if err != nil {
			return nil, err
		}
		expected[id] = want
	}

	opt.logf("chaos: killing replica %d (%d slots owned)", victim, res.VictimSlots)
	killAt := time.Now()
	if err := h.reps[victim].Close(); err != nil {
		return nil, err
	}

	// Hammer a victim-owned id until it answers again: that round trip —
	// detector silence, committed failover entry, route retry — is the
	// unavailability window. Reads inside it may fail (bounded, counted);
	// they must never be wrong.
	probe := victimIDs[0]
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		got, err := h.reps[0].Score(ctx, probe)
		cancel()
		if err == nil {
			if !scoresClose(got, expected[probe]) {
				return nil, fmt.Errorf("chaos: first post-failover answer for node %d diverged from reference", probe)
			}
			res.Failover = time.Since(killAt)
			break
		}
		res.UnavailableReads++
		if time.Since(killAt) > failoverCeiling {
			return nil, fmt.Errorf("chaos: replica %d slots not failed over within %s (last error: %v)",
				victim, failoverCeiling, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	tab = h.reps[0].Table()
	res.FailoverEpoch = tab.Epoch
	for s := 0; s < tab.Slots(); s++ {
		if tab.Owner(s) == victim {
			return nil, fmt.Errorf("chaos: slot %d still owned by dead replica %d after failover", s, victim)
		}
	}

	// Zero wrong answers across the whole surviving keyspace sample:
	// inherited ids within 1e-9 (cold recompute), untouched ids bit-exact.
	for _, id := range victimIDs {
		got, err := h.reps[0].Score(context.Background(), id)
		if err != nil {
			return nil, fmt.Errorf("chaos: post-failover score for node %d: %w", id, err)
		}
		res.PostProbes++
		if !scoresClose(got, expected[id]) {
			res.WrongAnswers++
		}
	}
	for _, id := range otherIDs {
		got, err := h.reps[0].Score(context.Background(), id)
		if err != nil {
			return nil, fmt.Errorf("chaos: post-failover score for node %d: %w", id, err)
		}
		res.PostProbes++
		if !scoresBitEqual(got, expected[id]) {
			res.WrongAnswers++
		}
	}
	if res.WrongAnswers > 0 {
		return nil, fmt.Errorf("chaos: %d wrong answers after failover", res.WrongAnswers)
	}

	res.Text = fmt.Sprintf(
		"Chaos: %d-node graph over %d raft-backed replicas, %d hash slots\n"+
			"fault injection: %d reads, %d faults injected (seeded, deterministic), %d retries absorbed, "+
			"%d breaker opens, %d peer-down backoffs, %d failures, p50 %s p99 %s\n"+
			"crash failover: replica %d killed (%d slots) -> re-served in %s at epoch %d, "+
			"%d reads failed inside the window\n"+
			"correctness: %d post-failover probes, %d wrong answers "+
			"(inherited slots within 1e-9 cold contract, untouched slots bit-exact)\n",
		nodes, replicas, slots,
		res.ChaosReads, res.ChaosInjected, res.ChaosRetries,
		res.BreakerOpens, res.ChaosPeerDown, res.ChaosFailures,
		fmtLatency(res.ChaosReadP50), fmtLatency(res.ChaosReadP99),
		victim, res.VictimSlots, res.Failover.Round(time.Millisecond), res.FailoverEpoch,
		res.UnavailableReads,
		res.PostProbes, res.WrongAnswers)
	return res, nil
}
