package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/serve"
	"agl/internal/wire"
)

// QuantResult records the quantized-serving tradeoff: how much warm-tier
// memory the int8 store saves versus the float backends, and what it costs
// in link quality (served AUC) and warm pair-scoring latency. Under the
// dot-product edge head the quantized warm path never dequantizes, so the
// overhead column is the honest price of the density win.
type QuantResult struct {
	Nodes     int
	TestPairs int
	Dim       int

	// MemAUC/QuantAUC are held-out link AUCs computed from SERVED scores
	// (warm ScoreLink over the respective backend), not offline
	// evaluation: exactly what a caller of the quantized tier observes.
	MemAUC, QuantAUC float64

	// MemBytes/QuantBytes are the serialized store footprints; Density is
	// their ratio — how many quantized stores fit in one float store's
	// bytes (equivalently the nodes/GB multiplier).
	MemBytes, QuantBytes int64
	Density              float64

	MemRequests        int
	MemP50, MemP99     time.Duration
	QuantRequests      int
	QuantP50, QuantP99 time.Duration
	// OverheadPct is max(0, p50(quant)/p50(mem) - 1) in percent: the warm
	// link-path latency cost of serving packed rows.
	OverheadPct float64

	Text string
}

func (r *QuantResult) String() string { return r.Text }

// Metrics implements MetricsProvider; everything is lower-is-better.
// auc_regret_pct is the served-AUC cost of quantization relative to the
// float backend on the identical workload — the claim the quantized tier
// is held to ("packing rows to int8 costs nothing you can measure") —
// not the model's absolute AUC, which belongs to the link experiment.
// density_shortfall_pct is how far the measured density ratio falls below
// the 4x acceptance floor (0 when it clears the floor). Both sit at 0 in
// the committed baseline, so a regression trips the guard via the
// zero-baseline rule (compare against the bare tolerance).
func (r *QuantResult) Metrics() map[string]float64 {
	shortfall := (4 - r.Density) / 4 * 100
	if shortfall < 0 {
		shortfall = 0
	}
	regret := 0.0
	if r.MemAUC > 0 {
		regret = (r.MemAUC - r.QuantAUC) / r.MemAUC * 100
	}
	if regret < 0 {
		regret = 0
	}
	return map[string]float64{
		"auc_regret_pct":        regret,
		"density_shortfall_pct": shortfall,
		"warm_p50_ns":           float64(r.QuantP50),
		"warm_overhead_pct":     r.OverheadPct,
	}
}

// Quant runs the quantized-serving experiment: train a dot-head link model
// on the UUG split, precompute embeddings once, serve the identical warm
// pair workload from the float store and from its int8-quantized twin, and
// compare footprint, served AUC, and warm latency.
func Quant(opt Options) (*QuantResult, error) {
	nodes, featDim, maxTrain, epochs := 4000, 32, 3000, 10
	warmReqs := 2000
	if opt.Quick {
		nodes, featDim, maxTrain, epochs = 1500, 16, 2000, 16
		warmReqs = 500
	}
	ds, err := datagen.UUG(datagen.UUGConfig{
		Nodes: nodes, FeatDim: featDim, AttachEdges: 5,
		FeatureNoise: 0.5, Homophily: 0.92, Seed: opt.Seed + 21,
	})
	if err != nil {
		return nil, err
	}
	links, err := datagen.Links(ds, datagen.LinkConfig{
		TestFrac: 0.1, NegPerPos: 1, MaxTrainPairs: maxTrain, Seed: opt.Seed + 22,
	})
	if err != nil {
		return nil, err
	}
	res := &QuantResult{Nodes: nodes, TestPairs: len(links.Test)}

	opt.logf("quant: flatten + train %d epochs (dot edge head)", epochs)
	tables := mapreduce.MemInput(core.TableRecords(links.G))
	flatCfg := core.FlatConfig{Hops: 2, NumReducers: 8, TempDir: opt.TempDir, Seed: opt.Seed}
	flatCfg.EdgeTargets = links.Train
	trainFlat, err := core.Flatten(flatCfg, tables, nil)
	if err != nil {
		return nil, err
	}
	// The dot head is the quantized tier's showcase: ScoreLink on two
	// CodecQ8 rows computes the logit directly on int8 payloads.
	tr, err := core.Train(core.TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: links.G.FeatureDim(), Hidden: 16, Classes: 1,
			Layers: 2, Act: nn.ActTanh, Seed: opt.Seed + 23, EdgeHead: gnn.EdgeHeadDot,
		},
		Loss: core.LossBCE, Epochs: epochs, BatchSize: 64, LR: 0.02,
		Workers: 4, NegativeRatio: 2, Seed: opt.Seed + 24,
		Pipeline: true, Pruning: true,
	}, trainFlat.Records)
	if err != nil {
		return nil, err
	}

	opt.logf("quant: GraphInfer precompute over %d nodes", nodes)
	inf, err := core.Infer(core.InferConfig{
		Seed: opt.Seed, TempDir: opt.TempDir, NumReducers: 8, KeepEmbeddings: true,
	}, tr.Model, tables)
	if err != nil {
		return nil, err
	}
	mem, err := serve.NewStore(0, inf.Embeddings)
	if err != nil {
		return nil, err
	}
	quant, err := serve.Quantize(mem)
	if err != nil {
		return nil, err
	}
	res.Dim = mem.Dim()
	if res.MemBytes, err = mem.WriteTo(io.Discard); err != nil {
		return nil, err
	}
	if res.QuantBytes, err = quant.WriteTo(io.Discard); err != nil {
		return nil, err
	}
	res.Density = float64(res.MemBytes) / float64(res.QuantBytes)

	// Two servers over the SAME graph and weights, differing only in the
	// store backend. The model is round-tripped so no state is shared.
	model2, err := gnn.UnmarshalModel(mustRemarshal(tr.Model))
	if err != nil {
		return nil, err
	}
	memSrv, err := serve.New(serve.Config{Seed: opt.Seed}, tr.Model, links.G, mem)
	if err != nil {
		return nil, err
	}
	defer memSrv.Close()
	quantSrv, err := serve.New(serve.Config{Seed: opt.Seed}, model2, links.G, quant)
	if err != nil {
		return nil, err
	}
	defer quantSrv.Close()

	// Served AUC over the held-out split: both backends score the same
	// labeled pairs through the warm link path.
	opt.logf("quant: served AUC over %d held-out pairs, both backends", len(links.Test))
	if res.MemAUC, err = servedAUC(memSrv, links.Test); err != nil {
		return nil, err
	}
	if res.QuantAUC, err = servedAUC(quantSrv, links.Test); err != nil {
		return nil, err
	}

	reqPairs := make([][2]int64, 0, warmReqs)
	for i := 0; len(reqPairs) < warmReqs; i++ {
		p := links.Train[i%len(links.Train)]
		reqPairs = append(reqPairs, [2]int64{p.Src, p.Dst})
	}
	opt.logf("quant: warm phase, %d pair requests per backend", warmReqs)
	memLats, err := scorePairs(memSrv, reqPairs)
	if err != nil {
		return nil, err
	}
	quantLats, err := scorePairs(quantSrv, reqPairs)
	if err != nil {
		return nil, err
	}
	res.MemRequests, res.QuantRequests = len(memLats), len(quantLats)
	res.MemP50, res.MemP99 = pctl(memLats, 50), pctl(memLats, 99)
	res.QuantP50, res.QuantP99 = pctl(quantLats, 50), pctl(quantLats, 99)
	if over := (float64(res.QuantP50)/float64(res.MemP50) - 1) * 100; over > 0 {
		res.OverheadPct = over
	}

	res.Text = fmt.Sprintf(
		"Quantized serving: %d-node UUG link workload (GCN+dot, dim %d)\n"+
			"store footprint: %s float64 -> %s int8 = %.2fx density (target >= 4x)\n"+
			"served AUC: %.4f float -> %.4f quantized (regret %+.4f)\n%s"+
			"warm p50 overhead: %.1f%% (dot head scores int8 rows without dequantizing)\n",
		nodes, res.Dim, fmtBytes(res.MemBytes), fmtBytes(res.QuantBytes), res.Density,
		res.MemAUC, res.QuantAUC, res.MemAUC-res.QuantAUC,
		table([]string{"Backend", "Requests", "p50", "p99"}, [][]string{
			{"mem (float64)", fmt.Sprintf("%d", res.MemRequests), fmtLatency(res.MemP50), fmtLatency(res.MemP99)},
			{"quant (int8)", fmt.Sprintf("%d", res.QuantRequests), fmtLatency(res.QuantP50), fmtLatency(res.QuantP99)},
		}),
		res.OverheadPct)
	return res, nil
}

// servedAUC scores labeled pairs through the server's warm link path and
// returns the ROC-AUC (ties counted half, the standard rank formulation).
func servedAUC(srv *serve.Server, pairs []wire.EdgeTarget) (float64, error) {
	type scored struct {
		s     float64
		label int
	}
	all := make([]scored, 0, len(pairs))
	pos, neg := 0, 0
	for _, p := range pairs {
		logit, err := srv.ScoreLink(context.Background(), p.Src, p.Dst)
		if err != nil {
			return 0, fmt.Errorf("pair (%d,%d): %w", p.Src, p.Dst, err)
		}
		all = append(all, scored{logit, int(p.Label)})
		if p.Label == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("degenerate AUC split: %d positives, %d negatives", pos, neg)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].s < all[b].s })
	// Rank-sum with midranks for ties.
	var rankSum float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if all[k].label == 1 {
				rankSum += midrank
			}
		}
		i = j
	}
	return (rankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg)), nil
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// mustRemarshal round-trips a model's weights to detach a second server's
// state from the first.
func mustRemarshal(m *gnn.Model) []byte {
	b, err := gnn.MarshalModel(m)
	if err != nil {
		panic(err) // marshalling a freshly trained model cannot fail
	}
	return b
}
