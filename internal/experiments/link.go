package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/serve"
)

// LinkResult records the edge-level workload baseline: held-out-edge
// link-prediction quality (ROC-AUC) through the full
// flatten→train→evaluate pipeline, plus online pair-scoring latency on the
// serving tier's warm path (two store lookups + pairwise head) versus the
// cold path (request-time k-hop extraction per endpoint). It is the perf
// and quality anchor for the link workload — re-run it after core/, gnn/
// or serve/ changes.
type LinkResult struct {
	Nodes      int
	TrainPairs int
	TestPairs  int
	Epochs     int

	// AUC is the held-out ROC-AUC (positives vs sampled negatives).
	AUC float64

	WarmRequests     int
	WarmP50, WarmP99 time.Duration
	ColdRequests     int
	ColdP50, ColdP99 time.Duration
	// ColdWarmRatio is p50(cold) / p50(warm): how much the embedding store
	// buys over request-time extraction for pair scoring.
	ColdWarmRatio float64

	Text string
}

func (r *LinkResult) String() string { return r.Text }

// Metrics implements MetricsProvider. Everything is lower-is-better:
// auc_regret_pct is (1−AUC)×100. The percent scale is what gives the
// multiplicative regression guard teeth on a bounded metric: against the
// committed baseline of 3 the per-PR 10x tolerance means regret > 30%
// (AUC < 0.70) fails the job, whereas a raw 1−AUC regret could never
// exceed baseline×10 because it is capped at 1.
func (r *LinkResult) Metrics() map[string]float64 {
	return map[string]float64{
		"auc_regret_pct": (1 - r.AUC) * 100,
		"warm_p50_ns":    float64(r.WarmP50),
		"warm_p99_ns":    float64(r.WarmP99),
		"cold_p50_ns":    float64(r.ColdP50),
		"cold_p99_ns":    float64(r.ColdP99),
	}
}

// Link runs the link-prediction experiment: a held-out-edge split of the
// UUG social graph, edge-target GraphFlat, pairwise training with in-batch
// negatives, AUC evaluation, then warm/cold online pair scoring.
func Link(opt Options) (*LinkResult, error) {
	nodes, featDim, maxTrain, epochs := 4000, 32, 3000, 10
	warmReqs, coldReqs := 2000, 150
	if opt.Quick {
		nodes, featDim, maxTrain, epochs = 1500, 16, 2000, 16
		warmReqs, coldReqs = 500, 60
	}
	// Denser, crisper preset than the node-task experiments: link prediction
	// against uniform negatives needs genuine structural signal (common
	// neighbors, hubs, homophilous communities) to clear the AUC bar.
	ds, err := datagen.UUG(datagen.UUGConfig{
		Nodes: nodes, FeatDim: featDim, AttachEdges: 5,
		FeatureNoise: 0.5, Homophily: 0.92, Seed: opt.Seed + 21,
	})
	if err != nil {
		return nil, err
	}
	links, err := datagen.Links(ds, datagen.LinkConfig{
		TestFrac: 0.1, NegPerPos: 1, MaxTrainPairs: maxTrain, Seed: opt.Seed + 22,
	})
	if err != nil {
		return nil, err
	}
	res := &LinkResult{Nodes: nodes, TrainPairs: len(links.Train), TestPairs: len(links.Test), Epochs: epochs}

	opt.logf("link: flatten %d train pairs + %d test pairs", len(links.Train), len(links.Test))
	tables := mapreduce.MemInput(core.TableRecords(links.G))
	flatCfg := core.FlatConfig{Hops: 2, NumReducers: 8, TempDir: opt.TempDir, Seed: opt.Seed}
	flatCfg.EdgeTargets = links.Train
	trainFlat, err := core.Flatten(flatCfg, tables, nil)
	if err != nil {
		return nil, err
	}
	flatCfg.EdgeTargets = links.Test
	testFlat, err := core.Flatten(flatCfg, tables, nil)
	if err != nil {
		return nil, err
	}

	opt.logf("link: train %d epochs over %d LinkRecords", epochs, len(trainFlat.Records))
	tr, err := core.Train(core.TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: links.G.FeatureDim(), Hidden: 16, Classes: 1,
			Layers: 2, Act: nn.ActTanh, Seed: opt.Seed + 23, EdgeHead: gnn.EdgeHeadBilinear,
		},
		Loss: core.LossBCE, Epochs: epochs, BatchSize: 64, LR: 0.02,
		Workers: 4, NegativeRatio: 2, Seed: opt.Seed + 24,
		Pipeline: true, Pruning: true,
	}, trainFlat.Records)
	if err != nil {
		return nil, err
	}
	res.AUC, err = core.EvaluateLinks(tr.Model, testFlat.Records, core.EvalConfig{})
	if err != nil {
		return nil, err
	}

	// Online pair scoring. Warm: every endpoint embedding precomputed by
	// GraphInfer and served from the store. Cold: no store, every request
	// resolves both endpoints through request-time k-hop extraction.
	opt.logf("link: GraphInfer precompute over %d nodes", nodes)
	inf, err := core.Infer(core.InferConfig{
		Seed: opt.Seed, TempDir: opt.TempDir, NumReducers: 8, KeepEmbeddings: true,
	}, tr.Model, tables)
	if err != nil {
		return nil, err
	}
	store, err := serve.NewStore(0, inf.Embeddings)
	if err != nil {
		return nil, err
	}
	reqPairs := make([][2]int64, 0, warmReqs)
	for i := 0; len(reqPairs) < warmReqs; i++ {
		p := links.Train[i%len(links.Train)]
		reqPairs = append(reqPairs, [2]int64{p.Src, p.Dst})
	}

	warmSrv, err := serve.New(serve.Config{Seed: opt.Seed}, tr.Model, links.G, store)
	if err != nil {
		return nil, err
	}
	opt.logf("link: warm phase, %d pair requests", warmReqs)
	warmLats, err := scorePairs(warmSrv, reqPairs)
	warmSrv.Close()
	if err != nil {
		return nil, err
	}
	res.WarmRequests = len(warmLats)
	res.WarmP50, res.WarmP99 = pctl(warmLats, 50), pctl(warmLats, 99)

	coldSrv, err := serve.New(serve.Config{Seed: opt.Seed}, tr.Model, links.G, nil)
	if err != nil {
		return nil, err
	}
	opt.logf("link: cold phase, %d pair requests", coldReqs)
	coldLats, err := scorePairs(coldSrv, reqPairs[:coldReqs])
	coldSrv.Close()
	if err != nil {
		return nil, err
	}
	res.ColdRequests = len(coldLats)
	res.ColdP50, res.ColdP99 = pctl(coldLats, 50), pctl(coldLats, 99)
	res.ColdWarmRatio = float64(res.ColdP50) / float64(res.WarmP50)

	res.Text = fmt.Sprintf(
		"Link prediction: %d-node UUG, %d train / %d test pairs (GCN+bilinear, 2 hops, %d epochs)\n"+
			"held-out AUC = %.4f (target > 0.80)\n%s"+
			"warm pair scoring vs cold extraction: %.0fx faster (p50)\n",
		nodes, res.TrainPairs, res.TestPairs, epochs, res.AUC,
		table([]string{"Path", "Requests", "p50", "p99"}, [][]string{
			{"warm (store + pairwise head)", fmt.Sprintf("%d", res.WarmRequests), fmtLatency(res.WarmP50), fmtLatency(res.WarmP99)},
			{"cold (2x k-hop extraction)", fmt.Sprintf("%d", res.ColdRequests), fmtLatency(res.ColdP50), fmtLatency(res.ColdP99)},
		}),
		res.ColdWarmRatio)
	return res, nil
}

// scorePairs drives sequential ScoreLink requests, recording per-request
// latency. Sequential on purpose: pair scoring is the per-request hot path
// and queueing would fold batching effects into the percentiles.
func scorePairs(srv *serve.Server, pairs [][2]int64) ([]time.Duration, error) {
	ctx := context.Background()
	lats := make([]time.Duration, 0, len(pairs))
	for _, p := range pairs {
		t0 := time.Now()
		if _, err := srv.ScoreLink(ctx, p[0], p[1]); err != nil {
			return nil, fmt.Errorf("pair (%d,%d): %w", p[0], p[1], err)
		}
		lats = append(lats, time.Since(t0))
	}
	return lats, nil
}

// pctl returns the p-th percentile of lats (sorts in place).
func pctl(lats []time.Duration, p int) time.Duration {
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	i := len(lats) * p / 100
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}
