package experiments

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCompareMetrics(t *testing.T) {
	baseline := map[string]float64{
		"shuffle.stream_allocs": 1000,
		"serve.warm_p50_ns":     2000,
		"update.max_dirty_rows": 0,
	}
	// Within tolerance: 10x over baseline passes at tol 10.
	ok := map[string]float64{
		"shuffle.stream_allocs": 9999,
		"serve.warm_p50_ns":     500,
		"update.max_dirty_rows": 5,
		"extra.metric":          123, // extra keys are not compared
	}
	if v := CompareMetrics(baseline, ok, 10); len(v) != 0 {
		t.Fatalf("expected pass, got violations %v", v)
	}
	// Regression: one metric blows past tolerance, one disappears.
	bad := map[string]float64{
		"shuffle.stream_allocs": 20000,
		"update.max_dirty_rows": 3,
	}
	v := CompareMetrics(baseline, bad, 10)
	if len(v) != 2 {
		t.Fatalf("expected 2 violations, got %v", v)
	}
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "stream_allocs") || !strings.Contains(joined, "warm_p50_ns") {
		t.Fatalf("violations missing expected keys: %v", v)
	}
	// Zero baseline: measured above the bare tolerance fails.
	if v := CompareMetrics(map[string]float64{"x": 0}, map[string]float64{"x": 11}, 10); len(v) != 1 {
		t.Fatalf("zero-baseline tolerance not enforced: %v", v)
	}

	out := FormatMetricsComparison(baseline, bad, 10)
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "ok") {
		t.Fatalf("comparison table lacks statuses:\n%s", out)
	}
}

func TestMetricsFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	in := map[string]float64{"a.b": 1.5, "c.d": 2}
	if err := WriteMetricsFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMetricsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out["a.b"] != 1.5 || out["c.d"] != 2 {
		t.Fatalf("roundtrip %v", out)
	}
	if _, err := ReadMetricsFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

// TestResultMetricsKeysStable pins the metric names the committed
// bench-baseline.json and CI regression guard depend on.
func TestResultMetricsKeysStable(t *testing.T) {
	sh := (&ShuffleResult{StreamWall: time.Second}).Metrics()
	for _, k := range []string{"stream_allocs", "collect_allocs", "stream_wall_ns", "peak_group_bytes"} {
		if _, ok := sh[k]; !ok {
			t.Fatalf("shuffle metrics missing %q: %v", k, sh)
		}
	}
	sv := (&ServeResult{Phases: []ServePhase{
		{Name: "cold (forward pass)", P50: 1, P99: 2},
		{Name: "warm (store)", P50: 1, P99: 2},
		{Name: "hot (cache hit)", P50: 1, P99: 2},
	}}).Metrics()
	for _, k := range []string{"cold_p50_ns", "warm_p50_ns", "hot_p50_ns", "hub_forward_passes"} {
		if _, ok := sv[k]; !ok {
			t.Fatalf("serve metrics missing %q: %v", k, sv)
		}
	}
	up := (&UpdateResult{MutationThroughput: 100}).Metrics()
	for _, k := range []string{"baseline_p50_ns", "churn_score_p50_ns", "apply_p50_ns", "ns_per_mutation", "max_dirty_rows"} {
		if _, ok := up[k]; !ok {
			t.Fatalf("update metrics missing %q: %v", k, up)
		}
	}
}

// TestUpdateExperimentQuick smoke-runs the dynamic-graph experiment at CI
// scale; its internal consistency audit is the real assertion.
func TestUpdateExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full churn phase")
	}
	res, err := Update(Options{Quick: true, Seed: 1, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.MutationsApplied == 0 || res.ConsistencyNodes == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.ChurnRequests == 0 || res.ChurnP50 == 0 {
		t.Fatalf("no churn traffic recorded: %+v", res)
	}
	if !strings.Contains(res.Text, "consistency") {
		t.Fatalf("report text: %s", res.Text)
	}
}
