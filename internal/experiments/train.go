package experiments

import (
	"fmt"
	"runtime"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
)

// TrainPerfResult records the compute-engine training baseline: wall-clock
// throughput of the pipelined GraphTrainer (decode + vectorize overlapped
// with blocked/parallel forward-backward, double-buffered workspaces) on a
// fixed Cora-shaped workload. It is the perf anchor for the dense engine —
// re-run it after kernel or trainer changes to track the trajectory.
type TrainPerfResult struct {
	Examples     int           // examples stepped (records × epochs)
	Wall         time.Duration // total training wall time
	NsPerExample float64       // wall / examples — the guarded inverse throughput
	Throughput   float64       // examples per second (human-facing)
	StepAllocs   float64       // heap objects allocated per example
	FinalLoss    float64
	Text         string
}

func (r *TrainPerfResult) String() string { return r.Text }

// Metrics implements MetricsProvider. train_throughput is exported in
// lower-is-better form (nanoseconds per training example) so the
// bench-regression guard's single comparison rule applies; the printed
// table carries the examples/s reading.
func (r *TrainPerfResult) Metrics() map[string]float64 {
	return map[string]float64{
		"train_throughput_ns_per_example": r.NsPerExample,
		"allocs_per_example":              r.StepAllocs,
	}
}

// TrainPerf measures end-to-end training throughput of the pipelined
// trainer on a generated Cora-shaped dataset: flatten once, then time
// Train with the engine's production configuration (pipeline on,
// aggregation threads, pruning off so every batch exercises the shared
// unpruned aggregator path).
func TrainPerf(opt Options) (*TrainPerfResult, error) {
	cora, err := datagen.Cora(opt.coraCfg())
	if err != nil {
		return nil, err
	}
	epochs := 8
	if opt.Quick {
		epochs = 4
	}
	targets := make(map[int64]core.Target, len(cora.Train))
	for _, id := range cora.Train {
		targets[id] = core.Target{Label: int64(cora.LabelOf(id))}
	}
	flat, err := core.Flatten(core.FlatConfig{
		Hops: 2, MaxNeighbors: 25, Seed: opt.Seed + 29, TempDir: opt.TempDir,
	}, mapreduce.MemInput(core.TableRecords(cora.G)), targets)
	if err != nil {
		return nil, err
	}
	records := flat.Records

	cfg := core.TrainConfig{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: cora.G.FeatureDim(), Hidden: 32,
			Classes: cora.NumClasses, Layers: 2, Act: nn.ActReLU,
			Dropout: 0.1, Seed: opt.Seed + 31,
		},
		Loss: core.LossCE, BatchSize: 64, Epochs: epochs, LR: 0.02,
		Pipeline: true, AggThreads: 4, Seed: opt.Seed + 37,
	}

	opt.logf("train: %d records x %d epochs through the pipelined trainer", len(records), epochs)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := core.Train(cfg, records)
	if err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&after)

	examples := len(records) * epochs
	out := &TrainPerfResult{
		Examples:     examples,
		Wall:         res.Total,
		NsPerExample: float64(res.Total.Nanoseconds()) / float64(examples),
		Throughput:   float64(examples) / res.Total.Seconds(),
		StepAllocs:   float64(after.Mallocs-before.Mallocs) / float64(examples),
		FinalLoss:    res.History[len(res.History)-1].Loss,
	}
	rows := [][]string{{
		fmt.Sprintf("%d", examples),
		fmt.Sprintf("%.3fs", out.Wall.Seconds()),
		fmt.Sprintf("%.0f ex/s", out.Throughput),
		fmt.Sprintf("%.0f ns", out.NsPerExample),
		fmt.Sprintf("%.1f", out.StepAllocs),
		fmt.Sprintf("%.4f", out.FinalLoss),
	}}
	out.Text = "Train throughput: pipelined GraphTrainer on Cora-shaped data (GCN 2-layer)\n" +
		table([]string{"Examples", "Wall", "train_throughput", "ns/example", "allocs/example", "Final loss"}, rows)
	return out, nil
}
