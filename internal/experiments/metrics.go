package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// MetricsProvider is implemented by experiment results that export
// machine-readable regression metrics. Every metric is lower-is-better
// (latencies in nanoseconds, allocation counts, inverse throughputs) so
// the regression guard needs a single comparison rule.
type MetricsProvider interface {
	Metrics() map[string]float64
}

// Metrics implements MetricsProvider for the shuffle baseline.
func (r *ShuffleResult) Metrics() map[string]float64 {
	return map[string]float64{
		"stream_allocs":    float64(r.StreamAllocs),
		"collect_allocs":   float64(r.CollectAllocs),
		"stream_wall_ns":   float64(r.StreamWall),
		"peak_group_bytes": float64(r.PeakGroupBytes),
	}
}

// Metrics implements MetricsProvider for the serving-tier load test.
func (r *ServeResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"hub_forward_passes": float64(r.HubForwardPasses),
	}
	for _, p := range r.Phases {
		var key string
		switch p.Name {
		case "cold (forward pass)":
			key = "cold"
		case "warm (store)":
			key = "warm"
		case "hot (cache hit)":
			key = "hot"
		default:
			continue
		}
		m[key+"_p50_ns"] = float64(p.P50)
		m[key+"_p99_ns"] = float64(p.P99)
	}
	return m
}

// WriteMetricsFile writes a flat {"exp.metric": value} JSON file, keys
// sorted for stable diffs.
func WriteMetricsFile(path string, metrics map[string]float64) error {
	b, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadMetricsFile reads a file written by WriteMetricsFile.
func ReadMetricsFile(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// CompareMetrics checks measured results against a committed baseline:
// every baseline metric must be present and must not exceed
// baseline*tolerance (metrics are lower-is-better by construction; a
// zero baseline allows up to the bare tolerance). It returns one
// violation string per failure, empty on success.
//
// The tolerance is deliberately generous — shared CI runners jitter
// wildly — so only order-of-magnitude regressions (an accidental
// O(fan-in) materialization, a cache that stopped hitting) trip it.
func CompareMetrics(baseline, measured map[string]float64, tolerance float64) []string {
	var violations []string
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		base := baseline[k]
		got, ok := measured[k]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but missing from results (benchmark rotted?)", k))
			continue
		}
		allowed := base * tolerance
		if base == 0 {
			allowed = tolerance
		}
		if got > allowed {
			violations = append(violations,
				fmt.Sprintf("%s: %.6g exceeds %.6g (baseline %.6g x tolerance %g)",
					k, got, allowed, base, tolerance))
		}
	}
	return violations
}

// FormatMetricsComparison renders a baseline-vs-measured table for the CI
// log, flagging violations.
func FormatMetricsComparison(baseline, measured map[string]float64, tolerance float64) string {
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([][]string, 0, len(keys))
	bad := map[string]bool{}
	for _, v := range CompareMetrics(baseline, measured, tolerance) {
		for _, k := range keys {
			if len(v) > len(k)+1 && v[:len(k)+1] == k+":" {
				bad[k] = true
			}
		}
	}
	for _, k := range keys {
		status := "ok"
		if bad[k] {
			status = "FAIL"
		}
		got := "(missing)"
		if v, ok := measured[k]; ok {
			got = fmt.Sprintf("%.6g", v)
		}
		rows = append(rows, []string{k, fmt.Sprintf("%.6g", baseline[k]), got, status})
	}
	return table([]string{"Metric", "Baseline", "Measured", fmt.Sprintf("Status (tol %gx)", tolerance)}, rows)
}
