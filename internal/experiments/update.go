package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/serve"
)

// UpdateResult records the dynamic-graph load test: a store-backed server
// under sustained mutation traffic, measuring mutation throughput, score
// latency during churn (vs. a no-churn warm baseline), the staleness
// window (dirty-row gauge after each Apply), and a final consistency
// audit against a from-scratch recompute on the mutated graph. It is the
// perf anchor for the incremental-invalidation path — re-run it after
// serve/ or graph-mutation changes.
type UpdateResult struct {
	Nodes, Clients, Writers int
	BatchSize               int

	// Warm-store baseline with no mutation traffic.
	BaselineP50, BaselineP99 time.Duration
	// Score latency while mutation batches commit concurrently.
	ChurnP50, ChurnP99 time.Duration
	ChurnRequests      int

	// Mutation side: applied mutations, sustained throughput, and Apply
	// call latency (graph COW + k-hop BFS + eviction).
	MutationsApplied   int64
	MutationThroughput float64 // mutations/second
	ApplyP50, ApplyP99 time.Duration

	// Staleness window: dirty store rows sampled after every Apply. A
	// dirty row serves stale at most until its next request.
	MaxDirty  int64
	MeanDirty float64

	Invalidated, Readmitted int64

	// ConsistencyNodes scores audited post-churn against a cold recompute
	// on the final graph; the run fails unless all match.
	ConsistencyNodes int

	Text string
}

func (r *UpdateResult) String() string { return r.Text }

// Metrics implements the bench-regression contract (lower is better).
func (r *UpdateResult) Metrics() map[string]float64 {
	return map[string]float64{
		"baseline_p50_ns":    float64(r.BaselineP50),
		"churn_score_p50_ns": float64(r.ChurnP50),
		"churn_score_p99_ns": float64(r.ChurnP99),
		"apply_p50_ns":       float64(r.ApplyP50),
		"ns_per_mutation":    1e9 / math.Max(r.MutationThroughput, 1e-9),
		"max_dirty_rows":     float64(r.MaxDirty),
	}
}

// Update runs the dynamic-graph experiment: an in-process store-backed
// server serving concurrent score traffic while writers stream mutation
// batches through Server.Apply.
func Update(opt Options) (*UpdateResult, error) {
	nodes, requests, clients, writers, batches, batchSize := 4000, 3000, 12, 2, 150, 16
	if opt.Quick {
		nodes, requests, clients, writers, batches, batchSize = 1000, 600, 6, 1, 40, 16
	}
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: nodes, FeatDim: 16, Seed: opt.Seed + 21})
	if err != nil {
		return nil, err
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 16, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: opt.Seed + 22,
	})
	if err != nil {
		return nil, err
	}
	opt.logf("update: GraphInfer precompute over %d nodes", nodes)
	inf, err := core.Infer(core.InferConfig{Seed: opt.Seed, TempDir: opt.TempDir, NumReducers: 8, KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		return nil, err
	}
	store, err := serve.NewStore(0, inf.Embeddings)
	if err != nil {
		return nil, err
	}
	// A second model instance for the post-churn audit: Server owns its
	// model and model instances are not safe to share.
	modelBytes, err := gnn.MarshalModel(model)
	if err != nil {
		return nil, err
	}
	cfg := serve.Config{Seed: opt.Seed}
	srv, err := serve.New(cfg, model, ds.G, store)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ids := ds.G.IDs()

	res := &UpdateResult{
		Nodes: nodes, Clients: clients, Writers: writers, BatchSize: batchSize,
	}

	// Phase 1 — no-churn baseline: warm store, fresh cache.
	opt.logf("update: warm baseline, %d requests", min(requests, len(ids)))
	base, err := loadPhase("baseline", srv, uniqueIDs(ids, requests), clients)
	if err != nil {
		return nil, err
	}
	res.BaselineP50, res.BaselineP99 = base.P50, base.P99

	// Phase 2 — churn: writers stream mutation batches while clients keep
	// scoring random nodes until the writers drain.
	opt.logf("update: churn phase, %d writers x %d batches x %d mutations", writers, batches, batchSize)
	var (
		stop       atomic.Bool
		latMu      sync.Mutex
		scoreLats  []time.Duration
		applyLats  []time.Duration
		dirtySum   int64
		dirtyMax   int64
		dirtyObs   int64
		writersErr atomic.Value
		wg         sync.WaitGroup
	)
	mutStart := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(100+w)))
			nextID := int64(1<<40) + int64(w)<<20
			var ownEdges [][2]int64
			for b := 0; b < batches; b++ {
				muts := make([]graph.Mutation, 0, batchSize)
				for k := 0; k < batchSize; k++ {
					switch rng.Intn(6) {
					case 0: // grow the graph
						feat := make([]float64, 16)
						feat[0] = rng.NormFloat64()
						muts = append(muts, graph.AddNode(nextID, feat))
						nextID++
					case 1, 2: // wire random nodes together
						s, d := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
						if s != d {
							muts = append(muts, graph.AddEdge(s, d, 1+rng.Float64()))
							ownEdges = append(ownEdges, [2]int64{s, d})
						}
					case 3: // unwire one of our own edges
						if len(ownEdges) > 0 {
							i := rng.Intn(len(ownEdges))
							e := ownEdges[i]
							ownEdges[i] = ownEdges[len(ownEdges)-1]
							ownEdges = ownEdges[:len(ownEdges)-1]
							muts = append(muts, graph.RemoveEdge(e[0], e[1]))
						}
					default: // drift node features
						feat := make([]float64, 16)
						for j := range feat {
							feat[j] = rng.NormFloat64()
						}
						muts = append(muts, graph.UpdateNodeFeat(ids[rng.Intn(len(ids))], feat))
					}
				}
				t0 := time.Now()
				ar, err := srv.Apply(context.Background(), muts)
				d := time.Since(t0)
				if err != nil {
					writersErr.Store(err)
					return
				}
				dirty := srv.Stats().DirtyRows
				latMu.Lock()
				applyLats = append(applyLats, d)
				res.MutationsApplied += int64(ar.Applied)
				dirtySum += dirty
				dirtyObs++
				if dirty > dirtyMax {
					dirtyMax = dirty
				}
				latMu.Unlock()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var cwg sync.WaitGroup
	clientErr := atomic.Value{}
	for c := 0; c < clients; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(500+c)))
			var lats []time.Duration
			for !stop.Load() {
				id := ids[rng.Intn(len(ids))]
				t0 := time.Now()
				if _, err := srv.Score(context.Background(), id); err != nil {
					clientErr.Store(err)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latMu.Lock()
			scoreLats = append(scoreLats, lats...)
			latMu.Unlock()
		}(c)
	}
	<-done
	mutWall := time.Since(mutStart)
	stop.Store(true)
	cwg.Wait()
	if err, ok := writersErr.Load().(error); ok {
		return nil, err
	}
	if err, ok := clientErr.Load().(error); ok {
		return nil, err
	}

	sort.Slice(scoreLats, func(a, b int) bool { return scoreLats[a] < scoreLats[b] })
	sort.Slice(applyLats, func(a, b int) bool { return applyLats[a] < applyLats[b] })
	if len(scoreLats) == 0 || len(applyLats) == 0 {
		return nil, fmt.Errorf("update: churn phase recorded no traffic (%d scores, %d applies)",
			len(scoreLats), len(applyLats))
	}
	res.ChurnRequests = len(scoreLats)
	res.ChurnP50 = scoreLats[len(scoreLats)/2]
	res.ChurnP99 = scoreLats[len(scoreLats)*99/100]
	res.ApplyP50 = applyLats[len(applyLats)/2]
	res.ApplyP99 = applyLats[len(applyLats)*99/100]
	res.MutationThroughput = float64(res.MutationsApplied) / mutWall.Seconds()
	res.MaxDirty = dirtyMax
	if dirtyObs > 0 {
		res.MeanDirty = float64(dirtySum) / float64(dirtyObs)
	}
	st := srv.Stats()
	res.Invalidated, res.Readmitted = st.Invalidated, st.Readmitted

	// Phase 3 — consistency audit: sampled nodes must match a cold
	// recompute on the final mutated graph (sampling is disabled, so the
	// comparison is exact).
	audit := 64
	if audit > len(ids) {
		audit = len(ids)
	}
	opt.logf("update: consistency audit over %d nodes", audit)
	refModel, err := gnn.UnmarshalModel(modelBytes)
	if err != nil {
		return nil, err
	}
	finalG, _ := srv.Graph()
	ref, err := serve.New(cfg, refModel, finalG, nil)
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	for i := 0; i < audit; i++ {
		id := ids[rng.Intn(len(ids))]
		got, err := srv.Score(context.Background(), id)
		if err != nil {
			return nil, err
		}
		want, err := ref.Score(context.Background(), id)
		if err != nil {
			return nil, err
		}
		if math.Abs(got[0]-want[0]) > 1e-9 {
			return nil, fmt.Errorf("update: node %d inconsistent after churn: served %v, recompute %v",
				id, got[0], want[0])
		}
	}
	res.ConsistencyNodes = audit

	rows := [][]string{
		{"baseline (no churn)", fmt.Sprintf("%d", base.Requests), fmtLatency(res.BaselineP50), fmtLatency(res.BaselineP99)},
		{"under churn", fmt.Sprintf("%d", res.ChurnRequests), fmtLatency(res.ChurnP50), fmtLatency(res.ChurnP99)},
	}
	res.Text = fmt.Sprintf(
		"Dynamic graph: %d-node graph, %d score clients vs %d mutation writers (batch %d)\n%s"+
			"mutations: %d applied, %.0f/s sustained; Apply p50 %s p99 %s\n"+
			"staleness window: max %d dirty rows, mean %.1f (invalidated %d, re-admitted warm %d)\n"+
			"consistency: %d/%d audited nodes equal a cold recompute on the mutated graph\n",
		nodes, clients, writers, batchSize,
		table([]string{"Score phase", "Requests", "p50", "p99"}, rows),
		res.MutationsApplied, res.MutationThroughput, fmtLatency(res.ApplyP50), fmtLatency(res.ApplyP99),
		res.MaxDirty, res.MeanDirty, res.Invalidated, res.Readmitted,
		res.ConsistencyNodes, audit)
	return res, nil
}
