package experiments

import (
	"strings"
	"testing"
)

func quickOpts(t *testing.T) Options {
	t.Helper()
	return Options{Quick: true, Seed: 1, TempDir: t.TempDir()}
}

func TestTable1Static(t *testing.T) {
	out := Table1()
	if !strings.Contains(out, "AGL") || !strings.Contains(out, "6.23e9") {
		t.Fatalf("table 1 malformed:\n%s", out)
	}
}

func TestTable2GeneratesAllDatasets(t *testing.T) {
	res, err := Table2(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cora == nil || res.PPI == nil || res.UUG == nil {
		t.Fatal("missing dataset")
	}
	for _, want := range []string{"cora-syn", "ppi-syn", "uug-syn", "paper Cora"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, res.Text)
		}
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Table3(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 { // 3 datasets x 3 models
		t.Fatalf("rows=%d want 9", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.AGL <= 0 || r.AGL > 1 {
			t.Fatalf("%s/%s AGL metric out of range: %v", r.Dataset, r.Model, r.AGL)
		}
		if r.Dataset == "uug" && r.HasBaseline {
			t.Fatal("UUG should have no full-graph baseline (paper: OOM)")
		}
	}
}

func TestTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Table4(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 36 { // 3 models x 3 depths x 4 configs
		t.Fatalf("rows=%d want 36", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.PerEpoch <= 0 {
			t.Fatalf("%s %d-layer %s: no timing", r.Model, r.Layers, r.Config)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Table5(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: GraphInfer beats the original module. Wall time
	// must win outright even at quick scale; the CPU busy-time ratio is
	// noisy when the whole test suite competes for cores (the full-scale
	// run in EXPERIMENTS.md shows 2.5x), so it gets slack here.
	if res.SpeedupTime <= 1 {
		t.Fatalf("GraphInfer not faster: %vx", res.SpeedupTime)
	}
	if res.SpeedupCPU <= 0.9 {
		t.Fatalf("GraphInfer CPU cost regressed: %vx", res.SpeedupCPU)
	}
}

func TestFig7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Fig7(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) < 2 {
		t.Fatalf("curves=%d", len(res.Curves))
	}
	for _, c := range res.Curves {
		final := c.AUC[len(c.AUC)-1]
		if final < 0.5 {
			t.Fatalf("workers=%d final AUC %v below random", c.Workers, final)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Fig8(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slope < 0.5 || res.Slope > 1 {
		t.Fatalf("slope %v outside plausible range", res.Slope)
	}
	// Modeled points rise with workers, modulo the straggler jitter the
	// paper also reports (small perturbations allowed).
	prev := 0.0
	for _, p := range res.Points {
		if !p.Measured {
			if p.Speedup < prev*0.93 {
				t.Fatalf("speedup collapsed at %d workers: %v after %v", p.Workers, p.Speedup, prev)
			}
			if p.Speedup > prev {
				prev = p.Speedup
			}
		}
	}
}

func TestTrainPerfQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := TrainPerf(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Examples <= 0 || res.NsPerExample <= 0 || res.Throughput <= 0 {
		t.Fatalf("malformed result %+v", res)
	}
	m := res.Metrics()
	if m["train_throughput_ns_per_example"] != res.NsPerExample {
		t.Fatal("metrics do not carry the guarded inverse throughput")
	}
	// The engine bar: the workspace-backed step must not allocate per
	// matrix anymore — a few hundred heap objects per example would mean
	// the arena stopped hitting.
	if res.StepAllocs > 2000 {
		t.Fatalf("allocs/example %v: workspace reuse regressed", res.StepAllocs)
	}
}

func TestClusterQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Cluster(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// The experiment hard-fails on any divergence from the unsharded
	// reference (warm/link/migration bit-exact, cold within the 1e-9
	// consistency contract); reaching here means every check held.
	if res.MigrationWrongAnswers != 0 || res.MigrationProbes == 0 {
		t.Fatalf("migration window: %d probes, %d wrong answers", res.MigrationProbes, res.MigrationWrongAnswers)
	}
	if res.MigrationRowsMoved <= 0 {
		t.Fatalf("migration moved %d rows, want > 0", res.MigrationRowsMoved)
	}
	m := res.Metrics()
	for _, k := range []string{"warm_p50_ns", "cold_p50_ns", "link_p99_ns",
		"migration_pause_ms", "migration_wrong_answers", "scaling_shortfall_pct"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metric %q missing from the bench-regression set", k)
		}
	}
	if m["warm_p50_ns"] <= 0 || m["link_p99_ns"] <= 0 {
		t.Fatalf("malformed latency metrics %+v", m)
	}
}

func TestChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Chaos(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// The experiment hard-fails on wrong answers, a vacuous fault
	// schedule, or an unrecovered failover; reaching here means the
	// cluster survived injected faults AND a replica kill correctly.
	if res.WrongAnswers != 0 {
		t.Fatalf("%d wrong answers", res.WrongAnswers)
	}
	if res.ChaosInjected == 0 || res.ChaosRetries == 0 {
		t.Fatalf("fault schedule vacuous: %d injected, %d retries", res.ChaosInjected, res.ChaosRetries)
	}
	if res.Failover <= 0 || res.Failover > failoverCeiling {
		t.Fatalf("failover took %v", res.Failover)
	}
	if res.VictimSlots == 0 || res.PostProbes == 0 {
		t.Fatalf("kill phase vacuous: %d victim slots, %d post probes", res.VictimSlots, res.PostProbes)
	}
	m := res.Metrics()
	for _, k := range []string{"failover_ms", "wrong_answers", "read_failures", "read_p99_ns"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metric %q missing from the bench-regression set", k)
		}
	}
}

func TestServeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Serve(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases=%d want 3", len(res.Phases))
	}
	// The acceptance bar for the serving tier: answering from the score
	// cache must beat the request-time forward pass by at least 10x.
	if res.HitColdSpeedup < 10 {
		t.Fatalf("cache hit only %.1fx faster than cold path", res.HitColdSpeedup)
	}
	if res.HubForwardPasses != 1 {
		t.Fatalf("hub burst ran %d forward passes, want 1", res.HubForwardPasses)
	}
	for _, p := range res.Phases {
		if p.Throughput <= 0 || p.P99 < p.P50 {
			t.Fatalf("malformed phase %+v", p)
		}
	}
}
