package experiments

import (
	"fmt"
	"time"

	"agl/internal/baseline"
	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
)

// Table1 renders the paper's Table 1 (graph scales of published systems);
// it is a literature reference table, not a measurement.
func Table1() string {
	rows := PaperTable1
	return "Table 1: graph scale reported by GML systems (paper reference)\n" +
		table([]string{"System", "#Nodes", "#Edges"}, rows)
}

// Table2Result carries the generated datasets alongside their stats so
// downstream experiments can reuse them.
type Table2Result struct {
	Cora, PPI, UUG *datagen.Dataset
	Text           string
}

func (r *Table2Result) String() string { return r.Text }

// Table2 generates the three evaluation datasets and summarizes them
// against the paper's published shapes.
func Table2(opt Options) (*Table2Result, error) {
	cora, err := datagen.Cora(opt.coraCfg())
	if err != nil {
		return nil, err
	}
	ppi, err := datagen.PPI(opt.ppiCfg())
	if err != nil {
		return nil, err
	}
	uug, err := datagen.UUG(opt.uugCfg())
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for i, d := range []*datagen.Dataset{cora, ppi, uug} {
		s := d.G.Stats()
		rows = append(rows, []string{
			d.Name,
			fmt.Sprint(s.Nodes), fmt.Sprint(s.Edges), fmt.Sprint(s.FeatureDim),
			fmt.Sprint(d.NumClasses),
			fmt.Sprintf("%d/%d/%d", len(d.Train), len(d.Val), len(d.Test)),
		})
		p := PaperTable2[i]
		rows = append(rows, []string{"  (paper " + p[0] + ")", p[1], p[2], p[3], p[4], p[5]})
	}
	text := "Table 2: dataset summary (generated vs paper)\n" +
		table([]string{"Dataset", "#Nodes", "#Edges", "#Feat", "#Classes", "Train/Val/Test"}, rows)
	return &Table2Result{Cora: cora, PPI: ppi, UUG: uug, Text: text}, nil
}

// Table3Row is one effectiveness measurement.
type Table3Row struct {
	Dataset, Model string
	Baseline, AGL  float64
	HasBaseline    bool
	PaperAGL       float64
	Metric         core.MetricKind
}

// Table3Result holds the effectiveness grid.
type Table3Result struct {
	Rows []Table3Row
	Text string
}

func (r *Table3Result) String() string { return r.Text }

type table3task struct {
	name    string
	ds      *datagen.Dataset
	hops    int
	hidden  int
	classes int
	loss    core.LossKind
	metric  core.MetricKind
	epochs  int
	lr      float64
	// baselineOK: DGL/PyG stand-in runs (the paper could not run them on
	// UUG: OOM).
	baselineOK bool
}

// Table3 measures model effectiveness (accuracy / micro-F1 / AUC) for GCN,
// GraphSAGE and GAT trained with the full AGL pipeline versus the
// full-graph in-memory baseline.
func Table3(opt Options) (*Table3Result, error) {
	t2, err := Table2(opt)
	if err != nil {
		return nil, err
	}
	epochs := 40
	if opt.Quick {
		epochs = 8
	}
	coraHidden, ppiHidden := 16, 64
	if opt.Quick {
		ppiHidden = 16
	}
	tasks := []table3task{
		{name: "cora", ds: t2.Cora, hops: 2, hidden: coraHidden, classes: t2.Cora.NumClasses,
			loss: core.LossCE, metric: core.MetricAccuracy, epochs: epochs, lr: 0.02, baselineOK: true},
		{name: "ppi", ds: t2.PPI, hops: 2, hidden: ppiHidden, classes: 121,
			loss: core.LossBCE, metric: core.MetricMicroF1, epochs: epochs, lr: 0.01, baselineOK: true},
		{name: "uug", ds: t2.UUG, hops: 2, hidden: 8, classes: 1,
			loss: core.LossBCE, metric: core.MetricAUC, epochs: epochs, lr: 0.01, baselineOK: false},
	}
	res := &Table3Result{}
	var rows [][]string
	for _, task := range tasks {
		train, test, err := flattenSplits(opt, task.ds, task.hops, task.loss)
		if err != nil {
			return nil, err
		}
		for _, kind := range []string{gnn.KindGCN, gnn.KindSAGE, gnn.KindGAT} {
			opt.logf("table3: %s/%s", task.name, kind)
			heads := 1
			if kind == gnn.KindGAT {
				heads = 2
			}
			mcfg := gnn.Config{
				Kind: kind, InDim: task.ds.G.FeatureDim(), Hidden: task.hidden,
				Classes: task.classes, Layers: task.hops, Heads: heads,
				Act: nn.ActReLU, Dropout: 0.1, Seed: opt.Seed + 11,
			}
			row := Table3Row{Dataset: task.name, Model: kind, Metric: task.metric,
				PaperAGL: paperTable3[task.name][kind]}
			if task.baselineOK {
				bres, err := baseline.Train(task.ds, baseline.Config{
					Model: mcfg, Epochs: task.epochs * 2, LR: task.lr,
					MultiLabel: task.loss == core.LossBCE,
				})
				if err != nil {
					return nil, err
				}
				row.Baseline, err = baseline.Evaluate(bres.Model, task.ds, task.ds.Test)
				if err != nil {
					return nil, err
				}
				row.HasBaseline = true
			}
			tres, err := core.Train(core.TrainConfig{
				Model: mcfg, Loss: task.loss, BatchSize: 64, Epochs: task.epochs,
				LR: task.lr, Pipeline: true, Pruning: true, AggThreads: 4,
				Eval: test, EvalMetric: task.metric, Seed: opt.Seed + 13,
			}, train)
			if err != nil {
				return nil, err
			}
			row.AGL = tres.History[len(tres.History)-1].Metric
			res.Rows = append(res.Rows, row)
			base := "OOM (paper: —)"
			if row.HasBaseline {
				base = fmt.Sprintf("%.3f", row.Baseline)
			}
			rows = append(rows, []string{
				task.name, kind, task.metric.String(), base,
				fmt.Sprintf("%.3f", row.AGL), fmt.Sprintf("%.3f", row.PaperAGL),
			})
		}
	}
	res.Text = "Table 3: effectiveness of GNNs (full-graph baseline = DGL/PyG stand-in)\n" +
		table([]string{"Dataset", "Model", "Metric", "FullGraph", "AGL", "Paper(AGL)"}, rows)
	return res, nil
}

// flattenSplits runs GraphFlat for a dataset's train and test targets.
func flattenSplits(opt Options, ds *datagen.Dataset, hops int, loss core.LossKind) (train, test [][]byte, err error) {
	tables := mapreduce.MemInput(core.TableRecords(ds.G))
	mk := func(ids []int64) map[int64]core.Target {
		targets := make(map[int64]core.Target, len(ids))
		for _, id := range ids {
			t := core.Target{Label: int64(ds.LabelOf(id))}
			if loss == core.LossBCE {
				if ds.MultiLabel {
					t.LabelVec = append([]float64(nil), ds.LabelVecOf(id)...)
				} else {
					t.LabelVec = []float64{float64(ds.LabelOf(id))}
				}
			}
			targets[id] = t
		}
		return targets
	}
	cfg := core.FlatConfig{
		Hops: hops, MaxNeighbors: 25, Seed: opt.Seed + 17,
		HubThreshold: 1000, TempDir: opt.TempDir,
	}
	ftr, err := core.Flatten(cfg, tables, mk(ds.Train))
	if err != nil {
		return nil, nil, err
	}
	fte, err := core.Flatten(cfg, tables, mk(ds.Test))
	if err != nil {
		return nil, nil, err
	}
	return ftr.Records, fte.Records, nil
}

// Table4Row is one training-efficiency measurement.
type Table4Row struct {
	Model     string
	Layers    int
	Config    string
	PerEpoch  time.Duration
	PaperSecs float64
}

// Table4Result holds the efficiency grid.
type Table4Result struct {
	Rows     []Table4Row
	FullRows []Table4Row // full-graph baseline rows
	Text     string
}

func (r *Table4Result) String() string { return r.Text }

// Table4 measures time per epoch on the PPI-like dataset for every model ×
// depth × optimization configuration, plus the full-graph stand-in.
func Table4(opt Options) (*Table4Result, error) {
	ppi, err := datagen.PPI(opt.ppiCfg())
	if err != nil {
		return nil, err
	}
	hidden := 64
	epochs := 3
	batch := 256
	if opt.Quick {
		hidden = 16
		epochs = 2
		batch = 64
	}
	// Flatten once per depth: a K-layer model trains on K-hop
	// GraphFeatures, so (as in the paper) pruning has nothing to remove at
	// K=1 and increasingly more as depth grows.
	trainByDepth := make(map[int][][]byte)
	for layers := 1; layers <= 3; layers++ {
		tr, _, err := flattenSplits(opt, ppi, layers, core.LossBCE)
		if err != nil {
			return nil, err
		}
		trainByDepth[layers] = tr
	}
	configs := []struct {
		name       string
		pruning    bool
		aggThreads int
	}{
		{"base", false, 1},
		{"pruning", true, 1},
		{"partition", false, 8},
		{"prune+part", true, 8},
	}
	res := &Table4Result{}
	var rows [][]string
	for _, kind := range []string{gnn.KindGCN, gnn.KindSAGE, gnn.KindGAT} {
		for layers := 1; layers <= 3; layers++ {
			// Full-graph stand-in, measured once per (model, depth).
			heads := 1
			if kind == gnn.KindGAT {
				heads = 4
			}
			mcfg := gnn.Config{
				Kind: kind, InDim: ppi.G.FeatureDim(), Hidden: hidden, Classes: 121,
				Layers: layers, Heads: heads, Act: nn.ActReLU, Seed: opt.Seed + 19,
			}
			bres, err := baseline.Train(ppi, baseline.Config{
				Model: mcfg, Epochs: epochs, LR: 0.01, MultiLabel: true,
			})
			if err != nil {
				return nil, err
			}
			res.FullRows = append(res.FullRows, Table4Row{
				Model: kind, Layers: layers, Config: "fullgraph", PerEpoch: bres.EpochTime,
			})
			rows = append(rows, []string{kind, fmt.Sprint(layers), "fullgraph (DGL/PyG stand-in)",
				fmt.Sprintf("%.3fs", bres.EpochTime.Seconds()), "—"})
			for _, c := range configs {
				opt.logf("table4: %s %d-layer %s", kind, layers, c.name)
				tres, err := core.Train(core.TrainConfig{
					Model: mcfg, Loss: core.LossBCE, BatchSize: batch, Epochs: epochs,
					LR: 0.01, Pipeline: true, Pruning: c.pruning, AggThreads: c.aggThreads,
					Seed: opt.Seed + 23,
				}, trainByDepth[layers])
				if err != nil {
					return nil, err
				}
				per := tres.Total / time.Duration(epochs)
				paper := paperTable4[kind][c.name][layers-1]
				res.Rows = append(res.Rows, Table4Row{
					Model: kind, Layers: layers, Config: c.name,
					PerEpoch: per, PaperSecs: paper,
				})
				rows = append(rows, []string{kind, fmt.Sprint(layers), "AGL+" + c.name,
					fmt.Sprintf("%.3fs", per.Seconds()), fmt.Sprintf("%.2fs", paper)})
			}
		}
	}
	res.Text = "Table 4: time per epoch on PPI (standalone mode)\n" +
		table([]string{"Model", "Layers", "Config", "Time/epoch", "Paper"}, rows)
	return res, nil
}
