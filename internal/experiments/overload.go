package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/serve"
)

// OverloadResult records the traffic-hardening experiment: a server with a
// deliberately small cold-path capacity driven at ~10x saturation by
// deadline-carrying cold attackers while paced warm clients keep scoring.
// It demonstrates graceful degradation — warm traffic is never shed and
// its p99 stays close to the unloaded baseline, overload is answered with
// explicit ShedErrors instead of queueing, no success is ever delivered
// past its deadline, and the flight recorder covers the whole run. It is
// the perf anchor for admission control and deadline propagation — re-run
// it after serve/ changes.
type OverloadResult struct {
	Nodes        int
	WarmClients  int
	Attackers    int
	ColdCapacity int // admission limit (ShedThreshold)

	// Paced warm traffic, before and during the cold-path storm.
	UnloadedP50, UnloadedP99 time.Duration
	LoadedP50, LoadedP99     time.Duration
	WarmRequests             int

	// Attack outcomes. Attempts = OK + Shed + Expired.
	ColdAttempts, ColdOK, ColdShed, ColdExpired int

	// Hard invariants — the experiment fails unless both are zero.
	WarmShed   int // warm requests rejected by admission control
	LateServed int // successes delivered past deadline + grace

	ShedFraction  float64 // ColdShed / ColdAttempts
	DegradedRatio float64 // LoadedP99 / UnloadedP99

	// Flight-recorder coverage of the run.
	FlightSamples int
	FlightSpan    time.Duration

	Text string
}

func (r *OverloadResult) String() string { return r.Text }

// Metrics implements the bench-regression contract (lower is better).
// late_served and warm_shed carry a zero baseline: any occurrence is a
// regression.
func (r *OverloadResult) Metrics() map[string]float64 {
	return map[string]float64{
		"shed_fraction":           r.ShedFraction,
		"degraded_warm_p99_ratio": r.DegradedRatio,
		"late_served":             float64(r.LateServed),
		"warm_shed":               float64(r.WarmShed),
	}
}

// lateGrace pads client-side deadline accounting: the server never hands a
// result past the deadline (wait checks ctx before delivery), but the
// measuring goroutine can sit on the runqueue well after the channel
// receive — tens of milliseconds on a loaded single-core CI box — so
// "late" means beyond deadline+grace.
const lateGrace = 100 * time.Millisecond

// Overload runs the production-hardening load test.
func Overload(opt Options) (*OverloadResult, error) {
	nodes, perPhase, warmClients, attackers := 3000, 600, 4, 80
	pace, flightInterval := 500*time.Microsecond, 150*time.Millisecond
	if opt.Quick {
		nodes, perPhase, warmClients, attackers = 1200, 300, 4, 80
		pace, flightInterval = 300*time.Microsecond, 60*time.Millisecond
	}
	warmDeadline, coldDeadline := 500*time.Millisecond, 30*time.Millisecond

	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: nodes, FeatDim: 16, Seed: opt.Seed + 31})
	if err != nil {
		return nil, err
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 16, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: opt.Seed + 32,
	})
	if err != nil {
		return nil, err
	}
	opt.logf("overload: GraphInfer precompute over %d nodes", nodes)
	inf, err := core.Infer(core.InferConfig{Seed: opt.Seed, TempDir: opt.TempDir, NumReducers: 8, KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		return nil, err
	}

	// 60% of the nodes are warm (embedding in the store); the rest always
	// need a request-time forward pass and form the attack surface.
	ids := ds.G.IDs()
	warmCut := len(ids) * 6 / 10
	warmIDs, coldIDs := ids[:warmCut], ids[warmCut:]
	warmEmb := make(map[int64][]float64, len(warmIDs))
	for _, id := range warmIDs {
		warmEmb[id] = inf.Embeddings[id]
	}
	store, err := serve.NewStore(0, warmEmb)
	if err != nil {
		return nil, err
	}

	flightDir, err := os.MkdirTemp(opt.TempDir, "agl-overload-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(flightDir)
	flightPath := filepath.Join(flightDir, "overload.aglfr")

	// Tiny cold-path capacity so saturation is reachable at bench scale: at
	// most 8 admitted cold requests in flight, batches of 4, a small cache
	// so warm traffic genuinely exercises the store path.
	cfg := serve.Config{
		Seed: opt.Seed, MaxBatch: 4, QueueDepth: 8, ShedThreshold: 8,
		CacheSize: 64, FlightPath: flightPath, FlightInterval: flightInterval,
	}
	srv, err := serve.New(cfg, model, ds.G, store)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	res := &OverloadResult{
		Nodes: nodes, WarmClients: warmClients, Attackers: attackers,
		ColdCapacity: cfg.ShedThreshold, WarmRequests: 2 * perPhase,
	}

	// Phase 1 — unloaded baseline: paced warm traffic, no cold pressure.
	opt.logf("overload: unloaded warm baseline, %d requests", perPhase)
	base, shed, late1, err := pacedWarm(srv, warmIDs[:perPhase], warmClients, pace, warmDeadline)
	if err != nil {
		return nil, err
	}
	res.WarmShed += shed
	res.LateServed += late1
	res.UnloadedP50, res.UnloadedP99 = base.p50(), base.p99()

	// Phase 2 — storm: attackers hammer cold nodes with short deadlines at
	// ~10x the admission capacity while the same paced warm traffic
	// continues on fresh warm ids (no cache cross-talk with phase 1).
	opt.logf("overload: storm phase, %d attackers vs capacity %d", attackers, cfg.ShedThreshold)
	var (
		stop                  atomic.Bool
		nextCold              atomic.Int64
		coldOK, coldShed      atomic.Int64
		coldExpired, coldLate atomic.Int64
		attackErr             atomic.Value
		awg                   sync.WaitGroup
	)
	for a := 0; a < attackers; a++ {
		awg.Add(1)
		go func() {
			defer awg.Done()
			for !stop.Load() {
				id := coldIDs[int(nextCold.Add(1))%len(coldIDs)]
				ctx, cancel := context.WithTimeout(context.Background(), coldDeadline)
				t0 := time.Now()
				_, err := srv.Score(ctx, id)
				elapsed := time.Since(t0)
				cancel()
				switch {
				case err == nil:
					coldOK.Add(1)
					if elapsed > coldDeadline+lateGrace {
						coldLate.Add(1)
					}
				case errors.Is(err, serve.ErrOverloaded):
					coldShed.Add(1)
					// Honor the shed: back off instead of spinning.
					time.Sleep(time.Millisecond)
				case errors.Is(err, context.DeadlineExceeded):
					coldExpired.Add(1)
				default:
					attackErr.Store(err)
					return
				}
				// Think time keeps the offered load far above capacity
				// without parking 10x-capacity goroutines hot on the
				// runqueue (which would skew client-side latency).
				time.Sleep(500 * time.Microsecond)
			}
		}()
	}
	loaded, shed, late, err := pacedWarm(srv, warmIDs[perPhase:2*perPhase], warmClients, pace, warmDeadline)
	stop.Store(true)
	awg.Wait()
	if err != nil {
		return nil, err
	}
	if err, ok := attackErr.Load().(error); ok {
		return nil, err
	}
	res.WarmShed += shed
	res.LateServed += late + int(coldLate.Load())
	res.LoadedP50, res.LoadedP99 = loaded.p50(), loaded.p99()
	res.ColdOK = int(coldOK.Load())
	res.ColdShed = int(coldShed.Load())
	res.ColdExpired = int(coldExpired.Load())
	res.ColdAttempts = res.ColdOK + res.ColdShed + res.ColdExpired
	if res.ColdAttempts > 0 {
		res.ShedFraction = float64(res.ColdShed) / float64(res.ColdAttempts)
	}
	res.DegradedRatio = float64(res.LoadedP99) / math.Max(float64(res.UnloadedP99), 1)

	// Hard invariants: overload must degrade explicitly, not silently.
	if res.WarmShed > 0 {
		return nil, fmt.Errorf("overload: %d warm request(s) shed — warm traffic must never hit admission control", res.WarmShed)
	}
	if res.LateServed > 0 {
		return nil, fmt.Errorf("overload: %d result(s) served past deadline+%s (unloaded warm %d, storm warm %d, storm cold %d)",
			res.LateServed, lateGrace, late1, late, coldLate.Load())
	}
	if res.ColdShed == 0 {
		return nil, fmt.Errorf("overload: no requests shed at %dx cold-path saturation — admission control inert",
			attackers/cfg.ShedThreshold)
	}
	stats := srv.Stats()
	if stats.Shed != int64(res.ColdShed) {
		return nil, fmt.Errorf("overload: server counted %d sheds, clients saw %d", stats.Shed, res.ColdShed)
	}

	// Flight-recorder audit: close flushes the final sample; the file must
	// parse and its per-interval deltas must sum to the server totals —
	// i.e. the recorder covered every request of the run.
	if err := srv.Close(); err != nil {
		return nil, err
	}
	samples, err := serve.ReadFlightFile(flightPath)
	if err != nil {
		return nil, fmt.Errorf("overload: flight file unreadable: %w", err)
	}
	if len(samples) < 2 {
		return nil, fmt.Errorf("overload: flight file holds %d sample(s), want >= 2 over the run", len(samples))
	}
	var ringReqs, ringShed uint64
	for _, s := range samples {
		ringReqs += uint64(s.Requests)
		ringShed += uint64(s.Shed)
	}
	if ringReqs != uint64(stats.Requests+stats.LinkRequests) || ringShed != uint64(stats.Shed) {
		return nil, fmt.Errorf("overload: flight ring covers %d requests / %d sheds, server counted %d / %d",
			ringReqs, ringShed, stats.Requests+stats.LinkRequests, stats.Shed)
	}
	res.FlightSamples = len(samples)
	res.FlightSpan = time.Duration(samples[len(samples)-1].UnixNanos - samples[0].UnixNanos)

	rows := [][]string{
		{"warm unloaded", fmt.Sprintf("%d", perPhase), fmtLatency(res.UnloadedP50), fmtLatency(res.UnloadedP99)},
		{"warm under storm", fmt.Sprintf("%d", perPhase), fmtLatency(res.LoadedP50), fmtLatency(res.LoadedP99)},
	}
	res.Text = fmt.Sprintf(
		"Overload: %d-node graph, cold capacity %d, %d attackers (~%dx), %d warm clients\n%s"+
			"storm: %d cold attempts -> %d served, %d shed (%.0f%%), %d expired at %s deadline\n"+
			"invariants: warm shed %d, served past deadline %d (grace %s)\n"+
			"warm p99 degradation under storm: %.2fx unloaded\n"+
			"flight recorder: %d samples over %s, deltas sum to server totals\n",
		nodes, cfg.ShedThreshold, attackers, attackers/cfg.ShedThreshold, warmClients,
		table([]string{"Warm phase", "Requests", "p50", "p99"}, rows),
		res.ColdAttempts, res.ColdOK, res.ColdShed, 100*res.ShedFraction, res.ColdExpired, coldDeadline,
		res.WarmShed, res.LateServed, lateGrace,
		res.DegradedRatio,
		res.FlightSamples, res.FlightSpan.Round(time.Millisecond))
	return res, nil
}

// latSlice aggregates paced-phase latencies.
type latSlice []time.Duration

func (l latSlice) p50() time.Duration { return l[len(l)/2] }
func (l latSlice) p99() time.Duration { return l[len(l)*99/100] }

// pacedWarm drives deadline-carrying warm traffic at a fixed pace and
// reports sorted latencies plus the shed and late counts (both of which
// the caller treats as invariant violations).
func pacedWarm(srv *serve.Server, ids []int64, clients int, pace, deadline time.Duration) (latSlice, int, int, error) {
	lats := make(latSlice, len(ids))
	var next atomic.Int64
	var shed, late atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				t0 := time.Now()
				_, err := srv.Score(ctx, ids[i])
				elapsed := time.Since(t0)
				cancel()
				if err != nil {
					if errors.Is(err, serve.ErrOverloaded) {
						shed.Add(1)
						continue
					}
					firstErr.Store(fmt.Errorf("warm request for node %d: %w", ids[i], err))
					return
				}
				lats[i] = elapsed
				if elapsed > deadline+lateGrace {
					late.Add(1)
				}
				time.Sleep(pace)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return nil, 0, 0, err
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return lats, int(shed.Load()), int(late.Load()), nil
}
