package experiments

// Paper-reported reference values (AGL, VLDB 2020), kept next to measured
// results so every experiment's output can juxtapose "paper" vs "here".

// PaperTable1 reproduces the paper's Table 1 verbatim: graph scales
// reported by contemporary GML systems.
var PaperTable1 = [][]string{
	{"DGL", "5e8", "unknown"},
	{"PBG", "1.2e8", "2.7e9"},
	{"AliGraph", "4.9e8", "6.8e9"},
	{"PinSage", "3e9", "1.8e10"},
	{"AGL (this system)", "6.23e9", "3.38e11"},
}

// PaperTable2 is the paper's dataset summary.
var PaperTable2 = [][]string{
	{"Cora", "2708", "5429", "1433", "7", "140/500/1000"},
	{"PPI", "56944 (24 graphs)", "818716", "50", "121 (multilabel)", "44906/6514/5524"},
	{"UUG", "6.23e9", "3.38e11", "656", "2", "1.2e8/5e6/1.5e7"},
}

// paperTable3 maps dataset/model to the paper's AGL-column effectiveness.
var paperTable3 = map[string]map[string]float64{
	"cora": {"gcn": 0.811, "sage": 0.827, "gat": 0.830},
	"ppi":  {"gcn": 0.567, "sage": 0.635, "gat": 0.977},
	"uug":  {"gcn": 0.681, "sage": 0.708, "gat": 0.867},
}

// paperTable4 holds the paper's AGL time-per-epoch rows on PPI (seconds),
// indexed by model, then config, then layer count minus one.
var paperTable4 = map[string]map[string][3]float64{
	"gcn": {
		"base":       {0.48, 2.75, 4.10},
		"pruning":    {0.48, 1.93, 3.23},
		"partition":  {0.42, 1.22, 1.60},
		"prune+part": {0.42, 1.13, 1.52},
	},
	"sage": {
		"base":       {0.46, 2.47, 3.94},
		"pruning":    {0.46, 1.67, 2.99},
		"partition":  {0.34, 0.97, 1.39},
		"prune+part": {0.34, 0.88, 1.35},
	},
	"gat": {
		"base":       {4.75, 25.72, 36.86},
		"pruning":    {4.75, 13.88, 20.01},
		"partition":  {4.63, 22.65, 33.45},
		"prune+part": {4.63, 13.73, 18.63},
	},
}

// Paper Table 5 (UUG inference, 1000 workers).
const (
	paperT5OriginalTimeS   = 18214.0
	paperT5OriginalCoreMin = 529256.0
	paperT5OriginalGBMin   = 1707174.0
	paperT5InferTimeS      = 4423.0
	paperT5InferCoreMin    = 267764.0
	paperT5InferGBMin      = 401646.0
)

// Paper Figure 8: near-linear speedup, slope ≈ 0.8 (78x at 100 workers).
const paperFig8Slope = 0.8
