package experiments

import (
	"fmt"
	"runtime"
	"time"

	"agl/internal/mapreduce"
)

// ShuffleResult records the skewed-key shuffle baseline: one hub key whose
// fan-in dwarfs every other group, reduced once on the streaming iterator
// contract and once through CollectValues (the materializing escape
// hatch). It is the perf anchor for the engine's bounded-memory shuffle —
// re-run it after engine changes to track the trajectory.
type ShuffleResult struct {
	HubValues      int
	ValueBytes     int
	StreamWall     time.Duration
	CollectWall    time.Duration
	StreamAllocs   uint64 // heap objects allocated during the streamed run
	CollectAllocs  uint64
	PeakGroupBytes int64
	BytesShuffled  int64
	Text           string
}

func (r *ShuffleResult) String() string { return r.Text }

// Shuffle runs the skewed-key shuffle benchmark: every record lands on one
// hub key, the pathological fan-in pattern of AGL's industrial graphs
// (paper §3.2.2). Both passes produce identical reduce output; the
// comparison is pure engine cost.
func Shuffle(opt Options) (*ShuffleResult, error) {
	hubValues, valueBytes := 200_000, 128
	if opt.Quick {
		hubValues = 20_000
	}
	payload := make([]byte, valueBytes)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	var in mapreduce.MemInput
	for i := 0; i < hubValues; i++ {
		in = append(in, payload)
	}
	mapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		return emit(mapreduce.KeyValue{Key: "hub", Value: rec})
	})
	streaming := mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		var n, total int64
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n++
			total += int64(len(v))
		}
		if err := values.Err(); err != nil {
			return err
		}
		return emit(mapreduce.KeyValue{Key: key, Value: []byte(fmt.Sprintf("%d/%d", n, total))})
	})
	collected := mapreduce.ReducerFunc(func(key string, values mapreduce.ValueIter, emit mapreduce.Emit) error {
		vals, err := mapreduce.CollectValues(values)
		if err != nil {
			return err
		}
		var total int64
		for _, v := range vals {
			total += int64(len(v))
		}
		return emit(mapreduce.KeyValue{Key: key, Value: []byte(fmt.Sprintf("%d/%d", len(vals), total))})
	})

	cfg := mapreduce.Config{Name: "shuffle-skew", TempDir: opt.TempDir, NumMappers: 4, NumReducers: 2}
	run := func(r mapreduce.Reducer) (*mapreduce.Stats, uint64, time.Duration, error) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		stats, err := mapreduce.Run(cfg, mapper, r, in, mapreduce.NewMemOutput())
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, 0, 0, err
		}
		return stats, after.Mallocs - before.Mallocs, wall, nil
	}

	opt.logf("shuffle: streaming reduce of %d-value hub key", hubValues)
	sStats, sAllocs, sWall, err := run(streaming)
	if err != nil {
		return nil, err
	}
	opt.logf("shuffle: collected reduce of %d-value hub key", hubValues)
	_, cAllocs, cWall, err := run(collected)
	if err != nil {
		return nil, err
	}

	res := &ShuffleResult{
		HubValues: hubValues, ValueBytes: valueBytes,
		StreamWall: sWall, CollectWall: cWall,
		StreamAllocs: sAllocs, CollectAllocs: cAllocs,
		PeakGroupBytes: sStats.PeakGroupBytes,
		BytesShuffled:  sStats.BytesShuffled,
	}
	rows := [][]string{
		{"streamed", fmt.Sprintf("%.3fs", sWall.Seconds()), fmt.Sprintf("%d", sAllocs)},
		{"collected", fmt.Sprintf("%.3fs", cWall.Seconds()), fmt.Sprintf("%d", cAllocs)},
	}
	res.Text = fmt.Sprintf(
		"Skewed shuffle: one hub key, %d values x %dB (peak group %d bytes, shuffle %d bytes)\n%s",
		hubValues, valueBytes, res.PeakGroupBytes, res.BytesShuffled,
		table([]string{"Reduce path", "Wall", "Heap allocs"}, rows))
	return res, nil
}
