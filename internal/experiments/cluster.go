package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/core"
	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/mapreduce"
	"agl/internal/nn"
	"agl/internal/placement"
	"agl/internal/serve"
	"agl/internal/tensor"
)

// clusterScalingFloor is the cold-path throughput scaling a 3-replica
// cluster must reach over a single replica when the host genuinely has a
// core per replica. Below it, scaling_shortfall_pct goes positive and the
// bench-regression guard trips.
const clusterScalingFloor = 1.6

// ClusterResult records the sharded-serving experiment: a 3-replica
// loopback cluster with the warm tier partitioned by hash slot, measured
// for routed warm latency, scatter-gather link latency, cold-path
// throughput scaling against a single replica, and a live slot migration
// under read traffic. Correctness is a hard invariant, not a metric: every
// routed answer — including every answer served while the migration was in
// flight — must be bit-identical to an unsharded reference server, or the
// experiment fails.
type ClusterResult struct {
	Nodes    int
	Replicas int
	Slots    int

	WarmP50, WarmP99 time.Duration // routed warm scores (local + proxied mix)
	ColdP50          time.Duration // routed cold scores
	LinkP50, LinkP99 time.Duration // cross-shard scatter-gather links

	// Cold-path throughput, single replica vs the cluster, measured with
	// tensor parallelism pinned to 1 so the only speedup source is the
	// replicas' independent batchers.
	SingleColdPerSec  float64
	ClusterColdPerSec float64
	Scaling           float64 // ClusterColdPerSec / SingleColdPerSec
	// ScalingGated is set when the host has fewer cores than replicas —
	// the shortfall metric reports 0 because the speedup is physically
	// unreachable, not regressed.
	ScalingGated bool

	// Live migration under traffic.
	MigrationPause        time.Duration
	MigrationRowsMoved    int
	MigrationEpoch        uint64
	MigrationProbes       int // reads served during the migration window
	MigrationWrongAnswers int // must be zero

	Text string
}

func (r *ClusterResult) String() string { return r.Text }

// Metrics implements the bench-regression contract (lower is better).
// migration_wrong_answers carries a zero baseline: any occurrence is a
// regression (the experiment also hard-fails on it). scaling_shortfall_pct
// is how far below the 1.6x floor the 1->3 replica cold throughput scaling
// landed, 0 when met or when the host lacks the cores to assess it.
func (r *ClusterResult) Metrics() map[string]float64 {
	shortfall := 0.0
	if !r.ScalingGated && r.Scaling < clusterScalingFloor {
		shortfall = (clusterScalingFloor - r.Scaling) / clusterScalingFloor * 100
	}
	return map[string]float64{
		"warm_p50_ns":             float64(r.WarmP50),
		"cold_p50_ns":             float64(r.ColdP50),
		"link_p99_ns":             float64(r.LinkP99),
		"migration_pause_ms":      float64(r.MigrationPause) / float64(time.Millisecond),
		"migration_wrong_answers": float64(r.MigrationWrongAnswers),
		"scaling_shortfall_pct":   shortfall,
	}
}

// clusterHarness is the in-process 3-replica fixture plus the unsharded
// reference everything is checked against.
type clusterHarness struct {
	ds    *datagen.Dataset
	model *gnn.Model    // the trained model (each server gets a clone)
	ref   *serve.Server // full warm store, the bit-exactness oracle
	reps  []*serve.Replica
	warm  []int64 // ids with a warm row somewhere in the cluster
	cold  []int64 // ids always needing a request-time forward pass
	slots int
}

func (h *clusterHarness) close() {
	for _, r := range h.reps {
		r.Close()
	}
	if h.ref != nil {
		h.ref.Close()
	}
}

func cloneModel(m *gnn.Model) (*gnn.Model, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return gnn.Load(&buf)
}

// buildClusterHarness assembles the fixture: one reference server holding
// every warm row, and n replicas each holding only the slots the even
// placement table assigns them.
func buildClusterHarness(opt Options, n, nodes, slots int) (*clusterHarness, error) {
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: nodes, FeatDim: 12, Seed: opt.Seed + 41})
	if err != nil {
		return nil, err
	}
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: ds.G.FeatureDim(), Hidden: 12, Classes: 1,
		Layers: 2, Act: nn.ActTanh, Seed: opt.Seed + 42, EdgeHead: gnn.EdgeHeadBilinear,
	})
	if err != nil {
		return nil, err
	}
	opt.logf("cluster: GraphInfer precompute over %d nodes", nodes)
	inf, err := core.Infer(core.InferConfig{Seed: opt.Seed, TempDir: opt.TempDir, NumReducers: 8, KeepEmbeddings: true},
		model, mapreduce.MemInput(core.TableRecords(ds.G)))
	if err != nil {
		return nil, err
	}

	// 70% of the nodes are warm; the remainder is the cold working set for
	// the throughput-scaling phases.
	ids := append([]int64(nil), ds.G.IDs()...)
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	warmCut := len(ids) * 7 / 10
	h := &clusterHarness{ds: ds, warm: ids[:warmCut], cold: ids[warmCut:], slots: slots}
	warmEmb := make(map[int64][]float64, warmCut)
	for _, id := range h.warm {
		warmEmb[id] = inf.Embeddings[id]
	}

	refStore, err := serve.NewStore(0, warmEmb)
	if err != nil {
		return nil, err
	}
	refModel, err := cloneModel(model)
	if err != nil {
		return nil, err
	}
	h.model = model
	if h.ref, err = serve.New(serve.Config{Seed: opt.Seed}, refModel, ds.G, refStore); err != nil {
		return nil, err
	}

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		mi, err := cloneModel(model)
		if err != nil {
			h.close()
			return nil, err
		}
		srv, err := serve.New(serve.Config{Seed: opt.Seed}, mi, ds.G, nil)
		if err != nil {
			h.close()
			return nil, err
		}
		rep, err := serve.NewReplica(i, srv, "127.0.0.1:0")
		if err != nil {
			srv.Close()
			h.close()
			return nil, err
		}
		h.reps = append(h.reps, rep)
		addrs[i] = rep.Addr()
	}
	ptab, err := placement.Even(addrs, slots)
	if err != nil {
		h.close()
		return nil, err
	}
	// Partition the warm tier: each replica installs exactly its slots.
	for i, rep := range h.reps {
		shard := make(map[int64][]float64)
		for id, emb := range warmEmb {
			if ptab.OwnerOf(id) == i {
				shard[id] = emb
			}
		}
		rep.Server().InstallRows(serve.FloatRows(shard))
		if err := rep.Join(ptab); err != nil {
			h.close()
			return nil, err
		}
	}
	return h, nil
}

// drive scores every id through pick(i)'s routed path, asserts bit-exact
// agreement with the reference, and returns sorted latencies.
func (h *clusterHarness) drive(ids []int64, clients int, pick func(i int) *serve.Replica) (latSlice, error) {
	lats := make(latSlice, len(ids))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				want, err := h.ref.Score(context.Background(), ids[i])
				if err != nil {
					firstErr.Store(fmt.Errorf("reference score for node %d: %w", ids[i], err))
					return
				}
				t0 := time.Now()
				got, err := pick(i).Score(context.Background(), ids[i])
				lats[i] = time.Since(t0)
				if err != nil {
					firstErr.Store(fmt.Errorf("routed score for node %d: %w", ids[i], err))
					return
				}
				if !scoresBitEqual(got, want) {
					firstErr.Store(fmt.Errorf("routed score for node %d diverged from reference", ids[i]))
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return nil, err
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return lats, nil
}

func scoresBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scoresClose is the cold-path contract (the same 1e-9 the incremental
// consistency suite uses): AssembleBatch dedupes overlapping subgraphs
// across batchmates, so a cold answer's floating-point summation order
// depends on micro-batch composition — equal to the last ulp is not
// guaranteed, equal to 1e-9 is.
func scoresClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

// Cluster runs the sharded multi-replica serving experiment.
func Cluster(opt Options) (*ClusterResult, error) {
	const replicas = 3
	nodes, slots, probeClients := 2400, 64, 6
	if opt.Quick {
		nodes = 900
	}

	h, err := buildClusterHarness(opt, replicas, nodes, slots)
	if err != nil {
		return nil, err
	}
	defer h.close()
	res := &ClusterResult{Nodes: nodes, Replicas: replicas, Slots: slots}
	entry := func(i int) *serve.Replica { return h.reps[i%replicas] }

	// Phase 1 — routed warm scores. Entry replica rotates, so roughly 2/3
	// of the requests proxy one RPC hop to the owner; all must be
	// bit-identical to the unsharded reference.
	warmN := len(h.warm)
	if warmN > 600 {
		warmN = 600
	}
	opt.logf("cluster: routed warm phase, %d requests over %d replicas", warmN, replicas)
	warmLats, err := h.drive(h.warm[:warmN], probeClients, entry)
	if err != nil {
		return nil, err
	}
	res.WarmP50, res.WarmP99 = warmLats.p50(), warmLats.p99()

	// Phase 2 — cross-shard links: scatter-gather the two endpoint
	// embeddings, score the pair locally at the entry replica.
	type pair struct{ u, v int64 }
	var pairs []pair
	ptab := h.reps[0].Table()
	for i := 0; i+1 < warmN && len(pairs) < 300; i++ {
		u, v := h.warm[i], h.warm[i+1]
		if ptab.OwnerOf(u) != ptab.OwnerOf(v) { // genuinely cross-shard
			pairs = append(pairs, pair{u, v})
		}
	}
	opt.logf("cluster: scatter-gather link phase, %d cross-shard pairs", len(pairs))
	linkLats := make(latSlice, len(pairs))
	for i, p := range pairs {
		want, err := h.ref.ScoreLink(context.Background(), p.u, p.v)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		got, err := entry(i).ScoreLink(context.Background(), p.u, p.v)
		linkLats[i] = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("cluster link (%d,%d): %w", p.u, p.v, err)
		}
		if got != want {
			return nil, fmt.Errorf("cluster link (%d,%d) diverged from reference", p.u, p.v)
		}
	}
	sort.Slice(linkLats, func(a, b int) bool { return linkLats[a] < linkLats[b] })
	res.LinkP50, res.LinkP99 = linkLats.p50(), linkLats.p99()

	// Phase 3 — cold-path throughput scaling. Tensor parallelism pinned to
	// 1 so a single replica cannot hide its one batcher behind intra-op
	// threads; the cluster's edge is purely its replicas' independent
	// batchers. Clients route straight to the owner (client-side table
	// routing, the deployment's steady state) so the measurement is
	// compute scaling, not proxy-hop accounting.
	singleModel, err := cloneModel(h.model)
	if err != nil {
		return nil, err
	}
	single, err := serve.New(serve.Config{Seed: opt.Seed}, singleModel, h.ds.G, nil)
	if err != nil {
		return nil, err
	}
	defer single.Close()

	coldN := len(h.cold) / 2 * 2 // even split between the two phases
	singleIDs, clusterIDs := h.cold[:coldN/2], h.cold[coldN/2:coldN]
	coldDrive := func(ids []int64, score func(id int64) ([]float64, error)) (latSlice, time.Duration, error) {
		lats := make(latSlice, len(ids))
		var next atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < probeClients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ids) {
						return
					}
					s0 := time.Now()
					if _, err := score(ids[i]); err != nil {
						firstErr.Store(fmt.Errorf("cold score for node %d: %w", ids[i], err))
						return
					}
					lats[i] = time.Since(s0)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)
		if err, ok := firstErr.Load().(error); ok {
			return nil, 0, err
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats, elapsed, nil
	}

	prev := tensor.SetParallelism(1)
	opt.logf("cluster: cold scaling phase, %d requests single / %d cluster", len(singleIDs), len(clusterIDs))
	_, singleElapsed, err := coldDrive(singleIDs, func(id int64) ([]float64, error) {
		return single.Score(context.Background(), id)
	})
	if err != nil {
		tensor.SetParallelism(prev)
		return nil, err
	}
	coldLats, clusterElapsed, err := coldDrive(clusterIDs, func(id int64) ([]float64, error) {
		return h.reps[ptab.OwnerOf(id)].Score(context.Background(), id)
	})
	tensor.SetParallelism(prev)
	if err != nil {
		return nil, err
	}
	res.ColdP50 = coldLats.p50()
	res.SingleColdPerSec = float64(len(singleIDs)) / singleElapsed.Seconds()
	res.ClusterColdPerSec = float64(len(clusterIDs)) / clusterElapsed.Seconds()
	if res.SingleColdPerSec > 0 {
		res.Scaling = res.ClusterColdPerSec / res.SingleColdPerSec
	}
	res.ScalingGated = runtime.NumCPU() < replicas
	if !res.ScalingGated && res.Scaling < clusterScalingFloor {
		opt.logf("cluster: WARNING cold scaling %.2fx below the %.1fx floor", res.Scaling, clusterScalingFloor)
	}

	// Sample the cluster's cold answers against the reference (full
	// verification already ran warm; cold answers must match too).
	for i := 0; i < len(clusterIDs) && i < 20; i++ {
		id := clusterIDs[i]
		want, err := h.ref.Score(context.Background(), id)
		if err != nil {
			return nil, err
		}
		got, err := h.reps[ptab.OwnerOf(id)].Score(context.Background(), id)
		if err != nil {
			return nil, err
		}
		if !scoresClose(got, want) {
			return nil, fmt.Errorf("cluster cold score for node %d diverged from reference", id)
		}
	}

	// Phase 4 — live slot migration under read traffic. Probes pin their
	// expected scores up front (no mutations are in flight), hammer routed
	// reads through every replica while one slot moves 0 -> 1, and any
	// answer differing from the pinned expectation is a wrong answer — the
	// hard invariant is zero.
	var slot = -1
	var probes []int64
	for _, s := range ptab.SlotsOf(0) {
		probes = probes[:0]
		for _, id := range h.warm {
			if placement.SlotOf(id, slots) == s {
				probes = append(probes, id)
			}
		}
		if len(probes) >= 3 {
			slot = s
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("cluster: no replica-0 slot holds >= 3 warm rows (%d warm ids, %d slots)", len(h.warm), slots)
	}
	// A few out-of-slot probes keep the read mix realistic.
	probes = append(probes, h.warm[len(h.warm)-1], h.warm[len(h.warm)-2])
	expected := make(map[int64][]float64, len(probes))
	for _, id := range probes {
		want, err := h.ref.Score(context.Background(), id)
		if err != nil {
			return nil, err
		}
		expected[id] = want
	}

	opt.logf("cluster: migrating slot %d (0 -> 1) under traffic, %d probe ids", slot, len(probes))
	var (
		wrong, served atomic.Int64
		stop          = make(chan struct{})
		twg           sync.WaitGroup
	)
	for c := 0; c < probeClients; c++ {
		twg.Add(1)
		go func(c int) {
			defer twg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := probes[(c+i)%len(probes)]
				got, err := h.reps[(c+i)%replicas].Score(context.Background(), id)
				if err == nil {
					served.Add(1)
					if !scoresBitEqual(got, expected[id]) {
						wrong.Add(1)
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(c)
	}
	// Let traffic establish before, and linger after, the migration.
	time.Sleep(20 * time.Millisecond)
	mig, err := h.reps[0].Migrate(context.Background(), slot, 1)
	if err != nil {
		close(stop)
		twg.Wait()
		return nil, fmt.Errorf("cluster: migrate slot %d: %w", slot, err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	twg.Wait()

	res.MigrationPause = mig.Pause
	res.MigrationRowsMoved = mig.RowsMoved
	res.MigrationEpoch = mig.Epoch
	res.MigrationProbes = int(served.Load())
	res.MigrationWrongAnswers = int(wrong.Load())
	if res.MigrationWrongAnswers > 0 {
		return nil, fmt.Errorf("cluster: %d of %d answers served during live migration diverged from reference",
			res.MigrationWrongAnswers, res.MigrationProbes)
	}
	if res.MigrationProbes == 0 {
		return nil, fmt.Errorf("cluster: no reads served during the migration window — zero-wrong-answers claim is vacuous")
	}

	scalingNote := fmt.Sprintf("%.2fx (floor %.1fx)", res.Scaling, clusterScalingFloor)
	if res.ScalingGated {
		scalingNote = fmt.Sprintf("%.2fx (floor waived: %d replicas on %d CPU(s))",
			res.Scaling, replicas, runtime.NumCPU())
	}
	rows := [][]string{
		{"warm routed", fmt.Sprintf("%d", warmN), fmtLatency(res.WarmP50), fmtLatency(res.WarmP99)},
		{"link scatter-gather", fmt.Sprintf("%d", len(pairs)), fmtLatency(res.LinkP50), fmtLatency(res.LinkP99)},
		{"cold routed", fmt.Sprintf("%d", len(clusterIDs)), fmtLatency(res.ColdP50), "-"},
	}
	res.Text = fmt.Sprintf(
		"Cluster: %d-node graph over %d replicas, %d hash slots, warm tier partitioned\n%s"+
			"cold throughput: single %.0f/s, cluster %.0f/s -> scaling %s\n"+
			"live migration: slot %d moved %d rows 0->1 at epoch %d, write pause %s\n"+
			"correctness: %d reads served during migration, %d wrong answers (warm/link/migration bit-exact, cold within 1e-9 of unsharded reference)\n",
		nodes, replicas, slots,
		table([]string{"Routed phase", "Requests", "p50", "p99"}, rows),
		res.SingleColdPerSec, res.ClusterColdPerSec, scalingNote,
		slot, res.MigrationRowsMoved, res.MigrationEpoch, res.MigrationPause.Round(time.Microsecond),
		res.MigrationProbes, res.MigrationWrongAnswers)
	return res, nil
}
