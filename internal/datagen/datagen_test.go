package datagen

import (
	"testing"
)

func TestCoraShape(t *testing.T) {
	d, err := Cora(CoraConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := d.G.Stats()
	if s.Nodes != 2708 {
		t.Fatalf("nodes=%d", s.Nodes)
	}
	// Undirected: 2x the undirected count (minus any mirrored duplicates).
	if s.Edges < 5429 || s.Edges > 2*5429 {
		t.Fatalf("edges=%d", s.Edges)
	}
	if s.FeatureDim != 1433 || d.NumClasses != 7 {
		t.Fatalf("feat=%d classes=%d", s.FeatureDim, d.NumClasses)
	}
	if len(d.Train) != 140 || len(d.Val) != 500 || len(d.Test) != 1000 {
		t.Fatalf("split %d/%d/%d", len(d.Train), len(d.Val), len(d.Test))
	}
	// Balanced train split: 20 per class.
	perClass := map[int]int{}
	for _, id := range d.Train {
		perClass[d.LabelOf(id)]++
	}
	for c := 0; c < 7; c++ {
		if perClass[c] != 20 {
			t.Fatalf("class %d has %d train nodes", c, perClass[c])
		}
	}
}

func TestCoraDeterministic(t *testing.T) {
	a, _ := Cora(CoraConfig{Nodes: 200, Edges: 400, FeatDim: 70, Seed: 5})
	b, _ := Cora(CoraConfig{Nodes: 200, Edges: 400, FeatDim: 70, Seed: 5})
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("nondeterministic edges")
	}
	for i := range a.G.Nodes {
		for j := range a.G.Nodes[i].Feat {
			if a.G.Nodes[i].Feat[j] != b.G.Nodes[i].Feat[j] {
				t.Fatal("nondeterministic features")
			}
		}
	}
}

func TestCoraHomophily(t *testing.T) {
	d, _ := Cora(CoraConfig{Seed: 2})
	intra := 0
	for _, e := range d.G.Edges {
		if d.LabelOf(e.Src) == d.LabelOf(e.Dst) {
			intra++
		}
	}
	frac := float64(intra) / float64(d.G.NumEdges())
	if frac < 0.6 {
		t.Fatalf("homophily %v too low — GNNs would not learn", frac)
	}
}

func TestPPIShape(t *testing.T) {
	d, err := PPI(PPIConfig{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !d.MultiLabel || d.LabelVecs == nil {
		t.Fatal("PPI must be multilabel")
	}
	if d.LabelVecs.Cols != 121 {
		t.Fatalf("labels=%d", d.LabelVecs.Cols)
	}
	if d.G.FeatureDim() != 50 {
		t.Fatalf("feat=%d", d.G.FeatureDim())
	}
	// 20/2/2 graph split.
	if len(d.Train) == 0 || len(d.Val) == 0 || len(d.Test) == 0 {
		t.Fatal("empty split")
	}
	ratio := float64(len(d.Train)) / float64(len(d.Val))
	if ratio < 8 || ratio > 12 {
		t.Fatalf("train/val ratio %v, want ~10 (20 vs 2 graphs)", ratio)
	}
	// Label vectors must be non-trivial: some on, some off.
	var on, total float64
	for _, v := range d.LabelVecs.Data {
		on += v
		total++
	}
	if on == 0 || on == total {
		t.Fatal("degenerate labels")
	}
}

func TestPPISplitsDisjoint(t *testing.T) {
	d, _ := PPI(PPIConfig{Scale: 0.03, Seed: 4})
	seen := map[int64]string{}
	add := func(ids []int64, name string) {
		for _, id := range ids {
			if prev, ok := seen[id]; ok {
				t.Fatalf("node %d in both %s and %s", id, prev, name)
			}
			seen[id] = name
		}
	}
	add(d.Train, "train")
	add(d.Val, "val")
	add(d.Test, "test")
}

func TestUUGShapeAndSkew(t *testing.T) {
	d, err := UUG(UUGConfig{Nodes: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := d.G.Stats()
	if s.Nodes != 5000 {
		t.Fatalf("nodes=%d", s.Nodes)
	}
	if d.NumClasses != 2 {
		t.Fatalf("classes=%d", d.NumClasses)
	}
	// Preferential attachment must produce hub nodes: max degree far above
	// the mean.
	if float64(s.MaxInDegree) < 8*s.MeanInDegree {
		t.Fatalf("no degree skew: max=%d mean=%v", s.MaxInDegree, s.MeanInDegree)
	}
	// Paper split ratios over the labeled pool: train ≈ 80%, test ≈ 10%.
	labeled := len(d.Train) + len(d.Val) + len(d.Test)
	if labeled == 0 {
		t.Fatal("no labeled nodes")
	}
	trainFrac := float64(len(d.Train)) / float64(labeled)
	if trainFrac < 0.7 || trainFrac > 0.95 {
		t.Fatalf("train fraction %v", trainFrac)
	}
}

func TestUUGWeightsVaried(t *testing.T) {
	d, _ := UUG(UUGConfig{Nodes: 2000, Seed: 6})
	weights := map[float64]bool{}
	for _, e := range d.G.Edges {
		weights[e.Weight] = true
	}
	if len(weights) < 3 {
		t.Fatalf("edge weights not varied: %v", weights)
	}
}

func TestUUGClassBalance(t *testing.T) {
	d, _ := UUG(UUGConfig{Nodes: 4000, Seed: 7})
	count := [2]int{}
	for _, c := range d.Labels {
		count[c]++
	}
	frac := float64(count[0]) / float64(count[0]+count[1])
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("class imbalance: %v", frac)
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	d, _ := UUG(UUGConfig{Nodes: 500, Seed: 8})
	if d.Summary() == "" {
		t.Fatal("empty summary")
	}
}
