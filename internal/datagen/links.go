package datagen

import (
	"fmt"
	"math/rand"

	"agl/internal/graph"
	"agl/internal/wire"
)

// LinkConfig parameterizes held-out-edge link-prediction splits over any
// generated dataset (Cora/PPI/UUG). Zero values take sensible defaults.
type LinkConfig struct {
	// TestFrac is the fraction of edges held out for evaluation
	// (default 0.1). Reciprocal edge pairs are held out together — leaving
	// (v,u) in the training graph while testing (u,v) would leak the
	// answer through the reverse edge.
	TestFrac float64
	// NegPerPos is the number of sampled negative pairs per held-out
	// positive (default 1). Negatives are uniform non-edges.
	NegPerPos int
	// MaxTrainPairs caps the positive training pairs (0 = every remaining
	// edge). Training negatives are sampled at batch-assembly time, not
	// here.
	MaxTrainPairs int
	Seed          int64
}

// Validate rejects nonsensical link-split parameters.
func (c LinkConfig) Validate() error {
	if c.TestFrac < 0 || c.TestFrac >= 1 {
		return fmt.Errorf("datagen: LinkConfig.TestFrac must be in [0, 1) (0 selects the default), got %v", c.TestFrac)
	}
	if c.NegPerPos < 0 {
		return fmt.Errorf("datagen: LinkConfig.NegPerPos must be >= 1 (0 selects 1), got %d", c.NegPerPos)
	}
	if c.MaxTrainPairs < 0 {
		return fmt.Errorf("datagen: LinkConfig.MaxTrainPairs must be >= 0 (0 keeps all), got %d", c.MaxTrainPairs)
	}
	return nil
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.TestFrac == 0 {
		c.TestFrac = 0.1
	}
	if c.NegPerPos == 0 {
		c.NegPerPos = 1
	}
	return c
}

// LinkDataset is a held-out-edge split for link prediction: the training
// graph with the held-out edges removed, positive training pairs, and a
// test set of held-out positives plus sampled negatives.
type LinkDataset struct {
	Name string
	// G is the training graph: ds.G minus the held-out edges (both
	// directions of a reciprocal pair). Flatten, Infer and Serve must all
	// run on this graph, never the original, or the held-out edges leak.
	G *graph.Graph
	// Train holds positive (label 1) training pairs — remaining edges.
	Train []wire.EdgeTarget
	// Test holds held-out positives (label 1) and sampled non-edge
	// negatives (label 0).
	Test []wire.EdgeTarget
}

// Summary renders split statistics.
func (l *LinkDataset) Summary() string {
	pos := 0
	for _, p := range l.Test {
		if p.Label == 1 {
			pos++
		}
	}
	return fmt.Sprintf("%s: train-graph edges=%d train-pairs=%d test-pos=%d test-neg=%d",
		l.Name, l.G.NumEdges(), len(l.Train), pos, len(l.Test)-pos)
}

// Links builds a held-out-edge link-prediction split from a generated
// dataset. Undirected/reciprocal structure is respected: an unordered pair
// is held out atomically, so the training graph carries no direction of a
// test edge.
func Links(ds *Dataset, cfg LinkConfig) (*LinkDataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Group directed edges by unordered endpoint pair.
	type pairKey [2]int64
	unordered := func(a, b int64) pairKey {
		if a > b {
			a, b = b, a
		}
		return pairKey{a, b}
	}
	groups := make(map[pairKey][]int)
	var order []pairKey
	exists := make(map[[2]int64]bool, len(ds.G.Edges))
	for i, e := range ds.G.Edges {
		k := unordered(e.Src, e.Dst)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
		exists[[2]int64{e.Src, e.Dst}] = true
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	wantHeld := int(cfg.TestFrac * float64(len(ds.G.Edges)))
	held := make(map[int]bool)
	var testPos []wire.EdgeTarget
	for _, k := range order {
		if len(held) >= wantHeld {
			break
		}
		idxs := groups[k]
		for _, i := range idxs {
			held[i] = true
		}
		// One canonical direction per held-out pair becomes the test
		// positive; scoring the reverse would double-count the same event.
		e := ds.G.Edges[idxs[0]]
		testPos = append(testPos, wire.EdgeTarget{Src: e.Src, Dst: e.Dst, Label: 1})
	}
	if len(testPos) == 0 {
		return nil, fmt.Errorf("datagen: link split held out no edges (graph has %d, TestFrac %v)",
			len(ds.G.Edges), cfg.TestFrac)
	}

	var keep []graph.Edge
	var train []wire.EdgeTarget
	for i, e := range ds.G.Edges {
		if held[i] {
			continue
		}
		keep = append(keep, e)
		train = append(train, wire.EdgeTarget{Src: e.Src, Dst: e.Dst, Label: 1})
	}
	if cfg.MaxTrainPairs > 0 && len(train) > cfg.MaxTrainPairs {
		rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
		train = train[:cfg.MaxTrainPairs]
	}
	trainG, err := graph.Build(ds.G.Nodes, keep)
	if err != nil {
		return nil, fmt.Errorf("datagen: link split training graph: %w", err)
	}

	// Uniform non-edge negatives for the test set.
	ids := ds.G.IDs()
	test := append([]wire.EdgeTarget(nil), testPos...)
	wantNeg := cfg.NegPerPos * len(testPos)
	for tries := 0; len(test)-len(testPos) < wantNeg && tries < 100*wantNeg; tries++ {
		s := ids[rng.Intn(len(ids))]
		d := ids[rng.Intn(len(ids))]
		if s == d || exists[[2]int64{s, d}] || exists[[2]int64{d, s}] {
			continue
		}
		test = append(test, wire.EdgeTarget{Src: s, Dst: d, Label: 0})
	}
	return &LinkDataset{Name: ds.Name + "-links", G: trainG, Train: train, Test: test}, nil
}
