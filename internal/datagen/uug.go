package datagen

import (
	"math/rand"

	"agl/internal/graph"
)

// UUGConfig parameterizes the User-User-Graph generator, the stand-in for
// Alipay's 6.23e9-node social graph. Zero values take a laptop-scale
// default; benches raise Nodes.
type UUGConfig struct {
	Nodes        int     // default 20000
	AttachEdges  int     // preferential-attachment edges per new node; default 3
	FeatDim      int     // default 64 (paper: 656)
	Homophily    float64 // probability an attachment prefers same-class hubs; default 0.85
	LabeledFrac  float64 // fraction of nodes with labels; default 0.3
	ReciprocalP  float64 // probability an edge is mirrored (mutual follow); default 0.7
	Seed         int64
	FeatureNoise float64 // default 1.0
	// EdgeFeatDim, when > 0, attaches per-edge features: a one-hot
	// interaction channel (transfer/message/red-packet/...) over the first
	// EdgeFeatDim−1 dims plus a normalized interaction strength in the
	// last dim. Edge-feature-aware models (GAT with Config.EdgeDim) can
	// then attend over interaction types.
	EdgeFeatDim int
}

// UUG generates a power-law social graph via preferential attachment with
// class-biased attachment (homophily). Degree skew produces genuine hub
// nodes, which is what exercises GraphFlat's re-indexing and sampling.
// Edge weights model interaction counts (1..5), giving weighted sampling
// something to bite on. Labels are binary; features are class-conditioned
// Gaussians so both feature and structure signal exist.
//
// Of the labeled nodes, 80% are training, 3.3% validation and 10% test,
// matching the paper's UUG ratios (1.2e8 / 5e6 / 1.5e7 of 1.5e8 labeled).
func UUG(cfg UUGConfig) (*Dataset, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 20000
	}
	if cfg.AttachEdges == 0 {
		cfg.AttachEdges = 3
	}
	if cfg.FeatDim == 0 {
		cfg.FeatDim = 64
	}
	if cfg.Homophily == 0 {
		cfg.Homophily = 0.85
	}
	if cfg.LabeledFrac == 0 {
		cfg.LabeledFrac = 0.3
	}
	if cfg.ReciprocalP == 0 {
		cfg.ReciprocalP = 0.7
	}
	if cfg.FeatureNoise == 0 {
		cfg.FeatureNoise = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Class means.
	means := make([][]float64, 2)
	for c := range means {
		m := make([]float64, cfg.FeatDim)
		for j := range m {
			m[j] = rng.NormFloat64() * 0.8
		}
		means[c] = m
	}

	labels := make([]int, cfg.Nodes)
	nodes := make([]graph.Node, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		c := rng.Intn(2)
		labels[i] = c
		feat := make([]float64, cfg.FeatDim)
		for j := range feat {
			feat[j] = means[c][j] + cfg.FeatureNoise*rng.NormFloat64()
		}
		nodes[i] = graph.Node{ID: int64(i), Feat: feat}
	}

	// Preferential attachment with homophily: targets are drawn from a
	// repeated-endpoint list (classic BA trick), optionally restricted to
	// the new node's class.
	var edges []graph.Edge
	endpointsByClass := [2][]int{{}, {}}
	endpointsAll := make([]int, 0, cfg.Nodes*cfg.AttachEdges*2)
	seed0 := cfg.AttachEdges + 1
	for i := 0; i < seed0 && i < cfg.Nodes; i++ {
		endpointsAll = append(endpointsAll, i)
		endpointsByClass[labels[i]] = append(endpointsByClass[labels[i]], i)
	}
	mkEdgeFeat := func(w float64) []float64 {
		if cfg.EdgeFeatDim <= 0 {
			return nil
		}
		f := make([]float64, cfg.EdgeFeatDim)
		if cfg.EdgeFeatDim > 1 {
			f[rng.Intn(cfg.EdgeFeatDim-1)] = 1
		}
		f[cfg.EdgeFeatDim-1] = w / 5
		return f
	}
	addEdge := func(src, dst int) {
		w := float64(1 + rng.Intn(5))
		edges = append(edges, graph.Edge{Src: int64(src), Dst: int64(dst), Weight: w, Feat: mkEdgeFeat(w)})
		if rng.Float64() < cfg.ReciprocalP {
			edges = append(edges, graph.Edge{Src: int64(dst), Dst: int64(src), Weight: w, Feat: mkEdgeFeat(w)})
		}
		endpointsAll = append(endpointsAll, src, dst)
		endpointsByClass[labels[src]] = append(endpointsByClass[labels[src]], src)
		endpointsByClass[labels[dst]] = append(endpointsByClass[labels[dst]], dst)
	}
	for i := seed0; i < cfg.Nodes; i++ {
		for e := 0; e < cfg.AttachEdges; e++ {
			var pool []int
			if rng.Float64() < cfg.Homophily {
				pool = endpointsByClass[labels[i]]
			}
			if len(pool) == 0 {
				pool = endpointsAll
			}
			t := pool[rng.Intn(len(pool))]
			if t == i {
				continue
			}
			addEdge(i, t)
		}
	}

	g, err := graph.Build(nodes, edges)
	if err != nil {
		return nil, err
	}

	d := &Dataset{Name: "uug-syn", G: g, NumClasses: 2, Labels: labels}
	perm := rng.Perm(cfg.Nodes)
	labeled := int(float64(cfg.Nodes) * cfg.LabeledFrac)
	// Paper ratios over the labeled pool: 80% train / 3.3% val / 10% test.
	nTrain := labeled * 80 / 100
	nVal := labeled * 33 / 1000
	if nVal < 1 {
		nVal = 1
	}
	nTest := labeled * 10 / 100
	if nTest < 1 {
		nTest = 1
	}
	for i := 0; i < labeled && i < len(perm); i++ {
		id := int64(perm[i])
		switch {
		case len(d.Train) < nTrain:
			d.Train = append(d.Train, id)
		case len(d.Val) < nVal:
			d.Val = append(d.Val, id)
		case len(d.Test) < nTest:
			d.Test = append(d.Test, id)
		}
	}
	return d, nil
}
