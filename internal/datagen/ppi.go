package datagen

import (
	"math"
	"math/rand"

	"agl/internal/graph"
	"agl/internal/tensor"
)

// PPIConfig parameterizes the protein-interaction generator. Zero values
// take the published PPI shape (24 graphs, ~2373 nodes each, 50 features,
// 121 labels). Scale in (0,1] shrinks each graph proportionally for tests.
type PPIConfig struct {
	Graphs      int     // default 24
	NodesPer    int     // default 2373
	FeatDim     int     // default 50
	Labels      int     // default 121
	Communities int     // community size; default 20
	Degree      int     // intra-community links per node; default 6
	Scale       float64 // node-count multiplier; default 1
	Seed        int64
}

// PPI generates a PPI-like multi-graph, multi-label dataset. Each graph is
// a union of dense communities. A node's features are its community's
// latent vector plus noise; each of the 121 labels is a random linear
// threshold over the community latent, so aggregation over neighbors
// (which share the community) denoises the features — the mechanism that
// makes GNNs beat feature-only models on the real PPI.
//
// Split follows the paper: the first Graphs−4 graphs are training, the next
// 2 validation, the last 2 test.
func PPI(cfg PPIConfig) (*Dataset, error) {
	if cfg.Graphs == 0 {
		cfg.Graphs = 24
	}
	if cfg.NodesPer == 0 {
		cfg.NodesPer = 2373
	}
	if cfg.FeatDim == 0 {
		cfg.FeatDim = 50
	}
	if cfg.Labels == 0 {
		cfg.Labels = 121
	}
	if cfg.Communities == 0 {
		cfg.Communities = 20
	}
	if cfg.Degree == 0 {
		cfg.Degree = 6
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	nodesPer := int(float64(cfg.NodesPer) * cfg.Scale)
	if nodesPer < cfg.Communities {
		nodesPer = cfg.Communities
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Shared label projections across graphs (the "tasks").
	proj := tensor.New(cfg.Labels, cfg.FeatDim)
	proj.RandFill(rng, 1)
	bias := make([]float64, cfg.Labels)
	for i := range bias {
		bias[i] = rng.NormFloat64() * 0.3
	}

	var nodes []graph.Node
	var edges []graph.Edge
	total := cfg.Graphs * nodesPer
	labelVecs := tensor.New(total, cfg.Labels)
	var train, val, test []int64

	nextID := int64(0)
	for gi := 0; gi < cfg.Graphs; gi++ {
		start := nextID
		// Communities within this graph.
		numComm := (nodesPer + cfg.Communities - 1) / cfg.Communities
		latents := make([][]float64, numComm)
		for c := range latents {
			l := make([]float64, cfg.FeatDim)
			for j := range l {
				l[j] = rng.NormFloat64()
			}
			latents[c] = l
		}
		members := make([][]int64, numComm)
		for i := 0; i < nodesPer; i++ {
			id := nextID
			nextID++
			comm := i % numComm
			members[comm] = append(members[comm], id)
			feat := make([]float64, cfg.FeatDim)
			for j := range feat {
				feat[j] = latents[comm][j] + 0.6*rng.NormFloat64()
			}
			nodes = append(nodes, graph.Node{ID: id, Feat: feat})
			// Labels from the community latent (graph-level signal) with a
			// touch of node noise.
			row := labelVecs.Row(int(id))
			for l := 0; l < cfg.Labels; l++ {
				var s float64
				prow := proj.Row(l)
				for j, v := range latents[comm] {
					s += prow[j] * v
				}
				s = s/math.Sqrt(float64(cfg.FeatDim)) + bias[l] + 0.2*rng.NormFloat64()
				if s > 0 {
					row[l] = 1
				}
			}
		}
		// Intra-community edges plus sparse global links.
		for i := start; i < nextID; i++ {
			comm := int(i-start) % numComm
			peers := members[comm]
			for d := 0; d < cfg.Degree; d++ {
				j := peers[rng.Intn(len(peers))]
				if j == i {
					continue
				}
				edges = append(edges, graph.Edge{Src: i, Dst: j, Weight: 1})
			}
			if rng.Float64() < 0.3 {
				j := start + int64(rng.Intn(nodesPer))
				if j != i {
					edges = append(edges, graph.Edge{Src: i, Dst: j, Weight: 1})
				}
			}
		}
		ids := make([]int64, 0, nodesPer)
		for i := start; i < nextID; i++ {
			ids = append(ids, i)
		}
		switch {
		case gi < cfg.Graphs-4:
			train = append(train, ids...)
		case gi < cfg.Graphs-2:
			val = append(val, ids...)
		default:
			test = append(test, ids...)
		}
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		return nil, err
	}
	g, err = g.AddReverseEdges()
	if err != nil {
		return nil, err
	}
	labels := make([]int, g.NumNodes())
	for i := range labels {
		labels[i] = -1
	}
	return &Dataset{
		Name:       "ppi-syn",
		G:          g,
		NumClasses: cfg.Labels,
		MultiLabel: true,
		Labels:     labels,
		LabelVecs:  labelVecs,
		Train:      train,
		Val:        val,
		Test:       test,
	}, nil
}
