// Package datagen generates the synthetic stand-ins for the paper's three
// evaluation datasets. Network access and the original data are
// unavailable, so each generator reproduces the published *shape* — node
// and edge counts, feature dimensionality, label structure, degree skew —
// with planted class signal so that GNNs genuinely learn from both features
// and graph structure (see DESIGN.md, Substitutions).
package datagen

import (
	"fmt"
	"math/rand"

	"agl/internal/graph"
	"agl/internal/tensor"
)

// Dataset bundles a graph with labels and the train/val/test split.
type Dataset struct {
	Name       string
	G          *graph.Graph
	NumClasses int
	MultiLabel bool
	// Labels holds the single-label class per dense node index (-1 when the
	// node is unlabeled). Unused when MultiLabel.
	Labels []int
	// LabelVecs holds 0/1 multi-label targets, one row per dense node
	// index. Nil for single-label datasets.
	LabelVecs *tensor.Matrix

	Train, Val, Test []int64 // node IDs
}

// LabelOf returns the single label for a node ID (-1 when unknown).
func (d *Dataset) LabelOf(id int64) int {
	i, ok := d.G.Index(id)
	if !ok {
		return -1
	}
	return d.Labels[i]
}

// LabelVecOf returns the multi-label target row for a node ID.
func (d *Dataset) LabelVecOf(id int64) []float64 {
	i, ok := d.G.Index(id)
	if !ok || d.LabelVecs == nil {
		return nil
	}
	return d.LabelVecs.Row(i)
}

// Summary renders Table-2 style statistics.
func (d *Dataset) Summary() string {
	s := d.G.Stats()
	return fmt.Sprintf("%s: nodes=%d edges=%d feat=%d classes=%d multilabel=%v train=%d val=%d test=%d",
		d.Name, s.Nodes, s.Edges, s.FeatureDim, d.NumClasses, d.MultiLabel,
		len(d.Train), len(d.Val), len(d.Test))
}

// CoraConfig parameterizes the citation-network generator. Zero values take
// the published Cora shape.
type CoraConfig struct {
	Nodes     int     // default 2708
	Edges     int     // undirected edge count; default 5429
	FeatDim   int     // default 1433
	Classes   int     // default 7
	Homophily float64 // probability an edge stays intra-class; default 0.81
	Seed      int64
}

// Cora generates a Cora-like citation network: sparse bag-of-words features
// whose active dimensions are drawn mostly from a per-class topic block,
// and homophilous undirected citations. Split: 20 train per class, 500
// validation, 1000 test (the standard Planetoid protocol).
func Cora(cfg CoraConfig) (*Dataset, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2708
	}
	if cfg.Edges == 0 {
		cfg.Edges = 5429
	}
	if cfg.FeatDim == 0 {
		cfg.FeatDim = 1433
	}
	if cfg.Classes == 0 {
		cfg.Classes = 7
	}
	if cfg.Homophily == 0 {
		cfg.Homophily = 0.81
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	labels := make([]int, cfg.Nodes)
	nodes := make([]graph.Node, cfg.Nodes)
	topic := cfg.FeatDim / cfg.Classes
	wordsPerDoc := 18
	for i := 0; i < cfg.Nodes; i++ {
		c := i % cfg.Classes // balanced classes
		labels[i] = c
		feat := make([]float64, cfg.FeatDim)
		for w := 0; w < wordsPerDoc; w++ {
			var dim int
			if rng.Float64() < 0.7 {
				dim = c*topic + rng.Intn(topic)
			} else {
				dim = rng.Intn(cfg.FeatDim)
			}
			feat[dim] = 1
		}
		nodes[i] = graph.Node{ID: int64(i), Feat: feat}
	}

	byClass := make([][]int, cfg.Classes)
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
	}
	seen := map[[2]int64]bool{}
	var edges []graph.Edge
	for len(edges) < cfg.Edges {
		u := rng.Intn(cfg.Nodes)
		var v int
		if rng.Float64() < cfg.Homophily {
			peers := byClass[labels[u]]
			v = peers[rng.Intn(len(peers))]
		} else {
			v = rng.Intn(cfg.Nodes)
		}
		if u == v {
			continue
		}
		k := [2]int64{int64(u), int64(v)}
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, graph.Edge{Src: int64(u), Dst: int64(v), Weight: 1})
	}
	g, err := graph.Build(nodes, edges)
	if err != nil {
		return nil, err
	}
	g, err = g.AddReverseEdges()
	if err != nil {
		return nil, err
	}

	d := &Dataset{Name: "cora-syn", G: g, NumClasses: cfg.Classes, Labels: labels}
	perm := rng.Perm(cfg.Nodes)
	perClass := make([]int, cfg.Classes)
	trainPerClass := 20
	if cfg.Nodes < 300 {
		trainPerClass = max(2, cfg.Nodes/(cfg.Classes*8))
	}
	valWant, testWant := 500, 1000
	if cfg.Nodes < 1800 {
		valWant, testWant = cfg.Nodes/5, cfg.Nodes/4
	}
	for _, i := range perm {
		id := int64(i)
		c := labels[i]
		switch {
		case perClass[c] < trainPerClass:
			d.Train = append(d.Train, id)
			perClass[c]++
		case len(d.Val) < valWant:
			d.Val = append(d.Val, id)
		case len(d.Test) < testWant:
			d.Test = append(d.Test, id)
		}
	}
	return d, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
