package datagen

import (
	"testing"
)

func TestLinksSplitInvariants(t *testing.T) {
	for _, mk := range []func() (*Dataset, error){
		func() (*Dataset, error) {
			return Cora(CoraConfig{Nodes: 200, Edges: 500, FeatDim: 24, Classes: 4, Seed: 3})
		},
		func() (*Dataset, error) { return PPI(PPIConfig{Scale: 0.01, Seed: 3}) },
		func() (*Dataset, error) { return UUG(UUGConfig{Nodes: 400, FeatDim: 8, Seed: 3}) },
	} {
		ds, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		links, err := Links(ds, LinkConfig{TestFrac: 0.1, NegPerPos: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}

		// The training graph lost the held-out edges — in both directions.
		trainEdges := map[[2]int64]bool{}
		for _, e := range links.G.Edges {
			trainEdges[[2]int64{e.Src, e.Dst}] = true
		}
		origEdges := map[[2]int64]bool{}
		for _, e := range ds.G.Edges {
			origEdges[[2]int64{e.Src, e.Dst}] = true
		}
		pos, neg := 0, 0
		for _, p := range links.Test {
			switch p.Label {
			case 1:
				pos++
				if trainEdges[[2]int64{p.Src, p.Dst}] || trainEdges[[2]int64{p.Dst, p.Src}] {
					t.Fatalf("%s: held-out pair (%d,%d) leaks into the training graph", ds.Name, p.Src, p.Dst)
				}
				if !origEdges[[2]int64{p.Src, p.Dst}] {
					t.Fatalf("%s: test positive (%d,%d) is not an original edge", ds.Name, p.Src, p.Dst)
				}
			case 0:
				neg++
				if origEdges[[2]int64{p.Src, p.Dst}] || origEdges[[2]int64{p.Dst, p.Src}] {
					t.Fatalf("%s: sampled negative (%d,%d) is a real edge", ds.Name, p.Src, p.Dst)
				}
			default:
				t.Fatalf("%s: bad test label %d", ds.Name, p.Label)
			}
		}
		if pos == 0 || neg != 2*pos {
			t.Fatalf("%s: want neg = 2*pos, got pos=%d neg=%d", ds.Name, pos, neg)
		}
		// Training pairs are edges of the training graph.
		for _, p := range links.Train {
			if p.Label != 1 || !trainEdges[[2]int64{p.Src, p.Dst}] {
				t.Fatalf("%s: train pair (%d,%d,%d) is not a training-graph edge", ds.Name, p.Src, p.Dst, p.Label)
			}
		}
		// Node set is preserved (endpoints of held-out edges stay servable).
		if links.G.NumNodes() != ds.G.NumNodes() {
			t.Fatalf("%s: node count changed %d -> %d", ds.Name, ds.G.NumNodes(), links.G.NumNodes())
		}
		if links.Summary() == "" {
			t.Fatal("empty summary")
		}
	}
}

func TestLinksMaxTrainPairsAndValidate(t *testing.T) {
	ds, err := UUG(UUGConfig{Nodes: 300, FeatDim: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	links, err := Links(ds, LinkConfig{MaxTrainPairs: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(links.Train) != 50 {
		t.Fatalf("MaxTrainPairs: got %d", len(links.Train))
	}
	for _, bad := range []LinkConfig{{TestFrac: -0.1}, {TestFrac: 1.5}, {NegPerPos: -1}, {MaxTrainPairs: -2}} {
		if _, err := Links(ds, bad); err == nil {
			t.Fatalf("config %+v: expected validation error", bad)
		}
	}
}
