package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the shared worker pool behind every parallel kernel
// in the engine: the blocked dense matmuls below, sparse.Aggregator's
// edge-partitioned aggregation, and any caller that wants row-partitioned
// data parallelism. One fixed set of goroutines serves the whole process,
// so concurrent training workers, the serving batcher, and offline
// inference contend for the same CPUs instead of oversubscribing them.
//
// Submission never blocks: when every worker is busy (or the pool is
// disabled), the submitting goroutine runs the task inline. That makes
// nested parallel sections — an aggregation inside a training worker that
// is itself one of several goroutines — deadlock-free by construction.

var (
	poolOnce  sync.Once
	poolTasks chan *poolJob

	// parOverride, when > 0, caps the number of chunks any ParallelFor
	// call fans out to. 1 forces every kernel serial. 0 means "use
	// GOMAXPROCS". It exists for determinism tests and benchmarks; the
	// kernels are row-partitioned, so results are bit-identical at any
	// setting.
	parOverride atomic.Int32
)

// poolJob describes one fan-out: a range [0, n) cut into fixed-size chunks
// that workers (and the submitting goroutine) claim with an atomic
// counter. The kind field dispatches the three dense kernels without a
// closure, keeping the hot training path at one allocation per parallel
// matmul; kindFunc covers generic callers.
type poolJob struct {
	kind      int
	dst, a, b *Matrix
	fn        func(lo, hi int)
	each      func(i int)
	n, size   int
	chunks    int32
	next      atomic.Int32
	wg        sync.WaitGroup
}

// poolJob kinds.
const (
	kindFunc = iota
	kindEach
	kindMatMul
	kindMatMulATB
	kindMatMulABT
)

// run claims chunks until the job is exhausted. Safe to call from any
// number of goroutines; a late worker that receives an already-finished
// job simply returns.
func (j *poolJob) run() {
	for {
		c := j.next.Add(1) - 1
		if c >= j.chunks {
			return
		}
		lo := int(c) * j.size
		hi := lo + j.size
		if hi > j.n {
			hi = j.n
		}
		switch j.kind {
		case kindFunc:
			j.fn(lo, hi)
		case kindEach:
			for i := lo; i < hi; i++ {
				j.each(i)
			}
		case kindMatMul:
			matMulRows(j.dst, j.a, j.b, lo, hi)
		case kindMatMulATB:
			matMulATBRows(j.dst, j.a, j.b, lo, hi)
		case kindMatMulABT:
			matMulABTRows(j.dst, j.a, j.b, lo, hi)
		}
		j.wg.Done()
	}
}

func startPool() {
	n := runtime.GOMAXPROCS(0)
	poolTasks = make(chan *poolJob)
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolTasks {
				j.run()
			}
		}()
	}
}

// dispatch fans j out: up to chunks-1 workers are woken without blocking
// (a busy pool just means the caller does more of the work itself), then
// the caller joins the chunk-claiming loop and waits for stragglers.
func dispatch(j *poolJob) {
	poolOnce.Do(startPool)
	j.wg.Add(int(j.chunks))
	for i := int32(1); i < j.chunks; i++ {
		select {
		case poolTasks <- j:
		default:
			i = j.chunks // no idle worker: stop knocking
		}
	}
	j.run()
	j.wg.Wait()
}

// jobChunks sizes a fan-out: ceil(n/grain) chunks capped at the
// parallelism setting; 0 or 1 means "run inline".
func jobChunks(n, grain int) (chunks int32, size int) {
	if grain < 1 {
		grain = 1
	}
	c := (n + grain - 1) / grain
	if p := Parallelism(); c > p {
		c = p
	}
	if c <= 1 {
		return 1, n
	}
	return int32(c), (n + c - 1) / c
}

// Parallelism reports the current fan-out cap for parallel kernels.
func Parallelism() int {
	if p := parOverride.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism caps kernel fan-out at n (1 = fully serial, 0 = restore
// the GOMAXPROCS default) and returns the previous cap. Because every
// kernel partitions output rows, changing the setting never changes
// results, only speed.
func SetParallelism(n int) int {
	if n < 0 {
		n = 0
	}
	return int(parOverride.Swap(int32(n)))
}

// ParallelFor splits [0, n) into contiguous chunks of at least grain
// elements and runs fn over the chunks on the shared pool, returning when
// every chunk is done. Chunks are disjoint, so fn may write freely to its
// own output rows. With one chunk (or parallelism 1) fn runs inline on the
// caller's goroutine without touching the pool.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks, size := jobChunks(n, grain)
	if chunks <= 1 {
		fn(0, n)
		return
	}
	dispatch(&poolJob{kind: kindFunc, fn: fn, n: n, size: size, chunks: chunks})
}

// ParallelEach runs fn(i) for i in [0, n) on the shared pool, returning
// when all are done. It is the hook for callers that have already
// partitioned their work (sparse edge partitions). Like ParallelFor it
// honors the SetParallelism cap — indices are grouped into at most that
// many chunks — and degrades to inline execution at parallelism 1.
func ParallelEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	chunks, size := jobChunks(n, 1)
	if chunks <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	dispatch(&poolJob{kind: kindEach, each: fn, n: n, size: size, chunks: chunks})
}
