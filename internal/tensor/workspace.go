package tensor

// Workspace is a per-step arena of reusable matrices and slices. One
// training step (or one cold serving batch, or one inference batch)
// acquires all of its temporaries — layer activations, gradients, the
// normalized per-batch adjacency — from a workspace, and a single Reset at
// the end of the step makes every buffer reusable for the next one. After
// the first step the hot loop performs no per-batch matrix allocations.
//
// Buffers are recycled by capacity: a request is satisfied by the smallest
// free buffer that fits and is resliced to the requested shape, so batches
// of varying size (the common case: every merged subgraph has a different
// node count) still hit the arena. All returned buffers are zeroed.
//
// A Workspace is NOT safe for concurrent use; it is a single step's arena.
// The trainer double-buffers two workspaces per worker so batch N+1's
// assembly can overlap batch N's model step. A nil *Workspace is valid
// everywhere one is accepted and falls back to plain allocation.
type Workspace struct {
	freeMats []*Matrix
	usedMats []*Matrix
	freeF64  [][]float64
	usedF64  [][]float64
	freeInt  [][]int
	usedInt  [][]int

	gets, misses uint64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get returns a zeroed rows×cols matrix owned by the workspace. The matrix
// is valid until Reset. On a nil workspace it is equivalent to New.
func (w *Workspace) Get(rows, cols int) *Matrix {
	m := w.GetUninit(rows, cols)
	if w != nil {
		clear(m.Data) // New already zeroes on the nil-workspace path
	}
	return m
}

// GetUninit is Get without the zeroing guarantee: recycled buffers carry
// whatever the previous step left in them. Use it only for destinations
// the consumer fully overwrites (a MatMul/SpMM dst, a RowsSubsetInto
// target) — accumulator targets and sparse writers need Get.
func (w *Workspace) GetUninit(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	if rows < 0 || cols < 0 {
		return New(rows, cols) // let New panic with its message
	}
	w.gets++
	need := rows * cols
	best := -1
	for i, m := range w.freeMats {
		if c := cap(m.Data); c >= need && (best < 0 || c < cap(w.freeMats[best].Data)) {
			best = i
		}
	}
	var m *Matrix
	if best >= 0 {
		m = w.freeMats[best]
		last := len(w.freeMats) - 1
		w.freeMats[best] = w.freeMats[last]
		w.freeMats = w.freeMats[:last]
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:need]
	} else {
		w.misses++
		m = New(rows, cols)
	}
	w.usedMats = append(w.usedMats, m)
	return m
}

// Floats returns a zeroed []float64 of length n owned by the workspace.
func (w *Workspace) Floats(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	w.gets++
	best := -1
	for i, s := range w.freeF64 {
		if c := cap(s); c >= n && (best < 0 || c < cap(w.freeF64[best])) {
			best = i
		}
	}
	var s []float64
	if best >= 0 {
		s = w.freeF64[best][:n]
		last := len(w.freeF64) - 1
		w.freeF64[best] = w.freeF64[last]
		w.freeF64 = w.freeF64[:last]
		clear(s)
	} else {
		w.misses++
		s = make([]float64, n)
	}
	w.usedF64 = append(w.usedF64, s)
	return s
}

// Ints returns a zeroed []int of length n owned by the workspace.
func (w *Workspace) Ints(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	w.gets++
	best := -1
	for i, s := range w.freeInt {
		if c := cap(s); c >= n && (best < 0 || c < cap(w.freeInt[best])) {
			best = i
		}
	}
	var s []int
	if best >= 0 {
		s = w.freeInt[best][:n]
		last := len(w.freeInt) - 1
		w.freeInt[best] = w.freeInt[last]
		w.freeInt = w.freeInt[:last]
		clear(s)
	} else {
		w.misses++
		s = make([]int, n)
	}
	w.usedInt = append(w.usedInt, s)
	return s
}

// Reset returns every buffer handed out since the last Reset to the free
// lists. The caller must not touch previously returned buffers afterwards.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	for _, m := range w.usedMats {
		w.freeMats = append(w.freeMats, m)
	}
	w.usedMats = w.usedMats[:0]
	for _, s := range w.usedF64 {
		w.freeF64 = append(w.freeF64, s[:cap(s)])
	}
	w.usedF64 = w.usedF64[:0]
	for _, s := range w.usedInt {
		w.freeInt = append(w.freeInt, s[:cap(s)])
	}
	w.usedInt = w.usedInt[:0]
}

// Stats reports the number of buffer requests served and how many of them
// had to allocate. A warmed-up steady state has misses ≪ gets.
func (w *Workspace) Stats() (gets, misses uint64) {
	if w == nil {
		return 0, 0
	}
	return w.gets, w.misses
}
