package tensor

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks for the blocked/parallel dense engine. The *Serial
// variants pin parallelism to 1 so CI runs surface both the single-thread
// kernel quality and the pool's scaling on whatever cores the runner has.

func benchMats(n, k, m int) (a, b, dst *Matrix) {
	rng := rand.New(rand.NewSource(1))
	a = New(n, k)
	a.RandFill(rng, 1)
	b = New(k, m)
	b.RandFill(rng, 1)
	return a, b, New(n, m)
}

func benchMatMul(b *testing.B, par, n, k, m int) {
	b.Helper()
	defer SetParallelism(SetParallelism(par))
	x, y, dst := benchMats(n, k, m)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n * k * m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMul512Serial(b *testing.B)   { benchMatMul(b, 1, 512, 512, 512) }
func BenchmarkMatMul512Parallel(b *testing.B) { benchMatMul(b, 0, 512, 512, 512) }

// The training shape: tall activations against a small weight matrix.
func BenchmarkMatMulTallSerial(b *testing.B)   { benchMatMul(b, 1, 4096, 64, 64) }
func BenchmarkMatMulTallParallel(b *testing.B) { benchMatMul(b, 0, 4096, 64, 64) }

func BenchmarkMatMulATBTall(b *testing.B) {
	defer SetParallelism(SetParallelism(0))
	rng := rand.New(rand.NewSource(2))
	x := New(4096, 64)
	x.RandFill(rng, 1)
	g := New(4096, 64)
	g.RandFill(rng, 1)
	dst := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulATB(dst, x, g)
	}
}

func BenchmarkMatMulABTTall(b *testing.B) {
	defer SetParallelism(SetParallelism(0))
	rng := rand.New(rand.NewSource(3))
	g := New(4096, 64)
	g.RandFill(rng, 1)
	w := New(64, 64)
	w.RandFill(rng, 1)
	dst := New(4096, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABT(dst, g, w)
	}
}

// BenchmarkWorkspaceStep measures the arena's per-step overhead: the Get
// calls of a typical 2-layer train step plus the Reset, against warmed
// free lists.
func BenchmarkWorkspaceStep(b *testing.B) {
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 12; j++ {
			ws.Get(1024, 32)
		}
		ws.Floats(6000)
		ws.Ints(1025)
		ws.Reset()
	}
}
