package tensor

import (
	"math/rand"
	"testing"
)

// Naive reference kernels: the exact loop order the blocked/parallel
// kernels must reproduce bit for bit (per destination element, ascending-k
// accumulation with the same zero-skip).

func naiveMatMul(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

func naiveMatMulATB(a, b *Matrix) *Matrix {
	dst := New(a.Cols, b.Cols)
	p := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

func naiveMatMulABT(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
	return dst
}

// randMat fills a matrix with values including exact zeros (to exercise the
// sparsity skip) and denormal-ish magnitudes.
func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		switch rng.Intn(4) {
		case 0:
			m.Data[i] = 0
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func sameBits(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v want %v (must be bit-identical)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestBlockedKernelsMatchNaive drives the blocked/parallel kernels over
// randomized shapes — including empty (0-row), single-column, exact
// block-multiple and non-multiple-of-block sizes — at several parallelism
// settings, asserting bit-identical results against the naive reference.
func TestBlockedKernelsMatchNaive(t *testing.T) {
	defer SetParallelism(SetParallelism(0))
	rng := rand.New(rand.NewSource(7))
	dims := []int{0, 1, 2, 3, 7, 17, 31, 64, 100, matmulBlockK - 1, matmulBlockK, matmulBlockK + 3}
	pick := func() int { return dims[rng.Intn(len(dims))] }
	for _, par := range []int{1, 2, 3, 8} {
		SetParallelism(par)
		for trial := 0; trial < 60; trial++ {
			m, k, n := pick(), pick(), pick()
			a := randMat(rng, m, k)
			b := randMat(rng, k, n)

			dst := New(m, n)
			dst.Fill(42) // results must not depend on dst's prior contents
			MatMul(dst, a, b)
			sameBits(t, "MatMul", dst, naiveMatMul(a, b))

			bt := randMat(rng, m, n)
			atb := New(k, n)
			atb.Fill(-7)
			MatMulATB(atb, a, bt)
			sameBits(t, "MatMulATB", atb, naiveMatMulATB(a, bt))

			babt := randMat(rng, n, k)
			abt := New(m, n)
			abt.Fill(3.5)
			MatMulABT(abt, a, babt)
			sameBits(t, "MatMulABT", abt, naiveMatMulABT(a, babt))
		}
	}
}

// TestKernelsExplicitEdgeShapes nails the degenerate shapes individually so
// a failure names the offender.
func TestKernelsExplicitEdgeShapes(t *testing.T) {
	defer SetParallelism(SetParallelism(0))
	SetParallelism(8)
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ m, k, n int }{
		{0, 5, 4},                // 0 output rows
		{5, 0, 4},                // empty inner dimension: result is all zeros
		{4, 5, 1},                // single output column
		{1, 1, 1},                // scalars
		{3, matmulBlockK + 1, 2}, // inner dim just past one block
	}
	for _, c := range cases {
		a := randMat(rng, c.m, c.k)
		b := randMat(rng, c.k, c.n)
		dst := New(c.m, c.n)
		MatMul(dst, a, b)
		sameBits(t, "MatMul", dst, naiveMatMul(a, b))

		b2 := randMat(rng, c.m, c.n)
		atb := New(c.k, c.n)
		MatMulATB(atb, a, b2)
		sameBits(t, "MatMulATB", atb, naiveMatMulATB(a, b2))

		b3 := randMat(rng, c.n, c.k)
		abt := New(c.m, c.n)
		MatMulABT(abt, a, b3)
		sameBits(t, "MatMulABT", abt, naiveMatMulABT(a, b3))
	}
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 7, 5)

	tr := New(5, 7)
	m.TransposeInto(tr)
	sameBits(t, "TransposeInto", tr, m.Transpose())

	idx := []int{3, 0, 6, 3}
	sub := New(len(idx), 5)
	m.RowsSubsetInto(sub, idx)
	sameBits(t, "RowsSubsetInto", sub, m.RowsSubset(idx))

	sums := make([]float64, 5)
	m.ColSumsInto(sums)
	for j, v := range m.ColSums() {
		if sums[j] != v {
			t.Fatalf("ColSumsInto[%d] = %v want %v", j, sums[j], v)
		}
	}

	o := randMat(rng, 7, 3)
	cc := New(7, 8)
	ConcatColsInto(cc, m, o)
	sameBits(t, "ConcatColsInto", cc, ConcatCols(m, o))

	sl := New(7, 2)
	m.SliceColsInto(sl, 1, 3)
	sameBits(t, "SliceColsInto", sl, m.SliceCols(1, 3))
}
